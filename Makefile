# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check serve-smoke chaos-smoke bench-smoke egraph-smoke lint-smoke bench figures examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# the pre-commit gate: formatting (when ocamlformat is available), the
# full test suite, a quick bench smoke run over the engine comparison
# with its machine-readable trajectory checked, and the end-to-end
# serving smoke
check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt || exit 1; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi
	dune runtest
	$(MAKE) lint-smoke
	$(MAKE) bench-smoke
	$(MAKE) egraph-smoke
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke

# quick fig12/fig13 runs that also emit the perf-trajectory JSON
# (BENCH_fig12.json / BENCH_fig13.json, format in doc/parallel.md), then
# assert the files parse and the domain sweep agreed with sequential
# matching. Deliberately no speedup assertion: CI cores are not a perf
# lab (read "speedup" against "cores" in the JSON instead).
bench-smoke: build
	dune exec bench/main.exe -- fig12 fig13 --quick --json BENCH.json
	@python3 -c "\
	import json, sys; \
	ok = True; \
	files = ['BENCH_fig12.json', 'BENCH_fig13.json']; \
	datas = [json.load(open(f)) for f in files]; \
	[sys.exit('%s: parallel sweep disagreed with sequential matching' % f) \
	   for f, d in zip(files, datas) if not d['parallel_agrees']]; \
	[sys.exit('%s: empty domain sweep' % f) \
	   for f, d in zip(files, datas) if not d['engines'] \
	   or any(not e['sweep'] for e in d['engines'])]; \
	print('bench-smoke: %s ok (cores=%d)' % (', '.join(files), datas[0]['cores']))"

# static-analysis gate: lint the shipped pattern sets. The example file
# must come back clean; the full built-in corpus must exit 0 (its one
# known finding — the MulOne/MulZero overlap — is warning-severity) and
# the JSON findings must keep the documented schema (doc/analysis.md).
# A deliberately dead library must be rejected with a nonzero exit.
lint-smoke: build
	./_build/default/bin/pypmc.exe lint examples/patterns.pypm
	./_build/default/bin/pypmc.exe lint --opt full
	@./_build/default/bin/pypmc.exe lint --opt full --json | python3 -c "\
	import json, sys; \
	ds = json.load(sys.stdin); \
	keys = {'severity', 'kind', 'patterns', 'explanation'}; \
	bad = [d for d in ds if not keys <= set(d)]; \
	sys.exit('lint-smoke: missing fields in %r' % bad) if bad else None; \
	sys.exit('lint-smoke: corpus lint must be warnings only') \
	  if any(d['severity'] == 'error' for d in ds) else None; \
	print('lint-smoke: corpus json ok (%d finding(s))' % len(ds))"
	@TMP=$$(mktemp -t lint-smoke-XXXXXX.pypm); \
	printf 'op Relu(x) class "unary_pointwise";\n\npattern Dead(x) {\n  assert x.size < 1;\n  return Relu(x);\n}\n' > $$TMP; \
	if ./_build/default/bin/pypmc.exe lint $$TMP >/dev/null 2>&1; then \
	  echo "lint-smoke: dead library was not rejected"; rm -f $$TMP; exit 1; \
	else \
	  echo "lint-smoke: dead library rejected (nonzero exit) ok"; rm -f $$TMP; \
	fi

# saturation-vs-greedy agreement gate: compile every zoo model with the
# Plan and Egraph engines and assert the egraph engine never degrades and
# is never costlier than Plan on the same model (its contract — the
# saturation post-phase commits only strict improvements). --quick keeps
# the pre-commit gate to the first handful of models; CI runs the full
# sweep.
egraph-smoke: build
	dune exec bench/egraph_smoke.exe -- --quick

# end-to-end serving smoke: background a 4-worker server, drive it with
# 4 concurrent clients, require zero protocol errors and a warm cache,
# then tear the server down. Finishes in seconds.
serve-smoke: build
	@SOCK=/tmp/pypmc-smoke-$$$$.sock; \
	./_build/default/bin/pypmc.exe serve --socket $$SOCK --workers 4 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	./_build/default/bin/pypmc.exe load --socket $$SOCK \
	  --clients 4 --requests 200 --seed 1 --min-hits 1; \
	RC=$$?; \
	kill $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	rm -f $$SOCK; \
	exit $$RC

# self-healing smoke: 500 seeded wire-fault schedules (torn/corrupt/
# stalled/disconnected frames, poison-pill crash drills, pipelined
# bursts) must produce zero property violations; then SIGTERM the server
# (graceful drain — it exits on its own), restart it on the same socket,
# and require a clean warm load against the successor.
chaos-smoke: build
	@SOCK=/tmp/pypmc-chaos-$$$$.sock; \
	./_build/default/bin/pypmc.exe serve --socket $$SOCK --workers 2 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	./_build/default/bin/pypmc.exe chaos --socket $$SOCK \
	  --schedules 500 --seed 42 || { kill $$SRV 2>/dev/null; exit 1; }; \
	kill $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	if [ -e $$SOCK ]; then echo "drained server left its socket behind"; exit 1; fi; \
	./_build/default/bin/pypmc.exe serve --socket $$SOCK --workers 2 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	./_build/default/bin/pypmc.exe load --socket $$SOCK \
	  --clients 2 --requests 50 --seed 2 --min-hits 1; \
	RC=$$?; \
	kill $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	rm -f $$SOCK; \
	exit $$RC

# regenerate every figure of the paper's evaluation + micro/ablation benches
bench:
	dune exec bench/main.exe

figures:
	dune exec bench/main.exe -- fig10 fig11 fig12 fig13

examples:
	dune exec examples/quickstart.exe
	dune exec examples/gelu_fusion.exe
	dune exec examples/mha_fusion.exe
	dune exec examples/graph_partition.exe
	dune exec examples/surface_patterns.exe
	dune exec examples/machine_trace.exe
	dune exec examples/equality_saturation.exe

doc:
	dune build @doc

clean:
	dune clean
