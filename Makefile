# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench figures examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# the pre-commit gate: formatting (when ocamlformat is available), the
# full test suite, and a quick bench smoke run over the engine comparison
check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt || exit 1; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi
	dune runtest
	dune exec bench/main.exe -- fig12 fig13 --quick

# regenerate every figure of the paper's evaluation + micro/ablation benches
bench:
	dune exec bench/main.exe

figures:
	dune exec bench/main.exe -- fig10 fig11 fig12 fig13

examples:
	dune exec examples/quickstart.exe
	dune exec examples/gelu_fusion.exe
	dune exec examples/mha_fusion.exe
	dune exec examples/graph_partition.exe
	dune exec examples/surface_patterns.exe
	dune exec examples/machine_trace.exe
	dune exec examples/equality_saturation.exe

doc:
	dune build @doc

clean:
	dune clean
