# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check serve-smoke bench figures examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# the pre-commit gate: formatting (when ocamlformat is available), the
# full test suite, a quick bench smoke run over the engine comparison,
# and the end-to-end serving smoke
check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt || exit 1; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi
	dune runtest
	dune exec bench/main.exe -- fig12 fig13 --quick
	$(MAKE) serve-smoke

# end-to-end serving smoke: background a 4-worker server, drive it with
# 4 concurrent clients, require zero protocol errors and a warm cache,
# then tear the server down. Finishes in seconds.
serve-smoke: build
	@SOCK=/tmp/pypmc-smoke-$$$$.sock; \
	./_build/default/bin/pypmc.exe serve --socket $$SOCK --workers 4 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	./_build/default/bin/pypmc.exe load --socket $$SOCK \
	  --clients 4 --requests 200 --seed 1 --min-hits 1; \
	RC=$$?; \
	kill $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	rm -f $$SOCK; \
	exit $$RC

# regenerate every figure of the paper's evaluation + micro/ablation benches
bench:
	dune exec bench/main.exe

figures:
	dune exec bench/main.exe -- fig10 fig11 fig12 fig13

examples:
	dune exec examples/quickstart.exe
	dune exec examples/gelu_fusion.exe
	dune exec examples/mha_fusion.exe
	dune exec examples/graph_partition.exe
	dune exec examples/surface_patterns.exe
	dune exec examples/machine_trace.exe
	dune exec examples/equality_saturation.exe

doc:
	dune build @doc

clean:
	dune clean
