(* egraph-smoke: the [Pass ~engine:Egraph] acceptance gate.

   Sweeps both figure suites (the HF transformer zoo and the TV CNN zoo,
   plus the multimodal models) with the full pattern corpus and, for every
   model, compiles it twice from a fresh build — once with the plan engine,
   once with the egraph engine — then asserts:

   - both final graphs validate;
   - the egraph result's simulated cost is never above the plan result's
     (the saturation post-phase commits only strict whole-graph
     improvements, so this holds by construction — a violation means the
     splice accounting broke);
   - the egraph engine actually ran as "egraph" (the corpus has
     convertible rules, so the degradation ladder must not step down).

   Exit status 0 iff every model agrees. Runs in seconds; wired into
   `make egraph-smoke` / `make check` and the CI egraph-smoke job. *)

open Pypm

let device = Cost.a6000

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let rec take n = function
    | x :: xs when n > 0 -> x :: take (n - 1) xs
    | _ -> []
  in
  let models =
    let all = Zoo.all () in
    if quick then take 6 all else all
  in
  Printf.printf "egraph-smoke: %d model(s), corpus 'both'\n%!"
    (List.length models);
  let failures = ref 0 and improved = ref 0 in
  List.iter
    (fun (m : Zoo.model) ->
      let compile engine =
        let env, g = m.Zoo.build () in
        let prog = Corpus.both_program env.Std_ops.sg in
        let stats = Pass.run ~engine prog g in
        (match Graph.validate g with
        | [] -> ()
        | errs ->
            incr failures;
            Printf.printf "  FAIL %-24s %s engine left an invalid graph: %s\n"
              m.Zoo.mname (Pass.engine_name engine)
              (String.concat "; " errs));
        (Exec.graph_cost device g, stats)
      in
      let plan_cost, _ = compile Pass.Plan in
      let egraph_cost, estats = compile Pass.Egraph in
      if not (String.equal estats.Pass.engine_used "egraph") then begin
        incr failures;
        Printf.printf "  FAIL %-24s egraph engine degraded to %s\n"
          m.Zoo.mname estats.Pass.engine_used
      end
      else if egraph_cost > plan_cost +. (1e-9 *. Float.max 1.0 plan_cost)
      then begin
        incr failures;
        Printf.printf "  FAIL %-24s egraph %.9fs > plan %.9fs\n" m.Zoo.mname
          egraph_cost plan_cost
      end
      else begin
        if egraph_cost < plan_cost -. (1e-12 *. Float.max 1.0 plan_cost) then
          incr improved;
        Printf.printf
          "  ok   %-24s plan %.6fs  egraph %.6fs  (sat %s, %d round(s), %d \
           union(s), %d spliced)\n"
          m.Zoo.mname plan_cost egraph_cost estats.Pass.sat_stop
          estats.Pass.sat_iterations estats.Pass.sat_unions
          estats.Pass.sat_spliced
      end)
    models;
  Printf.printf
    "egraph-smoke: %d model(s), %d failure(s), %d strictly improved by the \
     post-phase\n"
    (List.length models) !failures !improved;
  if !failures > 0 then exit 1
