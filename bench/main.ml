(* The figure harness: regenerates every figure of the paper's evaluation
   (section 4.1) against the simulated device and the synthetic zoos, plus
   bechamel micro-benchmarks for the matcher implementations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig10   -- HuggingFace speedup histograms
     dune exec bench/main.exe -- fig11   -- TorchVision speedup histograms
     dune exec bench/main.exe -- fig12   -- HF matcher cost vs #matches
     dune exec bench/main.exe -- fig13   -- TV matcher cost vs #matches
     dune exec bench/main.exe -- micro   -- bechamel matcher micro-benches
     dune exec bench/main.exe -- ablation -- pass/matcher design ablations

   Options:
     --engine naive/index/plan/egraph -- pin the matching engine (default:
                                     run the paper's naive engine for the
                                     figure tables, and naive/index/plan
                                     for the engine-comparison section of
                                     fig12/fig13; egraph is opt-in there
                                     since its saturation post-phase can
                                     change the final graph)
     --quick                      -- smoke mode: first 3 models per suite
     --json PATH                  -- fig12/fig13: also write the figure's
                                     machine-readable trajectory (engine x
                                     domain-count matcher totals) to PATH;
                                     the figure name is inserted before the
                                     extension unless already present *)

open Pypm

let device = Cost.a6000

(* --engine / --quick, parsed in the driver at the bottom. *)
let engine_filter : Pass.engine option ref = ref None
let quick = ref false

let engine_name = function
  | Pass.Naive -> "naive"
  | Pass.Index -> "index"
  | Pass.Plan -> "plan"
  | Pass.Egraph -> "egraph"

let engines_selected () =
  match !engine_filter with
  | Some e -> [ e ]
  | None -> [ Pass.Naive; Pass.Index; Pass.Plan ]

let rec take n = function
  | x :: xs when n > 0 -> x :: take (n - 1) xs
  | _ -> []

let suite_models models = if !quick then take 3 models else models

(* Durations come from the monotonic clock: gettimeofday is subject to
   NTP slews and steps, which turn a benchmark row into noise. *)
let time_s f =
  let t0 = Obs.monotonic () in
  let r = f () in
  (r, Obs.monotonic () -. t0)

(* --json PATH: write the figure's machine-readable trajectory. When the
   path does not already name the figure, it is inserted before the
   extension, so one --json BENCH.json serves fig12 and fig13 both. *)
let json_path : string option ref = ref None

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let json_file_for ~figure =
  match !json_path with
  | None -> None
  | Some p ->
      let fig = String.lowercase_ascii figure in
      if contains_sub (String.lowercase_ascii (Filename.basename p)) fig then
        Some p
      else
        let ext = Filename.extension p in
        let base =
          if ext = "" then p else Filename.remove_extension p
        in
        Some (Printf.sprintf "%s_%s%s" base fig ext)

(* ------------------------------------------------------------------ *)
(* Compile configurations (paper: four ways per model)                 *)
(* ------------------------------------------------------------------ *)

type opt_config = Baseline | Fmha_only | Epilog_only | Both

let program_of sg = function
  | Baseline -> Program.make ~sg []
  | Fmha_only -> Corpus.fmha_program sg
  | Epilog_only -> Corpus.epilog_program sg
  | Both -> Corpus.both_program sg

(* Build the model fresh, compile with [config], return simulated cost and
   the pass stats. *)
let compile_and_time ?engine (model : Zoo.model) config =
  let env, g = model.Zoo.build () in
  let prog = program_of env.Std_ops.sg config in
  let stats = Pass.run ?engine prog g in
  let errs = Graph.validate g in
  if errs <> [] then (
    List.iter prerr_endline errs;
    failwith (model.Zoo.mname ^ ": invalid graph after rewriting"));
  (Exec.graph_cost device g, stats)

(* ------------------------------------------------------------------ *)
(* Histogram rendering (figures 10 and 11 are speedup histograms)      *)
(* ------------------------------------------------------------------ *)

let histogram ~title values =
  let buckets =
    [ (1.00, 1.05); (1.05, 1.10); (1.10, 1.20); (1.20, 1.35); (1.35, 1.50);
      (1.50, 1.75); (1.75, 2.00); (2.00, 99.0) ]
  in
  Printf.printf "  %s (n=%d)\n" title (List.length values);
  List.iter
    (fun (lo, hi) ->
      let n =
        List.length (List.filter (fun v -> v >= lo -. 1e-9 && v < hi) values)
      in
      let label =
        if hi > 10. then Printf.sprintf ">= %.2fx      " lo
        else Printf.sprintf "%.2fx - %.2fx" lo hi
      in
      Printf.printf "    %s | %-3d %s\n" label n (String.make n '#'))
    buckets;
  let mean =
    List.fold_left ( +. ) 0. values /. float_of_int (List.length values)
  in
  let mx = List.fold_left Float.max 1.0 values in
  Printf.printf "    mean %.3fx, max %.3fx\n" mean mx

let speedup_figure ~figure ~suite models =
  Printf.printf "== %s: %s relative-speedup histograms ==\n" figure suite;
  Printf.printf
    "   (speedup of each optimized compile vs the same model compiled\n";
  Printf.printf "    with no PyPM rewrites, on the simulated %s)\n\n"
    device.Cost.dname;
  let rows =
    List.map
      (fun (m : Zoo.model) ->
        let base, _ = compile_and_time ?engine:!engine_filter m Baseline in
        let per config =
          let cost, stats = compile_and_time ?engine:!engine_filter m config in
          ( Exec.speedup ~baseline:base ~optimized:cost,
            stats.Pass.total_rewrites )
        in
        let f, fr = per Fmha_only in
        let e, er = per Epilog_only in
        let b, br = per Both in
        Printf.printf
          "  %-16s fmha %.3fx (%d rw)   epilog %.3fx (%d rw)   both %.3fx \
           (%d rw)\n"
          m.Zoo.mname f fr e er b br;
        (f, e, b))
      models
  in
  print_newline ();
  histogram ~title:"FMHA only" (List.map (fun (f, _, _) -> f) rows);
  histogram ~title:"Epilog only" (List.map (fun (_, e, _) -> e) rows);
  histogram ~title:"Both optimizations" (List.map (fun (_, _, b) -> b) rows);
  print_newline ()

let fig10 () =
  speedup_figure ~figure:"FIG10" ~suite:"HuggingFace suite"
    (suite_models (Zoo.hf ()))

let fig11 () =
  speedup_figure ~figure:"FIG11" ~suite:"TorchVision suite"
    (suite_models (Zoo.tv ()))

(* ------------------------------------------------------------------ *)
(* Figures 12 / 13: matcher wall-clock vs number of matches            *)
(* ------------------------------------------------------------------ *)

let pattern_family_time stats =
  List.fold_left
    (fun (m, t) (ps : Pass.pattern_stats) ->
      (m + ps.Pass.matches, t +. ps.Pass.match_time))
    (0, 0.) stats.Pass.per_pattern

(* Structural hash of the live graph after normalization, for the
   cross-engine agreement check. Each model build draws fresh input symbols
   from a global counter ([tokens%1] vs [tokens%19]), so uid suffixes are
   relabelled by first appearance in a DFS from the outputs; shared
   subgraphs are emitted once and referenced, so the hash sees the DAG. *)
let graph_hash g =
  ignore (Graph.gc g);
  let uids = Hashtbl.create 32 in
  let canon_sym (s : Symbol.t) =
    match String.index_opt (s :> string) '%' with
    | None -> (s :> string)
    | Some i ->
        let k =
          match Hashtbl.find_opt uids s with
          | Some k -> k
          | None ->
              let k = Hashtbl.length uids in
              Hashtbl.add uids s k;
              k
        in
        Printf.sprintf "%s#%d" (String.sub (s :> string) 0 i) k
  in
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 256 in
  let rec go (n : Graph.node) =
    match Hashtbl.find_opt seen n.Graph.id with
    | Some k -> Buffer.add_string buf (Printf.sprintf "@%d" k)
    | None ->
        Hashtbl.add seen n.Graph.id (Hashtbl.length seen);
        Buffer.add_string buf (canon_sym n.Graph.op);
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "{%s=%d}" k v))
          (List.sort compare n.Graph.attrs);
        (match n.Graph.inputs with
        | [] -> ()
        | inputs ->
            Buffer.add_char buf '(';
            List.iteri
              (fun i u ->
                if i > 0 then Buffer.add_char buf ',';
                go u)
              inputs;
            Buffer.add_char buf ')')
  in
  List.iter
    (fun o ->
      go o;
      Buffer.add_char buf ';')
    (Graph.outputs g);
  Hashtbl.hash (Buffer.contents buf)

(* Per-engine totals over the same match workload (the full two-family
   program at every node of every model): total backtracking-matcher node
   visits, matcher invocations, trie steps, and matches found. The
   acceptance bar for the pattern-set compiler is [plan] doing strictly
   fewer matcher visits than [index] while finding the same matches. *)
let engine_comparison models =
  Printf.printf
    "\n   engine comparison (match_only, both families, all models):\n";
  Printf.printf
    "   engine   matcher-visits   attempts   trie-steps   matches      ms\n";
  let rows =
    List.map
      (fun engine ->
        let visits = ref 0
        and attempts = ref 0
        and steps = ref 0
        and matches = ref 0
        and ms = ref 0. in
        List.iter
          (fun (m : Zoo.model) ->
            let env, g = m.Zoo.build () in
            let prog = Corpus.both_program env.Std_ops.sg in
            Matcher.reset_cumulative_visits ();
            Plan.reset_cumulative_steps ();
            let stats = Pass.match_only ~engine prog g in
            visits := !visits + Matcher.cumulative_visits ();
            steps := !steps + Plan.cumulative_steps ();
            ms := !ms +. ((stats.Pass.wall_time +. stats.Pass.plan_time) *. 1e3);
            List.iter
              (fun (ps : Pass.pattern_stats) ->
                attempts := !attempts + ps.Pass.attempts;
                matches := !matches + ps.Pass.matches)
              stats.Pass.per_pattern)
          models;
        Printf.printf "   %-8s %14d %10d %12d %9d %7.1f\n" (engine_name engine)
          !visits !attempts !steps !matches !ms;
        (engine, !visits, !matches))
      (engines_selected ())
  in
  (match
     ( List.assoc_opt Pass.Index
         (List.map (fun (e, v, _) -> (e, v)) rows),
       List.assoc_opt Pass.Plan (List.map (fun (e, v, _) -> (e, v)) rows) )
   with
  | Some vi, Some vp ->
      Printf.printf "   plan vs index matcher-visits: %d vs %d -- %s\n" vp vi
        (if vp < vi then "strictly fewer, OK"
         else "NOT fewer -- acceptance violated")
  | _ -> ());
  match rows with
  | (_, _, m0) :: rest ->
      if not (List.for_all (fun (_, _, m) -> m = m0) rest) then
        Printf.printf "   WARNING: engines disagree on match counts!\n"
  | [] -> ()

(* All selected engines must drive the rewrite pass to the same fixpoint:
   same rewrite count, structurally identical final graph. *)
let engine_agreement models =
  Printf.printf
    "\n   rewrite agreement (full pass to fixpoint, per engine):\n";
  let disagreements = ref 0 in
  List.iter
    (fun (m : Zoo.model) ->
      let results =
        List.map
          (fun engine ->
            let env, g = m.Zoo.build () in
            let stats =
              Pass.run ~engine (Corpus.both_program env.Std_ops.sg) g
            in
            (engine, stats.Pass.total_rewrites, graph_hash g))
          (engines_selected ())
      in
      match results with
      | [] | [ _ ] -> ()
      | (_, r0, h0) :: rest ->
          if not (List.for_all (fun (_, r, h) -> r = r0 && h = h0) rest) then (
            incr disagreements;
            Printf.printf "   DISAGREE %-16s %s\n" m.Zoo.mname
              (String.concat "  "
                 (List.map
                    (fun (e, r, h) ->
                      Printf.sprintf "%s: %d rw, graph %08x" (engine_name e) r
                        h)
                    results))))
    models;
  let n = List.length models in
  if !disagreements = 0 then
    Printf.printf
      "   identical rewrite counts and final graphs across {%s} on all %d \
       models\n"
      (String.concat ", " (List.map engine_name (engines_selected ())))
      n
  else
    Printf.printf "   DISAGREEMENTS on %d of %d models\n" !disagreements n

(* One Chrome trace per figure suite: a full plan-engine rewrite pass over
   the suite's first model, every engine event captured. Loadable in
   chrome://tracing or Perfetto; the file the observability doc points at. *)
let suite_trace ~figure models =
  match models with
  | [] -> ()
  | (m : Zoo.model) :: _ ->
      let path = String.lowercase_ascii figure ^ ".trace.json" in
      let c = Obs.Collector.create () in
      let stats =
        Obs.with_sink (Obs.Collector.sink c) (fun () ->
            let env, g = m.Zoo.build () in
            Pass.run ~engine:Pass.Plan (Corpus.both_program env.Std_ops.sg) g)
      in
      Obs.Chrome.write path (Obs.Collector.events c);
      Printf.printf
        "   wrote %s: %d events from a plan-engine pass over %s (%d \
         rewrites, %d provenance steps)\n"
        path (Obs.Collector.length c) m.Zoo.mname stats.Pass.total_rewrites
        (List.length stats.Pass.provenance)

(* Matcher-phase scaling: the same match_only workload (both families at
   every node of every model), per engine, per domain count. Times come
   from [time_s] around the whole call (best of two runs per cell);
   matches/attempts come from the per-pattern stats — NOT from the
   domain-local matcher visit counters, which undercount across domains. *)
let domain_counts = [ 1; 2; 4 ]

type sweep_row = {
  sw_engine : string;
  sw_domains : int;
  sw_s : float;
  sw_matches : int;
  sw_attempts : int;
}

let domain_sweep models =
  Printf.printf
    "\n   matcher-phase domain sweep (match_only, both families, all \
     models):\n";
  Printf.printf "   engine   domains        ms    matches   attempts\n";
  let rows =
    List.concat_map
      (fun engine ->
        List.map
          (fun domains ->
            let total_s = ref 0.
            and matches = ref 0
            and attempts = ref 0 in
            (* one team per domain count, reused across every model:
               spawning domains costs milliseconds and is not the phase
               being measured *)
            let team = if domains > 1 then Some (Team.create ~shards:domains) else None in
            let config =
              Pass.Config.override ~engine ~domains ?team Pass.Config.default
            in
            Fun.protect
              ~finally:(fun () -> Option.iter Team.shutdown team)
              (fun () ->
                List.iter
                  (fun (m : Zoo.model) ->
                    let env, g = m.Zoo.build () in
                    let prog = Corpus.both_program env.Std_ops.sg in
                    let once () =
                      snd
                        (time_s (fun () ->
                             Pass.match_only_cfg ~config prog g))
                    in
                    let t = Float.min (once ()) (once ()) in
                    let stats = Pass.match_only_cfg ~config prog g in
                    total_s := !total_s +. t;
                    List.iter
                      (fun (ps : Pass.pattern_stats) ->
                        matches := !matches + ps.Pass.matches;
                        attempts := !attempts + ps.Pass.attempts)
                      stats.Pass.per_pattern)
                  models);
            let row =
              {
                sw_engine = engine_name engine;
                sw_domains = domains;
                sw_s = !total_s;
                sw_matches = !matches;
                sw_attempts = !attempts;
              }
            in
            Printf.printf "   %-8s %7d %9.1f %10d %10d\n" row.sw_engine
              row.sw_domains (row.sw_s *. 1e3) row.sw_matches row.sw_attempts;
            row)
          domain_counts)
      (engines_selected ())
  in
  (* every domain count must find exactly the same matches *)
  let agrees =
    List.for_all
      (fun e ->
        match
          List.filter (fun r -> r.sw_engine = engine_name e) rows
        with
        | [] -> true
        | r0 :: rest ->
            List.for_all (fun r -> r.sw_matches = r0.sw_matches) rest)
      (engines_selected ())
  in
  let speedup engine =
    let of_d d =
      List.find_opt
        (fun r -> r.sw_engine = engine_name engine && r.sw_domains = d)
        rows
    in
    match (of_d 1, of_d (List.fold_left max 1 domain_counts)) with
    | Some a, Some b when b.sw_s > 0. -> Some (a.sw_s /. b.sw_s)
    | _ -> None
  in
  List.iter
    (fun e ->
      match speedup e with
      | Some s ->
          Printf.printf "   %-8s matcher-phase speedup at %d domains: %.2fx\n"
            (engine_name e)
            (List.fold_left max 1 domain_counts)
            s
      | None -> ())
    (engines_selected ());
  Printf.printf "   parallel totals %s sequential totals\n"
    (if agrees then "agree with" else "DISAGREE with");
  (rows, agrees)

let write_bench_json ~figure ~suite ~models ~max_pass (rows, agrees) =
  match json_file_for ~figure with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 4096 in
      let engines = engines_selected () in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"figure\":\"%s\",\"suite\":\"%s\",\"quick\":%b,\"models\":%d,\"cores\":%d,\n"
           (String.lowercase_ascii figure)
           suite !quick (List.length models)
           (Domain.recommended_domain_count ()));
      Buffer.add_string buf
        (Printf.sprintf "\"max_full_pass_s\":%.6f,\"parallel_agrees\":%b,\n"
           max_pass agrees);
      Buffer.add_string buf "\"engines\":[";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ",";
          let ename = engine_name e in
          let erows = List.filter (fun r -> r.sw_engine = ename) rows in
          let find_d d = List.find_opt (fun r -> r.sw_domains = d) erows in
          let dmax = List.fold_left max 1 domain_counts in
          let speedup =
            match (find_d 1, find_d dmax) with
            | Some a, Some b when b.sw_s > 0. -> a.sw_s /. b.sw_s
            | _ -> 0.
          in
          Buffer.add_string buf
            (Printf.sprintf "\n{\"engine\":\"%s\",\"speedup\":%.3f,\"sweep\":["
               ename speedup);
          List.iteri
            (fun j r ->
              if j > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf
                (Printf.sprintf
                   "\n  \
                    {\"domains\":%d,\"total_s\":%.6f,\"matches\":%d,\"attempts\":%d}"
                   r.sw_domains r.sw_s r.sw_matches r.sw_attempts))
            erows;
          Buffer.add_string buf "]}")
        engines;
      Buffer.add_string buf "]}\n";
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Buffer.output_buffer oc buf);
      Printf.printf "   wrote %s\n" path

let compile_cost_figure ~figure ~suite models =
  Printf.printf "== %s: %s pattern-matching compile-time cost ==\n" figure
    suite;
  Printf.printf
    "   model            nodes   MHA matches  MHA ms      Epilog matches  \
     Epilog ms\n";
  let acc_mha_t = ref 0. and acc_epi_t = ref 0. in
  let zero_match_mha_t = ref 0. and zero_match_epi_t = ref 0. in
  let zero_n = ref 0 in
  let max_pass = ref 0. in
  List.iter
    (fun (m : Zoo.model) ->
      let env, g = m.Zoo.build () in
      let nodes = Graph.live_count g in
      let mha_stats =
        Pass.match_only ?engine:!engine_filter
          (Corpus.fmha_program env.Std_ops.sg)
          g
      in
      let epi_stats =
        Pass.match_only ?engine:!engine_filter
          (Corpus.epilog_program env.Std_ops.sg)
          g
      in
      let mha_m, mha_t = pattern_family_time mha_stats in
      let epi_m, epi_t = pattern_family_time epi_stats in
      (* the paper's "< 3 s" bound is about the full rewrite pass *)
      let _, full = compile_and_time ?engine:!engine_filter m Both in
      max_pass := Float.max !max_pass full.Pass.wall_time;
      acc_mha_t := !acc_mha_t +. mha_t;
      acc_epi_t := !acc_epi_t +. epi_t;
      if mha_m = 0 then (
        incr zero_n;
        zero_match_mha_t := !zero_match_mha_t +. mha_t;
        zero_match_epi_t := !zero_match_epi_t +. epi_t);
      Printf.printf "   %-16s %-7d %-12d %-11.3f %-15d %.3f\n" m.Zoo.mname
        nodes mha_m (mha_t *. 1e3) epi_m (epi_t *. 1e3))
    models;
  Printf.printf
    "\n   total matcher time: MHA %.1f ms, Epilog %.1f ms (ratio %.1fx)\n"
    (!acc_mha_t *. 1e3) (!acc_epi_t *. 1e3)
    (if !acc_mha_t > 0. then !acc_epi_t /. !acc_mha_t else nan);
  if !zero_n > 0 then
    Printf.printf
      "   QUAL1: on the %d models with zero MHA matches, Epilog matching \
       cost\n\
      \          %.1fx the MHA matching cost (paper: ~2 orders of magnitude)\n"
      !zero_n
      (if !zero_match_mha_t > 0. then !zero_match_epi_t /. !zero_match_mha_t
       else nan);
  Printf.printf
    "   QUAL2: max full rewrite-pass time on any model: %.3f s (paper \
     bound: < 3 s)\n"
    !max_pass;
  engine_comparison models;
  engine_agreement models;
  let sweep = domain_sweep models in
  write_bench_json ~figure ~suite ~models ~max_pass:!max_pass sweep;
  suite_trace ~figure models;
  print_newline ()

let fig12 () =
  compile_cost_figure ~figure:"FIG12" ~suite:"HuggingFace"
    (suite_models (Zoo.hf ()))

let fig13 () =
  compile_cost_figure ~figure:"FIG13" ~suite:"TorchVision"
    (suite_models (Zoo.tv ()))

(* ------------------------------------------------------------------ *)
(* MM (extension): the multimodal models where all three optimization  *)
(* families fire in one graph                                          *)
(* ------------------------------------------------------------------ *)

let mm () =
  Printf.printf
    "== MM (extension): CLIP-style multimodal models, full program ==\n";
  List.iter
    (fun (m : Zoo.model) ->
      let env, g = m.Zoo.build () in
      let base = Exec.graph_cost device g in
      let stats =
        Pass.run ?engine:!engine_filter (Corpus.full_program env.Std_ops.sg) g
      in
      let after = Exec.graph_cost device g in
      Printf.printf
        "   %-12s %3d rewrites: fmha %d, conv-epilog %d, gemm-epilog %d, \
         cublas-xyT %d; speedup %.3fx\n"
        m.Zoo.mname stats.Pass.total_rewrites
        (Graph.count_op g Std_ops.fmha)
        (Graph.count_op g Std_ops.conv_bias_relu)
        (Graph.count_op g Std_ops.gemm_bias_epilog_gelu
        + Graph.count_op g Std_ops.gemm_bias_epilog_relu
        + Graph.count_op g Std_ops.gemm_epilog_gelu
        + Graph.count_op g Std_ops.gemm_epilog_relu)
        (Graph.count_op g Std_ops.cublas_mm_xyt_f32)
        (Exec.speedup ~baseline:base ~optimized:after))
    (suite_models (Zoo.mm ()));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (MICRO): matcher internals & ablations    *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let interp : Guard.interp =
    {
      Guard.term_attr =
        (fun a t -> if a = "size" then Some (Term.size t) else None);
      sym_attr = (fun _ _ -> None);
    }
  in
  (* a deep term and matching pattern *)
  let rec deep_term n =
    if n = 0 then Term.const "a" else Term.app "g" [ deep_term (n - 1) ]
  in
  let rec deep_pattern n =
    if n = 0 then Pattern.var "x" else Pattern.app "g" [ deep_pattern (n - 1) ]
  in
  let t64 = deep_term 64 and p64 = deep_pattern 64 in
  (* an alternate pile that forces backtracking: k wrong branches first *)
  let alt_pattern k =
    let wrong = Pattern.app "h" [ Pattern.var "x" ] in
    Pattern.alts (List.init k (fun _ -> wrong) @ [ deep_pattern 8 ])
  in
  let t8 = deep_term 8 in
  (* the recursive unary chain of figure 3 *)
  let chain =
    Pattern.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ]
      (Pattern.alt
         (Pattern.fapp "F" [ Pattern.call "P" [ "x"; "F" ] ])
         (Pattern.fapp "F" [ Pattern.var "x" ]))
  in
  (* naive equality ablation: structural equality without the memoized
     hash/size shortcuts *)
  let rec naive_equal (a : Term.t) (b : Term.t) =
    Symbol.equal (Term.head a) (Term.head b)
    && List.length (Term.args a) = List.length (Term.args b)
    && List.for_all2 naive_equal (Term.args a) (Term.args b)
  in
  let t64' = deep_term 64 in
  let run_matcher p t () =
    ignore (Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack p t)
  in
  let run_machine p t () =
    ignore (Machine.run ~interp ~policy:Outcome.Policy.Backtrack p t)
  in
  let tests =
    [
      Test.make ~name:"matcher/deep-64" (Staged.stage (run_matcher p64 t64));
      Test.make ~name:"machine/deep-64" (Staged.stage (run_machine p64 t64));
      Test.make ~name:"matcher/alts-32-backtrack"
        (Staged.stage (run_matcher (alt_pattern 32) t8));
      Test.make ~name:"machine/alts-32-backtrack"
        (Staged.stage (run_machine (alt_pattern 32) t8));
      Test.make ~name:"matcher/mu-chain-64"
        (Staged.stage (run_matcher chain t64));
      Test.make ~name:"machine/mu-chain-64"
        (Staged.stage (run_machine chain t64));
      Test.make ~name:"term-equal/hashed"
        (Staged.stage (fun () -> ignore (Term.equal t64 t64')));
      Test.make ~name:"term-equal/naive"
        (Staged.stage (fun () -> ignore (naive_equal t64 t64')));
    ]
  in
  Printf.printf "== MICRO: matcher micro-benchmarks (bechamel) ==\n%!";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "   %-28s %12.1f ns/run\n%!" name ns
          | _ -> Printf.printf "   %-28s (no estimate)\n%!" name)
        results)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* ABLATION: design choices called out in DESIGN.md                    *)
(* ------------------------------------------------------------------ *)

let ablation () =
  Printf.printf "== ABLATION: pass and matcher design choices ==\n";
  (* 1. root-head indexing: skip patterns whose root operator cannot match
     the node (the paper's implementation tries every pattern at every
     node). Same rewrites, less matcher work. *)
  Printf.printf "\n-- matching engine (match_only over the full program) --\n";
  List.iter
    (fun name ->
      let m = Option.get (Zoo.find name) in
      let measure engine =
        let env, g = m.Zoo.build () in
        let prog = Corpus.both_program env.Std_ops.sg in
        (* warm, then time best of 3 *)
        ignore (Pass.match_only ~engine prog g);
        let best = ref infinity in
        for _ = 1 to 3 do
          let _, t = time_s (fun () -> Pass.match_only ~engine prog g) in
          best := Float.min !best t
        done;
        let stats = Pass.match_only ~engine prog g in
        let attempts =
          List.fold_left (fun a ps -> a + ps.Pass.attempts) 0 stats.Pass.per_pattern
        in
        (!best, attempts)
      in
      let t_naive, a_naive = measure Pass.Naive in
      let t_idx, a_idx = measure Pass.Index in
      let t_plan, a_plan = measure Pass.Plan in
      Printf.printf
        "   %-14s naive %7.3f ms (%5d att)   index %7.3f ms (%5d att)   plan \
         %7.3f ms (%3d att)  %4.1fx\n"
        name (t_naive *. 1e3) a_naive (t_idx *. 1e3) a_idx (t_plan *. 1e3)
        a_plan (t_naive /. t_plan))
    [ "bert-base"; "gpt2-medium"; "resnet50-ish"; "vgg19-ish" ];
  (* 2. rewrites are identical whichever engine drives the pass *)
  let m = Option.get (Zoo.find "bert-base") in
  let run engine =
    let env, g = m.Zoo.build () in
    let stats = Pass.run ~engine (Corpus.both_program env.Std_ops.sg) g in
    stats.Pass.total_rewrites
  in
  Printf.printf "   rewrites agree: naive %d, indexed %d, plan %d\n"
    (run Pass.Naive) (run Pass.Index) (run Pass.Plan);
  (* 3. machine policy cost: Faithful vs Backtrack on the corpus patterns
     over a model's term views (identical outcomes here, same cost) *)
  Printf.printf "\n-- production matcher vs abstract machine on model terms --\n";
  let env, g = (Option.get (Zoo.find "bert-mini")).Zoo.build () in
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  let prog = Corpus.both_program env.Std_ops.sg in
  let terms = List.map (Term_view.term_of view) (Graph.live_nodes g) in
  let time_impl name run_one =
    let (), t =
      time_s (fun () ->
          List.iter
            (fun (e : Program.entry) ->
              List.iter (fun t -> ignore (run_one e.Program.pattern t)) terms)
            prog.Program.entries)
    in
    Printf.printf "   %-18s %8.3f ms for %d pattern x node attempts\n" name
      (t *. 1e3)
      (List.length terms * List.length prog.Program.entries)
  in
  time_impl "matcher (CPS)" (fun p t ->
      Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack p t);
  time_impl "abstract machine" (fun p t ->
      Machine.run ~interp ~policy:Outcome.Policy.Backtrack p t);
  (* 4. device sensitivity: relative speedups are a property of the graph
     transformation, not of one device profile *)
  Printf.printf "\n-- device sensitivity (speedup under both optimizations) --\n";
  List.iter
    (fun name ->
      let m = Option.get (Zoo.find name) in
      let speedup dev =
        let env, g = m.Zoo.build () in
        let base = Exec.graph_cost dev g in
        ignore (Pass.run (Corpus.both_program env.Std_ops.sg) g);
        Exec.speedup ~baseline:base ~optimized:(Exec.graph_cost dev g)
      in
      Printf.printf "   %-14s %s %.3fx   %s %.3fx\n" name
        Cost.a6000.Cost.dname (speedup Cost.a6000) Cost.a100.Cost.dname
        (speedup Cost.a100))
    [ "bert-mini"; "gpt2-small"; "resnet18-ish"; "vgg16-ish" ];
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> List.filter (fun a -> a <> "--") rest
    | [] -> []
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--engine" :: e :: rest ->
        (engine_filter :=
           match e with
           | "naive" -> Some Pass.Naive
           | "index" -> Some Pass.Index
           | "plan" -> Some Pass.Plan
           | "egraph" -> Some Pass.Egraph
           | _ ->
               Printf.eprintf "unknown engine %S (naive|index|plan|egraph)\n"
                 e;
               exit 2);
        parse acc rest
    | "--engine" :: [] ->
        Printf.eprintf "--engine needs an argument (naive|index|plan|egraph)\n";
        exit 2
    | "--json" :: p :: rest ->
        json_path := Some p;
        parse acc rest
    | "--json" :: [] ->
        Printf.eprintf "--json needs a file argument\n";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let which = parse [] args in
  let all = which = [] || which = [ "all" ] in
  let want name = all || List.mem name which in
  if want "fig10" then fig10 ();
  if want "fig11" then fig11 ();
  if want "fig12" then fig12 ();
  if want "fig13" then fig13 ();
  if want "mm" then mm ();
  if want "micro" then micro ();
  if want "ablation" then ablation ()
