lib/query/query.mli: Format Graph Pypm_graph Pypm_pattern Pypm_term Subst Symbol Term_view
