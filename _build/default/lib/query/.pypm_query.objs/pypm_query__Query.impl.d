lib/query/query.ml: Attrs Char Dtype Format Graph Guard Hashtbl List Option Pattern Pypm_graph Pypm_pattern Pypm_tensor Pypm_term Shape Signature String Subst Symbol Term Term_view Ty
