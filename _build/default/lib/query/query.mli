(** The logic-programming view: patterns as queries over the graph.

    Section 1 of the paper observes that a computation graph can be viewed
    "as a database of edges between operator nodes, and PyPM patterns as
    queries", with pattern variables as query variables and a satisfying
    assignment as a match. This module takes the observation literally: it
    matches patterns {e directly over graph nodes} instead of over the term
    view, binding pattern variables to {b node identities}.

    The two views coincide on trees but differ on DAGs with sharing:

    - the {e term} matcher is CSE-insensitive — a nonlinear pattern like
      [Mul(x, x)] matches [Mul(a, b)] whenever [a] and [b] compute
      structurally equal values, even if they are distinct nodes;
    - the {e query} matcher is identity-sensitive — [x] must bind the same
      node, so [Mul(a, b)] with duplicated-but-distinct subgraphs does
      {e not} match.

    Query matches therefore form a subset of term matches (property-tested
    in [test/test_query.ml]); on graphs without duplicate subgraphs the two
    agree exactly. The query matcher supports the full non-recursive core
    (alternates, guards, existentials — term and function — and match
    constraints); recursive patterns correspond to recursive queries
    (Datalog fixpoints, as the paper notes) and are reported as
    [Unsupported]. *)

open Pypm_term
open Pypm_graph

(** A satisfying assignment: pattern variables to nodes, function variables
    to operator symbols. *)
type env = {
  nodes : Graph.node Symbol.Map.t;
  ops : Symbol.t Symbol.Map.t;
}

val empty_env : env

type result =
  | Sat of env
  | Unsat
  | Unsupported of string  (** recursive patterns: Datalog is future work *)

(** [solve g p ~root] decides whether the subgraph rooted at [root]
    satisfies the query [p], left-eager like the matcher. Guards are
    evaluated against node tensor types and attributes. *)
val solve : Graph.t -> Pypm_pattern.Pattern.t -> root:Graph.node -> result

(** [solve_all g p] lists the satisfying roots with their assignments, in
    topological node order. *)
val solve_all :
  Graph.t -> Pypm_pattern.Pattern.t -> (Graph.node * env) list

(** {1 Recursive queries}

    The paper's correspondence "recursive patterns correspond to recursive
    queries" made literal: a [mu] denotes a relation over (root node,
    formal assignments) computed as a Datalog-style least fixpoint by
    naive iteration over the finite node set. Because the domain is
    finite, evaluation {e always terminates} — including on
    [mu P(x). P(x)], where the backtracking machine diverges and the least
    fixpoint is simply empty (no derivation exists, so nothing matches).

    Supported: [mu]s whose recursive-call arguments are variables (what
    the elaborator emits). [solve_rec] falls back to the same behaviour as
    {!solve} on non-recursive constructs. *)

(** [solve_rec g p ~root] like {!solve}, with recursive patterns evaluated
    by fixpoint. Never diverges. *)
val solve_rec :
  Graph.t -> Pypm_pattern.Pattern.t -> root:Graph.node -> result

(** [solve_rec_all g p] lists satisfying roots under fixpoint semantics. *)
val solve_rec_all :
  Graph.t -> Pypm_pattern.Pattern.t -> (Graph.node * env) list

(** [env_agrees_with_subst view env theta] checks that a query assignment
    corresponds to a term-matcher substitution: every variable bound in
    both maps to the node whose term is the substitution's binding. Used by
    the equivalence tests. *)
val env_agrees_with_subst :
  Term_view.t -> env -> Subst.t -> bool

val pp_env : Format.formatter -> env -> unit
