open Pypm_term
open Pypm_tensor
open Pypm_graph
open Pypm_pattern
module P = Pattern

type env = {
  nodes : Graph.node Symbol.Map.t;
  ops : Symbol.t Symbol.Map.t;
}

let empty_env = { nodes = Symbol.Map.empty; ops = Symbol.Map.empty }

type result = Sat of env | Unsat | Unsupported of string

exception Unsupported_exc of string

(* ------------------------------------------------------------------ *)
(* Guard evaluation over node assignments                              *)
(*                                                                     *)
(* Same attribute vocabulary as the term view, but structural size /   *)
(* depth count *distinct reachable nodes* — the database view sees     *)
(* sharing, the tree view does not.                                    *)
(* ------------------------------------------------------------------ *)

let reachable_count (n : Graph.node) =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if not (Hashtbl.mem seen n.Graph.id) then (
      Hashtbl.replace seen n.Graph.id ();
      List.iter go n.Graph.inputs)
  in
  go n;
  Hashtbl.length seen

let rec dag_depth (n : Graph.node) =
  1 + List.fold_left (fun acc i -> max acc (dag_depth i)) 0 n.Graph.inputs

let node_attr sg attr (n : Graph.node) =
  match attr with
  | "size" -> Some (reachable_count n)
  | "depth" -> Some (dag_depth n)
  | "op_class" ->
      Option.map Attrs.class_code (Signature.op_class sg n.Graph.op)
  | "value_x1000" -> List.assoc_opt "value_x1000" n.Graph.attrs
  | _ -> (
      match n.Graph.ty with
      | None -> None
      | Some ty -> (
          match attr with
          | "rank" -> Some (Ty.rank ty)
          | "eltType" -> Some (Dtype.code ty.Ty.dtype)
          | "nelems" -> Some (Ty.nelems ty)
          | "bytes" -> Some (Ty.size_bytes ty)
          | _ ->
              if
                String.length attr = 4
                && String.sub attr 0 3 = "dim"
                && attr.[3] >= '0'
                && attr.[3] <= '7'
              then Shape.dim (Char.code attr.[3] - Char.code '0') ty.Ty.shape
              else None))

let sym_attr sg attr s =
  match Signature.find sg s with
  | None -> None
  | Some d -> (
      match attr with
      | "arity" -> Some d.Signature.arity
      | "output_arity" -> Some d.Signature.output_arity
      | "op_class" -> Some (Attrs.class_code d.Signature.op_class)
      | _ -> None)

let ( let* ) = Option.bind

let rec eval_expr sg env (e : Guard.expr) =
  match e with
  | Guard.Const n -> Some n
  | Guard.Var_attr (x, a) ->
      let* n = Symbol.Map.find_opt x env.nodes in
      node_attr sg a n
  | Guard.Term_attr (_, _) ->
      (* closed term attributes do not arise in source patterns *)
      None
  | Guard.Fvar_attr (f, a) ->
      let* s = Symbol.Map.find_opt f env.ops in
      sym_attr sg a s
  | Guard.Sym_attr (s, a) -> sym_attr sg a s
  | Guard.Add (a, b) ->
      let* x = eval_expr sg env a in
      let* y = eval_expr sg env b in
      Some (x + y)
  | Guard.Sub (a, b) ->
      let* x = eval_expr sg env a in
      let* y = eval_expr sg env b in
      Some (x - y)
  | Guard.Mul (a, b) ->
      let* x = eval_expr sg env a in
      let* y = eval_expr sg env b in
      Some (x * y)
  | Guard.Mod (a, b) ->
      let* x = eval_expr sg env a in
      let* y = eval_expr sg env b in
      if y = 0 then None else Some (x mod y)

let rec eval_guard sg env (g : Guard.t) =
  let cmp op a b =
    let* x = eval_expr sg env a in
    let* y = eval_expr sg env b in
    Some (op x y)
  in
  match g with
  | Guard.True -> Some true
  | Guard.False -> Some false
  | Guard.Eq (a, b) -> cmp ( = ) a b
  | Guard.Ne (a, b) -> cmp ( <> ) a b
  | Guard.Lt (a, b) -> cmp ( < ) a b
  | Guard.Le (a, b) -> cmp ( <= ) a b
  | Guard.And (a, b) -> (
      match (eval_guard sg env a, eval_guard sg env b) with
      | Some x, Some y -> Some (x && y)
      | _ -> None)
  | Guard.Or (a, b) -> (
      match (eval_guard sg env a, eval_guard sg env b) with
      | Some x, Some y -> Some (x || y)
      | _ -> None)
  | Guard.Not a ->
      let* x = eval_guard sg env a in
      Some (not x)

(* ------------------------------------------------------------------ *)
(* Query solving                                                       *)
(* ------------------------------------------------------------------ *)

(* A recorded value of a mu formal in the fixpoint relation. [Bany] marks a
   formal the body never constrained (any value satisfies it). *)
type binding = Bnode of int | Bop of Symbol.t | Bany

type mu_info = {
  mi_formals : Subst.var list;
  mi_body : P.t;
  mutable mi_rel : (int * binding list) list; (* insertion order *)
  mutable mi_done : bool;
}

(* The one engine behind [solve] and [solve_rec]:
   [mus = None]  -> recursion is Unsupported (the plain database view);
   [mus = Some tbl] -> mus denote least-fixpoint relations. *)
let solve_gen ?mus g p ~root =
  let sg = Graph.signature g in
  let node_table = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) -> Hashtbl.replace node_table n.Graph.id n)
    (Graph.live_nodes g);
  let lookup_node id = Hashtbl.find_opt node_table id in
  (* unify one relation value against an outer variable name *)
  let unify_binding env y v =
    match v with
    | Bany -> Some env
    | Bnode id -> (
        match Symbol.Map.find_opt y env.nodes with
        | Some m -> if m.Graph.id = id then Some env else None
        | None -> (
            match lookup_node id with
            | Some n -> Some { env with nodes = Symbol.Map.add y n env.nodes }
            | None -> None))
    | Bop s -> (
        match Symbol.Map.find_opt y env.ops with
        | Some s' -> if Symbol.equal s s' then Some env else None
        | None -> Some { env with ops = Symbol.Map.add y s env.ops })
  in
  let rec unify_bindings env ys vs =
    match (ys, vs) with
    | [], [] -> Some env
    | y :: ys, v :: vs -> (
        match unify_binding env y v with
        | Some env -> unify_bindings env ys vs
        | None -> None)
    | _ -> None
  in
  let binding_of env f =
    match Symbol.Map.find_opt f env.nodes with
    | Some n -> Bnode n.Graph.id
    | None -> (
        match Symbol.Map.find_opt f env.ops with
        | Some s -> Bop s
        | None -> Bany)
  in
  (* [go] is shared; [sk] decides first-solution vs all-solutions. *)
  let rec go (p : P.t) (n : Graph.node) env (sk : env -> env option) :
      env option =
    match p with
    | P.Var x -> (
        match Symbol.Map.find_opt x env.nodes with
        | Some m -> if m.Graph.id = n.Graph.id then sk env else None
        | None -> sk { env with nodes = Symbol.Map.add x n env.nodes })
    | P.App (f, ps) ->
        if
          Symbol.equal f n.Graph.op
          && List.length ps = List.length n.Graph.inputs
        then go_args ps n.Graph.inputs env sk
        else None
    | P.Fapp (fv, ps) ->
        if List.length ps <> List.length n.Graph.inputs then None
        else
          let continue_ env = go_args ps n.Graph.inputs env sk in
          (match Symbol.Map.find_opt fv env.ops with
          | Some s ->
              if Symbol.equal s n.Graph.op then continue_ env else None
          | None ->
              continue_
                { env with ops = Symbol.Map.add fv n.Graph.op env.ops })
    | P.Alt (a, b) -> (
        match go a n env sk with Some r -> Some r | None -> go b n env sk)
    | P.Guarded (a, gd) ->
        go a n env (fun env ->
            if eval_guard sg env gd = Some true then sk env else None)
    | P.Exists (x, a) ->
        go a n env (fun env ->
            if Symbol.Map.mem x env.nodes then sk env else None)
    | P.Exists_f (f, a) ->
        go a n env (fun env ->
            if Symbol.Map.mem f env.ops then sk env else None)
    | P.Constr (a, b, x) ->
        go a n env (fun env ->
            match Symbol.Map.find_opt x env.nodes with
            | Some m -> go b m env sk
            | None -> None)
    | P.Mu (m, ys) -> (
        match mus with
        | None ->
            raise
              (Unsupported_exc
                 "recursive patterns are recursive queries (Datalog \
                  fixpoints); use solve_rec")
        | Some tbl ->
            let mi = ensure_mu tbl m in
            List.fold_left
              (fun acc (r, vals) ->
                match acc with
                | Some _ -> acc
                | None ->
                    if r = n.Graph.id then
                      match unify_bindings env ys vals with
                      | Some env -> sk env
                      | None -> None
                    else None)
              None mi.mi_rel)
    | P.Call (pn, ys) -> (
        match mus with
        | None ->
            raise
              (Unsupported_exc
                 "recursive patterns are recursive queries (Datalog \
                  fixpoints); use solve_rec")
        | Some tbl -> (
            match Hashtbl.find_opt tbl pn with
            | None ->
                raise (Unsupported_exc ("free recursive call to " ^ pn))
            | Some mi ->
                List.fold_left
                  (fun acc (r, vals) ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                        if r = n.Graph.id then
                          match unify_bindings env ys vals with
                          | Some env -> sk env
                          | None -> None
                        else None)
                  None mi.mi_rel))
  and go_args ps ns env sk =
    match (ps, ns) with
    | [], [] -> sk env
    | p :: ps, n :: ns -> go p n env (fun env -> go_args ps ns env sk)
    | _ -> None
  (* Least fixpoint: naively re-derive over every node until the relation
     stops growing. The domain (nodes x finite bindings) is finite, so this
     terminates on every pattern, including mu P(x). P(x). *)
  and ensure_mu tbl (m : P.mu) =
    match Hashtbl.find_opt tbl m.P.pname with
    | Some mi when mi.mi_done -> mi
    | Some mi -> mi (* inside its own fixpoint: use the current relation *)
    | None ->
        let mi =
          {
            mi_formals = m.P.formals;
            mi_body = m.P.body;
            mi_rel = [];
            mi_done = false;
          }
        in
        Hashtbl.replace tbl m.P.pname mi;
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun (n : Graph.node) ->
              (* all-solutions over the body at n: record every derived
                 formal assignment *)
              ignore
                (go mi.mi_body n empty_env (fun env ->
                     let entry =
                       (n.Graph.id, List.map (binding_of env) mi.mi_formals)
                     in
                     if not (List.mem entry mi.mi_rel) then (
                       mi.mi_rel <- mi.mi_rel @ [ entry ];
                       changed := true);
                     (* keep searching: never commit *)
                     None)))
            (Graph.live_nodes g)
        done;
        mi.mi_done <- true;
        mi
  in
  match go p root empty_env Option.some with
  | Some env -> Sat env
  | None -> Unsat
  | exception Unsupported_exc msg -> Unsupported msg

let solve g p ~root = solve_gen g p ~root

let solve_all g p =
  List.filter_map
    (fun n ->
      match solve g p ~root:n with
      | Sat env -> Some (n, env)
      | Unsat -> None
      | Unsupported msg -> raise (Unsupported_exc msg))
    (Graph.live_nodes g)

let solve_rec g p ~root = solve_gen ~mus:(Hashtbl.create 4) g p ~root

let solve_rec_all g p =
  (* share one fixpoint table across roots: the relations depend only on
     the graph and the mu bodies *)
  let mus = Hashtbl.create 4 in
  List.filter_map
    (fun n ->
      match solve_gen ~mus g p ~root:n with
      | Sat env -> Some (n, env)
      | Unsat -> None
      | Unsupported msg -> raise (Unsupported_exc msg))
    (Graph.live_nodes g)

let env_agrees_with_subst view env theta =
  Symbol.Map.for_all
    (fun x (n : Graph.node) ->
      match Subst.find x theta with
      | None -> true
      | Some t -> Term.equal t (Term_view.term_of view n))
    env.nodes

let pp_env ppf env =
  Format.fprintf ppf "@[<h>{";
  let first = ref true in
  Symbol.Map.iter
    (fun x (n : Graph.node) ->
      if not !first then Format.fprintf ppf ",@ ";
      first := false;
      Format.fprintf ppf "%s |-> %%%d" x n.Graph.id)
    env.nodes;
  Symbol.Map.iter
    (fun f s ->
      if not !first then Format.fprintf ppf ",@ ";
      first := false;
      Format.fprintf ppf "%s |-> %s" f s)
    env.ops;
  Format.fprintf ppf "}@]"
