open Pypm_term
open Pypm_tensor

let color_of_class = function
  | "input" -> "lightblue"
  | "const" -> "gray90"
  | "matmul" | "linear" -> "gold"
  | "conv" -> "orange"
  | "fused_kernel" -> "palegreen"
  | "fused" -> "mediumseagreen"
  | "softmax" -> "plum"
  | "transpose" | "layout" -> "lightsteelblue"
  | "opaque" -> "lightcoral"
  | _ -> "white"

let escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '<' -> "\\<" | '>' -> "\\>"
         | '{' -> "\\{" | '}' -> "\\}" | '|' -> "\\|"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  let sg = Graph.signature g in
  Buffer.add_string buf "digraph pypm {\n";
  Buffer.add_string buf "  rankdir=BT;\n  node [shape=record, style=filled];\n";
  List.iter
    (fun (n : Graph.node) ->
      let cls =
        Option.value ~default:"generic" (Signature.op_class sg n.Graph.op)
      in
      let ty =
        match n.Graph.ty with
        | Some ty -> Ty.to_string ty
        | None -> "opaque"
      in
      let extra =
        if List.mem n.Graph.id highlight then ", penwidth=3" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"{%s|%s}\", fillcolor=%s%s];\n"
           n.Graph.id
           (escape n.Graph.op)
           (escape ty) (color_of_class cls) extra))
    (Graph.live_nodes g);
  List.iter
    (fun (n : Graph.node) ->
      List.iteri
        (fun i (input : Graph.node) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%d\"];\n" input.Graph.id
               n.Graph.id i))
        n.Graph.inputs)
    (Graph.live_nodes g);
  (* mark outputs *)
  List.iteri
    (fun i (o : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  out%d [label=\"output %d\", shape=oval, fillcolor=black, \
            fontcolor=white];\n\
           \  n%d -> out%d;\n"
           i i o.Graph.id i))
    (Graph.outputs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ?highlight path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_dot ?highlight g))
