(** Graphviz export of computation graphs.

    Renders the live graph as a DOT digraph: one record node per operator
    (name, tensor type), edges following dataflow. Operator classes map to
    colors so rewrite results are visually obvious (library kernels and
    fused regions stand out). Used by [pypmc optimize --dot] and handy when
    debugging rewrites. *)

(** [to_dot ?highlight g] renders the graph. Nodes whose ids appear in
    [highlight] get a bold outline (e.g. the most recent rewrite's
    replacements). *)
val to_dot : ?highlight:int list -> Graph.t -> string

(** [write ?highlight path g] writes the rendering to a file. *)
val write : ?highlight:int list -> string -> Graph.t -> unit
