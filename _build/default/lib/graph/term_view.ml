open Pypm_term
open Pypm_tensor

type t = {
  g : Graph.t;
  node_term : (int, Term.t) Hashtbl.t;
  term_node : Graph.node Term.Tbl.t;
}

let create g =
  { g; node_term = Hashtbl.create 256; term_node = Term.Tbl.create 256 }

let graph v = v.g

let rec term_of v (n : Graph.node) =
  match Hashtbl.find_opt v.node_term n.id with
  | Some t -> t
  | None ->
      let t = Term.app n.op (List.map (term_of v) n.inputs) in
      Hashtbl.replace v.node_term n.id t;
      if not (Term.Tbl.mem v.term_node t) then Term.Tbl.add v.term_node t n;
      t

let node_of v t = Term.Tbl.find_opt v.term_node t

let type_of v t =
  match node_of v t with Some n -> n.ty | None -> None

let interp v : Pypm_pattern.Guard.interp =
  let base = Attrs.interp ~sg:(Graph.signature v.g) ~type_of:(type_of v) in
  {
    base with
    term_attr =
      (fun attr t ->
        match attr with
        | "value_x1000" ->
            Option.bind (node_of v t) (fun n ->
                List.assoc_opt "value_x1000" n.Graph.attrs)
        | _ -> base.term_attr attr t);
  }
