lib/graph/dot.ml: Buffer Fun Graph List Option Printf Pypm_tensor Pypm_term Signature String Ty
