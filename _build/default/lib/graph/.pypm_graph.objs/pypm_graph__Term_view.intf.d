lib/graph/term_view.mli: Graph Pypm_pattern Pypm_tensor Pypm_term Term Ty
