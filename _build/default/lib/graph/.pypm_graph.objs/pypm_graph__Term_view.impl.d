lib/graph/term_view.ml: Attrs Graph Hashtbl List Option Pypm_pattern Pypm_tensor Pypm_term Term
