lib/graph/graph.ml: Dtype Float Format Hashtbl Infer List Option Printf Pypm_tensor Pypm_term Signature String Symbol Ty
