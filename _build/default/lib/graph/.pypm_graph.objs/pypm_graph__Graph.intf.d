lib/graph/graph.mli: Dtype Format Infer Pypm_tensor Pypm_term Signature Symbol Ty
