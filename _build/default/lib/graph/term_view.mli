(** Term views of computation graphs.

    CorePyPM abstracts operator graphs as syntax trees (paper, section 3);
    the DLCB pass matches "the subtree rooted at the current node". A view
    materializes that abstraction: for every node it builds the term whose
    head is the node's operator and whose arguments are the views of its
    inputs. Sharing in the DAG becomes structural sharing in the term
    (memoized per node, so the view of a whole graph is linear work even
    when the unfolded tree is exponential).

    The view also carries the reverse mapping, term to node, used to
    (a) answer tensor-attribute queries during guard evaluation and
    (b) resolve the nodes that pattern variables bound to when a rewrite
    rule builds its replacement.

    A view is a snapshot: after a destructive rewrite it is stale and a
    fresh view must be built (the engine rebuilds one per traversal). *)

open Pypm_term
open Pypm_tensor

type t

val create : Graph.t -> t
val graph : t -> Graph.t

(** [term_of view n] is the (shared, memoized) term for the subgraph rooted
    at [n]. *)
val term_of : t -> Graph.node -> Term.t

(** [node_of view t] resolves a term produced by this view back to a node.
    Structurally equal subgraphs resolve to the first node encountered;
    all candidates compute the same value, so the choice does not affect
    rewriting semantics. *)
val node_of : t -> Term.t -> Graph.node option

(** [type_of view t] is the tensor type of the resolved node. *)
val type_of : t -> Term.t -> Ty.t option

(** The tensor attribute interpretation for this view: [rank], [eltType],
    [dimN], [nelems], [bytes], plus [value_x1000] on constant nodes, plus
    structural [size]/[depth] and symbol attributes from the signature. *)
val interp : t -> Pypm_pattern.Guard.interp
