(** The standard tensor operator vocabulary.

    Declares every operator the models and patterns use — the analogue of
    the [@op] declarations at the top of a PyPM file (figure 1) — together
    with shape-inference rules and, for the hand-tuned library kernels the
    rewrites target (cuBLAS xyT GEMM, FMHA, epilog-fused GEMM/conv), cost
    specs in the kernel registry. *)

open Pypm_term
open Pypm_tensor

type env = { sg : Signature.t; infer : Infer.t }

(** A fresh environment with the full vocabulary declared. Independent of
    previous calls (graphs built against different envs don't share input
    symbols). Kernel cost specs are registered globally (idempotent). *)
val make : unit -> env

(** {1 Operator names} (symbols declared by {!make})

    Naive graph operators: *)

val matmul : Symbol.t
val trans : Symbol.t
val add : Symbol.t
val sub : Symbol.t
val mul : Symbol.t
val div : Symbol.t
val relu : Symbol.t
val gelu : Symbol.t
val erf : Symbol.t
val tanh_ : Symbol.t
val sigmoid : Symbol.t
val exp_ : Symbol.t
val sqrt_ : Symbol.t
val neg : Symbol.t
val zeros_like : Symbol.t
val softmax : Symbol.t
val layer_norm : Symbol.t
val batch_norm : Symbol.t
val conv2d : Symbol.t
val max_pool : Symbol.t
val avg_pool : Symbol.t
val global_avg_pool : Symbol.t
val flatten : Symbol.t

(** Attention head layout: [SplitHeads] reshapes [b; s; d] to
    [b; heads; s; d/heads] (attribute ["heads"]); [MergeHeads] inverts it.
    Class ["layout"]. *)
val split_heads : Symbol.t

val merge_heads : Symbol.t

(** Library kernels (rewrite targets, class ["fused_kernel"]): *)

val fmha : Symbol.t
val gemm_epilog_relu : Symbol.t
val gemm_epilog_gelu : Symbol.t
val gemm_bias_epilog_relu : Symbol.t
val gemm_bias_epilog_gelu : Symbol.t
val conv_bias_relu : Symbol.t
val cublas_mm_xyt_f32 : Symbol.t
val cublas_mm_xyt_i8 : Symbol.t

(** The scale constant used by GELU's [x / sqrt 2]; shared between the
    model generators and the GELU pattern so their interned literal symbols
    coincide. *)
val sqrt2 : float

(** {1 Guard shorthands} *)

val g_rank : string -> int -> Pypm_pattern.Guard.t
val g_scalar : string -> Pypm_pattern.Guard.t
val g_eltype : string -> Dtype.t -> Pypm_pattern.Guard.t

(** [g_fclass F cls] constrains a function variable's operator class, the
    [opclass(...)] form of figure 14. *)
val g_fclass : string -> string -> Pypm_pattern.Guard.t
