open Pypm_term
open Pypm_tensor
open Pypm_pattern
open Pypm_kernels

type env = { sg : Signature.t; infer : Infer.t }

(* Naive operators *)
let matmul = "MatMul"
let trans = "Trans"
let add = "Add"
let sub = "Sub"
let mul = "Mul"
let div = "Div"
let relu = "Relu"
let gelu = "Gelu"
let erf = "Erf"
let tanh_ = "Tanh"
let sigmoid = "Sigmoid"
let exp_ = "Exp"
let sqrt_ = "Sqrt"
let neg = "Neg"
let zeros_like = "ZerosLike"
let softmax = "Softmax"
let layer_norm = "LayerNorm"
let batch_norm = "BatchNorm"
let conv2d = "Conv2d"
let max_pool = "MaxPool"
let avg_pool = "AvgPool"
let global_avg_pool = "GlobalAvgPool"
let flatten = "Flatten"
let split_heads = "SplitHeads"
let merge_heads = "MergeHeads"

(* Library kernels *)
let fmha = "FMHA"
let gemm_epilog_relu = "GemmEpilog_relu"
let gemm_epilog_gelu = "GemmEpilog_gelu"
let gemm_bias_epilog_relu = "GemmBiasEpilog_relu"
let gemm_bias_epilog_gelu = "GemmBiasEpilog_gelu"
let conv_bias_relu = "ConvBiasRelu"
let cublas_mm_xyt_f32 = "cublasMM_xyT_f32"
let cublas_mm_xyt_i8 = "cublasMM_xyT_i8"

let sqrt2 = Float.sqrt 2.

(* ------------------------------------------------------------------ *)
(* Inference rules for the bespoke operators                           *)
(* ------------------------------------------------------------------ *)

(* GlobalAvgPool: [n; c; h; w] -> [n; c] *)
let infer_gap : Infer.rule =
 fun _ -> function
  | [ (x : Ty.t) ] -> (
      match x.shape with
      | [ n; c; _; _ ] -> Ok (Ty.make x.dtype [ n; c ])
      | _ -> Error "GlobalAvgPool: expected NCHW input")
  | _ -> Error "GlobalAvgPool: expected one input"

(* cublasMM_xyT: x [m; k], y [n; k] -> [m; n] (the Trans is fused) *)
let infer_mm_xyt : Infer.rule =
 fun _ -> function
  | [ (x : Ty.t); (y : Ty.t) ] -> (
      match (x.shape, y.shape) with
      | [ m; k ], [ n; k' ] when k = k' -> Ok (Ty.make x.dtype [ m; n ])
      | _ -> Error "cublasMM_xyT: expected [m;k] and [n;k]")
  | _ -> Error "cublasMM_xyT: expected two inputs"

(* FMHA: Q, K, V : [b; h; s; d] -> [b; h; s; d] *)
let infer_fmha : Infer.rule =
 fun _ -> function
  | [ (q : Ty.t); k; v ] ->
      if Ty.equal q k && Ty.equal q v then Ok q
      else if Shape.rank q.shape >= 2 then Ok q
      else Error "FMHA: rank must be >= 2"
  | _ -> Error "FMHA: expected Q, K, V"

(* SplitHeads: [b; s; d] -> [b; heads; s; d/heads] *)
let infer_split_heads : Infer.rule =
 fun attrs -> function
  | [ (x : Ty.t) ] -> (
      match (List.assoc_opt "heads" attrs, x.shape) with
      | Some h, [ b; s; d ] when h > 0 && d mod h = 0 ->
          Ok (Ty.make x.dtype [ b; h; s; d / h ])
      | Some _, _ -> Error "SplitHeads: expected [b; s; d] divisible by heads"
      | None, _ -> Error "SplitHeads: missing heads attribute")
  | _ -> Error "SplitHeads: expected one input"

(* MergeHeads: [b; h; s; dh] -> [b; s; h*dh] *)
let infer_merge_heads : Infer.rule =
 fun _ -> function
  | [ (x : Ty.t) ] -> (
      match x.shape with
      | [ b; h; s; dh ] -> Ok (Ty.make x.dtype [ b; s; h * dh ])
      | _ -> Error "MergeHeads: expected [b; h; s; dh]")
  | _ -> Error "MergeHeads: expected one input"

(* GemmBiasEpilog: matmul of x, w then broadcast bias *)
let infer_gemm_bias : Infer.rule =
 fun attrs -> function
  | [ x; w; _bias ] -> Infer.matmul attrs [ x; w ]
  | _ -> Error "GemmBiasEpilog: expected x, w, bias"

let make () =
  let sg = Signature.create () in
  let infer = Infer.create () in
  let op ?(output_arity = 1) ?(attrs = []) name ~arity ~cls rule =
    ignore (Signature.declare sg ~output_arity ~op_class:cls ~attrs ~arity name);
    Infer.register infer name rule
  in
  (* naive operators *)
  op matmul ~arity:2 ~cls:"matmul" Infer.matmul;
  op trans ~arity:1 ~cls:"transpose" Infer.transpose;
  List.iter
    (fun name -> op name ~arity:2 ~cls:"binary_pointwise" Infer.pointwise2)
    [ add; sub; mul; div ];
  List.iter
    (fun name -> op name ~arity:1 ~cls:"unary_pointwise" Infer.pointwise1)
    [ relu; gelu; erf; tanh_; sigmoid; exp_; sqrt_; neg; zeros_like ];
  op softmax ~arity:1 ~cls:"softmax" Infer.softmax;
  op layer_norm ~arity:1 ~cls:"normalization" Infer.pointwise1;
  op batch_norm ~arity:1 ~cls:"normalization" Infer.pointwise1;
  op conv2d ~arity:3 ~cls:"conv"
    ~attrs:[ ("stride", Signature.Int_attr); ("pad", Signature.Int_attr) ]
    Infer.conv2d;
  op max_pool ~arity:1 ~cls:"pool"
    ~attrs:[ ("window", Signature.Int_attr); ("stride", Signature.Int_attr) ]
    Infer.pool2d;
  op avg_pool ~arity:1 ~cls:"pool"
    ~attrs:[ ("window", Signature.Int_attr); ("stride", Signature.Int_attr) ]
    Infer.pool2d;
  op global_avg_pool ~arity:1 ~cls:"reduce" infer_gap;
  op flatten ~arity:1 ~cls:"layout" ~attrs:[ ("axis", Signature.Int_attr) ]
    Infer.flatten;
  op split_heads ~arity:1 ~cls:"layout"
    ~attrs:[ ("heads", Signature.Int_attr) ]
    infer_split_heads;
  op merge_heads ~arity:1 ~cls:"layout" infer_merge_heads;
  (* library kernels *)
  op fmha ~arity:3 ~cls:"fused_kernel" infer_fmha;
  op gemm_epilog_relu ~arity:2 ~cls:"fused_kernel" Infer.matmul;
  op gemm_epilog_gelu ~arity:2 ~cls:"fused_kernel" Infer.matmul;
  op gemm_bias_epilog_relu ~arity:3 ~cls:"fused_kernel" infer_gemm_bias;
  op gemm_bias_epilog_gelu ~arity:3 ~cls:"fused_kernel" infer_gemm_bias;
  op conv_bias_relu ~arity:3 ~cls:"fused_kernel"
    ~attrs:[ ("stride", Signature.Int_attr); ("pad", Signature.Int_attr) ]
    Infer.conv2d;
  op cublas_mm_xyt_f32 ~arity:2 ~cls:"fused_kernel" infer_mm_xyt;
  op cublas_mm_xyt_i8 ~arity:2 ~cls:"fused_kernel" infer_mm_xyt;
  (* kernel cost specs (global registry; idempotent) *)
  let conv_flops inputs out =
    match inputs with
    | _ :: (w : Ty.t) :: _ -> (
        match w.Ty.shape with
        | [ _o; c; kh; kw ] ->
            2. *. float_of_int (Ty.nelems out) *. float_of_int (c * kh * kw)
        | _ -> float_of_int (Ty.nelems out))
    | _ -> float_of_int (Ty.nelems out)
  in
  Kernel.register (Kernel.make ~efficiency:0.90 ~flops:Kernel.mha_flops fmha);
  List.iter
    (fun name ->
      Kernel.register (Kernel.make ~efficiency:0.88 ~flops:Kernel.matmul_flops name))
    [
      gemm_epilog_relu;
      gemm_epilog_gelu;
      gemm_bias_epilog_relu;
      gemm_bias_epilog_gelu;
    ];
  Kernel.register (Kernel.make ~efficiency:0.85 ~flops:conv_flops conv_bias_relu);
  List.iter
    (fun name ->
      Kernel.register (Kernel.make ~efficiency:0.92 ~flops:Kernel.matmul_flops name))
    [ cublas_mm_xyt_f32; cublas_mm_xyt_i8 ];
  { sg; infer }

(* ------------------------------------------------------------------ *)
(* Guard shorthands                                                    *)
(* ------------------------------------------------------------------ *)

let g_rank x n = Guard.Eq (Guard.Var_attr (x, "rank"), Guard.Const n)
let g_scalar x = g_rank x 0

let g_eltype x dt =
  Guard.Eq (Guard.Var_attr (x, "eltType"), Guard.Const (Dtype.code dt))

let g_fclass f cls =
  Guard.Eq
    (Guard.Fvar_attr (f, "op_class"), Guard.Const (Attrs.class_code cls))
