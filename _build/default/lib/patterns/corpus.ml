open Pypm_pattern
open Pypm_graph
open Pypm_engine
open Pypm_tensor
module P = Pattern
module G = Guard
module O = Std_ops

let v = P.var
let ( @: ) op ps = P.app op ps
let lit x = P.const (Graph.lit_symbol x)

let is_float x =
  G.Or
    ( G.Or (O.g_eltype x Dtype.F32, O.g_eltype x Dtype.F16),
      O.g_eltype x Dtype.BF16 )

(* ------------------------------------------------------------------ *)
(* Figure 1: MMxyT and the cuBLAS rules                                *)
(* ------------------------------------------------------------------ *)

let mmxyt : Program.entry =
  let pattern =
    P.guarded
      (O.matmul @: [ v "x"; O.trans @: [ v "y" ] ])
      [ O.g_rank "x" 2; O.g_rank "y" 2 ]
  in
  let rule_f32 =
    Rule.make ~name:"cublasrule_f32" ~pattern:"MMxyT"
      ~guard:(G.And (O.g_eltype "x" Dtype.F32, O.g_eltype "y" Dtype.F32))
      (Rule.Rapp (O.cublas_mm_xyt_f32, [ Rule.Rvar "x"; Rule.Rvar "y" ]))
  in
  let rule_i8 =
    Rule.make ~name:"cublasrule_i8" ~pattern:"MMxyT"
      ~guard:(G.And (O.g_eltype "x" Dtype.I8, O.g_eltype "y" Dtype.I8))
      (Rule.Rapp (O.cublas_mm_xyt_i8, [ Rule.Rvar "x"; Rule.Rvar "y" ]))
  in
  { Program.pname = "MMxyT"; pattern; rules = [ rule_f32; rule_i8 ] }

(* Alignment-guarded MMxyT: the paper's motivation is that cuBLAS kernels
   only exist for certain sizes; here every dimension must be a multiple
   of 8 (tensor-core-friendly shapes). *)
let mmxyt_aligned : Program.entry =
  let aligned x d =
    G.Eq (G.Mod (G.Var_attr (x, d), G.Const 8), G.Const 0)
  in
  let pattern =
    P.guarded
      (O.matmul @: [ v "x"; O.trans @: [ v "y" ] ])
      [
        O.g_rank "x" 2; O.g_rank "y" 2;
        aligned "x" "dim0"; aligned "x" "dim1"; aligned "y" "dim0";
      ]
  in
  let rule =
    Rule.make ~name:"cublas_aligned" ~pattern:"MMxyT_aligned"
      ~guard:(G.And (O.g_eltype "x" Dtype.F32, O.g_eltype "y" Dtype.F32))
      (Rule.Rapp (O.cublas_mm_xyt_f32, [ Rule.Rvar "x"; Rule.Rvar "y" ]))
  in
  { Program.pname = "MMxyT_aligned"; pattern; rules = [ rule ] }

(* ------------------------------------------------------------------ *)
(* Figure 2: Half alternates and the GELU pattern                      *)
(* ------------------------------------------------------------------ *)

(* Half(x) = Div(x, 2) || Mul(x, 0.5) || Mul(0.5, x); the non-recursive
   pattern call Half(x) inside Gelu is inlined, exactly what the frontend's
   elaboration does. *)
let half_pat x =
  P.alts
    [
      O.div @: [ x; lit 2.0 ];
      O.mul @: [ x; lit 0.5 ];
      O.mul @: [ lit 0.5; x ];
    ]

let gelu_fuse : Program.entry =
  let x = v "x" in
  (* 1 + erf(x / sqrt 2), either addend order *)
  let inner =
    P.alts
      [
        O.add @: [ lit 1.0; O.erf @: [ O.div @: [ x; lit O.sqrt2 ] ] ];
        O.add @: [ O.erf @: [ O.div @: [ x; lit O.sqrt2 ] ]; lit 1.0 ];
      ]
  in
  let pattern =
    P.guarded
      (P.alts
         [ O.mul @: [ half_pat x; inner ]; O.mul @: [ inner; half_pat x ] ])
      [ is_float "x" ]
  in
  let rule =
    Rule.make ~name:"gelurule" ~pattern:"Gelu"
      (Rule.Rapp (O.gelu, [ Rule.Rvar "x" ]))
  in
  { Program.pname = "Gelu"; pattern; rules = [ rule ] }

(* ------------------------------------------------------------------ *)
(* Section 4.1: multi-head attention -> FMHA                           *)
(* ------------------------------------------------------------------ *)

let mha_fuse : Program.entry =
  let qk = O.matmul @: [ v "q"; O.trans @: [ v "k" ] ] in
  let scaled =
    P.alts
      [
        O.mul @: [ qk; v "s" ];
        O.mul @: [ v "s"; qk ];
        O.div @: [ qk; v "s" ];
      ]
  in
  let pattern =
    P.guarded
      (O.matmul @: [ O.softmax @: [ scaled ]; v "vv" ])
      [
        O.g_scalar "s";
        G.Or (O.g_rank "q" 3, O.g_rank "q" 4);
        is_float "q";
      ]
  in
  let rule =
    Rule.make ~name:"fmharule" ~pattern:"MHA"
      (Rule.Rapp (O.fmha, [ Rule.Rvar "q"; Rule.Rvar "k"; Rule.Rvar "vv" ]))
  in
  { Program.pname = "MHA"; pattern; rules = [ rule ] }

(* ------------------------------------------------------------------ *)
(* Section 4.1: GEMM epilogs                                           *)
(* ------------------------------------------------------------------ *)

let epilog_bias act act_name kernel : Program.entry =
  let mm = O.matmul @: [ v "x"; v "w" ] in
  let pattern =
    P.guarded
      (P.alts
         [ act @: [ O.add @: [ mm; v "b" ] ]; act @: [ O.add @: [ v "b"; mm ] ] ])
      [ O.g_rank "b" 1; is_float "x" ]
  in
  let pname = "EpilogBias_" ^ act_name in
  let rule =
    Rule.make ~name:("epilog_bias_" ^ act_name) ~pattern:pname
      (Rule.Rapp (kernel, [ Rule.Rvar "x"; Rule.Rvar "w"; Rule.Rvar "b" ]))
  in
  { Program.pname; pattern; rules = [ rule ] }

let epilog_plain act act_name kernel : Program.entry =
  let pattern =
    P.guarded (act @: [ O.matmul @: [ v "x"; v "w" ] ]) [ is_float "x" ]
  in
  let pname = "Epilog_" ^ act_name in
  let rule =
    Rule.make ~name:("epilog_" ^ act_name) ~pattern:pname
      (Rule.Rapp (kernel, [ Rule.Rvar "x"; Rule.Rvar "w" ]))
  in
  { Program.pname; pattern; rules = [ rule ] }

let epilog_bias_relu = epilog_bias O.relu "relu" O.gemm_bias_epilog_relu
let epilog_bias_gelu = epilog_bias O.gelu "gelu" O.gemm_bias_epilog_gelu
let epilog_relu = epilog_plain O.relu "relu" O.gemm_epilog_relu
let epilog_gelu = epilog_plain O.gelu "gelu" O.gemm_epilog_gelu

(* Vision epilog: Relu(Conv2d(x, w, b)); the match constraint binds the
   convolution node to [c] so the rule can copy its stride/pad. *)
let conv_epilog : Program.entry =
  let pattern =
    P.constr
      (O.relu @: [ v "c" ])
      (O.conv2d @: [ v "x"; v "w"; v "b" ])
      "c"
  in
  let rule =
    Rule.make ~name:"conv_epilog_relu" ~pattern:"ConvEpilog"
      (Rule.Rcopy_attrs
         (O.conv_bias_relu, [ Rule.Rvar "x"; Rule.Rvar "w"; Rule.Rvar "b" ], "c"))
  in
  { Program.pname = "ConvEpilog"; pattern; rules = [ rule ] }

(* ------------------------------------------------------------------ *)
(* Figure 3: recursive chains                                          *)
(* ------------------------------------------------------------------ *)

(* ReluChain = Relu(mu P(x). Relu(P(x)) || Relu(x)): at least two Relus,
   collapsed to one (Relu is idempotent, so this rule is sound). *)
let relu_chain : Program.entry =
  let inner =
    P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ]
      (P.alt
         (O.relu @: [ P.call "P" [ "x" ] ])
         (O.relu @: [ v "x" ]))
  in
  let pattern = O.relu @: [ inner ] in
  let rule =
    Rule.make ~name:"relu_idempotent" ~pattern:"ReluChain"
      (Rule.Rapp (O.relu, [ Rule.Rvar "x" ]))
  in
  { Program.pname = "ReluChain"; pattern; rules = [ rule ] }

(* Figure 3 verbatim: UnaryChain(x, F) = F(UnaryChain(x, F)) || F(x).
   Match-only: compressing an arbitrary operator tower is not sound. *)
let unary_chain : Program.entry =
  let pattern =
    P.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ]
      (P.alt
         (P.fapp "F" [ P.call "P" [ "x"; "F" ] ])
         (P.fapp "F" [ v "x" ]))
  in
  { Program.pname = "UnaryChain"; pattern; rules = [] }

(* Figure 4: P(x, f, g) with local variables and match constraints; the
   returned x is bound to the *root* of the matched tree. *)
let fig4 : Program.entry =
  let alt1 =
    P.exists "y"
      (P.constr (v "x") (P.fapp "f" [ P.call "P" [ "y"; "f"; "g" ] ]) "x")
  in
  let alt2 =
    P.exists "y"
      (P.exists "z"
         (P.constr (v "x")
            (P.fapp "g"
               [ P.call "P" [ "y"; "f"; "g" ]; P.call "P" [ "z"; "f"; "g" ] ])
            "x"))
  in
  let alt3 = v "x" in
  let pattern =
    P.mu "P"
      ~formals:[ "x"; "f"; "g" ]
      ~actuals:[ "x"; "f"; "g" ]
      (P.alts [ alt1; alt2; alt3 ])
  in
  { Program.pname = "Fig4"; pattern; rules = [] }

(* ------------------------------------------------------------------ *)
(* Figure 14: PwSubgraph / MatMulEpilog                                *)
(* ------------------------------------------------------------------ *)

let matmul_epilog_chain : Program.entry =
  (* PwSubgraph, leaf-parameterized: a tower of unary pointwise operators
     (each level's operator a *fresh* function variable, as in the figure's
     per-level [UnaryOp = Op(1,1)]) over a leaf bound to [z]. *)
  let chain =
    P.mu "Pw" ~formals:[ "z" ] ~actuals:[ "z" ]
      (P.alt
         (P.exists_f "F"
            (P.Guarded
               ( P.fapp "F" [ P.call "Pw" [ "z" ] ],
                 O.g_fclass "F" "unary_pointwise" )))
         (v "z"))
  in
  (* MatMulEpilog: x is the root of the chain and z, the leaf, must be a
     matrix multiplication MatMul(a, b). *)
  let pattern =
    P.exists "z"
      (P.constr
         (P.constr (v "x") chain "x")
         (O.matmul @: [ v "a"; v "b" ])
         "z")
  in
  { Program.pname = "MatMulEpilog"; pattern; rules = [] }

(* Extension of figure 14 for realistic epilogs: chain links may also be
   binary pointwise with a small (rank <= 1) second operand -- a bias add
   or a scalar scale -- and the leaf may be a matmul or a convolution. *)
let epilog_partition : Program.entry =
  let unary_link =
    P.exists_f "F"
      (P.Guarded
         ( P.fapp "F" [ P.call "Pw" [ "z" ] ],
           O.g_fclass "F" "unary_pointwise" ))
  in
  let side_guard w =
    G.And
      ( O.g_fclass "F" "binary_pointwise",
        G.Le (G.Var_attr (w, "rank"), G.Const 1) )
  in
  let binary_link_l =
    P.exists_f "F"
      (P.exists "w"
         (P.Guarded
            (P.fapp "F" [ P.call "Pw" [ "z" ]; v "w" ], side_guard "w")))
  in
  let binary_link_r =
    P.exists_f "F"
      (P.exists "w"
         (P.Guarded
            (P.fapp "F" [ v "w"; P.call "Pw" [ "z" ] ], side_guard "w")))
  in
  let chain =
    P.mu "Pw" ~formals:[ "z" ] ~actuals:[ "z" ]
      (P.alts [ unary_link; binary_link_l; binary_link_r; v "z" ])
  in
  let leaf =
    P.alt
      (O.matmul @: [ v "a"; v "b" ])
      (O.conv2d @: [ v "a"; v "b"; v "cc" ])
  in
  let pattern =
    P.exists "z" (P.constr (P.constr (v "x") chain "x") leaf "z")
  in
  { Program.pname = "EpilogPartition"; pattern; rules = [] }

(* ------------------------------------------------------------------ *)
(* Cleanup rules used by examples                                      *)
(* ------------------------------------------------------------------ *)

let trans_trans : Program.entry =
  let pattern = O.trans @: [ O.trans @: [ v "x" ] ] in
  let rule =
    Rule.make ~name:"trans_involution" ~pattern:"TransTrans" (Rule.Rvar "x")
  in
  { Program.pname = "TransTrans"; pattern; rules = [ rule ] }

let mul_one : Program.entry =
  let pattern =
    P.alts [ O.mul @: [ v "x"; lit 1.0 ]; O.mul @: [ lit 1.0; v "x" ] ]
  in
  let rule = Rule.make ~name:"mul_unit" ~pattern:"MulOne" (Rule.Rvar "x") in
  { Program.pname = "MulOne"; pattern; rules = [ rule ] }

let unit_elim pname op ~commutes unit_value =
  let alts =
    (op @: [ v "x"; lit unit_value ])
    :: (if commutes then [ op @: [ lit unit_value; v "x" ] ] else [])
  in
  let rule =
    Rule.make ~name:(String.lowercase_ascii pname) ~pattern:pname (Rule.Rvar "x")
  in
  { Program.pname; pattern = P.alts alts; rules = [ rule ] }

let add_zero = unit_elim "AddZero" O.add ~commutes:true 0.0
let sub_zero = unit_elim "SubZero" O.sub ~commutes:false 0.0
let div_one = unit_elim "DivOne" O.div ~commutes:false 1.0

(* x * 0 is a zero tensor *of x's shape*; replacing it with the scalar
   literal would change the node's type (the pass's type check rejects
   that), so the replacement is ZerosLike(x). *)
let mul_zero : Program.entry =
  let pattern =
    P.alts [ O.mul @: [ v "x"; lit 0.0 ]; O.mul @: [ lit 0.0; v "x" ] ]
  in
  let rule =
    Rule.make ~name:"mul_absorb" ~pattern:"MulZero"
      (Rule.Rapp (O.zeros_like, [ Rule.Rvar "x" ]))
  in
  { Program.pname = "MulZero"; pattern; rules = [ rule ] }

(* Linear-algebra identities. *)

(* Trans(MatMul(a, b)) => MatMul(Trans(b), Trans(a)) *)
let trans_of_matmul : Program.entry =
  let pattern = O.trans @: [ O.matmul @: [ v "a"; v "b" ] ] in
  let rule =
    Rule.make ~name:"trans_of_matmul" ~pattern:"TransOfMatMul"
      (Rule.Rapp
         ( O.matmul,
           [
             Rule.Rapp (O.trans, [ Rule.Rvar "b" ]);
             Rule.Rapp (O.trans, [ Rule.Rvar "a" ]);
           ] ))
  in
  { Program.pname = "TransOfMatMul"; pattern; rules = [ rule ] }

(* MatMul(Trans(x), Trans(y)) => Trans(MatMul(y, x)) -- the paper's
   introductory example rewrite. *)
let matmul_of_trans : Program.entry =
  let pattern =
    O.matmul @: [ O.trans @: [ v "x" ]; O.trans @: [ v "y" ] ]
  in
  let rule =
    Rule.make ~name:"matmul_of_trans" ~pattern:"MatMulOfTrans"
      (Rule.Rapp
         (O.trans, [ Rule.Rapp (O.matmul, [ Rule.Rvar "y"; Rule.Rvar "x" ]) ]))
  in
  { Program.pname = "MatMulOfTrans"; pattern; rules = [ rule ] }

(* Softmax(Add(x, c)) with scalar c => Softmax(x): softmax is invariant
   under shifting every logit by the same constant. *)
let softmax_shift : Program.entry =
  let pattern =
    P.guarded
      (P.alts
         [
           O.softmax @: [ O.add @: [ v "x"; v "c" ] ];
           O.softmax @: [ O.add @: [ v "c"; v "x" ] ];
         ])
      [ O.g_scalar "c"; G.Le (G.Const 1, G.Var_attr ("x", "rank")) ]
  in
  let rule =
    Rule.make ~name:"softmax_shift" ~pattern:"SoftmaxShift"
      (Rule.Rapp (O.softmax, [ Rule.Rvar "x" ]))
  in
  { Program.pname = "SoftmaxShift"; pattern; rules = [ rule ] }

let neg_neg : Program.entry =
  let pattern = O.neg @: [ O.neg @: [ v "x" ] ] in
  let rule = Rule.make ~name:"neg_neg" ~pattern:"NegNeg" (Rule.Rvar "x") in
  { Program.pname = "NegNeg"; pattern; rules = [ rule ] }

(* ------------------------------------------------------------------ *)
(* Assembled programs                                                  *)
(* ------------------------------------------------------------------ *)

let declare_lits sg =
  List.iter
    (fun value -> ignore (Graph.declare_lit sg value))
    [ 0.0; 0.5; 1.0; 2.0; O.sqrt2 ]

let program sg entries =
  declare_lits sg;
  Program.make ~sg entries

let fmha_program sg = program sg [ mha_fuse ]

let epilog_entries =
  [
    gelu_fuse;
    epilog_bias_relu;
    epilog_bias_gelu;
    epilog_relu;
    epilog_gelu;
    conv_epilog;
  ]

let epilog_program sg = program sg epilog_entries
let both_program sg = program sg (mha_fuse :: epilog_entries)
let partition_program sg = program sg [ epilog_partition; matmul_epilog_chain ]

let cleanup_entries =
  [
    trans_trans; mul_one; add_zero; sub_zero; div_one; mul_zero; relu_chain;
    matmul_of_trans; softmax_shift; neg_neg;
  ]

let cleanup_program sg = program sg cleanup_entries

let full_program sg =
  program sg ((mha_fuse :: epilog_entries) @ (mmxyt :: cleanup_entries))
