lib/patterns/std_ops.mli: Dtype Infer Pypm_pattern Pypm_tensor Pypm_term Signature Symbol
