lib/patterns/std_ops.ml: Attrs Dtype Float Guard Infer Kernel List Pypm_kernels Pypm_pattern Pypm_tensor Pypm_term Shape Signature Ty
