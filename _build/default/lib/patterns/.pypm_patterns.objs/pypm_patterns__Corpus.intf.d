lib/patterns/corpus.mli: Program Pypm_engine Pypm_term
