lib/patterns/corpus.ml: Dtype Graph Guard List Pattern Program Pypm_engine Pypm_graph Pypm_pattern Pypm_tensor Rule Std_ops String
