(** The paper's pattern corpus, elaborated to CorePyPM.

    Every pattern and rule shown in the paper, as {!Pypm_engine.Program}
    entries:

    - figure 1: [MMxyT] and its cuBLAS rules (f32 / i8 dispatch);
    - figure 2: [Half] alternates and the [Gelu] pattern, with a rule
      fusing the 8-node GELU subgraph into a single [Gelu] operator;
    - figure 3: the recursive [UnaryChain] (here instantiated as
      [ReluChain], whose compression rule is actually sound);
    - figure 4: the root-capturing recursive pattern [P(x,f,g)]
      (match-only, exercised in tests and examples);
    - figure 14: [PwSubgraph]/[MatMulEpilog] (match-only; drives directed
      graph partitioning);
    - section 4.1: the [MHA] pattern rewriting to the fused [FMHA] kernel,
      and the GEMM/conv epilog patterns rewriting activation-after-matmul
      (with or without bias) and conv+bias+relu to fused library kernels.

    Pattern names are stable strings; programs assemble ordered subsets. *)

open Pypm_engine

(** {1 Individual entries} *)

(** Figure 1: [MatMul(x, Trans(y))] with rank-2 guards; rules dispatch on
    element type to [cublasMM_xyT_f32] / [cublasMM_xyT_i8]. *)
val mmxyt : Program.entry

(** The alignment-guarded variant of figure 1: cuBLAS kernels "work for
    only a small number of tensor sizes" (section 1), modeled as
    divisibility constraints on the inner/outer dimensions using the
    guard language's [%] operator. *)
val mmxyt_aligned : Program.entry

(** Figure 2: GELU with the [Div(x,2)] / [Mul(x,0.5)] alternates, fused to
    the [Gelu] operator. *)
val gelu_fuse : Program.entry

(** Section 4.1: multi-head attention
    [MatMul(Softmax(scale(MatMul(q, Trans(k)))), v)] with both [Mul] and
    [Div] scale spellings, rewritten to [FMHA(q, k, v)]. *)
val mha_fuse : Program.entry

(** Section 4.1 epilogs: activation after (biased) matmul. *)
val epilog_bias_relu : Program.entry

val epilog_bias_gelu : Program.entry
val epilog_relu : Program.entry
val epilog_gelu : Program.entry

(** Vision epilog: [Relu(Conv2d(x, w, b))] to the fused conv kernel,
    copying stride/pad attributes from the matched convolution. *)
val conv_epilog : Program.entry

(** Figure 3 instantiated soundly: a chain of [Relu]s collapses to one. *)
val relu_chain : Program.entry

(** Figure 3 verbatim: an arbitrary unary-operator tower [F(F(...F(x)))]
    (match-only; the general compression rule would be unsound). *)
val unary_chain : Program.entry

(** Figure 4: recursive pattern over one unary [f] and one binary [g],
    capturing the root via a match constraint (match-only). *)
val fig4 : Program.entry

(** Figure 14: a matmul followed by any number of unary pointwise
    operators, each level's operator existentially fresh (match-only;
    used for directed graph partitioning). *)
val matmul_epilog_chain : Program.entry

(** Extension of figure 14 for realistic epilog partitioning: the chain
    links may also be binary pointwise operators whose other operand is
    small (rank <= 1: a bias vector or scale constant), and the leaf may be
    a matmul or a convolution. Match-only. *)
val epilog_partition : Program.entry

(** Trivial cleanups used by examples: [Trans(Trans(x))] to [x] and
    [Mul(x, 1.0)] to [x]. *)
val trans_trans : Program.entry

val mul_one : Program.entry

(** More algebraic identities: [x + 0], [x - 0], [x / 1] to [x];
    [x * 0] to [ZerosLike(x)] (the replacement must keep [x]'s type). *)
val add_zero : Program.entry

val sub_zero : Program.entry
val div_one : Program.entry
val mul_zero : Program.entry

(** Linear-algebra identities (section 1 sketches the first one as the
    example rewrite "replacing the product of transposes by the transpose
    of the product"):
    - [trans_of_matmul]: [Trans(MatMul(a, b))] to [MatMul(Trans(b), Trans(a))];
    - [matmul_of_trans]: [MatMul(Trans(x), Trans(y))] to [Trans(MatMul(y, x))]
      (the paper's direction);
    - [softmax_shift]: [Softmax(Add(x, c))] with scalar [c] to [Softmax(x)]
      (softmax is shift-invariant);
    - [neg_neg]: [Neg(Neg(x))] to [x]. *)
val trans_of_matmul : Program.entry

val matmul_of_trans : Program.entry
val softmax_shift : Program.entry
val neg_neg : Program.entry

(** All the algebraic cleanups plus the Relu-chain compression. *)
val cleanup_program : Pypm_term.Signature.t -> Program.t

(** {1 Assembled programs}

    Each takes the signature produced by {!Std_ops.make}. *)

(** The FMHA optimization alone (the paper's "FMHA only" configuration). *)
val fmha_program : Pypm_term.Signature.t -> Program.t

(** The Epilog optimization alone: GELU fusion plus all epilog rewrites. *)
val epilog_program : Pypm_term.Signature.t -> Program.t

(** Both optimizations (the paper's "both enabled" configuration). *)
val both_program : Pypm_term.Signature.t -> Program.t

(** Match-only program for directed graph partitioning: the extended
    epilog pattern first (larger regions), figure 14's verbatim chain as a
    fallback. *)
val partition_program : Pypm_term.Signature.t -> Program.t

(** Everything, for the CLI and smoke tests. *)
val full_program : Pypm_term.Signature.t -> Program.t
