(** Static well-formedness checks for patterns.

    PyPM's frontend rejects ill-formed pattern definitions before they are
    serialized; this module is the corresponding checker over CorePyPM.
    Errors mean the pattern is meaningless (arity violation, undeclared
    operator, unbound recursive call); warnings flag patterns that are
    well-defined but suspicious (an existential variable that can never be
    bound, a function variable used at two different arities, a recursive
    pattern with no non-recursive alternate). *)

open Pypm_term

type severity = Error | Warning

type diagnostic = { severity : severity; message : string }

(** [check sg p] returns all diagnostics for [p] against signature [sg]. *)
val check : Signature.t -> Pattern.t -> diagnostic list

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

(** [check_exn sg p] raises [Invalid_argument] with a rendered message if
    [check] reports any error. *)
val check_exn : Signature.t -> Pattern.t -> unit

val pp_diagnostic : Format.formatter -> diagnostic -> unit
