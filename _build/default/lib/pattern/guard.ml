open Pypm_term

type expr =
  | Const of int
  | Var_attr of Subst.var * string
  | Term_attr of Term.t * string
  | Fvar_attr of Fsubst.fvar * string
  | Sym_attr of Symbol.t * string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Mod of expr * expr

type t =
  | True
  | False
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

type interp = {
  term_attr : string -> Term.t -> int option;
  sym_attr : string -> Symbol.t -> int option;
}

let trivial_interp =
  { term_attr = (fun _ _ -> None); sym_attr = (fun _ _ -> None) }

let rec subst_expr theta phi = function
  | Const _ as e -> e
  | Var_attr (x, a) as e -> (
      match Subst.find x theta with
      | Some t -> Term_attr (t, a)
      | None -> e)
  | Term_attr _ as e -> e
  | Fvar_attr (f, a) as e -> (
      match Fsubst.find f phi with
      | Some s -> Sym_attr (s, a)
      | None -> e)
  | Sym_attr _ as e -> e
  | Add (a, b) -> Add (subst_expr theta phi a, subst_expr theta phi b)
  | Sub (a, b) -> Sub (subst_expr theta phi a, subst_expr theta phi b)
  | Mul (a, b) -> Mul (subst_expr theta phi a, subst_expr theta phi b)
  | Mod (a, b) -> Mod (subst_expr theta phi a, subst_expr theta phi b)

let rec subst theta phi = function
  | True -> True
  | False -> False
  | Eq (a, b) -> Eq (subst_expr theta phi a, subst_expr theta phi b)
  | Ne (a, b) -> Ne (subst_expr theta phi a, subst_expr theta phi b)
  | Lt (a, b) -> Lt (subst_expr theta phi a, subst_expr theta phi b)
  | Le (a, b) -> Le (subst_expr theta phi a, subst_expr theta phi b)
  | And (a, b) -> And (subst theta phi a, subst theta phi b)
  | Or (a, b) -> Or (subst theta phi a, subst theta phi b)
  | Not a -> Not (subst theta phi a)

let ( let* ) = Option.bind

let rec eval_expr interp theta phi = function
  | Const n -> Some n
  | Var_attr (x, a) ->
      let* t = Subst.find x theta in
      interp.term_attr a t
  | Term_attr (t, a) -> interp.term_attr a t
  | Fvar_attr (f, a) ->
      let* s = Fsubst.find f phi in
      interp.sym_attr a s
  | Sym_attr (s, a) -> interp.sym_attr a s
  | Add (a, b) ->
      let* x = eval_expr interp theta phi a in
      let* y = eval_expr interp theta phi b in
      Some (x + y)
  | Sub (a, b) ->
      let* x = eval_expr interp theta phi a in
      let* y = eval_expr interp theta phi b in
      Some (x - y)
  | Mul (a, b) ->
      let* x = eval_expr interp theta phi a in
      let* y = eval_expr interp theta phi b in
      Some (x * y)
  | Mod (a, b) ->
      let* x = eval_expr interp theta phi a in
      let* y = eval_expr interp theta phi b in
      if y = 0 then None else Some (x mod y)

let rec eval interp theta phi = function
  | True -> Some true
  | False -> Some false
  | Eq (a, b) -> cmp interp theta phi ( = ) a b
  | Ne (a, b) -> cmp interp theta phi ( <> ) a b
  | Lt (a, b) -> cmp interp theta phi ( < ) a b
  | Le (a, b) -> cmp interp theta phi ( <= ) a b
  | And (a, b) -> (
      (* Logical connectives are strict in undefinedness: an unverifiable
         conjunct poisons the whole guard, matching the paper's requirement
         that [g[theta]] be closed and denote True. *)
      match (eval interp theta phi a, eval interp theta phi b) with
      | Some x, Some y -> Some (x && y)
      | _ -> None)
  | Or (a, b) -> (
      match (eval interp theta phi a, eval interp theta phi b) with
      | Some x, Some y -> Some (x || y)
      | _ -> None)
  | Not a ->
      let* x = eval interp theta phi a in
      Some (not x)

and cmp interp theta phi op a b =
  let* x = eval_expr interp theta phi a in
  let* y = eval_expr interp theta phi b in
  Some (op x y)

let rec expr_vars acc = function
  | Const _ | Term_attr _ | Fvar_attr _ | Sym_attr _ -> acc
  | Var_attr (x, _) -> Symbol.Set.add x acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) ->
      expr_vars (expr_vars acc a) b

let rec expr_fvars acc = function
  | Const _ | Term_attr _ | Var_attr _ | Sym_attr _ -> acc
  | Fvar_attr (f, _) -> Symbol.Set.add f acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) ->
      expr_fvars (expr_fvars acc a) b

let rec fold_exprs f acc = function
  | True | False -> acc
  | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b) -> f (f acc a) b
  | And (a, b) | Or (a, b) -> fold_exprs f (fold_exprs f acc a) b
  | Not a -> fold_exprs f acc a

let vars g = fold_exprs expr_vars Symbol.Set.empty g
let fvars g = fold_exprs expr_fvars Symbol.Set.empty g

let rec rename_expr map = function
  | Const _ as e -> e
  | Var_attr (x, a) -> Var_attr (map x, a)
  | Term_attr _ as e -> e
  | Fvar_attr (f, a) -> Fvar_attr (map f, a)
  | Sym_attr _ as e -> e
  | Add (a, b) -> Add (rename_expr map a, rename_expr map b)
  | Sub (a, b) -> Sub (rename_expr map a, rename_expr map b)
  | Mul (a, b) -> Mul (rename_expr map a, rename_expr map b)
  | Mod (a, b) -> Mod (rename_expr map a, rename_expr map b)

let rec rename map = function
  | True -> True
  | False -> False
  | Eq (a, b) -> Eq (rename_expr map a, rename_expr map b)
  | Ne (a, b) -> Ne (rename_expr map a, rename_expr map b)
  | Lt (a, b) -> Lt (rename_expr map a, rename_expr map b)
  | Le (a, b) -> Le (rename_expr map a, rename_expr map b)
  | And (a, b) -> And (rename map a, rename map b)
  | Or (a, b) -> Or (rename map a, rename map b)
  | Not a -> Not (rename map a)

let conj = function
  | [] -> True
  | g :: gs -> List.fold_left (fun acc g -> And (acc, g)) g gs

let equal (a : t) (b : t) = a = b

let rec pp_expr ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Var_attr (x, a) -> Format.fprintf ppf "%s.%s" x a
  | Term_attr (t, a) -> Format.fprintf ppf "(%a).%s" Term.pp t a
  | Fvar_attr (f, a) -> Format.fprintf ppf "%s.%s" f a
  | Sym_attr (s, a) -> Format.fprintf ppf "%s.%s" s a
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_expr a pp_expr b
  | Mod (a, b) -> Format.fprintf ppf "(%a %% %a)" pp_expr a pp_expr b

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Eq (a, b) -> Format.fprintf ppf "%a == %a" pp_expr a pp_expr b
  | Ne (a, b) -> Format.fprintf ppf "%a != %a" pp_expr a pp_expr b
  | Lt (a, b) -> Format.fprintf ppf "%a < %a" pp_expr a pp_expr b
  | Le (a, b) -> Format.fprintf ppf "%a <= %a" pp_expr a pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Not a -> Format.fprintf ppf "!(%a)" pp a

let to_string g = Format.asprintf "%a" pp g
