open Pypm_term

type severity = Error | Warning
type diagnostic = { severity : severity; message : string }

module SMap = Map.Make (String)

type env = {
  sg : Signature.t;
  (* recursive pattern name -> number of parameters *)
  calls : int SMap.t;
  (* function variable -> arity first seen at *)
  mutable farity : int SMap.t;
  mutable diags : diagnostic list;
}

let error env fmt =
  Format.kasprintf
    (fun message -> env.diags <- { severity = Error; message } :: env.diags)
    fmt

let warn env fmt =
  Format.kasprintf
    (fun message -> env.diags <- { severity = Warning; message } :: env.diags)
    fmt

(* Does the pattern contain an alternate branch that avoids calling [pname]?
   A mu whose every alternate recurses can never terminate (the paper's
   [mu P(x). P(x)] example). This is a conservative syntactic check: we ask
   whether the body, viewed as a tree of alternates, has at least one leaf
   branch free of calls to [pname]. *)
let rec has_base_case pname p =
  match (p : Pattern.t) with
  | Alt (a, b) -> has_base_case pname a || has_base_case pname b
  | other -> Symbol.Set.mem pname (Pattern.free_calls other) |> not

let rec walk env (p : Pattern.t) =
  match p with
  | Var _ -> ()
  | App (f, ps) ->
      (match Signature.arity env.sg f with
      | None -> error env "undeclared operator %s" f
      | Some n ->
          if n <> List.length ps then
            error env "operator %s has arity %d but pattern applies it to %d"
              f n (List.length ps));
      List.iter (walk env) ps
  | Fapp (f, ps) ->
      let n = List.length ps in
      (match SMap.find_opt f env.farity with
      | None -> env.farity <- SMap.add f n env.farity
      | Some n' ->
          if n <> n' then
            warn env
              "function variable %s is used at arity %d and at arity %d; it \
               can never match both"
              f n n');
      List.iter (walk env) ps
  | Alt (a, b) ->
      walk env a;
      walk env b
  | Guarded (p, _) -> walk env p
  | Exists (x, body) ->
      if not (Symbol.Set.mem x (Pattern.free_vars body)) then
        warn env
          "existential variable %s does not occur in its scope and can never \
           be bound; the pattern cannot match"
          x;
      walk env body
  | Exists_f (f, body) ->
      if not (Symbol.Set.mem f (Pattern.free_fvars body)) then
        warn env
          "existential function variable %s does not occur in its scope and \
           can never be bound; the pattern cannot match"
          f;
      (* the binder opens a fresh scope for f's arity: a sibling Exists_f
         reusing the name is a different variable *)
      let saved = SMap.find_opt f env.farity in
      env.farity <- SMap.remove f env.farity;
      walk env body;
      (env.farity <-
         (match saved with
         | Some a -> SMap.add f a (SMap.remove f env.farity)
         | None -> SMap.remove f env.farity))
  | Constr (p, p', x) ->
      if
        (not (Symbol.Set.mem x (Pattern.free_vars p)))
        && not (Symbol.Set.mem x (Pattern.free_vars p'))
      then
        warn env
          "match-constraint target %s is not mentioned by either side; it \
           must be bound by an enclosing pattern"
          x;
      walk env p;
      walk env p'
  | Mu (m, ys) ->
      if List.length m.formals <> List.length ys then
        error env "recursive pattern %s expects %d arguments but is given %d"
          m.pname (List.length m.formals) (List.length ys);
      let distinct =
        List.sort_uniq String.compare m.formals |> List.length
        = List.length m.formals
      in
      if not distinct then
        error env "recursive pattern %s has duplicate formal parameters"
          m.pname;
      if not (has_base_case m.pname m.body) then
        warn env
          "recursive pattern %s has no alternate free of recursive calls; \
           matching it can only run out of fuel"
          m.pname;
      let env' =
        { env with calls = SMap.add m.pname (List.length m.formals) env.calls }
      in
      walk env' m.body;
      env.diags <- env'.diags;
      env.farity <- env'.farity
  | Call (pn, ys) -> (
      match SMap.find_opt pn env.calls with
      | None -> error env "recursive call to %s is not bound by any mu" pn
      | Some n ->
          if n <> List.length ys then
            error env "recursive call %s expects %d arguments but is given %d"
              pn n (List.length ys))

let check sg p =
  let env = { sg; calls = SMap.empty; farity = SMap.empty; diags = [] } in
  walk env p;
  List.rev env.diags

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.message

let check_exn sg p =
  match errors (check sg p) with
  | [] -> ()
  | ds ->
      invalid_arg
        (Format.asprintf "ill-formed pattern:@ %a"
           (Format.pp_print_list pp_diagnostic)
           ds)
