open Pypm_term

type t =
  | Var of Subst.var
  | App of Symbol.t * t list
  | Fapp of Fsubst.fvar * t list
  | Alt of t * t
  | Guarded of t * Guard.t
  | Exists of Subst.var * t
  | Exists_f of Fsubst.fvar * t
  | Constr of t * t * Subst.var
  | Mu of mu * Subst.var list
  | Call of string * Subst.var list

and mu = { pname : string; formals : Subst.var list; body : t }

let var x = Var x
let app f ps = App (f, ps)
let const f = App (f, [])
let fapp f ps = Fapp (f, ps)
let alt p q = Alt (p, q)

let alts = function
  | [] -> invalid_arg "Pattern.alts: empty alternate list"
  | p :: ps -> List.fold_left (fun acc q -> Alt (acc, q)) p ps

let guarded p gs =
  List.fold_left (fun acc g -> Guarded (acc, g)) p gs

let exists x p = Exists (x, p)
let exists_f f p = Exists_f (f, p)
let exists_many xs p = List.fold_right (fun x acc -> Exists (x, acc)) xs p
let constr p p' x = Constr (p, p', x)

let mu pname ~formals ~actuals body =
  if List.length formals <> List.length actuals then
    invalid_arg "Pattern.mu: formals/actuals length mismatch";
  Mu ({ pname; formals; body }, actuals)

let call pname ys = Call (pname, ys)

let rec equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | App (f, ps), App (g, qs) -> Symbol.equal f g && List.equal equal ps qs
  | Fapp (f, ps), Fapp (g, qs) -> String.equal f g && List.equal equal ps qs
  | Alt (p1, p2), Alt (q1, q2) -> equal p1 q1 && equal p2 q2
  | Guarded (p, g), Guarded (q, h) -> equal p q && Guard.equal g h
  | Exists (x, p), Exists (y, q) -> String.equal x y && equal p q
  | Exists_f (x, p), Exists_f (y, q) -> String.equal x y && equal p q
  | Constr (p1, p2, x), Constr (q1, q2, y) ->
      equal p1 q1 && equal p2 q2 && String.equal x y
  | Mu (m, ys), Mu (n, zs) ->
      String.equal m.pname n.pname
      && List.equal String.equal m.formals n.formals
      && equal m.body n.body
      && List.equal String.equal ys zs
  | Call (p, ys), Call (q, zs) ->
      String.equal p q && List.equal String.equal ys zs
  | _ -> false

let rec size = function
  | Var _ | Call _ -> 1
  | App (_, ps) | Fapp (_, ps) -> List.fold_left (fun n p -> n + size p) 1 ps
  | Alt (p, q) -> 1 + size p + size q
  | Guarded (p, _) -> 1 + size p
  | Exists (_, p) | Exists_f (_, p) -> 1 + size p
  | Constr (p, q, _) -> 1 + size p + size q
  | Mu (m, _) -> 1 + size m.body

let rec count_ct f p =
  let self = if f p then 1 else 0 in
  self
  +
  match p with
  | Var _ | Call _ -> 0
  | App (_, ps) | Fapp (_, ps) ->
      List.fold_left (fun n q -> n + count_ct f q) 0 ps
  | Alt (p, q) | Constr (p, q, _) -> count_ct f p + count_ct f q
  | Guarded (p, _) | Exists (_, p) | Exists_f (_, p) -> count_ct f p
  | Mu (m, _) -> count_ct f m.body

let count_alts = count_ct (function Alt _ -> true | _ -> false)
let count_guards = count_ct (function Guarded _ -> true | _ -> false)
let count_mus = count_ct (function Mu _ -> true | _ -> false)

let rec free_vars = function
  | Var x -> Symbol.Set.singleton x
  | App (_, ps) | Fapp (_, ps) ->
      List.fold_left
        (fun acc p -> Symbol.Set.union acc (free_vars p))
        Symbol.Set.empty ps
  | Alt (p, q) -> Symbol.Set.union (free_vars p) (free_vars q)
  | Guarded (p, g) -> Symbol.Set.union (free_vars p) (Guard.vars g)
  | Exists (x, p) -> Symbol.Set.remove x (free_vars p)
  | Exists_f (_, p) -> free_vars p
  | Constr (p, q, x) ->
      Symbol.Set.add x (Symbol.Set.union (free_vars p) (free_vars q))
  | Mu (m, ys) ->
      let body_free =
        List.fold_left
          (fun acc x -> Symbol.Set.remove x acc)
          (free_vars m.body) m.formals
      in
      List.fold_left (fun acc y -> Symbol.Set.add y acc) body_free ys
  | Call (_, ys) -> Symbol.Set.of_list ys

let rec free_fvars = function
  | Var _ | Call _ -> Symbol.Set.empty
  | App (_, ps) ->
      List.fold_left
        (fun acc p -> Symbol.Set.union acc (free_fvars p))
        Symbol.Set.empty ps
  | Fapp (f, ps) ->
      List.fold_left
        (fun acc p -> Symbol.Set.union acc (free_fvars p))
        (Symbol.Set.singleton f) ps
  | Alt (p, q) | Constr (p, q, _) ->
      Symbol.Set.union (free_fvars p) (free_fvars q)
  | Guarded (p, g) -> Symbol.Set.union (free_fvars p) (Guard.fvars g)
  | Exists (_, p) -> free_fvars p
  | Exists_f (f, p) -> Symbol.Set.remove f (free_fvars p)
  | Mu (m, _) ->
      (* Function-variable formals are bound by the mu as well. *)
      List.fold_left
        (fun acc x -> Symbol.Set.remove x acc)
        (free_fvars m.body) m.formals

let rec free_calls = function
  | Var _ -> Symbol.Set.empty
  | App (_, ps) | Fapp (_, ps) ->
      List.fold_left
        (fun acc p -> Symbol.Set.union acc (free_calls p))
        Symbol.Set.empty ps
  | Alt (p, q) | Constr (p, q, _) ->
      Symbol.Set.union (free_calls p) (free_calls q)
  | Guarded (p, _) | Exists (_, p) | Exists_f (_, p) -> free_calls p
  | Mu (m, _) -> Symbol.Set.remove m.pname (free_calls m.body)
  | Call (p, _) -> Symbol.Set.singleton p

let root_heads p =
  let union a b =
    match (a, b) with
    | Some x, Some y -> Some (Symbol.Set.union x y)
    | _ -> None
  in
  let rec go = function
    | Var _ | Fapp _ | Call _ -> None
    | App (f, _) -> Some (Symbol.Set.singleton f)
    | Alt (a, b) -> union (go a) (go b)
    | Guarded (a, _) | Exists (_, a) | Exists_f (_, a) | Constr (a, _, _) ->
        go a
    | Mu (m, _) -> go m.body
  in
  go p

(* ------------------------------------------------------------------ *)
(* Renaming                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_counter = ref 0

let fresh_name base =
  incr fresh_counter;
  Printf.sprintf "%s#%d" base !fresh_counter

module SMap = Map.Make (String)

let rename pairs p =
  let init =
    List.fold_left (fun acc (x, y) -> SMap.add x y acc) SMap.empty pairs
  in
  let lookup map x = match SMap.find_opt x map with Some y -> y | None -> x in
  (* [binder map x body_free] decides how to rename underneath a binder for
     [x]: remove [x] from the active map; if some active renaming could
     introduce a captured occurrence of [x], freshen the binder. *)
  let binder map x body_contains =
    let map = SMap.remove x map in
    let captures =
      SMap.exists (fun src tgt -> String.equal tgt x && body_contains src) map
    in
    if captures then
      let x' = fresh_name x in
      (SMap.add x x' map, x')
    else (map, x)
  in
  let rec go map p =
    if SMap.is_empty map then p
    else
      match p with
      | Var x -> Var (lookup map x)
      | App (f, ps) -> App (f, List.map (go map) ps)
      | Fapp (f, ps) -> Fapp (lookup map f, List.map (go map) ps)
      | Alt (p, q) -> Alt (go map p, go map q)
      | Guarded (p, g) -> Guarded (go map p, Guard.rename (lookup map) g)
      | Exists (x, body) ->
          let body_contains v = Symbol.Set.mem v (free_vars body) in
          let map', x' = binder map x body_contains in
          Exists (x', go map' body)
      | Exists_f (f, body) ->
          let body_contains v = Symbol.Set.mem v (free_fvars body) in
          let map', f' = binder map f body_contains in
          Exists_f (f', go map' body)
      | Constr (p, q, x) -> Constr (go map p, go map q, lookup map x)
      | Mu (m, ys) ->
          let ys = List.map (lookup map) ys in
          (* Formals are binders for the body. *)
          let body_contains v =
            Symbol.Set.mem v (free_vars m.body)
            || Symbol.Set.mem v (free_fvars m.body)
          in
          let map', formals' =
            List.fold_left_map
              (fun acc x ->
                let acc, x' = binder acc x body_contains in
                (acc, x'))
              map m.formals
          in
          Mu ({ m with formals = formals'; body = go map' m.body }, ys)
      | Call (pn, ys) -> Call (pn, List.map (lookup map) ys)
  in
  go init p

(* ------------------------------------------------------------------ *)
(* Mu unfolding (rule P-Mu)                                            *)
(* ------------------------------------------------------------------ *)

(* Replace free calls [P(zs)] by [Mu (m, zs)], respecting shadowing by inner
   mus that rebind the same pattern name. *)
let rec graft_mu (m : mu) p =
  match p with
  | Var _ -> p
  | App (f, ps) -> App (f, List.map (graft_mu m) ps)
  | Fapp (f, ps) -> Fapp (f, List.map (graft_mu m) ps)
  | Alt (p1, p2) -> Alt (graft_mu m p1, graft_mu m p2)
  | Guarded (p1, g) -> Guarded (graft_mu m p1, g)
  | Exists (x, p1) -> Exists (x, graft_mu m p1)
  | Exists_f (f, p1) -> Exists_f (f, graft_mu m p1)
  | Constr (p1, p2, x) -> Constr (graft_mu m p1, graft_mu m p2, x)
  | Mu (inner, ys) ->
      if String.equal inner.pname m.pname then p
      else Mu ({ inner with body = graft_mu m inner.body }, ys)
  | Call (pn, zs) -> if String.equal pn m.pname then Mu (m, zs) else p

let freshen_binders p =
  let lookup env x =
    match SMap.find_opt x env with Some y -> y | None -> x
  in
  let rec go env p =
    match p with
    | Var x -> Var (lookup env x)
    | App (f, ps) -> App (f, List.map (go env) ps)
    | Fapp (f, ps) -> Fapp (lookup env f, List.map (go env) ps)
    | Alt (a, b) -> Alt (go env a, go env b)
    | Guarded (a, g) -> Guarded (go env a, Guard.rename (lookup env) g)
    | Exists (x, body) ->
        let x' = fresh_name x in
        Exists (x', go (SMap.add x x' env) body)
    | Exists_f (f, body) ->
        let f' = fresh_name f in
        Exists_f (f', go (SMap.add f f' env) body)
    | Constr (a, b, x) -> Constr (go env a, go env b, lookup env x)
    | Mu (m, ys) ->
        let ys = List.map (lookup env) ys in
        (* formals shadow the outer renamings inside the body *)
        let env' = List.fold_left (fun e x -> SMap.remove x e) env m.formals in
        Mu ({ m with body = go env' m.body }, ys)
    | Call (pn, ys) -> Call (pn, List.map (lookup env) ys)
  in
  go SMap.empty p

let unfold (m : mu) actuals =
  if List.length m.formals <> List.length actuals then
    invalid_arg "Pattern.unfold: formals/actuals length mismatch";
  let grafted = graft_mu m m.body in
  freshen_binders (rename (List.combine m.formals actuals) grafted)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_vars ppf ys =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    Format.pp_print_string ppf ys

let rec pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | App (f, []) -> Symbol.pp ppf f
  | App (f, ps) ->
      Format.fprintf ppf "%a(%a)" Symbol.pp f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        ps
  | Fapp (f, ps) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        ps
  | Alt (p, q) -> Format.fprintf ppf "(%a || %a)" pp p pp q
  | Guarded (p, g) -> Format.fprintf ppf "(%a ; guard(%a))" pp p Guard.pp g
  | Exists (x, p) -> Format.fprintf ppf "(exists %s. %a)" x pp p
  | Exists_f (f, p) -> Format.fprintf ppf "(existsF %s. %a)" f pp p
  | Constr (p, q, x) -> Format.fprintf ppf "(%a ; (%a ~ %s))" pp p pp q x
  | Mu (m, ys) ->
      Format.fprintf ppf "(mu %s(%a)[%a]. %a)" m.pname pp_vars m.formals
        pp_vars ys pp m.body
  | Call (pn, ys) -> Format.fprintf ppf "%s(%a)" pn pp_vars ys

let to_string p = Format.asprintf "%a" pp p
