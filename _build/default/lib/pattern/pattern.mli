(** CorePyPM patterns.

    The full pattern grammar of the paper (figure 15):

    {v
    p ::= x                      variable
        | f(p1, ..., pn)         operator application
        | p || p'                pattern alternate
        | p ; guard(g)           guarded pattern
        | exists x. p            existential (PyPM's var())
        | existsF F. p           function-variable existential (extension)
        | p ; (p' ~ x)           match constraint (PyPM's x <= p')
        | F(p1, ..., pn)         function-variable application
        | mu P(xs)[ys]. p        recursive pattern, applied to actuals ys
        | P(ys)                  recursive pattern call
    v} *)

open Pypm_term

type t =
  | Var of Subst.var
  | App of Symbol.t * t list
  | Fapp of Fsubst.fvar * t list
  | Alt of t * t
  | Guarded of t * Guard.t
  | Exists of Subst.var * t
  | Exists_f of Fsubst.fvar * t
      (** Extension over the paper's core: binds a {e function} variable,
          needed to express figure 14's [PwSubgraph], whose [UnaryOp] is a
          fresh operator variable at every recursion level. *)
  | Constr of t * t * Subst.var
      (** [Constr (p, p', x)] is [p ; (p' ~ x)]: match [p], then require
          that the term bound to [x] itself matches [p']. *)
  | Mu of mu * Subst.var list
      (** [Mu (m, ys)] is the recursive pattern [m] applied to actual
          argument variables [ys]. *)
  | Call of string * Subst.var list
      (** [Call (P, ys)] is a recursive call [P(ys)]; meaningful only
          underneath a [Mu] binding [P]. *)

and mu = {
  pname : string;  (** the bound recursive pattern name [P] *)
  formals : Subst.var list;
  body : t;
}

(** {1 Constructors} *)

val var : string -> t
val app : Symbol.t -> t list -> t
val const : Symbol.t -> t
val fapp : Fsubst.fvar -> t list -> t

(** [alts ps] folds a nonempty list into left-nested alternates, preserving
    PyPM's try-in-definition-order semantics. Raises on the empty list. *)
val alts : t list -> t

val alt : t -> t -> t

(** [guarded p gs] attaches guards; [guarded p []] is [p]. *)
val guarded : t -> Guard.t list -> t

val exists : string -> t -> t
val exists_f : string -> t -> t
val exists_many : string list -> t -> t
val constr : t -> t -> string -> t
val mu : string -> formals:string list -> actuals:string list -> t -> t
val call : string -> string list -> t

(** {1 Structure} *)

val equal : t -> t -> bool

(** Number of pattern constructors. *)
val size : t -> int

(** Counts of alternates / guards / mu nodes, for bench reporting. *)
val count_alts : t -> int

val count_guards : t -> int
val count_mus : t -> int

(** Free term variables: [Var] occurrences, constraint targets, guard
    variables and call actuals, minus [Exists]- and [Mu]-bound names. *)
val free_vars : t -> Symbol.Set.t

(** Free function variables: [Fapp] heads and guard [F.alpha] occurrences. *)
val free_fvars : t -> Symbol.Set.t

(** Recursive pattern names with free calls (not captured by a [Mu]). *)
val free_calls : t -> Symbol.Set.t

(** [root_heads p] conservatively computes the set of operator symbols a
    matching term's root can have: [Some s] means only terms headed by a
    member of [s] can match; [None] means any head might (a variable or
    function-variable root). The rewrite pass uses this as a first-level
    index to skip patterns that cannot match at a node. *)
val root_heads : t -> Symbol.Set.t option

(** {1 Renaming and unfolding} *)

(** [rename map p] applies the finite renaming [map] to the free variables
    of [p] (both term and function variables share the name space).
    Capture-avoiding: [Exists]- and [Mu]-bound variables that would capture
    a renamed occurrence are freshened. *)
val rename : (string * string) list -> t -> t

(** [freshen_binders p] alpha-renames every [Exists]/[Exists_f] binder in
    [p] to a globally fresh name. Unfolding applies it so each recursion
    level gets its own local variables (PyPM's [var()] is fresh per call,
    and figure 14's [UnaryOp] is a fresh operator variable per level) —
    the Barendregt convention the paper's rules assume. *)
val freshen_binders : t -> t

(** [unfold m actuals] is one unfolding of [Mu (m, actuals)] per rule P-Mu:
    the body with recursive calls [P(zs)] replaced by [Mu (m, zs)], formals
    renamed to [actuals], and existential binders freshened. Raises
    [Invalid_argument] on an arity mismatch between formals and actuals. *)
val unfold : mu -> Subst.var list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
