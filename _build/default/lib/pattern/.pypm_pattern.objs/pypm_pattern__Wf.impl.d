lib/pattern/wf.ml: Format List Map Pattern Pypm_term Signature String Symbol
