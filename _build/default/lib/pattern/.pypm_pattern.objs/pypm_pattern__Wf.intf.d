lib/pattern/wf.mli: Format Pattern Pypm_term Signature
