lib/pattern/guard.ml: Format Fsubst List Option Pypm_term Subst Symbol Term
