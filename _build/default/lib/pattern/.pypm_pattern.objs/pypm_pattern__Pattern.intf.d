lib/pattern/pattern.mli: Format Fsubst Guard Pypm_term Subst Symbol
