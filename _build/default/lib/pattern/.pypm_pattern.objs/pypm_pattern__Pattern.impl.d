lib/pattern/pattern.ml: Format Fsubst Guard List Map Printf Pypm_term String Subst Symbol
