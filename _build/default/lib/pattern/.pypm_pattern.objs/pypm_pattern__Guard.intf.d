lib/pattern/guard.mli: Format Pypm_term
