(** Guard terms: boolean constraints over attribute arithmetic.

    Guards implement PyPM's [assert] feature (paper, section 3.2). A guard
    [g] is a boolean combination of comparisons between arithmetic
    expressions, which may mention attributes of pattern variables ([x.alpha])
    or of closed terms ([t.alpha]). CorePyPM is abstract in the attribute
    set: an {!interp} gives each attribute a partial, natural-number-valued
    meaning on terms, lifted compositionally to expressions and guards.

    Extension over the paper's core: expressions may also mention attributes
    of function variables ([F.alpha], e.g. [UnaryOp.op_class] in figure 14),
    interpreted on the symbol [phi(F)]. *)

type expr =
  | Const of int
  | Var_attr of Pypm_term.Subst.var * string  (** [x.alpha] *)
  | Term_attr of Pypm_term.Term.t * string  (** [t.alpha] (closed) *)
  | Fvar_attr of Pypm_term.Fsubst.fvar * string  (** [F.alpha] (extension) *)
  | Sym_attr of Pypm_term.Symbol.t * string  (** [f.alpha] (closed) *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Mod of expr * expr
      (** alignment constraints, e.g. [x.dim1 % 8 == 0]; undefined when the
          divisor evaluates to 0 *)

type t =
  | True
  | False
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

(** Attribute interpretation: the paper's [[.]] : A -> Term -> N, made
    partial ([None] = attribute undefined on that term), plus its analogue
    on bare symbols for function-variable attributes. *)
type interp = {
  term_attr : string -> Pypm_term.Term.t -> int option;
  sym_attr : string -> Pypm_term.Symbol.t -> int option;
}

(** An interpretation where every attribute is undefined. Guards that
    mention no attributes still evaluate. *)
val trivial_interp : interp

(** [subst theta phi g] is the substitution instance [g[theta]]: variable
    attributes become closed term attributes, function-variable attributes
    become closed symbol attributes. Unbound variables are left in place
    (the instance is then not closed and will not evaluate). *)
val subst : Pypm_term.Subst.t -> Pypm_term.Fsubst.t -> t -> t

(** [eval_expr interp theta phi e] evaluates [e]; [None] if [e] mentions an
    unbound variable or an undefined attribute. *)
val eval_expr :
  interp -> Pypm_term.Subst.t -> Pypm_term.Fsubst.t -> expr -> int option

(** [eval interp theta phi g] is the truth value of [g[theta]] under
    [interp]; [None] when the instance is not closed or an attribute is
    undefined. Matching treats [None] as failure: a constraint that cannot
    be verified does not hold. *)
val eval :
  interp -> Pypm_term.Subst.t -> Pypm_term.Fsubst.t -> t -> bool option

(** Term variables mentioned by the guard. *)
val vars : t -> Pypm_term.Symbol.Set.t

(** Function variables mentioned by the guard. *)
val fvars : t -> Pypm_term.Symbol.Set.t

(** [rename map g] renames free variables (both kinds) per [map]. *)
val rename : (string -> string) -> t -> t

val conj : t list -> t
val equal : t -> t -> bool
val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
