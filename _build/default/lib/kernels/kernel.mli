(** The library-kernel registry.

    The paper's rewrites target hand-tuned vendor kernels: cuBLAS GEMM
    variants, the fused multi-head-attention kernel (FMHA), and the
    GEMM-with-epilog kernel (section 4.1). We cannot call real kernels, so
    each is modeled by a {!spec}: how much useful work it performs for
    given input/output types, how close to peak it runs, and how many
    launches it costs. The cost model consults this registry for any
    operator registered here; everything else is costed by operator
    class. *)

open Pypm_term
open Pypm_tensor

type spec = {
  kname : Symbol.t;
  (* flops performed as a function of input types and output type *)
  flops : Ty.t list -> Ty.t -> float;
  efficiency : float;
      (** fraction of device peak the kernel achieves (hand-tuned > naive) *)
  launches : int;  (** kernel launches per call; fused kernels launch once *)
  intermediate_bytes : Ty.t list -> Ty.t -> float;
      (** extra DRAM traffic beyond inputs+output; 0 for fused kernels *)
}

val make :
  ?efficiency:float ->
  ?launches:int ->
  ?intermediate_bytes:(Ty.t list -> Ty.t -> float) ->
  flops:(Ty.t list -> Ty.t -> float) ->
  Symbol.t ->
  spec

(** Registration is global (kernels are a property of the platform, not of
    one graph). Re-registering a name replaces the spec. *)
val register : spec -> unit

val find : Symbol.t -> spec option
val mem : Symbol.t -> bool
val registered : unit -> Symbol.t list

(** {1 Common flops formulas} *)

(** [matmul_flops inputs out] = 2 * nelems(out) * k, reading [k] from the
    first input's innermost dimension. *)
val matmul_flops : Ty.t list -> Ty.t -> float

(** Pointwise work proportional to the output. *)
val pointwise_flops : ?per_elem:float -> Ty.t list -> Ty.t -> float

(** MHA forward flops for fused attention: QK^T + softmax + PV. *)
val mha_flops : Ty.t list -> Ty.t -> float
