(** The graph execution simulator.

    Walks a computation graph in topological order and accumulates the cost
    model's per-node times — the stand-in for timing real inference on the
    benchmark machine. Relative speedups between an unoptimized and an
    optimized graph are the quantities figures 10 and 11 plot. *)

open Pypm_graph

(** [graph_cost device g] is the simulated forward-pass time, seconds. *)
val graph_cost : Cost.device -> Graph.t -> float

(** Per-node contribution, topological order. *)
val breakdown : Cost.device -> Graph.t -> (Graph.node * float) list

(** [speedup ~baseline ~optimized] = baseline / optimized (>= 1 when the
    optimization helped). *)
val speedup : baseline:float -> optimized:float -> float

(** Summary counters: total launches and DRAM traffic, for ablation
    reports. *)
type totals = { time : float; launches : float; bytes : float; flops : float }

val totals : Cost.device -> Graph.t -> totals
val pp_totals : Format.formatter -> totals -> unit
