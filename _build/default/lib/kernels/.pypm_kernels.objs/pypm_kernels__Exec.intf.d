lib/kernels/exec.mli: Cost Format Graph Pypm_graph
