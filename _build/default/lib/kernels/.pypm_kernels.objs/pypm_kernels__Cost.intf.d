lib/kernels/cost.mli: Dtype Graph Pypm_graph Pypm_tensor
