lib/kernels/kernel.mli: Pypm_tensor Pypm_term Symbol Ty
