lib/kernels/exec.ml: Cost Format Graph List Pypm_graph
