lib/kernels/kernel.ml: Hashtbl List Pypm_tensor Pypm_term Symbol Ty
