lib/kernels/cost.ml: Dtype Float Graph Kernel List Pypm_graph Pypm_tensor Pypm_term Signature Ty
