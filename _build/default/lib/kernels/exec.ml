open Pypm_graph

let breakdown device g =
  List.map (fun n -> (n, Cost.node_cost device g n)) (Graph.live_nodes g)

let graph_cost device g =
  List.fold_left (fun acc (_, c) -> acc +. c) 0. (breakdown device g)

let speedup ~baseline ~optimized =
  if optimized <= 0. then 1. else baseline /. optimized

type totals = { time : float; launches : float; bytes : float; flops : float }

let totals device g =
  List.fold_left
    (fun acc n ->
      let w = Cost.node_work g n in
      {
        time = acc.time +. Cost.node_cost device g n;
        launches = acc.launches +. w.Cost.launches;
        bytes = acc.bytes +. w.Cost.bytes;
        flops = acc.flops +. w.Cost.flops;
      })
    { time = 0.; launches = 0.; bytes = 0.; flops = 0. }
    (Graph.live_nodes g)

let pp_totals ppf t =
  Format.fprintf ppf "time %.3f ms, %g launches, %.1f MB traffic, %.2f GFLOP"
    (t.time *. 1e3) t.launches (t.bytes /. 1e6) (t.flops /. 1e9)
