(** Surface-language entry points: parse and elaborate PyPM source text.

    A [.pypm] file plays the role of the paper's Python pattern file; this
    module turns it into an engine program ready to load into the rewrite
    pass (or to serialize as a pattern binary). *)

open Pypm_dsl
open Pypm_term

type error =
  | Syntax of Lexer.pos * string
  | Elab of Pypm_dsl.Elaborate.error list

val pp_error : Format.formatter -> error -> unit

(** [parse src] parses source text to the frontend AST. *)
val parse : string -> (Ast.program, error) result

(** [load ~sg src] parses and elaborates, extending [sg] with the file's
    operator declarations. *)
val load : sg:Signature.t -> string -> (Pypm_engine.Program.t, error) result

(** [load_file ~sg path] reads and {!load}s a file, resolving top-level
    [include "other.pypm";] directives relative to the including file's
    directory. Included definitions come first (so their patterns precede
    the includer's in program order); a file is loaded at most once and
    include cycles are reported as errors. *)
val load_file :
  sg:Signature.t -> string -> (Pypm_engine.Program.t, error) result
