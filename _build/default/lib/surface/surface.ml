open Pypm_dsl

type error =
  | Syntax of Lexer.pos * string
  | Elab of Pypm_dsl.Elaborate.error list

let pp_error ppf = function
  | Syntax (pos, msg) ->
      Format.fprintf ppf "syntax error at %a: %s" Lexer.pp_pos pos msg
  | Elab errs ->
      Format.pp_print_list Pypm_dsl.Elaborate.pp_error ppf errs

let parse src =
  match Parser.program src with
  | ast -> Ok ast
  | exception Parser.Parse_error (pos, msg) -> Error (Syntax (pos, msg))
  | exception Lexer.Lex_error (pos, msg) -> Error (Syntax (pos, msg))

let load ~sg src =
  match parse src with
  | Error e -> Error e
  | Ok ast -> (
      match Pypm_dsl.Elaborate.program ~sg ast with
      | Ok program -> Ok program
      | Error errs -> Error (Elab errs))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let concat_programs (a : Ast.program) (b : Ast.program) =
  {
    Ast.ops = a.Ast.ops @ b.Ast.ops;
    patterns = a.Ast.patterns @ b.Ast.patterns;
    rules = a.Ast.rules @ b.Ast.rules;
  }

exception Load_error of error

(* Depth-first include resolution: included definitions precede the
   includer's; each file contributes once; cycles are errors. *)
let rec load_ast ~loading ~loaded path =
  let canon =
    try Unix.realpath path with _ -> path
  in
  if List.mem canon loading then
    raise
      (Load_error
         (Syntax
            ( { Lexer.line = 0; col = 0 },
              "include cycle through " ^ path )));
  if Hashtbl.mem loaded canon then Ast.empty_program
  else begin
    Hashtbl.replace loaded canon ();
    let src = read_file path in
    match Parser.program_with_includes src with
    | exception Parser.Parse_error (pos, msg) ->
        raise (Load_error (Syntax (pos, msg)))
    | exception Lexer.Lex_error (pos, msg) ->
        raise (Load_error (Syntax (pos, msg)))
    | includes, ast ->
        let dir = Filename.dirname path in
        List.fold_left
          (fun acc inc ->
            let inc_path =
              if Filename.is_relative inc then Filename.concat dir inc
              else inc
            in
            concat_programs acc
              (load_ast ~loading:(canon :: loading) ~loaded inc_path))
          Ast.empty_program includes
        |> fun included -> concat_programs included ast
  end

let load_file ~sg path =
  match load_ast ~loading:[] ~loaded:(Hashtbl.create 4) path with
  | exception Load_error e -> Error e
  | exception Sys_error msg ->
      Error (Syntax ({ Lexer.line = 0; col = 0 }, msg))
  | ast -> (
      match Pypm_dsl.Elaborate.program ~sg ast with
      | Ok program -> Ok program
      | Error errs -> Error (Elab errs))
