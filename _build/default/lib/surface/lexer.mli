(** Lexer for the textual PyPM surface language.

    The surface language is the repository's stand-alone concrete syntax
    for PyPM programs (the role Python syntax plays in the paper). Line
    comments start with [//] or [#]. *)

type pos = { line : int; col : int }

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | EQ  (** [=] *)
  | EQEQ
  | NEQ
  | LT
  | LE  (** [<=], also the match-constraint arrow *)
  | ANDAND
  | OROR
  | BANG
  | PLUS
  | MINUS
  | STAR
  | PERCENT
  | ARROW  (** [->] *)
  | EOF

type spanned = { tok : token; pos : pos }

exception Lex_error of pos * string

(** [tokenize src] lexes the whole input; the result always ends with
    [EOF]. Raises {!Lex_error} on an unexpected character or an unterminated
    string. *)
val tokenize : string -> spanned array

val token_to_string : token -> string
val pp_pos : Format.formatter -> pos -> unit
