lib/surface/lexer.mli: Format
