lib/surface/parser.ml: Array Ast Format Lexer List Pypm_dsl String
