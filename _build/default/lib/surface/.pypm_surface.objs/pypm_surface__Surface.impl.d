lib/surface/surface.ml: Ast Filename Format Fun Hashtbl Lexer List Parser Pypm_dsl Unix
