lib/surface/parser.mli: Ast Lexer Pypm_dsl
