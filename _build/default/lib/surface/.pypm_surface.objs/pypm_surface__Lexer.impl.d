lib/surface/lexer.ml: Array Buffer Format List Printf String
