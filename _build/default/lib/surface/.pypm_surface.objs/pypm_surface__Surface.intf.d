lib/surface/surface.mli: Ast Format Lexer Pypm_dsl Pypm_engine Pypm_term Signature
