open Pypm_dsl
open Lexer

type pos = Lexer.pos

exception Parse_error of pos * string

type state = { toks : spanned array; mutable idx : int }

let err st fmt =
  let pos = st.toks.(st.idx).pos in
  Format.kasprintf (fun m -> raise (Parse_error (pos, m))) fmt

let peek st = st.toks.(st.idx).tok
let advance st = st.idx <- st.idx + 1

let expect st tok =
  if peek st = tok then advance st
  else
    err st "expected %s but found %s" (token_to_string tok)
      (token_to_string (peek st))

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> err st "expected an identifier but found %s" (token_to_string t)

let keyword st kw =
  match peek st with
  | IDENT s when String.equal s kw -> advance st
  | t -> err st "expected %S but found %s" kw (token_to_string t)

let is_keyword st kw =
  match peek st with IDENT s -> String.equal s kw | _ -> false

let int_lit st =
  match peek st with
  | INT n ->
      advance st;
      n
  | t -> err st "expected an integer but found %s" (token_to_string t)

let string_lit st =
  match peek st with
  | STRING s ->
      advance st;
      s
  | t -> err st "expected a string literal but found %s" (token_to_string t)

let comma_list st parse_elem ~close =
  if peek st = close then []
  else
    let rec more acc =
      if peek st = COMMA then (
        advance st;
        more (parse_elem st :: acc))
      else List.rev acc
    in
    more [ parse_elem st ]

let param_list st =
  expect st LPAREN;
  let params = comma_list st ident ~close:RPAREN in
  expect st RPAREN;
  params

(* ------------------------------------------------------------------ *)
(* Pattern expressions                                                 *)
(* ------------------------------------------------------------------ *)

let rec parse_pexp_atom st =
  match peek st with
  | FLOAT f ->
      advance st;
      Ast.Elit f
  | INT n ->
      advance st;
      Ast.Elit (float_of_int n)
  | LPAREN ->
      advance st;
      let e = parse_pexp st in
      expect st RPAREN;
      e
  | IDENT name ->
      advance st;
      if peek st = LPAREN then (
        advance st;
        let args = comma_list st parse_pexp ~close:RPAREN in
        expect st RPAREN;
        Ast.Eapp (name, args))
      else Ast.Evar name
  | t -> err st "expected a pattern expression but found %s" (token_to_string t)

(* inline alternation binds loosest: Div(x, 2) || Mul(x, 0.5) *)
and parse_pexp st =
  let rec more acc =
    if peek st = OROR then (
      advance st;
      more (Ast.Ealt (acc, parse_pexp_atom st)))
    else acc
  in
  more (parse_pexp_atom st)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let dtype_names =
  [ "f64"; "f32"; "f16"; "bf16"; "i64"; "i32"; "i8"; "bool" ]

let rec parse_gatom st =
  match peek st with
  | INT n ->
      advance st;
      Ast.Gint n
  | LPAREN ->
      advance st;
      let e = parse_gexp st in
      expect st RPAREN;
      e
  | IDENT "opclass" ->
      advance st;
      expect st LPAREN;
      let c = string_lit st in
      expect st RPAREN;
      Ast.Gopclass c
  | IDENT name ->
      advance st;
      if peek st = DOT then (
        let rec path acc =
          if peek st = DOT then (
            advance st;
            path (ident st :: acc))
          else List.rev acc
        in
        Ast.Gattr (name, path []))
      else if List.mem name dtype_names then Ast.Gdtype name
      else
        err st
          "bare identifier %s in a guard: expected an attribute path (x.rank) \
           or a dtype name"
          name
  | t -> err st "expected a guard expression but found %s" (token_to_string t)

and parse_gterm st =
  let rec more acc =
    match peek st with
    | STAR ->
        advance st;
        more (Ast.Gmul (acc, parse_gatom st))
    | PERCENT ->
        advance st;
        more (Ast.Gmod (acc, parse_gatom st))
    | _ -> acc
  in
  more (parse_gatom st)

and parse_gexp st =
  let rec more acc =
    match peek st with
    | PLUS ->
        advance st;
        more (Ast.Gadd (acc, parse_gterm st))
    | MINUS ->
        advance st;
        more (Ast.Gsub (acc, parse_gterm st))
    | _ -> acc
  in
  more (parse_gterm st)

let rec parse_gunit st =
  match peek st with
  | BANG ->
      advance st;
      Ast.Gnot (parse_gunit st)
  | IDENT "true" ->
      advance st;
      Ast.Gtrue
  | IDENT "false" ->
      advance st;
      Ast.Gfalse
  | LPAREN -> (
      (* ambiguous: parenthesized formula or parenthesized arithmetic;
         try the formula first and backtrack *)
      let save = st.idx in
      match
        advance st;
        let g = parse_gform st in
        expect st RPAREN;
        g
      with
      | g -> g
      | exception Parse_error _ ->
          st.idx <- save;
          parse_cmp st)
  | _ -> parse_cmp st

and parse_cmp st =
  let lhs = parse_gexp st in
  match peek st with
  | EQEQ ->
      advance st;
      Ast.Geq (lhs, parse_gexp st)
  | NEQ ->
      advance st;
      Ast.Gne (lhs, parse_gexp st)
  | LT ->
      advance st;
      Ast.Glt (lhs, parse_gexp st)
  | LE ->
      advance st;
      Ast.Gle (lhs, parse_gexp st)
  | t ->
      err st "expected a comparison operator but found %s" (token_to_string t)

and parse_gand st =
  let rec more acc =
    if peek st = ANDAND then (
      advance st;
      more (Ast.Gand (acc, parse_gunit st)))
    else acc
  in
  more (parse_gunit st)

and parse_gform st =
  let rec more acc =
    if peek st = OROR then (
      advance st;
      more (Ast.Gor (acc, parse_gand st)))
    else acc
  in
  more (parse_gand st)

(* ------------------------------------------------------------------ *)
(* Items                                                               *)
(* ------------------------------------------------------------------ *)

let parse_opdef st =
  keyword st "op";
  let name = ident st in
  let params = param_list st in
  let output_arity = if peek st = ARROW then (advance st; int_lit st) else 1 in
  let cls =
    if is_keyword st "class" then (
      advance st;
      string_lit st)
    else "generic"
  in
  expect st SEMI;
  {
    Ast.od_name = name;
    od_arity = List.length params;
    od_output_arity = output_arity;
    od_class = cls;
  }

let parse_stmt st =
  if is_keyword st "assert" then (
    advance st;
    let g = parse_gform st in
    expect st SEMI;
    `Stmt (Ast.Sassert g))
  else if is_keyword st "return" then (
    advance st;
    let e = parse_pexp st in
    expect st SEMI;
    `Return e)
  else
    let name = ident st in
    match peek st with
    | EQ -> (
        advance st;
        match peek st with
        | IDENT "var" when st.toks.(st.idx + 1).tok = LPAREN ->
            advance st;
            expect st LPAREN;
            expect st RPAREN;
            expect st SEMI;
            `Stmt (Ast.Slocal name)
        | IDENT "Op" when st.toks.(st.idx + 1).tok = LPAREN ->
            advance st;
            expect st LPAREN;
            let arity = int_lit st in
            expect st COMMA;
            let out = int_lit st in
            expect st RPAREN;
            expect st SEMI;
            if out <> 1 then
              err st "operator variables with output arity %d are unsupported"
                out;
            `Stmt (Ast.Sopvar (name, arity))
        | _ ->
            let e = parse_pexp st in
            expect st SEMI;
            `Stmt (Ast.Salias (name, e)))
    | LE ->
        advance st;
        let e = parse_pexp st in
        expect st SEMI;
        `Stmt (Ast.Sconstrain (name, e))
    | t ->
        err st "expected '=' or '<=' after %s but found %s" name
          (token_to_string t)

let parse_patterndef st =
  keyword st "pattern";
  let name = ident st in
  let params = param_list st in
  expect st LBRACE;
  let stmts = ref [] and ret = ref None in
  while peek st <> RBRACE do
    match parse_stmt st with
    | `Stmt s ->
        if !ret <> None then
          err st "pattern %s: statements after return" name;
        stmts := s :: !stmts
    | `Return e ->
        if !ret <> None then err st "pattern %s: multiple returns" name;
        ret := Some e
  done;
  expect st RBRACE;
  match !ret with
  | None -> err st "pattern %s: missing return" name
  | Some pd_return ->
      {
        Ast.pd_name = name;
        pd_params = params;
        pd_stmts = List.rev !stmts;
        pd_return;
      }

let parse_ruledef st =
  keyword st "rule";
  let name = ident st in
  keyword st "for";
  let for_ = ident st in
  let params = param_list st in
  let copy_from =
    if is_keyword st "copying" then (
      advance st;
      Some (ident st))
    else None
  in
  expect st LBRACE;
  let asserts = ref [] and branches = ref [] in
  while peek st <> RBRACE do
    if is_keyword st "assert" then (
      advance st;
      let g = parse_gform st in
      expect st SEMI;
      if !branches <> [] then
        err st "rule %s: assert after a return branch" name;
      asserts := g :: !asserts)
    else if is_keyword st "return" then (
      advance st;
      let e = parse_pexp st in
      let guard =
        if is_keyword st "when" then (
          advance st;
          Some (parse_gform st))
        else None
      in
      expect st SEMI;
      branches := { Ast.br_guard = guard; br_return = e } :: !branches)
    else err st "rule %s: expected assert or return" name
  done;
  expect st RBRACE;
  if !branches = [] then err st "rule %s: no return branch" name;
  {
    Ast.rd_name = name;
    rd_for = for_;
    rd_params = params;
    rd_asserts = List.rev !asserts;
    rd_branches = List.rev !branches;
    rd_copy_attrs_from = copy_from;
  }

let parse_program st =
  let ops = ref [] and pats = ref [] and rules = ref [] in
  let includes = ref [] in
  let rec loop () =
    match peek st with
    | EOF -> ()
    | IDENT "include" ->
        advance st;
        let path = string_lit st in
        expect st SEMI;
        includes := path :: !includes;
        loop ()
    | IDENT "op" ->
        ops := parse_opdef st :: !ops;
        loop ()
    | IDENT "pattern" ->
        pats := parse_patterndef st :: !pats;
        loop ()
    | IDENT "rule" ->
        rules := parse_ruledef st :: !rules;
        loop ()
    | t ->
        err st
          "expected include, op, pattern or rule but found %s"
          (token_to_string t)
  in
  loop ();
  ( List.rev !includes,
    {
      Ast.ops = List.rev !ops;
      patterns = List.rev !pats;
      rules = List.rev !rules;
    } )

let with_state src f =
  let toks = Lexer.tokenize src in
  let st = { toks; idx = 0 } in
  let v = f st in
  expect st EOF;
  v

let program_with_includes src = with_state src parse_program

let program src = snd (with_state src parse_program)

let pexp src =
  with_state src (fun st -> parse_pexp st)

let gform src = with_state src (fun st -> parse_gform st)
