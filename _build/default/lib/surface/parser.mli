(** Recursive-descent parser for the surface language.

    Concrete syntax (figure 1 of the paper, transliterated):

    {v
    op MatMul(x, y);
    op Trans(x);
    op cublasMM_xyT_f32(x, y) class "fused_kernel";

    pattern MMxyT(x, y) {
      assert x.shape.rank == 2 && y.shape.rank == 2;
      yt = Trans(y);
      return MatMul(x, yt);
    }

    rule cublasrule for MMxyT(x, y) {
      assert x.eltType == f32 || x.eltType == i8;
      return cublasMM_xyT_f32(x, y) when x.eltType == f32 && y.eltType == f32;
      return cublasMM_xyT_i8(x, y)  when x.eltType == i8  && y.eltType == i8;
    }
    v}

    Pattern bodies also admit [y = var();] (local variable),
    [F = Op(1, 1);] (local function variable), [x <= p;] (match
    constraint) and aliases [name = pexp;]. Rules may declare
    [copying c] before their body to copy the attributes of the node
    bound to [c] onto the replacement root (stride/pad propagation). *)

open Pypm_dsl
type pos = Lexer.pos

exception Parse_error of pos * string

(** [program src] parses a whole surface file. Top-level
    [include "other.pypm";] items are returned separately (in order) for
    the loader to resolve; see {!Surface.load_file}. *)
val program : string -> Ast.program

(** Like {!program}, also returning the include paths, in order. *)
val program_with_includes : string -> string list * Ast.program

(** [pexp src] parses a single pattern expression; for tests and the CLI's
    [match] command. *)
val pexp : string -> Ast.pexp

(** [gform src] parses a single guard formula. *)
val gform : string -> Ast.gform
