(** Derivation trees: proof objects for the declarative semantics.

    The paper frames the declarative semantics as "a proof system for
    pattern matching: given a witness, verify that the formula is
    satisfied". This module makes that literal: a {!t} is a derivation tree
    whose nodes are instances of the rules of figure 16, {!derive} performs
    proof search, and {!validate} is an independent proof {e checker} that
    verifies each inference step locally. The pair plays the role the Coq
    mechanization plays in the paper: [validate (derive ...)] ensures a
    match is backed by an actual derivation, not just a boolean. *)

open Pypm_term
open Pypm_pattern

type rule =
  | P_var
  | P_fun
  | P_alt_1
  | P_alt_2
  | P_guard
  | P_exists
  | P_exists_f
  | P_match_constr
  | P_fun_var
  | P_mu

val rule_name : rule -> string

(** A node asserts the judgment [pattern @ <theta, phi> ~= term] by [rule]
    from [premises]. *)
type t = {
  rule : rule;
  pattern : Pattern.t;
  theta : Subst.t;
  phi : Fsubst.t;
  term : Term.t;
  premises : t list;
}

(** [derive ~interp ?fuel p theta phi t] searches for a derivation of
    [p @ <theta, phi> ~= t]. Agrees with {!Declarative.check} (also
    property-tested). *)
val derive :
  interp:Guard.interp ->
  ?fuel:int ->
  Pattern.t ->
  Subst.t ->
  Fsubst.t ->
  Term.t ->
  t option

(** [validate ~interp d] checks every inference step of [d]: each node's
    conclusion must follow from its premises by its claimed rule, including
    side conditions (substitution lookups, guard evaluation, mu
    unfolding). *)
val validate : interp:Guard.interp -> t -> bool

(** Number of rule instances in the tree. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
