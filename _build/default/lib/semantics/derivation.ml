open Pypm_term
open Pypm_pattern

type rule =
  | P_var
  | P_fun
  | P_alt_1
  | P_alt_2
  | P_guard
  | P_exists
  | P_exists_f
  | P_match_constr
  | P_fun_var
  | P_mu

let rule_name = function
  | P_var -> "P-Var"
  | P_fun -> "P-Fun"
  | P_alt_1 -> "P-Alt-1"
  | P_alt_2 -> "P-Alt-2"
  | P_guard -> "P-Guard"
  | P_exists -> "P-Exists"
  | P_exists_f -> "P-Exists-F"
  | P_match_constr -> "P-MatchConstr"
  | P_fun_var -> "P-Fun-Var"
  | P_mu -> "P-Mu"

type t = {
  rule : rule;
  pattern : Pattern.t;
  theta : Subst.t;
  phi : Fsubst.t;
  term : Term.t;
  premises : t list;
}

let ( let* ) = Option.bind

let derive ~interp ?(fuel = 10_000) p theta phi t =
  let remaining = ref fuel in
  let rec go (p : Pattern.t) theta t : t option =
    decr remaining;
    if !remaining < 0 then None
    else
      let node rule premises = Some { rule; pattern = p; theta; phi; term = t; premises } in
      match p with
      | Var x ->
          let* t' = Subst.find x theta in
          if Term.equal t t' then node P_var [] else None
      | App (f, ps) ->
          if
            Symbol.equal f (Term.head t)
            && List.length ps = List.length (Term.args t)
          then
            let* premises = go_args ps (Term.args t) theta in
            node P_fun premises
          else None
      | Fapp (fv, ps) ->
          let* f = Fsubst.find fv phi in
          if
            Symbol.equal f (Term.head t)
            && List.length ps = List.length (Term.args t)
          then
            let* premises = go_args ps (Term.args t) theta in
            node P_fun_var premises
          else None
      | Alt (p1, p2) -> (
          match go p1 theta t with
          | Some d -> node P_alt_1 [ d ]
          | None ->
              let* d = go p2 theta t in
              node P_alt_2 [ d ])
      | Guarded (body, g) ->
          let* d = go body theta t in
          if Guard.eval interp theta phi g = Some true then node P_guard [ d ]
          else None
      | Exists (x, body) -> (
          match Subst.find x theta with
          | Some _ ->
              let* d = go body theta t in
              node P_exists [ d ]
          | None ->
              if not (Symbol.Set.mem x (Pattern.free_vars body)) then
                let* d = go body theta t in
                node P_exists [ d ]
              else
                Seq.fold_left
                  (fun acc t' ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                        match go body (Subst.add x t' theta) t with
                        | Some d -> node P_exists [ d ]
                        | None -> None))
                  None (Term.subterms t))
      | Exists_f (f, body) -> (
          match Fsubst.find f phi with
          | Some _ ->
              let* d = go body theta t in
              node P_exists_f [ d ]
          | None ->
              if not (Symbol.Set.mem f (Pattern.free_fvars body)) then
                let* d = go body theta t in
                node P_exists_f [ d ]
              else None)
      | Constr (body, p', x) ->
          let* d1 = go body theta t in
          let* t' = Subst.find x theta in
          let* d2 = go p' theta t' in
          node P_match_constr [ d1; d2 ]
      | Mu (m, ys) ->
          let* d = go (Pattern.unfold m ys) theta t in
          node P_mu [ d ]
      | Call _ -> None
  and go_args ps ts theta =
    match (ps, ts) with
    | [], [] -> Some []
    | p :: ps, t :: ts ->
        let* d = go p theta t in
        let* ds = go_args ps ts theta in
        Some (d :: ds)
    | _ -> None
  in
  go p theta t

(* Validate a single inference step locally, then recurse into premises. *)
let validate ~interp d =
  let rec ok d =
    let same_judgment_env (prem : t) =
      Subst.equal prem.theta d.theta && Fsubst.equal prem.phi d.phi
    in
    let step_ok =
      match (d.rule, d.pattern, d.premises) with
      | P_var, Var x, [] -> (
          match Subst.find x d.theta with
          | Some t' -> Term.equal t' d.term
          | None -> false)
      | P_fun, App (f, ps), prems ->
          Symbol.equal f (Term.head d.term)
          && List.length ps = List.length (Term.args d.term)
          && List.length prems = List.length ps
          && List.for_all2
               (fun (p, t) prem ->
                 same_judgment_env prem
                 && Pattern.equal prem.pattern p
                 && Term.equal prem.term t)
               (List.combine ps (Term.args d.term))
               prems
      | P_fun_var, Fapp (fv, ps), prems -> (
          match Fsubst.find fv d.phi with
          | Some f ->
              Symbol.equal f (Term.head d.term)
              && List.length ps = List.length (Term.args d.term)
              && List.length prems = List.length ps
              && List.for_all2
                   (fun (p, t) prem ->
                     same_judgment_env prem
                     && Pattern.equal prem.pattern p
                     && Term.equal prem.term t)
                   (List.combine ps (Term.args d.term))
                   prems
          | None -> false)
      | P_alt_1, Alt (p, _), [ prem ] ->
          same_judgment_env prem
          && Pattern.equal prem.pattern p
          && Term.equal prem.term d.term
      | P_alt_2, Alt (_, p'), [ prem ] ->
          same_judgment_env prem
          && Pattern.equal prem.pattern p'
          && Term.equal prem.term d.term
      | P_guard, Guarded (p, g), [ prem ] ->
          same_judgment_env prem
          && Pattern.equal prem.pattern p
          && Term.equal prem.term d.term
          && Guard.eval interp d.theta d.phi g = Some true
      | P_exists, Exists (x, body), [ prem ] ->
          (* premise theta must be d.theta possibly extended at x only *)
          Pattern.equal prem.pattern body
          && Term.equal prem.term d.term
          && Fsubst.equal prem.phi d.phi
          && Subst.agree d.theta prem.theta
          && List.for_all
               (fun v -> String.equal v x || Subst.mem v d.theta)
               (Subst.domain prem.theta)
          && Subst.subset d.theta prem.theta
      | P_exists_f, Exists_f (f, body), [ prem ] ->
          Pattern.equal prem.pattern body
          && Term.equal prem.term d.term
          && Subst.equal prem.theta d.theta
          && Fsubst.subset d.phi prem.phi
          && List.for_all
               (fun v -> String.equal v f || Fsubst.mem v d.phi)
               (Fsubst.domain prem.phi)
      | P_match_constr, Constr (p, p', x), [ prem1; prem2 ] -> (
          same_judgment_env prem1 && same_judgment_env prem2
          && Pattern.equal prem1.pattern p
          && Term.equal prem1.term d.term
          && Pattern.equal prem2.pattern p'
          &&
          match Subst.find x d.theta with
          | Some t' -> Term.equal prem2.term t'
          | None -> false)
      | P_mu, Mu (m, ys), [ prem ] ->
          same_judgment_env prem
          && Pattern.equal prem.pattern (Pattern.unfold m ys)
          && Term.equal prem.term d.term
      | _ -> false
    in
    step_ok && List.for_all ok d.premises
  in
  ok d

let rec size d = 1 + List.fold_left (fun n p -> n + size p) 0 d.premises

let rec pp ppf d =
  Format.fprintf ppf "@[<v 2>%s: %a @@ %a ~= %a" (rule_name d.rule) Pattern.pp
    d.pattern Subst.pp d.theta Term.pp d.term;
  List.iter (fun p -> Format.fprintf ppf "@,%a" pp p) d.premises;
  Format.fprintf ppf "@]"
