(** Declarative semantics: the judgment [p @ <theta, phi> ~= t].

    A direct, executable transcription of the inference rules of figure 16.
    The judgment reads "the term [t] matches the pattern [p] with (term)
    substitution [theta] and function substitution [phi]"; [theta]/[phi]
    form the witness of the match.

    Two points require care when executing the rules:

    - {b P-Exists} invents a term [t'] out of thin air. When the existential
      variable is already bound by [theta], the union [theta U {x |-> t'}]
      forces [t' = theta(x)] and the rule is decidable. When it is unbound,
      we search: if [x] does not occur in the body, any [t'] works; if it
      does, every matching [t'] is pinned by an occurrence of [x] at a term
      position, so searching the subterms of [t] is complete for patterns
      whose existential variables occur in term positions (the class the
      frontend emits). [check] is exact on witnesses produced by the
      machine, which always binds existentials it reports.

    - {b P-Mu} unfolds the recursion, which may diverge; [fuel] bounds the
      number of unfoldings and [check] returns [false] when it is
      exhausted (a fuel-bounded derivation search). *)

open Pypm_term

(** [check ~interp ?fuel p theta phi t] decides the judgment
    [p @ <theta, phi> ~= t] by derivation search. [fuel] (default 10_000)
    bounds mu-unfoldings. *)
val check :
  interp:Pypm_pattern.Guard.interp ->
  ?fuel:int ->
  Pypm_pattern.Pattern.t ->
  Subst.t ->
  Fsubst.t ->
  Term.t ->
  bool

(** [holds ~interp ?fuel p t] is [exists theta phi. p @ <theta,phi> ~= t],
    decided by the complete (bounded) witness search of {!Enumerate}-like
    exploration over the rules. *)
val holds :
  interp:Pypm_pattern.Guard.interp ->
  ?fuel:int ->
  Pypm_pattern.Pattern.t ->
  Term.t ->
  bool
