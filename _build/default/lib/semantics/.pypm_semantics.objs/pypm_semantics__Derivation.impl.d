lib/semantics/derivation.ml: Format Fsubst Guard List Option Pattern Pypm_pattern Pypm_term Seq String Subst Symbol Term
