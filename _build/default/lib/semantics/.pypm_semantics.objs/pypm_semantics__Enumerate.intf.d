lib/semantics/enumerate.mli: Fsubst Guard Pattern Pypm_pattern Pypm_term Subst Term
