lib/semantics/matcher.mli: Fsubst Guard Outcome Pattern Pypm_pattern Pypm_term Subst Term
