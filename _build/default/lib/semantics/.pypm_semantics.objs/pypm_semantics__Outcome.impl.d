lib/semantics/outcome.ml: Format Fsubst Pypm_term Subst
