lib/semantics/declarative.ml: Enumerate Fsubst Guard List Pattern Pypm_pattern Pypm_term Seq Subst Symbol Term
