lib/semantics/matcher.ml: Fsubst Guard List Outcome Pattern Pypm_pattern Pypm_term Subst Symbol Term
