lib/semantics/declarative.mli: Fsubst Pypm_pattern Pypm_term Subst Term
