lib/semantics/machine.mli: Format Fsubst Guard Outcome Pattern Pypm_pattern Pypm_term Subst Term
