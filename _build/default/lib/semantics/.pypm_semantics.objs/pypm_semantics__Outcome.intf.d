lib/semantics/outcome.mli: Format Fsubst Pypm_term Subst
