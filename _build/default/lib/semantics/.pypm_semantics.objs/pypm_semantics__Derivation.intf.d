lib/semantics/derivation.mli: Format Fsubst Guard Pattern Pypm_pattern Pypm_term Subst Term
