lib/semantics/machine.ml: Format Fsubst Guard List Outcome Pattern Pypm_pattern Pypm_term Subst Symbol Term
