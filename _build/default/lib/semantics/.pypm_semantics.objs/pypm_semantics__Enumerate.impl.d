lib/semantics/enumerate.ml: Fsubst Guard List Pattern Pypm_pattern Pypm_term Subst Symbol Term
