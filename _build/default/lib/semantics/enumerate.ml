open Pypm_term
open Pypm_pattern

type result = {
  witnesses : (Subst.t * Fsubst.t) list;
  complete : bool;
}

exception Out_of_fuel_exc

let all ~interp ?(fuel = 1_000_000) p t =
  let remaining = ref fuel in
  let complete = ref true in
  let acc = ref [] in
  let spend () =
    decr remaining;
    if !remaining < 0 then raise Out_of_fuel_exc
  in
  (* The continuation returns unit; to collect every witness we never
     "commit": each success is recorded and the search keeps backtracking. *)
  let rec go p t theta phi (sk : Subst.t -> Fsubst.t -> unit) : unit =
    spend ();
    match (p : Pattern.t) with
    | Var x -> (
        match Subst.bind x t theta with
        | Ok theta -> sk theta phi
        | Error (`Conflict _) -> ())
    | App (f, ps) ->
        if
          Symbol.equal f (Term.head t)
          && List.length ps = List.length (Term.args t)
        then go_args ps (Term.args t) theta phi sk
    | Fapp (fv, ps) -> (
        let f = Term.head t and ts = Term.args t in
        if List.length ps = List.length ts then
          match Fsubst.bind fv f phi with
          | Ok phi -> go_args ps ts theta phi sk
          | Error (`Conflict _) -> ())
    | Alt (p1, p2) ->
        go p1 t theta phi sk;
        go p2 t theta phi sk
    | Guarded (p, g) ->
        go p t theta phi (fun theta phi ->
            match Guard.eval interp theta phi g with
            | Some true -> sk theta phi
            | Some false -> ()
            | None ->
                (* Cannot evaluate: there may exist an invented binding for
                   an unbound variable making the guard true. *)
                complete := false)
    | Exists (x, p) ->
        go p t theta phi (fun theta phi ->
            if Subst.mem x theta then sk theta phi
            else
              (* x is unconstrained by the body: declaratively, any term
                 t' witnesses P-Exists. Report the witness without the
                 irrelevant binding. *)
              sk theta phi)
    | Exists_f (f, p) ->
        go p t theta phi (fun theta phi ->
            if Fsubst.mem f phi then sk theta phi
            else
              (* F unconstrained by the body: any operator witnesses it *)
              sk theta phi)
    | Constr (p, p', x) ->
        go p t theta phi (fun theta phi ->
            match Subst.find x theta with
            | Some t' -> go p' t' theta phi sk
            | None ->
                (* Would need to invent theta(x). *)
                complete := false)
    | Mu (m, ys) -> go (Pattern.unfold m ys) t theta phi sk
    | Call _ -> complete := false
  and go_args ps ts theta phi sk =
    match (ps, ts) with
    | [], [] -> sk theta phi
    | p :: ps, t :: ts ->
        go p t theta phi (fun theta phi -> go_args ps ts theta phi sk)
    | _ -> ()
  in
  (try go p t Subst.empty Fsubst.empty (fun theta phi ->
       acc := (theta, phi) :: !acc)
   with Out_of_fuel_exc -> complete := false);
  { witnesses = List.rev !acc; complete = !complete }

let count ~interp ?fuel p t = List.length (all ~interp ?fuel p t).witnesses

let dedup ws =
  let rec uniq seen = function
    | [] -> List.rev seen
    | ((theta, phi) as w) :: rest ->
        if
          List.exists
            (fun (t', p') -> Subst.equal theta t' && Fsubst.equal phi p')
            seen
        then uniq seen rest
        else uniq (w :: seen) rest
  in
  uniq [] ws
