open Pypm_term
open Pypm_pattern

type action =
  | Match of Pattern.t * Term.t
  | Check_guard of Guard.t
  | Check_name of Subst.var
  | Check_fname of Fsubst.fvar
  | Match_constr of Pattern.t * Subst.var

type frame = { bt_theta : Subst.t; bt_phi : Fsubst.t; bt_k : action list }

type state =
  | Success of Subst.t * Fsubst.t
  | Failure
  | Running of {
      theta : Subst.t;
      phi : Fsubst.t;
      stk : frame list;
      k : action list;
    }

type rule =
  | St_success
  | St_match_var_bind
  | St_match_var_bound
  | St_match_var_conflict
  | St_match_fun
  | St_match_fun_conflict
  | St_match_alt
  | St_match_guard
  | St_check_guard_continue
  | St_check_guard_backtrack
  | St_check_name
  | St_match_constr
  | St_match_exists
  | St_match_exists_f
  | St_check_fname
  | St_match_match_constr
  | St_match_fun_var_bind
  | St_match_fun_var_bound
  | St_match_fun_var_conflict
  | St_match_mu
  | St_stuck_recovery

let rule_name = function
  | St_success -> "ST-Success"
  | St_match_var_bind -> "ST-Match-Var-Bind"
  | St_match_var_bound -> "ST-Match-Var-Bound"
  | St_match_var_conflict -> "ST-Match-Var-Conflict"
  | St_match_fun -> "ST-Match-Fun"
  | St_match_fun_conflict -> "ST-Match-Fun-Conflict"
  | St_match_alt -> "ST-Match-Alt"
  | St_match_guard -> "ST-Match-Guard"
  | St_check_guard_continue -> "ST-CheckGuard-Continue"
  | St_check_guard_backtrack -> "ST-CheckGuard-Backtrack"
  | St_check_name -> "ST-CheckName"
  | St_match_constr -> "ST-MatchConstr"
  | St_match_exists -> "ST-Match-Exists"
  | St_match_exists_f -> "ST-Match-Exists-F"
  | St_check_fname -> "ST-CheckFName"
  | St_match_match_constr -> "ST-Match-Match-Constr"
  | St_match_fun_var_bind -> "ST-Match-Fun-Var-Bind"
  | St_match_fun_var_bound -> "ST-Match-Fun-Var-Bound"
  | St_match_fun_var_conflict -> "ST-Match-Fun-Var-Conflict"
  | St_match_mu -> "ST-Match-Mu"
  | St_stuck_recovery -> "ST-Stuck-Recovery"

let init p t =
  Running
    { theta = Subst.empty; phi = Fsubst.empty; stk = []; k = [ Match (p, t) ] }

(* The [backtrack] metafunction of figure 17. *)
let backtrack = function
  | [] -> Failure
  | { bt_theta; bt_phi; bt_k } :: stk ->
      Running { theta = bt_theta; phi = bt_phi; stk; k = bt_k }

let step ~interp ~policy st =
  match st with
  | Success _ | Failure -> None
  | Running { theta; phi; stk; k } -> (
      let stuck rule_if_recovering =
        match (policy : Outcome.Policy.t) with
        | Faithful -> None
        | Backtrack -> Some (rule_if_recovering, backtrack stk)
      in
      match k with
      (* ST-Success *)
      | [] -> Some (St_success, Success (theta, phi))
      | a :: k -> (
          match a with
          | Match (Pattern.Var x, t) -> (
              match Subst.find x theta with
              | None ->
                  (* ST-Match-Var-Bind *)
                  Some
                    ( St_match_var_bind,
                      Running { theta = Subst.add x t theta; phi; stk; k } )
              | Some t' ->
                  if Term.equal t t' then
                    (* ST-Match-Var-Bound *)
                    Some (St_match_var_bound, Running { theta; phi; stk; k })
                  else
                    (* ST-Match-Var-Conflict *)
                    Some (St_match_var_conflict, backtrack stk))
          | Match (Pattern.App (f, ps), t) ->
              let g = Term.head t and ts = Term.args t in
              if Symbol.equal f g && List.length ps = List.length ts then
                (* ST-Match-Fun: k' = [match(p1,t1), ..., match(pn,tn)] *)
                let k' = List.map2 (fun p t -> Match (p, t)) ps ts in
                Some (St_match_fun, Running { theta; phi; stk; k = k' @ k })
              else
                (* ST-Match-Fun-Conflict: f <> g or m <> n *)
                Some (St_match_fun_conflict, backtrack stk)
          | Match (Pattern.Alt (p, p'), t) ->
              (* ST-Match-Alt: push (theta, phi, match(p',t)::k), try p *)
              let stk' =
                { bt_theta = theta; bt_phi = phi; bt_k = Match (p', t) :: k }
                :: stk
              in
              Some
                ( St_match_alt,
                  Running { theta; phi; stk = stk'; k = Match (p, t) :: k } )
          | Match (Pattern.Guarded (p, g), t) ->
              (* ST-Match-Guard *)
              Some
                ( St_match_guard,
                  Running
                    { theta; phi; stk; k = Match (p, t) :: Check_guard g :: k }
                )
          | Match (Pattern.Exists (x, p), t) ->
              (* ST-Match-Exists: k' = checkName(x) :: k *)
              Some
                ( St_match_exists,
                  Running
                    { theta; phi; stk; k = Match (p, t) :: Check_name x :: k }
                )
          | Match (Pattern.Exists_f (f, p), t) ->
              (* extension: like ST-Match-Exists, in the phi name space *)
              Some
                ( St_match_exists_f,
                  Running
                    { theta; phi; stk; k = Match (p, t) :: Check_fname f :: k }
                )
          | Match (Pattern.Constr (p, p', x), t) ->
              (* ST-Match-Match-Constr: k' = matchConstr(p', x) :: k *)
              Some
                ( St_match_match_constr,
                  Running
                    {
                      theta;
                      phi;
                      stk;
                      k = Match (p, t) :: Match_constr (p', x) :: k;
                    } )
          | Match (Pattern.Fapp (fv, ps), t) -> (
              let f = Term.head t and ts = Term.args t in
              let arity_ok = List.length ps = List.length ts in
              match Fsubst.find fv phi with
              | None ->
                  if arity_ok then
                    (* ST-Match-Fun-Var-Bind *)
                    let k' = List.map2 (fun p t -> Match (p, t)) ps ts in
                    Some
                      ( St_match_fun_var_bind,
                        Running
                          {
                            theta;
                            phi = Fsubst.add fv f phi;
                            stk;
                            k = k' @ k;
                          } )
                  else
                    (* arity mismatch branch of ST-Match-Fun-Var-Conflict *)
                    Some (St_match_fun_var_conflict, backtrack stk)
              | Some g ->
                  if Symbol.equal f g && arity_ok then
                    (* ST-Match-Fun-Var-Bound *)
                    let k' = List.map2 (fun p t -> Match (p, t)) ps ts in
                    Some
                      ( St_match_fun_var_bound,
                        Running { theta; phi; stk; k = k' @ k } )
                  else
                    (* ST-Match-Fun-Var-Conflict *)
                    Some (St_match_fun_var_conflict, backtrack stk))
          | Match (Pattern.Mu (m, ys), t) ->
              (* ST-Match-Mu: one unfolding *)
              let p' = Pattern.unfold m ys in
              Some
                (St_match_mu, Running { theta; phi; stk; k = Match (p', t) :: k })
          | Match (Pattern.Call (pn, _), _) ->
              (* A free recursive call is ill-formed; no rule matches it.
                 Under Backtrack we treat it as an unsatisfiable pattern. *)
              ignore pn;
              stuck St_stuck_recovery
          | Check_guard g -> (
              match Guard.eval interp theta phi g with
              | Some true ->
                  (* ST-CheckGuard-Continue *)
                  Some (St_check_guard_continue, Running { theta; phi; stk; k })
              | Some false ->
                  (* ST-CheckGuard-Backtrack *)
                  Some (St_check_guard_backtrack, backtrack stk)
              | None ->
                  (* The instance g[theta] is not closed or an attribute is
                     undefined: no rule of the paper applies. *)
                  stuck St_stuck_recovery)
          | Check_name x -> (
              match Subst.find x theta with
              | Some _ ->
                  (* ST-CheckName *)
                  Some (St_check_name, Running { theta; phi; stk; k })
              | None -> stuck St_stuck_recovery)
          | Check_fname f -> (
              match Fsubst.find f phi with
              | Some _ -> Some (St_check_fname, Running { theta; phi; stk; k })
              | None -> stuck St_stuck_recovery)
          | Match_constr (p, x) -> (
              match Subst.find x theta with
              | Some t ->
                  (* ST-MatchConstr *)
                  Some
                    ( St_match_constr,
                      Running { theta; phi; stk; k = Match (p, t) :: k } )
              | None -> stuck St_stuck_recovery)))

let finish ?fuel_exhausted st : Outcome.t =
  match st with
  | Success (theta, phi) -> Matched (theta, phi)
  | Failure -> No_match
  | Running _ -> (
      match fuel_exhausted with Some true -> Out_of_fuel | _ -> Stuck)

let run ~interp ?(policy = Outcome.Policy.Faithful) ?(fuel = 1_000_000) p t =
  let rec go st fuel =
    if fuel <= 0 then finish ~fuel_exhausted:true st
    else
      match step ~interp ~policy st with
      | None -> finish st
      | Some (_, st') -> go st' (fuel - 1)
  in
  go (init p t) fuel

let run_trace ~interp ?(policy = Outcome.Policy.Faithful) ?(fuel = 1_000_000) p
    t =
  let rec go st fuel acc =
    if fuel <= 0 then (List.rev acc, finish ~fuel_exhausted:true st)
    else
      match step ~interp ~policy st with
      | None -> (List.rev acc, finish st)
      | Some (r, st') -> go st' (fuel - 1) (r :: acc)
  in
  go (init p t) fuel []

let steps ~interp ?(policy = Outcome.Policy.Faithful) ?(fuel = 1_000_000) p t =
  let rec go st fuel n =
    if fuel <= 0 then None
    else
      match step ~interp ~policy st with
      | None -> Some n
      | Some (_, st') -> go st' (fuel - 1) (n + 1)
  in
  go (init p t) fuel 0

let pp_action ppf = function
  | Match (p, t) -> Format.fprintf ppf "match(%a, %a)" Pattern.pp p Term.pp t
  | Check_guard g -> Format.fprintf ppf "guard(%a)" Guard.pp g
  | Check_name x -> Format.fprintf ppf "checkName(%s)" x
  | Check_fname f -> Format.fprintf ppf "checkFName(%s)" f
  | Match_constr (p, x) ->
      Format.fprintf ppf "matchConstr(%a, %s)" Pattern.pp p x

let pp_state ppf = function
  | Success (theta, phi) ->
      Format.fprintf ppf "success(%a, %a)" Subst.pp theta Fsubst.pp phi
  | Failure -> Format.pp_print_string ppf "failure"
  | Running { theta; phi; stk; k } ->
      Format.fprintf ppf "@[<v>running(%a, %a,@ stack depth %d,@ k = [%a])@]"
        Subst.pp theta Fsubst.pp phi (List.length stk)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_action)
        k
