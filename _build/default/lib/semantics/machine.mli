(** Algorithmic semantics: the backtracking abstract machine.

    A literal transcription of the state transition system of figures 17-18.
    A machine state is [success(theta, phi)], [failure], or
    [running(theta, phi, stk, k)] where [k] is a continuation (list) of
    actions and [stk] is a stack of backtrack frames saving a substitution
    pair and a continuation at each choice point.

    The module exposes the single-step relation so tests can exercise
    individual transition rules, a trace runner, and a terminal-state
    runner. Stepping is deterministic: at most one rule applies to any
    state, and where the paper's rules have no applicable case the machine
    either halts ({!Outcome.Policy.Faithful}) or backtracks
    ({!Outcome.Policy.Backtrack}). *)

open Pypm_term
open Pypm_pattern

(** Actions: the alphabet of continuations (figure 17, first line). *)
type action =
  | Match of Pattern.t * Term.t  (** [match(p, t)] *)
  | Check_guard of Guard.t  (** [guard(g)] *)
  | Check_name of Subst.var  (** [checkName(x)] *)
  | Check_fname of Fsubst.fvar  (** [checkFName(F)] (Exists_f extension) *)
  | Match_constr of Pattern.t * Subst.var  (** [matchConstr(p, x)] *)

type frame = { bt_theta : Subst.t; bt_phi : Fsubst.t; bt_k : action list }

type state =
  | Success of Subst.t * Fsubst.t
  | Failure
  | Running of {
      theta : Subst.t;
      phi : Fsubst.t;
      stk : frame list;
      k : action list;
    }

(** Names of the transition rules, as in figures 17-18, for traces and
    rule-level tests. *)
type rule =
  | St_success
  | St_match_var_bind
  | St_match_var_bound
  | St_match_var_conflict
  | St_match_fun
  | St_match_fun_conflict
  | St_match_alt
  | St_match_guard
  | St_check_guard_continue
  | St_check_guard_backtrack
  | St_check_name
  | St_match_constr
  | St_match_exists
  | St_match_exists_f
  | St_check_fname
  | St_match_match_constr
  | St_match_fun_var_bind
  | St_match_fun_var_bound
  | St_match_fun_var_conflict
  | St_match_mu
  | St_stuck_recovery
      (** only under [Policy.Backtrack]: an unhandled state treated as a
          failed constraint *)

val rule_name : rule -> string

(** [init p t] is the initial state
    [running(empty, empty, [], [match(p, t)])]. *)
val init : Pattern.t -> Term.t -> state

(** [step ~interp ~policy st] performs one transition, returning the rule
    that fired. [None] when [st] is terminal, or when no rule applies and
    [policy] is [Faithful]. *)
val step :
  interp:Guard.interp ->
  policy:Outcome.Policy.t ->
  state ->
  (rule * state) option

(** [run ~interp ?policy ?fuel p t] iterates [step] from [init p t] to a
    terminal state. Default [policy] is [Faithful], default [fuel]
    1_000_000 steps. *)
val run :
  interp:Guard.interp ->
  ?policy:Outcome.Policy.t ->
  ?fuel:int ->
  Pattern.t ->
  Term.t ->
  Outcome.t

(** Like {!run}, also returning the sequence of rules fired (in order). *)
val run_trace :
  interp:Guard.interp ->
  ?policy:Outcome.Policy.t ->
  ?fuel:int ->
  Pattern.t ->
  Term.t ->
  rule list * Outcome.t

(** Number of steps taken to reach a terminal state (for benches);
    [None] when fuel ran out. *)
val steps :
  interp:Guard.interp ->
  ?policy:Outcome.Policy.t ->
  ?fuel:int ->
  Pattern.t ->
  Term.t ->
  int option

val pp_action : Format.formatter -> action -> unit
val pp_state : Format.formatter -> state -> unit
