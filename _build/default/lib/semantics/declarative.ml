open Pypm_term
open Pypm_pattern

let check ~interp ?(fuel = 10_000) p theta phi t =
  let remaining = ref fuel in
  let rec go (p : Pattern.t) theta phi t =
    decr remaining;
    if !remaining < 0 then false
    else
      match p with
      (* P-Var *)
      | Var x -> (
          match Subst.find x theta with
          | Some t' -> Term.equal t t'
          | None -> false)
      (* P-Fun *)
      | App (f, ps) ->
          Symbol.equal f (Term.head t)
          && List.length ps = List.length (Term.args t)
          && List.for_all2 (fun p t -> go p theta phi t) ps (Term.args t)
      (* P-Fun-Var *)
      | Fapp (fv, ps) -> (
          match Fsubst.find fv phi with
          | Some f ->
              Symbol.equal f (Term.head t)
              && List.length ps = List.length (Term.args t)
              && List.for_all2 (fun p t -> go p theta phi t) ps (Term.args t)
          | None -> false)
      (* P-Alt-1 / P-Alt-2 *)
      | Alt (p1, p2) -> go p1 theta phi t || go p2 theta phi t
      (* P-Guard *)
      | Guarded (p, g) ->
          go p theta phi t && Guard.eval interp theta phi g = Some true
      (* P-Exists *)
      | Exists (x, body) -> (
          match Subst.find x theta with
          | Some _ ->
              (* theta U {x |-> t'} forces t' = theta(x) *)
              go body theta phi t
          | None ->
              if not (Symbol.Set.mem x (Pattern.free_vars body)) then
                (* any invented t' works and is never consulted *)
                go body theta phi t
              else
                (* search candidates pinned by term-position occurrences *)
                Seq.exists
                  (fun t' -> go body (Subst.add x t' theta) phi t)
                  (Term.subterms t))
      (* P-Exists-F (extension): operator candidates come from the term *)
      | Exists_f (f, body) -> (
          match Fsubst.find f phi with
          | Some _ -> go body theta phi t
          | None ->
              if not (Symbol.Set.mem f (Pattern.free_fvars body)) then
                go body theta phi t
              else
                Symbol.Set.exists
                  (fun s -> go body theta (Fsubst.add f s phi) t)
                  (Term.symbols t))
      (* P-MatchConstr *)
      | Constr (p, p', x) -> (
          go p theta phi t
          &&
          match Subst.find x theta with
          | Some t' -> go p' theta phi t'
          | None -> false)
      (* P-Mu *)
      | Mu (m, ys) -> go (Pattern.unfold m ys) theta phi t
      | Call _ -> false
  in
  go p theta phi t

let holds ~interp ?fuel p t =
  let r = Enumerate.all ~interp ?fuel p t in
  match r.witnesses with _ :: _ -> true | [] -> false
