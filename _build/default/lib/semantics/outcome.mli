(** Match outcomes shared by every matcher implementation. *)

open Pypm_term

type t =
  | Matched of Subst.t * Fsubst.t
      (** the machine's [success(theta, phi)] terminal state *)
  | No_match  (** the machine's [failure] terminal state *)
  | Stuck
      (** no transition rule applies (e.g. [checkName(x)] with [x] unbound,
          or a guard whose substitution instance is not closed, in faithful
          mode). The paper's rules leave these states without a successor;
          see {!Policy}. *)
  | Out_of_fuel
      (** the step budget was exhausted; recursive patterns can diverge
          (the paper's [mu P(x). P(x)] example) *)

val is_matched : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** What to do when the literal transition rules of figures 17-18 have no
    applicable case: [checkName(x)] or [matchConstr(p, x)] with [x] unbound,
    or a guard that does not evaluate (open instance / undefined
    attribute). *)
module Policy : sig
  type t =
    | Faithful  (** halt in {!Stuck}, exactly as the paper's rules read *)
    | Backtrack
        (** treat the situation as a failed constraint and backtrack; this
            is what the production C++ matcher does with a failing assert *)

  val pp : Format.formatter -> t -> unit
end
