open Pypm_term

type t =
  | Matched of Subst.t * Fsubst.t
  | No_match
  | Stuck
  | Out_of_fuel

let is_matched = function Matched _ -> true | _ -> false

let equal a b =
  match (a, b) with
  | Matched (t1, f1), Matched (t2, f2) -> Subst.equal t1 t2 && Fsubst.equal f1 f2
  | No_match, No_match | Stuck, Stuck | Out_of_fuel, Out_of_fuel -> true
  | _ -> false

let pp ppf = function
  | Matched (theta, phi) ->
      Format.fprintf ppf "success(%a, %a)" Subst.pp theta Fsubst.pp phi
  | No_match -> Format.pp_print_string ppf "failure"
  | Stuck -> Format.pp_print_string ppf "stuck"
  | Out_of_fuel -> Format.pp_print_string ppf "out-of-fuel"

let to_string t = Format.asprintf "%a" pp t

module Policy = struct
  type t = Faithful | Backtrack

  let pp ppf = function
    | Faithful -> Format.pp_print_string ppf "faithful"
    | Backtrack -> Format.pp_print_string ppf "backtrack"
end
