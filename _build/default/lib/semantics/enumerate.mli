(** All-witness enumeration: the completeness oracle.

    The machine and the production matcher are left-eager and return the
    first witness. This module explores {e both} sides of every alternate
    and every function-variable choice, producing all witnesses reachable
    through the algorithmic search space. It is the oracle for the failure
    half of Theorem 2: if the machine reports [failure], enumeration must
    find no witness.

    Enumeration is complete relative to the class of patterns whose
    existential variables are pinned by occurrences (the class the frontend
    emits, and the class for which the machine itself can report bindings).
    A branch that would require inventing an unconstrained term to satisfy a
    match constraint or guard is abandoned and the result is flagged
    [complete = false]. *)

open Pypm_term
open Pypm_pattern

type result = {
  witnesses : (Subst.t * Fsubst.t) list;
      (** in the machine's exploration order; first element equals the
          machine's first success when one exists *)
  complete : bool;
      (** false when fuel ran out or a branch needed an invented term *)
}

val all :
  interp:Guard.interp -> ?fuel:int -> Pattern.t -> Term.t -> result

(** [count ~interp ?fuel p t] is [List.length (all ...).witnesses]. *)
val count : interp:Guard.interp -> ?fuel:int -> Pattern.t -> Term.t -> int

(** Deduplicate witnesses that are equal as substitution pairs (distinct
    derivations can yield the same witness). *)
val dedup : (Subst.t * Fsubst.t) list -> (Subst.t * Fsubst.t) list
