(** Synthetic convolutional vision models (the TorchVision stand-in).

    ResNet/VGG-flavoured image classifiers: a strided stem convolution,
    stages of conv+bias+relu blocks (optionally with residual adds),
    pooling between stages, global average pooling and a small MLP
    classifier head. Every [Relu(Conv2d(...))] is a conv-epilog site; the
    classifier's hidden layer contributes matmul-epilog sites; there are
    no attention subgraphs, so FMHA never fires (matching the paper's
    TorchVision results). *)

open Pypm_graph

type config = {
  name : string;
  stages : int;
  blocks_per_stage : int;
  base_channels : int;
  image : int;  (** input height = width *)
  batch : int;
  residual : bool;  (** ResNet-style skip connections *)
  classifier_hidden : int option;  (** VGG-style hidden FC layer, with relu *)
  classes : int;
  seed : int;
}

val config :
  ?stages:int ->
  ?blocks_per_stage:int ->
  ?base_channels:int ->
  ?image:int ->
  ?batch:int ->
  ?residual:bool ->
  ?classifier_hidden:int option ->
  ?classes:int ->
  ?seed:int ->
  string ->
  config

val build : Pypm_patterns.Std_ops.env -> config -> Graph.t

(** Conv+relu sites the epilog pass should fuse. *)
val expected_conv_epilogs : config -> int
