type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int (seed * 2654435761 + 1) }

(* splitmix64 *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let bool t = int t 2 = 0
let pick t xs = List.nth xs (int t (List.length xs))
let range t lo hi = lo + int t (hi - lo + 1)
