open Pypm_graph
open Pypm_tensor
module O = Pypm_patterns.Std_ops

type config = {
  name : string;
  embed : int;
  image : int;
  text_layers : int;
  text_seq : int;
  batch : int;
  seed : int;
}

let config ?(embed = 128) ?(image = 64) ?(text_layers = 2) ?(text_seq = 32)
    ?(batch = 4) ?(seed = 1) name =
  { name; embed; image; text_layers; text_seq; batch; seed }

let f32 shape = Ty.make Dtype.F32 shape

(* a small conv tower: stem + two conv/relu stages + GAP + projection *)
let image_tower g cfg =
  let conv ~in_c ~out_c ~stride x =
    let w = Graph.input g ~name:"imgw" (f32 [ out_c; in_c; 3; 3 ]) in
    let b = Graph.input g ~name:"imgb" (f32 [ out_c; 1; 1 ]) in
    Graph.add g O.relu
      [ Graph.add g O.conv2d ~attrs:[ ("stride", stride); ("pad", 1) ] [ x; w; b ] ]
  in
  let x = Graph.input g ~name:"image" (f32 [ cfg.batch; 3; cfg.image; cfg.image ]) in
  let x = conv ~in_c:3 ~out_c:16 ~stride:2 x in
  let x = conv ~in_c:16 ~out_c:32 ~stride:2 x in
  let pooled = Graph.add g O.global_avg_pool [ x ] in
  let w = Graph.input g ~name:"img_proj" (f32 [ 32; cfg.embed ]) in
  (* [batch; embed] *)
  Graph.add g O.matmul [ pooled; w ]

(* a small text transformer: MHA + GELU MLP per layer + mean-pool-ish
   projection (we use the first token via a matmul against a fixed
   selector, modeled as a plain projection) *)
let text_tower rng g cfg =
  let h = cfg.embed in
  let x = Graph.input g ~name:"tokens" (f32 [ cfg.batch; cfg.text_seq; h ]) in
  let layer x =
    let weight name = Graph.input g ~name (f32 [ h; h ]) in
    let q = Graph.add g O.matmul [ x; weight "twq" ] in
    let k = Graph.add g O.matmul [ x; weight "twk" ] in
    let v = Graph.add g O.matmul [ x; weight "twv" ] in
    let qk = Graph.add g O.matmul [ q; Graph.add g O.trans [ k ] ] in
    let scaled = Graph.add g O.div [ qk; Graph.constant g 8.0 ] in
    let att =
      Graph.add g O.matmul [ Graph.add g O.softmax [ scaled ]; v ]
    in
    let res = Graph.add g O.add [ x; Graph.add g O.matmul [ att; weight "two" ] ] in
    let x = Graph.add g O.layer_norm [ res ] in
    (* MLP with the Div(x, 2) GELU spelling *)
    let w1 = Graph.input g ~name:"tw1" (f32 [ h; 4 * h ]) in
    let b1 = Graph.input g ~name:"tb1" (f32 [ 4 * h ]) in
    let pre = Graph.add g O.add [ Graph.add g O.matmul [ x; w1 ]; b1 ] in
    let half = Graph.add g O.div [ pre; Graph.constant g 2.0 ] in
    let erf =
      Graph.add g O.erf
        [ Graph.add g O.div [ pre; Graph.constant g O.sqrt2 ] ]
    in
    let gelu =
      Graph.add g O.mul
        [ half; Graph.add g O.add [ Graph.constant g 1.0; erf ] ]
    in
    let w2 = Graph.input g ~name:"tw2" (f32 [ 4 * h; h ]) in
    Graph.add g O.layer_norm
      [ Graph.add g O.add [ x; Graph.add g O.matmul [ gelu; w2 ] ] ]
  in
  let rec layers n x = if n = 0 then x else layers (n - 1) (layer x) in
  let body = layers cfg.text_layers x in
  ignore rng;
  (* mean over the sequence: modeled as a reduce to [batch; h] via GAP's
     cousin — we reuse a matmul projection from [b; s; h] flattened; the
     simple realistic choice is a Flatten + projection *)
  let flat = Graph.add g O.flatten ~attrs:[ ("axis", 1) ] [ body ] in
  let w = Graph.input g ~name:"txt_proj" (f32 [ cfg.text_seq * h; cfg.embed ]) in
  Graph.add g O.matmul [ flat; w ]

let build (env : O.env) cfg =
  let rng = Rng.create ~seed:cfg.seed in
  let g = Graph.create ~sg:env.O.sg ~infer:env.O.infer () in
  let img = image_tower g cfg in
  let txt = text_tower rng g cfg in
  (* contrastive similarity head: logits = img @ txt^T, figure 1's shape *)
  let logits = Graph.add g O.matmul [ img; Graph.add g O.trans [ txt ] ] in
  let scaled = Graph.add g O.mul [ logits; Graph.constant g 14.285 ] in
  Graph.set_outputs g [ scaled ];
  g
