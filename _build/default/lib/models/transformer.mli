(** Synthetic transformer models (the HuggingFace-suite stand-in).

    Each model is a pre-LN transformer encoder built from the standard
    operator vocabulary exactly as a PyTorch-to-IR importer would emit it:
    multi-head attention written out as matmuls, transpose, scale and
    softmax (the subgraph the MHA pattern targets), and an MLP whose GELU
    is spelled either as [Div(x, 2)] or [Mul(x, 0.5)] — the two spellings
    the paper observed across the HuggingFace transformers (section 2.1).
    A seeded RNG varies commutative argument orders, so patterns must rely
    on their alternates. *)

open Pypm_graph

type gelu_variant = Div_two | Mul_half

type activation = Act_gelu of gelu_variant | Act_relu

type config = {
  name : string;
  layers : int;
  hidden : int;
  heads : int;
      (** 1 = attention at rank 3 directly on the projections; > 1 =
          SplitHeads/MergeHeads layout nodes around rank-4 attention, the
          way real importers emit multi-head attention *)
  seq : int;
  batch : int;
  ffn_mult : int;  (** MLP expansion factor, usually 4 *)
  activation : activation;
  vocab : int;  (** output projection width *)
  seed : int;  (** drives commutative-order jitter *)
}

(** A config with sensible defaults. *)
val config :
  ?layers:int ->
  ?hidden:int ->
  ?heads:int ->
  ?seq:int ->
  ?batch:int ->
  ?ffn_mult:int ->
  ?activation:activation ->
  ?vocab:int ->
  ?seed:int ->
  string ->
  config

(** [build env cfg] constructs the forward-pass graph. Fresh graph each
    call (rewriting is destructive, so benchmark configurations each build
    their own copy). *)
val build : Pypm_patterns.Std_ops.env -> config -> Graph.t

(** Expected pattern-match counts for tests: one MHA site per layer, and
    one activation-epilog site per layer when the MLP has a bias +
    activation. *)
val expected_mha_sites : config -> int
