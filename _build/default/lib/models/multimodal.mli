(** Synthetic multimodal (CLIP-style) models.

    A small convolutional image tower and a small transformer text tower
    meet in a contrastive similarity head
    [logits = MatMul(img, Trans(txt))] — which is precisely the
    [MMxyT] shape of the paper's figure 1, on rank-2 features, so the
    cuBLAS rewrite fires on a realistic site. These models also contain
    conv epilogs (image tower) and MHA + GELU sites (text tower), making
    them the workload where all three optimization families apply at
    once. *)

open Pypm_graph

type config = {
  name : string;
  embed : int;  (** shared embedding width *)
  image : int;
  text_layers : int;
  text_seq : int;
  batch : int;
  seed : int;
}

val config :
  ?embed:int ->
  ?image:int ->
  ?text_layers:int ->
  ?text_seq:int ->
  ?batch:int ->
  ?seed:int ->
  string ->
  config

val build : Pypm_patterns.Std_ops.env -> config -> Graph.t
