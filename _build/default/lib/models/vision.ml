open Pypm_graph
open Pypm_tensor
module O = Pypm_patterns.Std_ops

type config = {
  name : string;
  stages : int;
  blocks_per_stage : int;
  base_channels : int;
  image : int;
  batch : int;
  residual : bool;
  classifier_hidden : int option;
  classes : int;
  seed : int;
}

let config ?(stages = 3) ?(blocks_per_stage = 2) ?(base_channels = 16)
    ?(image = 64) ?(batch = 4) ?(residual = false) ?(classifier_hidden = None)
    ?(classes = 1000) ?(seed = 1) name =
  {
    name;
    stages;
    blocks_per_stage;
    base_channels;
    image;
    batch;
    residual;
    classifier_hidden;
    classes;
    seed;
  }

let f32 shape = Ty.make Dtype.F32 shape

(* conv + bias + relu, the epilog site *)
let conv_block g ~in_c ~out_c ~stride x =
  let w = Graph.input g ~name:"convw" (f32 [ out_c; in_c; 3; 3 ]) in
  let b = Graph.input g ~name:"convb" (f32 [ out_c; 1; 1 ]) in
  let c =
    Graph.add g O.conv2d ~attrs:[ ("stride", stride); ("pad", 1) ] [ x; w; b ]
  in
  Graph.add g O.relu [ c ]

let build (env : O.env) cfg =
  let rng = Rng.create ~seed:cfg.seed in
  let g = Graph.create ~sg:env.O.sg ~infer:env.O.infer () in
  let x =
    Graph.input g ~name:"image" (f32 [ cfg.batch; 3; cfg.image; cfg.image ])
  in
  (* stem *)
  let x = conv_block g ~in_c:3 ~out_c:cfg.base_channels ~stride:2 x in
  let x = ref x and channels = ref cfg.base_channels in
  for stage = 0 to cfg.stages - 1 do
    let out_c = cfg.base_channels * (1 lsl stage) in
    (* downsample on stage entry (after the stem): residual nets use a
       strided conv, VGG-style nets a max-pool *)
    let stride = if stage = 0 || not cfg.residual then 1 else 2 in
    if stage > 0 && not cfg.residual then
      x :=
        Graph.add g O.max_pool
          ~attrs:[ ("window", 2); ("stride", 2) ]
          [ !x ];
    x := conv_block g ~in_c:!channels ~out_c ~stride !x;
    channels := out_c;
    for _block = 1 to cfg.blocks_per_stage - 1 do
      let y = conv_block g ~in_c:out_c ~out_c ~stride:1 !x in
      x :=
        if cfg.residual then
          let summed =
            if Rng.bool rng then Graph.add g O.add [ !x; y ]
            else Graph.add g O.add [ y; !x ]
          in
          Graph.add g O.batch_norm [ summed ]
        else y
    done
  done;
  (* head *)
  let pooled = Graph.add g O.global_avg_pool [ !x ] in
  let feat, feat_dim =
    match cfg.classifier_hidden with
    | None -> (pooled, !channels)
    | Some hidden ->
        (* VGG-style hidden FC + relu: a matmul-epilog site *)
        let w = Graph.input g ~name:"fc1w" (f32 [ !channels; hidden ]) in
        let b = Graph.input g ~name:"fc1b" (f32 [ hidden ]) in
        let pre =
          if Rng.bool rng then
            Graph.add g O.add [ Graph.add g O.matmul [ pooled; w ]; b ]
          else Graph.add g O.add [ b; Graph.add g O.matmul [ pooled; w ] ]
        in
        (Graph.add g O.relu [ pre ], hidden)
  in
  let w_cls = Graph.input g ~name:"clsw" (f32 [ feat_dim; cfg.classes ]) in
  let b_cls = Graph.input g ~name:"clsb" (f32 [ cfg.classes ]) in
  let logits =
    Graph.add g O.add [ Graph.add g O.matmul [ feat; w_cls ]; b_cls ]
  in
  Graph.set_outputs g [ logits ];
  g

let expected_conv_epilogs cfg =
  (* stem + per-stage entry + (blocks_per_stage - 1) extra per stage *)
  1 + cfg.stages + (cfg.stages * (cfg.blocks_per_stage - 1))
