(** Deterministic pseudo-random numbers (splitmix64).

    The model zoo must be reproducible run to run so EXPERIMENTS.md numbers
    are stable; generators never touch the global [Random] state. *)

type t

val create : seed:int -> t

(** [int t n] is uniform in [0, n); [n] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** [pick t xs] chooses uniformly from a non-empty list. *)
val pick : t -> 'a list -> 'a

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int
