open Pypm_graph
open Pypm_tensor
module O = Pypm_patterns.Std_ops

type gelu_variant = Div_two | Mul_half
type activation = Act_gelu of gelu_variant | Act_relu

type config = {
  name : string;
  layers : int;
  hidden : int;
  heads : int;
  seq : int;
  batch : int;
  ffn_mult : int;
  activation : activation;
  vocab : int;
  seed : int;
}

let config ?(layers = 4) ?(hidden = 256) ?(heads = 1) ?(seq = 128)
    ?(batch = 4) ?(ffn_mult = 4) ?(activation = Act_gelu Div_two)
    ?(vocab = 1024) ?(seed = 1) name =
  if heads < 1 || hidden mod heads <> 0 then
    invalid_arg "Transformer.config: heads must divide hidden";
  { name; layers; hidden; heads; seq; batch; ffn_mult; activation; vocab; seed }

let f32 shape = Ty.make Dtype.F32 shape

(* Commutative wrapper: the importer emits either argument order. *)
let comm rng g op a b =
  if Rng.bool rng then Graph.add g op [ a; b ] else Graph.add g op [ b; a ]

(* GELU(x) = half(x) * (1 + erf(x / sqrt 2)) with the model's spelling of
   "half" (paper, section 2.1). *)
let gelu_subgraph rng g variant x =
  let half =
    match variant with
    | Div_two -> Graph.add g O.div [ x; Graph.constant g 2.0 ]
    | Mul_half -> comm rng g O.mul x (Graph.constant g 0.5)
  in
  let erf =
    Graph.add g O.erf [ Graph.add g O.div [ x; Graph.constant g O.sqrt2 ] ]
  in
  let inner = comm rng g O.add (Graph.constant g 1.0) erf in
  comm rng g O.mul half inner

let attention rng g cfg x =
  let h = cfg.hidden in
  let weight name = Graph.input g ~name (f32 [ h; h ]) in
  let split p =
    if cfg.heads = 1 then p
    else Graph.add g O.split_heads ~attrs:[ ("heads", cfg.heads) ] [ p ]
  in
  let q = split (Graph.add g O.matmul [ x; weight "wq" ]) in
  let k = split (Graph.add g O.matmul [ x; weight "wk" ]) in
  let v = split (Graph.add g O.matmul [ x; weight "wv" ]) in
  let qk = Graph.add g O.matmul [ q; Graph.add g O.trans [ k ] ] in
  let alpha = Graph.constant g 0.125 in
  let scaled =
    (* the two scale spellings the MHA pattern's alternates cover *)
    if Rng.bool rng then Graph.add g O.div [ qk; alpha ]
    else comm rng g O.mul qk alpha
  in
  let probs = Graph.add g O.softmax [ scaled ] in
  let att = Graph.add g O.matmul [ probs; v ] in
  let att = if cfg.heads = 1 then att else Graph.add g O.merge_heads [ att ] in
  let out = Graph.add g O.matmul [ att; weight "wo" ] in
  Graph.add g O.layer_norm [ Graph.add g O.add [ x; out ] ]

let mlp rng g cfg x =
  let h = cfg.hidden in
  let ff = cfg.ffn_mult * h in
  let w1 = Graph.input g ~name:"w1" (f32 [ h; ff ]) in
  let b1 = Graph.input g ~name:"b1" (f32 [ ff ]) in
  let w2 = Graph.input g ~name:"w2" (f32 [ ff; h ]) in
  let b2 = Graph.input g ~name:"b2" (f32 [ h ]) in
  let pre = comm rng g O.add (Graph.add g O.matmul [ x; w1 ]) b1 in
  let act =
    match cfg.activation with
    | Act_gelu variant -> gelu_subgraph rng g variant pre
    | Act_relu -> Graph.add g O.relu [ pre ]
  in
  let out = comm rng g O.add (Graph.add g O.matmul [ act; w2 ]) b2 in
  Graph.add g O.layer_norm [ Graph.add g O.add [ x; out ] ]

let build (env : O.env) cfg =
  let rng = Rng.create ~seed:cfg.seed in
  let g = Graph.create ~sg:env.O.sg ~infer:env.O.infer () in
  let x = Graph.input g ~name:"tokens" (f32 [ cfg.batch; cfg.seq; cfg.hidden ]) in
  let rec layer n x = if n = 0 then x else layer (n - 1) (mlp rng g cfg (attention rng g cfg x)) in
  let body = layer cfg.layers x in
  let w_out = Graph.input g ~name:"w_vocab" (f32 [ cfg.hidden; cfg.vocab ]) in
  let logits = Graph.add g O.matmul [ body; w_out ] in
  Graph.set_outputs g [ logits ];
  g

let expected_mha_sites cfg = cfg.layers
