(** The model zoo: the benchmark suites.

    Stand-ins for the paper's two benchmark collections — the HuggingFace
    transformers suite and the TorchVision suite. Each entry builds a fresh
    graph on demand (destructive rewriting means every compile
    configuration needs its own copy) together with the environment it was
    built against. *)

open Pypm_graph

type model = {
  mname : string;
  family : [ `HF | `TV | `MM ];
  build : unit -> Pypm_patterns.Std_ops.env * Graph.t;
}

(** ~30 transformer configurations spanning layer counts, widths, sequence
    lengths, both GELU spellings, and some ReLU-MLP models. *)
val hf : unit -> model list

(** ~30 CNN configurations: ResNet-style (residual), VGG-style (hidden FC
    classifier), and plain feed-forward stacks of varying depth/width. *)
val tv : unit -> model list

(** A few CLIP-style multimodal models: conv epilogs, MHA/GELU sites, and
    a figure-1 [MatMul(x, Trans(y))] similarity head all in one graph. *)
val mm : unit -> model list

val find : string -> model option
val all : unit -> model list
