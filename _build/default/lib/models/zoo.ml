open Pypm_graph
module O = Pypm_patterns.Std_ops

type model = {
  mname : string;
  family : [ `HF | `TV | `MM ];
  build : unit -> O.env * Graph.t;
}

let hf_model cfg =
  {
    mname = cfg.Transformer.name;
    family = `HF;
    build =
      (fun () ->
        let env = O.make () in
        (env, Transformer.build env cfg));
  }

let tv_model cfg =
  {
    mname = cfg.Vision.name;
    family = `TV;
    build =
      (fun () ->
        let env = O.make () in
        (env, Vision.build env cfg));
  }

let hf () =
  let t = Transformer.config in
  let gelu_d = Transformer.Act_gelu Transformer.Div_two in
  let gelu_m = Transformer.Act_gelu Transformer.Mul_half in
  let relu = Transformer.Act_relu in
  List.map hf_model
    [
      (* BERT-flavoured encoders, Div(x, 2) GELU spelling *)
      t "bert-tiny" ~layers:2 ~hidden:128 ~seq:128 ~batch:8 ~activation:gelu_d ~seed:11;
      t "bert-mini" ~layers:4 ~hidden:256 ~seq:128 ~batch:8 ~activation:gelu_d ~seed:12;
      t "bert-small" ~layers:4 ~hidden:512 ~seq:128 ~batch:8 ~activation:gelu_d ~seed:13;
      t "bert-medium" ~layers:8 ~hidden:512 ~seq:128 ~batch:8 ~activation:gelu_d ~seed:14;
      t "bert-base" ~layers:12 ~hidden:768 ~heads:12 ~seq:128 ~batch:8 ~activation:gelu_d ~seed:15;
      t "bert-large" ~layers:24 ~hidden:1024 ~heads:16 ~seq:128 ~batch:4 ~activation:gelu_d ~seed:16;
      (* GPT2-flavoured, Mul(x, 0.5) spelling *)
      t "gpt2-nano" ~layers:3 ~hidden:192 ~seq:256 ~batch:4 ~activation:gelu_m ~seed:21;
      t "gpt2-micro" ~layers:4 ~hidden:256 ~seq:256 ~batch:4 ~activation:gelu_m ~seed:22;
      t "gpt2-small" ~layers:12 ~hidden:768 ~heads:12 ~seq:256 ~batch:2 ~activation:gelu_m ~seed:23;
      t "gpt2-medium" ~layers:16 ~hidden:1024 ~heads:16 ~seq:256 ~batch:1 ~activation:gelu_m ~seed:24;
      (* T5/long-sequence flavoured *)
      t "t5-small" ~layers:6 ~hidden:512 ~seq:512 ~batch:2 ~activation:gelu_d ~seed:31;
      t "t5-base" ~layers:12 ~hidden:768 ~heads:12 ~seq:512 ~batch:1 ~activation:gelu_d ~seed:32;
      t "longformer-lite" ~layers:6 ~hidden:384 ~seq:1024 ~batch:1 ~activation:gelu_m ~seed:33;
      (* ReLU-MLP transformers (no GELU sites; epilog still fires on relu) *)
      t "relu-former-s" ~layers:4 ~hidden:256 ~seq:128 ~batch:8 ~activation:relu ~seed:41;
      t "relu-former-m" ~layers:8 ~hidden:512 ~seq:128 ~batch:4 ~activation:relu ~seed:42;
      t "relu-former-l" ~layers:12 ~hidden:768 ~seq:256 ~batch:2 ~activation:relu ~seed:43;
      (* distil variants *)
      t "distil-a" ~layers:6 ~hidden:768 ~heads:12 ~seq:128 ~batch:8 ~activation:gelu_m ~seed:51;
      t "distil-b" ~layers:6 ~hidden:512 ~seq:256 ~batch:4 ~activation:gelu_d ~seed:52;
      (* narrow/deep and wide/shallow sweeps *)
      t "deep-narrow-a" ~layers:16 ~hidden:256 ~seq:128 ~batch:4 ~activation:gelu_d ~seed:61;
      t "deep-narrow-b" ~layers:20 ~hidden:192 ~seq:128 ~batch:4 ~activation:gelu_m ~seed:62;
      t "wide-shallow-a" ~layers:2 ~hidden:1024 ~seq:128 ~batch:8 ~activation:gelu_m ~seed:63;
      t "wide-shallow-b" ~layers:3 ~hidden:2048 ~seq:64 ~batch:8 ~activation:gelu_d ~seed:64;
      (* small-batch latency-flavoured *)
      t "latency-a" ~layers:6 ~hidden:384 ~seq:32 ~batch:1 ~activation:gelu_d ~seed:71;
      t "latency-b" ~layers:8 ~hidden:512 ~seq:64 ~batch:1 ~activation:gelu_m ~seed:72;
      (* ffn-mult variations *)
      t "ffn2-model" ~layers:6 ~hidden:512 ~seq:128 ~batch:4 ~ffn_mult:2 ~activation:gelu_d ~seed:81;
      t "ffn8-model" ~layers:4 ~hidden:384 ~seq:128 ~batch:4 ~ffn_mult:8 ~activation:gelu_m ~seed:82;
      (* big-vocab classifier head *)
      t "mt-vocab" ~layers:6 ~hidden:512 ~seq:128 ~batch:4 ~vocab:8192 ~activation:gelu_d ~seed:91;
      (* tiny smoke models *)
      t "pico" ~layers:1 ~hidden:64 ~seq:32 ~batch:2 ~activation:gelu_d ~seed:95;
      t "nano-relu" ~layers:2 ~hidden:96 ~seq:64 ~batch:2 ~activation:relu ~seed:96;
      t "femto" ~layers:1 ~hidden:128 ~seq:64 ~batch:1 ~activation:gelu_m ~seed:97;
    ]

let tv () =
  let c = Vision.config in
  List.map tv_model
    [
      (* ResNet-flavoured (residual) *)
      c "resnet10-ish" ~stages:3 ~blocks_per_stage:2 ~base_channels:16 ~residual:true ~seed:111;
      c "resnet18-ish" ~stages:4 ~blocks_per_stage:2 ~base_channels:16 ~residual:true ~seed:112;
      c "resnet34-ish" ~stages:4 ~blocks_per_stage:3 ~base_channels:16 ~residual:true ~seed:113;
      c "resnet50-ish" ~stages:4 ~blocks_per_stage:4 ~base_channels:16 ~residual:true ~seed:114;
      c "wide-resnet" ~stages:3 ~blocks_per_stage:2 ~base_channels:32 ~residual:true ~seed:115;
      c "huge-resnet" ~stages:4 ~blocks_per_stage:5 ~base_channels:24 ~residual:true ~seed:116;
      (* VGG-flavoured (hidden FC classifier, no residual) *)
      c "vgg11-ish" ~stages:3 ~blocks_per_stage:2 ~base_channels:16
        ~classifier_hidden:(Some 512) ~seed:121;
      c "vgg13-ish" ~stages:3 ~blocks_per_stage:3 ~base_channels:16
        ~classifier_hidden:(Some 512) ~seed:122;
      c "vgg16-ish" ~stages:4 ~blocks_per_stage:3 ~base_channels:16
        ~classifier_hidden:(Some 1024) ~seed:123;
      c "vgg19-ish" ~stages:4 ~blocks_per_stage:4 ~base_channels:16
        ~classifier_hidden:(Some 1024) ~seed:124;
      (* plain convnets *)
      c "plain-s" ~stages:2 ~blocks_per_stage:2 ~base_channels:16 ~seed:131;
      c "plain-m" ~stages:3 ~blocks_per_stage:2 ~base_channels:24 ~seed:132;
      c "plain-l" ~stages:4 ~blocks_per_stage:2 ~base_channels:32 ~seed:133;
      (* mobile-flavoured: small channels, more blocks *)
      c "mobile-a" ~stages:4 ~blocks_per_stage:2 ~base_channels:8 ~image:96 ~seed:141;
      c "mobile-b" ~stages:4 ~blocks_per_stage:3 ~base_channels:8 ~image:96 ~seed:142;
      c "mobile-c" ~stages:5 ~blocks_per_stage:2 ~base_channels:8 ~image:128 ~seed:143;
      (* high-res *)
      c "highres-a" ~stages:3 ~blocks_per_stage:2 ~base_channels:16 ~image:128 ~seed:151;
      c "highres-b" ~stages:4 ~blocks_per_stage:2 ~base_channels:16 ~image:192 ~seed:152;
      (* batch sweeps *)
      c "batch1-net" ~stages:3 ~blocks_per_stage:2 ~base_channels:16 ~batch:1 ~seed:161;
      c "batch16-net" ~stages:3 ~blocks_per_stage:2 ~base_channels:16 ~batch:16 ~seed:162;
      (* deeper residual with VGG head *)
      c "hybrid-a" ~stages:3 ~blocks_per_stage:3 ~base_channels:16 ~residual:true
        ~classifier_hidden:(Some 256) ~seed:171;
      c "hybrid-b" ~stages:4 ~blocks_per_stage:2 ~base_channels:24 ~residual:true
        ~classifier_hidden:(Some 512) ~seed:172;
      (* few-class heads *)
      c "cifar-net" ~stages:3 ~blocks_per_stage:2 ~base_channels:16 ~image:32
        ~classes:10 ~seed:181;
      c "cifar-wide" ~stages:3 ~blocks_per_stage:2 ~base_channels:32 ~image:32
        ~classes:100 ~seed:182;
      (* tiny smoke models *)
      c "conv-pico" ~stages:1 ~blocks_per_stage:1 ~base_channels:8 ~image:32 ~seed:191;
      c "conv-nano" ~stages:2 ~blocks_per_stage:1 ~base_channels:8 ~image:32 ~seed:192;
      c "conv-femto" ~stages:1 ~blocks_per_stage:2 ~base_channels:8 ~image:32 ~seed:193;
    ]

let mm_model cfg =
  {
    mname = cfg.Multimodal.name;
    family = `MM;
    build =
      (fun () ->
        let env = O.make () in
        (env, Multimodal.build env cfg));
  }

let mm () =
  let c = Multimodal.config in
  List.map mm_model
    [
      c "clip-pico" ~embed:64 ~image:32 ~text_layers:1 ~text_seq:16 ~seed:201;
      c "clip-small" ~embed:128 ~image:64 ~text_layers:2 ~text_seq:32 ~seed:202;
      c "clip-base" ~embed:256 ~image:96 ~text_layers:4 ~text_seq:64 ~batch:8 ~seed:203;
    ]

let all () = hf () @ tv () @ mm ()

let find name = List.find_opt (fun m -> String.equal m.mname name) (all ())
