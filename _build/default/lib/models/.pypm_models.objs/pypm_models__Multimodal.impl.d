lib/models/multimodal.ml: Dtype Graph Pypm_graph Pypm_patterns Pypm_tensor Rng Ty
