lib/models/rng.ml: Int64 List
