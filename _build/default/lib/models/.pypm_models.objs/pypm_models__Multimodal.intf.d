lib/models/multimodal.mli: Graph Pypm_graph Pypm_patterns
