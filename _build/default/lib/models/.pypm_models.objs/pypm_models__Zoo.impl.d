lib/models/zoo.ml: Graph List Multimodal Pypm_graph Pypm_patterns String Transformer Vision
