lib/models/vision.mli: Graph Pypm_graph Pypm_patterns
