lib/models/zoo.mli: Graph Pypm_graph Pypm_patterns
