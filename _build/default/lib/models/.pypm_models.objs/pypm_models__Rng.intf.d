lib/models/rng.mli:
