lib/models/transformer.mli: Graph Pypm_graph Pypm_patterns
