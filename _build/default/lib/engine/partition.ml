open Pypm_term
open Pypm_graph
open Pypm_semantics

type region = {
  pattern_name : string;
  root : Graph.node;
  interior : Graph.node list;
  inputs : Graph.node list;
  theta : Subst.t;
}

(* The interior of a match at [root]: walk the graph from the root,
   stopping at (and collecting as inputs) any node whose term is the
   binding of a pattern variable. Leaves that are bound to no variable
   (interned literals, for instance) count as interior. *)
let carve view (pattern : Pypm_pattern.Pattern.t) root theta =
  (* Only bindings of the pattern's *free* variables delimit the region;
     existentials bound inside the pattern name interior nodes. The root
     itself is always interior even when a free variable (the match root,
     figure 14's [x]) is bound to it. *)
  let free = Pypm_pattern.Pattern.free_vars pattern in
  let boundary =
    Subst.fold
      (fun x t acc -> if Symbol.Set.mem x free then t :: acc else acc)
      theta []
  in
  let sg = Graph.signature (Term_view.graph view) in
  let is_graph_leaf n =
    n.Graph.inputs = []
    &&
    match Signature.op_class sg n.Graph.op with
    | Some ("input" | "opaque") -> true
    | _ -> false
  in
  let is_boundary n =
    n.Graph.id <> root.Graph.id
    && (is_graph_leaf n
       ||
       let t = Term_view.term_of view n in
       List.exists (Term.equal t) boundary)
  in
  let interior = ref [] and inputs = ref [] and seen = Hashtbl.create 16 in
  let rec walk n =
    if not (Hashtbl.mem seen n.Graph.id) then (
      Hashtbl.replace seen n.Graph.id ();
      if is_boundary n then inputs := n :: !inputs
      else (
        interior := n :: !interior;
        List.iter walk n.Graph.inputs))
  in
  walk root;
  (List.rev !interior, List.rev !inputs)

let find ?(fuel = 200_000) (program : Program.t) g =
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  let claimed = Hashtbl.create 64 in
  let regions = ref [] in
  (* outputs-first: prefer the largest enclosing regions *)
  let nodes_desc = List.rev (Graph.live_nodes g) in
  List.iter
    (fun node ->
      if not (Hashtbl.mem claimed node.Graph.id) then
        List.iter
          (fun (entry : Program.entry) ->
            if not (Hashtbl.mem claimed node.Graph.id) then
              let t = Term_view.term_of view node in
              match
                Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
                  entry.Program.pattern t
              with
              | Outcome.Matched (theta, _phi) ->
                  let interior, inputs =
                    carve view entry.Program.pattern node theta
                  in
                  (* a region is only valid if none of its interior is
                     already claimed, and it actually fuses something *)
                  if
                    List.length interior >= 2
                    && List.for_all
                         (fun n -> not (Hashtbl.mem claimed n.Graph.id))
                         interior
                  then (
                    List.iter
                      (fun n -> Hashtbl.replace claimed n.Graph.id ())
                      interior;
                    regions :=
                      {
                        pattern_name = entry.Program.pname;
                        root = node;
                        interior;
                        inputs;
                        theta;
                      }
                      :: !regions)
              | _ -> ())
          program.Program.entries)
    nodes_desc;
  List.rev !regions

let fuse_counter = ref 0

let fuse ?(annotate = fun _ -> []) g region =
  incr fuse_counter;
  let name =
    Printf.sprintf "fused_%s_%d" region.pattern_name !fuse_counter
  in
  let sg = Graph.signature g in
  ignore
    (Signature.declare sg ~arity:(List.length region.inputs)
       ~op_class:"fused" name);
  let ty =
    match region.root.Graph.ty with
    | Some ty -> ty
    | None -> invalid_arg "Partition.fuse: region root has no type"
  in
  let node =
    Graph.add_with_ty g name
      ~attrs:
        (("fused_ops", List.length region.interior)
        :: annotate region.interior)
      ~ty region.inputs
  in
  Graph.replace g ~old_root:region.root ~new_root:node;
  ignore (Graph.gc g);
  node

let fuse_all ?fuel ?annotate program g =
  List.map (fuse ?annotate g) (find ?fuel program g)

let extract_region g region =
  let sub =
    Graph.create ~sg:(Graph.signature g) ~infer:(Graph.inference g) ()
  in
  let mapping = Hashtbl.create 16 in
  (* region inputs become fresh graph inputs of the same type *)
  List.iter
    (fun (n : Graph.node) ->
      let ty =
        match n.Graph.ty with
        | Some ty -> ty
        | None -> invalid_arg "Partition.extract_region: untyped region input"
      in
      Hashtbl.replace mapping n.Graph.id
        (Graph.input sub ~name:("region_in_" ^ string_of_int n.Graph.id) ty))
    region.inputs;
  (* interior nodes in dependency order: a node's inputs are either mapped
     already or themselves interior; walk the graph bottom-up *)
  let interior_ids = Hashtbl.create 16 in
  List.iter
    (fun (n : Graph.node) -> Hashtbl.replace interior_ids n.Graph.id ())
    region.interior;
  let rec copy (n : Graph.node) =
    match Hashtbl.find_opt mapping n.Graph.id with
    | Some m -> m
    | None ->
        if not (Hashtbl.mem interior_ids n.Graph.id) then
          invalid_arg
            (Printf.sprintf
               "Partition.extract_region: node %%%d is neither interior nor                 an input"
               n.Graph.id);
        let inputs = List.map copy n.Graph.inputs in
        let m =
          if n.Graph.inputs = [] then
            (* interior leaf: a constant *)
            match Graph.constant_value n with
            | Some v -> Graph.constant sub v
            | None ->
                invalid_arg
                  "Partition.extract_region: interior leaf is not a constant"
          else Graph.add sub n.Graph.op ~attrs:n.Graph.attrs inputs
        in
        Hashtbl.replace mapping n.Graph.id m;
        m
  in
  let root_copy = copy region.root in
  Graph.set_outputs sub [ root_copy ];
  (sub, root_copy)

let compile_region ~compile g region =
  let sub, _root = extract_region g region in
  compile sub;
  sub

let pp_region ppf r =
  Format.fprintf ppf "region %s @ node %%%d: %d interior node(s), %d input(s)"
    r.pattern_name r.root.Graph.id (List.length r.interior)
    (List.length r.inputs)
