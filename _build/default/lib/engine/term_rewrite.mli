(** Term-level rewriting: the rewrite engine without the graph.

    CorePyPM abstracts computation graphs as syntax trees; this module
    applies an engine program directly to terms, which is how the formal
    sections of the paper read. It is the pure counterpart of {!Pass} —
    useful in tests, in examples, and as the destructive side of the
    destructive-vs-saturation comparison ({!Pypm_egraph.Saturate} is the
    nondestructive side; `test_term_rewrite.ml` cross-checks the two on
    confluent rule sets).

    Rules whose templates need graph facilities ([Rcopy_attrs], node
    attributes) degrade gracefully: attribute copies behave like plain
    applications (terms carry no attributes). *)

open Pypm_term
open Pypm_pattern

type strategy =
  | Innermost  (** rewrite deepest redexes first (bottom-up) *)
  | Outermost  (** rewrite the root first (top-down) *)

type stats = {
  steps : int;  (** rules fired *)
  normal_form : bool;  (** false when [max_steps] was exhausted *)
}

(** [instantiate ~interp theta phi rhs] builds the replacement term.
    [Error] on unbound template variables. *)
val instantiate :
  Subst.t -> Fsubst.t -> Rule.rhs -> (Term.t, string) result

(** [step ~interp program t] performs one rewrite according to [strategy]
    (default [Innermost]) — the first pattern (in program order) matching
    at the chosen position whose first passing rule fires. [None] if [t]
    is in normal form. *)
val step :
  interp:Guard.interp ->
  ?strategy:strategy ->
  Program.t ->
  Term.t ->
  Term.t option

(** [normalize ~interp program t] iterates {!step} to a normal form (or
    [max_steps], default 1000). *)
val normalize :
  interp:Guard.interp ->
  ?strategy:strategy ->
  ?max_steps:int ->
  Program.t ->
  Term.t ->
  Term.t * stats
