(** Directed graph partitioning (paper, section 4.2).

    Rather than hand-writing a replacement for every matched subgraph, a
    match-only pattern can {e carve out} a region that is known to be
    optimizable; the region is then handed to a compiler that can build the
    fused kernel just in time. Here the "JIT compiler" is simulated: a
    region is collapsed into a single fused operator node whose cost
    attributes summarize the interior (the cost model then charges one
    kernel launch and no interior memory traffic).

    Regions are found greedily from outputs down, mirroring the matching
    pass: when a pattern matches at a node, the matched interior (every
    node of the matched subtree that is not part of a variable binding)
    becomes a region, its nodes are claimed, and scanning continues; a node
    can belong to at most one region. *)

open Pypm_term
open Pypm_graph

type region = {
  pattern_name : string;
  root : Graph.node;
  interior : Graph.node list;  (** nodes to be fused, including the root *)
  inputs : Graph.node list;  (** region inputs, in discovery order *)
  theta : Subst.t;
}

(** [find program graph] lists the disjoint regions matched by the
    program's patterns (rules, if any, are ignored). *)
val find : ?fuel:int -> Program.t -> Graph.t -> region list

(** [fuse ?annotate graph region] replaces the region's root with a single
    fused operator node ["fused_<pattern>_<k>"] (class ["fused"]) whose
    inputs are the region's inputs and whose attributes record the number
    of interior nodes ([fused_ops]) plus whatever [annotate] computes from
    the interior (the cost model's [Cost.fused_attrs] records the interior
    flops so the simulated JIT kernel is charged its real compute).
    Returns the new node. *)
val fuse :
  ?annotate:(Graph.node list -> (string * int) list) ->
  Graph.t ->
  region ->
  Graph.node

(** [fuse_all program graph] = find then fuse every region; returns the
    fused nodes. *)
val fuse_all :
  ?fuel:int ->
  ?annotate:(Graph.node list -> (string * int) list) ->
  Program.t ->
  Graph.t ->
  Graph.node list

(** [extract_region graph region] materializes the region as a standalone
    graph: interior nodes are copied (preserving operators and attributes),
    region inputs become fresh graph inputs of the same types, and the
    copied root is the single output. This is the subgraph the paper "hands
    off to an AI compiler that can build the fused kernel" — and
    {!compile_region} is that recursive compile: it runs a rewrite program
    over the extracted graph. Returns the standalone graph and the copy of
    the root. Raises [Invalid_argument] if a region input has no type. *)
val extract_region : Graph.t -> region -> Graph.t * Graph.node

(** [compile_region ~compile graph region] extracts the region, applies
    [compile] to the standalone graph (e.g. a {!Pass.run} with a kernel
    program), and returns it for costing; used by the JIT-fusion demo. *)
val compile_region :
  compile:(Graph.t -> unit) -> Graph.t -> region -> Graph.t

val pp_region : Format.formatter -> region -> unit
