open Pypm_term
open Pypm_pattern
open Pypm_semantics

type strategy = Innermost | Outermost

type stats = { steps : int; normal_form : bool }

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let rec instantiate theta phi (rhs : Rule.rhs) =
  match rhs with
  | Rule.Rvar x -> (
      match Subst.find x theta with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "unbound template variable %s" x))
  | Rule.Rapp (op, rs) | Rule.Rapp_attrs (op, rs, _) | Rule.Rcopy_attrs (op, rs, _)
    ->
      let* args = map_result (instantiate theta phi) rs in
      Ok (Term.app op args)
  | Rule.Rfapp (f, rs) -> (
      match Fsubst.find f phi with
      | None -> Error (Printf.sprintf "unbound template operator variable %s" f)
      | Some op ->
          let* args = map_result (instantiate theta phi) rs in
          Ok (Term.app op args))
  | Rule.Rlit v -> Ok (Term.const (Pypm_graph.Graph.lit_symbol v))

(* Try every pattern of the program at one position. *)
let try_here ~interp (program : Program.t) t =
  List.find_map
    (fun (e : Program.entry) ->
      match
        Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack
          e.Program.pattern t
      with
      | Outcome.Matched (theta, phi) ->
          List.find_map
            (fun (r : Rule.t) ->
              if Guard.eval interp theta phi r.Rule.guard = Some true then
                match instantiate theta phi r.Rule.rhs with
                | Ok t' when not (Term.equal t' t) -> Some t'
                | _ -> None
              else None)
            e.Program.rules
      | _ -> None)
    program.Program.entries

let step ~interp ?(strategy = Innermost) (program : Program.t) t =
  let rec go t =
    match strategy with
    | Outermost -> (
        match try_here ~interp program t with
        | Some t' -> Some t'
        | None -> go_children t)
    | Innermost -> (
        match go_children t with
        | Some t' -> Some t'
        | None -> try_here ~interp program t)
  and go_children t =
    let rec walk before = function
      | [] -> None
      | a :: rest -> (
          match go a with
          | Some a' ->
              Some (Term.app (Term.head t) (List.rev_append before (a' :: rest)))
          | None -> walk (a :: before) rest)
    in
    walk [] (Term.args t)
  in
  go t

let normalize ~interp ?strategy ?(max_steps = 1000) program t =
  let rec go t steps =
    if steps >= max_steps then (t, { steps; normal_form = false })
    else
      match step ~interp ?strategy program t with
      | Some t' -> go t' (steps + 1)
      | None -> (t, { steps; normal_form = true })
  in
  go t 0
