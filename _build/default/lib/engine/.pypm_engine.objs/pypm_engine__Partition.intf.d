lib/engine/partition.mli: Format Graph Program Pypm_graph Pypm_term Subst
