lib/engine/rule.mli: Format Fsubst Graph Guard Pypm_graph Pypm_pattern Pypm_term Subst Symbol Term_view
