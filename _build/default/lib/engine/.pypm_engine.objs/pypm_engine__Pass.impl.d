lib/engine/pass.ml: Format Graph List Logs Matcher Option Outcome Printf Program Pypm_graph Pypm_pattern Pypm_semantics Pypm_tensor Pypm_term Rule String Term_view Unix
