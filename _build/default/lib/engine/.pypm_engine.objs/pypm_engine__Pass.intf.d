lib/engine/pass.mli: Format Fsubst Graph Logs Program Pypm_graph Pypm_term Subst
