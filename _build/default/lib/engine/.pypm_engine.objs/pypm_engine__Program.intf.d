lib/engine/program.mli: Format Pattern Pypm_pattern Pypm_term Rule Signature
