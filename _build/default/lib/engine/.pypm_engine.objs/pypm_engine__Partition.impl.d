lib/engine/partition.ml: Format Graph Hashtbl List Matcher Outcome Printf Program Pypm_graph Pypm_pattern Pypm_semantics Pypm_term Signature Subst Symbol Term Term_view
