lib/engine/term_rewrite.ml: Fsubst Guard List Matcher Outcome Printf Program Pypm_graph Pypm_pattern Pypm_semantics Pypm_term Result Rule Subst Term
