lib/engine/term_rewrite.mli: Fsubst Guard Program Pypm_pattern Pypm_term Rule Subst Term
