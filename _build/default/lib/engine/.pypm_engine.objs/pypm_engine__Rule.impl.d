lib/engine/rule.ml: Format Fsubst Graph Guard List Printf Pypm_graph Pypm_pattern Pypm_term Result Subst Symbol Term_view
