lib/engine/program.ml: Format List Pattern Printf Pypm_pattern Pypm_term Rule Signature String Symbol Wf
