type t = { dtype : Dtype.t; shape : Shape.t }

let make dtype shape = { dtype; shape }
let scalar dtype = { dtype; shape = Shape.scalar }
let rank t = Shape.rank t.shape
let nelems t = Shape.nelems t.shape
let size_bytes t = nelems t * Dtype.bytes t.dtype
let equal a b = Dtype.equal a.dtype b.dtype && Shape.equal a.shape b.shape

let pp ppf t = Format.fprintf ppf "%a%a" Dtype.pp t.dtype Shape.pp t.shape
let to_string t = Format.asprintf "%a" pp t
