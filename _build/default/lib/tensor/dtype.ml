type t = F64 | F32 | F16 | BF16 | I64 | I32 | I8 | Bool

let all = [ F64; F32; F16; BF16; I64; I32; I8; Bool ]

let bytes = function
  | F64 | I64 -> 8
  | F32 | I32 -> 4
  | F16 | BF16 -> 2
  | I8 | Bool -> 1

let code = function
  | F64 -> 0
  | F32 -> 1
  | F16 -> 2
  | BF16 -> 3
  | I64 -> 4
  | I32 -> 5
  | I8 -> 6
  | Bool -> 7

let of_code = function
  | 0 -> Some F64
  | 1 -> Some F32
  | 2 -> Some F16
  | 3 -> Some BF16
  | 4 -> Some I64
  | 5 -> Some I32
  | 6 -> Some I8
  | 7 -> Some Bool
  | _ -> None

let is_float = function
  | F64 | F32 | F16 | BF16 -> true
  | I64 | I32 | I8 | Bool -> false

let equal (a : t) b = a = b

let to_string = function
  | F64 -> "f64"
  | F32 -> "f32"
  | F16 -> "f16"
  | BF16 -> "bf16"
  | I64 -> "i64"
  | I32 -> "i32"
  | I8 -> "i8"
  | Bool -> "bool"

let of_string = function
  | "f64" -> Some F64
  | "f32" -> Some F32
  | "f16" -> Some F16
  | "bf16" -> Some BF16
  | "i64" -> Some I64
  | "i32" -> Some I32
  | "i8" -> Some I8
  | "bool" -> Some Bool
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
