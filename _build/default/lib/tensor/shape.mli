(** Tensor shapes: ordered dimension lists.

    Shapes drive both the guard attributes ([x.shape.rank], [x.dimN]) and
    the shape-inference rules that compute node types in the graph IR. *)

type t = int list
(** outermost dimension first; [[]] is a scalar *)

val scalar : t
val rank : t -> int
val nelems : t -> int

(** [dim i s] is dimension [i] counting from the outside; [None] when out of
    range. *)
val dim : int -> t -> int option

val equal : t -> t -> bool

(** Numpy-style broadcasting of two shapes; [None] if incompatible. Shorter
    shapes are padded with leading 1s; paired dimensions must be equal or
    one of them 1. *)
val broadcast : t -> t -> t option

(** [matmul a b] is batched matrix-multiply shape inference:
    [[...; m; k] x [...; k; n] -> [...; m; n]] with broadcast batch dims;
    both inputs must have rank >= 2. *)
val matmul : t -> t -> t option

(** Swap the last two dimensions (rank >= 2). *)
val transpose_last2 : t -> t option

(** [conv2d ~stride ~pad in_shape kernel_shape]: NCHW convolution shape,
    [in = [n; c; h; w]], [kernel = [o; c; kh; kw]]. *)
val conv2d : stride:int -> pad:int -> t -> t -> t option

(** [pool2d ~window ~stride s]: spatial pooling over NCHW. *)
val pool2d : window:int -> stride:int -> t -> t option

(** [flatten_from axis s] collapses dimensions [axis..] into one. *)
val flatten_from : int -> t -> t option

(** [concat axis a b] concatenates along [axis]; other dims must agree. *)
val concat : int -> t -> t -> t option

(** [reduce axis s] removes dimension [axis] (e.g. a sum or mean). *)
val reduce : int -> t -> t option

val valid : t -> bool
(** all dimensions strictly positive *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
