type t = int list

let scalar = []
let rank = List.length
let nelems s = List.fold_left ( * ) 1 s
let dim i s = List.nth_opt s i
let equal = List.equal Int.equal
let valid = List.for_all (fun d -> d > 0)

let rec pad_to n s = if List.length s >= n then s else pad_to n (1 :: s)

let broadcast a b =
  let n = max (rank a) (rank b) in
  let a = pad_to n a and b = pad_to n b in
  let rec go a b =
    match (a, b) with
    | [], [] -> Some []
    | da :: a, db :: b -> (
        let d =
          if da = db then Some da
          else if da = 1 then Some db
          else if db = 1 then Some da
          else None
        in
        match (d, go a b) with Some d, Some rest -> Some (d :: rest) | _ -> None)
    | _ -> None
  in
  go a b

let split_last2 s =
  match List.rev s with
  | n :: m :: batch -> Some (List.rev batch, m, n)
  | _ -> None

let matmul a b =
  match (split_last2 a, split_last2 b) with
  | Some (batch_a, m, k), Some (batch_b, k', n) when k = k' -> (
      match broadcast batch_a batch_b with
      | Some batch -> Some (batch @ [ m; n ])
      | None -> None)
  | _ -> None

let transpose_last2 s =
  match split_last2 s with
  | Some (batch, m, n) -> Some (batch @ [ n; m ])
  | None -> None

let conv2d ~stride ~pad in_shape kernel_shape =
  match (in_shape, kernel_shape) with
  | [ n; c; h; w ], [ o; c'; kh; kw ] when c = c' && stride > 0 ->
      let out_h = ((h + (2 * pad) - kh) / stride) + 1 in
      let out_w = ((w + (2 * pad) - kw) / stride) + 1 in
      if out_h > 0 && out_w > 0 then Some [ n; o; out_h; out_w ] else None
  | _ -> None

let pool2d ~window ~stride s =
  match s with
  | [ n; c; h; w ] when stride > 0 && window > 0 ->
      let out_h = ((h - window) / stride) + 1 in
      let out_w = ((w - window) / stride) + 1 in
      if out_h > 0 && out_w > 0 then Some [ n; c; out_h; out_w ] else None
  | _ -> None

let flatten_from axis s =
  if axis < 0 || axis > rank s then None
  else
    let rec go i = function
      | rest when i = axis -> [ nelems rest ]
      | d :: rest -> d :: go (i + 1) rest
      | [] -> []
    in
    Some (go 0 s)

let concat axis a b =
  if rank a <> rank b || axis < 0 || axis >= rank a then None
  else
    let ok = ref true in
    let s =
      List.mapi
        (fun i (da, db) ->
          if i = axis then da + db
          else if da = db then da
          else (
            ok := false;
            da))
        (List.combine a b)
    in
    if !ok then Some s else None

let reduce axis s =
  if axis < 0 || axis >= rank s then None
  else Some (List.filteri (fun i _ -> i <> axis) s)

let pp ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "x")
       Format.pp_print_int)
    s

let to_string s = Format.asprintf "%a" pp s
