open Pypm_term

type attrs = (string * int) list
type rule = attrs -> Ty.t list -> (Ty.t, string) result
type t = (Symbol.t, rule) Hashtbl.t

let create () : t = Hashtbl.create 64
let register t sym rule = Hashtbl.replace t sym rule
let mem = Hashtbl.mem

let infer t sym ~attrs inputs =
  match Hashtbl.find_opt t sym with
  | Some rule -> rule attrs inputs
  | None -> Error (Printf.sprintf "no typing rule for operator %s" sym)

let copy = Hashtbl.copy

let attr ?default name attrs =
  match List.assoc_opt name attrs with
  | Some v -> Ok v
  | None -> (
      match default with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing attribute %s" name))

let ( let* ) = Result.bind

let arity_error name n inputs =
  Error
    (Printf.sprintf "%s expects %d inputs, got %d" name n (List.length inputs))

let pointwise1 _ = function
  | [ x ] -> Ok x
  | inputs -> arity_error "pointwise1" 1 inputs

let broadcast2 name (a : Ty.t) (b : Ty.t) =
  if not (Dtype.equal a.dtype b.dtype) then
    Error
      (Printf.sprintf "%s: dtype mismatch %s vs %s" name
         (Dtype.to_string a.dtype) (Dtype.to_string b.dtype))
  else
    match Shape.broadcast a.shape b.shape with
    | Some s -> Ok (Ty.make a.dtype s)
    | None ->
        Error
          (Printf.sprintf "%s: shapes %s and %s do not broadcast" name
             (Shape.to_string a.shape) (Shape.to_string b.shape))

let pointwise2 _ = function
  | [ a; b ] -> broadcast2 "pointwise2" a b
  | inputs -> arity_error "pointwise2" 2 inputs

let pointwise_n _ = function
  | [] -> Error "pointwise_n expects at least one input"
  | x :: rest ->
      List.fold_left
        (fun acc y ->
          let* a = acc in
          broadcast2 "pointwise_n" a y)
        (Ok x) rest

let cast_to dtype _ = function
  | [ (x : Ty.t) ] -> Ok (Ty.make dtype x.shape)
  | inputs -> arity_error "cast" 1 inputs

let matmul _ = function
  | [ (a : Ty.t); (b : Ty.t) ] -> (
      if not (Dtype.equal a.dtype b.dtype) then
        Error "matmul: dtype mismatch"
      else
        match Shape.matmul a.shape b.shape with
        | Some s -> Ok (Ty.make a.dtype s)
        | None ->
            Error
              (Printf.sprintf "matmul: shapes %s and %s are incompatible"
                 (Shape.to_string a.shape) (Shape.to_string b.shape)))
  | inputs -> arity_error "matmul" 2 inputs

let transpose _ = function
  | [ (x : Ty.t) ] -> (
      match Shape.transpose_last2 x.shape with
      | Some s -> Ok (Ty.make x.dtype s)
      | None -> Error "transpose: rank must be >= 2")
  | inputs -> arity_error "transpose" 1 inputs

let softmax _ = function
  | [ (x : Ty.t) ] ->
      if Dtype.is_float x.dtype then Ok x
      else Error "softmax: input must be floating point"
  | inputs -> arity_error "softmax" 1 inputs

let reduce attrs = function
  | [ (x : Ty.t) ] -> (
      let* axis = attr ~default:(Shape.rank x.shape - 1) "axis" attrs in
      match Shape.reduce axis x.shape with
      | Some s -> Ok (Ty.make x.dtype s)
      | None -> Error (Printf.sprintf "reduce: axis %d out of range" axis))
  | inputs -> arity_error "reduce" 1 inputs

let conv2d attrs inputs =
  let* stride = attr ~default:1 "stride" attrs in
  let* pad = attr ~default:0 "pad" attrs in
  match inputs with
  | (x : Ty.t) :: (w : Ty.t) :: rest -> (
      if List.length rest > 1 then arity_error "conv2d" 3 inputs
      else
        match Shape.conv2d ~stride ~pad x.shape w.shape with
        | Some s -> Ok (Ty.make x.dtype s)
        | None ->
            Error
              (Printf.sprintf "conv2d: input %s kernel %s incompatible"
                 (Shape.to_string x.shape) (Shape.to_string w.shape)))
  | _ -> arity_error "conv2d" 2 inputs

let pool2d attrs = function
  | [ (x : Ty.t) ] -> (
      let* window = attr ~default:2 "window" attrs in
      let* stride = attr ~default:window "stride" attrs in
      match Shape.pool2d ~window ~stride x.shape with
      | Some s -> Ok (Ty.make x.dtype s)
      | None -> Error "pool2d: shape incompatible with window")
  | inputs -> arity_error "pool2d" 1 inputs

let flatten attrs = function
  | [ (x : Ty.t) ] -> (
      let* axis = attr ~default:1 "axis" attrs in
      match Shape.flatten_from axis x.shape with
      | Some s -> Ok (Ty.make x.dtype s)
      | None -> Error "flatten: axis out of range")
  | inputs -> arity_error "flatten" 1 inputs

let linear _ inputs =
  match inputs with
  | (x : Ty.t) :: (w : Ty.t) :: rest when List.length rest <= 1 -> (
      match (List.rev x.shape, w.shape) with
      | k :: batch_rev, [ k'; n ] when k = k' ->
          Ok (Ty.make x.dtype (List.rev batch_rev @ [ n ]))
      | _ ->
          Error
            (Printf.sprintf "linear: input %s weight %s incompatible"
               (Shape.to_string x.shape) (Shape.to_string w.shape)))
  | _ -> arity_error "linear" 2 inputs

let leaf attrs _ =
  let* dt_code = attr "dtype" attrs in
  let* rank = attr "rank" attrs in
  let* dtype =
    match Dtype.of_code dt_code with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "leaf: bad dtype code %d" dt_code)
  in
  let rec dims i =
    if i >= rank then Ok []
    else
      let* d = attr (Printf.sprintf "dim%d" i) attrs in
      let* rest = dims (i + 1) in
      Ok (d :: rest)
  in
  let* shape = dims 0 in
  Ok (Ty.make dtype shape)

let same_as_first _ = function
  | x :: _ -> Ok x
  | [] -> Error "same_as_first expects at least one input"
