(** The tensor attribute interpretation.

    Instantiates CorePyPM's abstract attribute interpretation
    [[.]] : A -> Term -> N (section 3.2) with PyPM's concrete tensor
    attributes. Attribute values come from a typing function
    [Term.t -> Ty.t option] (in practice: the type table built by the graph
    term view) and from the signature (operator classes, arities).

    Supported term attributes: [rank], [eltType], [nelems], [bytes],
    [dim0] .. [dim7], and the structural [size]/[depth]. Symbol attributes
    (for function variables): [arity], [op_class], [output_arity]. *)

open Pypm_term

(** Operator-class codes: guards compare classes as naturals, so class
    names are interned. The paper's [opclass("unary_pointwise")] surface
    form resolves through {!class_code}. Interning is global and stable
    within a process. *)
val class_code : string -> int

val class_name : int -> string option

(** [interp ~sg ~type_of] builds the guard interpretation. Attributes of
    terms whose type [type_of] cannot determine are undefined (guards
    mentioning them cannot be verified and fail the match). *)
val interp :
  sg:Signature.t ->
  type_of:(Term.t -> Ty.t option) ->
  Pypm_pattern.Guard.interp

(** A purely structural interpretation (no tensor types): [size], [depth],
    plus symbol attributes from the signature. Used by tests and generic
    examples. *)
val structural : sg:Signature.t -> Pypm_pattern.Guard.interp
