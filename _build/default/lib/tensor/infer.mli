(** Shape and dtype inference.

    A registry of per-operator typing rules. The graph IR consults it when
    nodes are created and after rewrites, so every node carries a [Ty.t]
    and guard attributes like [x.shape.rank] are always available.

    A rule receives the node's integer attributes (stride, axis, ...) and
    the input types, and produces the output type or a descriptive error.
    Combinators cover the common operator families; bespoke operators can
    register closures directly. *)

open Pypm_term

type attrs = (string * int) list

type rule = attrs -> Ty.t list -> (Ty.t, string) result

type t

val create : unit -> t

(** [register t sym rule] installs the typing rule for [sym]; re-registering
    replaces the previous rule (last wins, like operator redefinition in a
    PyPM file). *)
val register : t -> Symbol.t -> rule -> unit

val mem : t -> Symbol.t -> bool

(** [infer t sym ~attrs inputs] types one application. Unregistered symbols
    yield an error mentioning the symbol (the engine treats those nodes as
    opaque). *)
val infer : t -> Symbol.t -> attrs:attrs -> Ty.t list -> (Ty.t, string) result

(** [copy t] is an independent snapshot. *)
val copy : t -> t

(** {1 Rule combinators} *)

(** Unary pointwise: output type = input type. *)
val pointwise1 : rule

(** Binary pointwise with numpy broadcasting; dtypes must agree. *)
val pointwise2 : rule

(** Variadic pointwise (all inputs broadcast together). *)
val pointwise_n : rule

(** Unary pointwise that also casts the element type. *)
val cast_to : Dtype.t -> rule

(** Batched matrix multiplication. *)
val matmul : rule

(** Transpose of the last two dimensions. *)
val transpose : rule

(** Row-wise softmax: shape preserved, input must be floating point. *)
val softmax : rule

(** Reduction over attribute ["axis"] (default: last axis). *)
val reduce : rule

(** NCHW convolution with attributes ["stride"] (default 1) and ["pad"]
    (default 0); inputs are image and kernel, with optional bias. *)
val conv2d : rule

(** Spatial pooling with attributes ["window"] and ["stride"]. *)
val pool2d : rule

(** Flatten from attribute ["axis"] (default 1). *)
val flatten : rule

(** Fully-connected layer: [x : [...; k]] with weight [[k; n]] and optional
    bias. *)
val linear : rule

(** A leaf/input: type comes from attributes ["dtype"], ["rank"] and
    ["dim0"..] — used when deserializing graphs. *)
val leaf : rule

(** Always returns the first input's type (e.g. residual add of equal
    shapes, layout ops). *)
val same_as_first : rule
