(** Tensor types: an element dtype paired with a shape.

    Every term a pattern variable can bind to has "the same set of
    tensor-specific attributes including element type, shape, and rank"
    (paper, section 2); a [Ty.t] is that record of information. *)

type t = { dtype : Dtype.t; shape : Shape.t }

val make : Dtype.t -> Shape.t -> t
val scalar : Dtype.t -> t
val rank : t -> int
val nelems : t -> int

(** Total size in bytes; used by the memory-traffic cost model. *)
val size_bytes : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
