(** Tensor element types.

    PyPM guards constrain element types ([x.eltType == f32] in figure 1).
    CorePyPM's attribute interpretation is natural-number valued, so each
    dtype has a stable integer {!code} used in guards; the surface language
    resolves names like [f32] to these codes. *)

type t = F64 | F32 | F16 | BF16 | I64 | I32 | I8 | Bool

val all : t list

(** Bytes per element; drives the memory-traffic cost model. *)
val bytes : t -> int

(** Stable integer encoding for guard arithmetic. *)
val code : t -> int

val of_code : int -> t option
val is_float : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
