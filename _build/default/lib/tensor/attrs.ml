open Pypm_term

let classes : (string, int) Hashtbl.t = Hashtbl.create 16
let class_names : (int, string) Hashtbl.t = Hashtbl.create 16
let next_class = ref 0

let class_code name =
  match Hashtbl.find_opt classes name with
  | Some c -> c
  | None ->
      let c = !next_class in
      incr next_class;
      Hashtbl.replace classes name c;
      Hashtbl.replace class_names c name;
      c

let class_name code = Hashtbl.find_opt class_names code

let sym_attr_of_sig (sg : Signature.t) attr s =
  match Signature.find sg s with
  | None -> None
  | Some d -> (
      match attr with
      | "arity" -> Some d.arity
      | "output_arity" -> Some d.output_arity
      | "op_class" -> Some (class_code d.op_class)
      | _ -> None)

let dim_attr attr =
  (* "dim0" .. "dim7" *)
  if String.length attr = 4 && String.sub attr 0 3 = "dim" then
    match attr.[3] with '0' .. '7' -> Some (Char.code attr.[3] - Char.code '0') | _ -> None
  else None

let interp ~sg ~type_of : Pypm_pattern.Guard.interp =
  {
    term_attr =
      (fun attr t ->
        match attr with
        | "size" -> Some (Term.size t)
        | "depth" -> Some (Term.depth t)
        | "op_class" ->
            Option.map (fun c -> class_code c) (Signature.op_class sg (Term.head t))
        | _ -> (
            match type_of t with
            | None -> None
            | Some ty -> (
                match attr with
                | "rank" -> Some (Ty.rank ty)
                | "eltType" -> Some (Dtype.code ty.Ty.dtype)
                | "nelems" -> Some (Ty.nelems ty)
                | "bytes" -> Some (Ty.size_bytes ty)
                | _ -> (
                    match dim_attr attr with
                    | Some i -> Shape.dim i ty.Ty.shape
                    | None -> None))));
    sym_attr = sym_attr_of_sig sg;
  }

let structural ~sg : Pypm_pattern.Guard.interp =
  {
    term_attr =
      (fun attr t ->
        match attr with
        | "size" -> Some (Term.size t)
        | "depth" -> Some (Term.depth t)
        | "op_class" ->
            Option.map (fun c -> class_code c) (Signature.op_class sg (Term.head t))
        | _ -> None);
    sym_attr = sym_attr_of_sig sg;
  }
