lib/tensor/attrs.ml: Char Dtype Hashtbl Option Pypm_pattern Pypm_term Shape Signature String Term Ty
