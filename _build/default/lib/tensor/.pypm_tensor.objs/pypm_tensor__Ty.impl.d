lib/tensor/ty.ml: Dtype Format Shape
