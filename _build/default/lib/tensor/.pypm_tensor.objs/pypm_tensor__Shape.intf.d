lib/tensor/shape.mli: Format
