lib/tensor/infer.mli: Dtype Pypm_term Symbol Ty
