lib/tensor/attrs.mli: Pypm_pattern Pypm_term Signature Term Ty
