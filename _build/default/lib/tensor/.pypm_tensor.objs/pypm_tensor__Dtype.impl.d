lib/tensor/dtype.ml: Format
