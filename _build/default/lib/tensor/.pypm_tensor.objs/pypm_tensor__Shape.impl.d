lib/tensor/shape.ml: Format Int List
