lib/tensor/infer.ml: Dtype Hashtbl List Printf Pypm_term Result Shape Symbol Ty
