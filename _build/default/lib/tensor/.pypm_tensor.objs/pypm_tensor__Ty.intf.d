lib/tensor/ty.mli: Dtype Format Shape
