lib/serialize/codec.ml: Buffer Char Float Format Fun Guard List Pattern Printf Program Pypm_engine Pypm_pattern Pypm_term Rule Signature String
