lib/serialize/codec.mli: Pypm_engine Pypm_term Signature
