type t = {
  mutable ops : Ast.op_def list; (* reverse order *)
  mutable patterns : Ast.pattern_def list;
  mutable rules : Ast.rule_def list;
}

let create () = { ops = []; patterns = []; rules = [] }

let op t ?(output_arity = 1) ?(cls = "generic") ~arity name =
  t.ops <-
    {
      Ast.od_name = name;
      od_arity = arity;
      od_output_arity = output_arity;
      od_class = cls;
    }
    :: t.ops

type body = { mutable stmts : Ast.stmt list (* reverse order *) }

let pattern t name ~params f =
  let b = { stmts = [] } in
  let ret = f b in
  t.patterns <-
    {
      Ast.pd_name = name;
      pd_params = params;
      pd_stmts = List.rev b.stmts;
      pd_return = ret;
    }
    :: t.patterns

let var_ b x =
  b.stmts <- Ast.Slocal x :: b.stmts;
  Ast.Evar x

let opvar b x ~arity = b.stmts <- Ast.Sopvar (x, arity) :: b.stmts
let assert_ b g = b.stmts <- Ast.Sassert g :: b.stmts
let constrain b x p = b.stmts <- Ast.Sconstrain (x, p) :: b.stmts

let v x = Ast.Evar x
let app f args = Ast.Eapp (f, args)
let lit x = Ast.Elit x
let ( |. ) a b = Ast.Ealt (a, b)

let attr x path = Ast.Gattr (x, String.split_on_char '.' path)
let i n = Ast.Gint n
let dtype d = Ast.Gdtype d
let opclass c = Ast.Gopclass c
let ( +. ) a b = Ast.Gadd (a, b)
let ( -. ) a b = Ast.Gsub (a, b)
let ( *. ) a b = Ast.Gmul (a, b)
let ( %. ) a b = Ast.Gmod (a, b)
let ( ==. ) a b = Ast.Geq (a, b)
let ( !=. ) a b = Ast.Gne (a, b)
let ( <. ) a b = Ast.Glt (a, b)
let ( <=. ) a b = Ast.Gle (a, b)
let ( &&. ) a b = Ast.Gand (a, b)
let ( ||. ) a b = Ast.Gor (a, b)
let not_ a = Ast.Gnot a

let rule t name ~for_ ~params ?(asserts = []) ?copy_attrs_from branches =
  t.rules <-
    {
      Ast.rd_name = name;
      rd_for = for_;
      rd_params = params;
      rd_asserts = asserts;
      rd_branches =
        List.map
          (fun (g, e) -> { Ast.br_guard = g; br_return = e })
          branches;
      rd_copy_attrs_from = copy_attrs_from;
    }
    :: t.rules

let ast t =
  {
    Ast.ops = List.rev t.ops;
    patterns = List.rev t.patterns;
    rules = List.rev t.rules;
  }

let program t ~sg = Elaborate.program ~sg (ast t)
