(** The OCaml embedding of PyPM.

    The combinator analogue of the Python decorators: a registry session
    collects [op], [pattern] and [rule] definitions in order (defining a
    pattern name twice appends an alternate, exactly like PyPM), and
    [program] elaborates everything to an engine program.

    A pattern body is a function from a {!body} handle to the returned
    expression; the handle provides PyPM's imperative body forms —
    [var_] for [y = var()], [opvar] for [F = Op(n, 1)], [assert_], and
    [constrain] for [x <= p]:

    {[
      let s = Dsl.create () in
      Dsl.op s ~arity:2 "MatMul";
      Dsl.op s ~arity:1 "Trans";
      Dsl.pattern s "MMxyT" ~params:[ "x"; "y" ] (fun b ->
          Dsl.assert_ b Dsl.(attr "x" "rank" ==. i 2);
          Dsl.assert_ b Dsl.(attr "y" "rank" ==. i 2);
          let yt = Dsl.app "Trans" [ Dsl.v "y" ] in
          Dsl.app "MatMul" [ Dsl.v "x"; yt ]);
      Dsl.rule s "cublasrule" ~for_:"MMxyT" ~params:[ "x"; "y" ]
        [ (Some Dsl.(attr "x" "eltType" ==. dtype "f32"),
           Dsl.app "cublasMM_xyT_f32" [ Dsl.v "x"; Dsl.v "y" ]) ];
    ]} *)

open Pypm_term

type t

val create : unit -> t

(** The [@op] decorator: declare an operator. *)
val op :
  t -> ?output_arity:int -> ?cls:string -> arity:int -> string -> unit

(** {1 Pattern bodies} *)

type body

(** The [@pattern] decorator. Defining the same name again appends an
    alternate; its parameter count must agree. *)
val pattern : t -> string -> params:string list -> (body -> Ast.pexp) -> unit

(** [var_ b "y"] is PyPM's [y = var()]: a fresh local, scoped to the
    definition; returns the expression [y]. *)
val var_ : body -> string -> Ast.pexp

(** [opvar b "F" ~arity] is figure 14's [F = Op(arity, 1)]: a local
    function variable. *)
val opvar : body -> string -> arity:int -> unit

val assert_ : body -> Ast.gform -> unit

(** [constrain b "x" p] is PyPM's match constraint [x <= p]. *)
val constrain : body -> string -> Ast.pexp -> unit

(** {1 Expressions} *)

val v : string -> Ast.pexp
val app : string -> Ast.pexp list -> Ast.pexp
val lit : float -> Ast.pexp

(** Inline alternation [p1 || p2]. *)
val ( |. ) : Ast.pexp -> Ast.pexp -> Ast.pexp

(** {1 Guard expressions} *)

val attr : string -> string -> Ast.gexp
(** [attr "x" "shape.rank"] — the path is split on dots *)

val i : int -> Ast.gexp
val dtype : string -> Ast.gexp
val opclass : string -> Ast.gexp
val ( +. ) : Ast.gexp -> Ast.gexp -> Ast.gexp
val ( -. ) : Ast.gexp -> Ast.gexp -> Ast.gexp
val ( *. ) : Ast.gexp -> Ast.gexp -> Ast.gexp
val ( %. ) : Ast.gexp -> Ast.gexp -> Ast.gexp
val ( ==. ) : Ast.gexp -> Ast.gexp -> Ast.gform
val ( !=. ) : Ast.gexp -> Ast.gexp -> Ast.gform
val ( <. ) : Ast.gexp -> Ast.gexp -> Ast.gform
val ( <=. ) : Ast.gexp -> Ast.gexp -> Ast.gform
val ( &&. ) : Ast.gform -> Ast.gform -> Ast.gform
val ( ||. ) : Ast.gform -> Ast.gform -> Ast.gform
val not_ : Ast.gform -> Ast.gform

(** {1 Rules} *)

(** The [@rule(Pat)] decorator. [branches] are tried in order; the first
    whose guard (conjoined with [asserts]) passes fires. *)
val rule :
  t ->
  string ->
  for_:string ->
  params:string list ->
  ?asserts:Ast.gform list ->
  ?copy_attrs_from:string ->
  (Ast.gform option * Ast.pexp) list ->
  unit

(** {1 Output} *)

(** The collected AST, in definition order. *)
val ast : t -> Ast.program

(** Elaborate against (and extend) a signature. *)
val program :
  t -> sg:Signature.t -> (Pypm_engine.Program.t, Elaborate.error list) result
