lib/dsl/dsl.ml: Ast Elaborate List String
