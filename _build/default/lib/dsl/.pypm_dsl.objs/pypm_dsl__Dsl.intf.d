lib/dsl/dsl.mli: Ast Elaborate Pypm_engine Pypm_term Signature
