lib/dsl/ast.mli: Format
