lib/dsl/elaborate.mli: Ast Format Pypm_engine Pypm_pattern Pypm_term Signature
