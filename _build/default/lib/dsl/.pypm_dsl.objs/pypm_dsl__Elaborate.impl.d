lib/dsl/elaborate.ml: Ast Format Graph Guard Hashtbl List Map Pattern Printf Pypm_engine Pypm_graph Pypm_pattern Pypm_tensor Pypm_term Rule Set Signature String Wf
