lib/dsl/ast.ml: Format List Printf String
