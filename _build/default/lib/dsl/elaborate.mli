(** Elaboration: frontend AST to the core calculus.

    This is the analogue of PyPM's Python-side symbolic execution (paper,
    section 2.4): pattern definitions become CorePyPM patterns, alternates
    fold into [||] in definition order, local aliases are inlined,
    [var()] locals become existentials, [F = Op(n, 1)] locals become
    function-variable existentials, [x <= p] becomes a match constraint,
    and assertions become guards.

    Pattern {e calls} elaborate as follows:

    - a call to a {e non-recursive} pattern is inlined: the callee's
      elaborated pattern has its parameters renamed to the call's argument
      variables (a fresh variable plus a match constraint is introduced for
      a non-variable argument), and its binders are freshened so repeated
      inlinings cannot capture each other;
    - a {e self-recursive} pattern group becomes a [mu], and self-calls
      become recursive calls [P(ys)];
    - {e mutual} recursion is rejected, matching the paper's core calculus
      (single [mu]).

    Rules lower to one {!Pypm_engine.Rule.t} per return branch, in order,
    with the branch guard conjoined onto the shared assertions. *)

open Pypm_term

type error = { context : string; message : string }

val pp_error : Format.formatter -> error -> unit

(** [program ~sg ast] extends [sg] with the AST's operator declarations and
    literal symbols, and produces the engine program. The signature is
    mutated (operator registries are append-only); patterns are checked
    for well-formedness as part of elaboration. *)
val program :
  sg:Signature.t -> Ast.program -> (Pypm_engine.Program.t, error list) result

(** [pattern_of_def ~sg ~defs def] elaborates a single definition group
    member; exposed for tests. [defs] supplies the other pattern groups
    for call resolution. *)
val pattern :
  sg:Signature.t ->
  Ast.program ->
  string ->
  (Pypm_pattern.Pattern.t, error list) result

(** Lower a guard formula against the given variable classification
    (variables used as function variables evaluate via [phi]). *)
val lower_gform :
  fvars:(string -> bool) -> Ast.gform -> (Pypm_pattern.Guard.t, string) result
