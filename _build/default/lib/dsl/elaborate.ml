open Pypm_term
open Pypm_pattern
open Pypm_graph
open Pypm_engine
module P = Pattern
module G = Guard

type error = { context : string; message : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.context e.message

exception Elab of error

let fail context fmt =
  Format.kasprintf (fun message -> raise (Elab { context; message })) fmt

let fresh_counter = ref 0

let fresh base =
  incr fresh_counter;
  Printf.sprintf "%s$%d" base !fresh_counter

module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Guard lowering                                                      *)
(* ------------------------------------------------------------------ *)

(* Normalize attribute paths: [shape.rank] and [rank] both mean the core
   attribute "rank"; [shape.dim0] means "dim0"; [value] means the constant
   payload "value_x1000". *)
let attr_of_path context path =
  let path = match path with "shape" :: rest -> rest | p -> p in
  match path with
  | [ "rank" ] -> "rank"
  | [ "eltType" ] -> "eltType"
  | [ "nelems" ] -> "nelems"
  | [ "bytes" ] -> "bytes"
  | [ "size" ] -> "size"
  | [ "depth" ] -> "depth"
  | [ "op_class" ] -> "op_class"
  | [ "arity" ] -> "arity"
  | [ "output_arity" ] -> "output_arity"
  | [ "value" ] -> "value_x1000"
  | [ d ]
    when String.length d = 4
         && String.sub d 0 3 = "dim"
         && d.[3] >= '0'
         && d.[3] <= '9' ->
      d
  | _ -> fail context "unknown attribute .%s" (String.concat "." path)

let lower_gexp ~context ~fvars e =
  let rec go = function
    | Ast.Gint n -> G.Const n
    | Ast.Gattr (x, path) ->
        let attr = attr_of_path context path in
        if fvars x then G.Fvar_attr (x, attr) else G.Var_attr (x, attr)
    | Ast.Gdtype d -> (
        match Pypm_tensor.Dtype.of_string d with
        | Some dt -> G.Const (Pypm_tensor.Dtype.code dt)
        | None -> fail context "unknown element type %s" d)
    | Ast.Gopclass c -> G.Const (Pypm_tensor.Attrs.class_code c)
    | Ast.Gadd (a, b) -> G.Add (go a, go b)
    | Ast.Gsub (a, b) -> G.Sub (go a, go b)
    | Ast.Gmul (a, b) -> G.Mul (go a, go b)
    | Ast.Gmod (a, b) -> G.Mod (go a, go b)
  in
  go e

let lower_gform_exn ~context ~fvars g =
  let e = lower_gexp ~context ~fvars in
  let rec go = function
    | Ast.Geq (a, b) -> G.Eq (e a, e b)
    | Ast.Gne (a, b) -> G.Ne (e a, e b)
    | Ast.Glt (a, b) -> G.Lt (e a, e b)
    | Ast.Gle (a, b) -> G.Le (e a, e b)
    | Ast.Gand (a, b) -> G.And (go a, go b)
    | Ast.Gor (a, b) -> G.Or (go a, go b)
    | Ast.Gnot a -> G.Not (go a)
    | Ast.Gtrue -> G.True
    | Ast.Gfalse -> G.False
  in
  go g

let lower_gform ~fvars g =
  match lower_gform_exn ~context:"guard" ~fvars:(fun x -> fvars x) g with
  | g -> Ok g
  | exception Elab e -> Error e.message

(* ------------------------------------------------------------------ *)
(* Pattern groups and recursion analysis                               *)
(* ------------------------------------------------------------------ *)

type group = {
  gname : string;
  params : string list;
  defs : Ast.pattern_def list;  (** in definition order *)
}

let group_patterns (defs : Ast.pattern_def list) =
  let order = ref [] in
  let table = Hashtbl.create 16 in
  List.iter
    (fun (pd : Ast.pattern_def) ->
      match Hashtbl.find_opt table pd.Ast.pd_name with
      | None ->
          order := pd.Ast.pd_name :: !order;
          Hashtbl.replace table pd.Ast.pd_name
            { gname = pd.Ast.pd_name; params = pd.Ast.pd_params; defs = [ pd ] }
      | Some g ->
          if List.length g.params <> List.length pd.Ast.pd_params then
            fail pd.Ast.pd_name
              "alternate has %d parameters but an earlier alternate has %d"
              (List.length pd.Ast.pd_params)
              (List.length g.params);
          Hashtbl.replace table pd.Ast.pd_name { g with defs = g.defs @ [ pd ] })
    defs;
  (List.rev !order, table)

(* Names of patterns called from a definition (heads that are pattern
   names are only known with the table in hand). *)
let rec calls_in_pexp table acc = function
  | Ast.Evar _ | Ast.Elit _ -> acc
  | Ast.Ealt (a, b) -> calls_in_pexp table (calls_in_pexp table acc a) b
  | Ast.Eapp (head, args) ->
      let acc = if Hashtbl.mem table head then SSet.add head acc else acc in
      List.fold_left (calls_in_pexp table) acc args

let calls_of_group table g =
  List.fold_left
    (fun acc (pd : Ast.pattern_def) ->
      let acc =
        List.fold_left
          (fun acc -> function
            | Ast.Sconstrain (_, e) | Ast.Salias (_, e) ->
                calls_in_pexp table acc e
            | Ast.Slocal _ | Ast.Sopvar _ | Ast.Sassert _ -> acc)
          acc pd.Ast.pd_stmts
      in
      calls_in_pexp table acc pd.Ast.pd_return)
    SSet.empty g.defs

(* Reject mutual recursion: any cycle through >= 2 pattern names. *)
let check_no_mutual_recursion order table =
  let graph =
    List.map
      (fun name -> (name, calls_of_group table (Hashtbl.find table name)))
      order
  in
  let edges name = try List.assoc name graph with Not_found -> SSet.empty in
  let rec reachable seen from =
    if SSet.mem from seen then seen
    else
      SSet.fold
        (fun next seen -> reachable seen next)
        (edges from) (SSet.add from seen)
  in
  List.iter
    (fun (name, nexts) ->
      (* a DFS from each callee other than self that finds its way back
         means a mutual cycle *)
      SSet.iter
        (fun next ->
          if next <> name && SSet.mem name (reachable SSet.empty next) then
            fail name
              "mutually recursive with %s; the core calculus supports only \
               self-recursion (single mu)"
              next)
        nexts)
    graph

(* ------------------------------------------------------------------ *)
(* Definition elaboration                                              *)
(* ------------------------------------------------------------------ *)

type ctx = {
  sg : Signature.t;
  table : (string, group) Hashtbl.t;
  (* elaborated non-recursive groups, memoized *)
  done_ : (string, P.t) Hashtbl.t;
  mutable in_progress : SSet.t;
}

(* State while elaborating one definition body. *)
type body_env = {
  context : string;
  params : SSet.t;
  mutable locals : string list;  (* var() locals, reverse order *)
  mutable opvars : (string * int) list;  (* function-variable locals *)
  mutable extra_locals : string list;  (* fresh vars minted for call args *)
  aliases : (string, Ast.pexp) Hashtbl.t;
  mutable constraints : (string * P.t) list;  (* reverse order *)
  mutable fvar_params : SSet.t;  (* params used in operator position *)
  self : string option;  (* Some name when the group is self-recursive *)
}

let is_opvar env x = List.mem_assoc x env.opvars

let rec elaborate_group ctx name =
  match Hashtbl.find_opt ctx.done_ name with
  | Some p -> p
  | None ->
      if SSet.mem name ctx.in_progress then
        (* self-recursion handled by the caller via [self]; reaching here
           means a call cycle the analysis should have rejected *)
        fail name "unexpected recursion during elaboration";
      ctx.in_progress <- SSet.add name ctx.in_progress;
      let g = Hashtbl.find ctx.table name in
      let self_recursive = SSet.mem name (calls_of_group ctx.table g) in
      let self = if self_recursive then Some name else None in
      let alts =
        List.map (fun def -> elaborate_def ctx g ~self def) g.defs
      in
      let body = P.alts alts in
      let pat =
        if self_recursive then
          P.mu name ~formals:g.params ~actuals:g.params body
        else body
      in
      ctx.in_progress <- SSet.remove name ctx.in_progress;
      Hashtbl.replace ctx.done_ name pat;
      pat

and elaborate_def ctx (g : group) ~self (def : Ast.pattern_def) =
  let env =
    {
      context = Printf.sprintf "pattern %s" g.gname;
      params = SSet.of_list def.Ast.pd_params;
      locals = [];
      opvars = [];
      extra_locals = [];
      aliases = Hashtbl.create 8;
      constraints = [];
      fvar_params = SSet.empty;
      self;
    }
  in
  (* First pass: collect locals / opvars / aliases so resolution during the
     second pass sees them all (PyPM executes top to bottom, but aliases
     may only be used after definition anyway). *)
  let guards = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Slocal x -> env.locals <- x :: env.locals
      | Ast.Sopvar (x, n) -> env.opvars <- (x, n) :: env.opvars
      | Ast.Salias (x, e) ->
          if Hashtbl.mem env.aliases x then
            fail env.context "alias %s defined twice" x;
          Hashtbl.replace env.aliases x e
      | Ast.Sassert _ | Ast.Sconstrain _ -> ())
    def.Ast.pd_stmts;
  (* Second pass: lower constraints and asserts in order. *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Sconstrain (x, e) ->
          if not (SSet.mem x env.params || List.mem x env.locals) then
            fail env.context
              "match constraint target %s is neither a parameter nor a local"
              x;
          let p = lower_pexp ctx env e in
          env.constraints <- (x, p) :: env.constraints
      | Ast.Sassert gf ->
          guards :=
            lower_gform_exn ~context:env.context
              ~fvars:(fun x ->
                is_opvar env x || SSet.mem x env.fvar_params)
              gf
            :: !guards
      | _ -> ())
    def.Ast.pd_stmts;
  let base = lower_pexp ctx env def.Ast.pd_return in
  (* constraints apply in source order: earliest is innermost *)
  let with_constraints =
    List.fold_left
      (fun acc (x, p) -> P.constr acc p x)
      base (List.rev env.constraints)
  in
  let with_guards = P.guarded with_constraints (List.rev !guards) in
  let with_locals =
    List.fold_left
      (fun acc x -> P.exists x acc)
      with_guards
      (env.locals @ env.extra_locals)
  in
  List.fold_left
    (fun acc (f, _arity) -> P.exists_f f acc)
    with_locals env.opvars

and lower_pexp ctx env (e : Ast.pexp) : P.t =
  match e with
  | Ast.Elit v ->
      let sym = Graph.declare_lit ctx.sg v in
      P.const sym
  | Ast.Evar x -> (
      match Hashtbl.find_opt env.aliases x with
      | Some aliased -> lower_pexp ctx env aliased
      | None ->
          if SSet.mem x env.params || List.mem x env.locals
             || List.mem x env.extra_locals
          then P.var x
          else if is_opvar env x then
            fail env.context
              "operator variable %s used in term position" x
          else if Signature.arity ctx.sg x = Some 0 then P.const x
          else fail env.context "unbound name %s" x)
  | Ast.Ealt (a, b) -> P.alt (lower_pexp ctx env a) (lower_pexp ctx env b)
  | Ast.Eapp (head, args) ->
      if Hashtbl.mem env.aliases head then
        fail env.context "alias %s cannot be applied" head;
      if Some head = env.self then lower_self_call ctx env head args
      else if Hashtbl.mem ctx.table head then lower_inline_call ctx env head args
      else if is_opvar env head then (
        let arity = List.assoc head env.opvars in
        if arity <> List.length args then
          fail env.context "operator variable %s has arity %d, applied to %d"
            head arity (List.length args);
        P.fapp head (List.map (lower_pexp ctx env) args))
      else if SSet.mem head env.params then (
        (* a parameter used as a function: a function-variable parameter,
           like [f] in figure 3 *)
        env.fvar_params <- SSet.add head env.fvar_params;
        P.fapp head (List.map (lower_pexp ctx env) args))
      else
        match Signature.arity ctx.sg head with
        | Some n ->
            if n <> List.length args then
              fail env.context "operator %s has arity %d, applied to %d" head
                n (List.length args);
            P.app head (List.map (lower_pexp ctx env) args)
        | None -> fail env.context "unknown operator or pattern %s" head

(* A call argument must be a variable in the core; non-variable arguments
   get a fresh variable pinned by a match constraint. Returns the variable
   together with an optional (pattern, var) constraint to wrap. *)
and lower_call_arg ctx env e =
  match e with
  | Ast.Evar x
    when SSet.mem x env.params || List.mem x env.locals
         || List.mem x env.extra_locals || is_opvar env x
         || SSet.mem x env.fvar_params ->
      (x, None)
  | _ ->
      let z = fresh "arg" in
      env.extra_locals <- z :: env.extra_locals;
      let p = lower_pexp ctx env e in
      (z, Some p)

and lower_self_call ctx env name args =
  let g = Hashtbl.find ctx.table name in
  if List.length args <> List.length g.params then
    fail env.context "recursive call %s expects %d arguments, got %d" name
      (List.length g.params) (List.length args);
  let vars_and_constraints = List.map (lower_call_arg ctx env) args in
  let vars = List.map fst vars_and_constraints in
  let base = P.call name vars in
  List.fold_left
    (fun acc (z, c) ->
      match c with None -> acc | Some p -> P.constr acc p z)
    base vars_and_constraints

and lower_inline_call ctx env name args =
  let g = Hashtbl.find ctx.table name in
  if List.length args <> List.length g.params then
    fail env.context "pattern call %s expects %d arguments, got %d" name
      (List.length g.params) (List.length args);
  let callee = elaborate_group ctx name in
  let vars_and_constraints = List.map (lower_call_arg ctx env) args in
  let vars = List.map fst vars_and_constraints in
  (* Rename the callee's parameters to the argument variables and freshen
     its binders so repeated inlinings cannot collide. *)
  let renamed = P.rename (List.combine g.params vars) callee in
  let inlined = P.freshen_binders renamed in
  List.fold_left
    (fun acc (z, c) ->
      match c with None -> acc | Some p -> P.constr acc p z)
    inlined vars_and_constraints

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let lower_rhs ctx (rd : Ast.rule_def) e =
  let context = Printf.sprintf "rule %s" rd.Ast.rd_name in
  let params = SSet.of_list rd.Ast.rd_params in
  let rec go ~top = function
    | Ast.Evar x ->
        if SSet.mem x params then Rule.Rvar x
        else if Signature.arity ctx.sg x = Some 0 then Rule.Rapp (x, [])
        else fail context "unbound name %s in replacement" x
    | Ast.Elit v ->
        ignore (Graph.declare_lit ctx.sg v);
        Rule.Rlit v
    | Ast.Ealt _ ->
        fail context "replacements are deterministic; || is not allowed"
    | Ast.Eapp (head, args) -> (
        (* operators shadow pattern names in replacement position: rules
           can only build operator nodes (a pattern named like its target
           operator, as in figure 2's Gelu, is fine) *)
        if Hashtbl.mem ctx.table head && Signature.arity ctx.sg head = None
        then fail context "replacement cannot call pattern %s" head;
        let lowered = List.map (go ~top:false) args in
        match Signature.arity ctx.sg head with
        | Some n ->
            if n <> List.length args then
              fail context "operator %s has arity %d, applied to %d" head n
                (List.length args);
            if top then
              match rd.Ast.rd_copy_attrs_from with
              | Some src -> Rule.Rcopy_attrs (head, lowered, src)
              | None -> Rule.Rapp (head, lowered)
            else Rule.Rapp (head, lowered)
        | None ->
            if SSet.mem head params then Rule.Rfapp (head, lowered)
            else fail context "unknown operator %s in replacement" head)
  in
  go ~top:true e

let lower_rule ctx (rd : Ast.rule_def) =
  let context = Printf.sprintf "rule %s" rd.Ast.rd_name in
  let fvars _ = false in
  let shared =
    List.map (lower_gform_exn ~context ~fvars) rd.Ast.rd_asserts
  in
  List.mapi
    (fun i (br : Ast.branch) ->
      let branch_guard =
        match br.Ast.br_guard with
        | None -> []
        | Some g -> [ lower_gform_exn ~context ~fvars g ]
      in
      let guard = G.conj (shared @ branch_guard) in
      let name =
        if i = 0 then rd.Ast.rd_name
        else Printf.sprintf "%s#%d" rd.Ast.rd_name (i + 1)
      in
      Rule.make ~guard ~name ~pattern:rd.Ast.rd_for
        (lower_rhs ctx rd br.Ast.br_return))
    rd.Ast.rd_branches

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let declare_ops sg (ops : Ast.op_def list) =
  List.iter
    (fun (od : Ast.op_def) ->
      try
        ignore
          (Signature.declare sg ~output_arity:od.Ast.od_output_arity
             ~op_class:od.Ast.od_class ~arity:od.Ast.od_arity od.Ast.od_name)
      with Invalid_argument msg ->
        fail ("op " ^ od.Ast.od_name) "%s" msg)
    ops

let program_exn ~sg (ast : Ast.program) =
  declare_ops sg ast.Ast.ops;
  let order, table = group_patterns ast.Ast.patterns in
  check_no_mutual_recursion order table;
  let ctx = { sg; table; done_ = Hashtbl.create 16; in_progress = SSet.empty } in
  let entries =
    List.map
      (fun name ->
        let pattern = elaborate_group ctx name in
        (match Wf.errors (Wf.check sg pattern) with
        | [] -> ()
        | ds ->
            fail ("pattern " ^ name) "%s"
              (Format.asprintf "%a"
                 (Format.pp_print_list Wf.pp_diagnostic)
                 ds));
        let rules =
          List.concat_map
            (fun (rd : Ast.rule_def) ->
              if String.equal rd.Ast.rd_for name then lower_rule ctx rd else [])
            ast.Ast.rules
        in
        { Pypm_engine.Program.pname = name; pattern; rules })
      order
  in
  (* every rule must reference a defined pattern *)
  List.iter
    (fun (rd : Ast.rule_def) ->
      if not (Hashtbl.mem table rd.Ast.rd_for) then
        fail ("rule " ^ rd.Ast.rd_name) "no pattern named %s" rd.Ast.rd_for)
    ast.Ast.rules;
  Pypm_engine.Program.make ~sg entries

let program ~sg ast =
  match program_exn ~sg ast with
  | p -> Ok p
  | exception Elab e -> Error [ e ]

let pattern ~sg ast name =
  match
    let order, table = group_patterns ast.Ast.patterns in
    check_no_mutual_recursion order table;
    let ctx =
      { sg; table; done_ = Hashtbl.create 16; in_progress = SSet.empty }
    in
    if not (Hashtbl.mem table name) then
      fail name "no such pattern";
    elaborate_group ctx name
  with
  | p -> Ok p
  | exception Elab e -> Error [ e ]
