(** E-graphs: the nondestructive-rewriting baseline.

    The paper positions PyPM against equality-saturation engines in the
    egg family (sections 1 and 5): "with the more superficial distinctions
    aside (destructive instead of nondestructive rewriting), there are two
    main differences...". This module supplies that comparison point as a
    real implementation: a congruence-closed e-graph over the same terms,
    with hash-consed e-nodes, union-find over e-classes, and a rebuild
    (congruence repair) step — enough to run {!Ematch} and {!Saturate}
    against the greedy destructive pass and measure the trade.

    The e-graph represents sets of equivalent terms compactly: an e-class
    is a set of e-nodes; an e-node is an operator applied to e-class ids.
    Adding is hash-consed (structurally equal terms land in the same
    class); {!union} merges classes; {!rebuild} restores congruence
    ([a ~ b] implies [f(a) ~ f(b)]) after unions. *)

open Pypm_term

type t

(** E-class identifiers. Stable under unions up to {!find}. *)
type id = int

val create : unit -> t

(** [add g op children] adds (or finds) the e-node [op(children)] and
    returns its e-class. *)
val add : t -> Symbol.t -> id list -> id

(** [add_term g t] folds a whole term in. *)
val add_term : t -> Term.t -> id

(** Canonical representative of an e-class. *)
val find : t -> id -> id

(** [union g a b] merges two e-classes; returns the canonical id and
    whether anything changed. Call {!rebuild} before matching again. *)
val union : t -> id -> id -> id * bool

(** Restore congruence after unions. Returns the number of upward merges
    performed. *)
val rebuild : t -> int

(** [equiv g a b] after rebuild: do [a] and [b] denote the same class? *)
val equiv : t -> id -> id -> bool

(** E-nodes of a class (canonicalized): operator and child classes. *)
val nodes_of : t -> id -> (Symbol.t * id list) list

(** All canonical class ids. *)
val classes : t -> id list

(** Counts, for saturation stopping criteria and reporting. *)
val class_count : t -> int

val node_count : t -> int

(** [extract g ~cost id] picks the cheapest term of the class: [cost op]
    is the per-operator cost (children costs are added). Returns [None] if
    the class has no finite-cost term (cyclic without base). *)
val extract : t -> cost:(Symbol.t -> float) -> id -> Term.t option

(** Uniform cost 1 per operator: extraction by term size. *)
val size_cost : Symbol.t -> float

val pp : Format.formatter -> t -> unit
