open Pypm_term

type id = int

type enode = { op : Symbol.t; children : id list }

type t = {
  mutable parent : int array;  (* union-find *)
  mutable n : int;
  (* hashcons: canonical enode -> class id *)
  memo : (enode, id) Hashtbl.t;
  (* class id -> enodes (possibly stale children until rebuild) *)
  members : (id, enode list) Hashtbl.t;
  (* class id -> (parent enode, parent class) uses, for congruence repair *)
  uses : (id, (enode * id) list) Hashtbl.t;
  mutable dirty : id list;  (* classes whose uses need recanonicalizing *)
}

let create () =
  {
    parent = Array.make 16 0;
    n = 0;
    memo = Hashtbl.create 64;
    members = Hashtbl.create 64;
    uses = Hashtbl.create 64;
    dirty = [];
  }

let rec find g x =
  let p = g.parent.(x) in
  if p = x then x
  else (
    let r = find g p in
    g.parent.(x) <- r;
    r)

let canonicalize g (e : enode) =
  { e with children = List.map (find g) e.children }

let fresh_class g =
  if g.n >= Array.length g.parent then (
    let bigger = Array.make (2 * Array.length g.parent) 0 in
    Array.blit g.parent 0 bigger 0 g.n;
    g.parent <- bigger);
  let id = g.n in
  g.parent.(id) <- id;
  g.n <- g.n + 1;
  id

let record_use g child use =
  let existing = Option.value ~default:[] (Hashtbl.find_opt g.uses child) in
  Hashtbl.replace g.uses child (use :: existing)

let add g op children =
  let e = canonicalize g { op; children } in
  match Hashtbl.find_opt g.memo e with
  | Some id -> find g id
  | None ->
      let id = fresh_class g in
      Hashtbl.replace g.memo e id;
      Hashtbl.replace g.members id [ e ];
      List.iter (fun c -> record_use g c (e, id)) e.children;
      id

let rec add_term g t = add g (Term.head t) (List.map (add_term g) (Term.args t))

let union g a b =
  let a = find g a and b = find g b in
  if a = b then (a, false)
  else begin
    (* keep the class with more uses as root (fewer re-canonicalizations) *)
    let uses_len x =
      List.length (Option.value ~default:[] (Hashtbl.find_opt g.uses x))
    in
    let root, child = if uses_len a >= uses_len b then (a, b) else (b, a) in
    g.parent.(child) <- root;
    (* merge member and use lists *)
    let m_root = Option.value ~default:[] (Hashtbl.find_opt g.members root) in
    let m_child = Option.value ~default:[] (Hashtbl.find_opt g.members child) in
    Hashtbl.replace g.members root (m_child @ m_root);
    Hashtbl.remove g.members child;
    let u_root = Option.value ~default:[] (Hashtbl.find_opt g.uses root) in
    let u_child = Option.value ~default:[] (Hashtbl.find_opt g.uses child) in
    Hashtbl.replace g.uses root (u_child @ u_root);
    Hashtbl.remove g.uses child;
    g.dirty <- root :: g.dirty;
    (root, true)
  end

(* Congruence repair: re-canonicalize the uses of merged classes; any two
   uses that become the same enode force their classes to merge too. *)
let rebuild g =
  let merges = ref 0 in
  let rec go () =
    match g.dirty with
    | [] -> ()
    | cls :: rest ->
        g.dirty <- rest;
        let cls = find g cls in
        let use_list = Option.value ~default:[] (Hashtbl.find_opt g.uses cls) in
        let seen : (enode, id) Hashtbl.t = Hashtbl.create 16 in
        let new_uses = ref [] in
        List.iter
          (fun (e, cid) ->
            let e' = canonicalize g e in
            let cid = find g cid in
            (* repair the hashcons entry *)
            (match Hashtbl.find_opt g.memo e' with
            | Some other ->
                let other = find g other in
                if other <> cid then (
                  let _, changed = union g other cid in
                  if changed then incr merges)
            | None -> Hashtbl.replace g.memo e' cid);
            (match Hashtbl.find_opt seen e' with
            | Some prev ->
                let prev = find g prev in
                let cid = find g cid in
                if prev <> cid then (
                  let _, changed = union g prev cid in
                  if changed then incr merges)
            | None -> Hashtbl.replace seen e' cid);
            new_uses := (e', find g cid) :: !new_uses)
          use_list;
        Hashtbl.replace g.uses (find g cls) !new_uses;
        go ()
  in
  go ();
  !merges

let equiv g a b = find g a = find g b

let nodes_of g id =
  let id = find g id in
  Option.value ~default:[] (Hashtbl.find_opt g.members id)
  |> List.map (fun e ->
         let e = canonicalize g e in
         (e.op, e.children))
  |> List.sort_uniq compare

let classes g =
  List.init g.n Fun.id
  |> List.filter (fun i -> find g i = i && Hashtbl.mem g.members i)

let class_count g = List.length (classes g)

let node_count g =
  List.fold_left (fun acc c -> acc + List.length (nodes_of g c)) 0 (classes g)

(* Bottom-up cost fixpoint, then top-down reconstruction. *)
let extract g ~cost root =
  let root = find g root in
  let best : (id, float * (Symbol.t * id list)) Hashtbl.t = Hashtbl.create 32 in
  let cost_of c = Option.map fst (Hashtbl.find_opt best (find g c)) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun cls ->
        List.iter
          (fun (op, children) ->
            let child_costs = List.map cost_of children in
            if List.for_all Option.is_some child_costs then
              let total =
                cost op
                +. List.fold_left (fun a c -> a +. Option.get c) 0. child_costs
              in
              match Hashtbl.find_opt best cls with
              | Some (c, _) when c <= total -> ()
              | _ ->
                  Hashtbl.replace best cls (total, (op, children));
                  changed := true)
          (nodes_of g cls))
      (classes g)
  done;
  let rec build cls =
    match Hashtbl.find_opt best (find g cls) with
    | None -> None
    | Some (_, (op, children)) ->
        let args = List.map build children in
        if List.for_all Option.is_some args then
          Some (Term.app op (List.map Option.get args))
        else None
  in
  build root

let size_cost _ = 1.

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun cls ->
      Format.fprintf ppf "e%d:" cls;
      List.iter
        (fun (op, children) ->
          Format.fprintf ppf " %s(%s)" op
            (String.concat "," (List.map (Printf.sprintf "e%d") children)))
        (nodes_of g cls);
      Format.fprintf ppf "@,")
    (classes g);
  Format.fprintf ppf "@]"
