open Pypm_term

type rw = { rw_name : string; lhs : Pypm_pattern.Pattern.t; rhs : rhs }

and rhs =
  | Tvar of string
  | Tapp of Symbol.t * rhs list
  | Tfapp of string * rhs list

let rw ~name lhs rhs =
  (match Ematch.supported lhs with
  | Ok () -> ()
  | Error e -> invalid_arg ("Saturate.rw " ^ name ^ ": " ^ e));
  { rw_name = name; lhs; rhs }

type stats = {
  iterations : int;
  applications : int;
  saturated : bool;
  final_classes : int;
  final_nodes : int;
}

let rec instantiate g (env : Ematch.env) = function
  | Tvar x -> (
      match Symbol.Map.find_opt x env.Ematch.classes with
      | Some c -> c
      | None -> invalid_arg ("Saturate: unbound template variable " ^ x))
  | Tapp (op, args) ->
      Egraph.add g op (List.map (instantiate g env) args)
  | Tfapp (fv, args) -> (
      match Symbol.Map.find_opt fv env.Ematch.ops with
      | Some op -> Egraph.add g op (List.map (instantiate g env) args)
      | None -> invalid_arg ("Saturate: unbound operator variable " ^ fv))

let run g rules ?(iter_limit = 30) () =
  let applications = ref 0 in
  let rec loop i =
    if i >= iter_limit then (i, false)
    else begin
      (* collect all matches first (matching against a mutating e-graph
         would be order-dependent), then apply *)
      let matches =
        List.concat_map
          (fun r -> List.map (fun (cls, env) -> (r, cls, env)) (Ematch.matches g r.lhs))
          rules
      in
      let changed = ref false in
      List.iter
        (fun (r, cls, env) ->
          let rhs_cls = instantiate g env r.rhs in
          let _, merged = Egraph.union g cls rhs_cls in
          if merged then (
            incr applications;
            changed := true))
        matches;
      ignore (Egraph.rebuild g);
      if !changed then loop (i + 1) else (i + 1, true)
    end
  in
  let iterations, saturated = loop 0 in
  {
    iterations;
    applications = !applications;
    saturated;
    final_classes = Egraph.class_count g;
    final_nodes = Egraph.node_count g;
  }

let simplify ~rules ?(cost = Egraph.size_cost) ?iter_limit t =
  let g = Egraph.create () in
  let root = Egraph.add_term g t in
  let stats = run g rules ?iter_limit () in
  match Egraph.extract g ~cost root with
  | Some best -> (best, stats)
  | None -> (t, stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d iteration(s), %d application(s), %s, %d classes / %d nodes"
    s.iterations s.applications
    (if s.saturated then "saturated" else "iteration limit")
    s.final_classes s.final_nodes
