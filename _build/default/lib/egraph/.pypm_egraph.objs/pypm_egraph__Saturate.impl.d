lib/egraph/saturate.ml: Egraph Ematch Format List Pypm_pattern Pypm_term Symbol
