lib/egraph/ematch.mli: Egraph Pypm_pattern Pypm_term Symbol
