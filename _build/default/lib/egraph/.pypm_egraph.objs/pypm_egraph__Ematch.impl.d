lib/egraph/ematch.ml: Egraph List Pattern Pypm_pattern Pypm_term Result Symbol
