lib/egraph/saturate.mli: Egraph Format Pypm_pattern Pypm_term Symbol Term
