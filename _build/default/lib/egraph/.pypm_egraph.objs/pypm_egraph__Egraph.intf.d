lib/egraph/egraph.mli: Format Pypm_term Symbol Term
