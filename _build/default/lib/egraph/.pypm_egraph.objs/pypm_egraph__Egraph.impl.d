lib/egraph/egraph.ml: Array Format Fun Hashtbl List Option Printf Pypm_term String Symbol Term
