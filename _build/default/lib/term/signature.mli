(** Operator signatures.

    A signature fixes the operator set [Sigma] and the [arity] function the
    calculus is parameterized over (paper, section 3.1), together with the
    extra operator metadata PyPM's [@op] declarations carry: output arity,
    attributes that are not dataflow inputs (e.g. a convolution stride), and
    an operator class used by guards such as
    [UnaryOp.op_class == opclass("unary_pointwise")] (paper, figure 14). *)

(** Kind of a non-dataflow operator attribute. *)
type attr_kind =
  | Int_attr  (** integer-valued, e.g. a stride *)
  | Sym_attr  (** symbolic, e.g. a padding mode *)

(** Declaration of a single operator, the analogue of an [@op] method. *)
type decl = {
  name : Symbol.t;
  arity : int;  (** number of dataflow inputs *)
  output_arity : int;  (** number of results; PyPM requires >= 1 *)
  op_class : string;  (** e.g. ["unary_pointwise"], ["matmul"], ["opaque"] *)
  attrs : (string * attr_kind) list;  (** declared non-dataflow attributes *)
}

(** A mutable registry of operator declarations; the concrete [Sigma]. *)
type t

val create : unit -> t

(** [declare t ~arity ... name] adds an operator. Re-declaring a name with a
    different arity raises [Invalid_argument]; an identical re-declaration is
    a no-op (mirroring PyPM's idempotent registry). *)
val declare :
  t ->
  ?output_arity:int ->
  ?op_class:string ->
  ?attrs:(string * attr_kind) list ->
  arity:int ->
  Symbol.t ->
  decl

val find : t -> Symbol.t -> decl option
val find_exn : t -> Symbol.t -> decl
val mem : t -> Symbol.t -> bool

(** [arity t f] is the arity of [f], or [None] if undeclared. *)
val arity : t -> Symbol.t -> int option

val op_class : t -> Symbol.t -> string option

(** All declarations, in declaration order. *)
val decls : t -> decl list

(** Number of declared operators. *)
val size : t -> int

(** [symbols_of_class t c] lists the operators whose class is [c], in
    declaration order. Used by enumeration and random generators. *)
val symbols_of_class : t -> string -> Symbol.t list

(** [copy t] is an independent copy; later declarations in either do not
    affect the other. *)
val copy : t -> t

(** [union a b] is a fresh signature containing the declarations of both.
    Raises [Invalid_argument] on conflicting declarations. *)
val union : t -> t -> t

val pp : Format.formatter -> t -> unit
