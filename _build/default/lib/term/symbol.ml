type t = string

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

module Map = Map.Make (String)
module Set = Set.Make (String)

let counter = ref 0

let fresh ?(prefix = "sym") () =
  incr counter;
  Printf.sprintf "%s%%%d" prefix !counter
