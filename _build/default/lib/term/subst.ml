type var = string

module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty
let find x theta = M.find_opt x theta
let mem = M.mem

let bind x t theta =
  match M.find_opt x theta with
  | None -> Ok (M.add x t theta)
  | Some t' -> if Term.equal t t' then Ok theta else Error (`Conflict t')

let add = M.add
let remove = M.remove
let cardinal = M.cardinal
let domain theta = List.map fst (M.bindings theta)
let bindings = M.bindings
let of_list l = List.fold_left (fun acc (x, t) -> M.add x t acc) M.empty l
let equal = M.equal Term.equal

let subset a b =
  M.for_all
    (fun x t -> match M.find_opt x b with Some t' -> Term.equal t t' | None -> false)
    a

let agree a b =
  M.for_all
    (fun x t -> match M.find_opt x b with Some t' -> Term.equal t t' | None -> true)
    a

let union a b =
  let conflict = ref None in
  let merged =
    M.union
      (fun x t t' ->
        if Term.equal t t' then Some t
        else (
          (match !conflict with None -> conflict := Some x | Some _ -> ());
          Some t))
      a b
  in
  match !conflict with None -> Ok merged | Some x -> Error (`Conflict x)

let fold = M.fold
let iter = M.iter

let pp ppf theta =
  Format.fprintf ppf "@[<h>{";
  let first = ref true in
  M.iter
    (fun x t ->
      if not !first then Format.fprintf ppf ",@ ";
      first := false;
      Format.fprintf ppf "%s |-> %a" x Term.pp t)
    theta;
  Format.fprintf ppf "}@]"

let to_string theta = Format.asprintf "%a" pp theta
