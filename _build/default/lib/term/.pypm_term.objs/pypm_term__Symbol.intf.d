lib/term/symbol.mli: Format Map Set
