lib/term/subst.ml: Format List Map String Term
