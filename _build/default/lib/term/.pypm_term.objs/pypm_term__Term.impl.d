lib/term/term.ml: Format Hashtbl List Map Printf Seq Set Signature Symbol
