lib/term/fsubst.ml: Format List Map String Symbol
