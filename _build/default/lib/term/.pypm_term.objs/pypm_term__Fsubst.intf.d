lib/term/fsubst.mli: Format Symbol
