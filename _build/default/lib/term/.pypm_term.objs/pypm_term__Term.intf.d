lib/term/term.mli: Format Hashtbl Map Seq Set Signature Symbol
