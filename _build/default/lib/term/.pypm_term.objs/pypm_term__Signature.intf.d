lib/term/signature.mli: Format Symbol
