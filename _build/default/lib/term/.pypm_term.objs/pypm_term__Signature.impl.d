lib/term/signature.ml: Format Hashtbl List Option Printf String Symbol
