lib/term/symbol.ml: Format Hashtbl Map Printf Set String
