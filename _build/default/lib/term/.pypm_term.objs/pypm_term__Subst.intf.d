lib/term/subst.mli: Format Term
