(** Function substitutions [phi].

    A function substitution maps function variables (which range over
    operator symbols rather than terms, paper section 3.4) to elements of
    [Sigma]. It rides along with the term substitution through both
    semantics. *)

type fvar = string
type t

val empty : t
val is_empty : t -> bool
val find : fvar -> t -> Symbol.t option
val mem : fvar -> t -> bool

(** [bind f sym phi] extends [phi] with [f |-> sym], or reports the existing
    conflicting binding (ST-Match-Fun-Var-Conflict). *)
val bind : fvar -> Symbol.t -> t -> (t, [ `Conflict of Symbol.t ]) result

val add : fvar -> Symbol.t -> t -> t
val cardinal : t -> int
val domain : t -> fvar list
val bindings : t -> (fvar * Symbol.t) list
val of_list : (fvar * Symbol.t) list -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val union : t -> t -> (t, [ `Conflict of fvar ]) result
val pp : Format.formatter -> t -> unit
val to_string : t -> string
