type fvar = string

module M = Map.Make (String)

type t = Symbol.t M.t

let empty = M.empty
let is_empty = M.is_empty
let find f phi = M.find_opt f phi
let mem = M.mem

let bind f sym phi =
  match M.find_opt f phi with
  | None -> Ok (M.add f sym phi)
  | Some sym' ->
      if Symbol.equal sym sym' then Ok phi else Error (`Conflict sym')

let add = M.add
let cardinal = M.cardinal
let domain phi = List.map fst (M.bindings phi)
let bindings = M.bindings
let of_list l = List.fold_left (fun acc (f, s) -> M.add f s acc) M.empty l
let equal = M.equal Symbol.equal

let subset a b =
  M.for_all
    (fun f s ->
      match M.find_opt f b with Some s' -> Symbol.equal s s' | None -> false)
    a

let union a b =
  let conflict = ref None in
  let merged =
    M.union
      (fun f s s' ->
        if Symbol.equal s s' then Some s
        else (
          (match !conflict with None -> conflict := Some f | Some _ -> ());
          Some s))
      a b
  in
  match !conflict with None -> Ok merged | Some f -> Error (`Conflict f)

let pp ppf phi =
  Format.fprintf ppf "@[<h>{";
  let first = ref true in
  M.iter
    (fun f s ->
      if not !first then Format.fprintf ppf ",@ ";
      first := false;
      Format.fprintf ppf "%s |-> %s" f s)
    phi;
  Format.fprintf ppf "}@]"

let to_string phi = Format.asprintf "%a" pp phi
