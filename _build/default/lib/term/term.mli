(** First-order terms over a signature.

    Terms are the objects patterns are matched against: correctly saturated
    applications [f(t1, ..., tn)] of operators, with constants as arity-0
    operators (paper, figure 5). In DLCB terms arise as the tree view of a
    computation graph rooted at a node (sharing is unfolded).

    Terms are immutable. Each node memoizes its hash, size and depth so that
    equality is hash-then-structural and size/depth queries are O(1); the
    MICRO bench ablates this against naive structural equality. *)

type t = private {
  head : Symbol.t;
  args : t list;
  hash : int;
  size : int;  (** number of operator nodes, >= 1 *)
  depth : int;  (** 1 for constants *)
}

(** [app f args] builds [f(args)]. No arity check is performed here; use
    {!app_checked} to enforce a signature. *)
val app : Symbol.t -> t list -> t

(** [const f] is [app f []]. *)
val const : Symbol.t -> t

(** [app_checked sg f args] is [app f args], checking that [f] is declared
    in [sg] with arity [List.length args]. *)
val app_checked : Signature.t -> Symbol.t -> t list -> (t, string) result

val head : t -> Symbol.t
val args : t -> t list
val size : t -> int
val depth : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Pre-order sequence of all subterms, including the term itself. *)
val subterms : t -> t Seq.t

(** [exists_subterm pred t] is true iff some subterm satisfies [pred]. *)
val exists_subterm : (t -> bool) -> t -> bool

(** [count_heads f t] counts subterm occurrences whose head is [f]. *)
val count_heads : Symbol.t -> t -> int

(** Symbols occurring in the term. *)
val symbols : t -> Symbol.Set.t

(** [well_formed sg t] checks every application against the signature. *)
val well_formed : Signature.t -> t -> bool

(** [map_leaves f t] rebuilds [t], replacing each constant leaf [c] by
    [f c] (which may be an arbitrary term). Used to graft subgraphs. *)
val map_leaves : (Symbol.t -> t) -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
