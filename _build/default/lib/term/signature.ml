type attr_kind = Int_attr | Sym_attr

type decl = {
  name : Symbol.t;
  arity : int;
  output_arity : int;
  op_class : string;
  attrs : (string * attr_kind) list;
}

type t = {
  table : (Symbol.t, decl) Hashtbl.t;
  mutable order : Symbol.t list; (* reverse declaration order *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let same_decl a b =
  Symbol.equal a.name b.name && a.arity = b.arity
  && a.output_arity = b.output_arity
  && String.equal a.op_class b.op_class
  && a.attrs = b.attrs

let declare t ?(output_arity = 1) ?(op_class = "generic") ?(attrs = [])
    ~arity name =
  if arity < 0 then invalid_arg "Signature.declare: negative arity";
  if output_arity < 1 then
    invalid_arg "Signature.declare: output arity must be >= 1";
  let decl = { name; arity; output_arity; op_class; attrs } in
  match Hashtbl.find_opt t.table name with
  | Some existing ->
      if same_decl existing decl then existing
      else
        invalid_arg
          (Printf.sprintf "Signature.declare: conflicting declaration of %s"
             name)
  | None ->
      Hashtbl.replace t.table name decl;
      t.order <- name :: t.order;
      decl

let find t name = Hashtbl.find_opt t.table name

let find_exn t name =
  match find t name with
  | Some d -> d
  | None ->
      invalid_arg (Printf.sprintf "Signature.find_exn: undeclared operator %s" name)

let mem t name = Hashtbl.mem t.table name
let arity t name = Option.map (fun d -> d.arity) (find t name)
let op_class t name = Option.map (fun d -> d.op_class) (find t name)

let decls t =
  List.rev_map (fun name -> Hashtbl.find t.table name) t.order

let size t = Hashtbl.length t.table

let symbols_of_class t c =
  decls t
  |> List.filter (fun d -> String.equal d.op_class c)
  |> List.map (fun d -> d.name)

let copy t = { table = Hashtbl.copy t.table; order = t.order }

let union a b =
  let t = copy a in
  List.iter
    (fun d ->
      ignore
        (declare t ~output_arity:d.output_arity ~op_class:d.op_class
           ~attrs:d.attrs ~arity:d.arity d.name))
    (decls b);
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun d ->
      Format.fprintf ppf "op %s/%d -> %d [%s]@," d.name d.arity d.output_arity
        d.op_class)
    (decls t);
  Format.fprintf ppf "@]"
