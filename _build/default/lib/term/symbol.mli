(** Operator symbols.

    CorePyPM is parameterized over a set of operators [Sigma] with arities
    (paper, section 3.1). A {!t} is the name of one such operator; arity and
    other metadata live in {!Signature}. Symbols are ordinary strings so
    frontends can mint them freely, but all code manipulates them through
    this module to keep intent clear. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit

(** Total maps and sets over symbols. *)
module Map : Map.S with type key = t

module Set : Set.S with type elt = t

(** [fresh ?prefix ()] returns a symbol that has not been returned by any
    previous call to [fresh] in this process. Used by graph construction to
    name input/opaque leaf operators. *)
val fresh : ?prefix:string -> unit -> t
