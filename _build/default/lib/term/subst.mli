(** Term substitutions [theta].

    A substitution is a finite map from pattern variables to terms. In the
    declarative semantics it is the witness of a match (paper, section
    3.1.1); in the algorithmic semantics it is built up incrementally and
    saved/restored on the backtracking stack. *)

type var = string
type t

val empty : t
val is_empty : t -> bool

(** [find x theta] is the binding of [x], if any; the paper's
    [theta(x) |-> t]. *)
val find : var -> t -> Term.t option

val mem : var -> t -> bool

(** [bind x t theta] extends [theta] with [x |-> t]. If [x] is already bound
    to a term equal to [t] the result is [theta]; if bound to a different
    term the result is [Error] (the ST-Match-Var-Conflict situation). *)
val bind : var -> Term.t -> t -> (t, [ `Conflict of Term.t ]) result

(** [add x t theta] unconditionally (re)binds [x]. Prefer {!bind}; [add] is
    for places where the caller has already resolved conflicts. *)
val add : var -> Term.t -> t -> t

val remove : var -> t -> t
val cardinal : t -> int
val domain : t -> var list
val bindings : t -> (var * Term.t) list
val of_list : (var * Term.t) list -> t

val equal : t -> t -> bool

(** [subset a b] holds when every binding of [a] appears (with an equal
    term) in [b]; the paper's [theta <= theta'] in Theorem 1 (weakening). *)
val subset : t -> t -> bool

(** [agree a b] holds when [a] and [b] assign equal terms to every variable
    in the intersection of their domains. *)
val agree : t -> t -> bool

(** [union a b] merges two substitutions; [Error x] if they conflict on
    variable [x]. *)
val union : t -> t -> (t, [ `Conflict of var ]) result

val fold : (var -> Term.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (var -> Term.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
