type t = {
  head : Symbol.t;
  args : t list;
  hash : int;
  size : int;
  depth : int;
}

let combine h1 h2 = (h1 * 1000003) lxor h2

let app head args =
  let hash, size, depth =
    List.fold_left
      (fun (h, s, d) a -> (combine h a.hash, s + a.size, max d a.depth))
      (Symbol.hash head, 1, 0)
      args
  in
  { head; args; hash = hash land max_int; size; depth = depth + 1 }

let const head = app head []

let app_checked sg head args =
  match Signature.arity sg head with
  | None -> Error (Printf.sprintf "undeclared operator %s" head)
  | Some n when n <> List.length args ->
      Error
        (Printf.sprintf "operator %s has arity %d but is applied to %d arguments"
           head n (List.length args))
  | Some _ -> Ok (app head args)

let head t = t.head
let args t = t.args
let size t = t.size
let depth t = t.depth
let hash t = t.hash

let rec equal a b =
  a == b
  || (a.hash = b.hash && a.size = b.size
     && Symbol.equal a.head b.head
     && List.equal equal a.args b.args)

let rec compare a b =
  if a == b then 0
  else
    let c = Symbol.compare a.head b.head in
    if c <> 0 then c else List.compare compare a.args b.args

let rec subterms t () =
  Seq.Cons (t, List.fold_right (fun a acc -> Seq.append (subterms a) acc) t.args Seq.empty)

let exists_subterm pred t = Seq.exists pred (subterms t)

let count_heads f t =
  Seq.fold_left
    (fun acc s -> if Symbol.equal s.head f then acc + 1 else acc)
    0 (subterms t)

let symbols t =
  Seq.fold_left (fun acc s -> Symbol.Set.add s.head acc) Symbol.Set.empty
    (subterms t)

let rec well_formed sg t =
  (match Signature.arity sg t.head with
  | Some n -> n = List.length t.args
  | None -> false)
  && List.for_all (well_formed sg) t.args

let rec map_leaves f t =
  match t.args with
  | [] -> f t.head
  | args -> app t.head (List.map (map_leaves f) args)

let rec pp ppf t =
  match t.args with
  | [] -> Symbol.pp ppf t.head
  | args ->
      Format.fprintf ppf "%a(%a)" Symbol.pp t.head
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        args

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
