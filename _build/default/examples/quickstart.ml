(* Quickstart: define operators, a pattern and a rule with the combinator
   DSL, build a small computation graph, and run the rewrite pass.

     dune exec examples/quickstart.exe

   This is figure 1 of the paper end to end: MatMul(x, Trans(y)) over
   rank-2 f32 tensors is rewritten to the fused cuBLAS xyT kernel. *)

open Pypm

let () =
  (* 1. Operators: the analogue of the @op declarations. The standard
     vocabulary already declares MatMul, Trans and the cuBLAS kernels. *)
  let env = Std_ops.make () in

  (* 2. A pattern and its rule, via the embedded DSL (@pattern / @rule). *)
  let session = Dsl.create () in
  Dsl.pattern session "MMxyT" ~params:[ "x"; "y" ] (fun b ->
      Dsl.assert_ b Dsl.(attr "x" "shape.rank" ==. i 2);
      Dsl.assert_ b Dsl.(attr "y" "shape.rank" ==. i 2);
      let yt = Dsl.app "Trans" [ Dsl.v "y" ] in
      Dsl.app "MatMul" [ Dsl.v "x"; yt ]);
  Dsl.rule session "cublasrule" ~for_:"MMxyT" ~params:[ "x"; "y" ]
    [
      ( Some Dsl.(attr "x" "eltType" ==. dtype "f32" &&. (attr "y" "eltType" ==. dtype "f32")),
        Dsl.app "cublasMM_xyT_f32" [ Dsl.v "x"; Dsl.v "y" ] );
      ( Some Dsl.(attr "x" "eltType" ==. dtype "i8" &&. (attr "y" "eltType" ==. dtype "i8")),
        Dsl.app "cublasMM_xyT_i8" [ Dsl.v "x"; Dsl.v "y" ] );
    ];
  let program =
    match Dsl.program session ~sg:env.Std_ops.sg with
    | Ok p -> p
    | Error errs ->
        List.iter (Format.eprintf "%a@." Elaborate.pp_error) errs;
        exit 1
  in
  Format.printf "== elaborated program ==@.%a@." Program.pp program;

  (* 3. A computation graph containing the pattern's shape. *)
  let g = Graph.create ~sg:env.Std_ops.sg ~infer:env.Std_ops.infer () in
  let f32 s = Ty.make Dtype.F32 s in
  let x = Graph.input g ~name:"x" (f32 [ 128; 256 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 512; 256 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ mm ] ];
  Format.printf "== before ==@.%a@.@." Graph.pp g;

  (* 4. Run the greedy rewrite pass to fixpoint. *)
  let before = Exec.graph_cost Cost.a6000 g in
  let stats = Pass.run program g in
  let after = Exec.graph_cost Cost.a6000 g in
  Format.printf "== after ==@.%a@.@." Graph.pp g;
  Format.printf "%a@." Pass.pp_stats stats;
  Printf.printf "simulated inference: %.4f ms -> %.4f ms (%.2fx)\n"
    (before *. 1e3) (after *. 1e3)
    (Exec.speedup ~baseline:before ~optimized:after)
