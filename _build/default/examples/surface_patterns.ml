(* The full frontend/backend toolchain of section 2.4: parse a textual
   pattern file, elaborate it to the core calculus, serialize it to a
   portable pattern binary, reload the binary into a fresh "backend", and
   run the rewrite pass.

     dune exec examples/surface_patterns.exe *)

open Pypm

let pattern_file = "examples/patterns.pypm"

let () =
  (* frontend: parse + elaborate + serialize *)
  let front_env = Std_ops.make () in
  let program =
    match Surface.load_file ~sg:front_env.Std_ops.sg pattern_file with
    | Ok p -> p
    | Error e ->
        Format.eprintf "%a@." Surface.pp_error e;
        exit 1
  in
  Format.printf "== elaborated from %s ==@.%a@." pattern_file Program.pp
    program;
  let binary = Codec.encode program in
  Printf.printf "serialized pattern binary: %d bytes\n\n" (String.length binary);

  (* backend: load the binary into a fresh environment and rewrite *)
  let env = Std_ops.make () in
  let program =
    match Codec.decode_into ~sg:env.Std_ops.sg binary with
    | Ok p -> p
    | Error e ->
        prerr_endline e;
        exit 1
  in
  let g = Graph.create ~sg:env.Std_ops.sg ~infer:env.Std_ops.infer () in
  let f32 s = Ty.make Dtype.F32 s in
  let x = Graph.input g ~name:"x" (f32 [ 64; 32 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 96; 32 ]) in
  (* Relu(Relu(Relu(MatMul(Trans(Trans(x)), Trans(w))))): all three
     patterns in the file have work to do *)
  let tt = Graph.add g Std_ops.trans [ Graph.add g Std_ops.trans [ x ] ] in
  let mm = Graph.add g Std_ops.matmul [ tt; Graph.add g Std_ops.trans [ w ] ] in
  let rec relus n acc =
    if n = 0 then acc else relus (n - 1) (Graph.add g Std_ops.relu [ acc ])
  in
  Graph.set_outputs g [ relus 3 mm ];
  Format.printf "== before ==@.%a@.@." Graph.pp g;
  let stats = Pass.run program g in
  Format.printf "== after ==@.%a@.@." Graph.pp g;
  Format.printf "%a@." Pass.pp_stats stats
