examples/equality_saturation.mli:
