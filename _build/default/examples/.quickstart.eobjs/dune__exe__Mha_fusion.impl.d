examples/mha_fusion.ml: Corpus Cost Exec Format Graph List Option Pass Printf Program Pypm Std_ops Zoo
