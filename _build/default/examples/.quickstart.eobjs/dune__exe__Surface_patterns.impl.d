examples/surface_patterns.ml: Codec Dtype Format Graph Pass Printf Program Pypm Std_ops String Surface Ty
