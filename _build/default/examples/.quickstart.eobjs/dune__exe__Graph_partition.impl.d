examples/graph_partition.ml: Corpus Cost Exec Format Graph List Option Partition Printf Pypm Std_ops String Zoo
