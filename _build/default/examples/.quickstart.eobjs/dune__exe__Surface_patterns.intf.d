examples/surface_patterns.mli:
