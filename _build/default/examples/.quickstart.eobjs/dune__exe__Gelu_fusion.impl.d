examples/gelu_fusion.ml: Corpus Cost Exec Format Graph Option Pass Pattern Printf Program Pypm Std_ops Transformer
