examples/machine_trace.ml: Attrs Declarative Derivation Enumerate Format Guard List Machine Matcher Outcome Pattern Printf Pypm Signature Term
