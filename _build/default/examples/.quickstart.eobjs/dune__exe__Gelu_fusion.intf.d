examples/gelu_fusion.mli:
