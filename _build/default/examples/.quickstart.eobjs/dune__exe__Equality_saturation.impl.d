examples/equality_saturation.ml: Format List Pattern Pypm Saturate Signature Term
