examples/mha_fusion.mli:
