examples/quickstart.mli:
