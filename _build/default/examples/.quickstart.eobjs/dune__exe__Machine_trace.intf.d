examples/machine_trace.mli:
