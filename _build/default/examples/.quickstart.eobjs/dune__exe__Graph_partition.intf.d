examples/graph_partition.mli:
