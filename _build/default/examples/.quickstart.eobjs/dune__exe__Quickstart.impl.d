examples/quickstart.ml: Cost Dsl Dtype Elaborate Exec Format Graph List Pass Printf Program Pypm Std_ops Ty
