(* Directed graph partitioning (section 4.2): when no hand-written
   replacement exists, match-only patterns carve out regions known to be
   fusable and hand them to a compiler that builds the kernel just in time
   (here: simulated by collapsing the region into one fused node charged
   one launch and boundary-only memory traffic).

     dune exec examples/graph_partition.exe *)

open Pypm

let device = Cost.a6000

let partition_model name =
  let m = Option.get (Zoo.find name) in
  let env, g = m.Zoo.build () in
  let program = Corpus.partition_program env.Std_ops.sg in
  let regions = Partition.find program g in
  Printf.printf "%s: %d region(s)\n" name (List.length regions);
  List.iter
    (fun r ->
      Format.printf "  %a; ops: %s@." Partition.pp_region r
        (String.concat ", "
           (List.map (fun n -> n.Graph.op) r.Partition.interior)))
    regions;
  let before = Exec.graph_cost device g in
  let launches_before = (Exec.totals device g).Exec.launches in
  let fused =
    Partition.fuse_all
      ~annotate:(fun interior -> Cost.fused_attrs g interior)
      program g
  in
  let after = Exec.graph_cost device g in
  let launches_after = (Exec.totals device g).Exec.launches in
  (match Graph.validate g with
  | [] -> ()
  | errs -> List.iter prerr_endline errs);
  Printf.printf
    "  fused %d region(s): %.0f -> %.0f launches, %.4f -> %.4f ms (%.2fx)\n\n"
    (List.length fused) launches_before launches_after (before *. 1e3)
    (after *. 1e3)
    (Exec.speedup ~baseline:before ~optimized:after)

let () =
  print_endline
    "Figure 14's MatMulEpilog (extended with bias/scale links and conv\n\
     leaves) partitions models into JIT-fusable regions:\n";
  List.iter partition_model
    [ "conv-nano"; "vgg11-ish"; "resnet18-ish"; "pico"; "bert-tiny" ]
