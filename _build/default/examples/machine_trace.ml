(* A tour of the formal semantics (section 3): run the algorithmic
   semantics step by step on small examples and check its answers against
   the declarative semantics, the way the paper's soundness theorem
   relates them.

     dune exec examples/machine_trace.exe *)

open Pypm
module P = Pattern

let sg =
  let s = Signature.create () in
  ignore (Signature.declare s ~arity:2 "f");
  ignore (Signature.declare s ~arity:1 "g");
  List.iter (fun c -> ignore (Signature.declare s ~arity:0 c)) [ "a"; "b" ];
  s

let interp = Attrs.structural ~sg

let show_run title p t =
  Format.printf "--- %s ---@." title;
  Format.printf "pattern: %a@.term:    %a@." P.pp p Term.pp t;
  let trace, outcome = Machine.run_trace ~interp p t in
  List.iteri
    (fun i r -> Printf.printf "  %2d. %s\n" (i + 1) (Machine.rule_name r))
    trace;
  Format.printf "outcome: %a@." Outcome.pp outcome;
  (match outcome with
  | Outcome.Matched (theta, phi) ->
      (* Theorem 2 (succ_sound): the machine's witness satisfies the
         declarative judgment, and the derivation checks. *)
      assert (Declarative.check ~interp p theta phi t);
      (match Derivation.derive ~interp p theta phi t with
      | Some d ->
          assert (Derivation.validate ~interp d);
          Format.printf "derivation (%d rule instances):@.%a@."
            (Derivation.size d) Derivation.pp d
      | None -> assert false)
  | Outcome.No_match ->
      (* fail_sound, relative to exhaustive enumeration *)
      let r = Enumerate.all ~interp p t in
      assert (r.Enumerate.witnesses = []);
      print_endline "enumeration agrees: no witness exists"
  | _ -> ());
  print_newline ()

let () =
  let a = Term.const "a" and b = Term.const "b" in
  let fab = Term.app "f" [ a; b ] in

  (* plain structural match *)
  show_run "P-Fun + P-Var" (P.app "f" [ P.var "x"; P.var "y" ]) fab;

  (* the paper's incompleteness example: left-eager alternates *)
  show_run "left-eager alternates (section 3.1.2)"
    (P.alt
       (P.app "f" [ P.var "x"; P.var "y" ])
       (P.app "f" [ P.var "y"; P.var "x" ]))
    fab;

  (* backtracking out of a failed alternate *)
  show_run "backtracking"
    (P.app "g" [ P.alt (P.const "b") (P.const "a") ])
    (Term.app "g" [ a ]);

  (* nonlinear failure *)
  show_run "nonlinear conflict" (P.app "f" [ P.var "x"; P.var "x" ]) fab;

  (* guards *)
  show_run "guarded pattern"
    (P.Guarded (P.var "x", Guard.Eq (Guard.Var_attr ("x", "size"), Guard.Const 3)))
    fab;

  (* recursion: the unary chain of figure 3 *)
  let chain =
    P.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ]
      (P.alt
         (P.fapp "F" [ P.call "P" [ "x"; "F" ] ])
         (P.fapp "F" [ P.var "x" ]))
  in
  show_run "recursive chain (figure 3)" chain
    (Term.app "g" [ Term.app "g" [ a ] ]);

  (* the machine and production matcher agree on everything above; show
     the step count difference on one example *)
  let p64 =
    let rec deep n = if n = 0 then P.var "x" else P.app "g" [ deep (n - 1) ] in
    deep 24
  in
  let t64 =
    let rec deep n = if n = 0 then a else Term.app "g" [ deep (n - 1) ] in
    deep 24
  in
  (match Machine.steps ~interp p64 t64 with
  | Some n -> Printf.printf "machine: %d small steps for the depth-24 chain\n" n
  | None -> ());
  ignore (Matcher.matches ~interp p64 t64);
  Printf.printf "matcher: %d node visits for the same match\n"
    (Matcher.last_visits ())
