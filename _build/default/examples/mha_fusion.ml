(* Multi-head attention fusion (section 4.1): recognize the
   softmax(alpha Q K^T) V subgraph that AI frontends emit for attention and
   replace it with the fused FMHA kernel; then fuse the MLP epilogs too.
   Prints a per-configuration cost table like the paper's evaluation.

     dune exec examples/mha_fusion.exe *)

open Pypm

let device = Cost.a6000

let compile model_name config_name program_of =
  match Zoo.find model_name with
  | None -> failwith ("unknown model " ^ model_name)
  | Some m ->
      let env, g = m.Zoo.build () in
      let baseline = Exec.graph_cost device g in
      let stats = Pass.run (program_of env.Std_ops.sg) g in
      let cost = Exec.graph_cost device g in
      let totals = Exec.totals device g in
      Printf.printf "  %-10s %8.4f ms  speedup %5.3fx  %4.0f launches  %3d rewrites\n"
        config_name (cost *. 1e3)
        (Exec.speedup ~baseline ~optimized:cost)
        totals.Exec.launches stats.Pass.total_rewrites

let () =
  List.iter
    (fun model ->
      Printf.printf "%s:\n" model;
      compile model "baseline" (fun sg -> Program.make ~sg []);
      compile model "fmha" Corpus.fmha_program;
      compile model "epilog" Corpus.epilog_program;
      compile model "both" Corpus.both_program;
      print_newline ())
    [ "bert-tiny"; "bert-base"; "gpt2-small"; "relu-former-m" ];
  (* peek at what the FMHA rewrite does to one attention block *)
  let m = Option.get (Zoo.find "pico") in
  let env, g = m.Zoo.build () in
  Format.printf "pico before:@.%a@.@." Graph.pp g;
  ignore (Pass.run (Corpus.both_program env.Std_ops.sg) g);
  Format.printf "pico after:@.%a@." Graph.pp g
