(* The GELU story from section 2.1 of the paper: the same conceptual
   operation is spelled differently across models — Div(x, 2) in some
   HuggingFace transformers, Mul(x, 0.5) in others — and pattern
   alternates let one pattern cover both.

     dune exec examples/gelu_fusion.exe *)

open Pypm

let build_transformer variant seed =
  let env = Std_ops.make () in
  let cfg =
    Transformer.config "demo" ~layers:2 ~hidden:128 ~seq:64 ~batch:4
      ~activation:(Transformer.Act_gelu variant) ~seed
  in
  (env, Transformer.build env cfg)

let describe env g label =
  Printf.printf "%-28s %3d nodes, %d Div, %d Mul, %d Erf, %d Gelu\n" label
    (Graph.live_count g)
    (Graph.count_op g Std_ops.div)
    (Graph.count_op g Std_ops.mul)
    (Graph.count_op g Std_ops.erf)
    (Graph.count_op g Std_ops.gelu);
  ignore env

let run variant name =
  let env, g = build_transformer variant 42 in
  describe env g (name ^ " (before)");
  let before = Exec.graph_cost Cost.a6000 g in
  let stats = Pass.run (Corpus.epilog_program env.Std_ops.sg) g in
  let after = Exec.graph_cost Cost.a6000 g in
  describe env g (name ^ " (after)");
  let gelu_stats = Option.get (Pass.find_pattern_stats stats "Gelu") in
  Printf.printf
    "  GELU pattern: %d matches, %d rewrites; epilog fused %d; %.4f ms -> \
     %.4f ms (%.2fx)\n\n"
    gelu_stats.Pass.matches gelu_stats.Pass.rewrites
    (Graph.count_op g Std_ops.gemm_bias_epilog_gelu)
    (before *. 1e3) (after *. 1e3)
    (Exec.speedup ~baseline:before ~optimized:after)

let () =
  print_endline
    "Both GELU spellings found in the HuggingFace transformers (paper,";
  print_endline
    "section 2.1) are covered by one pattern with alternates:\n";
  run Transformer.Div_two "Div(x, 2) spelling";
  run Transformer.Mul_half "Mul(x, 0.5) spelling";
  (* show the pattern itself *)
  let entry = Corpus.gelu_fuse in
  Format.printf "the core pattern (alternates as ||):@.%a@."
    Pattern.pp entry.Program.pattern
