(* Tests for the combinator frontend and its elaboration to the core
   calculus: alternates, aliases, locals, operator variables, match
   constraints, pattern-call inlining, recursion, and error reporting. *)

open Pypm
module P = Pattern

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let base_sg () =
  let s = Signature.create () in
  ignore (Signature.declare s ~arity:2 "MatMul" ~op_class:"matmul");
  ignore (Signature.declare s ~arity:1 "Trans" ~op_class:"transpose");
  ignore (Signature.declare s ~arity:1 ~op_class:"unary_pointwise" "Relu");
  ignore (Signature.declare s ~arity:2 ~op_class:"binary_pointwise" "Div");
  ignore (Signature.declare s ~arity:2 ~op_class:"binary_pointwise" "Mul");
  ignore (Signature.declare s ~arity:2 "cublasMM_xyT_f32" ~op_class:"fused_kernel");
  s

let elaborate session =
  match Dsl.program session ~sg:(base_sg ()) with
  | Ok p -> p
  | Error errs ->
      Alcotest.failf "elaboration failed: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Elaborate.pp_error) errs))

let expect_error session =
  match Dsl.program session ~sg:(base_sg ()) with
  | Ok _ -> Alcotest.fail "expected an elaboration error"
  | Error errs -> errs

let entry program name =
  match Program.entry program name with
  | Some e -> e
  | None -> Alcotest.failf "missing pattern %s" name

(* matching helper over the structural interpretation *)
let interp = Pypm_testutil.Fixtures.interp

let matches pattern t =
  Matcher.matches ~interp pattern t |> Outcome.is_matched

(* ------------------------------------------------------------------ *)
(* Figure 1 via the DSL                                                *)
(* ------------------------------------------------------------------ *)

let figure1_session () =
  let s = Dsl.create () in
  Dsl.pattern s "MMxyT" ~params:[ "x"; "y" ] (fun b ->
      Dsl.assert_ b Dsl.(attr "x" "size" <=. i 100);
      let yt = Dsl.app "Trans" [ Dsl.v "y" ] in
      Dsl.app "MatMul" [ Dsl.v "x"; yt ]);
  Dsl.rule s "cublasrule" ~for_:"MMxyT" ~params:[ "x"; "y" ]
    [ (None, Dsl.app "cublasMM_xyT_f32" [ Dsl.v "x"; Dsl.v "y" ]) ];
  s

let test_figure1_shape () =
  let p = elaborate (figure1_session ()) in
  let e = entry p "MMxyT" in
  (* Guarded(MatMul(x, Trans(y)), guard) *)
  (match e.Program.pattern with
  | P.Guarded (P.App ("MatMul", [ P.Var "x"; P.App ("Trans", [ P.Var "y" ]) ]), _) -> ()
  | other -> Alcotest.failf "unexpected pattern %s" (P.to_string other));
  checki "one rule" 1 (List.length e.Program.rules);
  match (List.hd e.Program.rules).Rule.rhs with
  | Rule.Rapp ("cublasMM_xyT_f32", [ Rule.Rvar "x"; Rule.Rvar "y" ]) -> ()
  | _ -> Alcotest.fail "unexpected rhs"

let test_alias_inlined () =
  let p = elaborate (figure1_session ()) in
  let e = entry p "MMxyT" in
  (* the alias yt introduced no binder and no variable named yt *)
  checkb "no yt variable" false
    (Symbol.Set.mem "yt" (P.free_vars e.Program.pattern))

(* ------------------------------------------------------------------ *)
(* Alternates and inlined calls (figure 2 style)                       *)
(* ------------------------------------------------------------------ *)

let half_session () =
  let s = Dsl.create () in
  Dsl.pattern s "Half" ~params:[ "x" ] (fun _ ->
      Dsl.app "Div" [ Dsl.v "x"; Dsl.lit 2.0 ]);
  Dsl.pattern s "Half" ~params:[ "x" ] (fun _ ->
      Dsl.app "Mul" [ Dsl.v "x"; Dsl.lit 0.5 ]);
  s

let test_alternates_fold_in_order () =
  let p = elaborate (half_session ()) in
  match (entry p "Half").Program.pattern with
  | P.Alt (P.App ("Div", _), P.App ("Mul", _)) -> ()
  | other -> Alcotest.failf "unexpected alternates %s" (P.to_string other)

let test_call_inlining () =
  let s = half_session () in
  Dsl.pattern s "DoubleHalf" ~params:[ "x" ] (fun _ ->
      Dsl.app "Mul" [ Dsl.app "Half" [ Dsl.v "x" ]; Dsl.app "Half" [ Dsl.v "x" ] ]);
  let p = elaborate s in
  let e = entry p "DoubleHalf" in
  (* the call was inlined: no Call/Mu nodes remain *)
  checki "no mus" 0 (P.count_mus e.Program.pattern);
  checki "alternates preserved twice" 2 (P.count_alts e.Program.pattern);
  (* matching: Mul(Div(a,2), Mul(a,0.5)) — distinct alternates per copy *)
  let lit v = Term.const (Graph.lit_symbol v) in
  let a = Term.const "a_leaf" in
  let t =
    Term.app "Mul"
      [ Term.app "Div" [ a; lit 2.0 ]; Term.app "Mul" [ a; lit 0.5 ] ]
  in
  checkb "mixed spellings match" true (matches e.Program.pattern t)

let test_inline_alt_combinator () =
  let s = half_session () in
  Dsl.pattern s "InlineHalf" ~params:[ "x" ] (fun _ ->
      Dsl.(app "Div" [ v "x"; lit 2.0 ] |. app "Mul" [ v "x"; lit 0.5 ]));
  let p = elaborate s in
  let e = entry p "InlineHalf" in
  (match e.Program.pattern with
  | P.Alt (P.App ("Div", _), P.App ("Mul", _)) -> ()
  | other -> Alcotest.failf "unexpected shape %s" (P.to_string other));
  let lit v = Term.const (Graph.lit_symbol v) in
  let a = Term.const "a_leaf" in
  checkb "matches either spelling" true
    (matches e.Program.pattern (Term.app "Mul" [ a; lit 0.5 ]))

let test_call_with_complex_arg () =
  (* Half(Trans(y)): non-variable argument gets a fresh var + constraint *)
  let s = half_session () in
  Dsl.pattern s "HalfOfTrans" ~params:[ "y" ] (fun _ ->
      Dsl.app "Half" [ Dsl.app "Trans" [ Dsl.v "y" ] ]);
  let p = elaborate s in
  let e = entry p "HalfOfTrans" in
  let lit v = Term.const (Graph.lit_symbol v) in
  let a = Term.const "a_leaf" in
  let good = Term.app "Div" [ Term.app "Trans" [ a ]; lit 2.0 ] in
  let bad = Term.app "Div" [ a; lit 2.0 ] in
  checkb "matches trans arg" true (matches e.Program.pattern good);
  checkb "rejects non-trans arg" false (matches e.Program.pattern bad)

(* ------------------------------------------------------------------ *)
(* Recursion (figure 3)                                                *)
(* ------------------------------------------------------------------ *)

let test_recursion_becomes_mu () =
  let s = Dsl.create () in
  Dsl.pattern s "Chain" ~params:[ "x" ] (fun _ ->
      Dsl.app "Relu" [ Dsl.app "Chain" [ Dsl.v "x" ] ]);
  Dsl.pattern s "Chain" ~params:[ "x" ] (fun _ -> Dsl.app "Relu" [ Dsl.v "x" ]);
  let p = elaborate s in
  let e = entry p "Chain" in
  (match e.Program.pattern with
  | P.Mu (m, [ "x" ]) ->
      Alcotest.(check string) "name" "Chain" m.P.pname;
      Alcotest.(check (list string)) "formals" [ "x" ] m.P.formals
  | other -> Alcotest.failf "expected a mu, got %s" (P.to_string other));
  let rec tower n =
    if n = 0 then Term.const "a_leaf" else Term.app "Relu" [ tower (n - 1) ]
  in
  checkb "tower matches" true (matches e.Program.pattern (tower 4));
  checkb "leaf alone does not" false
    (matches e.Program.pattern (Term.const "a_leaf"))

let test_function_variable_param () =
  (* figure 3 verbatim: the f parameter used in operator position *)
  let s = Dsl.create () in
  Dsl.pattern s "UChain" ~params:[ "x"; "f" ] (fun _ ->
      Dsl.app "f" [ Dsl.app "UChain" [ Dsl.v "x"; Dsl.v "f" ] ]);
  Dsl.pattern s "UChain" ~params:[ "x"; "f" ] (fun _ ->
      Dsl.app "f" [ Dsl.v "x" ]);
  let p = elaborate s in
  let e = entry p "UChain" in
  let rec tower n =
    if n = 0 then Term.const "a_leaf" else Term.app "Trans" [ tower (n - 1) ]
  in
  checkb "any unary tower matches" true (matches e.Program.pattern (tower 3))

(* ------------------------------------------------------------------ *)
(* Locals, opvars, constraints (figures 4 and 14)                      *)
(* ------------------------------------------------------------------ *)

let test_locals_and_constraints () =
  (* pattern P(x): y = var(); x <= Relu(y); return x *)
  let s = Dsl.create () in
  Dsl.pattern s "RootCapture" ~params:[ "x" ] (fun b ->
      let y = Dsl.var_ b "y" in
      Dsl.constrain b "x" (Dsl.app "Relu" [ y ]);
      Dsl.v "x");
  let p = elaborate s in
  let e = entry p "RootCapture" in
  (match e.Program.pattern with
  | P.Exists ("y", P.Constr (P.Var "x", P.App ("Relu", [ P.Var "y" ]), "x")) -> ()
  | other -> Alcotest.failf "unexpected shape %s" (P.to_string other));
  let t = Term.app "Relu" [ Term.const "a_leaf" ] in
  checkb "matches relu" true (matches e.Program.pattern t);
  checkb "rejects leaf" false (matches e.Program.pattern (Term.const "a_leaf"))

let test_opvar_with_class_guard () =
  (* figure 14's body form *)
  let s = Dsl.create () in
  Dsl.pattern s "AnyPw" ~params:[ "x" ] (fun b ->
      Dsl.opvar b "UnaryOp" ~arity:1;
      Dsl.assert_ b Dsl.(attr "UnaryOp" "op_class" ==. opclass "unary_pointwise");
      Dsl.app "UnaryOp" [ Dsl.v "x" ]);
  let sg = base_sg () in
  match Dsl.program s ~sg with
  | Error errs ->
      Alcotest.failf "elaboration failed: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" Elaborate.pp_error) errs))
  | Ok p -> (
      let e = entry p "AnyPw" in
      match e.Program.pattern with
      | P.Exists_f ("UnaryOp", P.Guarded (P.Fapp ("UnaryOp", [ P.Var "x" ]), _)) ->
          (* matches Relu (unary_pointwise) but not Trans (transpose) *)
          let interp = Attrs.structural ~sg in
          let m t = Matcher.matches ~interp e.Program.pattern t |> Outcome.is_matched in
          checkb "relu matches" true (m (Term.app "Relu" [ Term.const "a_leaf" ]));
          checkb "trans rejected" false (m (Term.app "Trans" [ Term.const "a_leaf" ]))
      | other -> Alcotest.failf "unexpected shape %s" (P.to_string other))

(* ------------------------------------------------------------------ *)
(* Rule lowering                                                       *)
(* ------------------------------------------------------------------ *)

let test_rule_branches () =
  let s = Dsl.create () in
  Dsl.pattern s "AnyMM" ~params:[ "x"; "y" ] (fun _ ->
      Dsl.app "MatMul" [ Dsl.v "x"; Dsl.v "y" ]);
  Dsl.rule s "dispatch" ~for_:"AnyMM" ~params:[ "x"; "y" ]
    ~asserts:[ Dsl.(attr "x" "size" <=. i 1000) ]
    [
      (Some Dsl.(attr "x" "size" ==. i 1), Dsl.app "Trans" [ Dsl.v "x" ]);
      (None, Dsl.app "Relu" [ Dsl.v "y" ]);
    ];
  let p = elaborate s in
  let e = entry p "AnyMM" in
  checki "two rules from two branches" 2 (List.length e.Program.rules);
  let r1 = List.nth e.Program.rules 0 and r2 = List.nth e.Program.rules 1 in
  checkb "first branch keeps its guard" true (r1.Rule.guard <> Guard.True);
  checkb "names distinct" true (r1.Rule.rule_name <> r2.Rule.rule_name)

let test_rule_fvar_rhs () =
  let s = Dsl.create () in
  Dsl.pattern s "AnyF" ~params:[ "x"; "f" ] (fun _ -> Dsl.app "f" [ Dsl.v "x" ]);
  Dsl.rule s "rebuild" ~for_:"AnyF" ~params:[ "x"; "f" ]
    [ (None, Dsl.app "f" [ Dsl.app "Relu" [ Dsl.v "x" ] ]) ];
  let p = elaborate s in
  match (List.hd (entry p "AnyF").Program.rules).Rule.rhs with
  | Rule.Rfapp ("f", [ Rule.Rapp ("Relu", [ Rule.Rvar "x" ]) ]) -> ()
  | _ -> Alcotest.fail "function variable rhs mis-lowered"

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

let test_error_unknown_op () =
  let s = Dsl.create () in
  Dsl.pattern s "Bad" ~params:[ "x" ] (fun _ -> Dsl.app "NoSuchOp" [ Dsl.v "x" ]);
  ignore (expect_error s)

let test_error_bad_arity () =
  let s = Dsl.create () in
  Dsl.pattern s "Bad" ~params:[ "x" ] (fun _ -> Dsl.app "MatMul" [ Dsl.v "x" ]);
  ignore (expect_error s)

let test_error_unbound_name () =
  let s = Dsl.create () in
  Dsl.pattern s "Bad" ~params:[ "x" ] (fun _ -> Dsl.v "undefined_name");
  ignore (expect_error s)

let test_error_alternate_arity_mismatch () =
  let s = Dsl.create () in
  Dsl.pattern s "Bad" ~params:[ "x" ] (fun _ -> Dsl.v "x");
  Dsl.pattern s "Bad" ~params:[ "x"; "y" ] (fun _ -> Dsl.v "x");
  ignore (expect_error s)

let test_error_mutual_recursion () =
  let s = Dsl.create () in
  Dsl.pattern s "A" ~params:[ "x" ] (fun _ -> Dsl.app "Relu" [ Dsl.app "B" [ Dsl.v "x" ] ]);
  Dsl.pattern s "B" ~params:[ "x" ] (fun _ -> Dsl.app "Relu" [ Dsl.app "A" [ Dsl.v "x" ] ]);
  let errs = expect_error s in
  checkb "mentions mutual recursion" true
    (List.exists
       (fun (e : Elaborate.error) ->
         String.length e.Elaborate.message > 0
         && String.lowercase_ascii e.Elaborate.message
            |> fun m ->
            String.length m >= 8 && String.sub m 0 8 = "mutually")
       errs)

let test_error_rule_unknown_pattern () =
  let s = Dsl.create () in
  Dsl.pattern s "Good" ~params:[ "x" ] (fun _ -> Dsl.v "x");
  Dsl.rule s "r" ~for_:"Missing" ~params:[ "x" ] [ (None, Dsl.v "x") ];
  ignore (expect_error s)

let test_error_rule_calls_pattern () =
  let s = Dsl.create () in
  Dsl.pattern s "Good" ~params:[ "x" ] (fun _ -> Dsl.v "x");
  Dsl.rule s "r" ~for_:"Good" ~params:[ "x" ]
    [ (None, Dsl.app "Good" [ Dsl.v "x" ]) ];
  ignore (expect_error s)

let () =
  Alcotest.run "dsl"
    [
      ( "figure1",
        [
          Alcotest.test_case "pattern and rule shape" `Quick test_figure1_shape;
          Alcotest.test_case "aliases inlined" `Quick test_alias_inlined;
        ] );
      ( "calls",
        [
          Alcotest.test_case "alternates in order" `Quick
            test_alternates_fold_in_order;
          Alcotest.test_case "call inlining" `Quick test_call_inlining;
          Alcotest.test_case "complex call argument" `Quick
            test_call_with_complex_arg;
          Alcotest.test_case "inline alternation" `Quick
            test_inline_alt_combinator;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "mu construction" `Quick test_recursion_becomes_mu;
          Alcotest.test_case "function-variable param" `Quick
            test_function_variable_param;
        ] );
      ( "binders",
        [
          Alcotest.test_case "locals + constraints" `Quick
            test_locals_and_constraints;
          Alcotest.test_case "opvar + class guard" `Quick
            test_opvar_with_class_guard;
        ] );
      ( "rules",
        [
          Alcotest.test_case "branches" `Quick test_rule_branches;
          Alcotest.test_case "fvar rhs" `Quick test_rule_fvar_rhs;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown op" `Quick test_error_unknown_op;
          Alcotest.test_case "bad arity" `Quick test_error_bad_arity;
          Alcotest.test_case "unbound name" `Quick test_error_unbound_name;
          Alcotest.test_case "alternate arity" `Quick
            test_error_alternate_arity_mismatch;
          Alcotest.test_case "mutual recursion" `Quick
            test_error_mutual_recursion;
          Alcotest.test_case "rule for unknown pattern" `Quick
            test_error_rule_unknown_pattern;
          Alcotest.test_case "rule calls pattern" `Quick
            test_error_rule_calls_pattern;
        ] );
    ]
