(* Tests for the pattern-binary codec: round trips (unit and property),
   header validation, and corruption detection. *)

open Pypm
module P = Pattern
module F = Pypm_testutil.Fixtures

let checkb = Alcotest.(check bool)

let program_equal (a : Program.t) (b : Program.t) =
  List.length a.Program.entries = List.length b.Program.entries
  && List.for_all2
       (fun (x : Program.entry) (y : Program.entry) ->
         String.equal x.Program.pname y.Program.pname
         && P.equal x.Program.pattern y.Program.pattern
         && List.length x.Program.rules = List.length y.Program.rules
         && List.for_all2
              (fun (r : Rule.t) (s : Rule.t) ->
                String.equal r.Rule.rule_name s.Rule.rule_name
                && String.equal r.Rule.pattern_name s.Rule.pattern_name
                && r.Rule.guard = s.Rule.guard
                && r.Rule.rhs = s.Rule.rhs)
              x.Program.rules y.Program.rules)
       a.Program.entries b.Program.entries

let roundtrip program =
  match Codec.decode (Codec.encode program) with
  | Ok p -> p
  | Error e -> Alcotest.failf "decode failed: %s" e

(* ------------------------------------------------------------------ *)
(* Unit round trips                                                    *)
(* ------------------------------------------------------------------ *)

let test_empty_program () =
  let sg = Signature.create () in
  let p = Program.make ~sg [] in
  checkb "empty round trip" true (program_equal p (roundtrip p))

let test_corpus_programs_roundtrip () =
  let env = Std_ops.make () in
  List.iter
    (fun p -> checkb "corpus round trip" true (program_equal p (roundtrip p)))
    [
      Corpus.fmha_program env.Std_ops.sg;
      Corpus.epilog_program env.Std_ops.sg;
      Corpus.both_program env.Std_ops.sg;
      Corpus.partition_program env.Std_ops.sg;
      Corpus.full_program env.Std_ops.sg;
      Program.make ~sg:env.Std_ops.sg [ Corpus.mmxyt_aligned ];
    ]

let test_signature_travels () =
  let env = Std_ops.make () in
  let p = Corpus.fmha_program env.Std_ops.sg in
  let decoded = roundtrip p in
  (* the decoded program reconstructs operator declarations *)
  checkb "MatMul decl" true (Signature.mem decoded.Program.sg Std_ops.matmul);
  Alcotest.(check (option int))
    "arity preserved" (Some 2)
    (Signature.arity decoded.Program.sg Std_ops.matmul);
  Alcotest.(check (option string))
    "class preserved" (Some "fused_kernel")
    (Signature.op_class decoded.Program.sg Std_ops.fmha)

let test_decoded_program_still_rewrites () =
  (* serialize, reload into a fresh environment, run the pass: the paper's
     actual deployment path (frontend serializes, DLCB loads) *)
  let env = Std_ops.make () in
  let bytes = Codec.encode (Corpus.both_program env.Std_ops.sg) in
  (* fresh backend environment *)
  let env2 = Std_ops.make () in
  let p =
    match Codec.decode_into ~sg:env2.Std_ops.sg bytes with
    | Ok p -> p
    | Error e -> Alcotest.failf "decode: %s" e
  in
  let cfg = Transformer.config "t" ~layers:2 ~hidden:64 ~seq:16 in
  let g = Transformer.build env2 cfg in
  let stats = Pass.run p g in
  checkb "rewrites fired from the deserialized program" true
    (stats.Pass.total_rewrites >= 4);
  Alcotest.(check int) "fmha nodes" 2 (Graph.count_op g Std_ops.fmha)

let test_file_roundtrip () =
  let env = Std_ops.make () in
  let p = Corpus.fmha_program env.Std_ops.sg in
  let path = Filename.temp_file "pypm" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.to_file path p;
      match Codec.of_file path with
      | Ok q -> checkb "file round trip" true (program_equal p q)
      | Error e -> Alcotest.failf "of_file: %s" e)

(* ------------------------------------------------------------------ *)
(* Corruption detection                                                *)
(* ------------------------------------------------------------------ *)

let encoded () =
  let env = Std_ops.make () in
  Codec.encode (Corpus.fmha_program env.Std_ops.sg)

let expect_error name bytes =
  match Codec.decode bytes with
  | Ok _ -> Alcotest.failf "%s: corrupt input accepted" name
  | Error msg -> checkb (name ^ " mentions offset/cause") true (String.length msg > 0)

let test_bad_magic () =
  let b = Bytes.of_string (encoded ()) in
  Bytes.set b 0 'X';
  expect_error "magic" (Bytes.to_string b)

let test_flipped_payload_byte () =
  let s = encoded () in
  let b = Bytes.of_string s in
  let mid = String.length s - 3 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
  expect_error "checksum" (Bytes.to_string b)

let test_truncated () =
  let s = encoded () in
  expect_error "truncated" (String.sub s 0 (String.length s / 2));
  expect_error "empty" "";
  expect_error "just magic" "PYPM"

let test_trailing_garbage () =
  expect_error "trailing" (encoded () ^ "extra")

(* ------------------------------------------------------------------ *)
(* Property: random patterns round trip                                *)
(* ------------------------------------------------------------------ *)

let prop_pattern_roundtrip =
  F.qtest ~count:500 "random patterns round trip" F.Gen.pattern P.to_string
    (fun pat ->
      let sg = Signature.create () in
      ignore (Signature.declare sg ~arity:2 "f");
      ignore (Signature.declare sg ~arity:1 "g");
      ignore (Signature.declare sg ~arity:3 "h");
      List.iter (fun c -> ignore (Signature.declare sg ~arity:0 c)) [ "a"; "b"; "c" ];
      let p =
        Program.make ~sg [ { Program.pname = "t"; pattern = pat; rules = [] } ]
      in
      match Codec.decode (Codec.encode p) with
      | Ok q -> (
          match q.Program.entries with
          | [ e ] -> P.equal e.Program.pattern pat
          | _ -> false)
      | Error _ -> false)

(* the encoder is deterministic: decode . encode is the identity up to
   re-encoding (byte-identical) *)
let prop_encode_canonical =
  F.qtest ~count:300 "encode . decode . encode is byte-stable" F.Gen.pattern
    P.to_string (fun pat ->
      let sg = Signature.create () in
      ignore (Signature.declare sg ~arity:2 "f");
      ignore (Signature.declare sg ~arity:1 "g");
      ignore (Signature.declare sg ~arity:3 "h");
      List.iter (fun c -> ignore (Signature.declare sg ~arity:0 c)) [ "a"; "b"; "c" ];
      let p =
        Program.make ~sg [ { Program.pname = "t"; pattern = pat; rules = [] } ]
      in
      let bytes = Codec.encode p in
      match Codec.decode bytes with
      | Ok q -> String.equal bytes (Codec.encode q)
      | Error _ -> false)

let prop_decode_never_raises =
  (* decoding arbitrary bytes returns Error, never raises *)
  F.qtest ~count:500 "decode is total"
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s -> Printf.sprintf "%S" s)
    (fun s ->
      match Codec.decode s with Ok _ -> true | Error _ -> true)

let () =
  Alcotest.run "codec"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "corpus programs" `Quick
            test_corpus_programs_roundtrip;
          Alcotest.test_case "signature travels" `Quick test_signature_travels;
          Alcotest.test_case "deserialized program rewrites" `Quick
            test_decoded_program_still_rewrites;
          Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "checksum" `Quick test_flipped_payload_byte;
          Alcotest.test_case "truncation" `Quick test_truncated;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_garbage;
        ] );
      ( "properties",
        [ prop_pattern_roundtrip; prop_encode_canonical; prop_decode_never_raises ] );
    ]
