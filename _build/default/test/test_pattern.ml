(* Tests for the pattern AST: constructors, free variables, renaming,
   mu-unfolding, well-formedness diagnostics. *)

open Pypm_term
open Pypm_pattern
open Pypm_testutil
module F = Fixtures
module P = Pattern

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let set_contains name set x = checkb name true (Symbol.Set.mem x set)
let set_lacks name set x = checkb name false (Symbol.Set.mem x set)

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let test_alts_order () =
  (* alts [p1; p2; p3] must be Alt (Alt (p1, p2), p3): left-nested keeps
     definition order under the machine's left-eager strategy. *)
  let p1 = P.var "x" and p2 = P.var "y" and p3 = P.var "z" in
  match P.alts [ p1; p2; p3 ] with
  | P.Alt (P.Alt (a, b), c) ->
      checkb "p1 first" true (P.equal a p1);
      checkb "p2 second" true (P.equal b p2);
      checkb "p3 third" true (P.equal c p3)
  | _ -> Alcotest.fail "wrong alternate shape"

let test_alts_empty () =
  match P.alts [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty alternates accepted"

let test_guarded_empty () =
  let p = P.var "x" in
  checkb "no-op" true (P.equal (P.guarded p []) p)

let test_mu_arity () =
  match P.mu "P" ~formals:[ "x"; "y" ] ~actuals:[ "x" ] (P.var "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mu arity mismatch accepted"

(* ------------------------------------------------------------------ *)
(* Size and counters                                                   *)
(* ------------------------------------------------------------------ *)

let test_size () =
  let p = P.app "f" [ P.var "x"; P.alt (P.var "y") (P.const "a") ] in
  checki "size" 5 (P.size p);
  checki "alts" 1 (P.count_alts p);
  checki "guards" 0 (P.count_guards p)

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)
(* ------------------------------------------------------------------ *)

let test_free_vars_basic () =
  let p = P.app "f" [ P.var "x"; P.var "y" ] in
  let fv = P.free_vars p in
  set_contains "x free" fv "x";
  set_contains "y free" fv "y";
  checki "two free" 2 (Symbol.Set.cardinal fv)

let test_free_vars_exists () =
  let p = P.exists "x" (P.app "f" [ P.var "x"; P.var "y" ]) in
  let fv = P.free_vars p in
  set_lacks "x bound" fv "x";
  set_contains "y free" fv "y"

let test_free_vars_guard () =
  let g = Guard.Eq (Guard.Var_attr ("z", "size"), Guard.Const 1) in
  let p = P.Guarded (P.var "x", g) in
  set_contains "guard var free" (P.free_vars p) "z"

let test_free_vars_constr () =
  let p = P.constr (P.var "x") (P.const "a") "w" in
  set_contains "constraint target free" (P.free_vars p) "w"

let test_free_vars_mu () =
  (* mu P(x). g(P(x)) || x  applied to [y]: x bound, y free *)
  let body = P.alt (P.app "g" [ P.call "P" [ "x" ] ]) (P.var "x") in
  let p = P.mu "P" ~formals:[ "x" ] ~actuals:[ "y" ] body in
  let fv = P.free_vars p in
  set_lacks "formal bound" fv "x";
  set_contains "actual free" fv "y"

let test_free_fvars () =
  let p = P.fapp "F" [ P.var "x" ] in
  set_contains "F free" (P.free_fvars p) "F";
  set_lacks "x not an fvar" (P.free_fvars p) "x"

let test_free_calls () =
  let body = P.app "g" [ P.call "P" [ "x" ] ] in
  set_contains "free call" (P.free_calls body) "P";
  let closed = P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] body in
  set_lacks "bound call" (P.free_calls closed) "P"

(* ------------------------------------------------------------------ *)
(* Renaming                                                            *)
(* ------------------------------------------------------------------ *)

let test_rename_basic () =
  let p = P.app "f" [ P.var "x"; P.var "y" ] in
  let p' = P.rename [ ("x", "u") ] p in
  checkb "renamed" true (P.equal p' (P.app "f" [ P.var "u"; P.var "y" ]))

let test_rename_respects_binder () =
  let p = P.exists "x" (P.app "f" [ P.var "x"; P.var "y" ]) in
  let p' = P.rename [ ("x", "u") ] p in
  (* the bound x must not be renamed *)
  checkb "binder shields" true (P.equal p' p)

let test_rename_avoids_capture () =
  (* exists x. f(x, y) with y -> x must NOT become exists x. f(x, x). *)
  let p = P.exists "x" (P.app "f" [ P.var "x"; P.var "y" ]) in
  match P.rename [ ("y", "x") ] p with
  | P.Exists (x', P.App (_, [ P.Var v1; P.Var v2 ])) ->
      checkb "bound occurrence follows the freshened binder" true
        (String.equal v1 x');
      Alcotest.(check string) "free y renamed to x" "x" v2;
      checkb "binder freshened away from x" false (String.equal x' "x")
  | _ -> Alcotest.fail "unexpected shape"

let test_rename_fvar () =
  let p = P.fapp "F" [ P.var "x" ] in
  match P.rename [ ("F", "G") ] p with
  | P.Fapp ("G", _) -> ()
  | _ -> Alcotest.fail "fvar not renamed"

let test_rename_guard () =
  let g = Guard.Eq (Guard.Var_attr ("x", "size"), Guard.Const 1) in
  let p = P.Guarded (P.var "x", g) in
  match P.rename [ ("x", "z") ] p with
  | P.Guarded (P.Var "z", Guard.Eq (Guard.Var_attr ("z", "size"), _)) -> ()
  | _ -> Alcotest.fail "guard vars must be renamed with pattern vars"

(* ------------------------------------------------------------------ *)
(* Mu unfolding (P-Mu)                                                 *)
(* ------------------------------------------------------------------ *)

let unary_chain =
  (* mu P(x,F). F(P(x,F)) || F(x), the UnaryChain pattern of figure 3 *)
  let body =
    P.alt
      (P.fapp "F" [ P.call "P" [ "x"; "F" ] ])
      (P.fapp "F" [ P.var "x" ])
  in
  fun actuals -> P.mu "P" ~formals:[ "x"; "F" ] ~actuals body

let test_unfold_unary_chain () =
  match unary_chain [ "y"; "G" ] with
  | P.Mu (m, ys) -> (
      match P.unfold m ys with
      | P.Alt (P.Fapp ("G", [ P.Mu (m', inner_ys) ]), P.Fapp ("G", [ P.Var "y" ]))
        ->
          (* the recursive call P(x,F) becomes P(y,G) under [y/x, G/F], so
             the inner mu is applied to the renamed actuals *)
          Alcotest.(check (list string)) "inner actuals" [ "y"; "G" ] inner_ys;
          checkb "same body" true (P.equal m'.body m.body)
      | p -> Alcotest.failf "unexpected unfolding %s" (P.to_string p))
  | _ -> Alcotest.fail "not a mu"

let test_unfold_is_capture_safe () =
  (* mu P(x). exists y. f(x, y) applied to [y]: the actual y must not be
     captured by the existential binder. *)
  let body = P.exists "y" (P.app "f" [ P.var "x"; P.var "y" ]) in
  match P.mu "P" ~formals:[ "x" ] ~actuals:[ "y" ] body with
  | P.Mu (m, ys) -> (
      match P.unfold m ys with
      | P.Exists (y', P.App (_, [ P.Var v1; P.Var v2 ])) ->
          Alcotest.(check string) "formal renamed to actual" "y" v1;
          checkb "existential freshened" false (String.equal y' "y");
          checkb "bound occurrence follows" true (String.equal v2 y')
      | p -> Alcotest.failf "unexpected unfolding %s" (P.to_string p))
  | _ -> Alcotest.fail "not a mu"

let test_unfold_shadowing () =
  (* An inner mu rebinding the same name shadows the outer one. *)
  let inner_body = P.var "z" in
  let inner = P.mu "P" ~formals:[ "z" ] ~actuals:[ "x" ] inner_body in
  let body = P.app "g" [ inner ] in
  match P.mu "P" ~formals:[ "x" ] ~actuals:[ "w" ] body with
  | P.Mu (m, ys) -> (
      match P.unfold m ys with
      | P.App ("g", [ P.Mu (m', [ "w" ]) ]) ->
          checkb "inner mu untouched" true (P.equal m'.body inner_body)
      | p -> Alcotest.failf "unexpected unfolding %s" (P.to_string p))
  | _ -> Alcotest.fail "not a mu"

(* ------------------------------------------------------------------ *)
(* Root heads                                                          *)
(* ------------------------------------------------------------------ *)

let heads_opt = Alcotest.(option (slist string compare))

let root_heads p =
  Option.map Symbol.Set.elements (P.root_heads p)

let test_root_heads () =
  Alcotest.check heads_opt "app" (Some [ "f" ])
    (root_heads (P.app "f" [ P.var "x"; P.var "y" ]));
  Alcotest.check heads_opt "var" None (root_heads (P.var "x"));
  Alcotest.check heads_opt "fapp" None (root_heads (P.fapp "F" [ P.var "x" ]));
  Alcotest.check heads_opt "alt unions" (Some [ "f"; "g" ])
    (root_heads (P.alt (P.app "f" [ P.var "x"; P.var "y" ]) (P.app "g" [ P.var "x" ])));
  Alcotest.check heads_opt "alt with var poisons" None
    (root_heads (P.alt (P.app "g" [ P.var "x" ]) (P.var "y")));
  Alcotest.check heads_opt "through binders" (Some [ "g" ])
    (root_heads (P.exists "y" (P.Guarded (P.app "g" [ P.var "y" ], Guard.True))));
  Alcotest.check heads_opt "constr looks left" (Some [ "g" ])
    (root_heads (P.constr (P.app "g" [ P.var "x" ]) (P.var "z") "x"))

let test_root_heads_mu () =
  (* ReluChain-style mu: both alternates rooted at g *)
  let body = P.alt (P.app "g" [ P.call "P" [ "x" ] ]) (P.app "g" [ P.var "x" ]) in
  Alcotest.check heads_opt "mu body" (Some [ "g" ])
    (root_heads (P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] body))

(* soundness: if root_heads excludes the term's head, no match exists *)
let prop_root_heads_sound =
  F.qtest ~count:800 "root_heads is a sound filter"
    QCheck2.Gen.(pair F.Gen.pattern F.Gen.term)
    (fun (p, t) ->
      Printf.sprintf "%s vs %s" (P.to_string p)
        (Pypm_term.Term.to_string t))
    (fun (p, t) ->
      match P.root_heads p with
      | None -> true
      | Some heads ->
          Symbol.Set.mem (Pypm_term.Term.head t) heads
          ||
          let open Pypm_semantics in
          not
            (Outcome.is_matched
               (Matcher.matches ~interp:F.interp ~fuel:50_000 p t)))

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

let errs p = List.length (Wf.errors (Wf.check F.sg p))
let warns p = List.length (Wf.warnings (Wf.check F.sg p))

let test_wf_clean () =
  let p = P.app "f" [ P.var "x"; P.app "g" [ P.var "y" ] ] in
  checki "no errors" 0 (errs p);
  checki "no warnings" 0 (warns p)

let test_wf_arity () =
  checki "arity error" 1 (errs (P.app "f" [ P.var "x" ]))

let test_wf_undeclared () =
  checki "undeclared error" 1 (errs (P.const "nosuch"))

let test_wf_unbound_call () =
  checki "unbound call" 1 (errs (P.call "Q" [ "x" ]))

let test_wf_fvar_arity () =
  let p = P.app "f" [ P.fapp "F" [ P.var "x" ]; P.fapp "F" [ P.var "x"; P.var "y" ] ] in
  checkb "fvar arity warning" true (warns p >= 1)

let test_wf_useless_exists () =
  checkb "useless existential warns" true
    (warns (P.exists "w" (P.var "x")) >= 1)

let test_wf_no_base_case () =
  let body = P.app "g" [ P.call "P" [ "x" ] ] in
  let p = P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] body in
  checkb "missing base case warns" true (warns p >= 1);
  checki "still no error" 0 (errs p)

let test_wf_base_case_ok () =
  match unary_chain [ "x"; "F" ] with
  | p -> checki "unary chain clean" 0 (errs p)

let test_wf_check_exn () =
  match Wf.check_exn F.sg (P.app "f" [ P.var "x" ]) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "check_exn accepted an arity violation"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_rename_id =
  F.qtest "identity renaming is identity" F.Gen.pattern P.to_string (fun p ->
      P.equal (P.rename [] p) p)

let prop_rename_fresh_involutive =
  (* Renaming to a fresh name and back gives an alpha-equal pattern; since
     our generator avoids '#' names, renaming x->tmp->x is literal identity
     when no binder interferes. Weaker but checkable: free variable sets
     transport along the renaming. *)
  F.qtest "renaming transports free variables" F.Gen.pattern P.to_string
    (fun p ->
      let p' = P.rename [ ("x", "fresh_v") ] p in
      let fv = P.free_vars p and fv' = P.free_vars p' in
      if Symbol.Set.mem "x" fv then
        Symbol.Set.mem "fresh_v" fv' && not (Symbol.Set.mem "x" fv')
      else Symbol.Set.equal fv fv')

let prop_size_positive =
  F.qtest "pattern size is positive" F.Gen.pattern P.to_string (fun p ->
      P.size p >= 1)

let () =
  Alcotest.run "pattern"
    [
      ( "constructors",
        [
          Alcotest.test_case "alts order" `Quick test_alts_order;
          Alcotest.test_case "alts empty" `Quick test_alts_empty;
          Alcotest.test_case "guarded empty" `Quick test_guarded_empty;
          Alcotest.test_case "mu arity" `Quick test_mu_arity;
          Alcotest.test_case "size/counters" `Quick test_size;
        ] );
      ( "free-vars",
        [
          Alcotest.test_case "basic" `Quick test_free_vars_basic;
          Alcotest.test_case "exists binds" `Quick test_free_vars_exists;
          Alcotest.test_case "guard vars" `Quick test_free_vars_guard;
          Alcotest.test_case "constraint target" `Quick test_free_vars_constr;
          Alcotest.test_case "mu binds formals" `Quick test_free_vars_mu;
          Alcotest.test_case "fvars" `Quick test_free_fvars;
          Alcotest.test_case "free calls" `Quick test_free_calls;
        ] );
      ( "rename",
        [
          Alcotest.test_case "basic" `Quick test_rename_basic;
          Alcotest.test_case "respects binder" `Quick test_rename_respects_binder;
          Alcotest.test_case "avoids capture" `Quick test_rename_avoids_capture;
          Alcotest.test_case "fvar" `Quick test_rename_fvar;
          Alcotest.test_case "guard" `Quick test_rename_guard;
        ] );
      ( "unfold",
        [
          Alcotest.test_case "unary chain" `Quick test_unfold_unary_chain;
          Alcotest.test_case "capture safe" `Quick test_unfold_is_capture_safe;
          Alcotest.test_case "shadowing" `Quick test_unfold_shadowing;
        ] );
      ( "root-heads",
        [
          Alcotest.test_case "basic" `Quick test_root_heads;
          Alcotest.test_case "mu" `Quick test_root_heads_mu;
          prop_root_heads_sound;
        ] );
      ( "wf",
        [
          Alcotest.test_case "clean" `Quick test_wf_clean;
          Alcotest.test_case "arity" `Quick test_wf_arity;
          Alcotest.test_case "undeclared" `Quick test_wf_undeclared;
          Alcotest.test_case "unbound call" `Quick test_wf_unbound_call;
          Alcotest.test_case "fvar arity" `Quick test_wf_fvar_arity;
          Alcotest.test_case "useless exists" `Quick test_wf_useless_exists;
          Alcotest.test_case "no base case" `Quick test_wf_no_base_case;
          Alcotest.test_case "base case ok" `Quick test_wf_base_case_ok;
          Alcotest.test_case "check_exn" `Quick test_wf_check_exn;
        ] );
      ( "properties",
        [ prop_rename_id; prop_rename_fresh_involutive; prop_size_positive ] );
    ]
