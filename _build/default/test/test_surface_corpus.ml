(* End-to-end validation of the surface language at full scale: the entire
   evaluation corpus written in examples/corpus.pypm must reproduce the
   built-in OCaml corpus rewrite for rewrite on the model zoos. *)

open Pypm

let checki = Alcotest.(check int)

let corpus_path =
  (* tests run from the build sandbox; locate the source tree's copy *)
  let candidates =
    [
      "examples/corpus.pypm";
      "../examples/corpus.pypm";
      "../../examples/corpus.pypm";
      "../../../examples/corpus.pypm";
      Filename.concat (Sys.getenv_opt "DUNE_SOURCEROOT" |> Option.value ~default:".")
        "examples/corpus.pypm";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "cannot locate examples/corpus.pypm"

let load_surface_program env =
  match Surface.load_file ~sg:env.Std_ops.sg corpus_path with
  | Ok p -> p
  | Error e -> Alcotest.failf "corpus.pypm failed to load: %a" Surface.pp_error e

let fused_counts g =
  List.map
    (fun op -> (op, Graph.count_op g op))
    [
      Std_ops.fmha;
      Std_ops.gemm_bias_epilog_relu;
      Std_ops.gemm_bias_epilog_gelu;
      Std_ops.gemm_epilog_relu;
      Std_ops.gemm_epilog_gelu;
      Std_ops.conv_bias_relu;
      Std_ops.gelu;
    ]

let compare_on_model name =
  let m = Option.get (Zoo.find name) in
  (* built-in corpus *)
  let env1, g1 = m.Zoo.build () in
  let s1 = Pass.run (Corpus.both_program env1.Std_ops.sg) g1 in
  (* surface corpus *)
  let env2, g2 = m.Zoo.build () in
  let s2 = Pass.run (load_surface_program env2) g2 in
  checki (name ^ ": same number of rewrites") s1.Pass.total_rewrites
    s2.Pass.total_rewrites;
  List.iter2
    (fun (op, n1) (op2, n2) ->
      assert (String.equal op op2);
      checki (Printf.sprintf "%s: same %s count" name op) n1 n2)
    (fused_counts g1) (fused_counts g2);
  checki (name ^ ": same final size") (Graph.live_count g1) (Graph.live_count g2);
  Alcotest.(check (list string)) (name ^ ": valid") [] (Graph.validate g2)

let test_hf () = List.iter compare_on_model [ "bert-tiny"; "gpt2-nano"; "relu-former-s"; "femto" ]
let test_tv () = List.iter compare_on_model [ "conv-nano"; "resnet10-ish"; "vgg11-ish" ]
let test_mm () = List.iter compare_on_model [ "clip-pico"; "clip-small" ]

let test_roundtrips_through_binary () =
  (* surface corpus -> pattern binary -> reload -> same rewrites *)
  let m = Option.get (Zoo.find "bert-tiny") in
  let env, g = m.Zoo.build () in
  let bytes = Codec.encode (load_surface_program env) in
  let env2, g2 = m.Zoo.build () in
  let p =
    match Codec.decode_into ~sg:env2.Std_ops.sg bytes with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let s1 = Pass.run (load_surface_program env) g in
  let s2 = Pass.run p g2 in
  checki "same rewrites after the binary round trip" s1.Pass.total_rewrites
    s2.Pass.total_rewrites

let () =
  Alcotest.run "surface-corpus"
    [
      ( "equivalence",
        [
          Alcotest.test_case "transformer zoo" `Quick test_hf;
          Alcotest.test_case "vision zoo" `Quick test_tv;
          Alcotest.test_case "multimodal zoo" `Quick test_mm;
          Alcotest.test_case "binary round trip" `Quick
            test_roundtrips_through_binary;
        ] );
    ]
