(* Tests for the surface language: lexer, parser, and end-to-end loading
   of the paper's figures written in concrete syntax. *)

open Pypm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = Array.to_list (Lexer.tokenize src) |> List.map (fun s -> s.Lexer.tok)

let test_lex_punctuation () =
  Alcotest.(check bool)
    "all tokens" true
    (toks "( ) { } , ; . = == != < <= && || ! + - * ->"
    = Lexer.
        [
          LPAREN; RPAREN; LBRACE; RBRACE; COMMA; SEMI; DOT; EQ; EQEQ; NEQ; LT;
          LE; ANDAND; OROR; BANG; PLUS; MINUS; STAR; ARROW; EOF;
        ])

let test_lex_literals () =
  (match toks "42 2.5 \"hello\" name" with
  | [ Lexer.INT 42; Lexer.FLOAT f; Lexer.STRING "hello"; Lexer.IDENT "name"; Lexer.EOF ] ->
      Alcotest.(check (float 1e-9)) "float" 2.5 f
  | _ -> Alcotest.fail "wrong tokens");
  ()

let test_lex_comments () =
  checkb "line comments skipped" true
    (toks "a // comment\nb # another\nc" = Lexer.[ IDENT "a"; IDENT "b"; IDENT "c"; EOF ])

let test_lex_positions () =
  let spanned = Lexer.tokenize "a\n  b" in
  Alcotest.(check int) "b line" 2 spanned.(1).Lexer.pos.Lexer.line;
  Alcotest.(check int) "b col" 3 spanned.(1).Lexer.pos.Lexer.col

let test_lex_errors () =
  (match Lexer.tokenize "a $ b" with
  | exception Lexer.Lex_error (_, _) -> ()
  | _ -> Alcotest.fail "bad character accepted");
  match Lexer.tokenize "\"unterminated" with
  | exception Lexer.Lex_error (_, _) -> ()
  | _ -> Alcotest.fail "unterminated string accepted"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_pexp () =
  (match Parser.pexp "MatMul(x, Trans(y))" with
  | Ast.Eapp ("MatMul", [ Ast.Evar "x"; Ast.Eapp ("Trans", [ Ast.Evar "y" ]) ]) -> ()
  | _ -> Alcotest.fail "wrong pexp");
  match Parser.pexp "Div(x, 2)" with
  | Ast.Eapp ("Div", [ Ast.Evar "x"; Ast.Elit 2.0 ]) -> ()
  | _ -> Alcotest.fail "integer literal should become a float literal"

let test_parse_gform () =
  (match Parser.gform "x.shape.rank == 2 && y.eltType == f32" with
  | Ast.Gand
      ( Ast.Geq (Ast.Gattr ("x", [ "shape"; "rank" ]), Ast.Gint 2),
        Ast.Geq (Ast.Gattr ("y", [ "eltType" ]), Ast.Gdtype "f32") ) ->
      ()
  | _ -> Alcotest.fail "wrong gform");
  (* parenthesized formula vs parenthesized arithmetic *)
  (match Parser.gform "(x.rank == 2) || (x.rank == 3)" with
  | Ast.Gor (Ast.Geq _, Ast.Geq _) -> ()
  | _ -> Alcotest.fail "parenthesized formulas");
  match Parser.gform "(x.rank + 1) == 3" with
  | Ast.Geq (Ast.Gadd _, Ast.Gint 3) -> ()
  | _ -> Alcotest.fail "parenthesized arithmetic"

let test_parse_inline_alt () =
  (* inline alternation at the expression level *)
  (match Parser.pexp "Div(x, 2) || Mul(x, 0.5) || Mul(0.5, x)" with
  | Ast.Ealt (Ast.Ealt (Ast.Eapp ("Div", _), Ast.Eapp ("Mul", _)), Ast.Eapp ("Mul", _)) ->
      ()
  | _ -> Alcotest.fail "wrong alternation shape");
  (* parenthesized subexpressions *)
  match Parser.pexp "Relu((a || b))" with
  | Ast.Eapp ("Relu", [ Ast.Ealt (Ast.Evar "a", Ast.Evar "b") ]) -> ()
  | _ -> Alcotest.fail "parenthesized alternation"

let test_inline_alt_end_to_end () =
  (* the Half pattern written with inline alternation instead of repeated
     definitions: identical behavior *)
  let src =
    {|
      op Div(x, y) class "binary_pointwise";
      op Mul(x, y) class "binary_pointwise";
      pattern Half(x) { return Div(x, 2) || Mul(x, 0.5); }
    |}
  in
  let sg = Signature.create () in
  let p =
    match Surface.load ~sg src with
    | Ok p -> p
    | Error e -> Alcotest.failf "load: %a" Surface.pp_error e
  in
  let e = Option.get (Program.entry p "Half") in
  let lit v = Term.const (Graph.lit_symbol v) in
  let a = Term.const "leaf" in
  let interp = Attrs.structural ~sg in
  let m t = Outcome.is_matched (Matcher.matches ~interp e.Program.pattern t) in
  checkb "div spelling" true (m (Term.app "Div" [ a; lit 2.0 ]));
  checkb "mul spelling" true (m (Term.app "Mul" [ a; lit 0.5 ]));
  checkb "other rejected" false (m (Term.app "Mul" [ a; lit 0.25 ]))

let test_parse_mod () =
  match Parser.gform "x.dim1 % 8 == 0" with
  | Ast.Geq (Ast.Gmod (Ast.Gattr ("x", [ "dim1" ]), Ast.Gint 8), Ast.Gint 0) ->
      ()
  | _ -> Alcotest.fail "modulo form"

let test_parse_opclass () =
  match Parser.gform "F.op_class == opclass(\"unary_pointwise\")" with
  | Ast.Geq (Ast.Gattr ("F", [ "op_class" ]), Ast.Gopclass "unary_pointwise") -> ()
  | _ -> Alcotest.fail "opclass form"

let test_parse_errors_have_positions () =
  match Parser.program "pattern P(x) { return; }" with
  | exception Parser.Parse_error (pos, _) ->
      checkb "line recorded" true (pos.Lexer.line >= 1)
  | _ -> Alcotest.fail "bad program accepted"

(* ------------------------------------------------------------------ *)
(* End to end: the paper's figures in concrete syntax                  *)
(* ------------------------------------------------------------------ *)

let figure1_src =
  {|
    // Figure 1 of the paper, in the surface syntax.
    op MatMul(x, y) class "matmul";
    op Trans(x) class "transpose";
    op cublasMM_xyT_f32(x, y) class "fused_kernel";
    op cublasMM_xyT_i8(x, y) class "fused_kernel";

    pattern MMxyT(x, y) {
      assert x.shape.rank == 2;
      assert y.shape.rank == 2;
      yt = Trans(y);
      return MatMul(x, yt);
    }

    rule cublasrule for MMxyT(x, y) {
      assert x.eltType == f32 && y.eltType == f32
          || x.eltType == i8 && y.eltType == i8;
      return cublasMM_xyT_f32(x, y) when x.eltType == f32 && y.eltType == f32;
      return cublasMM_xyT_i8(x, y)  when x.eltType == i8  && y.eltType == i8;
    }
  |}

let load src =
  let sg = Signature.create () in
  match Surface.load ~sg src with
  | Ok p -> (sg, p)
  | Error e -> Alcotest.failf "load failed: %a" Surface.pp_error e

let test_figure1_loads () =
  let sg, p = load figure1_src in
  checkb "MatMul declared" true (Signature.mem sg "MatMul");
  Alcotest.(check (list string)) "one pattern" [ "MMxyT" ] (Program.pattern_names p);
  let e = Option.get (Program.entry p "MMxyT") in
  checki "two rules from two branches" 2 (List.length e.Program.rules)

let test_figure1_runs () =
  (* load against the std signature and run the rewrite on a real graph *)
  let env = Std_ops.make () in
  let p =
    match Surface.load ~sg:env.Std_ops.sg figure1_src with
    | Ok p -> p
    | Error e -> Alcotest.failf "load failed: %a" Surface.pp_error e
  in
  let g = Graph.create ~sg:env.Std_ops.sg ~infer:env.Std_ops.infer () in
  let x = Graph.input g ~name:"x" (Ty.make Dtype.F32 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (Ty.make Dtype.F32 [ 5; 3 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ mm ];
  let stats = Pass.run p g in
  checki "one rewrite" 1 stats.Pass.total_rewrites;
  checki "kernel node" 1 (Graph.count_op g "cublasMM_xyT_f32")

let figure2_src =
  {|
    op Mul(x, y) class "binary_pointwise";
    op Div(x, y) class "binary_pointwise";
    op Add(x, y) class "binary_pointwise";
    op Erf(x) class "unary_pointwise";
    op Gelu(x) class "unary_pointwise";

    pattern Half(x) { return Div(x, 2); }
    pattern Half(x) { return Mul(x, 0.5); }

    pattern Gelu(x) {
      return Mul(Half(x), Add(1, Erf(Div(x, 1.414))));
    }

    rule gelurule for Gelu(x) { return Gelu(x); }
  |}

let test_figure2_loads_and_matches () =
  let _sg, p = load figure2_src in
  let e = Option.get (Program.entry p "Gelu") in
  checkb "has alternates from Half" true (Pattern.count_alts e.Program.pattern >= 1);
  (* Mul(Div(a,2), Add(1, Erf(Div(a, 1.414)))) *)
  let lit v = Term.const (Graph.lit_symbol v) in
  let a = Term.const "leaf" in
  let t =
    Term.app "Mul"
      [
        Term.app "Div" [ a; lit 2.0 ];
        Term.app "Add" [ lit 1.0; Term.app "Erf" [ Term.app "Div" [ a; lit 1.414 ] ] ];
      ]
  in
  let interp = Pypm_testutil.Fixtures.interp in
  checkb "matches the div spelling" true
    (Outcome.is_matched (Matcher.matches ~interp e.Program.pattern t));
  (* the Mul(x, 0.5) spelling of Half *)
  let t2 =
    Term.app "Mul"
      [
        Term.app "Mul" [ a; lit 0.5 ];
        Term.app "Add" [ lit 1.0; Term.app "Erf" [ Term.app "Div" [ a; lit 1.414 ] ] ];
      ]
  in
  checkb "matches the mul spelling" true
    (Outcome.is_matched (Matcher.matches ~interp e.Program.pattern t2))

let figure3_src =
  {|
    pattern UnaryChain(x, f) { return f(UnaryChain(x, f)); }
    pattern UnaryChain(x, f) { return f(x); }
  |}

let test_figure3_loads_and_matches () =
  let sg = Signature.create () in
  ignore (Signature.declare sg ~arity:1 ~op_class:"unary_pointwise" "Relu");
  let p =
    match Surface.load ~sg figure3_src with
    | Ok p -> p
    | Error e -> Alcotest.failf "load failed: %a" Surface.pp_error e
  in
  let e = Option.get (Program.entry p "UnaryChain") in
  checkb "is a mu" true (Pattern.count_mus e.Program.pattern >= 1);
  let rec tower n =
    if n = 0 then Term.const "leaf" else Term.app "Relu" [ tower (n - 1) ]
  in
  let interp = Attrs.structural ~sg in
  checkb "tower of 5" true
    (Outcome.is_matched (Matcher.matches ~interp e.Program.pattern (tower 5)))

let figure4_src =
  {|
    pattern P(x, f, g) {
      y = var();
      x <= f(P(y, f, g));
      return x;
    }
    pattern P(x, f, g) {
      y = var();
      z = var();
      x <= g(P(y, f, g), P(z, f, g));
      return x;
    }
    pattern P(x, f, g) { return x; }
  |}

let test_figure4_loads_and_matches () =
  let sg = Signature.create () in
  ignore (Signature.declare sg ~arity:1 ~op_class:"unary_pointwise" "Relu");
  ignore (Signature.declare sg ~arity:2 ~op_class:"binary_pointwise" "Add");
  let p =
    match Surface.load ~sg figure4_src with
    | Ok p -> p
    | Error e -> Alcotest.failf "load failed: %a" Surface.pp_error e
  in
  let e = Option.get (Program.entry p "P") in
  let leaf = Term.const "leaf" in
  let tree =
    Term.app "Relu" [ Term.app "Add" [ Term.app "Relu" [ leaf ]; leaf ] ]
  in
  let interp = Attrs.structural ~sg in
  match Matcher.matches ~interp e.Program.pattern tree with
  | Outcome.Matched (theta, phi) ->
      (match Subst.find "x" theta with
      | Some t -> checkb "x is the root" true (Term.equal t tree)
      | None -> Alcotest.fail "x unbound");
      Alcotest.(check (option string)) "f" (Some "Relu") (Fsubst.find "f" phi);
      Alcotest.(check (option string)) "g" (Some "Add") (Fsubst.find "g" phi)
  | o -> Alcotest.failf "figure 4 should match: %s" (Outcome.to_string o)

let figure14_src =
  {|
    op MatMul(x, y) class "matmul";

    pattern PwSubgraph(x) {
      UnaryOp = Op(1, 1);
      assert UnaryOp.op_class == opclass("unary_pointwise");
      y = var();
      x <= UnaryOp(PwSubgraph(y));
      return x;
    }
    pattern PwSubgraph(x) { return x; }

    pattern MatMulEpilog(x) {
      a = var();
      b = var();
      x <= PwSubgraph(MatMul(a, b));
      return x;
    }
  |}

let fig14_sig () =
  let sg = Signature.create () in
  ignore (Signature.declare sg ~arity:1 ~op_class:"unary_pointwise" "Relu");
  ignore (Signature.declare sg ~arity:1 ~op_class:"unary_pointwise" "Gelu");
  ignore (Signature.declare sg ~arity:1 ~op_class:"softmax" "Softmax");
  sg

let load_fig14 sg src =
  match Surface.load ~sg src with
  | Ok p -> Option.get (Program.entry p "MatMulEpilog")
  | Error e -> Alcotest.failf "load failed: %a" Surface.pp_error e

(* Figure 14 exactly as printed. As written, PwSubgraph's parameter is the
   *root* of the chain (it is returned and constrained by the body), while
   MatMulEpilog passes the pattern MatMul(a, b) as that parameter — so the
   root itself must be the matmul and only the empty chain can match. We
   reproduce that behaviour faithfully and then test the evidently intended
   leaf-parameterized variant (which the corpus version uses). *)
let test_figure14_verbatim_is_degenerate () =
  let sg = fig14_sig () in
  let e = load_fig14 sg figure14_src in
  let interp = Attrs.structural ~sg in
  let m t = Outcome.is_matched (Matcher.matches ~interp e.Program.pattern t) in
  let a = Term.const "a_leaf" and b = Term.const "b_leaf" in
  let mm = Term.app "MatMul" [ a; b ] in
  checkb "bare matmul matches" true (m mm);
  checkb "a chained matmul does not (x is both root and matmul)" false
    (m (Term.app "Relu" [ mm ]))

let figure14_fixed_src =
  {|
    op MatMul(x, y) class "matmul";

    // leaf-parameterized chain: z names the innermost subgraph
    pattern PwSubgraph(z) {
      UnaryOp = Op(1, 1);
      assert UnaryOp.op_class == opclass("unary_pointwise");
      return UnaryOp(PwSubgraph(z));
    }
    pattern PwSubgraph(z) { return z; }

    pattern MatMulEpilog(x) {
      a = var();
      b = var();
      z = var();
      x <= PwSubgraph(z);
      z <= MatMul(a, b);
      return x;
    }
  |}

let test_figure14_fixed_matches_chains () =
  let sg = fig14_sig () in
  let e = load_fig14 sg figure14_fixed_src in
  let interp = Attrs.structural ~sg in
  let m t = Outcome.is_matched (Matcher.matches ~interp e.Program.pattern t) in
  let a = Term.const "a_leaf" and b = Term.const "b_leaf" in
  let mm = Term.app "MatMul" [ a; b ] in
  checkb "pointwise chain over a matmul" true
    (m (Term.app "Gelu" [ Term.app "Relu" [ mm ] ]));
  checkb "bare matmul (empty chain)" true (m mm);
  checkb "softmax breaks the chain" false
    (m (Term.app "Relu" [ Term.app "Softmax" [ mm ] ]));
  checkb "chain over a non-matmul leaf" false (m (Term.app "Relu" [ a ]))

let test_copying_rule () =
  let env = Std_ops.make () in
  let src =
    {|
      pattern ConvRelu(x, w, b) {
        c = var();
        c <= Conv2d(x, w, b);
        return Relu(c);
      }
      rule fuse for ConvRelu(x, w, b) copying c {
        return ConvBiasRelu(x, w, b);
      }
    |}
  in
  let p =
    match Surface.load ~sg:env.Std_ops.sg src with
    | Ok p -> p
    | Error e -> Alcotest.failf "load failed: %a" Surface.pp_error e
  in
  let g = Graph.create ~sg:env.Std_ops.sg ~infer:env.Std_ops.infer () in
  let f32 s = Ty.make Dtype.F32 s in
  let x = Graph.input g ~name:"x" (f32 [ 1; 3; 16; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 8; 3; 3; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 8; 1; 1 ]) in
  let c = Graph.add g Std_ops.conv2d ~attrs:[ ("stride", 2); ("pad", 1) ] [ x; w; b ] in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ c ] ];
  ignore (Pass.run p g);
  let fused =
    List.find (fun n -> Symbol.equal n.Graph.op Std_ops.conv_bias_relu)
      (Graph.live_nodes g)
  in
  Alcotest.(check (option int)) "stride copied through the surface rule"
    (Some 2)
    (List.assoc_opt "stride" fused.Graph.attrs)

(* pretty-printing an AST yields valid surface syntax that parses back to
   the same AST *)
let test_pp_roundtrip () =
  List.iter
    (fun src ->
      match Surface.parse src with
      | Error e -> Alcotest.failf "setup parse failed: %a" Surface.pp_error e
      | Ok ast -> (
          let printed = Format.asprintf "%a" Ast.pp_program ast in
          match Surface.parse printed with
          | Error e ->
              Alcotest.failf "re-parse of@.%s@.failed: %a" printed
                Surface.pp_error e
          | Ok ast' ->
              checkb "ASTs equal after round trip" true (ast = ast')))
    [ figure1_src; figure2_src; figure3_src; figure4_src; figure14_src;
      figure14_fixed_src ]

let write_tmp name content =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let test_include_resolution () =
  let base =
    write_tmp "pypm_inc_base.pypm"
      "op Trans(x) class \"transpose\";\n\
       pattern TT(x) { return Trans(Trans(x)); }\n\
       rule tt for TT(x) { return x; }\n"
  in
  let main =
    write_tmp "pypm_inc_main.pypm"
      (Printf.sprintf
         "include %S;\npattern JustT(x) { return Trans(x); }\n"
         (Filename.basename base))
  in
  let sg = Signature.create () in
  (match Surface.load_file ~sg main with
  | Ok p ->
      (* included patterns come first, then the includer's *)
      Alcotest.(check (list string))
        "order" [ "TT"; "JustT" ]
        (Program.pattern_names p);
      checkb "included op declared" true (Signature.mem sg "Trans")
  | Error e -> Alcotest.failf "include load failed: %a" Surface.pp_error e);
  Sys.remove base;
  Sys.remove main

let test_include_is_idempotent () =
  (* diamond: two files include the same base; its patterns appear once *)
  let base =
    write_tmp "pypm_diam_base.pypm"
      "op Relu(x) class \"unary_pointwise\";\n\
       pattern R(x) { return Relu(x); }\n"
  in
  let mid =
    write_tmp "pypm_diam_mid.pypm"
      (Printf.sprintf "include %S;\n" (Filename.basename base))
  in
  let main =
    write_tmp "pypm_diam_main.pypm"
      (Printf.sprintf "include %S;\ninclude %S;\ninclude %S;\n"
         (Filename.basename base) (Filename.basename mid)
         (Filename.basename base))
  in
  let sg = Signature.create () in
  (match Surface.load_file ~sg main with
  | Ok p ->
      Alcotest.(check (list string)) "one copy" [ "R" ] (Program.pattern_names p)
  | Error e -> Alcotest.failf "diamond load failed: %a" Surface.pp_error e);
  List.iter Sys.remove [ base; mid; main ]

let test_include_cycle_detected () =
  let a_path = Filename.concat (Filename.get_temp_dir_name ()) "pypm_cyc_a.pypm" in
  let b_path = Filename.concat (Filename.get_temp_dir_name ()) "pypm_cyc_b.pypm" in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  write a_path (Printf.sprintf "include %S;\n" (Filename.basename b_path));
  write b_path (Printf.sprintf "include %S;\n" (Filename.basename a_path));
  let sg = Signature.create () in
  (match Surface.load_file ~sg a_path with
  | Error (Surface.Syntax (_, msg)) ->
      checkb "mentions a cycle" true
        (String.length msg >= 5)
  | Error e -> Alcotest.failf "wrong error: %a" Surface.pp_error e
  | Ok _ -> Alcotest.fail "cycle accepted");
  List.iter Sys.remove [ a_path; b_path ]

let test_syntax_error_reported () =
  let sg = Signature.create () in
  match Surface.load ~sg "pattern P(x { return x; }" with
  | Error (Surface.Syntax (_, _)) -> ()
  | Error e -> Alcotest.failf "wrong error kind: %a" Surface.pp_error e
  | Ok _ -> Alcotest.fail "bad syntax accepted"

let test_elab_error_reported () =
  let sg = Signature.create () in
  match Surface.load ~sg "pattern P(x) { return NoSuchOp(x); }" with
  | Error (Surface.Elab _) -> ()
  | Error e -> Alcotest.failf "wrong error kind: %a" Surface.pp_error e
  | Ok _ -> Alcotest.fail "unknown operator accepted"

let () =
  Alcotest.run "surface"
    [
      ( "lexer",
        [
          Alcotest.test_case "punctuation" `Quick test_lex_punctuation;
          Alcotest.test_case "literals" `Quick test_lex_literals;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "pattern expressions" `Quick test_parse_pexp;
          Alcotest.test_case "guard formulas" `Quick test_parse_gform;
          Alcotest.test_case "opclass" `Quick test_parse_opclass;
          Alcotest.test_case "modulo" `Quick test_parse_mod;
          Alcotest.test_case "inline alternation" `Quick test_parse_inline_alt;
          Alcotest.test_case "inline alternation end to end" `Quick
            test_inline_alt_end_to_end;
          Alcotest.test_case "error positions" `Quick
            test_parse_errors_have_positions;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 1 loads" `Quick test_figure1_loads;
          Alcotest.test_case "figure 1 rewrites" `Quick test_figure1_runs;
          Alcotest.test_case "figure 2" `Quick test_figure2_loads_and_matches;
          Alcotest.test_case "figure 3" `Quick test_figure3_loads_and_matches;
          Alcotest.test_case "figure 4" `Quick test_figure4_loads_and_matches;
          Alcotest.test_case "figure 14 verbatim" `Quick
            test_figure14_verbatim_is_degenerate;
          Alcotest.test_case "figure 14 leaf-parameterized" `Quick
            test_figure14_fixed_matches_chains;
          Alcotest.test_case "copying rule" `Quick test_copying_rule;
        ] );
      ( "errors",
        [
          Alcotest.test_case "pretty-print round trip" `Quick
            test_pp_roundtrip;
          Alcotest.test_case "include resolution" `Quick
            test_include_resolution;
          Alcotest.test_case "diamond includes" `Quick
            test_include_is_idempotent;
          Alcotest.test_case "include cycles" `Quick
            test_include_cycle_detected;
          Alcotest.test_case "syntax errors" `Quick test_syntax_error_reported;
          Alcotest.test_case "elaboration errors" `Quick
            test_elab_error_reported;
        ] );
    ]
