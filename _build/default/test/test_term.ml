(* Unit and property tests for the term substrate. *)

open Pypm_term
open Pypm_testutil
module F = Fixtures

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Construction and basic accessors                                    *)
(* ------------------------------------------------------------------ *)

let test_const_size () =
  Alcotest.(check int) "const size" 1 (Term.size F.a);
  Alcotest.(check int) "const depth" 1 (Term.depth F.a)

let test_app_size () =
  let t = F.f2 (F.g1 F.a) F.b in
  Alcotest.(check int) "size f(g(a),b)" 4 (Term.size t);
  Alcotest.(check int) "depth f(g(a),b)" 3 (Term.depth t)

let test_head_args () =
  let t = F.f2 F.a F.b in
  check Alcotest.string "head" "f" (Term.head t);
  Alcotest.(check int) "nargs" 2 (List.length (Term.args t))

let test_equal_structural () =
  checkb "equal rebuilt" true (Term.equal (F.f2 F.a F.b) (F.f2 F.a F.b));
  checkb "unequal arg" false (Term.equal (F.f2 F.a F.b) (F.f2 F.a F.c));
  checkb "unequal head" false (Term.equal (F.g1 F.a) (Term.app "g" [ F.b ]))

let test_app_checked () =
  (match Term.app_checked F.sg "f" [ F.a; F.b ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "expected ok, got %s" e);
  (match Term.app_checked F.sg "f" [ F.a ] with
  | Ok _ -> Alcotest.fail "arity violation accepted"
  | Error _ -> ());
  match Term.app_checked F.sg "nosuch" [] with
  | Ok _ -> Alcotest.fail "undeclared operator accepted"
  | Error _ -> ()

let test_subterms_count () =
  let t = F.f2 (F.g1 F.a) (F.g1 F.a) in
  Alcotest.(check int)
    "subterm count equals size" (Term.size t)
    (List.length (List.of_seq (Term.subterms t)))

let test_subterms_preorder () =
  let t = F.f2 F.a F.b in
  let heads = List.map Term.head (List.of_seq (Term.subterms t)) in
  check Alcotest.(list string) "preorder" [ "f"; "a"; "b" ] heads

let test_count_heads () =
  let t = F.f2 (F.g1 (F.g1 F.a)) (F.g1 F.b) in
  Alcotest.(check int) "g count" 3 (Term.count_heads "g" t);
  Alcotest.(check int) "f count" 1 (Term.count_heads "f" t);
  Alcotest.(check int) "missing count" 0 (Term.count_heads "zz" t)

let test_symbols () =
  let t = F.f2 (F.g1 F.a) F.a in
  let syms = Term.symbols t in
  checkb "has f" true (Symbol.Set.mem "f" syms);
  checkb "has g" true (Symbol.Set.mem "g" syms);
  checkb "has a" true (Symbol.Set.mem "a" syms);
  Alcotest.(check int) "3 distinct" 3 (Symbol.Set.cardinal syms)

let test_well_formed () =
  checkb "wf" true (Term.well_formed F.sg (F.f2 F.a F.b));
  checkb "bad arity" false (Term.well_formed F.sg (Term.app "f" [ F.a ]));
  checkb "undeclared" false (Term.well_formed F.sg (Term.const "nosuch"))

let test_map_leaves () =
  let t = F.f2 F.a F.b in
  let t' = Term.map_leaves (fun s -> if s = "a" then F.g1 F.c else Term.const s) t in
  check F.term_testable "grafted" (F.f2 (F.g1 F.c) F.b) t'

let test_to_string () =
  check Alcotest.string "render" "f(g(a), b)" (Term.to_string (F.f2 (F.g1 F.a) F.b))

(* ------------------------------------------------------------------ *)
(* Substitutions                                                       *)
(* ------------------------------------------------------------------ *)

let test_subst_bind () =
  let s = Subst.empty in
  (match Subst.bind "x" F.a s with
  | Ok s' -> (
      checkb "mem" true (Subst.mem "x" s');
      match Subst.bind "x" F.a s' with
      | Ok s'' -> checkb "idempotent" true (Subst.equal s' s'')
      | Error _ -> Alcotest.fail "rebinding same term failed")
  | Error _ -> Alcotest.fail "fresh bind failed");
  match Subst.bind "x" F.b (Subst.add "x" F.a s) with
  | Ok _ -> Alcotest.fail "conflict accepted"
  | Error (`Conflict t) -> check F.term_testable "conflict term" F.a t

let test_subst_union () =
  let s1 = Subst.of_list [ ("x", F.a); ("y", F.b) ] in
  let s2 = Subst.of_list [ ("y", F.b); ("z", F.c) ] in
  (match Subst.union s1 s2 with
  | Ok u ->
      Alcotest.(check int) "union card" 3 (Subst.cardinal u);
      checkb "subset left" true (Subst.subset s1 u);
      checkb "subset right" true (Subst.subset s2 u)
  | Error _ -> Alcotest.fail "compatible union failed");
  let s3 = Subst.of_list [ ("x", F.b) ] in
  match Subst.union s1 s3 with
  | Ok _ -> Alcotest.fail "conflicting union accepted"
  | Error (`Conflict x) -> check Alcotest.string "conflict var" "x" x

let test_subst_subset_agree () =
  let s1 = Subst.of_list [ ("x", F.a) ] in
  let s2 = Subst.of_list [ ("x", F.a); ("y", F.b) ] in
  let s3 = Subst.of_list [ ("x", F.b) ] in
  checkb "subset" true (Subst.subset s1 s2);
  checkb "not subset" false (Subst.subset s2 s1);
  checkb "agree disjoint-ish" true (Subst.agree s1 s2);
  checkb "disagree" false (Subst.agree s1 s3)

let test_fsubst () =
  let p = Fsubst.empty in
  (match Fsubst.bind "F" "f" p with
  | Ok p' -> (
      match Fsubst.bind "F" "g" p' with
      | Ok _ -> Alcotest.fail "fsubst conflict accepted"
      | Error (`Conflict s) -> check Alcotest.string "conflict sym" "f" s)
  | Error _ -> Alcotest.fail "fresh fbind failed");
  let u = Fsubst.of_list [ ("F", "f"); ("G", "g") ] in
  checkb "domain" true (List.mem "F" (Fsubst.domain u))

(* ------------------------------------------------------------------ *)
(* Signature                                                           *)
(* ------------------------------------------------------------------ *)

let test_signature_redeclare () =
  let s = Signature.create () in
  ignore (Signature.declare s ~arity:2 "mm");
  (* identical redeclaration is fine *)
  ignore (Signature.declare s ~arity:2 "mm");
  Alcotest.(check int) "size" 1 (Signature.size s);
  match Signature.declare s ~arity:3 "mm" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conflicting redeclaration accepted"

let test_signature_classes () =
  let s = Signature.create () in
  ignore (Signature.declare s ~arity:1 ~op_class:"unary_pointwise" "Relu");
  ignore (Signature.declare s ~arity:1 ~op_class:"unary_pointwise" "Gelu");
  ignore (Signature.declare s ~arity:2 ~op_class:"matmul" "MatMul");
  check
    Alcotest.(list string)
    "class members" [ "Relu"; "Gelu" ]
    (Signature.symbols_of_class s "unary_pointwise");
  check
    Alcotest.(option string)
    "op_class" (Some "matmul")
    (Signature.op_class s "MatMul")

let test_signature_union () =
  let s1 = Signature.create () in
  ignore (Signature.declare s1 ~arity:1 "u");
  let s2 = Signature.create () in
  ignore (Signature.declare s2 ~arity:2 "v");
  let u = Signature.union s1 s2 in
  checkb "has u" true (Signature.mem u "u");
  checkb "has v" true (Signature.mem u "v");
  (* originals untouched *)
  checkb "s1 lacks v" false (Signature.mem s1 "v")

let test_signature_output_arity () =
  let s = Signature.create () in
  match Signature.declare s ~output_arity:0 ~arity:1 "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero output arity accepted"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_equal_refl =
  F.qtest "equal is reflexive" F.Gen.term Term.to_string (fun t ->
      Term.equal t t)

let prop_equal_hash =
  F.qtest "equal terms have equal hashes"
    QCheck2.Gen.(pair F.Gen.term F.Gen.term)
    (fun (t, u) -> Printf.sprintf "%s vs %s" (Term.to_string t) (Term.to_string u))
    (fun (t, u) -> (not (Term.equal t u)) || Term.hash t = Term.hash u)

let prop_compare_consistent =
  F.qtest "compare = 0 iff equal"
    QCheck2.Gen.(pair F.Gen.term F.Gen.term)
    (fun (t, u) -> Printf.sprintf "%s vs %s" (Term.to_string t) (Term.to_string u))
    (fun (t, u) -> Term.equal t u = (Term.compare t u = 0))

let prop_size_positive =
  F.qtest "size >= depth >= 1" F.Gen.term Term.to_string (fun t ->
      Term.size t >= Term.depth t && Term.depth t >= 1)

let prop_generated_wf =
  F.qtest "generator emits well-formed terms" F.Gen.term Term.to_string
    (Term.well_formed F.sg)

let prop_subterm_size =
  F.qtest "every proper subterm is smaller" F.Gen.term Term.to_string (fun t ->
      Seq.for_all
        (fun s -> Term.size s <= Term.size t)
        (Term.subterms t))

let () =
  Alcotest.run "term"
    [
      ( "term",
        [
          Alcotest.test_case "const size/depth" `Quick test_const_size;
          Alcotest.test_case "app size/depth" `Quick test_app_size;
          Alcotest.test_case "head/args" `Quick test_head_args;
          Alcotest.test_case "structural equality" `Quick test_equal_structural;
          Alcotest.test_case "checked construction" `Quick test_app_checked;
          Alcotest.test_case "subterm count" `Quick test_subterms_count;
          Alcotest.test_case "subterm preorder" `Quick test_subterms_preorder;
          Alcotest.test_case "count_heads" `Quick test_count_heads;
          Alcotest.test_case "symbols" `Quick test_symbols;
          Alcotest.test_case "well_formed" `Quick test_well_formed;
          Alcotest.test_case "map_leaves" `Quick test_map_leaves;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "subst",
        [
          Alcotest.test_case "bind/conflict" `Quick test_subst_bind;
          Alcotest.test_case "union" `Quick test_subst_union;
          Alcotest.test_case "subset/agree" `Quick test_subst_subset_agree;
          Alcotest.test_case "fsubst" `Quick test_fsubst;
        ] );
      ( "signature",
        [
          Alcotest.test_case "redeclare" `Quick test_signature_redeclare;
          Alcotest.test_case "classes" `Quick test_signature_classes;
          Alcotest.test_case "union" `Quick test_signature_union;
          Alcotest.test_case "output arity" `Quick test_signature_output_arity;
        ] );
      ( "properties",
        [
          prop_equal_refl;
          prop_equal_hash;
          prop_compare_consistent;
          prop_size_positive;
          prop_generated_wf;
          prop_subterm_size;
        ] );
    ]
