(* Tests for the algorithmic semantics (figures 17-18): individual
   transition rules, traces, terminal outcomes, and the paper's worked
   examples. *)

open Pypm_term
open Pypm_pattern
open Pypm_semantics
open Pypm_testutil
module F = Fixtures
module P = Pattern
module M = Machine
module G = Guard

let interp = F.interp
let step st = M.step ~interp ~policy:Outcome.Policy.Faithful st
let run ?policy ?fuel p t = M.run ~interp ?policy ?fuel p t

let expect_rule name expected = function
  | Some (r, st) ->
      Alcotest.(check string) name (M.rule_name expected) (M.rule_name r);
      st
  | None -> Alcotest.failf "%s: machine did not step" name

let running theta phi stk k = M.Running { theta; phi; stk; k }
let start k = running Subst.empty Fsubst.empty [] k

(* ------------------------------------------------------------------ *)
(* Individual transition rules                                         *)
(* ------------------------------------------------------------------ *)

let test_st_success () =
  let theta = Subst.of_list [ ("x", F.a) ] in
  match expect_rule "ST-Success" M.St_success (step (running theta Fsubst.empty [] [])) with
  | M.Success (theta', _) ->
      Alcotest.check F.subst_testable "kept theta" theta theta'
  | _ -> Alcotest.fail "expected success state"

let test_st_match_var_bind () =
  let st = start [ M.Match (P.var "x", F.a) ] in
  match expect_rule "ST-Match-Var-Bind" M.St_match_var_bind (step st) with
  | M.Running { theta; k; stk; _ } ->
      Alcotest.(check (option F.term_testable))
        "bound" (Some F.a) (Subst.find "x" theta);
      Alcotest.(check int) "k consumed" 0 (List.length k);
      Alcotest.(check int) "stack untouched" 0 (List.length stk)
  | _ -> Alcotest.fail "expected running state"

let test_st_match_var_bound () =
  let theta = Subst.of_list [ ("x", F.a) ] in
  let st = running theta Fsubst.empty [] [ M.Match (P.var "x", F.a) ] in
  match expect_rule "ST-Match-Var-Bound" M.St_match_var_bound (step st) with
  | M.Running { theta = theta'; _ } ->
      Alcotest.check F.subst_testable "theta unchanged" theta theta'
  | _ -> Alcotest.fail "expected running state"

let test_st_match_var_conflict_backtracks () =
  let theta = Subst.of_list [ ("x", F.a) ] in
  let saved = { M.bt_theta = Subst.empty; bt_phi = Fsubst.empty; bt_k = [] } in
  let st = running theta Fsubst.empty [ saved ] [ M.Match (P.var "x", F.b) ] in
  match expect_rule "ST-Match-Var-Conflict" M.St_match_var_conflict (step st) with
  | M.Running { theta = theta'; stk; k; _ } ->
      (* backtrack(frame :: stk) restores the frame *)
      Alcotest.check F.subst_testable "restored theta" Subst.empty theta';
      Alcotest.(check int) "stack popped" 0 (List.length stk);
      Alcotest.(check int) "restored k" 0 (List.length k)
  | _ -> Alcotest.fail "expected running state"

let test_st_match_var_conflict_empty_stack () =
  let theta = Subst.of_list [ ("x", F.a) ] in
  let st = running theta Fsubst.empty [] [ M.Match (P.var "x", F.b) ] in
  match expect_rule "backtrack([]) = failure" M.St_match_var_conflict (step st) with
  | M.Failure -> ()
  | _ -> Alcotest.fail "expected failure state"

let test_st_match_fun () =
  let p = P.app "f" [ P.var "x"; P.var "y" ] in
  let t = F.f2 F.a F.b in
  let st = start [ M.Match (p, t) ] in
  match expect_rule "ST-Match-Fun" M.St_match_fun (step st) with
  | M.Running { k; _ } ->
      (* k' = [match(p1,t1); match(p2,t2)] prepended *)
      Alcotest.(check int) "two obligations" 2 (List.length k);
      (match k with
      | [ M.Match (P.Var "x", t1); M.Match (P.Var "y", t2) ] ->
          Alcotest.check F.term_testable "first arg" F.a t1;
          Alcotest.check F.term_testable "second arg" F.b t2
      | _ -> Alcotest.fail "wrong obligations")
  | _ -> Alcotest.fail "expected running state"

let test_st_match_fun_conflict () =
  let st = start [ M.Match (P.app "g" [ P.var "x" ], F.a) ] in
  match expect_rule "ST-Match-Fun-Conflict" M.St_match_fun_conflict (step st) with
  | M.Failure -> ()
  | _ -> Alcotest.fail "expected failure"

let test_st_match_alt_pushes_frame () =
  let p = P.alt (P.const "a") (P.const "b") in
  let rest = [ M.Match (P.var "z", F.c) ] in
  let st = start (M.Match (p, F.b) :: rest) in
  match expect_rule "ST-Match-Alt" M.St_match_alt (step st) with
  | M.Running { stk = [ frame ]; k; _ } ->
      (* stack frame holds (theta, match(p', t) :: k) *)
      (match frame.M.bt_k with
      | M.Match (P.App ("b", []), t) :: rest' ->
          Alcotest.check F.term_testable "saved scrutinee" F.b t;
          Alcotest.(check int) "saved rest" 1 (List.length rest')
      | _ -> Alcotest.fail "frame continuation wrong");
      (match k with
      | M.Match (P.App ("a", []), _) :: _ -> ()
      | _ -> Alcotest.fail "left alternate not tried first")
  | _ -> Alcotest.fail "expected one frame"

let test_st_match_guard_defers () =
  let g = G.True in
  let st = start [ M.Match (P.Guarded (P.var "x", g), F.a) ] in
  match expect_rule "ST-Match-Guard" M.St_match_guard (step st) with
  | M.Running { k = [ M.Match (P.Var "x", _); M.Check_guard _ ]; _ } -> ()
  | M.Running { k; _ } ->
      Alcotest.failf "wrong continuation (%d entries)" (List.length k)
  | _ -> Alcotest.fail "expected running state"

let test_st_check_guard_continue () =
  let st = start [ M.Check_guard G.True ] in
  match expect_rule "ST-CheckGuard-Continue" M.St_check_guard_continue (step st) with
  | M.Running { k = []; _ } -> ()
  | _ -> Alcotest.fail "expected running with empty k"

let test_st_check_guard_backtrack () =
  let st = start [ M.Check_guard G.False ] in
  match expect_rule "ST-CheckGuard-Backtrack" M.St_check_guard_backtrack (step st) with
  | M.Failure -> ()
  | _ -> Alcotest.fail "expected failure"

let test_st_check_guard_stuck_faithful () =
  (* an open guard instance has no applicable rule in faithful mode *)
  let g = G.Eq (G.Var_attr ("q", "size"), G.Const 1) in
  let st = start [ M.Check_guard g ] in
  Alcotest.(check bool) "no step" true (step st = None)

let test_st_check_name () =
  let theta = Subst.of_list [ ("x", F.a) ] in
  let st = running theta Fsubst.empty [] [ M.Check_name "x" ] in
  (match expect_rule "ST-CheckName" M.St_check_name (step st) with
  | M.Running { k = []; _ } -> ()
  | _ -> Alcotest.fail "expected running");
  (* unbound: stuck in faithful mode *)
  let st' = start [ M.Check_name "x" ] in
  Alcotest.(check bool) "unbound is stuck" true (step st' = None)

let test_st_match_constr_action () =
  let theta = Subst.of_list [ ("x", F.f2 F.a F.b) ] in
  let st =
    running theta Fsubst.empty [] [ M.Match_constr (P.app "f" [ P.var "u"; P.var "v" ], "x") ]
  in
  match expect_rule "ST-MatchConstr" M.St_match_constr (step st) with
  | M.Running { k = [ M.Match (_, t) ]; _ } ->
      Alcotest.check F.term_testable "dispatches on theta(x)" (F.f2 F.a F.b) t
  | _ -> Alcotest.fail "expected match obligation"

let test_st_match_exists () =
  let st = start [ M.Match (P.exists "x" (P.var "x"), F.a) ] in
  match expect_rule "ST-Match-Exists" M.St_match_exists (step st) with
  | M.Running { k = [ M.Match _; M.Check_name "x" ]; _ } -> ()
  | _ -> Alcotest.fail "expected match followed by checkName"

let test_st_match_exists_f () =
  (* extension: ST-Match-Exists-F pushes checkFName after the body *)
  let st = start [ M.Match (P.exists_f "F" (P.fapp "F" [ P.var "x" ]), F.g1 F.a) ] in
  match expect_rule "ST-Match-Exists-F" M.St_match_exists_f (step st) with
  | M.Running { k = [ M.Match _; M.Check_fname "F" ]; _ } -> ()
  | _ -> Alcotest.fail "expected match followed by checkFName"

let test_st_check_fname () =
  let phi = Fsubst.of_list [ ("F", "g") ] in
  let st = running Subst.empty phi [] [ M.Check_fname "F" ] in
  (match expect_rule "ST-CheckFName" M.St_check_fname (step st) with
  | M.Running { k = []; _ } -> ()
  | _ -> Alcotest.fail "expected running");
  (* unbound: stuck under the faithful policy *)
  let st' = start [ M.Check_fname "F" ] in
  Alcotest.(check bool) "unbound is stuck" true (step st' = None)

let test_run_exists_f_end_to_end () =
  (* the machine binds F through the Fapp and checkFName passes *)
  let p = P.exists_f "F" (P.fapp "F" [ P.var "x" ]) in
  (match M.run ~interp p (F.g1 F.b) with
  | Outcome.Matched (theta, phi) ->
      Alcotest.(check (option string)) "F" (Some "g") (Fsubst.find "F" phi);
      Alcotest.(check (option F.term_testable)) "x" (Some F.b)
        (Subst.find "x" theta)
  | o -> Alcotest.failf "expected match, got %s" (Outcome.to_string o));
  (* two sibling Exists_f binders with the same name bind independently *)
  let two =
    P.app "f"
      [
        P.exists_f "F" (P.fapp "F" [ P.var "x" ]);
        P.exists_f "F" (P.fapp "F" [ P.var "y" ]);
      ]
  in
  (* NOTE: phi is a flat map, so reusing a binder name across siblings
     forces the same operator — the frontend freshens names per unfold to
     get genuine per-level freshness. Same op works: *)
  (match M.run ~interp two (F.f2 (F.g1 F.a) (F.g1 F.b)) with
  | Outcome.Matched _ -> ()
  | o -> Alcotest.failf "same-op siblings: %s" (Outcome.to_string o));
  (* different ops under one shared name conflict (hence the freshening) *)
  match M.run ~interp two (F.f2 (F.g1 F.a) (F.f2 F.a F.b)) with
  | Outcome.No_match -> ()
  | o -> Alcotest.failf "shared name should conflict: %s" (Outcome.to_string o)

let test_st_match_fun_var_bind () =
  let st = start [ M.Match (P.fapp "F" [ P.var "x" ], F.g1 F.a) ] in
  match expect_rule "ST-Match-Fun-Var-Bind" M.St_match_fun_var_bind (step st) with
  | M.Running { phi; k = [ M.Match _ ]; _ } ->
      Alcotest.(check (option string)) "F bound to g" (Some "g") (Fsubst.find "F" phi)
  | _ -> Alcotest.fail "expected bind"

let test_st_match_fun_var_bound_and_conflict () =
  let phi = Fsubst.of_list [ ("F", "g") ] in
  let st = running Subst.empty phi [] [ M.Match (P.fapp "F" [ P.var "x" ], F.g1 F.a) ] in
  (match expect_rule "ST-Match-Fun-Var-Bound" M.St_match_fun_var_bound (step st) with
  | M.Running _ -> ()
  | _ -> Alcotest.fail "expected running");
  let phi' = Fsubst.of_list [ ("F", "f") ] in
  let st' = running Subst.empty phi' [] [ M.Match (P.fapp "F" [ P.var "x" ], F.g1 F.a) ] in
  match expect_rule "ST-Match-Fun-Var-Conflict" M.St_match_fun_var_conflict (step st') with
  | M.Failure -> ()
  | _ -> Alcotest.fail "expected failure"

let test_st_match_mu_unfolds () =
  let body = P.alt (P.app "g" [ P.call "P" [ "x" ] ]) (P.var "x") in
  let p = P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] body in
  let st = start [ M.Match (p, F.g1 F.a) ] in
  match expect_rule "ST-Match-Mu" M.St_match_mu (step st) with
  | M.Running { k = [ M.Match (p', _) ]; _ } ->
      Alcotest.(check bool) "unfolded to an alternate" true
        (match p' with P.Alt _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected unfolded obligation"

(* ------------------------------------------------------------------ *)
(* End-to-end runs: paper examples                                     *)
(* ------------------------------------------------------------------ *)

let expect_match name p t expected_theta =
  match run p t with
  | Outcome.Matched (theta, _) ->
      Alcotest.check F.subst_testable name (Subst.of_list expected_theta) theta
  | o -> Alcotest.failf "%s: expected match, got %s" name (Outcome.to_string o)

let expect_no_match name p t =
  match run p t with
  | Outcome.No_match -> ()
  | o -> Alcotest.failf "%s: expected failure, got %s" name (Outcome.to_string o)

let test_run_fun_pattern () =
  expect_match "f(x,y) vs f(a,b)"
    (P.app "f" [ P.var "x"; P.var "y" ])
    (F.f2 F.a F.b)
    [ ("x", F.a); ("y", F.b) ]

let test_run_nonlinear () =
  (* MatMul(x,x)-style nonlinearity *)
  let p = P.app "f" [ P.var "x"; P.var "x" ] in
  expect_match "f(x,x) vs f(a,a)" p (F.f2 F.a F.a) [ ("x", F.a) ];
  expect_no_match "f(x,x) vs f(a,b)" p (F.f2 F.a F.b)

let test_run_left_eager_alt () =
  (* Matching f(c1,c2) against f(x,y) || f(y,x) yields the left result
     (the paper's incompleteness example, section 3.1.2). *)
  let p =
    P.alt
      (P.app "f" [ P.var "x"; P.var "y" ])
      (P.app "f" [ P.var "y"; P.var "x" ])
  in
  expect_match "left-eager" p (F.f2 F.a F.b) [ ("x", F.a); ("y", F.b) ]

let test_run_alt_backtracks () =
  (* first alternate fails structurally; second succeeds *)
  let p = P.alt (P.app "g" [ P.var "x" ]) (P.app "f" [ P.var "x"; P.var "y" ]) in
  expect_match "backtrack to second" p (F.f2 F.a F.b) [ ("x", F.a); ("y", F.b) ]

let test_run_alt_restores_bindings () =
  (* bindings made inside a failed alternate are erased by backtracking:
     f(x-as-a then conflict) vs second alternate binding x=b *)
  let p =
    P.alt
      (P.app "f" [ P.var "x"; P.app "g" [ P.var "x" ] ])
      (P.app "f" [ P.var "y"; P.var "x" ])
  in
  expect_match "bindings restored" p (F.f2 F.a F.b) [ ("y", F.a); ("x", F.b) ]

let test_run_guard_filters () =
  let p =
    P.Guarded (P.var "x", G.Eq (G.Var_attr ("x", "size"), G.Const 3))
  in
  expect_match "size 3 passes" p (F.f2 F.a F.b) [ ("x", F.f2 F.a F.b) ];
  expect_no_match "size 1 fails" p F.a

let test_run_guard_after_alt_backtracks () =
  (* guard failure after the first alternate must fall through to the
     second alternate *)
  let p =
    P.alt
      (P.Guarded (P.var "x", G.Eq (G.Var_attr ("x", "size"), G.Const 99)))
      (P.var "y")
  in
  expect_match "guard failure backtracks into alternates" p F.a
    [ ("y", F.a) ]

let test_run_exists_constr () =
  (* exists y. (x ; g(y) ~ x): x is the root, bound, and must match g(y) *)
  let p = P.exists "y" (P.constr (P.var "x") (P.app "g" [ P.var "y" ]) "x") in
  expect_match "root capture" p (F.g1 F.a) [ ("x", F.g1 F.a); ("y", F.a) ]

let test_run_unary_chain () =
  (* figure 3: mu P(x,F). F(P(x,F)) || F(x) *)
  let body =
    P.alt (P.fapp "F" [ P.call "P" [ "x"; "F" ] ]) (P.fapp "F" [ P.var "x" ])
  in
  let p = P.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ] body in
  let t = F.g1 (F.g1 (F.g1 F.a)) in
  match run p t with
  | Outcome.Matched (theta, phi) ->
      Alcotest.(check (option string)) "F = g" (Some "g") (Fsubst.find "F" phi);
      Alcotest.(check (option F.term_testable))
        "x = innermost" (Some F.a) (Subst.find "x" theta)
  | o -> Alcotest.failf "unary chain: %s" (Outcome.to_string o)

let test_run_diverging_mu () =
  (* mu P(x). P(x) runs out of fuel, never succeeds or fails *)
  let p = P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] (P.call "P" [ "x" ]) in
  match run ~fuel:500 p F.a with
  | Outcome.Out_of_fuel -> ()
  | o -> Alcotest.failf "expected out-of-fuel, got %s" (Outcome.to_string o)

let test_run_policy_backtrack_recovers () =
  (* exists w. x with w unused: stuck under Faithful, failure->alt under
     Backtrack *)
  let p = P.alt (P.exists "w" (P.var "x")) (P.var "y") in
  (match run p F.a with
  | Outcome.Stuck -> ()
  | o -> Alcotest.failf "faithful: expected stuck, got %s" (Outcome.to_string o));
  match run ~policy:Outcome.Policy.Backtrack p F.a with
  | Outcome.Matched (theta, _) ->
      Alcotest.(check (option F.term_testable))
        "second alternate" (Some F.a) (Subst.find "y" theta)
  | o -> Alcotest.failf "backtrack: expected match, got %s" (Outcome.to_string o)

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_var () =
  let trace, outcome = M.run_trace ~interp (P.var "x") F.a in
  Alcotest.(check (list string))
    "bind then success"
    [ "ST-Match-Var-Bind"; "ST-Success" ]
    (List.map M.rule_name trace);
  Alcotest.(check bool) "matched" true (Outcome.is_matched outcome)

let test_trace_alt_failure_path () =
  let p = P.alt (P.const "b") (P.const "a") in
  let trace, outcome = M.run_trace ~interp (P.app "g" [ p ]) (F.g1 F.a) in
  Alcotest.(check (list string))
    "fun, alt, conflict, backtrack to second, success"
    [
      "ST-Match-Fun";
      "ST-Match-Alt";
      "ST-Match-Fun-Conflict";
      "ST-Match-Fun";
      "ST-Success";
    ]
    (List.map M.rule_name trace);
  Alcotest.(check bool) "matched" true (Outcome.is_matched outcome)

let test_steps_counted () =
  match M.steps ~interp (P.var "x") F.a with
  | Some n -> Alcotest.(check int) "two steps" 2 n
  | None -> Alcotest.fail "fuel exhausted"

let () =
  Alcotest.run "machine"
    [
      ( "rules",
        [
          Alcotest.test_case "ST-Success" `Quick test_st_success;
          Alcotest.test_case "ST-Match-Var-Bind" `Quick test_st_match_var_bind;
          Alcotest.test_case "ST-Match-Var-Bound" `Quick test_st_match_var_bound;
          Alcotest.test_case "ST-Match-Var-Conflict (backtrack)" `Quick
            test_st_match_var_conflict_backtracks;
          Alcotest.test_case "ST-Match-Var-Conflict (empty stack)" `Quick
            test_st_match_var_conflict_empty_stack;
          Alcotest.test_case "ST-Match-Fun" `Quick test_st_match_fun;
          Alcotest.test_case "ST-Match-Fun-Conflict" `Quick
            test_st_match_fun_conflict;
          Alcotest.test_case "ST-Match-Alt" `Quick test_st_match_alt_pushes_frame;
          Alcotest.test_case "ST-Match-Guard" `Quick test_st_match_guard_defers;
          Alcotest.test_case "ST-CheckGuard-Continue" `Quick
            test_st_check_guard_continue;
          Alcotest.test_case "ST-CheckGuard-Backtrack" `Quick
            test_st_check_guard_backtrack;
          Alcotest.test_case "open guard is stuck (faithful)" `Quick
            test_st_check_guard_stuck_faithful;
          Alcotest.test_case "ST-CheckName" `Quick test_st_check_name;
          Alcotest.test_case "ST-MatchConstr" `Quick test_st_match_constr_action;
          Alcotest.test_case "ST-Match-Exists" `Quick test_st_match_exists;
          Alcotest.test_case "ST-Match-Exists-F" `Quick test_st_match_exists_f;
          Alcotest.test_case "ST-CheckFName" `Quick test_st_check_fname;
          Alcotest.test_case "ST-Match-Fun-Var-Bind" `Quick
            test_st_match_fun_var_bind;
          Alcotest.test_case "ST-Match-Fun-Var-Bound/Conflict" `Quick
            test_st_match_fun_var_bound_and_conflict;
          Alcotest.test_case "ST-Match-Mu" `Quick test_st_match_mu_unfolds;
        ] );
      ( "runs",
        [
          Alcotest.test_case "function pattern" `Quick test_run_fun_pattern;
          Alcotest.test_case "nonlinear pattern" `Quick test_run_nonlinear;
          Alcotest.test_case "left-eager alternates" `Quick
            test_run_left_eager_alt;
          Alcotest.test_case "alternate backtracking" `Quick
            test_run_alt_backtracks;
          Alcotest.test_case "backtracking erases bindings" `Quick
            test_run_alt_restores_bindings;
          Alcotest.test_case "guards filter" `Quick test_run_guard_filters;
          Alcotest.test_case "guard failure backtracks" `Quick
            test_run_guard_after_alt_backtracks;
          Alcotest.test_case "exists + match constraint" `Quick
            test_run_exists_constr;
          Alcotest.test_case "recursive unary chain (fig. 3)" `Quick
            test_run_unary_chain;
          Alcotest.test_case "diverging mu runs out of fuel" `Quick
            test_run_diverging_mu;
          Alcotest.test_case "backtrack policy recovers stuckness" `Quick
            test_run_policy_backtrack_recovers;
          Alcotest.test_case "exists_f end to end" `Quick
            test_run_exists_f_end_to_end;
        ] );
      ( "traces",
        [
          Alcotest.test_case "variable trace" `Quick test_trace_var;
          Alcotest.test_case "alternate failure trace" `Quick
            test_trace_alt_failure_path;
          Alcotest.test_case "step count" `Quick test_steps_counted;
        ] );
    ]
