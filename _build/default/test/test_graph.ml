(* Tests for the computation-graph IR: construction, typing, destructive
   replacement, garbage collection, validation, and the term view. *)

open Pypm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let env () = Std_ops.make ()

let fresh_graph () =
  let e = env () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

let f32 shape = Ty.make Dtype.F32 shape

let ty_str (n : Graph.node) =
  match n.Graph.ty with Some ty -> Ty.to_string ty | None -> "opaque"

(* ------------------------------------------------------------------ *)
(* Construction and typing                                             *)
(* ------------------------------------------------------------------ *)

let test_input_typed () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  Alcotest.(check string) "input type" "f32[2x3]" (ty_str x)

let test_add_infers () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; w ] in
  Alcotest.(check string) "matmul type" "f32[2x5]" (ty_str mm);
  let t = Graph.add g Std_ops.trans [ mm ] in
  Alcotest.(check string) "transpose type" "f32[5x2]" (ty_str t)

let test_add_arity_checked () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  (match Graph.add g Std_ops.matmul [ x ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity violation accepted");
  match Graph.add g "NoSuchOp" [ x ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared operator accepted"

let test_add_type_error_raises () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let y = Graph.input g ~name:"y" (f32 [ 7; 5 ]) in
  match Graph.add g Std_ops.matmul [ x; y ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shape error accepted"

let test_conv_attrs () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 1; 3; 16; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 8; 3; 3; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 8; 1; 1 ]) in
  let c =
    Graph.add g Std_ops.conv2d ~attrs:[ ("stride", 2); ("pad", 1) ] [ x; w; b ]
  in
  Alcotest.(check string) "strided conv type" "f32[1x8x8x8]" (ty_str c)

let test_constants_interned () =
  let _, g = fresh_graph () in
  let c1 = Graph.constant g 2.0 in
  let c2 = Graph.constant g 2.0 in
  let c3 = Graph.constant g 0.5 in
  checkb "same symbol" true (Symbol.equal c1.Graph.op c2.Graph.op);
  checkb "distinct nodes" true (c1.Graph.id <> c2.Graph.id);
  checkb "different symbol" false (Symbol.equal c1.Graph.op c3.Graph.op);
  Alcotest.(check (option (float 1e-9))) "value" (Some 2.0) (Graph.constant_value c1);
  checkb "lit symbol agrees" true
    (Symbol.equal c1.Graph.op (Graph.lit_symbol 2.0))

let test_opaque () =
  let _, g = fresh_graph () in
  let o = Graph.opaque g ~name:"ext" (f32 [ 4 ]) in
  Alcotest.(check (option string))
    "opaque class" (Some "opaque")
    (Signature.op_class (Graph.signature g) o.Graph.op)

(* ------------------------------------------------------------------ *)
(* Liveness, users, replacement, gc                                    *)
(* ------------------------------------------------------------------ *)

(* x -> relu -> relu' ; output relu' *)
let chain_graph () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r1 = Graph.add g Std_ops.relu [ x ] in
  let r2 = Graph.add g Std_ops.relu [ r1 ] in
  Graph.set_outputs g [ r2 ];
  (g, x, r1, r2)

let test_live_topo () =
  let g, x, r1, r2 = chain_graph () in
  let ids = List.map (fun n -> n.Graph.id) (Graph.live_nodes g) in
  Alcotest.(check (list int)) "topo order" [ x.Graph.id; r1.Graph.id; r2.Graph.id ] ids

let test_users () =
  let g, x, r1, r2 = chain_graph () in
  let users_of n = List.map (fun u -> u.Graph.id) (Graph.users g n) in
  Alcotest.(check (list int)) "x users" [ r1.Graph.id ] (users_of x);
  Alcotest.(check (list int)) "r1 users" [ r2.Graph.id ] (users_of r1);
  Alcotest.(check (list int)) "r2 users" [] (users_of r2)

let test_replace_rewires () =
  let g, x, r1, r2 = chain_graph () in
  (* replace the inner relu by x directly: r2 now reads x *)
  Graph.replace g ~old_root:r1 ~new_root:x;
  checkb "rewired" true
    (List.exists (fun i -> i.Graph.id = x.Graph.id) r2.Graph.inputs);
  let collected = Graph.gc g in
  checki "collected r1" 1 collected;
  checki "live count" 2 (Graph.live_count g);
  Alcotest.(check (list string)) "no violations" [] (Graph.validate g)

let test_replace_output () =
  let g, _, r1, r2 = chain_graph () in
  Graph.replace g ~old_root:r2 ~new_root:r1;
  let out_ids = List.map (fun n -> n.Graph.id) (Graph.outputs g) in
  Alcotest.(check (list int)) "output updated" [ r1.Graph.id ] out_ids;
  ignore (Graph.gc g);
  checki "two nodes left" 2 (Graph.live_count g)

let test_replace_cycle_guard () =
  let g, _, r1, r2 = chain_graph () in
  (* making r1's replacement its own user r2 would create a cycle *)
  match Graph.replace g ~old_root:r1 ~new_root:r2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cycle accepted"

let test_shared_input_replace () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  let a = Graph.add g Std_ops.add [ r; r ] in
  Graph.set_outputs g [ a ];
  let s = Graph.add g Std_ops.sigmoid [ x ] in
  Graph.replace g ~old_root:r ~new_root:s;
  checkb "both operands rewired" true
    (List.for_all (fun i -> i.Graph.id = s.Graph.id) a.Graph.inputs);
  Alcotest.(check (list string)) "valid" [] (Graph.validate g)

let test_counts () =
  let g, _, _, _ = chain_graph () in
  checki "relu count" 2 (Graph.count_op g Std_ops.relu);
  checki "unary class count" 2 (Graph.count_class g "unary_pointwise");
  checki "input class count" 1 (Graph.count_class g "input")

(* ------------------------------------------------------------------ *)
(* Term view                                                           *)
(* ------------------------------------------------------------------ *)

let test_term_view_structure () =
  let g, x, _, r2 = chain_graph () in
  let view = Term_view.create g in
  let t = Term_view.term_of view r2 in
  Alcotest.(check string) "head" Std_ops.relu (Term.head t);
  checki "size" 3 (Term.size t);
  let leaf = List.nth (List.of_seq (Term.subterms t)) 2 in
  Alcotest.(check string) "leaf symbol" x.Graph.op (Term.head leaf)

let test_term_view_memoized_sharing () =
  (* diamond: add(relu(x), relu(x)) shares the relu node *)
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  let a = Graph.add g Std_ops.add [ r; r ] in
  Graph.set_outputs g [ a ];
  let view = Term_view.create g in
  let t = Term_view.term_of view a in
  match Term.args t with
  | [ l; rgt ] -> checkb "physically shared" true (l == rgt)
  | _ -> Alcotest.fail "wrong arity"

let test_term_view_node_resolution () =
  let g, x, r1, r2 = chain_graph () in
  let view = Term_view.create g in
  let t = Term_view.term_of view r2 in
  (match Term_view.node_of view t with
  | Some n -> checki "root resolves" r2.Graph.id n.Graph.id
  | None -> Alcotest.fail "root unresolved");
  (match Term.args t with
  | [ inner ] -> (
      match Term_view.node_of view inner with
      | Some n -> checki "inner resolves" r1.Graph.id n.Graph.id
      | None -> Alcotest.fail "inner unresolved")
  | _ -> Alcotest.fail "wrong arity");
  ignore x

let test_term_view_types_and_interp () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; w ] in
  Graph.set_outputs g [ mm ];
  let view = Term_view.create g in
  let t = Term_view.term_of view mm in
  (match Term_view.type_of view t with
  | Some ty -> Alcotest.(check string) "view type" "f32[2x5]" (Ty.to_string ty)
  | None -> Alcotest.fail "untyped");
  let interp = Term_view.interp view in
  Alcotest.(check (option int)) "rank via interp" (Some 2)
    (interp.Guard.term_attr "rank" t);
  Alcotest.(check (option int)) "dim1 via interp" (Some 5)
    (interp.Guard.term_attr "dim1" t)

let test_term_view_constant_value_attr () =
  let _, g = fresh_graph () in
  let c = Graph.constant g 0.5 in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let m = Graph.add g Std_ops.mul [ x; c ] in
  Graph.set_outputs g [ m ];
  let view = Term_view.create g in
  let t = Term_view.term_of view c in
  let interp = Term_view.interp view in
  Alcotest.(check (option int)) "value_x1000" (Some 500)
    (interp.Guard.term_attr "value_x1000" t)

(* The MHA subgraph matches through the term view with tensor guards. *)
let test_match_through_view () =
  let env, g =
    let e = env () in
    (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())
  in
  ignore env;
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 5; 3 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ mm ];
  let view = Term_view.create g in
  let t = Term_view.term_of view mm in
  let entry = Corpus.mmxyt in
  match
    Matcher.matches ~interp:(Term_view.interp view) entry.Program.pattern t
  with
  | Outcome.Matched (theta, _) ->
      checkb "x bound" true (Subst.mem "x" theta);
      checkb "y bound" true (Subst.mem "y" theta)
  | o -> Alcotest.failf "MMxyT should match: %s" (Outcome.to_string o)

let test_dot_render () =
  let g, _, _, r2 = chain_graph () in
  let dot = Dot.to_dot ~highlight:[ r2.Graph.id ] g in
  checkb "digraph" true (String.length dot > 0);
  let contains needle =
    let n = String.length needle and m = String.length dot in
    let rec go i = i + n <= m && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  checkb "has header" true (contains "digraph pypm");
  checkb "has relu node" true (contains "Relu");
  checkb "has an edge" true (contains "->");
  checkb "highlight applied" true (contains "penwidth=3");
  checkb "marks outputs" true (contains "output 0")

let () =
  Alcotest.run "graph"
    [
      ( "construction",
        [
          Alcotest.test_case "input typed" `Quick test_input_typed;
          Alcotest.test_case "inference on add" `Quick test_add_infers;
          Alcotest.test_case "arity checked" `Quick test_add_arity_checked;
          Alcotest.test_case "type errors raise" `Quick
            test_add_type_error_raises;
          Alcotest.test_case "conv attrs" `Quick test_conv_attrs;
          Alcotest.test_case "interned constants" `Quick
            test_constants_interned;
          Alcotest.test_case "opaque leaves" `Quick test_opaque;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "topological liveness" `Quick test_live_topo;
          Alcotest.test_case "users" `Quick test_users;
          Alcotest.test_case "replace rewires" `Quick test_replace_rewires;
          Alcotest.test_case "replace output" `Quick test_replace_output;
          Alcotest.test_case "cycle guard" `Quick test_replace_cycle_guard;
          Alcotest.test_case "shared input replace" `Quick
            test_shared_input_replace;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
      ( "term-view",
        [
          Alcotest.test_case "structure" `Quick test_term_view_structure;
          Alcotest.test_case "memoized sharing" `Quick
            test_term_view_memoized_sharing;
          Alcotest.test_case "node resolution" `Quick
            test_term_view_node_resolution;
          Alcotest.test_case "types and interp" `Quick
            test_term_view_types_and_interp;
          Alcotest.test_case "constant value attribute" `Quick
            test_term_view_constant_value_attr;
          Alcotest.test_case "pattern match through view" `Quick
            test_match_through_view;
        ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_render ]);
    ]
