(* Tests for the paper's pattern corpus: every figure's pattern matches the
   graphs it should and rewrites them correctly. *)

open Pypm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let f32 shape = Ty.make Dtype.F32 shape

let fresh () =
  let e = Std_ops.make () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

let run_entry env g entry =
  Pass.run (Program.make ~sg:env.Std_ops.sg [ entry ]) g

let match_count env g entry =
  let stats = Pass.match_only (Program.make ~sg:env.Std_ops.sg [ entry ]) g in
  (Option.get (Pass.find_pattern_stats stats entry.Program.pname)).Pass.matches

(* ------------------------------------------------------------------ *)
(* Figure 1: MMxyT / cuBLAS                                            *)
(* ------------------------------------------------------------------ *)

let mmxyt_graph dtype =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (Ty.make dtype [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (Ty.make dtype [ 5; 3 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ mm ];
  (e, g)

let test_mmxyt_f32 () =
  let e, g = mmxyt_graph Dtype.F32 in
  ignore (run_entry e g Corpus.mmxyt);
  checki "f32 kernel" 1 (Graph.count_op g Std_ops.cublas_mm_xyt_f32)

let test_mmxyt_i8 () =
  let e, g = mmxyt_graph Dtype.I8 in
  ignore (run_entry e g Corpus.mmxyt);
  checki "i8 kernel" 1 (Graph.count_op g Std_ops.cublas_mm_xyt_i8)

let test_mmxyt_rank_guard () =
  (* rank-3 tensors: the pattern's rank==2 guard must reject *)
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 7; 2; 3 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 7; 5; 3 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ mm ];
  checki "no match" 0 (match_count e g Corpus.mmxyt)

let aligned_graph m k n =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ m; k ]) in
  let w = Graph.input g ~name:"w" (f32 [ n; k ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ mm ];
  (e, g)

let test_mmxyt_alignment_guard () =
  (* 16x8 @ (24x8)^T: every dimension divisible by 8 -> kernel fires *)
  let e, g = aligned_graph 16 8 24 in
  ignore (run_entry e g Corpus.mmxyt_aligned);
  checki "aligned fires" 1 (Graph.count_op g Std_ops.cublas_mm_xyt_f32);
  (* 16x9: inner dimension not divisible by 8 -> no match *)
  let e2, g2 = aligned_graph 16 9 24 in
  checki "misaligned rejected" 0 (match_count e2 g2 Corpus.mmxyt_aligned)

(* ------------------------------------------------------------------ *)
(* Figure 2: GELU alternates                                           *)
(* ------------------------------------------------------------------ *)

let gelu_graph variant =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 8 ]) in
  let half =
    match variant with
    | `Div2 -> Graph.add g Std_ops.div [ x; Graph.constant g 2.0 ]
    | `MulHalf -> Graph.add g Std_ops.mul [ x; Graph.constant g 0.5 ]
    | `HalfMul -> Graph.add g Std_ops.mul [ Graph.constant g 0.5; x ]
  in
  let erf =
    Graph.add g Std_ops.erf
      [ Graph.add g Std_ops.div [ x; Graph.constant g Std_ops.sqrt2 ] ]
  in
  let inner = Graph.add g Std_ops.add [ Graph.constant g 1.0; erf ] in
  let out = Graph.add g Std_ops.mul [ half; inner ] in
  Graph.set_outputs g [ out ];
  (e, g)

let test_gelu_all_variants () =
  List.iter
    (fun variant ->
      let e, g = gelu_graph variant in
      let stats = run_entry e g Corpus.gelu_fuse in
      checki "one rewrite" 1 stats.Pass.total_rewrites;
      checki "gelu node" 1 (Graph.count_op g Std_ops.gelu);
      checki "no erf left" 0 (Graph.count_op g Std_ops.erf);
      Alcotest.(check (list string)) "valid" [] (Graph.validate g))
    [ `Div2; `MulHalf; `HalfMul ]

let test_gelu_needs_shared_x () =
  (* half(x) * (1 + erf(y / sqrt2)) with y <> x must NOT match: the
     pattern is nonlinear in x *)
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 8 ]) in
  let y = Graph.input g ~name:"y" (f32 [ 4; 8 ]) in
  let half = Graph.add g Std_ops.div [ x; Graph.constant g 2.0 ] in
  let erf =
    Graph.add g Std_ops.erf
      [ Graph.add g Std_ops.div [ y; Graph.constant g Std_ops.sqrt2 ] ]
  in
  let inner = Graph.add g Std_ops.add [ Graph.constant g 1.0; erf ] in
  let out = Graph.add g Std_ops.mul [ half; inner ] in
  Graph.set_outputs g [ out ];
  checki "no match" 0 (match_count e g Corpus.gelu_fuse)

let test_gelu_wrong_constant () =
  (* dividing by 3 is not a GELU *)
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 8 ]) in
  let half = Graph.add g Std_ops.div [ x; Graph.constant g 3.0 ] in
  let erf =
    Graph.add g Std_ops.erf
      [ Graph.add g Std_ops.div [ x; Graph.constant g Std_ops.sqrt2 ] ]
  in
  let inner = Graph.add g Std_ops.add [ Graph.constant g 1.0; erf ] in
  let out = Graph.add g Std_ops.mul [ half; inner ] in
  Graph.set_outputs g [ out ];
  checki "no match" 0 (match_count e g Corpus.gelu_fuse)

(* ------------------------------------------------------------------ *)
(* MHA -> FMHA                                                         *)
(* ------------------------------------------------------------------ *)

let mha_graph ~scale =
  let e, g = fresh () in
  let q = Graph.input g ~name:"q" (f32 [ 2; 64; 32 ]) in
  let k = Graph.input g ~name:"k" (f32 [ 2; 64; 32 ]) in
  let v = Graph.input g ~name:"v" (f32 [ 2; 64; 32 ]) in
  let qk = Graph.add g Std_ops.matmul [ q; Graph.add g Std_ops.trans [ k ] ] in
  let alpha = Graph.constant g 0.125 in
  let scaled =
    match scale with
    | `Mul -> Graph.add g Std_ops.mul [ qk; alpha ]
    | `MulRev -> Graph.add g Std_ops.mul [ alpha; qk ]
    | `Div -> Graph.add g Std_ops.div [ qk; alpha ]
  in
  let att = Graph.add g Std_ops.matmul [ Graph.add g Std_ops.softmax [ scaled ]; v ] in
  Graph.set_outputs g [ att ];
  (e, g, q, k, v)

let test_mha_all_scales () =
  List.iter
    (fun scale ->
      let e, g, _, _, _ = mha_graph ~scale in
      let stats = run_entry e g Corpus.mha_fuse in
      checki "one rewrite" 1 stats.Pass.total_rewrites;
      checki "fmha node" 1 (Graph.count_op g Std_ops.fmha);
      checki "no softmax left" 0 (Graph.count_op g Std_ops.softmax);
      Alcotest.(check (list string)) "valid" [] (Graph.validate g))
    [ `Mul; `MulRev; `Div ]

let test_mha_binds_qkv () =
  let e, g, q, k, v = mha_graph ~scale:`Mul in
  ignore (run_entry e g Corpus.mha_fuse);
  let fmha =
    List.find (fun n -> Symbol.equal n.Graph.op Std_ops.fmha) (Graph.live_nodes g)
  in
  Alcotest.(check (list int))
    "inputs are q, k, v"
    [ q.Graph.id; k.Graph.id; v.Graph.id ]
    (List.map (fun n -> n.Graph.id) fmha.Graph.inputs)

let test_mha_scale_must_be_scalar () =
  (* a tensor-shaped scale must be rejected by the s.rank == 0 guard *)
  let e, g = fresh () in
  let q = Graph.input g ~name:"q" (f32 [ 2; 64; 32 ]) in
  let k = Graph.input g ~name:"k" (f32 [ 2; 64; 32 ]) in
  let v = Graph.input g ~name:"v" (f32 [ 2; 64; 32 ]) in
  let qk = Graph.add g Std_ops.matmul [ q; Graph.add g Std_ops.trans [ k ] ] in
  let bad_scale = Graph.input g ~name:"m" (f32 [ 64; 64 ]) in
  let scaled = Graph.add g Std_ops.mul [ qk; bad_scale ] in
  let att = Graph.add g Std_ops.matmul [ Graph.add g Std_ops.softmax [ scaled ]; v ] in
  Graph.set_outputs g [ att ];
  checki "no match" 0 (match_count e g Corpus.mha_fuse)

(* ------------------------------------------------------------------ *)
(* Epilogs                                                             *)
(* ------------------------------------------------------------------ *)

let test_epilog_bias_relu () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 16; 8 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 8 ]) in
  let pre = Graph.add g Std_ops.add [ Graph.add g Std_ops.matmul [ x; w ]; b ] in
  let out = Graph.add g Std_ops.relu [ pre ] in
  Graph.set_outputs g [ out ];
  ignore (run_entry e g Corpus.epilog_bias_relu);
  checki "fused" 1 (Graph.count_op g Std_ops.gemm_bias_epilog_relu);
  checki "three nodes" 4 (Graph.live_count g)

let test_epilog_bias_rank_guard () =
  (* a matrix "bias" must be rejected (b.rank == 1 guard) *)
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 16; 8 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 4; 8 ]) in
  let pre = Graph.add g Std_ops.add [ Graph.add g Std_ops.matmul [ x; w ]; b ] in
  let out = Graph.add g Std_ops.relu [ pre ] in
  Graph.set_outputs g [ out ];
  checki "no match" 0 (match_count e g Corpus.epilog_bias_relu)

let test_epilog_plain () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 16; 8 ]) in
  let out = Graph.add g Std_ops.gelu [ Graph.add g Std_ops.matmul [ x; w ] ] in
  Graph.set_outputs g [ out ];
  ignore (run_entry e g Corpus.epilog_gelu);
  checki "fused" 1 (Graph.count_op g Std_ops.gemm_epilog_gelu)

let test_conv_epilog_copies_attrs () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 1; 3; 16; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 8; 3; 3; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 8; 1; 1 ]) in
  let c =
    Graph.add g Std_ops.conv2d ~attrs:[ ("stride", 2); ("pad", 1) ] [ x; w; b ]
  in
  let out = Graph.add g Std_ops.relu [ c ] in
  Graph.set_outputs g [ out ];
  ignore (run_entry e g Corpus.conv_epilog);
  let fused =
    List.find
      (fun n -> Symbol.equal n.Graph.op Std_ops.conv_bias_relu)
      (Graph.live_nodes g)
  in
  Alcotest.(check (option int)) "stride" (Some 2)
    (List.assoc_opt "stride" fused.Graph.attrs);
  Alcotest.(check string)
    "same output type as the conv" "f32[1x8x8x8]"
    (match fused.Graph.ty with Some ty -> Ty.to_string ty | None -> "?")

(* ------------------------------------------------------------------ *)
(* Figures 3, 4: recursive chains                                      *)
(* ------------------------------------------------------------------ *)

let relu_tower n =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let rec go n acc = if n = 0 then acc else go (n - 1) (Graph.add g Std_ops.relu [ acc ]) in
  let top = go n x in
  Graph.set_outputs g [ top ];
  (e, g)

let test_relu_chain_collapses () =
  List.iter
    (fun n ->
      let e, g = relu_tower n in
      ignore (run_entry e g Corpus.relu_chain);
      checki
        (Printf.sprintf "tower of %d collapses to one relu" n)
        1
        (Graph.count_op g Std_ops.relu))
    [ 2; 3; 7 ]

let test_relu_chain_leaves_single () =
  let e, g = relu_tower 1 in
  let stats = run_entry e g Corpus.relu_chain in
  checki "no rewrite on a single relu" 0 stats.Pass.total_rewrites

let test_unary_chain_matches_any_tower () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let top =
    Graph.add g Std_ops.exp_
      [ Graph.add g Std_ops.exp_ [ Graph.add g Std_ops.exp_ [ x ] ] ]
  in
  Graph.set_outputs g [ top ];
  (* UnaryChain (figure 3 verbatim) is match-only and matches at every
     chain node: exp^3, exp^2, exp^1 *)
  checki "matches" 3 (match_count e g Corpus.unary_chain)

let test_fig4_matches_mixed_tree () =
  (* the fig 4 pattern over a tree of one unary (Relu) and one binary (Add)
     operation; alternates 1/2 recurse, alternate 3 accepts leaves *)
  let _e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let y = Graph.input g ~name:"y" (f32 [ 4 ]) in
  let tree =
    Graph.add g Std_ops.relu
      [ Graph.add g Std_ops.add [ Graph.add g Std_ops.relu [ x ]; y ] ]
  in
  Graph.set_outputs g [ tree ];
  let view = Term_view.create g in
  let t = Term_view.term_of view tree in
  match
    Matcher.matches ~interp:(Term_view.interp view)
      Corpus.fig4.Program.pattern t
  with
  | Outcome.Matched (theta, phi) ->
      (* x (the root variable) must be bound to the whole tree *)
      (match Subst.find "x" theta with
      | Some root -> checkb "root capture" true (Term.equal root t)
      | None -> Alcotest.fail "x unbound");
      Alcotest.(check (option string)) "f" (Some Std_ops.relu) (Fsubst.find "f" phi);
      Alcotest.(check (option string)) "g" (Some Std_ops.add) (Fsubst.find "g" phi)
  | o -> Alcotest.failf "fig4 should match: %s" (Outcome.to_string o)

(* ------------------------------------------------------------------ *)
(* Figure 14: MatMulEpilog chain                                       *)
(* ------------------------------------------------------------------ *)

let test_matmul_epilog_chain () =
  let _e, g = fresh () in
  let a = Graph.input g ~name:"a" (f32 [ 2; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ a; b ] in
  (* a chain of *different* pointwise ops: needs the per-level fresh
     function variable (Exists_f) *)
  let top =
    Graph.add g Std_ops.gelu
      [ Graph.add g Std_ops.sigmoid [ Graph.add g Std_ops.relu [ mm ] ] ]
  in
  Graph.set_outputs g [ top ];
  let view = Term_view.create g in
  let t = Term_view.term_of view top in
  match
    Matcher.matches ~interp:(Term_view.interp view)
      Corpus.matmul_epilog_chain.Program.pattern t
  with
  | Outcome.Matched (theta, _) ->
      checkb "a bound" true (Subst.mem "a" theta);
      checkb "b bound" true (Subst.mem "b" theta);
      (match Subst.find "x" theta with
      | Some root -> checkb "x is the chain root" true (Term.equal root t)
      | None -> Alcotest.fail "x unbound")
  | o -> Alcotest.failf "MatMulEpilog should match: %s" (Outcome.to_string o)

let test_matmul_epilog_rejects_nonpointwise_chain () =
  (* softmax is not unary_pointwise: the class guard stops the chain, and
     the leaf under it is not a matmul, so no match at the top node *)
  let _e, g = fresh () in
  let a = Graph.input g ~name:"a" (f32 [ 2; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ a; b ] in
  let top = Graph.add g Std_ops.relu [ Graph.add g Std_ops.softmax [ mm ] ] in
  Graph.set_outputs g [ top ];
  let view = Term_view.create g in
  let t = Term_view.term_of view top in
  match
    Matcher.matches ~interp:(Term_view.interp view)
      Corpus.matmul_epilog_chain.Program.pattern t
  with
  | Outcome.No_match -> ()
  | o -> Alcotest.failf "expected no match, got %s" (Outcome.to_string o)

let test_matmul_epilog_empty_chain () =
  (* zero pointwise ops: a bare matmul is a valid (degenerate) epilog *)
  let e, g = fresh () in
  let a = Graph.input g ~name:"a" (f32 [ 2; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ a; b ] in
  Graph.set_outputs g [ mm ];
  checki "matches at the matmul" 1 (match_count e g Corpus.matmul_epilog_chain)

(* ------------------------------------------------------------------ *)
(* Cleanups and programs                                               *)
(* ------------------------------------------------------------------ *)

let test_algebraic_cleanups () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 4 ]) in
  (* ((x + 0) - 0) / 1 * 1, then a transpose pair *)
  let t1 = Graph.add g Std_ops.add [ x; Graph.constant g 0.0 ] in
  let t2 = Graph.add g Std_ops.sub [ t1; Graph.constant g 0.0 ] in
  let t3 = Graph.add g Std_ops.div [ t2; Graph.constant g 1.0 ] in
  let t4 = Graph.add g Std_ops.mul [ t3; Graph.constant g 1.0 ] in
  let t5 = Graph.add g Std_ops.trans [ Graph.add g Std_ops.trans [ t4 ] ] in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ t5 ] ];
  let stats = Pass.run (Corpus.cleanup_program e.Std_ops.sg) g in
  checkb "several rewrites" true (stats.Pass.total_rewrites >= 5);
  (* everything collapses to relu(x) *)
  checki "two nodes" 2 (Graph.live_count g);
  Alcotest.(check (list string)) "valid" [] (Graph.validate g)

let test_mul_zero_keeps_type () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 8 ]) in
  let m = Graph.add g Std_ops.mul [ x; Graph.constant g 0.0 ] in
  let out = Graph.add g Std_ops.relu [ m ] in
  Graph.set_outputs g [ out ];
  ignore (Pass.run (Corpus.cleanup_program e.Std_ops.sg) g);
  checki "zeros node" 1 (Graph.count_op g Std_ops.zeros_like);
  match (List.hd out.Graph.inputs).Graph.ty with
  | Some ty -> Alcotest.(check string) "type preserved" "f32[4x8]" (Ty.to_string ty)
  | None -> Alcotest.fail "untyped"

let test_type_check_rejects_bad_rule () =
  (* a rule that would replace a matrix by a scalar literal: rejected under
     the type check, fired without it *)
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 8 ]) in
  let m = Graph.add g Std_ops.mul [ x; Graph.constant g 0.0 ] in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ m ] ];
  let bad_entry =
    {
      Program.pname = "BadZero";
      pattern =
        Pattern.alts
          [
            Pattern.app Std_ops.mul
              [ Pattern.var "x"; Pattern.const (Graph.lit_symbol 0.0) ];
          ];
      rules = [ Rule.make ~name:"bad" ~pattern:"BadZero" (Rule.Rlit 0.0) ];
    }
  in
  let prog = Program.make ~sg:e.Std_ops.sg [ bad_entry ] in
  let stats = Pass.run prog g in
  checki "rejected" 0 stats.Pass.total_rewrites;
  checkb "counted" true (stats.Pass.type_rejections >= 1);
  (* without the check the unsound rule fires *)
  let e2, g2 = fresh () in
  let x2 = Graph.input g2 ~name:"x" (f32 [ 4; 8 ]) in
  let m2 = Graph.add g2 Std_ops.mul [ x2; Graph.constant g2 0.0 ] in
  Graph.set_outputs g2 [ m2 ];
  let stats2 =
    Pass.run ~check_types:false (Program.make ~sg:e2.Std_ops.sg [ bad_entry ]) g2
  in
  checki "fires unchecked" 1 stats2.Pass.total_rewrites

let test_mul_one () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let m = Graph.add g Std_ops.mul [ x; Graph.constant g 1.0 ] in
  let out = Graph.add g Std_ops.relu [ m ] in
  Graph.set_outputs g [ out ];
  ignore (run_entry e g Corpus.mul_one);
  checki "mul removed" 0 (Graph.count_op g Std_ops.mul)

let test_trans_of_matmul () =
  let e, g = fresh () in
  let a = Graph.input g ~name:"a" (f32 [ 2; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 3; 5 ]) in
  let t = Graph.add g Std_ops.trans [ Graph.add g Std_ops.matmul [ a; b ] ] in
  Graph.set_outputs g [ t ];
  let root_ty = t.Graph.ty in
  ignore (run_entry e g Corpus.trans_of_matmul);
  (* Trans(MatMul(a,b)) became MatMul(Trans(b), Trans(a)) *)
  checki "two transposes now" 2 (Graph.count_op g Std_ops.trans);
  let out = List.hd (Graph.outputs g) in
  Alcotest.(check string) "root is a matmul" Std_ops.matmul out.Graph.op;
  checkb "type preserved" true (out.Graph.ty = root_ty);
  Alcotest.(check (list string)) "valid" [] (Graph.validate g)

let test_matmul_of_trans_paper_example () =
  (* the introduction's rewrite: MatMul(Trans(x), Trans(y)) ->
     Trans(MatMul(y, x)) *)
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 3; 2 ]) in
  let y = Graph.input g ~name:"y" (f32 [ 5; 3 ]) in
  let mm =
    Graph.add g Std_ops.matmul
      [ Graph.add g Std_ops.trans [ x ]; Graph.add g Std_ops.trans [ y ] ]
  in
  Graph.set_outputs g [ mm ];
  ignore (run_entry e g Corpus.matmul_of_trans);
  let out = List.hd (Graph.outputs g) in
  Alcotest.(check string) "root is a transpose" Std_ops.trans out.Graph.op;
  (* type: [3;2]^T @ [5;3]^T = [2;3]@[3;5] = [2;5] *)
  (match out.Graph.ty with
  | Some ty -> Alcotest.(check string) "shape" "f32[2x5]" (Ty.to_string ty)
  | None -> Alcotest.fail "untyped");
  Alcotest.(check (list string)) "valid" [] (Graph.validate g)

let test_softmax_shift () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4; 16 ]) in
  let shifted =
    Graph.add g Std_ops.softmax
      [ Graph.add g Std_ops.add [ x; Graph.constant g 3.0 ] ]
  in
  Graph.set_outputs g [ shifted ];
  ignore (run_entry e g Corpus.softmax_shift);
  checki "add removed" 0 (Graph.count_op g Std_ops.add);
  checki "softmax kept" 1 (Graph.count_op g Std_ops.softmax);
  (* a tensor shift must NOT be removed (not shift-invariant per row) *)
  let e2, g2 = fresh () in
  let x2 = Graph.input g2 ~name:"x" (f32 [ 4; 16 ]) in
  let bias = Graph.input g2 ~name:"b" (f32 [ 16 ]) in
  let s2 =
    Graph.add g2 Std_ops.softmax [ Graph.add g2 Std_ops.add [ x2; bias ] ]
  in
  Graph.set_outputs g2 [ s2 ];
  checki "tensor shift kept" 0 (match_count e2 g2 Corpus.softmax_shift)

let test_neg_neg () =
  let e, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let nn = Graph.add g Std_ops.neg [ Graph.add g Std_ops.neg [ x ] ] in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ nn ] ];
  ignore (run_entry e g Corpus.neg_neg);
  checki "negations gone" 0 (Graph.count_op g Std_ops.neg)

let test_programs_are_wf () =
  let e = Std_ops.make () in
  List.iter
    (fun prog ->
      Alcotest.(check int)
        "no diagnostics" 0
        (List.length (Program.check prog)))
    [
      Corpus.fmha_program e.Std_ops.sg;
      Corpus.epilog_program e.Std_ops.sg;
      Corpus.both_program e.Std_ops.sg;
      Corpus.partition_program e.Std_ops.sg;
      Corpus.full_program e.Std_ops.sg;
    ]

let () =
  Alcotest.run "corpus"
    [
      ( "fig1-cublas",
        [
          Alcotest.test_case "f32 dispatch" `Quick test_mmxyt_f32;
          Alcotest.test_case "i8 dispatch" `Quick test_mmxyt_i8;
          Alcotest.test_case "rank guard" `Quick test_mmxyt_rank_guard;
          Alcotest.test_case "alignment guard (modulo)" `Quick
            test_mmxyt_alignment_guard;
        ] );
      ( "fig2-gelu",
        [
          Alcotest.test_case "all spellings fuse" `Quick test_gelu_all_variants;
          Alcotest.test_case "nonlinearity enforced" `Quick
            test_gelu_needs_shared_x;
          Alcotest.test_case "wrong constant rejected" `Quick
            test_gelu_wrong_constant;
        ] );
      ( "mha",
        [
          Alcotest.test_case "all scale spellings" `Quick test_mha_all_scales;
          Alcotest.test_case "binds q, k, v" `Quick test_mha_binds_qkv;
          Alcotest.test_case "scalar guard" `Quick test_mha_scale_must_be_scalar;
        ] );
      ( "epilog",
        [
          Alcotest.test_case "bias + relu" `Quick test_epilog_bias_relu;
          Alcotest.test_case "bias rank guard" `Quick
            test_epilog_bias_rank_guard;
          Alcotest.test_case "plain gelu" `Quick test_epilog_plain;
          Alcotest.test_case "conv attrs copied" `Quick
            test_conv_epilog_copies_attrs;
        ] );
      ( "fig3-fig4",
        [
          Alcotest.test_case "relu tower collapses" `Quick
            test_relu_chain_collapses;
          Alcotest.test_case "single relu kept" `Quick
            test_relu_chain_leaves_single;
          Alcotest.test_case "unary chain matches" `Quick
            test_unary_chain_matches_any_tower;
          Alcotest.test_case "fig4 mixed tree" `Quick
            test_fig4_matches_mixed_tree;
        ] );
      ( "fig14",
        [
          Alcotest.test_case "mixed pointwise chain" `Quick
            test_matmul_epilog_chain;
          Alcotest.test_case "class guard stops chain" `Quick
            test_matmul_epilog_rejects_nonpointwise_chain;
          Alcotest.test_case "empty chain" `Quick test_matmul_epilog_empty_chain;
        ] );
      ( "misc",
        [
          Alcotest.test_case "mul by one" `Quick test_mul_one;
          Alcotest.test_case "algebraic cleanups" `Quick
            test_algebraic_cleanups;
          Alcotest.test_case "mul by zero keeps type" `Quick
            test_mul_zero_keeps_type;
          Alcotest.test_case "type check gates rules" `Quick
            test_type_check_rejects_bad_rule;
          Alcotest.test_case "trans of matmul" `Quick test_trans_of_matmul;
          Alcotest.test_case "paper's transpose example" `Quick
            test_matmul_of_trans_paper_example;
          Alcotest.test_case "softmax shift invariance" `Quick
            test_softmax_shift;
          Alcotest.test_case "double negation" `Quick test_neg_neg;
          Alcotest.test_case "programs well-formed" `Quick
            test_programs_are_wf;
        ] );
    ]
