(* Tests for the rewrite engine: rule instantiation, the greedy pass
   (ordering, first-rule-fires, fixpoint, divergence backstop), and
   directed graph partitioning. *)

open Pypm
module P = Pattern

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let f32 shape = Ty.make Dtype.F32 shape

let fresh_graph () =
  let e = Std_ops.make () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

(* ------------------------------------------------------------------ *)
(* Rule instantiation                                                  *)
(* ------------------------------------------------------------------ *)

(* graph: relu(matmul(x, w)), matched by Relu(MatMul(x, w)) *)
let epilog_site () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; w ] in
  let r = Graph.add g Std_ops.relu [ mm ] in
  Graph.set_outputs g [ r ];
  (g, x, w, mm, r)

let match_at g root pattern =
  let view = Term_view.create g in
  let t = Term_view.term_of view root in
  match Matcher.matches ~interp:(Term_view.interp view) pattern t with
  | Outcome.Matched (theta, phi) -> (view, theta, phi)
  | o -> Alcotest.failf "expected a match, got %s" (Outcome.to_string o)

let test_instantiate_rvar () =
  let g, x, _, _, r = epilog_site () in
  let pattern = P.app Std_ops.relu [ P.app Std_ops.matmul [ P.var "x"; P.var "w" ] ] in
  let view, theta, phi = match_at g r pattern in
  match Rule.instantiate g view theta phi (Rule.Rvar "x") with
  | Ok n -> checki "resolves to the matched node" x.Graph.id n.Graph.id
  | Error e -> Alcotest.fail e

let test_instantiate_rapp () =
  let g, _, _, _, r = epilog_site () in
  let pattern = P.app Std_ops.relu [ P.app Std_ops.matmul [ P.var "x"; P.var "w" ] ] in
  let view, theta, phi = match_at g r pattern in
  match
    Rule.instantiate g view theta phi
      (Rule.Rapp (Std_ops.gemm_epilog_relu, [ Rule.Rvar "x"; Rule.Rvar "w" ]))
  with
  | Ok n ->
      Alcotest.(check string) "op" Std_ops.gemm_epilog_relu n.Graph.op;
      Alcotest.(check string)
        "typed like the matmul" "f32[2x5]"
        (match n.Graph.ty with Some ty -> Ty.to_string ty | None -> "opaque")
  | Error e -> Alcotest.fail e

let test_instantiate_rfapp () =
  let g, _, _, _, r = epilog_site () in
  let pattern = P.fapp "F" [ P.app Std_ops.matmul [ P.var "x"; P.var "w" ] ] in
  let view, theta, phi = match_at g r pattern in
  match Rule.instantiate g view theta phi (Rule.Rfapp ("F", [ Rule.Rvar "x" ])) with
  | Ok n -> Alcotest.(check string) "phi(F) applied" Std_ops.relu n.Graph.op
  | Error e -> Alcotest.fail e

let test_instantiate_rlit () =
  let g, _, _, _, r = epilog_site () in
  let pattern = P.var "root" in
  let view, theta, phi = match_at g r pattern in
  match Rule.instantiate g view theta phi (Rule.Rlit 3.0) with
  | Ok n ->
      Alcotest.(check (option (float 1e-9))) "constant" (Some 3.0)
        (Graph.constant_value n)
  | Error e -> Alcotest.fail e

let test_instantiate_unbound () =
  let g, _, _, _, r = epilog_site () in
  let pattern = P.var "root" in
  let view, theta, phi = match_at g r pattern in
  match Rule.instantiate g view theta phi (Rule.Rvar "nope") with
  | Ok _ -> Alcotest.fail "unbound variable accepted"
  | Error _ -> ()

let test_instantiate_copy_attrs () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 1; 3; 16; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 8; 3; 3; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 8; 1; 1 ]) in
  let c =
    Graph.add g Std_ops.conv2d ~attrs:[ ("stride", 2); ("pad", 1) ] [ x; w; b ]
  in
  let r = Graph.add g Std_ops.relu [ c ] in
  Graph.set_outputs g [ r ];
  let entry = Corpus.conv_epilog in
  let view, theta, phi = match_at g r entry.Program.pattern in
  match
    Rule.instantiate g view theta phi
      (Rule.Rcopy_attrs
         (Std_ops.conv_bias_relu, [ Rule.Rvar "x"; Rule.Rvar "w"; Rule.Rvar "b" ], "c"))
  with
  | Ok n ->
      Alcotest.(check (option int)) "stride copied" (Some 2)
        (List.assoc_opt "stride" n.Graph.attrs);
      Alcotest.(check string)
        "type recomputed with stride" "f32[1x8x8x8]"
        (match n.Graph.ty with Some ty -> Ty.to_string ty | None -> "opaque")
  | Error e -> Alcotest.fail e

let test_check_guard () =
  let g, _, _, _, r = epilog_site () in
  let pattern = P.app Std_ops.relu [ P.app Std_ops.matmul [ P.var "x"; P.var "w" ] ] in
  let view, theta, phi = match_at g r pattern in
  let mk guard = Rule.make ~guard ~name:"t" ~pattern:"p" (Rule.Rvar "x") in
  checkb "true guard" true (Rule.check_guard view theta phi (mk Guard.True));
  checkb "false guard" false (Rule.check_guard view theta phi (mk Guard.False));
  checkb "tensor guard" true
    (Rule.check_guard view theta phi
       (mk (Guard.Eq (Guard.Var_attr ("x", "rank"), Guard.Const 2))));
  checkb "unverifiable guard fails" false
    (Rule.check_guard view theta phi
       (mk (Guard.Eq (Guard.Var_attr ("zzz", "rank"), Guard.Const 2))))

let test_rhs_vars () =
  let vars, fvars =
    Rule.rhs_vars
      (Rule.Rfapp ("F", [ Rule.Rcopy_attrs ("Op", [ Rule.Rvar "x" ], "c") ]))
  in
  checkb "x" true (Symbol.Set.mem "x" vars);
  checkb "c" true (Symbol.Set.mem "c" vars);
  checkb "F" true (Symbol.Set.mem "F" fvars)

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let test_pass_rewrites_to_fixpoint () =
  let env, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  (* relu(relu(relu(x))): the ReluChain rule collapses it to relu(x) *)
  let r =
    Graph.add g Std_ops.relu
      [ Graph.add g Std_ops.relu [ Graph.add g Std_ops.relu [ x ] ] ]
  in
  Graph.set_outputs g [ r ];
  let prog = Program.make ~sg:env.Std_ops.sg [ Corpus.relu_chain ] in
  let stats = Pass.run prog g in
  checkb "fixpoint" true stats.Pass.reached_fixpoint;
  checki "one relu left" 1 (Graph.count_op g Std_ops.relu);
  checkb "at least one rewrite" true (stats.Pass.total_rewrites >= 1);
  Alcotest.(check (list string)) "valid" [] (Graph.validate g)

let test_pass_first_rule_fires () =
  (* two rules on the same pattern; the first with a passing guard wins *)
  let env, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 5; 3 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ mm ];
  (* f32 inputs: the f32 rule (first) must fire, not the i8 rule *)
  let prog = Program.make ~sg:env.Std_ops.sg [ Corpus.mmxyt ] in
  let stats = Pass.run prog g in
  checki "one rewrite" 1 stats.Pass.total_rewrites;
  checki "f32 kernel" 1 (Graph.count_op g Std_ops.cublas_mm_xyt_f32);
  checki "no i8 kernel" 0 (Graph.count_op g Std_ops.cublas_mm_xyt_i8)

let test_pass_rule_guards_gate () =
  (* i16-ish unsupported dtype: pattern matches but neither rule fires *)
  let env, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (Ty.make Dtype.F64 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (Ty.make Dtype.F64 [ 5; 3 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; Graph.add g Std_ops.trans [ w ] ] in
  Graph.set_outputs g [ mm ];
  let prog = Program.make ~sg:env.Std_ops.sg [ Corpus.mmxyt ] in
  let stats = Pass.run prog g in
  checki "no rewrites" 0 stats.Pass.total_rewrites;
  let ps = Option.get (Pass.find_pattern_stats stats "MMxyT") in
  checkb "pattern matched anyway" true (ps.Pass.matches >= 1)

let test_pass_identity_rhs () =
  (* Trans(Trans(x)) -> x: replacement is an existing node *)
  let env, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let tt = Graph.add g Std_ops.trans [ Graph.add g Std_ops.trans [ x ] ] in
  let r = Graph.add g Std_ops.relu [ tt ] in
  Graph.set_outputs g [ r ];
  let prog = Program.make ~sg:env.Std_ops.sg [ Corpus.trans_trans ] in
  let stats = Pass.run prog g in
  checki "one rewrite" 1 stats.Pass.total_rewrites;
  checki "no transposes left" 0 (Graph.count_op g Std_ops.trans);
  checkb "relu reads x" true
    (List.exists (fun i -> i.Graph.id = x.Graph.id) r.Graph.inputs)

let test_pass_divergence_backstop () =
  (* a deliberately silly rule: relu(x) -> relu(relu(x)) grows forever;
     the max_rewrites backstop must stop it *)
  let env, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ r ];
  let entry =
    {
      Program.pname = "grow";
      pattern = P.app Std_ops.relu [ P.var "x" ];
      rules =
        [
          Rule.make ~name:"grow" ~pattern:"grow"
            (Rule.Rapp (Std_ops.relu, [ Rule.Rapp (Std_ops.relu, [ Rule.Rvar "x" ]) ]));
        ];
    }
  in
  let prog = Program.make ~sg:env.Std_ops.sg [ entry ] in
  let stats = Pass.run ~max_rewrites:25 prog g in
  checkb "did not reach fixpoint" false stats.Pass.reached_fixpoint;
  checki "stopped at the backstop" 25 stats.Pass.total_rewrites

let test_match_only_counts_without_rewriting () =
  let env, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ Graph.add g Std_ops.relu [ x ] ] in
  Graph.set_outputs g [ r ];
  let before = Graph.live_count g in
  let prog = Program.make ~sg:env.Std_ops.sg [ Corpus.relu_chain ] in
  let stats = Pass.match_only prog g in
  checki "graph untouched" before (Graph.live_count g);
  checki "no rewrites" 0 stats.Pass.total_rewrites;
  let ps = Option.get (Pass.find_pattern_stats stats "ReluChain") in
  checki "one match" 1 ps.Pass.matches

let test_matches_of () =
  let env, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r1 = Graph.add g Std_ops.relu [ x ] in
  let r2 = Graph.add g Std_ops.relu [ r1 ] in
  let r3 = Graph.add g Std_ops.relu [ r2 ] in
  Graph.set_outputs g [ r3 ];
  let prog = Program.make ~sg:env.Std_ops.sg [ Corpus.relu_chain ] in
  match Pass.matches_of prog g with
  | [ ("ReluChain", hits) ] ->
      (* matches at relu(relu(..)) roots: r2 and r3 *)
      Alcotest.(check (list int))
        "hit roots"
        [ r2.Graph.id; r3.Graph.id ]
        (List.map (fun (id, _, _) -> id) hits)
  | _ -> Alcotest.fail "unexpected result shape"

let test_program_restrict_and_check () =
  let env, _ = fresh_graph () in
  let prog = Corpus.both_program env.Std_ops.sg in
  let restricted = Program.restrict prog [ "MHA" ] in
  Alcotest.(check (list string)) "restricted" [ "MHA" ]
    (Program.pattern_names restricted);
  Alcotest.(check int) "full program is clean" 0
    (List.length (Program.check prog));
  (* a rule using a variable the pattern does not bind is flagged *)
  let bad =
    {
      Program.pname = "bad";
      pattern = P.var "x";
      rules = [ Rule.make ~name:"bad" ~pattern:"bad" (Rule.Rvar "zzz") ];
    }
  in
  let diags = Program.check (Program.make ~sg:env.Std_ops.sg [ bad ]) in
  checkb "unbound rule var flagged" true (List.length diags >= 1)

let test_indexed_pass_equivalent () =
  (* the indexed pass must compute the same rewrites while skipping work *)
  let build () =
    let env = Std_ops.make () in
    let cfg = Transformer.config "t" ~layers:2 ~hidden:64 ~seq:16 in
    (env, Transformer.build env cfg)
  in
  let env1, g1 = build () in
  let s1 = Pass.run (Corpus.both_program env1.Std_ops.sg) g1 in
  let env2, g2 = build () in
  let s2 = Pass.run ~indexed:true (Corpus.both_program env2.Std_ops.sg) g2 in
  checki "same rewrites" s1.Pass.total_rewrites s2.Pass.total_rewrites;
  checki "same final size" (Graph.live_count g1) (Graph.live_count g2);
  let skipped stats =
    List.fold_left (fun acc ps -> acc + ps.Pass.skipped) 0 stats.Pass.per_pattern
  in
  checki "naive pass skips nothing" 0 (skipped s1);
  checkb "indexed pass skips plenty" true (skipped s2 > 100);
  checkb "indexed attempts strictly fewer" true
    (List.fold_left (fun a ps -> a + ps.Pass.attempts) 0 s2.Pass.per_pattern
    < List.fold_left (fun a ps -> a + ps.Pass.attempts) 0 s1.Pass.per_pattern)

(* ------------------------------------------------------------------ *)
(* Directed graph partitioning (figure 14 / section 4.2)               *)
(* ------------------------------------------------------------------ *)

(* gelu(relu(matmul(a, b))) with an extra consumer of the matmul's input *)
let partition_site () =
  let e = Std_ops.make () in
  let g = Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer () in
  let a = Graph.input g ~name:"a" (f32 [ 2; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ a; b ] in
  let r = Graph.add g Std_ops.relu [ mm ] in
  let ge = Graph.add g Std_ops.gelu [ r ] in
  Graph.set_outputs g [ ge ];
  (e, g, a, b, mm, r, ge)

let fig14_program sg =
  Program.make ~sg [ Corpus.matmul_epilog_chain ]

let test_partition_finds_region () =
  let e, g, a, b, mm, r, ge = partition_site () in
  let prog = fig14_program e.Std_ops.sg in
  match Partition.find prog g with
  | [ region ] ->
      Alcotest.(check string) "pattern" "MatMulEpilog" region.Partition.pattern_name;
      checki "root is the chain top" ge.Graph.id region.Partition.root.Graph.id;
      let ids = List.map (fun n -> n.Graph.id) region.Partition.interior in
      checkb "contains gelu" true (List.mem ge.Graph.id ids);
      checkb "contains relu" true (List.mem r.Graph.id ids);
      checkb "contains matmul" true (List.mem mm.Graph.id ids);
      let input_ids = List.map (fun n -> n.Graph.id) region.Partition.inputs in
      checkb "a is an input" true (List.mem a.Graph.id input_ids);
      checkb "b is an input" true (List.mem b.Graph.id input_ids)
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let test_partition_fuse () =
  let e, g, _, _, _, _, _ = partition_site () in
  let prog = fig14_program e.Std_ops.sg in
  let fused = Partition.fuse_all prog g in
  checki "one fused node" 1 (List.length fused);
  checki "fused count" 1 (Graph.count_class g "fused");
  checki "graph shrank to inputs + fused" 3 (Graph.live_count g);
  Alcotest.(check (list string)) "valid" [] (Graph.validate g);
  match fused with
  | [ n ] ->
      Alcotest.(check (option int)) "interior size recorded" (Some 3)
        (List.assoc_opt "fused_ops" n.Graph.attrs)
  | _ -> assert false

let test_partition_regions_disjoint () =
  (* two chains over two separate matmuls: two disjoint regions *)
  let e = Std_ops.make () in
  let g = Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer () in
  let a = Graph.input g ~name:"a" (f32 [ 2; 3 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 3; 5 ]) in
  let m1 = Graph.add g Std_ops.matmul [ a; b ] in
  let c1 = Graph.add g Std_ops.relu [ m1 ] in
  let m2 = Graph.add g Std_ops.matmul [ a; b ] in
  let c2 = Graph.add g Std_ops.gelu [ m2 ] in
  let top = Graph.add g Std_ops.add [ c1; c2 ] in
  Graph.set_outputs g [ top ];
  let prog = fig14_program e.Std_ops.sg in
  let regions = Partition.find prog g in
  checki "two regions" 2 (List.length regions);
  let all_interior =
    List.concat_map
      (fun r -> List.map (fun n -> n.Graph.id) r.Partition.interior)
      regions
  in
  checki "disjoint"
    (List.length all_interior)
    (List.length (List.sort_uniq compare all_interior))

(* the extended pattern links through bias adds and scales and accepts a
   convolution leaf *)
let test_partition_extended_epilog () =
  let e = Std_ops.make () in
  let g = Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 16; 8 ]) in
  let b = Graph.input g ~name:"b" (f32 [ 8 ]) in
  let pre = Graph.add g Std_ops.add [ Graph.add g Std_ops.matmul [ x; w ]; b ] in
  let scaled = Graph.add g Std_ops.mul [ pre; Graph.constant g 0.5 ] in
  let out = Graph.add g Std_ops.relu [ scaled ] in
  Graph.set_outputs g [ out ];
  let prog = Corpus.partition_program e.Std_ops.sg in
  match Partition.find prog g with
  | [ region ] ->
      Alcotest.(check string) "extended pattern won" "EpilogPartition"
        region.Partition.pattern_name;
      (* matmul + add + mul + relu + the interned 0.5 constant *)
      checki "interior spans the bias and scale" 5
        (List.length region.Partition.interior);
      (* x, w and the bias are graph leaves, hence region inputs *)
      checki "inputs" 3 (List.length region.Partition.inputs)
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let test_extract_region () =
  let e, g, _, _, mm, r, ge = partition_site () in
  let prog = fig14_program e.Std_ops.sg in
  match Partition.find prog g with
  | [ region ] ->
      let sub, root = Partition.extract_region g region in
      Alcotest.(check (list string)) "standalone graph valid" []
        (Graph.validate sub);
      checki "two inputs + three interior" 5 (Graph.live_count sub);
      (* the copied root reproduces the chain shape *)
      Alcotest.(check string) "root op" ge.Graph.op root.Graph.op;
      checki "one matmul inside" 1 (Graph.count_op sub Std_ops.matmul);
      (* same output type as the original root *)
      (match (root.Graph.ty, ge.Graph.ty) with
      | Some a, Some b -> checkb "type preserved" true (Ty.equal a b)
      | _ -> Alcotest.fail "untyped");
      ignore (mm, r)
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let test_compile_region_recursively () =
  (* the paper's 4.2 story: hand the region to a compiler that can build
     the fused kernel — here, the epilog rewrite program *)
  let e = Std_ops.make () in
  let g = Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer () in
  let f32 s = Ty.make Dtype.F32 s in
  let x = Graph.input g ~name:"x" (f32 [ 2; 16 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 16; 8 ]) in
  let out = Graph.add g Std_ops.relu [ Graph.add g Std_ops.matmul [ x; w ] ] in
  Graph.set_outputs g [ out ];
  let prog = Corpus.partition_program e.Std_ops.sg in
  match Partition.find prog g with
  | [ region ] ->
      let compiled =
        Partition.compile_region
          ~compile:(fun sub ->
            ignore (Pass.run (Corpus.epilog_program e.Std_ops.sg) sub))
          g region
      in
      (* the recursive compile fused the extracted subgraph *)
      checki "fused kernel inside the region compile" 1
        (Graph.count_op compiled Std_ops.gemm_epilog_relu);
      Alcotest.(check (list string)) "compiled region valid" []
        (Graph.validate compiled)
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let () =
  Alcotest.run "engine"
    [
      ( "rule",
        [
          Alcotest.test_case "Rvar" `Quick test_instantiate_rvar;
          Alcotest.test_case "Rapp" `Quick test_instantiate_rapp;
          Alcotest.test_case "Rfapp" `Quick test_instantiate_rfapp;
          Alcotest.test_case "Rlit" `Quick test_instantiate_rlit;
          Alcotest.test_case "unbound" `Quick test_instantiate_unbound;
          Alcotest.test_case "Rcopy_attrs" `Quick test_instantiate_copy_attrs;
          Alcotest.test_case "guards" `Quick test_check_guard;
          Alcotest.test_case "rhs_vars" `Quick test_rhs_vars;
        ] );
      ( "pass",
        [
          Alcotest.test_case "rewrites to fixpoint" `Quick
            test_pass_rewrites_to_fixpoint;
          Alcotest.test_case "first rule fires" `Quick
            test_pass_first_rule_fires;
          Alcotest.test_case "rule guards gate" `Quick
            test_pass_rule_guards_gate;
          Alcotest.test_case "identity replacement" `Quick
            test_pass_identity_rhs;
          Alcotest.test_case "divergence backstop" `Quick
            test_pass_divergence_backstop;
          Alcotest.test_case "match_only" `Quick
            test_match_only_counts_without_rewriting;
          Alcotest.test_case "matches_of" `Quick test_matches_of;
          Alcotest.test_case "restrict and check" `Quick
            test_program_restrict_and_check;
          Alcotest.test_case "indexed pass equivalent" `Quick
            test_indexed_pass_equivalent;
        ] );
      ( "partition",
        [
          Alcotest.test_case "finds the region" `Quick
            test_partition_finds_region;
          Alcotest.test_case "fuses it" `Quick test_partition_fuse;
          Alcotest.test_case "regions are disjoint" `Quick
            test_partition_regions_disjoint;
          Alcotest.test_case "extended epilog chain" `Quick
            test_partition_extended_epilog;
          Alcotest.test_case "extract region" `Quick test_extract_region;
          Alcotest.test_case "recursive region compile" `Quick
            test_compile_region_recursively;
        ] );
    ]
