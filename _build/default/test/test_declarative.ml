(* Tests for the declarative semantics (figure 16), Theorem 1 (weakening),
   derivation proof objects, and the enumeration oracle. *)

open Pypm_term
open Pypm_pattern
open Pypm_semantics
open Pypm_testutil
module F = Fixtures
module P = Pattern
module G = Guard

let interp = F.interp
let check ?fuel p theta phi t = Declarative.check ~interp ?fuel p theta phi t
let checkb = Alcotest.(check bool)

let th l = Subst.of_list l
let ph l = Fsubst.of_list l

(* ------------------------------------------------------------------ *)
(* Rule-by-rule checks                                                 *)
(* ------------------------------------------------------------------ *)

let test_p_var () =
  checkb "x @ {x->a} ~= a" true (check (P.var "x") (th [ ("x", F.a) ]) Fsubst.empty F.a);
  checkb "x @ {x->b} ~= a fails" false
    (check (P.var "x") (th [ ("x", F.b) ]) Fsubst.empty F.a);
  checkb "x @ {} ~= a fails (no witness binding)" false
    (check (P.var "x") Subst.empty Fsubst.empty F.a)

let test_p_fun () =
  let p = P.app "f" [ P.var "x"; P.var "y" ] in
  checkb "P-Fun" true
    (check p (th [ ("x", F.a); ("y", F.b) ]) Fsubst.empty (F.f2 F.a F.b));
  checkb "wrong head" false
    (check p (th [ ("x", F.a); ("y", F.b) ]) Fsubst.empty (F.g1 F.a))

let test_p_alt () =
  let p = P.alt (P.const "a") (P.const "b") in
  checkb "left" true (check p Subst.empty Fsubst.empty F.a);
  checkb "right" true (check p Subst.empty Fsubst.empty F.b);
  checkb "neither" false (check p Subst.empty Fsubst.empty F.c)

let test_p_guard () =
  let p = P.Guarded (P.var "x", G.Eq (G.Var_attr ("x", "size"), G.Const 1)) in
  checkb "guard true" true (check p (th [ ("x", F.a) ]) Fsubst.empty F.a);
  let t = F.f2 F.a F.b in
  checkb "guard false" false (check p (th [ ("x", t) ]) Fsubst.empty t)

let test_p_exists_bound () =
  (* with x already in theta the union pins t' *)
  let p = P.exists "y" (P.app "g" [ P.var "y" ]) in
  checkb "pinned witness" true
    (check p (th [ ("y", F.a) ]) Fsubst.empty (F.g1 F.a));
  checkb "pinned wrong witness" false
    (check p (th [ ("y", F.b) ]) Fsubst.empty (F.g1 F.a))

let test_p_exists_search () =
  (* unbound existential: the checker searches subterm candidates *)
  let p = P.exists "y" (P.app "g" [ P.var "y" ]) in
  checkb "found witness" true (check p Subst.empty Fsubst.empty (F.g1 F.b))

let test_p_exists_vacuous () =
  (* x unused in body: any invented term witnesses P-Exists *)
  let p = P.exists "w" (P.const "a") in
  checkb "vacuous exists" true (check p Subst.empty Fsubst.empty F.a)

let test_p_match_constr () =
  let p = P.constr (P.var "x") (P.app "g" [ P.var "y" ]) "x" in
  let t = F.g1 F.c in
  checkb "constraint holds" true
    (check p (th [ ("x", t); ("y", F.c) ]) Fsubst.empty t);
  checkb "constraint violated" false
    (check p (th [ ("x", F.a); ("y", F.c) ]) Fsubst.empty F.a)

let test_p_fun_var () =
  let p = P.fapp "F" [ P.var "x" ] in
  checkb "phi maps F" true
    (check p (th [ ("x", F.a) ]) (ph [ ("F", "g") ]) (F.g1 F.a));
  checkb "phi maps F elsewhere" false
    (check p (th [ ("x", F.a) ]) (ph [ ("F", "f") ]) (F.g1 F.a));
  checkb "phi missing F" false (check p (th [ ("x", F.a) ]) Fsubst.empty (F.g1 F.a))

let test_p_mu () =
  let body =
    P.alt (P.fapp "F" [ P.call "P" [ "x"; "F" ] ]) (P.fapp "F" [ P.var "x" ])
  in
  let p = P.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ] body in
  let t = F.g1 (F.g1 F.a) in
  checkb "recursive witness" true
    (check p (th [ ("x", F.a) ]) (ph [ ("F", "g") ]) t);
  checkb "diverging mu exhausts fuel and rejects" false
    (check ~fuel:100
       (P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] (P.call "P" [ "x" ]))
       Subst.empty Fsubst.empty F.a)

(* ------------------------------------------------------------------ *)
(* Theorem 1: match weakening                                          *)
(* ------------------------------------------------------------------ *)

let test_weakening_example () =
  let p = P.app "g" [ P.var "x" ] in
  let theta = th [ ("x", F.a) ] in
  let theta' = th [ ("x", F.a); ("z", F.b) ] in
  checkb "theta" true (check p theta Fsubst.empty (F.g1 F.a));
  checkb "theta' >= theta" true (check p theta' Fsubst.empty (F.g1 F.a))

let prop_weakening =
  (* If p @ theta ~= t and theta <= theta' then p @ theta' ~= t. We obtain
     genuine witnesses from the matcher, then extend them with junk. *)
  F.qtest ~count:800 "Theorem 1 (weakening)"
    QCheck2.Gen.(pair F.Gen.pair F.Gen.term)
    (fun ((p, t), u) ->
      Printf.sprintf "%s / extend with %s" (F.pattern_print (p, t))
        (Term.to_string u))
    (fun ((p, t), u) ->
      match Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack p t with
      | Outcome.Matched (theta, phi) ->
          if check p theta phi t then
            let theta' = Subst.add "fresh_weakening_var" u theta in
            check p theta' phi t
          else QCheck2.assume_fail () (* incomplete checker corner: skip *)
      | _ -> QCheck2.assume_fail ())

(* ------------------------------------------------------------------ *)
(* Derivations                                                         *)
(* ------------------------------------------------------------------ *)

let derive p theta phi t = Derivation.derive ~interp p theta phi t

let test_derive_validates () =
  let p = P.app "f" [ P.var "x"; P.alt (P.const "a") (P.var "y") ] in
  let theta = th [ ("x", F.g1 F.a) ] in
  match derive p theta Fsubst.empty (F.f2 (F.g1 F.a) F.a) with
  | Some d ->
      checkb "validates" true (Derivation.validate ~interp d);
      checkb "size sane" true (Derivation.size d >= 3)
  | None -> Alcotest.fail "expected derivation"

let test_derive_agrees_with_check () =
  let p = P.app "g" [ P.var "x" ] in
  checkb "derive none iff check false" true
    (Option.is_none (derive p Subst.empty Fsubst.empty F.a)
    = not (check p Subst.empty Fsubst.empty F.a))

let test_tampered_derivation_rejected () =
  let p = P.var "x" in
  let theta = th [ ("x", F.a) ] in
  match derive p theta Fsubst.empty F.a with
  | Some d ->
      (* claim the same rule but for a different term *)
      let bad = { d with Derivation.term = F.b } in
      checkb "tampered term rejected" false (Derivation.validate ~interp bad);
      let bad_rule = { d with Derivation.rule = Derivation.P_fun } in
      checkb "tampered rule rejected" false
        (Derivation.validate ~interp bad_rule)
  | None -> Alcotest.fail "expected derivation"

let prop_derive_validate =
  F.qtest ~count:500 "derivations from matcher witnesses validate" F.Gen.pair
    F.pattern_print (fun (p, t) ->
      match Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack p t with
      | Outcome.Matched (theta, phi) -> (
          match Derivation.derive ~interp p theta phi t with
          | Some d -> Derivation.validate ~interp d
          | None ->
              (* known checker incompleteness corners (invented guard
                 witnesses) must not occur on matcher-produced witnesses
                 over the structural interpretation *)
              false)
      | _ -> QCheck2.assume_fail ())

let prop_check_iff_derive =
  F.qtest ~count:500 "check agrees with derive" F.Gen.pair F.pattern_print
    (fun (p, t) ->
      match Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack p t with
      | Outcome.Matched (theta, phi) ->
          check p theta phi t = Option.is_some (derive p theta phi t)
      | _ -> QCheck2.assume_fail ())

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

let test_enumerate_alt_order () =
  let p =
    P.alt
      (P.app "f" [ P.var "x"; P.var "y" ])
      (P.app "f" [ P.var "y"; P.var "x" ])
  in
  let r = Enumerate.all ~interp p (F.f2 F.a F.b) in
  Alcotest.(check int) "two witnesses" 2 (List.length r.witnesses);
  checkb "complete" true r.complete;
  (match r.witnesses with
  | (first, _) :: _ ->
      Alcotest.(check (option F.term_testable))
        "machine order: first witness is left alternate" (Some F.a)
        (Subst.find "x" first)
  | [] -> Alcotest.fail "no witnesses")

let test_enumerate_counts_paths () =
  (* (a || a) produces two identical witnesses; dedup collapses them *)
  let p = P.app "g" [ P.alt (P.const "a") (P.const "a") ] in
  let r = Enumerate.all ~interp p (F.g1 F.a) in
  Alcotest.(check int) "both derivations" 2 (List.length r.witnesses);
  Alcotest.(check int) "deduped" 1 (List.length (Enumerate.dedup r.witnesses))

let test_enumerate_empty () =
  let r = Enumerate.all ~interp (P.const "b") F.a in
  Alcotest.(check int) "no witnesses" 0 (List.length r.witnesses);
  checkb "complete" true r.complete

let test_enumerate_incomplete_flag () =
  (* a match constraint on a variable never bound requires inventing a
     term: flagged incomplete *)
  let p = P.constr (P.const "a") (P.const "b") "never_bound" in
  let r = Enumerate.all ~interp p F.a in
  checkb "incomplete flagged" false r.complete

let test_holds () =
  checkb "holds" true (Declarative.holds ~interp (P.var "x") F.a);
  checkb "not holds" false (Declarative.holds ~interp (P.const "b") F.a)

let () =
  Alcotest.run "declarative"
    [
      ( "rules",
        [
          Alcotest.test_case "P-Var" `Quick test_p_var;
          Alcotest.test_case "P-Fun" `Quick test_p_fun;
          Alcotest.test_case "P-Alt" `Quick test_p_alt;
          Alcotest.test_case "P-Guard" `Quick test_p_guard;
          Alcotest.test_case "P-Exists (bound)" `Quick test_p_exists_bound;
          Alcotest.test_case "P-Exists (search)" `Quick test_p_exists_search;
          Alcotest.test_case "P-Exists (vacuous)" `Quick test_p_exists_vacuous;
          Alcotest.test_case "P-MatchConstr" `Quick test_p_match_constr;
          Alcotest.test_case "P-Fun-Var" `Quick test_p_fun_var;
          Alcotest.test_case "P-Mu" `Quick test_p_mu;
        ] );
      ( "weakening",
        [
          Alcotest.test_case "example" `Quick test_weakening_example;
          prop_weakening;
        ] );
      ( "derivations",
        [
          Alcotest.test_case "derive + validate" `Quick test_derive_validates;
          Alcotest.test_case "derive agrees with check" `Quick
            test_derive_agrees_with_check;
          Alcotest.test_case "tampering rejected" `Quick
            test_tampered_derivation_rejected;
          prop_derive_validate;
          prop_check_iff_derive;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "alternate order" `Quick test_enumerate_alt_order;
          Alcotest.test_case "path counting + dedup" `Quick
            test_enumerate_counts_paths;
          Alcotest.test_case "empty" `Quick test_enumerate_empty;
          Alcotest.test_case "incompleteness flag" `Quick
            test_enumerate_incomplete_flag;
          Alcotest.test_case "holds" `Quick test_holds;
        ] );
    ]
