(* Tests for the production matcher (the efficient implementation of the
   algorithmic semantics). *)

open Pypm_term
open Pypm_pattern
open Pypm_semantics
open Pypm_testutil
module F = Fixtures
module P = Pattern
module G = Guard

let interp = F.interp
let matches ?policy ?fuel p t = Matcher.matches ~interp ?policy ?fuel p t

let expect_match name p t expected =
  match matches p t with
  | Outcome.Matched (theta, _) ->
      Alcotest.check F.subst_testable name (Subst.of_list expected) theta
  | o -> Alcotest.failf "%s: expected match, got %s" name (Outcome.to_string o)

let expect_no_match name p t =
  match matches p t with
  | Outcome.No_match -> ()
  | o -> Alcotest.failf "%s: expected no match, got %s" name (Outcome.to_string o)

let test_var () = expect_match "variable" (P.var "x") F.a [ ("x", F.a) ]

let test_const () =
  expect_match "constant" (P.const "a") F.a [];
  expect_no_match "wrong constant" (P.const "b") F.a

let test_deep () =
  let p = P.app "f" [ P.app "g" [ P.var "x" ]; P.var "y" ] in
  let t = F.f2 (F.g1 (F.f2 F.a F.b)) F.c in
  expect_match "deep" p t [ ("x", F.f2 F.a F.b); ("y", F.c) ]

let test_nonlinear () =
  let p = P.app "f" [ P.var "x"; P.var "x" ] in
  expect_match "nonlinear ok" p (F.f2 (F.g1 F.a) (F.g1 F.a)) [ ("x", F.g1 F.a) ];
  expect_no_match "nonlinear mismatch" p (F.f2 F.a F.b)

let test_alt_order () =
  let p = P.alt (P.var "x") (P.var "y") in
  expect_match "left alternate wins" p F.a [ ("x", F.a) ]

let test_alt_nested_backtrack () =
  (* h(alt, alt, alt): conflicts force combination search *)
  let alt = P.alt (P.var "x") (P.var "y") in
  let p = P.app "h" [ alt; alt; alt ] in
  (* x can't be a and b at once, so the match distributes over x and y *)
  match matches p (F.h3 F.a F.b F.a) with
  | Outcome.Matched (theta, _) ->
      Alcotest.(check (option F.term_testable)) "x" (Some F.a) (Subst.find "x" theta);
      Alcotest.(check (option F.term_testable)) "y" (Some F.b) (Subst.find "y" theta)
  | o -> Alcotest.failf "expected match, got %s" (Outcome.to_string o)

let test_guard () =
  let p = P.Guarded (P.var "x", G.Le (G.Const 2, G.Var_attr ("x", "depth"))) in
  expect_match "deep enough" p (F.g1 F.a) [ ("x", F.g1 F.a) ];
  expect_no_match "too shallow" p F.a

let test_guard_policy () =
  let open_guard = G.Eq (G.Var_attr ("unbound", "size"), G.Const 1) in
  let p = P.Guarded (P.var "x", open_guard) in
  (match matches p F.a with
  | Outcome.No_match -> () (* default Backtrack policy *)
  | o -> Alcotest.failf "backtrack policy: got %s" (Outcome.to_string o));
  match matches ~policy:Outcome.Policy.Faithful p F.a with
  | Outcome.Stuck -> ()
  | o -> Alcotest.failf "faithful policy: got %s" (Outcome.to_string o)

let test_exists () =
  let p = P.exists "y" (P.app "g" [ P.var "y" ]) in
  expect_match "exists bound" p (F.g1 F.b) [ ("y", F.b) ]

let test_constr () =
  (* x ; (g(y) ~ x): root must be a g-node *)
  let p = P.exists "y" (P.constr (P.var "x") (P.app "g" [ P.var "y" ]) "x") in
  expect_match "constraint ok" p (F.g1 F.c) [ ("x", F.g1 F.c); ("y", F.c) ];
  expect_no_match "constraint fails" p (F.f2 F.a F.b)

let test_fvar () =
  let p = P.app "f" [ P.fapp "F" [ P.var "x" ]; P.fapp "F" [ P.var "y" ] ] in
  (* both subterms must use the same unary operator *)
  (match matches p (F.f2 (F.g1 F.a) (F.g1 F.b)) with
  | Outcome.Matched (_, phi) ->
      Alcotest.(check (option string)) "F" (Some "g") (Fsubst.find "F" phi)
  | o -> Alcotest.failf "expected match, got %s" (Outcome.to_string o));
  expect_no_match "different operators" p (F.f2 (F.g1 F.a) (F.f2 F.a F.b))

let test_fvar_self_application () =
  (* F(F(x)) from section 3.4 *)
  let p = P.fapp "F" [ P.fapp "F" [ P.var "x" ] ] in
  expect_match "tower" p (F.g1 (F.g1 F.a)) [ ("x", F.a) ];
  expect_no_match "not a tower" p (F.g1 F.a)

let test_mu_chain () =
  let body =
    P.alt (P.fapp "F" [ P.call "P" [ "x"; "F" ] ]) (P.fapp "F" [ P.var "x" ])
  in
  let p = P.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ] body in
  let rec tower n = if n = 0 then F.a else F.g1 (tower (n - 1)) in
  expect_match "tower of 5" p (tower 5) [ ("x", F.a) ];
  expect_no_match "flat constant" p F.a

let test_mu_fuel () =
  let p = P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] (P.call "P" [ "x" ]) in
  match matches ~fuel:200 p F.a with
  | Outcome.Out_of_fuel -> ()
  | o -> Alcotest.failf "expected out-of-fuel, got %s" (Outcome.to_string o)

let test_matches_at () =
  (* pre-seeded bindings constrain the match *)
  let theta = Subst.of_list [ ("x", F.a) ] in
  let p = P.app "f" [ P.var "x"; P.var "y" ] in
  (match
     Matcher.matches_at ~interp ~theta ~phi:Fsubst.empty p (F.f2 F.a F.b)
   with
  | Outcome.Matched (theta', _) ->
      Alcotest.(check (option F.term_testable)) "y" (Some F.b) (Subst.find "y" theta')
  | o -> Alcotest.failf "expected match, got %s" (Outcome.to_string o));
  match
    Matcher.matches_at ~interp ~theta ~phi:Fsubst.empty p (F.f2 F.b F.b)
  with
  | Outcome.No_match -> ()
  | o -> Alcotest.failf "pre-binding should conflict, got %s" (Outcome.to_string o)

let test_visits_instrumentation () =
  ignore (matches (P.var "x") F.a);
  Alcotest.(check bool) "visits counted" true (Matcher.last_visits () >= 1)

(* MMxyT from figure 1, over the test signature: f = MatMul, g = Trans. *)
let test_figure1_shape () =
  let mmxyt =
    P.Guarded
      ( P.app "f" [ P.var "x"; P.app "g" [ P.var "y" ] ],
        G.And
          ( G.Le (G.Const 1, G.Var_attr ("x", "size")),
            G.Le (G.Const 1, G.Var_attr ("y", "size")) ) )
  in
  let t = F.f2 F.c (F.g1 F.b) in
  expect_match "MMxyT analogue" mmxyt t [ ("x", F.c); ("y", F.b) ]

let () =
  Alcotest.run "matcher"
    [
      ( "basic",
        [
          Alcotest.test_case "variable" `Quick test_var;
          Alcotest.test_case "constant" `Quick test_const;
          Alcotest.test_case "deep" `Quick test_deep;
          Alcotest.test_case "nonlinear" `Quick test_nonlinear;
        ] );
      ( "alternates",
        [
          Alcotest.test_case "left wins" `Quick test_alt_order;
          Alcotest.test_case "nested backtracking" `Quick
            test_alt_nested_backtrack;
        ] );
      ( "guards",
        [
          Alcotest.test_case "filtering" `Quick test_guard;
          Alcotest.test_case "policy on open guards" `Quick test_guard_policy;
        ] );
      ( "binders",
        [
          Alcotest.test_case "exists" `Quick test_exists;
          Alcotest.test_case "match constraint" `Quick test_constr;
        ] );
      ( "function-variables",
        [
          Alcotest.test_case "shared operator" `Quick test_fvar;
          Alcotest.test_case "self application" `Quick
            test_fvar_self_application;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "unary chain" `Quick test_mu_chain;
          Alcotest.test_case "fuel bound" `Quick test_mu_fuel;
        ] );
      ( "api",
        [
          Alcotest.test_case "matches_at" `Quick test_matches_at;
          Alcotest.test_case "visit instrumentation" `Quick
            test_visits_instrumentation;
          Alcotest.test_case "figure 1 analogue" `Quick test_figure1_shape;
        ] );
    ]
