test/test_surface_corpus.mli:
