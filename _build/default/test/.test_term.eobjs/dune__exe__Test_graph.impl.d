test/test_graph.ml: Alcotest Corpus Dot Dtype Graph Guard List Matcher Outcome Program Pypm Signature Std_ops String Subst Symbol Term Term_view Ty
