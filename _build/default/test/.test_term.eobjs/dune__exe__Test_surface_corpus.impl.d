test/test_surface_corpus.ml: Alcotest Codec Corpus Filename Graph List Option Pass Printf Pypm Std_ops String Surface Sys Zoo
