test/test_corpus.ml: Alcotest Corpus Dtype Fsubst Graph List Matcher Option Outcome Pass Pattern Printf Program Pypm Rule Std_ops Subst Symbol Term Term_view Ty
