test/test_query.ml: Alcotest Corpus Dtype Graph Guard List Machine Matcher Option Outcome Pattern Printf Program Pypm Query Std_ops Symbol Term_view Ty Zoo
