test/test_egraph.mli:
