test/test_kernels.ml: Alcotest Cost Dtype Exec Graph Kernel List Partition Pypm Std_ops Subst Term_view Ty
