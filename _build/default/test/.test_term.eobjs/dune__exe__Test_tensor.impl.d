test/test_tensor.ml: Alcotest Attrs Dtype Guard Infer List Option Printf Pypm Pypm_testutil QCheck2 Shape Term Ty
