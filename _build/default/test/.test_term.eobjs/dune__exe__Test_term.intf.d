test/test_term.mli:
