test/test_term_rewrite.ml: Alcotest Corpus Dtype Fsubst Graph List Pass Pattern Program Pypm Pypm_testutil Rule Saturate Std_ops Subst Term Term_rewrite Term_view Ty
