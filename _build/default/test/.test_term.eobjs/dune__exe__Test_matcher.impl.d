test/test_matcher.ml: Alcotest Fixtures Fsubst Guard Matcher Outcome Pattern Pypm_pattern Pypm_semantics Pypm_term Pypm_testutil Subst
