test/test_machine.ml: Alcotest Fixtures Fsubst Guard List Machine Outcome Pattern Pypm_pattern Pypm_semantics Pypm_term Pypm_testutil Subst
