test/test_term_rewrite.mli:
