test/test_declarative.mli:
