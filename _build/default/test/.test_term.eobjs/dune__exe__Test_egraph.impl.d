test/test_egraph.ml: Alcotest Egraph Ematch Guard List Pattern Pypm Pypm_testutil Saturate Symbol Term
