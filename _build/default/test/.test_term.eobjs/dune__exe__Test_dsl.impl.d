test/test_dsl.ml: Alcotest Attrs Dsl Elaborate Format Graph Guard List Matcher Outcome Pattern Program Pypm Pypm_testutil Rule Signature String Symbol Term
