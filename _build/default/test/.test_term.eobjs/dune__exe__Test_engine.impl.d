test/test_engine.ml: Alcotest Corpus Dtype Graph Guard List Matcher Option Outcome Partition Pass Pattern Program Pypm Rule Std_ops Symbol Term_view Transformer Ty
