test/test_models.ml: Alcotest Corpus Cost Exec Graph List Multimodal Option Pass Printf Pypm Rng Std_ops String Transformer Ty Vision Zoo
