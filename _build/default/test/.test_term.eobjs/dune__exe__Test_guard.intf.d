test/test_guard.mli:
