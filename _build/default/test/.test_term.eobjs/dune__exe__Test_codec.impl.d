test/test_codec.ml: Alcotest Bytes Char Codec Corpus Filename Fun Graph List Pass Pattern Printf Program Pypm Pypm_testutil QCheck2 Rule Signature Std_ops String Sys Transformer
