test/test_term.ml: Alcotest Fixtures Fsubst List Printf Pypm_term Pypm_testutil QCheck2 Seq Signature Subst Symbol Term
