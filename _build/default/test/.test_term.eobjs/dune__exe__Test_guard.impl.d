test/test_guard.ml: Alcotest Fixtures Fsubst Guard Printf Pypm_pattern Pypm_term Pypm_testutil QCheck2 Subst Symbol Term
