test/test_surface.mli:
