test/test_pattern.ml: Alcotest Fixtures Guard List Matcher Option Outcome Pattern Printf Pypm_pattern Pypm_semantics Pypm_term Pypm_testutil QCheck2 String Symbol Wf
