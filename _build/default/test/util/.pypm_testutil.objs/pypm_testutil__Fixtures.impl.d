test/util/fixtures.ml: Alcotest Fsubst Guard List Pattern Printf Pypm_pattern Pypm_semantics Pypm_term QCheck2 QCheck_alcotest Signature Subst Term
