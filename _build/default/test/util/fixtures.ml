(* Shared fixtures: a small test signature, structural attributes, and
   qcheck generators for terms and patterns. *)

open Pypm_term
open Pypm_pattern

(* ------------------------------------------------------------------ *)
(* Signature                                                           *)
(* ------------------------------------------------------------------ *)

(* A deliberately tiny signature so random terms/patterns collide often:
   binary f, unary g, ternary h, constants a b c. *)
let sg =
  let s = Signature.create () in
  ignore (Signature.declare s ~arity:2 "f");
  ignore (Signature.declare s ~arity:1 "g");
  ignore (Signature.declare s ~arity:3 "h");
  ignore (Signature.declare s ~arity:0 "a");
  ignore (Signature.declare s ~arity:0 "b");
  ignore (Signature.declare s ~arity:0 "c");
  s

let binary = [ "f" ]
let unary = [ "g" ]
let ternary = [ "h" ]
let consts = [ "a"; "b"; "c" ]

(* Structural attribute interpretation: attributes every term has, so guard
   tests don't depend on the tensor substrate. *)
let interp : Guard.interp =
  {
    term_attr =
      (fun attr t ->
        match attr with
        | "size" -> Some (Term.size t)
        | "depth" -> Some (Term.depth t)
        | "nargs" -> Some (List.length (Term.args t))
        | _ -> None);
    sym_attr =
      (fun attr s ->
        match attr with
        | "arity" -> Signature.arity sg s
        | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Handy term builders                                                 *)
(* ------------------------------------------------------------------ *)

let a = Term.const "a"
let b = Term.const "b"
let c = Term.const "c"
let g1 t = Term.app "g" [ t ]
let f2 t u = Term.app "f" [ t; u ]
let h3 t u v = Term.app "h" [ t; u; v ]

(* ------------------------------------------------------------------ *)
(* Alcotest testables                                                  *)
(* ------------------------------------------------------------------ *)

let term_testable = Alcotest.testable Term.pp Term.equal
let subst_testable = Alcotest.testable Subst.pp Subst.equal
let fsubst_testable = Alcotest.testable Fsubst.pp Fsubst.equal

let outcome_testable =
  Alcotest.testable Pypm_semantics.Outcome.pp Pypm_semantics.Outcome.equal

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

module Gen = struct
  open QCheck2.Gen

  let symbol_of_arity n =
    match n with
    | 0 -> oneofl consts
    | 1 -> oneofl unary
    | 2 -> oneofl binary
    | 3 -> oneofl ternary
    | _ -> assert false

  (* Random well-formed term of bounded depth. *)
  let rec term_gen depth =
    if depth <= 0 then map Term.const (oneofl consts)
    else
      frequency
        [
          (2, map Term.const (oneofl consts));
          ( 2,
            let* s = oneofl unary in
            let* t = term_gen (depth - 1) in
            return (Term.app s [ t ]) );
          ( 2,
            let* s = oneofl binary in
            let* t = term_gen (depth - 1) in
            let* u = term_gen (depth - 1) in
            return (Term.app s [ t; u ]) );
          ( 1,
            let* s = oneofl ternary in
            let* t = term_gen (depth - 1) in
            let* u = term_gen (depth - 1) in
            let* v = term_gen (depth - 1) in
            return (Term.app s [ t; u; v ]) );
        ]

  let term = term_gen 4

  let var_name = oneofl [ "x"; "y"; "z"; "w" ]
  let fvar_name = oneofl [ "F"; "G" ]

  (* A guard over the structural attributes; biased toward satisfiable. *)
  let guard_gen guard_vars =
    let open Guard in
    let attr = oneofl [ "size"; "depth"; "nargs" ] in
    let expr =
      match guard_vars with
      | [] -> map (fun n -> Const n) (int_range 0 5)
      | vs ->
          frequency
            [
              (2, map (fun n -> Const n) (int_range 0 5));
              ( 3,
                let* x = oneofl vs in
                let* a = attr in
                return (Var_attr (x, a)) );
            ]
    in
    let* lhs = expr in
    let* rhs = expr in
    oneofl
      [ Eq (lhs, rhs); Ne (lhs, rhs); Lt (lhs, rhs); Le (lhs, rhs);
        Le (Const 1, lhs) ]

  (* Fully random pattern; many will not match anything. *)
  let rec pattern_gen depth =
    if depth <= 0 then
      frequency
        [ (3, map Pattern.var var_name); (2, map Pattern.const (oneofl consts)) ]
    else
      frequency
        [
          (3, map Pattern.var var_name);
          (2, map Pattern.const (oneofl consts));
          ( 3,
            let* s = oneofl unary in
            let* p = pattern_gen (depth - 1) in
            return (Pattern.app s [ p ]) );
          ( 3,
            let* s = oneofl binary in
            let* p = pattern_gen (depth - 1) in
            let* q = pattern_gen (depth - 1) in
            return (Pattern.app s [ p; q ]) );
          ( 2,
            let* p = pattern_gen (depth - 1) in
            let* q = pattern_gen (depth - 1) in
            return (Pattern.alt p q) );
          ( 1,
            let* fv = fvar_name in
            let* p = pattern_gen (depth - 1) in
            return (Pattern.fapp fv [ p ]) );
          ( 1,
            let* fv = fvar_name in
            let* p = pattern_gen (depth - 1) in
            let* q = pattern_gen (depth - 1) in
            return (Pattern.fapp fv [ p; q ]) );
          ( 1,
            let* p = pattern_gen (depth - 1) in
            let* g = guard_gen [ "x"; "y" ] in
            return (Pattern.Guarded (p, g)) );
        ]

  let pattern = pattern_gen 3

  (* Patterns exercising the binder/recursion constructors. These are
     generated well-formed (existentials occur in their scope; constraint
     targets are bound) so the Faithful policy rarely gets stuck. *)
  let binder_pattern =
    let unary_tower_mu =
      (* mu P(x). g(P(x)) || g(x), possibly guarded *)
      let body =
        Pattern.alt
          (Pattern.app "g" [ Pattern.call "P" [ "x" ] ])
          (Pattern.app "g" [ Pattern.var "x" ])
      in
      Pattern.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] body
    in
    let fvar_tower_mu =
      (* mu P(x, F). F(P(x, F)) || F(x) *)
      let body =
        Pattern.alt
          (Pattern.fapp "F" [ Pattern.call "P" [ "x"; "F" ] ])
          (Pattern.fapp "F" [ Pattern.var "x" ])
      in
      Pattern.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ] body
    in
    let exists_used =
      (* exists y. g(y) or exists y. f(y, y) *)
      oneofl
        [
          Pattern.exists "ey" (Pattern.app "g" [ Pattern.var "ey" ]);
          Pattern.exists "ey"
            (Pattern.app "f" [ Pattern.var "ey"; Pattern.var "ey" ]);
        ]
    in
    let exists_f_used =
      return
        (Pattern.exists_f "EF"
           (Pattern.fapp "EF" [ Pattern.var "x" ]))
    in
    let constr_root =
      (* x constrained to a sub-pattern: exercises matchConstr *)
      let* inner = pattern_gen 1 in
      return (Pattern.constr (Pattern.var "x") inner "x")
    in
    frequency
      [
        (2, return unary_tower_mu);
        (2, return fvar_tower_mu);
        (3, exists_used);
        (2, exists_f_used);
        (3, constr_root);
      ]

  (* Generate a pattern *from* a term by abstracting positions, so matches
     are frequent. Variables are reused to exercise non-linearity. *)
  let rec abstract_term t depth =
    if depth <= 0 then map Pattern.var var_name
    else
      let structural =
        match Term.args t with
        | [] -> return (Pattern.const (Term.head t))
        | args ->
            let* ps =
              flatten_l (List.map (fun u -> abstract_term u (depth - 1)) args)
            in
            frequency
              [
                (5, return (Pattern.app (Term.head t) ps));
                ( 1,
                  let* fv = fvar_name in
                  return (Pattern.fapp fv ps) );
              ]
      in
      frequency
        [
          (2, map Pattern.var var_name);
          (5, structural);
          ( 1,
            let* p = structural in
            let* junk = pattern_gen 1 in
            (* Put the matching branch on either side. *)
            let* left = bool in
            return (if left then Pattern.alt p junk else Pattern.alt junk p) );
          ( 1,
            let* p = structural in
            return
              (Pattern.Guarded
                 (p, Guard.Eq (Term_attr (t, "size"), Const (Term.size t)))) );
        ]

  (* A (pattern, term) pair where the pattern was grown from the term. *)
  let matching_pair =
    let* t = term_gen 3 in
    let* p = abstract_term t 4 in
    return (p, t)

  (* A (pattern, term) pair with independent draws (usually no match). *)
  let random_pair =
    let* t = term in
    let* p = pattern in
    return (p, t)

  (* Binder/recursion constructors against random terms, plus wrapped in a
     random context so they appear at non-root positions too. *)
  let binder_pair =
    let* t = term in
    let* p = binder_pattern in
    frequency
      [
        (3, return (p, t));
        ( 1,
          let* u = term_gen 1 in
          return (Pattern.app "f" [ p; Pattern.var "cw" ], Term.app "f" [ t; u ]) );
        (1, return (Pattern.app "g" [ p ], Term.app "g" [ t ]));
      ]

  let pair =
    frequency [ (3, matching_pair); (2, random_pair); (2, binder_pair) ]
end

let pattern_print (p, t) =
  Printf.sprintf "pattern: %s\nterm: %s" (Pattern.to_string p)
    (Term.to_string t)

(* Run a qcheck property as an alcotest case. *)
let qtest ?(count = 500) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print gen prop)
