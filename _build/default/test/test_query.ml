(* Tests for the query (database) view of pattern matching: identity-based
   bindings, agreement with the term matcher on tree-shaped graphs, the
   CSE-sensitivity difference on DAGs, guards over node attributes, and
   the Unsupported report for recursion. *)

open Pypm
module P = Pattern

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let f32 shape = Ty.make Dtype.F32 shape

let fresh () =
  let e = Std_ops.make () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

let term_matches g pattern root =
  let view = Term_view.create g in
  let t = Term_view.term_of view root in
  match Matcher.matches ~interp:(Term_view.interp view) pattern t with
  | Outcome.Matched (theta, _) -> Some (view, theta)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let test_structural_match () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 3; 5 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; w ] in
  Graph.set_outputs g [ mm ];
  let pattern = P.app Std_ops.matmul [ P.var "a"; P.var "b" ] in
  match Query.solve g pattern ~root:mm with
  | Query.Sat env ->
      checki "a is the input node" x.Graph.id
        (Symbol.Map.find "a" env.Query.nodes).Graph.id;
      checki "b is the weight node" w.Graph.id
        (Symbol.Map.find "b" env.Query.nodes).Graph.id
  | _ -> Alcotest.fail "expected Sat"

let test_head_mismatch () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ r ];
  match Query.solve g (P.app Std_ops.sigmoid [ P.var "a" ]) ~root:r with
  | Query.Unsat -> ()
  | _ -> Alcotest.fail "expected Unsat"

let test_alternates_and_fvars () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.sigmoid [ x ] in
  Graph.set_outputs g [ r ];
  let pattern =
    P.alt (P.app Std_ops.relu [ P.var "a" ]) (P.fapp "F" [ P.var "a" ])
  in
  match Query.solve g pattern ~root:r with
  | Query.Sat env ->
      Alcotest.(check string)
        "F bound to the operator" Std_ops.sigmoid
        (Symbol.Map.find "F" env.Query.ops)
  | _ -> Alcotest.fail "expected Sat via the second alternate"

let test_guards_on_nodes () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 2; 3 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ r ];
  let guarded rank =
    P.Guarded
      ( P.app Std_ops.relu [ P.var "a" ],
        Guard.Eq (Guard.Var_attr ("a", "rank"), Guard.Const rank) )
  in
  (match Query.solve g (guarded 2) ~root:r with
  | Query.Sat _ -> ()
  | _ -> Alcotest.fail "rank guard should pass");
  match Query.solve g (guarded 3) ~root:r with
  | Query.Unsat -> ()
  | _ -> Alcotest.fail "rank guard should fail"

let test_recursion_unsupported () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  Graph.set_outputs g [ Graph.add g Std_ops.relu [ x ] ];
  let mu =
    P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ]
      (P.alt (P.app Std_ops.relu [ P.call "P" [ "x" ] ]) (P.var "x"))
  in
  match Query.solve g mu ~root:(List.hd (Graph.outputs g)) with
  | Query.Unsupported _ -> ()
  | _ -> Alcotest.fail "recursion should be Unsupported"

(* ------------------------------------------------------------------ *)
(* Identity vs structure: the interesting semantic difference          *)
(* ------------------------------------------------------------------ *)

(* Mul(relu(x), relu(x)) with a SHARED relu node: both views match. *)
let test_nonlinear_shared () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  let m = Graph.add g Std_ops.mul [ r; r ] in
  Graph.set_outputs g [ m ];
  let pattern = P.app Std_ops.mul [ P.var "a"; P.var "a" ] in
  (match Query.solve g pattern ~root:m with
  | Query.Sat _ -> ()
  | _ -> Alcotest.fail "query view should match the shared node");
  checkb "term view agrees" true (term_matches g pattern m <> None)

(* Mul(relu(x), relu'(x)) with two DISTINCT but structurally equal relu
   nodes: the term view matches (values are equal), the query view does
   not (identities differ). *)
let test_nonlinear_duplicated () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r1 = Graph.add g Std_ops.relu [ x ] in
  let r2 = Graph.add g Std_ops.relu [ x ] in
  let m = Graph.add g Std_ops.mul [ r1; r2 ] in
  Graph.set_outputs g [ m ];
  let pattern = P.app Std_ops.mul [ P.var "a"; P.var "a" ] in
  checkb "term view matches (structural)" true (term_matches g pattern m <> None);
  match Query.solve g pattern ~root:m with
  | Query.Unsat -> ()
  | _ -> Alcotest.fail "query view must distinguish node identities"

(* size attribute: the database view counts distinct nodes, the tree view
   counts tree positions *)
let test_size_attribute_sees_sharing () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  let m = Graph.add g Std_ops.add [ r; r ] in
  Graph.set_outputs g [ m ];
  (* dag: add, relu, x = 3 distinct nodes; tree: add(relu(x), relu(x)) = 5 *)
  let guarded size =
    P.Guarded (P.var "a", Guard.Eq (Guard.Var_attr ("a", "size"), Guard.Const size))
  in
  (match Query.solve g (guarded 3) ~root:m with
  | Query.Sat _ -> ()
  | _ -> Alcotest.fail "dag size is 3");
  checkb "tree size is 5" true (term_matches g (guarded 5) m <> None)

(* ------------------------------------------------------------------ *)
(* Agreement with the term matcher on realistic graphs                 *)
(* ------------------------------------------------------------------ *)

(* On the zoo models (whose builders do not duplicate subgraphs), the query
   view and the term view find exactly the same match roots for the
   non-recursive corpus patterns, with corresponding assignments. *)
let test_agreement_on_models () =
  let entries =
    [
      Corpus.mha_fuse; Corpus.gelu_fuse; Corpus.epilog_bias_relu;
      Corpus.epilog_bias_gelu; Corpus.epilog_relu; Corpus.epilog_gelu;
      Corpus.conv_epilog; Corpus.mmxyt;
    ]
  in
  List.iter
    (fun name ->
      let m = Option.get (Zoo.find name) in
      let _, g = m.Zoo.build () in
      let view = Term_view.create g in
      let interp = Term_view.interp view in
      List.iter
        (fun (e : Program.entry) ->
          let term_roots = ref [] and query_roots = ref [] in
          List.iter
            (fun node ->
              let t = Term_view.term_of view node in
              (match Matcher.matches ~interp e.Program.pattern t with
              | Outcome.Matched (theta, _) ->
                  term_roots := (node.Graph.id, theta) :: !term_roots
              | _ -> ());
              match Query.solve g e.Program.pattern ~root:node with
              | Query.Sat env ->
                  query_roots := (node.Graph.id, env) :: !query_roots
              | Query.Unsat -> ()
              | Query.Unsupported msg -> Alcotest.fail msg)
            (Graph.live_nodes g);
          Alcotest.(check (list int))
            (Printf.sprintf "%s roots on %s" e.Program.pname name)
            (List.rev_map fst !term_roots)
            (List.rev_map fst !query_roots);
          (* assignments correspond *)
          List.iter2
            (fun (_, theta) (_, env) ->
              checkb "assignment corresponds" true
                (Query.env_agrees_with_subst view env theta))
            !term_roots !query_roots)
        entries)
    [ "bert-mini"; "pico"; "resnet10-ish"; "vgg11-ish" ]

(* ------------------------------------------------------------------ *)
(* Recursive queries: Datalog least-fixpoint evaluation                *)
(* ------------------------------------------------------------------ *)

let relu_tower n =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let rec go n acc =
    if n = 0 then acc else go (n - 1) (Graph.add g Std_ops.relu [ acc ])
  in
  let top = go n x in
  Graph.set_outputs g [ top ];
  (g, x, top)

let chain_pattern =
  (* mu P(z). Relu(P(z)) || z  -- leaf-parameterized chain *)
  P.mu "P" ~formals:[ "z" ] ~actuals:[ "z" ]
    (P.alt (P.app Std_ops.relu [ P.call "P" [ "z" ] ]) (P.var "z"))

let test_rec_chain () =
  let g, x, top = relu_tower 3 in
  match Query.solve_rec g chain_pattern ~root:top with
  | Query.Sat env ->
      (* z can be any suffix; the relation's first entry at the root is the
         longest derivation discovered first-iteration... assert only that
         some leaf is bound and the binding is on the chain *)
      checkb "z bound" true (Symbol.Map.mem "z" env.Query.nodes);
      ignore x
  | r ->
      Alcotest.failf "expected Sat, got %s"
        (match r with
        | Query.Unsat -> "Unsat"
        | Query.Unsupported m -> "Unsupported: " ^ m
        | _ -> "?")

let test_rec_agrees_with_term_matcher_on_roots () =
  (* the UnaryChain pattern of figure 3 over a mixed graph: the fixpoint
     evaluation and the term matcher agree on which roots match *)
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r1 = Graph.add g Std_ops.relu [ x ] in
  let s1 = Graph.add g Std_ops.sigmoid [ r1 ] in
  let m = Graph.add g Std_ops.mul [ s1; r1 ] in
  Graph.set_outputs g [ m ];
  let p = Corpus.unary_chain.Program.pattern in
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  let term_roots =
    List.filter_map
      (fun n ->
        match
          Matcher.matches ~interp p (Term_view.term_of view n)
        with
        | Outcome.Matched _ -> Some n.Graph.id
        | _ -> None)
      (Graph.live_nodes g)
  in
  let query_roots =
    List.map (fun (n, _) -> n.Graph.id) (Query.solve_rec_all g p)
  in
  Alcotest.(check (list int)) "same roots" term_roots query_roots

let test_rec_mu_self_terminates () =
  (* mu P(x). P(x): the machine diverges (out of fuel); the least fixpoint
     is empty, so the query answer is Unsat -- and it terminates *)
  let g, _, top = relu_tower 1 in
  let p = P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ] (P.call "P" [ "x" ]) in
  (match Query.solve_rec g p ~root:top with
  | Query.Unsat -> ()
  | _ -> Alcotest.fail "least fixpoint of mu P. P is empty");
  (* contrast: the machine runs out of fuel on the same pattern *)
  let view = Term_view.create g in
  match
    Machine.run ~interp:(Term_view.interp view) ~fuel:500 p
      (Term_view.term_of view top)
  with
  | Outcome.Out_of_fuel -> ()
  | o -> Alcotest.failf "machine should diverge, got %s" (Outcome.to_string o)

let test_rec_formals_consistent_across_levels () =
  (* UnaryChain(x, F): F is a formal, so the fixpoint relation carries it
     and the whole chain must use ONE operator, exactly like the term
     semantics *)
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let mixed =
    Graph.add g Std_ops.sigmoid [ Graph.add g Std_ops.relu [ x ] ]
  in
  Graph.set_outputs g [ mixed ];
  let p = Corpus.unary_chain.Program.pattern in
  match Query.solve_rec g p ~root:mixed with
  | Query.Sat env ->
      (* matches only the single sigmoid link (length-1 chain) *)
      Alcotest.(check (option string))
        "F is the top operator" (Some Std_ops.sigmoid)
        (Symbol.Map.find_opt "F" env.Query.ops)
  | _ -> Alcotest.fail "single link should match"

let test_rec_nonrecursive_patterns_unchanged () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ r ];
  let p = P.app Std_ops.relu [ P.var "a" ] in
  checkb "solve_rec = solve on non-recursive" true
    (match (Query.solve g p ~root:r, Query.solve_rec g p ~root:r) with
    | Query.Sat _, Query.Sat _ -> true
    | Query.Unsat, Query.Unsat -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* solve_all                                                           *)
(* ------------------------------------------------------------------ *)

let test_solve_all () =
  let _, g = fresh () in
  let x = Graph.input g ~name:"x" (f32 [ 4 ]) in
  let r1 = Graph.add g Std_ops.relu [ x ] in
  let r2 = Graph.add g Std_ops.relu [ r1 ] in
  Graph.set_outputs g [ r2 ];
  let hits = Query.solve_all g (P.app Std_ops.relu [ P.var "a" ]) in
  Alcotest.(check (list int))
    "both relus" [ r1.Graph.id; r2.Graph.id ]
    (List.map (fun (n, _) -> n.Graph.id) hits)

let () =
  Alcotest.run "query"
    [
      ( "basics",
        [
          Alcotest.test_case "structural match" `Quick test_structural_match;
          Alcotest.test_case "head mismatch" `Quick test_head_mismatch;
          Alcotest.test_case "alternates + fvars" `Quick
            test_alternates_and_fvars;
          Alcotest.test_case "node guards" `Quick test_guards_on_nodes;
          Alcotest.test_case "recursion unsupported" `Quick
            test_recursion_unsupported;
          Alcotest.test_case "solve_all" `Quick test_solve_all;
        ] );
      ( "identity-vs-structure",
        [
          Alcotest.test_case "shared node matches" `Quick test_nonlinear_shared;
          Alcotest.test_case "duplicated nodes do not" `Quick
            test_nonlinear_duplicated;
          Alcotest.test_case "size sees sharing" `Quick
            test_size_attribute_sees_sharing;
        ] );
      ( "recursive-queries",
        [
          Alcotest.test_case "chain fixpoint" `Quick test_rec_chain;
          Alcotest.test_case "agrees with the term matcher" `Quick
            test_rec_agrees_with_term_matcher_on_roots;
          Alcotest.test_case "mu P. P terminates (Unsat)" `Quick
            test_rec_mu_self_terminates;
          Alcotest.test_case "formals consistent across levels" `Quick
            test_rec_formals_consistent_across_levels;
          Alcotest.test_case "non-recursive unchanged" `Quick
            test_rec_nonrecursive_patterns_unchanged;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "term and query views agree on the zoo" `Quick
            test_agreement_on_models;
        ] );
    ]
