(* Tests for the tensor substrate: dtypes, shapes, types, inference rules,
   and the tensor attribute interpretation. *)

open Pypm
module F = Pypm_testutil.Fixtures

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let shape_t = Alcotest.(list int)

let check_shape name expected actual =
  Alcotest.(check (option shape_t)) name expected actual

(* ------------------------------------------------------------------ *)
(* Dtypes                                                              *)
(* ------------------------------------------------------------------ *)

let test_dtype_codes_roundtrip () =
  List.iter
    (fun dt ->
      Alcotest.(check (option string))
        "code roundtrip"
        (Some (Dtype.to_string dt))
        (Option.map Dtype.to_string (Dtype.of_code (Dtype.code dt))))
    Dtype.all;
  checkb "bad code" true (Dtype.of_code 99 = None)

let test_dtype_strings_roundtrip () =
  List.iter
    (fun dt ->
      Alcotest.(check bool)
        "string roundtrip" true
        (Dtype.of_string (Dtype.to_string dt) = Some dt))
    Dtype.all

let test_dtype_bytes () =
  checki "f32" 4 (Dtype.bytes Dtype.F32);
  checki "f16" 2 (Dtype.bytes Dtype.F16);
  checki "i8" 1 (Dtype.bytes Dtype.I8);
  checki "f64" 8 (Dtype.bytes Dtype.F64)

let test_dtype_class () =
  checkb "f32 float" true (Dtype.is_float Dtype.F32);
  checkb "i8 not float" false (Dtype.is_float Dtype.I8)

(* ------------------------------------------------------------------ *)
(* Shapes                                                              *)
(* ------------------------------------------------------------------ *)

let test_shape_basics () =
  checki "rank" 3 (Shape.rank [ 2; 3; 4 ]);
  checki "nelems" 24 (Shape.nelems [ 2; 3; 4 ]);
  checki "scalar nelems" 1 (Shape.nelems Shape.scalar);
  Alcotest.(check (option int)) "dim" (Some 3) (Shape.dim 1 [ 2; 3; 4 ]);
  Alcotest.(check (option int)) "dim oob" None (Shape.dim 5 [ 2; 3 ])

let test_broadcast () =
  check_shape "equal" (Some [ 2; 3 ]) (Shape.broadcast [ 2; 3 ] [ 2; 3 ]);
  check_shape "ones" (Some [ 2; 3 ]) (Shape.broadcast [ 2; 1 ] [ 1; 3 ]);
  check_shape "pad" (Some [ 4; 2; 3 ]) (Shape.broadcast [ 4; 2; 3 ] [ 3 ]);
  check_shape "scalar" (Some [ 5 ]) (Shape.broadcast [] [ 5 ]);
  check_shape "mismatch" None (Shape.broadcast [ 2; 3 ] [ 2; 4 ])

let test_matmul () =
  check_shape "2d" (Some [ 2; 5 ]) (Shape.matmul [ 2; 3 ] [ 3; 5 ]);
  check_shape "batched" (Some [ 7; 2; 5 ]) (Shape.matmul [ 7; 2; 3 ] [ 3; 5 ]);
  check_shape "batched both"
    (Some [ 7; 2; 5 ])
    (Shape.matmul [ 7; 2; 3 ] [ 7; 3; 5 ]);
  check_shape "inner mismatch" None (Shape.matmul [ 2; 3 ] [ 4; 5 ]);
  check_shape "rank too low" None (Shape.matmul [ 3 ] [ 3; 5 ])

let test_transpose () =
  check_shape "2d" (Some [ 3; 2 ]) (Shape.transpose_last2 [ 2; 3 ]);
  check_shape "batched" (Some [ 7; 3; 2 ]) (Shape.transpose_last2 [ 7; 2; 3 ]);
  check_shape "rank 1" None (Shape.transpose_last2 [ 4 ])

let test_conv2d () =
  (* 3x3 stride 1 pad 1 preserves spatial dims *)
  check_shape "same conv"
    (Some [ 1; 8; 16; 16 ])
    (Shape.conv2d ~stride:1 ~pad:1 [ 1; 3; 16; 16 ] [ 8; 3; 3; 3 ]);
  (* stride 2 halves *)
  check_shape "strided conv"
    (Some [ 1; 8; 8; 8 ])
    (Shape.conv2d ~stride:2 ~pad:1 [ 1; 3; 16; 16 ] [ 8; 3; 3; 3 ]);
  check_shape "channel mismatch" None
    (Shape.conv2d ~stride:1 ~pad:0 [ 1; 3; 16; 16 ] [ 8; 4; 3; 3 ])

let test_pool_flatten_concat_reduce () =
  check_shape "pool"
    (Some [ 1; 8; 8; 8 ])
    (Shape.pool2d ~window:2 ~stride:2 [ 1; 8; 16; 16 ]);
  check_shape "flatten"
    (Some [ 2; 24 ])
    (Shape.flatten_from 1 [ 2; 2; 3; 4 ]);
  check_shape "concat"
    (Some [ 2; 7 ])
    (Shape.concat 1 [ 2; 3 ] [ 2; 4 ]);
  check_shape "concat mismatch" None (Shape.concat 1 [ 2; 3 ] [ 3; 4 ]);
  check_shape "reduce" (Some [ 2; 4 ]) (Shape.reduce 1 [ 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let f32 shape = Ty.make Dtype.F32 shape

let expect_ok name rule attrs inputs expected =
  match rule attrs inputs with
  | Ok ty -> Alcotest.(check string) name expected (Ty.to_string ty)
  | Error e -> Alcotest.failf "%s: %s" name e

let expect_err name rule attrs inputs =
  match rule attrs inputs with
  | Ok ty -> Alcotest.failf "%s: expected error, got %s" name (Ty.to_string ty)
  | Error _ -> ()

let test_infer_rules () =
  expect_ok "pointwise1" Infer.pointwise1 [] [ f32 [ 2; 3 ] ] "f32[2x3]";
  expect_ok "pointwise2 broadcast" Infer.pointwise2 []
    [ f32 [ 2; 3 ]; f32 [] ]
    "f32[2x3]";
  expect_err "pointwise2 dtype" Infer.pointwise2 []
    [ f32 [ 2 ]; Ty.make Dtype.I8 [ 2 ] ];
  expect_ok "matmul" Infer.matmul [] [ f32 [ 2; 3 ]; f32 [ 3; 5 ] ] "f32[2x5]";
  expect_ok "transpose" Infer.transpose [] [ f32 [ 2; 3 ] ] "f32[3x2]";
  expect_err "softmax int" Infer.softmax [] [ Ty.make Dtype.I32 [ 2 ] ];
  expect_ok "conv2d" Infer.conv2d
    [ ("stride", 2); ("pad", 1) ]
    [ f32 [ 1; 3; 16; 16 ]; f32 [ 8; 3; 3; 3 ]; f32 [ 8; 1; 1 ] ]
    "f32[1x8x8x8]";
  expect_ok "linear" Infer.linear [] [ f32 [ 4; 3 ]; f32 [ 3; 7 ] ] "f32[4x7]";
  expect_ok "leaf" Infer.leaf
    [ ("dtype", Dtype.code Dtype.F16); ("rank", 2); ("dim0", 3); ("dim1", 4) ]
    [] "f16[3x4]"

let test_infer_registry () =
  let reg = Infer.create () in
  Infer.register reg "MyOp" Infer.pointwise1;
  checkb "mem" true (Infer.mem reg "MyOp");
  checkb "not mem" false (Infer.mem reg "Other");
  (match Infer.infer reg "MyOp" ~attrs:[] [ f32 [ 2 ] ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "registered rule: %s" e);
  match Infer.infer reg "Other" ~attrs:[] [] with
  | Ok _ -> Alcotest.fail "unregistered op typed"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Attribute interpretation                                            *)
(* ------------------------------------------------------------------ *)

let test_class_codes () =
  let a = Attrs.class_code "unary_pointwise" in
  let b = Attrs.class_code "unary_pointwise" in
  checki "interned" a b;
  checkb "name back" true (Attrs.class_name a = Some "unary_pointwise");
  checkb "distinct" true (Attrs.class_code "matmul" <> a)

let test_tensor_interp () =
  let ty = f32 [ 2; 3 ] in
  let t = Term.const "leaf" in
  let type_of u = if Term.equal u t then Some ty else None in
  let interp = Attrs.interp ~sg:F.sg ~type_of in
  let get attr = interp.Guard.term_attr attr t in
  Alcotest.(check (option int)) "rank" (Some 2) (get "rank");
  Alcotest.(check (option int)) "dim0" (Some 2) (get "dim0");
  Alcotest.(check (option int)) "dim1" (Some 3) (get "dim1");
  Alcotest.(check (option int)) "dim2" None (get "dim2");
  Alcotest.(check (option int))
    "eltType" (Some (Dtype.code Dtype.F32)) (get "eltType");
  Alcotest.(check (option int)) "nelems" (Some 6) (get "nelems");
  Alcotest.(check (option int)) "bytes" (Some 24) (get "bytes");
  Alcotest.(check (option int)) "size (structural)" (Some 1) (get "size");
  Alcotest.(check (option int)) "unknown" None (get "zzz");
  (* untyped term: tensor attributes undefined, structural ones remain *)
  let u = Term.const "other" in
  Alcotest.(check (option int)) "untyped rank" None (interp.Guard.term_attr "rank" u);
  Alcotest.(check (option int))
    "untyped size" (Some 1)
    (interp.Guard.term_attr "size" u)

let test_sym_attrs () =
  let interp = Attrs.structural ~sg:F.sg in
  Alcotest.(check (option int)) "arity f" (Some 2) (interp.Guard.sym_attr "arity" "f");
  Alcotest.(check (option int)) "arity missing" None (interp.Guard.sym_attr "arity" "zzz")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let shape_gen =
  QCheck2.Gen.(list_size (int_range 0 4) (int_range 1 8))

let prop_broadcast_comm =
  F.qtest "broadcast is commutative"
    QCheck2.Gen.(pair shape_gen shape_gen)
    (fun (a, b) -> Printf.sprintf "%s vs %s" (Shape.to_string a) (Shape.to_string b))
    (fun (a, b) ->
      match (Shape.broadcast a b, Shape.broadcast b a) with
      | Some x, Some y -> Shape.equal x y
      | None, None -> true
      | _ -> false)

let prop_broadcast_idem =
  F.qtest "broadcast with self is identity" shape_gen Shape.to_string
    (fun s ->
      match Shape.broadcast s s with Some x -> Shape.equal x s | None -> false)

let prop_transpose_involutive =
  F.qtest "transpose_last2 is involutive" shape_gen Shape.to_string (fun s ->
      match Shape.transpose_last2 s with
      | Some s' -> Shape.transpose_last2 s' = Some s
      | None -> Shape.rank s < 2)

let prop_nelems_positive =
  F.qtest "nelems positive on valid shapes" shape_gen Shape.to_string
    (fun s -> (not (Shape.valid s)) || Shape.nelems s >= 1)

let () =
  Alcotest.run "tensor"
    [
      ( "dtype",
        [
          Alcotest.test_case "code roundtrip" `Quick test_dtype_codes_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick
            test_dtype_strings_roundtrip;
          Alcotest.test_case "bytes" `Quick test_dtype_bytes;
          Alcotest.test_case "float class" `Quick test_dtype_class;
        ] );
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "conv2d" `Quick test_conv2d;
          Alcotest.test_case "pool/flatten/concat/reduce" `Quick
            test_pool_flatten_concat_reduce;
        ] );
      ( "infer",
        [
          Alcotest.test_case "rules" `Quick test_infer_rules;
          Alcotest.test_case "registry" `Quick test_infer_registry;
        ] );
      ( "attrs",
        [
          Alcotest.test_case "class codes" `Quick test_class_codes;
          Alcotest.test_case "tensor interpretation" `Quick test_tensor_interp;
          Alcotest.test_case "symbol attributes" `Quick test_sym_attrs;
        ] );
      ( "properties",
        [
          prop_broadcast_comm;
          prop_broadcast_idem;
          prop_transpose_involutive;
          prop_nelems_positive;
        ] );
    ]
