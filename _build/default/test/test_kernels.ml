(* Tests for the cost model and execution simulator: the properties the
   figures depend on (fusion removes launches and traffic; library kernels
   beat naive subgraphs; speedups are ratios of simulated times). *)

open Pypm

let checkb = Alcotest.(check bool)
let device = Cost.a6000

(* kernel cost specs are registered (globally) by Std_ops.make *)
let () = ignore (Std_ops.make ())
let f32 shape = Ty.make Dtype.F32 shape

let fresh_graph () =
  let e = Std_ops.make () in
  (e, Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer ())

(* ------------------------------------------------------------------ *)
(* Kernel registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  checkb "FMHA registered" true (Kernel.mem Std_ops.fmha);
  checkb "cublas registered" true (Kernel.mem Std_ops.cublas_mm_xyt_f32);
  checkb "naive matmul not a library kernel" false (Kernel.mem Std_ops.matmul);
  (match Kernel.find Std_ops.fmha with
  | Some spec ->
      checkb "one launch" true (spec.Kernel.launches = 1);
      checkb "high efficiency" true (spec.Kernel.efficiency > 0.8)
  | None -> Alcotest.fail "missing spec");
  checkb "registered list nonempty" true (List.length (Kernel.registered ()) >= 5)

let test_flops_formulas () =
  let out = f32 [ 2; 5 ] in
  let inputs = [ f32 [ 2; 3 ]; f32 [ 3; 5 ] ] in
  Alcotest.(check (float 1e-6)) "matmul flops" 60.0 (Kernel.matmul_flops inputs out);
  Alcotest.(check (float 1e-6))
    "pointwise flops" 10.0
    (Kernel.pointwise_flops inputs out);
  checkb "mha flops positive" true
    (Kernel.mha_flops [ f32 [ 2; 4; 16; 8 ] ] (f32 [ 2; 4; 16; 8 ]) > 0.)

(* ------------------------------------------------------------------ *)
(* Node work classification                                            *)
(* ------------------------------------------------------------------ *)

let test_leaves_cost_nothing () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 128; 128 ]) in
  let c = Graph.constant g 2.0 in
  Alcotest.(check (float 0.)) "input" 0. (Cost.node_cost device g x);
  Alcotest.(check (float 0.)) "constant" 0. (Cost.node_cost device g c)

let test_matmul_vs_pointwise () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 512; 512 ]) in
  let w = Graph.input g ~name:"w" (f32 [ 512; 512 ]) in
  let mm = Graph.add g Std_ops.matmul [ x; w ] in
  let r = Graph.add g Std_ops.relu [ mm ] in
  checkb "matmul dominates a relu of the same size" true
    (Cost.node_cost device g mm > Cost.node_cost device g r)

let test_launch_overhead_floor () =
  (* tiny op: launch overhead dominates *)
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 2 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  checkb "cost >= launch overhead" true
    (Cost.node_cost device g r >= device.Cost.launch_overhead)

let test_library_kernel_beats_naive_subgraph () =
  (* naive x @ w^T (transpose + matmul) vs the fused cublas kernel *)
  let _, g1 = fresh_graph () in
  let x = Graph.input g1 ~name:"x" (f32 [ 256; 256 ]) in
  let w = Graph.input g1 ~name:"w" (f32 [ 256; 256 ]) in
  let mm = Graph.add g1 Std_ops.matmul [ x; Graph.add g1 Std_ops.trans [ w ] ] in
  Graph.set_outputs g1 [ mm ];
  let _, g2 = fresh_graph () in
  let x2 = Graph.input g2 ~name:"x" (f32 [ 256; 256 ]) in
  let w2 = Graph.input g2 ~name:"w" (f32 [ 256; 256 ]) in
  let k = Graph.add g2 Std_ops.cublas_mm_xyt_f32 [ x2; w2 ] in
  Graph.set_outputs g2 [ k ];
  checkb "fused kernel cheaper" true
    (Exec.graph_cost device g2 < Exec.graph_cost device g1)

let test_fused_region_cheaper () =
  (* relu(gelu(relu(x))): three launches + intermediate traffic naive;
     fused region = one launch, boundary traffic *)
  let build () =
    let e = Std_ops.make () in
    let g = Graph.create ~sg:e.Std_ops.sg ~infer:e.Std_ops.infer () in
    let x = Graph.input g ~name:"x" (f32 [ 1024; 1024 ]) in
    let n =
      Graph.add g Std_ops.relu
        [ Graph.add g Std_ops.gelu [ Graph.add g Std_ops.relu [ x ] ] ]
    in
    Graph.set_outputs g [ n ];
    (e, g, n)
  in
  let _, g1, _ = build () in
  let before = Exec.graph_cost device g1 in
  let e2, g2, root = build () in
  ignore e2;
  let view = Term_view.create g2 in
  ignore view;
  (* fuse manually via the partition API with a chain pattern over relu *)
  let region =
    {
      Partition.pattern_name = "manual";
      root;
      interior = List.filter (fun n -> n.Graph.inputs <> []) (Graph.live_nodes g2);
      inputs = List.filter (fun n -> n.Graph.inputs = []) (Graph.live_nodes g2);
      theta = Subst.empty;
    }
  in
  let fused = Partition.fuse g2 region in
  (* annotate the fused node with interior flops so the cost model can
     charge its compute *)
  ignore fused;
  let after = Exec.graph_cost device g2 in
  checkb "fusion reduces simulated time" true (after < before)

let test_totals_accounting () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 64; 64 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  let s = Graph.add g Std_ops.sigmoid [ r ] in
  Graph.set_outputs g [ s ];
  let t = Exec.totals device g in
  Alcotest.(check (float 1e-9)) "two launches" 2.0 t.Exec.launches;
  checkb "flops counted" true (t.Exec.flops >= 2. *. 4096.);
  checkb "traffic counted" true (t.Exec.bytes > 0.);
  Alcotest.(check (float 1e-12)) "time equals graph_cost"
    (Exec.graph_cost device g) t.Exec.time

let test_speedup () =
  Alcotest.(check (float 1e-9)) "ratio" 2.0 (Exec.speedup ~baseline:4.0 ~optimized:2.0);
  Alcotest.(check (float 1e-9)) "degenerate" 1.0 (Exec.speedup ~baseline:4.0 ~optimized:0.0)

let test_breakdown_sums () =
  let _, g = fresh_graph () in
  let x = Graph.input g ~name:"x" (f32 [ 32; 32 ]) in
  let r = Graph.add g Std_ops.relu [ x ] in
  Graph.set_outputs g [ r ];
  let parts = Exec.breakdown device g in
  let sum = List.fold_left (fun acc (_, c) -> acc +. c) 0. parts in
  Alcotest.(check (float 1e-12)) "breakdown sums to total" (Exec.graph_cost device g) sum

let test_dtype_peaks () =
  (* same work completes faster at f16 than f32 (higher peak) *)
  let w =
    { Cost.flops = 1e12; bytes = 0.; launches = 0.; efficiency = 1.0 }
  in
  checkb "f16 faster" true
    (Cost.seconds device ~dtype:Dtype.F16 w < Cost.seconds device ~dtype:Dtype.F32 w);
  checkb "i8 fastest" true
    (Cost.seconds device ~dtype:Dtype.I8 w < Cost.seconds device ~dtype:Dtype.F16 w)

let test_roofline () =
  (* memory-bound work: time equals bytes/bw regardless of flops *)
  let w = { Cost.flops = 1.0; bytes = 768.e9; launches = 0.; efficiency = 1.0 } in
  Alcotest.(check (float 1e-3)) "bandwidth bound" 1.0
    (Cost.seconds device ~dtype:Dtype.F32 w);
  let w' = { w with Cost.flops = 38.7e12; bytes = 1.0 } in
  Alcotest.(check (float 1e-3)) "compute bound" 1.0
    (Cost.seconds device ~dtype:Dtype.F32 w')

let () =
  Alcotest.run "kernels"
    [
      ( "registry",
        [
          Alcotest.test_case "registration" `Quick test_registry;
          Alcotest.test_case "flops formulas" `Quick test_flops_formulas;
        ] );
      ( "cost",
        [
          Alcotest.test_case "leaves are free" `Quick test_leaves_cost_nothing;
          Alcotest.test_case "matmul vs pointwise" `Quick
            test_matmul_vs_pointwise;
          Alcotest.test_case "launch overhead floor" `Quick
            test_launch_overhead_floor;
          Alcotest.test_case "library kernel wins" `Quick
            test_library_kernel_beats_naive_subgraph;
          Alcotest.test_case "fused region wins" `Quick
            test_fused_region_cheaper;
          Alcotest.test_case "dtype peaks" `Quick test_dtype_peaks;
          Alcotest.test_case "roofline" `Quick test_roofline;
        ] );
      ( "exec",
        [
          Alcotest.test_case "totals" `Quick test_totals_accounting;
          Alcotest.test_case "speedup" `Quick test_speedup;
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
        ] );
    ]
