(* Tests for the synthetic model zoo: determinism, structural validity,
   expected pattern-site counts, and end-to-end optimization. *)

open Pypm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b);
  let c = Rng.create ~seed:43 in
  checkb "different seed differs" true (seq (Rng.create ~seed:42) <> seq c)

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    checkb "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 100 do
    let v = Rng.range r 3 5 in
    checkb "range inclusive" true (v >= 3 && v <= 5)
  done

let test_rng_pick () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 50 do
    checkb "picks member" true (List.mem (Rng.pick r [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done

(* ------------------------------------------------------------------ *)
(* Transformers                                                        *)
(* ------------------------------------------------------------------ *)

let build_tf cfg =
  let env = Std_ops.make () in
  (env, Transformer.build env cfg)

let test_transformer_valid () =
  let cfg = Transformer.config "t" ~layers:3 ~hidden:64 ~seq:16 ~batch:2 in
  let _, g = build_tf cfg in
  Alcotest.(check (list string)) "valid" [] (Graph.validate g);
  checki "one output" 1 (List.length (Graph.outputs g));
  checkb "every node typed" true
    (List.for_all (fun n -> n.Graph.ty <> None) (Graph.live_nodes g))

let test_transformer_output_shape () =
  let cfg =
    Transformer.config "t" ~layers:1 ~hidden:64 ~seq:16 ~batch:2 ~vocab:100
  in
  let _, g = build_tf cfg in
  match (List.hd (Graph.outputs g)).Graph.ty with
  | Some ty -> Alcotest.(check string) "logits" "f32[2x16x100]" (Ty.to_string ty)
  | None -> Alcotest.fail "untyped output"

let test_transformer_mha_sites () =
  List.iter
    (fun layers ->
      let cfg = Transformer.config "t" ~layers ~hidden:64 ~seq:16 in
      let env, g = build_tf cfg in
      let stats = Pass.match_only (Corpus.fmha_program env.Std_ops.sg) g in
      let ps = Option.get (Pass.find_pattern_stats stats "MHA") in
      checki
        (Printf.sprintf "%d layers -> %d MHA sites" layers layers)
        (Transformer.expected_mha_sites cfg)
        ps.Pass.matches)
    [ 1; 2; 5 ]

let test_transformer_gelu_variants_differ () =
  let mk act seed =
    let cfg =
      Transformer.config "t" ~layers:1 ~hidden:64 ~seq:16 ~activation:act ~seed
    in
    build_tf cfg
  in
  let _, g_div = mk (Transformer.Act_gelu Transformer.Div_two) 3 in
  let _, g_mul = mk (Transformer.Act_gelu Transformer.Mul_half) 3 in
  checki "div spelling uses Div" 2 (Graph.count_op g_div Std_ops.div);
  (* Mul_half spelling: one less Div (only the erf argument), extra Mul *)
  checki "mul spelling uses one Div" 1 (Graph.count_op g_mul Std_ops.div);
  (* both fuse to exactly one Gelu per layer *)
  List.iter
    (fun (env, g) ->
      ignore (Pass.run (Corpus.epilog_program env.Std_ops.sg) g);
      checki "one gelu epilog fused" 1
        (Graph.count_op g Std_ops.gemm_bias_epilog_gelu))
    [ mk (Transformer.Act_gelu Transformer.Div_two) 5;
      mk (Transformer.Act_gelu Transformer.Mul_half) 5 ]

let test_transformer_relu_models () =
  let cfg =
    Transformer.config "t" ~layers:2 ~hidden:64 ~seq:16
      ~activation:Transformer.Act_relu
  in
  let env, g = build_tf cfg in
  ignore (Pass.run (Corpus.epilog_program env.Std_ops.sg) g);
  checki "relu epilogs fused" 2 (Graph.count_op g Std_ops.gemm_bias_epilog_relu);
  checki "no gelu epilogs" 0 (Graph.count_op g Std_ops.gemm_bias_epilog_gelu)

let test_transformer_deterministic () =
  let cfg = Transformer.config "t" ~layers:2 ~hidden:64 ~seq:16 ~seed:17 in
  let _, g1 = build_tf cfg in
  let _, g2 = build_tf cfg in
  checki "same node count" (Graph.live_count g1) (Graph.live_count g2);
  let ops g = List.map (fun n -> n.Graph.op) (Graph.live_nodes g) in
  (* input symbols are freshened per graph; compare op name prefixes *)
  let strip s = match String.index_opt s '%' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  Alcotest.(check (list string))
    "same op sequence"
    (List.map strip (ops g1))
    (List.map strip (ops g2))

(* ------------------------------------------------------------------ *)
(* Vision models                                                       *)
(* ------------------------------------------------------------------ *)

let build_v cfg =
  let env = Std_ops.make () in
  (env, Vision.build env cfg)

let test_vision_valid () =
  let cfg = Vision.config "v" ~stages:3 ~blocks_per_stage:2 ~residual:true in
  let _, g = build_v cfg in
  Alcotest.(check (list string)) "valid" [] (Graph.validate g);
  checkb "every node typed" true
    (List.for_all (fun n -> n.Graph.ty <> None) (Graph.live_nodes g))

let test_vision_output_shape () =
  let cfg = Vision.config "v" ~stages:2 ~blocks_per_stage:1 ~batch:2 ~classes:10 in
  let _, g = build_v cfg in
  match (List.hd (Graph.outputs g)).Graph.ty with
  | Some ty -> Alcotest.(check string) "logits" "f32[2x10]" (Ty.to_string ty)
  | None -> Alcotest.fail "untyped output"

let test_vision_conv_epilogs () =
  let cfg = Vision.config "v" ~stages:3 ~blocks_per_stage:2 in
  let env, g = build_v cfg in
  let stats = Pass.match_only (Corpus.epilog_program env.Std_ops.sg) g in
  let ps = Option.get (Pass.find_pattern_stats stats "ConvEpilog") in
  checki "expected conv epilog sites" (Vision.expected_conv_epilogs cfg)
    ps.Pass.matches

let test_vision_vgg_pools () =
  let cfg = Vision.config "v" ~stages:3 ~blocks_per_stage:1 ~residual:false in
  let _, g = build_v cfg in
  checki "one pool per downsampling stage" 2 (Graph.count_op g Std_ops.max_pool);
  let cfg_res = Vision.config "v" ~stages:3 ~blocks_per_stage:1 ~residual:true in
  let _, g2 = build_v cfg_res in
  checki "residual nets use strided convs" 0 (Graph.count_op g2 Std_ops.max_pool)

let test_vision_no_mha () =
  let cfg = Vision.config "v" in
  let env, g = build_v cfg in
  let stats = Pass.match_only (Corpus.fmha_program env.Std_ops.sg) g in
  let ps = Option.get (Pass.find_pattern_stats stats "MHA") in
  checki "no MHA sites in CNNs" 0 ps.Pass.matches

let test_vision_classifier_hidden_epilog () =
  let cfg =
    Vision.config "v" ~stages:1 ~blocks_per_stage:1
      ~classifier_hidden:(Some 64)
  in
  let env, g = build_v cfg in
  ignore (Pass.run (Corpus.epilog_program env.Std_ops.sg) g);
  checki "hidden FC fused" 1 (Graph.count_op g Std_ops.gemm_bias_epilog_relu)

(* ------------------------------------------------------------------ *)
(* Multimodal models                                                   *)
(* ------------------------------------------------------------------ *)

let test_multimodal_all_families_fire () =
  let env = Std_ops.make () in
  let cfg = Multimodal.config "clip-test" ~embed:64 ~image:32 ~text_layers:2 ~text_seq:16 in
  let g = Multimodal.build env cfg in
  Alcotest.(check (list string)) "valid" [] (Graph.validate g);
  (* all three optimization families have sites in one graph *)
  let full = Corpus.full_program env.Std_ops.sg in
  let before = Exec.graph_cost Cost.a6000 g in
  let stats = Pass.run full g in
  let after = Exec.graph_cost Cost.a6000 g in
  checkb "fmha fused" true (Graph.count_op g Std_ops.fmha >= 2);
  checkb "conv epilogs fused" true (Graph.count_op g Std_ops.conv_bias_relu >= 2);
  checkb "gelu epilogs fused" true
    (Graph.count_op g Std_ops.gemm_bias_epilog_gelu >= 2);
  checki "figure-1 similarity head fused" 1
    (Graph.count_op g Std_ops.cublas_mm_xyt_f32);
  checkb "rewrites" true (stats.Pass.total_rewrites >= 7);
  checkb "faster" true (after < before);
  Alcotest.(check (list string)) "still valid" [] (Graph.validate g)

(* ------------------------------------------------------------------ *)
(* Zoo                                                                 *)
(* ------------------------------------------------------------------ *)

let test_zoo_sizes () =
  checkb "hf >= 25 models" true (List.length (Zoo.hf ()) >= 25);
  checkb "tv >= 25 models" true (List.length (Zoo.tv ()) >= 25);
  checkb "mm >= 3 models" true (List.length (Zoo.mm ()) >= 3)

let test_zoo_names_unique () =
  let names = List.map (fun m -> m.Zoo.mname) (Zoo.all ()) in
  checki "unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_zoo_find () =
  checkb "find hit" true (Zoo.find "bert-tiny" <> None);
  checkb "find miss" true (Zoo.find "nonexistent" = None)

let test_zoo_all_build_valid () =
  (* smoke-build the three smallest of each family *)
  List.iter
    (fun name ->
      match Zoo.find name with
      | Some m ->
          let _, g = m.Zoo.build () in
          Alcotest.(check (list string)) (name ^ " valid") [] (Graph.validate g)
      | None -> Alcotest.failf "missing zoo model %s" name)
    [ "pico"; "nano-relu"; "femto"; "conv-pico"; "conv-nano"; "conv-femto" ]

let test_zoo_end_to_end_speedup () =
  (* optimizing any transformer strictly reduces simulated cost *)
  let m = Option.get (Zoo.find "bert-tiny") in
  let env, g = m.Zoo.build () in
  let before = Exec.graph_cost Cost.a6000 g in
  ignore (Pass.run (Corpus.both_program env.Std_ops.sg) g);
  let after = Exec.graph_cost Cost.a6000 g in
  checkb "optimization helps" true (after < before)

let () =
  Alcotest.run "models"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "transformer",
        [
          Alcotest.test_case "valid" `Quick test_transformer_valid;
          Alcotest.test_case "output shape" `Quick test_transformer_output_shape;
          Alcotest.test_case "MHA sites" `Quick test_transformer_mha_sites;
          Alcotest.test_case "gelu variants" `Quick
            test_transformer_gelu_variants_differ;
          Alcotest.test_case "relu models" `Quick test_transformer_relu_models;
          Alcotest.test_case "deterministic" `Quick
            test_transformer_deterministic;
        ] );
      ( "vision",
        [
          Alcotest.test_case "valid" `Quick test_vision_valid;
          Alcotest.test_case "output shape" `Quick test_vision_output_shape;
          Alcotest.test_case "conv epilog sites" `Quick
            test_vision_conv_epilogs;
          Alcotest.test_case "VGG pooling" `Quick test_vision_vgg_pools;
          Alcotest.test_case "no MHA" `Quick test_vision_no_mha;
          Alcotest.test_case "classifier hidden epilog" `Quick
            test_vision_classifier_hidden_epilog;
        ] );
      ( "multimodal",
        [
          Alcotest.test_case "all families fire" `Quick
            test_multimodal_all_families_fire;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "sizes" `Quick test_zoo_sizes;
          Alcotest.test_case "unique names" `Quick test_zoo_names_unique;
          Alcotest.test_case "find" `Quick test_zoo_find;
          Alcotest.test_case "small models build" `Quick
            test_zoo_all_build_valid;
          Alcotest.test_case "end-to-end speedup" `Quick
            test_zoo_end_to_end_speedup;
        ] );
    ]
