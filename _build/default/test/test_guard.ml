(* Tests for guard expressions and their evaluation (section 3.2). *)

open Pypm_term
open Pypm_pattern
open Pypm_testutil
module F = Fixtures
module G = Guard

let theta_x t = Subst.of_list [ ("x", t) ]
let eval ?(theta = Subst.empty) ?(phi = Fsubst.empty) g =
  G.eval F.interp theta phi g

let check_eval name expected ?theta ?phi g =
  Alcotest.(check (option bool)) name expected (eval ?theta ?phi g)

let test_consts () =
  check_eval "1 == 1" (Some true) (G.Eq (G.Const 1, G.Const 1));
  check_eval "1 == 2" (Some false) (G.Eq (G.Const 1, G.Const 2));
  check_eval "1 < 2" (Some true) (G.Lt (G.Const 1, G.Const 2));
  check_eval "2 <= 2" (Some true) (G.Le (G.Const 2, G.Const 2));
  check_eval "1 != 2" (Some true) (G.Ne (G.Const 1, G.Const 2));
  check_eval "true" (Some true) G.True;
  check_eval "false" (Some false) G.False

let test_arith () =
  check_eval "1+2 == 3" (Some true) (G.Eq (G.Add (G.Const 1, G.Const 2), G.Const 3));
  check_eval "5-2 == 3" (Some true) (G.Eq (G.Sub (G.Const 5, G.Const 2), G.Const 3));
  check_eval "2*3 == 6" (Some true) (G.Eq (G.Mul (G.Const 2, G.Const 3), G.Const 6))

let test_mod () =
  check_eval "7 % 3 == 1" (Some true)
    (G.Eq (G.Mod (G.Const 7, G.Const 3), G.Const 1));
  check_eval "16 % 8 == 0" (Some true)
    (G.Eq (G.Mod (G.Const 16, G.Const 8), G.Const 0));
  (* modulo by zero is undefined, which poisons the comparison *)
  check_eval "x % 0 undefined" None
    (G.Eq (G.Mod (G.Const 7, G.Const 0), G.Const 0))

let test_connectives () =
  let t = G.True and f = G.False in
  check_eval "and tt" (Some true) (G.And (t, t));
  check_eval "and tf" (Some false) (G.And (t, f));
  check_eval "or ft" (Some true) (G.Or (f, t));
  check_eval "or ff" (Some false) (G.Or (f, f));
  check_eval "not f" (Some true) (G.Not f)

let test_var_attr () =
  let t = F.f2 F.a F.b in
  check_eval "x.size == 3" (Some true) ~theta:(theta_x t)
    (G.Eq (G.Var_attr ("x", "size"), G.Const 3));
  check_eval "x.depth == 2" (Some true) ~theta:(theta_x t)
    (G.Eq (G.Var_attr ("x", "depth"), G.Const 2));
  check_eval "x.nargs == 2" (Some true) ~theta:(theta_x t)
    (G.Eq (G.Var_attr ("x", "nargs"), G.Const 2))

let test_unbound_var () =
  check_eval "unbound var is undefined" None
    (G.Eq (G.Var_attr ("x", "size"), G.Const 1))

let test_undefined_attr () =
  check_eval "undefined attribute" None ~theta:(theta_x F.a)
    (G.Eq (G.Var_attr ("x", "nosuch"), G.Const 1))

let test_undefined_poisons_connectives () =
  (* The paper requires g[theta] to be closed and denote True; any
     unverifiable conjunct makes the whole guard unverifiable. *)
  let undef = G.Eq (G.Var_attr ("q", "size"), G.Const 1) in
  check_eval "True && undef" None (G.And (G.True, undef));
  check_eval "True || undef" None (G.Or (G.True, undef))

let test_fvar_attr () =
  let phi = Fsubst.of_list [ ("F", "f") ] in
  check_eval "F.arity == 2" (Some true) ~phi
    (G.Eq (G.Fvar_attr ("F", "arity"), G.Const 2));
  check_eval "unbound fvar" None
    (G.Eq (G.Fvar_attr ("F", "arity"), G.Const 2))

let test_term_attr () =
  check_eval "closed term attr" (Some true)
    (G.Eq (G.Term_attr (F.g1 F.a, "size"), G.Const 2))

let test_subst_closes () =
  let g = G.Eq (G.Var_attr ("x", "size"), G.Const 3) in
  let closed = G.subst (theta_x (F.f2 F.a F.b)) Fsubst.empty g in
  (match closed with
  | G.Eq (G.Term_attr (_, "size"), _) -> ()
  | _ -> Alcotest.fail "substitution did not close the variable attribute");
  Alcotest.(check (option bool))
    "closed instance evaluates without theta" (Some true)
    (G.eval F.interp Subst.empty Fsubst.empty closed)

let test_subst_leaves_unbound () =
  let g = G.Eq (G.Var_attr ("x", "size"), G.Const 3) in
  match G.subst Subst.empty Fsubst.empty g with
  | G.Eq (G.Var_attr ("x", _), _) -> ()
  | _ -> Alcotest.fail "unbound variable should be left in place"

let test_vars_fvars () =
  let g =
    G.And
      ( G.Eq (G.Var_attr ("x", "size"), G.Var_attr ("y", "size")),
        G.Lt (G.Fvar_attr ("F", "arity"), G.Const 3) )
  in
  Alcotest.(check int) "two term vars" 2 (Symbol.Set.cardinal (G.vars g));
  Alcotest.(check int) "one fvar" 1 (Symbol.Set.cardinal (G.fvars g))

let test_conj () =
  Alcotest.(check (option bool)) "empty conj" (Some true) (eval (G.conj []));
  Alcotest.(check (option bool))
    "conj of three" (Some false)
    (eval (G.conj [ G.True; G.False; G.True ]))

(* Property: evaluation of the substitution instance under empty theta
   agrees with direct evaluation under theta (the two readings of P-Guard's
   side condition coincide). *)
let prop_subst_eval_agree =
  F.qtest "eval g[theta] = eval_theta g"
    QCheck2.Gen.(pair (Fixtures.Gen.guard_gen [ "x"; "y" ]) (pair Fixtures.Gen.term Fixtures.Gen.term))
    (fun (g, (t1, t2)) ->
      Printf.sprintf "%s with x=%s y=%s" (G.to_string g) (Term.to_string t1)
        (Term.to_string t2))
    (fun (g, (t1, t2)) ->
      let theta = Subst.of_list [ ("x", t1); ("y", t2) ] in
      let direct = G.eval F.interp theta Fsubst.empty g in
      let instance =
        G.eval F.interp Subst.empty Fsubst.empty (G.subst theta Fsubst.empty g)
      in
      direct = instance)

let () =
  Alcotest.run "guard"
    [
      ( "eval",
        [
          Alcotest.test_case "constants" `Quick test_consts;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "modulo" `Quick test_mod;
          Alcotest.test_case "connectives" `Quick test_connectives;
          Alcotest.test_case "variable attributes" `Quick test_var_attr;
          Alcotest.test_case "unbound variable" `Quick test_unbound_var;
          Alcotest.test_case "undefined attribute" `Quick test_undefined_attr;
          Alcotest.test_case "undefined poisons" `Quick
            test_undefined_poisons_connectives;
          Alcotest.test_case "fvar attributes" `Quick test_fvar_attr;
          Alcotest.test_case "closed term attributes" `Quick test_term_attr;
        ] );
      ( "subst",
        [
          Alcotest.test_case "closes bound vars" `Quick test_subst_closes;
          Alcotest.test_case "leaves unbound vars" `Quick
            test_subst_leaves_unbound;
        ] );
      ( "misc",
        [
          Alcotest.test_case "vars/fvars" `Quick test_vars_fvars;
          Alcotest.test_case "conj" `Quick test_conj;
        ] );
      ("properties", [ prop_subst_eval_agree ]);
    ]
