(* The figure harness: regenerates every figure of the paper's evaluation
   (section 4.1) against the simulated device and the synthetic zoos, plus
   bechamel micro-benchmarks for the matcher implementations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig10   -- HuggingFace speedup histograms
     dune exec bench/main.exe -- fig11   -- TorchVision speedup histograms
     dune exec bench/main.exe -- fig12   -- HF matcher cost vs #matches
     dune exec bench/main.exe -- fig13   -- TV matcher cost vs #matches
     dune exec bench/main.exe -- micro   -- bechamel matcher micro-benches
     dune exec bench/main.exe -- ablation -- pass/matcher design ablations *)

open Pypm

let device = Cost.a6000

(* ------------------------------------------------------------------ *)
(* Compile configurations (paper: four ways per model)                 *)
(* ------------------------------------------------------------------ *)

type opt_config = Baseline | Fmha_only | Epilog_only | Both

let program_of sg = function
  | Baseline -> Program.make ~sg []
  | Fmha_only -> Corpus.fmha_program sg
  | Epilog_only -> Corpus.epilog_program sg
  | Both -> Corpus.both_program sg

(* Build the model fresh, compile with [config], return simulated cost and
   the pass stats. *)
let compile_and_time (model : Zoo.model) config =
  let env, g = model.Zoo.build () in
  let prog = program_of env.Std_ops.sg config in
  let stats = Pass.run prog g in
  let errs = Graph.validate g in
  if errs <> [] then (
    List.iter prerr_endline errs;
    failwith (model.Zoo.mname ^ ": invalid graph after rewriting"));
  (Exec.graph_cost device g, stats)

(* ------------------------------------------------------------------ *)
(* Histogram rendering (figures 10 and 11 are speedup histograms)      *)
(* ------------------------------------------------------------------ *)

let histogram ~title values =
  let buckets =
    [ (1.00, 1.05); (1.05, 1.10); (1.10, 1.20); (1.20, 1.35); (1.35, 1.50);
      (1.50, 1.75); (1.75, 2.00); (2.00, 99.0) ]
  in
  Printf.printf "  %s (n=%d)\n" title (List.length values);
  List.iter
    (fun (lo, hi) ->
      let n =
        List.length (List.filter (fun v -> v >= lo -. 1e-9 && v < hi) values)
      in
      let label =
        if hi > 10. then Printf.sprintf ">= %.2fx      " lo
        else Printf.sprintf "%.2fx - %.2fx" lo hi
      in
      Printf.printf "    %s | %-3d %s\n" label n (String.make n '#'))
    buckets;
  let mean =
    List.fold_left ( +. ) 0. values /. float_of_int (List.length values)
  in
  let mx = List.fold_left Float.max 1.0 values in
  Printf.printf "    mean %.3fx, max %.3fx\n" mean mx

let speedup_figure ~figure ~suite models =
  Printf.printf "== %s: %s relative-speedup histograms ==\n" figure suite;
  Printf.printf
    "   (speedup of each optimized compile vs the same model compiled\n";
  Printf.printf "    with no PyPM rewrites, on the simulated %s)\n\n"
    device.Cost.dname;
  let rows =
    List.map
      (fun (m : Zoo.model) ->
        let base, _ = compile_and_time m Baseline in
        let per config =
          let cost, stats = compile_and_time m config in
          ( Exec.speedup ~baseline:base ~optimized:cost,
            stats.Pass.total_rewrites )
        in
        let f, fr = per Fmha_only in
        let e, er = per Epilog_only in
        let b, br = per Both in
        Printf.printf
          "  %-16s fmha %.3fx (%d rw)   epilog %.3fx (%d rw)   both %.3fx \
           (%d rw)\n"
          m.Zoo.mname f fr e er b br;
        (f, e, b))
      models
  in
  print_newline ();
  histogram ~title:"FMHA only" (List.map (fun (f, _, _) -> f) rows);
  histogram ~title:"Epilog only" (List.map (fun (_, e, _) -> e) rows);
  histogram ~title:"Both optimizations" (List.map (fun (_, _, b) -> b) rows);
  print_newline ()

let fig10 () =
  speedup_figure ~figure:"FIG10" ~suite:"HuggingFace suite" (Zoo.hf ())

let fig11 () =
  speedup_figure ~figure:"FIG11" ~suite:"TorchVision suite" (Zoo.tv ())

(* ------------------------------------------------------------------ *)
(* Figures 12 / 13: matcher wall-clock vs number of matches            *)
(* ------------------------------------------------------------------ *)

let pattern_family_time stats =
  List.fold_left
    (fun (m, t) (ps : Pass.pattern_stats) ->
      (m + ps.Pass.matches, t +. ps.Pass.match_time))
    (0, 0.) stats.Pass.per_pattern

let compile_cost_figure ~figure ~suite models =
  Printf.printf "== %s: %s pattern-matching compile-time cost ==\n" figure
    suite;
  Printf.printf
    "   model            nodes   MHA matches  MHA ms      Epilog matches  \
     Epilog ms\n";
  let acc_mha_t = ref 0. and acc_epi_t = ref 0. in
  let zero_match_mha_t = ref 0. and zero_match_epi_t = ref 0. in
  let zero_n = ref 0 in
  let max_pass = ref 0. in
  List.iter
    (fun (m : Zoo.model) ->
      let env, g = m.Zoo.build () in
      let nodes = Graph.live_count g in
      let mha_stats = Pass.match_only (Corpus.fmha_program env.Std_ops.sg) g in
      let epi_stats =
        Pass.match_only (Corpus.epilog_program env.Std_ops.sg) g
      in
      let mha_m, mha_t = pattern_family_time mha_stats in
      let epi_m, epi_t = pattern_family_time epi_stats in
      (* the paper's "< 3 s" bound is about the full rewrite pass *)
      let _, full = compile_and_time m Both in
      max_pass := Float.max !max_pass full.Pass.wall_time;
      acc_mha_t := !acc_mha_t +. mha_t;
      acc_epi_t := !acc_epi_t +. epi_t;
      if mha_m = 0 then (
        incr zero_n;
        zero_match_mha_t := !zero_match_mha_t +. mha_t;
        zero_match_epi_t := !zero_match_epi_t +. epi_t);
      Printf.printf "   %-16s %-7d %-12d %-11.3f %-15d %.3f\n" m.Zoo.mname
        nodes mha_m (mha_t *. 1e3) epi_m (epi_t *. 1e3))
    models;
  Printf.printf
    "\n   total matcher time: MHA %.1f ms, Epilog %.1f ms (ratio %.1fx)\n"
    (!acc_mha_t *. 1e3) (!acc_epi_t *. 1e3)
    (if !acc_mha_t > 0. then !acc_epi_t /. !acc_mha_t else nan);
  if !zero_n > 0 then
    Printf.printf
      "   QUAL1: on the %d models with zero MHA matches, Epilog matching \
       cost\n\
      \          %.1fx the MHA matching cost (paper: ~2 orders of magnitude)\n"
      !zero_n
      (if !zero_match_mha_t > 0. then !zero_match_epi_t /. !zero_match_mha_t
       else nan);
  Printf.printf
    "   QUAL2: max full rewrite-pass time on any model: %.3f s (paper \
     bound: < 3 s)\n\n"
    !max_pass

let fig12 () =
  compile_cost_figure ~figure:"FIG12" ~suite:"HuggingFace" (Zoo.hf ())

let fig13 () =
  compile_cost_figure ~figure:"FIG13" ~suite:"TorchVision" (Zoo.tv ())

(* ------------------------------------------------------------------ *)
(* MM (extension): the multimodal models where all three optimization  *)
(* families fire in one graph                                          *)
(* ------------------------------------------------------------------ *)

let mm () =
  Printf.printf
    "== MM (extension): CLIP-style multimodal models, full program ==\n";
  List.iter
    (fun (m : Zoo.model) ->
      let env, g = m.Zoo.build () in
      let base = Exec.graph_cost device g in
      let stats = Pass.run (Corpus.full_program env.Std_ops.sg) g in
      let after = Exec.graph_cost device g in
      Printf.printf
        "   %-12s %3d rewrites: fmha %d, conv-epilog %d, gemm-epilog %d, \
         cublas-xyT %d; speedup %.3fx\n"
        m.Zoo.mname stats.Pass.total_rewrites
        (Graph.count_op g Std_ops.fmha)
        (Graph.count_op g Std_ops.conv_bias_relu)
        (Graph.count_op g Std_ops.gemm_bias_epilog_gelu
        + Graph.count_op g Std_ops.gemm_bias_epilog_relu
        + Graph.count_op g Std_ops.gemm_epilog_gelu
        + Graph.count_op g Std_ops.gemm_epilog_relu)
        (Graph.count_op g Std_ops.cublas_mm_xyt_f32)
        (Exec.speedup ~baseline:base ~optimized:after))
    (Zoo.mm ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (MICRO): matcher internals & ablations    *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let interp : Guard.interp =
    {
      Guard.term_attr =
        (fun a t -> if a = "size" then Some (Term.size t) else None);
      sym_attr = (fun _ _ -> None);
    }
  in
  (* a deep term and matching pattern *)
  let rec deep_term n =
    if n = 0 then Term.const "a" else Term.app "g" [ deep_term (n - 1) ]
  in
  let rec deep_pattern n =
    if n = 0 then Pattern.var "x" else Pattern.app "g" [ deep_pattern (n - 1) ]
  in
  let t64 = deep_term 64 and p64 = deep_pattern 64 in
  (* an alternate pile that forces backtracking: k wrong branches first *)
  let alt_pattern k =
    let wrong = Pattern.app "h" [ Pattern.var "x" ] in
    Pattern.alts (List.init k (fun _ -> wrong) @ [ deep_pattern 8 ])
  in
  let t8 = deep_term 8 in
  (* the recursive unary chain of figure 3 *)
  let chain =
    Pattern.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ]
      (Pattern.alt
         (Pattern.fapp "F" [ Pattern.call "P" [ "x"; "F" ] ])
         (Pattern.fapp "F" [ Pattern.var "x" ]))
  in
  (* naive equality ablation: structural equality without the memoized
     hash/size shortcuts *)
  let rec naive_equal (a : Term.t) (b : Term.t) =
    Symbol.equal (Term.head a) (Term.head b)
    && List.length (Term.args a) = List.length (Term.args b)
    && List.for_all2 naive_equal (Term.args a) (Term.args b)
  in
  let t64' = deep_term 64 in
  let run_matcher p t () =
    ignore (Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack p t)
  in
  let run_machine p t () =
    ignore (Machine.run ~interp ~policy:Outcome.Policy.Backtrack p t)
  in
  let tests =
    [
      Test.make ~name:"matcher/deep-64" (Staged.stage (run_matcher p64 t64));
      Test.make ~name:"machine/deep-64" (Staged.stage (run_machine p64 t64));
      Test.make ~name:"matcher/alts-32-backtrack"
        (Staged.stage (run_matcher (alt_pattern 32) t8));
      Test.make ~name:"machine/alts-32-backtrack"
        (Staged.stage (run_machine (alt_pattern 32) t8));
      Test.make ~name:"matcher/mu-chain-64"
        (Staged.stage (run_matcher chain t64));
      Test.make ~name:"machine/mu-chain-64"
        (Staged.stage (run_machine chain t64));
      Test.make ~name:"term-equal/hashed"
        (Staged.stage (fun () -> ignore (Term.equal t64 t64')));
      Test.make ~name:"term-equal/naive"
        (Staged.stage (fun () -> ignore (naive_equal t64 t64')));
    ]
  in
  Printf.printf "== MICRO: matcher micro-benchmarks (bechamel) ==\n%!";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "   %-28s %12.1f ns/run\n%!" name ns
          | _ -> Printf.printf "   %-28s (no estimate)\n%!" name)
        results)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* ABLATION: design choices called out in DESIGN.md                    *)
(* ------------------------------------------------------------------ *)

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ablation () =
  Printf.printf "== ABLATION: pass and matcher design choices ==\n";
  (* 1. root-head indexing: skip patterns whose root operator cannot match
     the node (the paper's implementation tries every pattern at every
     node). Same rewrites, less matcher work. *)
  Printf.printf "\n-- root-head index (match_only over the full program) --\n";
  List.iter
    (fun name ->
      let m = Option.get (Zoo.find name) in
      let measure indexed =
        let env, g = m.Zoo.build () in
        let prog = Corpus.both_program env.Std_ops.sg in
        (* warm, then time best of 3 *)
        ignore (Pass.match_only ~indexed prog g);
        let best = ref infinity in
        for _ = 1 to 3 do
          let _, t = time_s (fun () -> Pass.match_only ~indexed prog g) in
          best := Float.min !best t
        done;
        let stats = Pass.match_only ~indexed prog g in
        let attempts =
          List.fold_left (fun a ps -> a + ps.Pass.attempts) 0 stats.Pass.per_pattern
        in
        (!best, attempts)
      in
      let t_naive, a_naive = measure false in
      let t_idx, a_idx = measure true in
      Printf.printf
        "   %-14s naive %7.3f ms (%5d attempts)   indexed %7.3f ms (%5d attempts)  %4.1fx\n"
        name (t_naive *. 1e3) a_naive (t_idx *. 1e3) a_idx
        (t_naive /. t_idx))
    [ "bert-base"; "gpt2-medium"; "resnet50-ish"; "vgg19-ish" ];
  (* 2. rewrites are identical with and without the index *)
  let m = Option.get (Zoo.find "bert-base") in
  let run indexed =
    let env, g = m.Zoo.build () in
    let stats = Pass.run ~indexed (Corpus.both_program env.Std_ops.sg) g in
    stats.Pass.total_rewrites
  in
  Printf.printf "   rewrites agree: naive %d, indexed %d\n" (run false) (run true);
  (* 3. machine policy cost: Faithful vs Backtrack on the corpus patterns
     over a model's term views (identical outcomes here, same cost) *)
  Printf.printf "\n-- production matcher vs abstract machine on model terms --\n";
  let env, g = (Option.get (Zoo.find "bert-mini")).Zoo.build () in
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  let prog = Corpus.both_program env.Std_ops.sg in
  let terms = List.map (Term_view.term_of view) (Graph.live_nodes g) in
  let time_impl name run_one =
    let (), t =
      time_s (fun () ->
          List.iter
            (fun (e : Program.entry) ->
              List.iter (fun t -> ignore (run_one e.Program.pattern t)) terms)
            prog.Program.entries)
    in
    Printf.printf "   %-18s %8.3f ms for %d pattern x node attempts\n" name
      (t *. 1e3)
      (List.length terms * List.length prog.Program.entries)
  in
  time_impl "matcher (CPS)" (fun p t ->
      Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack p t);
  time_impl "abstract machine" (fun p t ->
      Machine.run ~interp ~policy:Outcome.Policy.Backtrack p t);
  (* 4. device sensitivity: relative speedups are a property of the graph
     transformation, not of one device profile *)
  Printf.printf "\n-- device sensitivity (speedup under both optimizations) --\n";
  List.iter
    (fun name ->
      let m = Option.get (Zoo.find name) in
      let speedup dev =
        let env, g = m.Zoo.build () in
        let base = Exec.graph_cost dev g in
        ignore (Pass.run (Corpus.both_program env.Std_ops.sg) g);
        Exec.speedup ~baseline:base ~optimized:(Exec.graph_cost dev g)
      in
      Printf.printf "   %-14s %s %.3fx   %s %.3fx\n" name
        Cost.a6000.Cost.dname (speedup Cost.a6000) Cost.a100.Cost.dname
        (speedup Cost.a100))
    [ "bert-mini"; "gpt2-small"; "resnet18-ish"; "vgg16-ish" ];
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let which =
    match Array.to_list Sys.argv with
    | _ :: rest -> List.filter (fun a -> a <> "--") rest
    | [] -> []
  in
  let all = which = [] || which = [ "all" ] in
  let want name = all || List.mem name which in
  if want "fig10" then fig10 ();
  if want "fig11" then fig11 ();
  if want "fig12" then fig12 ();
  if want "fig13" then fig13 ();
  if want "mm" then mm ();
  if want "micro" then micro ();
  if want "ablation" then ablation ()
