(* pypmc: the PyPM command-line driver.

   Mirrors the paper's toolchain shape: the frontend turns pattern source
   into serialized pattern binaries ([compile]); the backend loads binaries
   or source and runs the rewrite pass over models ([optimize]). The other
   commands are developer conveniences: [parse] shows elaborated core
   patterns, [match] runs the matcher on one term, [zoo] lists the
   benchmark models, [partition] reports directed-graph-partitioning
   regions. *)

open Pypm
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Load a program from a .pypm source file or a .bin pattern binary,
   against (and extending) the std signature. *)
let load_program env path =
  if Filename.check_suffix path ".bin" then
    match Codec.decode_into ~sg:env.Std_ops.sg (read_file path) with
    | Ok p -> Ok p
    | Error e -> Error e
  else
    match Surface.load_file ~sg:env.Std_ops.sg path with
    | Ok p -> Ok p
    | Error e -> Error (Format.asprintf "%a" Surface.pp_error e)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* parse                                                               *)
(* ------------------------------------------------------------------ *)

let parse_cmd =
  let run path =
    let env = Std_ops.make () in
    let program = or_die (load_program env path) in
    Format.printf "%a@." Program.pp program;
    match Program.check program with
    | [] -> ()
    | diags ->
        List.iter (Format.printf "%a@." Wf.pp_diagnostic) diags;
        exit 1
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Pattern source (.pypm) or pattern binary (.bin).")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Elaborate a pattern file and print its core form")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let run path out =
    let env = Std_ops.make () in
    let program = or_die (load_program env path) in
    Codec.to_file out program;
    Printf.printf "wrote %s (%d pattern(s))\n" out
      (List.length (Program.pattern_names program))
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Pattern source (.pypm).")
  in
  let out =
    Arg.(value & opt string "patterns.bin" & info [ "o"; "output" ]
           ~docv:"OUT" ~doc:"Output pattern binary.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Serialize a pattern file to a portable pattern binary")
    Term.(const run $ path $ out)

(* ------------------------------------------------------------------ *)
(* match                                                               *)
(* ------------------------------------------------------------------ *)

(* Ground pattern expressions are terms. *)
let rec term_of_pexp = function
  | Ast.Evar x -> Pypm.Term.const x
  | Ast.Eapp (f, args) -> Pypm.Term.app f (List.map term_of_pexp args)
  | Ast.Ealt _ ->
      prerr_endline "ground terms cannot contain ||";
      exit 1
  | Ast.Elit v -> Pypm.Term.const (Graph.lit_symbol v)

let match_cmd =
  let run path pattern_name term_src trace =
    let env = Std_ops.make () in
    let program = or_die (load_program env path) in
    let entry =
      match Program.entry program pattern_name with
      | Some e -> e
      | None ->
          Printf.eprintf "no pattern named %s (have: %s)\n" pattern_name
            (String.concat ", " (Program.pattern_names program));
          exit 1
    in
    let t =
      try term_of_pexp (Parser.pexp term_src)
      with Parser.Parse_error (pos, msg) ->
        Format.eprintf "term syntax error at %a: %s@." Lexer.pp_pos pos msg;
        exit 1
    in
    let interp = Attrs.structural ~sg:env.Std_ops.sg in
    if trace then (
      let rules, outcome =
        Machine.run_trace ~interp ~policy:Outcome.Policy.Backtrack
          entry.Program.pattern t
      in
      List.iteri
        (fun i r -> Printf.printf "%4d  %s\n" (i + 1) (Machine.rule_name r))
        rules;
      Format.printf "%a@." Outcome.pp outcome)
    else
      match
        Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack
          entry.Program.pattern t
      with
      | Outcome.Matched (theta, phi) ->
          Format.printf "match: theta = %a, phi = %a@." Subst.pp theta
            Fsubst.pp phi
      | o ->
          Format.printf "%a@." Outcome.pp o;
          exit 1
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Pattern source or binary.")
  in
  let pat =
    Arg.(required & opt (some string) None & info [ "p"; "pattern" ]
           ~docv:"NAME" ~doc:"Pattern to match.")
  in
  let term =
    Arg.(required & opt (some string) None & info [ "t"; "term" ]
           ~docv:"TERM" ~doc:"Ground term, e.g. 'MatMul(a, Trans(b))'.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the abstract machine's transition-rule trace.")
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Match one pattern against one term")
    Term.(const run $ path $ pat $ term $ trace)

(* ------------------------------------------------------------------ *)
(* zoo                                                                 *)
(* ------------------------------------------------------------------ *)

let zoo_cmd =
  let run () =
    List.iter
      (fun (m : Zoo.model) ->
        let _, g = m.Zoo.build () in
        Printf.printf "%-4s %-18s %4d nodes\n"
          (match m.Zoo.family with `HF -> "HF" | `TV -> "TV" | `MM -> "MM")
          m.Zoo.mname (Graph.live_count g))
      (Zoo.all ())
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List the benchmark model zoo") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

let build_model name =
  match Zoo.find name with
  | Some m -> m.Zoo.build ()
  | None ->
      Printf.eprintf "no model named %s; try `pypmc zoo`\n" name;
      exit 1

(* Shared by optimize and trace: resolve the pattern program. *)
let resolve_program env opt patterns =
  match patterns with
  | Some path -> or_die (load_program env path)
  | None -> (
      match opt with
      | "none" -> Program.make ~sg:env.Std_ops.sg []
      | "fmha" -> Corpus.fmha_program env.Std_ops.sg
      | "epilog" -> Corpus.epilog_program env.Std_ops.sg
      | "both" -> Corpus.both_program env.Std_ops.sg
      | "full" -> Corpus.full_program env.Std_ops.sg
      | other ->
          Printf.eprintf
            "unknown optimization set %s (none|fmha|epilog|both|full)\n" other;
          exit 1)

(* Run [f] while capturing every obs event; write the capture as a Chrome
   trace when [trace] names a file. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      let c = Obs.Collector.create () in
      let r = Obs.with_sink (Obs.Collector.sink c) f in
      Obs.Chrome.write path (Obs.Collector.events c);
      Printf.printf
        "wrote %s (%d events) — open in chrome://tracing or \
         https://ui.perfetto.dev\n"
        path (Obs.Collector.length c);
      r

let opt_arg =
  Cmdliner.Arg.(
    value & opt string "both" & info [ "opt" ] ~docv:"SET"
      ~doc:"Optimization set: none, fmha, epilog, both, full.")

let patterns_arg =
  Cmdliner.Arg.(
    value & opt (some file) None & info [ "patterns" ] ~docv:"FILE"
      ~doc:"Use a pattern file/binary instead of a built-in set.")

let engine_arg =
  let e =
    Cmdliner.Arg.enum
      [
        ("naive", Pass.Naive);
        ("index", Pass.Index);
        ("plan", Pass.Plan);
        ("egraph", Pass.Egraph);
      ]
  in
  Cmdliner.Arg.(
    value & opt e Pass.Naive & info [ "engine" ] ~docv:"ENGINE"
      ~doc:"Matching engine: $(b,naive) (every pattern at every node), \
            $(b,index) (root-head prefilter), $(b,plan) (shared matching \
            plan with incremental re-matching), or $(b,egraph) (the plan \
            machinery plus a cost-guided equality-saturation post-phase \
            that commits only strict cost improvements).")

(* Shared by optimize/bench/load: matching domains per pass. *)
let domains_arg =
  Cmdliner.Arg.(
    value & opt int 1 & info [ "domains" ] ~docv:"N"
      ~doc:"Shard the matching phase of every pass iteration across $(docv) \
            domains. Firing order, provenance and the final graph are \
            byte-identical to the sequential pass; 1 (the default) keeps \
            the sequential path. Fault injection forces 1.")

let fault_points_of_names names =
  List.map
    (fun n ->
      match Resilience.Inject.point_of_name n with
      | Some p -> p
      | None ->
          Printf.eprintf "pypmc: unknown fault point %s (known: %s)\n" n
            (String.concat ", "
               (List.map Resilience.Inject.point_name
                  Resilience.Inject.all_points));
          exit 1)
    names

(* --stats-json: machine-readable pass stats, to a file or stdout. *)
let write_stats_json dest stats =
  match dest with
  | None -> ()
  | Some "-" -> print_endline (Pass.stats_json stats)
  | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Pass.stats_json stats);
          output_char oc '\n');
      Printf.printf "wrote %s\n" path

let optimize_cmd =
  let run model opt patterns engine domains verbose dot debug trace fuel
      deadline fault_seed fault_rate fault_points strict quarantine_after
      stats_json =
    if debug then (
      Logs.set_reporter (Logs.format_reporter ());
      Logs.Src.set_level Pass.log_src (Some Logs.Debug));
    let env, g = build_model model in
    let program = resolve_program env opt patterns in
    let before = Exec.graph_cost Cost.a6000 g in
    let nodes_before = Graph.live_count g in
    let inject =
      match fault_seed with
      | None -> Resilience.Inject.none
      | Some seed ->
          let points =
            match fault_points with
            | [] -> Resilience.Inject.all_points
            | names -> fault_points_of_names names
          in
          Resilience.Inject.seeded ~points ~seed ~rate:fault_rate ()
    in
    let config =
      Pass.Config.override ~engine ~domains ?fuel ?deadline_s:deadline
        ?quarantine_after ~inject Pass.Config.default
    in
    let stats =
      with_trace trace (fun () ->
          if strict then
            match Pass.run_result_cfg ~config program g with
            | Ok stats -> stats
            | Error (e, stats) ->
                Format.printf "%a@." Pass.pp_stats stats;
                write_stats_json stats_json stats;
                Printf.eprintf "pypmc: fatal pass error: %s\n"
                  (Pass.error_message e);
                exit 1
          else Pass.run_cfg ~config program g)
    in
    write_stats_json stats_json stats;
    (* [Engine_unavailable] is fatal under either policy: there was no
       engine to run the pass with. *)
    (match stats.Pass.fatal with
    | Some e ->
        Printf.eprintf "pypmc: fatal pass error: %s\n" (Pass.error_message e);
        exit 1
    | None -> ());
    (match Graph.validate g with
    | [] -> ()
    | errs ->
        List.iter prerr_endline errs;
        exit 1);
    let after = Exec.graph_cost Cost.a6000 g in
    Format.printf "%a@." Pass.pp_stats stats;
    Printf.printf
      "nodes: %d -> %d\nsimulated inference: %.4f ms -> %.4f ms (speedup %.3fx)\n"
      nodes_before (Graph.live_count g) (before *. 1e3) (after *. 1e3)
      (Exec.speedup ~baseline:before ~optimized:after);
    if verbose then Format.printf "%a@." Graph.pp g;
    match dot with
    | Some path ->
        Dot.write path g;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  let model =
    Arg.(required & opt (some string) None & info [ "m"; "model" ]
           ~docv:"NAME" ~doc:"Zoo model to optimize.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Dump the final graph.")
  in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write the optimized graph as Graphviz DOT.")
  in
  let debug =
    Arg.(value & flag & info [ "debug" ] ~doc:"Log each rule firing.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Capture every engine event and write a Chrome trace-event \
                 JSON file, loadable in chrome://tracing or Perfetto.")
  in
  let fuel =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Per-match fuel bound (matcher node visits).")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the pass; on expiry it stops where \
                 it is and reports partial stats (deadline hit).")
  in
  let fault_seed =
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Enable deterministic fault injection with this seed (for \
                 exercising and replaying failure handling).")
  in
  let fault_rate =
    Arg.(value & opt float 0.25 & info [ "fault-rate" ] ~docv:"RATE"
           ~doc:"Probability each armed fault point fires (with \
                 $(b,--fault-seed)).")
  in
  let fault_points =
    Arg.(value & opt (list string) [] & info [ "fault-points" ] ~docv:"POINTS"
           ~doc:"Comma-separated fault points to arm (default: all): \
                 instantiate-fail, guard-raise, fuel-cut, replace-cycle, \
                 plan-compile.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Stop at the first rule error instead of quarantining the \
                 pattern; exit nonzero with a structured message.")
  in
  let quarantine_after =
    Arg.(value & opt (some int) None & info [ "quarantine-after" ] ~docv:"N"
           ~doc:"Strikes (fuel exhaustions, rule errors, cycle rejections) \
                 before a pattern is quarantined for the rest of the pass \
                 (default 5).")
  in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the pass statistics as JSON to $(docv) ($(b,-) for \
                 stdout): engine, counters, timings, per-pattern breakdown, \
                 structured errors.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the rewrite pass over a zoo model")
    Term.(const run $ model $ opt_arg $ patterns_arg $ engine_arg
          $ domains_arg $ verbose $ dot $ debug $ trace $ fuel $ deadline
          $ fault_seed $ fault_rate $ fault_points $ strict
          $ quarantine_after $ stats_json)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let run opt patterns file json no_overlaps =
    let env = Std_ops.make () in
    let patterns = match file with Some _ -> file | None -> patterns in
    let program = resolve_program env opt patterns in
    (* Well-formedness first: analysis assumes a wf program. *)
    (match Wf.errors (Program.check program) with
    | [] -> ()
    | errs ->
        List.iter (Format.eprintf "%a@." Wf.pp_diagnostic) errs;
        exit 1);
    let diags = Analysis.lint ~overlaps:(not no_overlaps) program in
    if json then print_endline (Analysis.to_json diags)
    else if diags = [] then
      Printf.printf "%d patterns, no findings\n"
        (List.length (Program.pattern_names program))
    else List.iter (Format.printf "%a@." Analysis.pp_diagnostic) diags;
    if Analysis.errors diags <> [] then exit 1
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the findings as a JSON array instead of text.")
  in
  let no_overlaps =
    Arg.(value & flag & info [ "no-overlaps" ]
           ~doc:"Skip the pairwise overlap-witness search (the only \
                 quadratic check); dead patterns, shadowed alternates, \
                 subsumption and guard satisfiability still run.")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Pattern source (.pypm) or pattern binary (.bin) to lint; \
                 shorthand for $(b,--patterns).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze a pattern library: dead patterns, \
             shadowed alternates, subsumed and overlapping patterns, \
             unsatisfiable guards. Exits nonzero on error-severity \
             findings.")
    Term.(const run $ opt_arg $ patterns_arg $ file $ json $ no_overlaps)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let run model opt patterns engine out events limit =
    let env, g = build_model model in
    let program = resolve_program env opt patterns in
    let stats = with_trace out (fun () -> Pass.run ~engine program g) in
    let prov = Pass.provenance stats in
    Printf.printf "rewrite narrative for %s (%s engine, %d step(s)):\n" model
      (Pass.engine_name engine) (List.length prov);
    let shown =
      match limit with
      | Some l when List.length prov > l ->
          let rec take n = function
            | x :: xs when n > 0 -> x :: take (n - 1) xs
            | _ -> []
          in
          take l prov
      | _ -> prov
    in
    List.iter
      (fun s -> Format.printf "%a@." Obs.Provenance.pp_step s)
      shown;
    (match limit with
    | Some l when List.length prov > l ->
        Printf.printf "... (%d more; raise --limit)\n" (List.length prov - l)
    | _ -> ());
    if stats.Pass.fuel_exhausted > 0 then
      Printf.printf
        "WARNING: %d match attempt(s) ran out of fuel — the narrative may \
         be missing rewrites\n"
        stats.Pass.fuel_exhausted;
    if events then (
      Printf.printf "\nmost recent engine events (ring buffer):\n";
      List.iter
        (fun e -> Format.printf "  %a@." Obs.pp_event e)
        (Obs.recent ~limit:40 ()))
  in
  let model =
    Arg.(required & opt (some string) None & info [ "m"; "model" ]
           ~docv:"NAME" ~doc:"Zoo model to optimize and narrate.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "trace" ] ~docv:"FILE"
           ~doc:"Also write the full event capture as Chrome trace JSON.")
  in
  let events =
    Arg.(value & flag & info [ "events" ]
           ~doc:"Also dump the tail of the always-on event ring buffer.")
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
           ~doc:"Show at most N narrative steps.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the rewrite pass and replay its provenance log as a \
          human-readable narrative of every rule firing")
    Term.(const run $ model $ opt_arg $ patterns_arg $ engine_arg $ out
          $ events $ limit)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let query_cmd =
  let run model path pattern_name =
    let env, g = build_model model in
    let program = or_die (load_program env path) in
    let entry =
      match Program.entry program pattern_name with
      | Some e -> e
      | None ->
          Printf.eprintf "no pattern named %s (have: %s)\n" pattern_name
            (String.concat ", " (Program.pattern_names program));
          exit 1
    in
    let hits = Query.solve_rec_all g entry.Program.pattern in
    Printf.printf "%d satisfying root(s) over %d node(s)\n" (List.length hits)
      (Graph.live_count g);
    List.iter
      (fun ((n : Graph.node), env) ->
        Format.printf "  %%%d (%s): %a@." n.Graph.id n.Graph.op Query.pp_env
          env)
      hits
  in
  let model =
    Arg.(required & opt (some string) None & info [ "m"; "model" ]
           ~docv:"NAME" ~doc:"Zoo model whose graph is the database.")
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Pattern source or binary.")
  in
  let pat =
    Arg.(required & opt (some string) None & info [ "p"; "pattern" ]
           ~docv:"NAME" ~doc:"Pattern to evaluate as a query.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Evaluate a pattern as a database query over a model graph \
          (recursive patterns via Datalog-style fixpoints)")
    Term.(const run $ model $ path $ pat)

(* ------------------------------------------------------------------ *)
(* simplify                                                            *)
(* ------------------------------------------------------------------ *)

let simplify_cmd =
  let run path term_src =
    let env = Std_ops.make () in
    let program = or_die (load_program env path) in
    let t =
      try term_of_pexp (Parser.pexp term_src)
      with Parser.Parse_error (pos, msg) ->
        Format.eprintf "term syntax error at %a: %s@." Lexer.pp_pos pos msg;
        exit 1
    in
    let interp = Attrs.structural ~sg:env.Std_ops.sg in
    Format.printf "input:     %a  (size %d)@." Pypm.Term.pp t (Pypm.Term.size t);
    let inner, s1 = Term_rewrite.normalize ~interp program t in
    Format.printf "innermost: %a  (%d step(s)%s)@." Pypm.Term.pp inner
      s1.Term_rewrite.steps
      (if s1.Term_rewrite.normal_form then "" else ", budget hit");
    let outer, s2 =
      Term_rewrite.normalize ~interp ~strategy:Term_rewrite.Outermost program t
    in
    Format.printf "outermost: %a  (%d step(s)%s)@." Pypm.Term.pp outer
      s2.Term_rewrite.steps
      (if s2.Term_rewrite.normal_form then "" else ", budget hit");
    (* [~guards:false]: [simplify] works on bare ground terms, with no
       graph witnesses to evaluate guards against — guarded rules are
       skipped rather than failing closed on every match. *)
    let conv = Eqsat.rules_of_program ~guards:false program in
    let rules = conv.Eqsat.crules in
    if rules = [] then
      print_endline
        "saturation: skipped (no rule is expressible as a simple rewrite)"
    else begin
      let best, stats = Saturate.simplify ~rules t in
      Format.printf "saturation: %a  (%a; %d of %d rule(s) usable)@."
        Pypm.Term.pp best Saturate.pp_stats stats (List.length rules)
        (List.length rules + List.length conv.Eqsat.cskipped)
    end
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Pattern source or binary providing the rewrite rules.")
  in
  let term =
    Arg.(required & opt (some string) None & info [ "t"; "term" ]
           ~docv:"TERM" ~doc:"Ground term to simplify.")
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:
         "Normalize a term with greedy rewriting (both strategies) and with \
          equality saturation")
    Term.(const run $ path $ term)

(* ------------------------------------------------------------------ *)
(* partition                                                           *)
(* ------------------------------------------------------------------ *)

let partition_cmd =
  let run model fuse =
    let env, g = build_model model in
    let program = Corpus.partition_program env.Std_ops.sg in
    let regions = Partition.find program g in
    Printf.printf "%d region(s)\n" (List.length regions);
    List.iter (fun r -> Format.printf "  %a@." Partition.pp_region r) regions;
    if fuse then (
      let before = Exec.graph_cost Cost.a6000 g in
      let fused =
        Partition.fuse_all ~annotate:(fun interior -> Cost.fused_attrs g interior)
          program g
      in
      let after = Exec.graph_cost Cost.a6000 g in
      Printf.printf "fused %d region(s): %.4f ms -> %.4f ms (speedup %.3fx)\n"
        (List.length fused) (before *. 1e3) (after *. 1e3)
        (Exec.speedup ~baseline:before ~optimized:after))
  in
  let model =
    Arg.(required & opt (some string) None & info [ "m"; "model" ]
           ~docv:"NAME" ~doc:"Zoo model to partition.")
  in
  let fuse =
    Arg.(value & flag & info [ "fuse" ]
           ~doc:"Fuse the regions (simulated JIT compilation) and report cost.")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Directed graph partitioning (paper, section 4.2)")
    Term.(const run $ model $ fuse)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run seed budget props list =
    if list then
      List.iter print_endline Fuzz.all_prop_names
    else
      let report =
        try Fuzz.run ~props ~seed ~budget ()
        with Invalid_argument msg ->
          prerr_endline msg;
          exit 2
      in
      Format.printf "%a" Fuzz.pp_report report;
      if not (Fuzz.ok report) then exit 1
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
           ~doc:"Master seed. A failure report prints the exact seed that \
                 replays the failing case.")
  in
  let budget =
    Arg.(value & opt int 10_000 & info [ "budget" ] ~docv:"M"
           ~doc:"Case budget, spread across the selected properties \
                 (expensive properties receive proportionally fewer cases).")
  in
  let props =
    Arg.(value & opt_all string [] & info [ "prop" ] ~docv:"NAME"
           ~doc:"Run only this property (repeatable). Default: all.")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List property names and exit.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: cross-check the abstract machine, the \
          backtracking matcher, the enumeration oracle, the shared matching \
          plan and all three pass engines on random inputs; round-trip the \
          codec and the surface syntax; stress the frontend with hostile \
          sources")
    Term.(const run $ seed $ budget $ props $ list)

(* ------------------------------------------------------------------ *)
(* serve / load                                                        *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Cmdliner.Arg.(
    value & opt string "/tmp/pypmc.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket workers queue_bound cache_mb job_deadline drain_timeout
      restart_budget max_frame_mb debug =
    if debug then (
      Logs.set_reporter (Logs.format_reporter ());
      Logs.Src.set_level Server.log_src (Some Logs.Debug));
    let cfg =
      {
        Server.socket_path = socket;
        workers;
        queue_bound;
        cache_bytes = cache_mb * 1024 * 1024;
        max_frame_bytes = max_frame_mb * 1024 * 1024;
        job_deadline_s =
          (if job_deadline <= 0. then None else Some job_deadline);
        drain_timeout_s = drain_timeout;
        restart_budget;
      }
    in
    Printf.printf
      "pypmc serve: %s — %d worker(s), queue bound %d, %d MiB cache\n%!"
      socket workers queue_bound cache_mb;
    (* [signals]: SIGTERM/SIGINT drain gracefully; a second signal exits *)
    match Server.run ~signals:true cfg with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "pypmc serve: %s\n" msg;
        exit 1
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains; each compiles its own plan trie once and \
                 reuses it for every request.")
  in
  let queue_bound =
    Arg.(value & opt int 64 & info [ "queue-bound" ] ~docv:"N"
           ~doc:"Jobs queued before admission control answers \
                 $(b,Overloaded) instead of queueing more work.")
  in
  let cache_mb =
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~docv:"MB"
           ~doc:"Result-cache byte bound, in MiB.")
  in
  let job_deadline =
    Arg.(value & opt float 300. & info [ "job-deadline" ] ~docv:"SECONDS"
           ~doc:"Admission-to-completion budget per request; the watchdog \
                 answers $(b,Deadline_exceeded) past it. 0 disables.")
  in
  let drain_timeout =
    Arg.(value & opt float 5. & info [ "drain-timeout" ] ~docv:"SECONDS"
           ~doc:"How long a graceful drain (SIGTERM/SIGINT) waits for \
                 in-flight requests before answering them \
                 $(b,Deadline_exceeded) and exiting.")
  in
  let restart_budget =
    Arg.(value & opt int 10_000 & info [ "restart-budget" ] ~docv:"N"
           ~doc:"Lifetime worker restarts the supervisor will perform \
                 before letting crashed workers stay down.")
  in
  let max_frame_mb =
    Arg.(value & opt int 64 & info [ "max-frame-mb" ] ~docv:"MB"
           ~doc:"Largest request frame accepted, in MiB; bigger length \
                 prefixes are rejected before allocation.")
  in
  let debug =
    Arg.(value & flag & info [ "debug" ] ~doc:"Log connection lifecycle.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident optimization service: a Unix-socket server with \
          a supervised domain worker pool, per-job deadline watchdog, \
          graceful drain and a content-addressed result cache")
    Term.(const run $ socket_arg $ workers $ queue_bound $ cache_mb
          $ job_deadline $ drain_timeout $ restart_budget $ max_frame_mb
          $ debug)

let load_cmd =
  let run socket clients requests seed opt engine domains variants fault_seed
      fault_rate fault_points timeout min_hits =
    (match fault_points with
    | [] -> ()
    | names -> ignore (fault_points_of_names names));
    let options =
      {
        Protocol.default_options with
        Protocol.engine;
        domains;
        fault_seed = Option.value fault_seed ~default:0;
        fault_rate = (if fault_seed = None then 0. else fault_rate);
        fault_points;
      }
    in
    let r =
      try
        Load.run ~socket ~clients ~requests ~seed ~program:opt ~variants
          ~options ~request_timeout_s:timeout ()
      with Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "pypmc load: %s: %s (is the server running?)\n" fn
          (Unix.error_message e);
        exit 1
    in
    Format.printf "%a@." Load.pp r;
    if r.Load.protocol_errors > 0 then (
      Printf.eprintf "pypmc load: %d protocol error(s)\n" r.Load.protocol_errors;
      exit 1);
    if r.Load.cached < min_hits then (
      Printf.eprintf "pypmc load: %d cache hit(s), expected at least %d\n"
        r.Load.cached min_hits;
      exit 1)
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N"
           ~doc:"Client domains, each with its own connection.")
  in
  let requests =
    Arg.(value & opt int 100 & info [ "requests" ] ~docv:"M"
           ~doc:"Total requests, split across the clients.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Workload seed; the request mix is deterministic in it.")
  in
  let engine =
    Arg.(value & opt (enum [ ("naive", "naive"); ("index", "index");
                             ("plan", "plan"); ("egraph", "egraph") ]) "plan"
         & info [ "engine" ] ~docv:"ENGINE" ~doc:"Matching engine to request.")
  in
  let variants =
    Arg.(value & opt int 4 & info [ "variants" ] ~docv:"K"
           ~doc:"Distinct graphs per client — the cache-miss pressure knob: \
                 low values measure the cache, high values the workers.")
  in
  let fault_seed =
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Ask the server to inject deterministic faults into each \
                 request's pass (resilience drill).")
  in
  let fault_rate =
    Arg.(value & opt float 0.25 & info [ "fault-rate" ] ~docv:"RATE"
           ~doc:"Fault-point fire probability (with $(b,--fault-seed)).")
  in
  let fault_points =
    Arg.(value & opt (list string) [] & info [ "fault-points" ] ~docv:"POINTS"
           ~doc:"Comma-separated fault points to arm (default: all).")
  in
  let timeout =
    Arg.(value & opt float 30. & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request send-to-answer timeout; past it the connection \
                 is abandoned and the request retried on a fresh one.")
  in
  let min_hits =
    Arg.(value & opt int 0 & info [ "min-hits" ] ~docv:"N"
           ~doc:"Exit nonzero unless at least $(docv) responses were served \
                 from the cache (CI smoke assertion).")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a running server with concurrent clients and report \
          throughput, latency percentiles and cache hit rate")
    Term.(const run $ socket_arg $ clients $ requests $ seed $ opt_arg
          $ engine $ domains_arg $ variants $ fault_seed $ fault_rate
          $ fault_points $ timeout $ min_hits)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let run socket schedules seed rate =
    let r =
      try Chaos.run ~schedules ~seed ~rate ~socket ()
      with Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "pypmc chaos: %s: %s (is the server running?)\n" fn
          (Unix.error_message e);
        exit 1
    in
    Format.printf "%a@." Chaos.pp r;
    if r.Chaos.violations <> [] then exit 1
  in
  let schedules =
    Arg.(value & opt int 100 & info [ "schedules" ] ~docv:"N"
           ~doc:"Seeded fault schedules to run; each is one connection's \
                 worth of requests with wire faults applied.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S"
           ~doc:"Master seed; every fault choice and position derives from \
                 it, so a failing run replays exactly.")
  in
  let rate =
    Arg.(value & opt float 0.25 & info [ "rate" ] ~docv:"RATE"
           ~doc:"Per-point wire-fault fire probability per frame.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Hammer a running server with seeded wire-level faults — torn, \
          corrupt, stalled and disconnected frames, poison-pill crash \
          drills, pipelined bursts — and verify it never crashes, never \
          interleaves frames, and answers deterministically")
    Term.(const run $ socket_arg $ schedules $ seed $ rate)

(* ------------------------------------------------------------------ *)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "pypmc" ~version:"1.0.0"
             ~doc:"PyPM pattern compiler and graph optimizer")
          [ parse_cmd; compile_cmd; match_cmd; zoo_cmd; lint_cmd; optimize_cmd; trace_cmd; simplify_cmd; query_cmd; partition_cmd; fuzz_cmd; serve_cmd; load_cmd; chaos_cmd ]))
