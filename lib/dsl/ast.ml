type pexp =
  | Evar of string
  | Eapp of string * pexp list
  | Ealt of pexp * pexp
  | Elit of float

type gexp =
  | Gint of int
  | Gattr of string * string list
  | Gdtype of string
  | Gopclass of string
  | Gadd of gexp * gexp
  | Gsub of gexp * gexp
  | Gmul of gexp * gexp
  | Gmod of gexp * gexp

type gform =
  | Geq of gexp * gexp
  | Gne of gexp * gexp
  | Glt of gexp * gexp
  | Gle of gexp * gexp
  | Gand of gform * gform
  | Gor of gform * gform
  | Gnot of gform
  | Gtrue
  | Gfalse

type stmt =
  | Slocal of string
  | Sopvar of string * int
  | Salias of string * pexp
  | Sassert of gform
  | Sconstrain of string * pexp

type pattern_def = {
  pd_name : string;
  pd_params : string list;
  pd_stmts : stmt list;
  pd_return : pexp;
}

type branch = { br_guard : gform option; br_return : pexp }

type rule_def = {
  rd_name : string;
  rd_for : string;
  rd_params : string list;
  rd_asserts : gform list;
  rd_branches : branch list;
  rd_copy_attrs_from : string option;
}

type op_def = {
  od_name : string;
  od_arity : int;
  od_output_arity : int;
  od_class : string;
}

type program = {
  ops : op_def list;
  patterns : pattern_def list;
  rules : rule_def list;
}

let empty_program = { ops = []; patterns = []; rules = [] }

let rec pexp_vars = function
  | Evar x -> [ x ]
  | Eapp (_, args) -> List.concat_map pexp_vars args
  | Ealt (a, b) -> pexp_vars a @ pexp_vars b
  | Elit _ -> []

(* Surface string-literal syntax: double quotes with exactly the escapes
   the lexer decodes (backslash-quote, backslash-backslash, backslash-n),
   so printed programs re-lex to the same string. Kept in sync with
   Pypm_surface.Lexer.quote_string. *)
let pp_string_lit ppf s =
  Format.pp_print_char ppf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Format.pp_print_string ppf "\\\""
      | '\\' -> Format.pp_print_string ppf "\\\\"
      | '\n' -> Format.pp_print_string ppf "\\n"
      | c -> Format.pp_print_char ppf c)
    s;
  Format.pp_print_char ppf '"'

let rec pp_pexp ppf = function
  | Evar x -> Format.pp_print_string ppf x
  | Eapp (f, []) -> Format.fprintf ppf "%s()" f
  | Eapp (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_pexp)
        args
  | Ealt (a, b) -> Format.fprintf ppf "(%a || %a)" pp_pexp a pp_pexp b
  | Elit v -> Format.fprintf ppf "%g" v

let rec pp_gexp ppf = function
  | Gint n -> Format.pp_print_int ppf n
  | Gattr (x, path) ->
      Format.fprintf ppf "%s.%s" x (String.concat "." path)
  | Gdtype d -> Format.pp_print_string ppf d
  | Gopclass c -> Format.fprintf ppf "opclass(%a)" pp_string_lit c
  | Gadd (a, b) -> Format.fprintf ppf "(%a + %a)" pp_gexp a pp_gexp b
  | Gsub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_gexp a pp_gexp b
  | Gmul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_gexp a pp_gexp b
  | Gmod (a, b) -> Format.fprintf ppf "(%a %% %a)" pp_gexp a pp_gexp b

let rec pp_gform ppf = function
  | Geq (a, b) -> Format.fprintf ppf "%a == %a" pp_gexp a pp_gexp b
  | Gne (a, b) -> Format.fprintf ppf "%a != %a" pp_gexp a pp_gexp b
  | Glt (a, b) -> Format.fprintf ppf "%a < %a" pp_gexp a pp_gexp b
  | Gle (a, b) -> Format.fprintf ppf "%a <= %a" pp_gexp a pp_gexp b
  | Gand (a, b) -> Format.fprintf ppf "(%a && %a)" pp_gform a pp_gform b
  | Gor (a, b) -> Format.fprintf ppf "(%a || %a)" pp_gform a pp_gform b
  | Gnot a -> Format.fprintf ppf "!(%a)" pp_gform a
  | Gtrue -> Format.pp_print_string ppf "true"
  | Gfalse -> Format.pp_print_string ppf "false"

let pp_stmt ppf = function
  | Slocal x -> Format.fprintf ppf "%s = var();" x
  | Sopvar (x, n) -> Format.fprintf ppf "%s = Op(%d, 1);" x n
  | Salias (x, e) -> Format.fprintf ppf "%s = %a;" x pp_pexp e
  | Sassert g -> Format.fprintf ppf "assert %a;" pp_gform g
  | Sconstrain (x, e) -> Format.fprintf ppf "%s <= %a;" x pp_pexp e

let pp_pattern_def ppf pd =
  Format.fprintf ppf "@[<v 2>pattern %s(%s) {" pd.pd_name
    (String.concat ", " pd.pd_params);
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) pd.pd_stmts;
  Format.fprintf ppf "@,return %a;@]@,}" pp_pexp pd.pd_return

let pp_rule_def ppf rd =
  Format.fprintf ppf "@[<v 2>rule %s for %s(%s)%s {" rd.rd_name rd.rd_for
    (String.concat ", " rd.rd_params)
    (match rd.rd_copy_attrs_from with
    | None -> ""
    | Some src -> " copying " ^ src);
  List.iter
    (fun g -> Format.fprintf ppf "@,assert %a;" pp_gform g)
    rd.rd_asserts;
  List.iter
    (fun br ->
      match br.br_guard with
      | None -> Format.fprintf ppf "@,return %a;" pp_pexp br.br_return
      | Some g ->
          Format.fprintf ppf "@,return %a when %a;" pp_pexp br.br_return
            pp_gform g)
    rd.rd_branches;
  Format.fprintf ppf "@]@,}"

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun od ->
      let params =
        String.concat ", "
          (List.init od.od_arity (fun i -> Printf.sprintf "a%d" i))
      in
      Format.fprintf ppf "op %s(%s)%s class %a;@," od.od_name params
        (if od.od_output_arity = 1 then ""
         else Printf.sprintf " -> %d" od.od_output_arity)
        pp_string_lit od.od_class)
    p.ops;
  List.iter (fun pd -> Format.fprintf ppf "%a@," pp_pattern_def pd) p.patterns;
  List.iter (fun rd -> Format.fprintf ppf "%a@," pp_rule_def rd) p.rules;
  Format.fprintf ppf "@]"
