(** The frontend abstract syntax of PyPM programs.

    Both frontends produce this AST: the OCaml combinator embedding
    ({!Dsl}) and the textual surface language ({!Pypm_surface.Parser}).
    It mirrors what PyPM's Python tracer collects from a decorated method
    body before elaboration to the core calculus:

    - operator declarations ([@op]);
    - pattern definitions ([@pattern]) — a parameter list, a statement
      sequence (local aliases, [var()] locals, operator-variable locals,
      assertions, match constraints) and a returned pattern expression;
      several definitions sharing a name are alternates;
    - rule definitions ([@rule(Pat)]) — assertions plus one or more guarded
      return branches (the [if eltType == f32: return ...] dispatch of
      figure 1 becomes one branch per arm). *)

(** Pattern-body expressions. Application heads are unresolved names; the
    elaborator decides whether a head is an operator, a defined pattern
    (call), or a function variable. *)
type pexp =
  | Evar of string  (** parameter, local, or alias reference *)
  | Eapp of string * pexp list
  | Ealt of pexp * pexp
      (** inline alternation [p1 || p2]: the frontend analogue of Python
          control flow in a pattern body, where the tracer "will execute
          every branch" (paper, section 2.4) *)
  | Elit of float  (** a scalar literal such as [2] or [0.5] *)

(** Guard expressions, surface flavoured: attribute paths like
    [x.shape.rank] keep their spelling and are normalized to core attribute
    names during elaboration. *)
type gexp =
  | Gint of int
  | Gattr of string * string list  (** [x.shape.rank] = [Gattr("x", ["shape"; "rank"])] *)
  | Gdtype of string  (** [f32], [i8], ... *)
  | Gopclass of string  (** [opclass("unary_pointwise")] *)
  | Gadd of gexp * gexp
  | Gsub of gexp * gexp
  | Gmul of gexp * gexp
  | Gmod of gexp * gexp

type gform =
  | Geq of gexp * gexp
  | Gne of gexp * gexp
  | Glt of gexp * gexp
  | Gle of gexp * gexp
  | Gand of gform * gform
  | Gor of gform * gform
  | Gnot of gform
  | Gtrue
  | Gfalse

(** Pattern-body statements, in source order. *)
type stmt =
  | Slocal of string  (** [y = var()] *)
  | Sopvar of string * int  (** [F = Op(1, 1)]: a local function variable of the given arity *)
  | Salias of string * pexp  (** [yt = Trans(y)]: a pure alias, inlined *)
  | Sassert of gform
  | Sconstrain of string * pexp  (** [x <= p] *)

type pattern_def = {
  pd_name : string;
  pd_params : string list;
  pd_stmts : stmt list;
  pd_return : pexp;
}

(** One rule branch: an optional extra guard and the replacement. *)
type branch = { br_guard : gform option; br_return : pexp }

type rule_def = {
  rd_name : string;
  rd_for : string;  (** the pattern this rule attaches to *)
  rd_params : string list;
  rd_asserts : gform list;
  rd_branches : branch list;
  rd_copy_attrs_from : string option;
      (** when set, replacement nodes copy the matched node's attributes
          from this variable (stride/pad propagation) *)
}

type op_def = {
  od_name : string;
  od_arity : int;
  od_output_arity : int;
  od_class : string;
}

type program = {
  ops : op_def list;
  patterns : pattern_def list;  (** in definition order; alternates interleave *)
  rules : rule_def list;  (** in definition order *)
}

val empty_program : program

(** Free names referenced by an expression (application heads excluded). *)
val pexp_vars : pexp -> string list

(** Prints [s] as a surface string literal: quoted, with exactly the
    escapes the surface lexer decodes (backslash-quote,
    backslash-backslash, backslash-n), so printed programs re-lex to the
    same string. *)
val pp_string_lit : Format.formatter -> string -> unit

val pp_pexp : Format.formatter -> pexp -> unit
val pp_gform : Format.formatter -> gform -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_pattern_def : Format.formatter -> pattern_def -> unit
val pp_rule_def : Format.formatter -> rule_def -> unit
val pp_program : Format.formatter -> program -> unit
