open Pypm_term
open Pypm_pattern
open Pypm_engine
module P = Pattern
module Ast = Pypm_dsl.Ast

(* Replace each list element in turn, keeping the others. *)
let each xs shrink_one =
  List.concat
    (List.mapi
       (fun i x ->
         List.map
           (fun x' -> List.mapi (fun j y -> if i = j then x' else y) xs)
           (shrink_one x))
       xs)

let term (t : Term.t) : Term.t list =
  let args = Term.args t in
  let leaf = Term.const "a" in
  if args = [] then if Term.head t = "a" then [] else [ leaf ]
  else args @ [ leaf ] @ List.map (fun args' -> Term.app (Term.head t) args') (each args (fun _ -> [ Term.const "a" ]))
  [@@ocamlformat "disable"]

let rec pattern (p : P.t) : P.t list =
  let sub = P.var "x" in
  match p with
  | P.Var _ -> []
  | P.App (_, []) -> [ sub ]
  | P.App (f, ps) ->
      (sub :: ps) @ List.map (fun ps' -> P.App (f, ps')) (each ps pattern)
  | P.Fapp (f, ps) ->
      (sub :: ps) @ List.map (fun ps' -> P.Fapp (f, ps')) (each ps pattern)
  | P.Alt (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> P.Alt (a', b)) (pattern a)
      @ List.map (fun b' -> P.Alt (a, b')) (pattern b)
  | P.Guarded (a, g) ->
      [ a; P.Guarded (a, Guard.True) ]
      @ List.map (fun a' -> P.Guarded (a', g)) (pattern a)
  | P.Exists (x, a) ->
      (* Dropping the binder is only safe when it leaves [x] unbound but
         still well-formed — which it does: a free variable is a legal
         pattern. *)
      [ a ] @ List.map (fun a' -> P.Exists (x, a')) (pattern a)
  | P.Exists_f (f, a) ->
      [ a ] @ List.map (fun a' -> P.Exists_f (f, a')) (pattern a)
  | P.Constr (a, b, x) ->
      [ a; b ]
      @ List.map (fun a' -> P.Constr (a', b, x)) (pattern a)
      @ List.map (fun b' -> P.Constr (a, b', x)) (pattern b)
  | P.Mu (m, ys) ->
      [ sub; m.P.body ]
      @ List.map
          (fun body' -> P.Mu ({ m with P.body = body' }, ys))
          (pattern m.P.body)
  | P.Call _ -> [ sub ]

let pair ((p, t) : P.t * Term.t) =
  List.map (fun p' -> (p', t)) (pattern p)
  @ List.map (fun t' -> (p, t')) (term t)

let string_ s =
  let n = String.length s in
  if n = 0 then []
  else
    let halves = if n > 1 then [ String.sub s 0 (n / 2); String.sub s (n / 2) (n - n / 2) ] else [] in
    let drops =
      List.init (min n 8) (fun k ->
          let i = k * n / min n 8 in
          String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1))
    in
    let simplified =
      if String.exists (fun c -> c <> 'a') s then [ String.make n 'a' ] else []
    in
    halves @ drops @ simplified

let drop_nth xs i = List.filteri (fun j _ -> j <> i) xs

let core_program (prog : Program.t) : Program.t list =
  let entries = prog.Program.entries in
  let remake es = try [ Program.make ~sg:prog.Program.sg es ] with _ -> [] in
  let dropped =
    if List.length entries > 1 then
      List.concat (List.mapi (fun i _ -> remake (drop_nth entries i)) entries)
    else []
  in
  let per_entry =
    List.concat
      (List.mapi
         (fun i (e : Program.entry) ->
           let without_rules =
             if e.Program.rules = [] then []
             else remake (List.mapi (fun j e' -> if i = j then { e with Program.rules = [] } else e') entries)
           in
           let rule_dropped =
             List.concat
               (List.mapi
                  (fun k _ ->
                    remake
                      (List.mapi
                         (fun j e' ->
                           if i = j then { e with Program.rules = drop_nth e.Program.rules k }
                           else e')
                         entries))
                  e.Program.rules)
           in
           let pat_shrunk =
             List.concat
               (List.map
                  (fun p' ->
                    remake
                      (List.mapi
                         (fun j e' -> if i = j then { e with Program.pattern = p' } else e')
                         entries))
                  (pattern e.Program.pattern))
           in
           without_rules @ rule_dropped @ pat_shrunk)
         entries)
  in
  dropped @ per_entry
  [@@ocamlformat "disable"]

let ast_program (p : Ast.program) : Ast.program list =
  let drop_rules =
    List.mapi (fun i _ -> { p with Ast.rules = drop_nth p.Ast.rules i }) p.Ast.rules
  in
  (* Dropping a pattern group can orphan rules and calls; drop only the
     last group and any rule that targeted it. *)
  let drop_last_pattern =
    match List.rev p.Ast.patterns with
    | [] -> []
    | (last : Ast.pattern_def) :: _ ->
        let name = last.Ast.pd_name in
        [
          {
            p with
            Ast.patterns =
              List.filter (fun (d : Ast.pattern_def) -> d.Ast.pd_name <> name) p.Ast.patterns;
            rules = List.filter (fun (r : Ast.rule_def) -> r.Ast.rd_for <> name) p.Ast.rules;
          };
        ]
  in
  let simplify_stmts =
    List.concat
      (List.mapi
         (fun i (d : Ast.pattern_def) ->
           List.mapi
             (fun k _ ->
               {
                 p with
                 Ast.patterns =
                   List.mapi
                     (fun j d' ->
                       if i = j then { d with Ast.pd_stmts = drop_nth d.Ast.pd_stmts k }
                       else d')
                     p.Ast.patterns;
               })
             d.Ast.pd_stmts)
         p.Ast.patterns)
  in
  let drop_branches =
    List.concat
      (List.mapi
         (fun i (r : Ast.rule_def) ->
           if List.length r.Ast.rd_branches > 1 then
             List.mapi
               (fun k _ ->
                 {
                   p with
                   Ast.rules =
                     List.mapi
                       (fun j r' ->
                         if i = j then { r with Ast.rd_branches = drop_nth r.Ast.rd_branches k }
                         else r')
                       p.Ast.rules;
                 })
               r.Ast.rd_branches
           else [])
         p.Ast.rules)
  in
  drop_rules @ drop_last_pattern @ simplify_stmts @ drop_branches
  [@@ocamlformat "disable"]

let graph_recipe (r : Gen.graph_recipe) : Gen.graph_recipe list =
  let smaller_nodes =
    if r.Gen.gr_nodes > 4 then
      [ { r with Gen.gr_nodes = max 4 (r.Gen.gr_nodes / 2) };
        { r with Gen.gr_nodes = r.Gen.gr_nodes - 1 } ]
    else []
  in
  let fewer_pats =
    if r.Gen.gr_pats > 1 then [ { r with Gen.gr_pats = r.Gen.gr_pats - 1 } ]
    else []
  in
  smaller_nodes @ fewer_pats
  [@@ocamlformat "disable"]
