open Pypm_term
open Pypm_pattern
open Pypm_engine
module P = Pattern
module G = Guard
module O = Pypm_patterns.Std_ops
module Graph = Pypm_graph.Graph
module Ast = Pypm_dsl.Ast

(* ------------------------------------------------------------------ *)
(* Core signature (mirrors test/util/fixtures.ml)                      *)
(* ------------------------------------------------------------------ *)

let declare_core sg =
  ignore (Signature.declare sg ~arity:2 "f");
  ignore (Signature.declare sg ~arity:1 ~op_class:"unary" "g");
  ignore (Signature.declare sg ~arity:3 "h");
  ignore (Signature.declare sg ~arity:0 "a");
  ignore (Signature.declare sg ~arity:0 "b");
  ignore (Signature.declare sg ~arity:0 "c");
  sg

let sg = declare_core (Signature.create ())
let consts = [ "a"; "b"; "c" ]
let vars = [ "x"; "y"; "z"; "w" ]
let fvars = [ "F"; "G" ]

let interp : G.interp =
  {
    term_attr =
      (fun attr t ->
        match attr with
        | "size" -> Some (Term.size t)
        | "depth" -> Some (Term.depth t)
        | "nargs" -> Some (List.length (Term.args t))
        | _ -> None);
    sym_attr =
      (fun attr s ->
        match attr with "arity" -> Signature.arity sg s | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let rec term_sized r depth =
  if depth <= 0 then Term.const (Srng.pick r consts)
  else
    Srng.freq r
      [
        (2, fun r -> Term.const (Srng.pick r consts));
        (2, fun r -> Term.app "g" [ term_sized r (depth - 1) ]);
        ( 2,
          fun r ->
            Term.app "f" [ term_sized r (depth - 1); term_sized r (depth - 1) ]
        );
        ( 1,
          fun r ->
            Term.app "h"
              [
                term_sized r (depth - 1);
                term_sized r (depth - 1);
                term_sized r (depth - 1);
              ] );
      ]

let term r = term_sized r (Srng.range r 1 4)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let guard_expr r gvars =
  let const r = G.Const (Srng.int r 6) in
  match gvars with
  | [] ->
      Srng.freq r
        [ (3, const); (1, fun r -> G.Sym_attr (Srng.pick r consts, "arity")) ]
  | vs ->
      Srng.freq r
        [
          (2, const);
          ( 3,
            fun r ->
              G.Var_attr
                (Srng.pick r vs, Srng.pick r [ "size"; "depth"; "nargs" ]) );
          (1, fun r -> G.Sym_attr (Srng.pick r [ "g"; "f" ], "arity"));
        ]

let guard r gvars =
  let lhs = guard_expr r gvars and rhs = guard_expr r gvars in
  Srng.pick r
    [
      G.Eq (lhs, rhs);
      G.Ne (lhs, rhs);
      G.Lt (lhs, rhs);
      G.Le (lhs, rhs);
      G.Le (G.Const 1, lhs);
      G.And (G.Le (G.Const 1, lhs), G.Le (G.Const 0, rhs));
    ]

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let binder_pattern r =
  let unary_tower_mu =
    (* mu P(x). g(P(x)) || g(x) *)
    P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ]
      (P.alt
         (P.app "g" [ P.call "P" [ "x" ] ])
         (P.app "g" [ P.var "x" ]))
  in
  let fvar_tower_mu =
    (* mu P(x, F). F(P(x, F)) || F(x) *)
    P.mu "P" ~formals:[ "x"; "F" ] ~actuals:[ "x"; "F" ]
      (P.alt
         (P.fapp "F" [ P.call "P" [ "x"; "F" ] ])
         (P.fapp "F" [ P.var "x" ]))
  in
  let guarded_mu =
    P.mu "P" ~formals:[ "x" ] ~actuals:[ "x" ]
      (P.alt
         (P.app "g" [ P.call "P" [ "x" ] ])
         (P.Guarded (P.var "x", G.Le (G.Var_attr ("x", "size"), G.Const 4))))
  in
  Srng.freq r
    [
      (2, fun _ -> unary_tower_mu);
      (2, fun _ -> fvar_tower_mu);
      (1, fun _ -> guarded_mu);
      (2, fun _ -> P.exists "ey" (P.app "g" [ P.var "ey" ]));
      (2, fun _ -> P.exists "ey" (P.app "f" [ P.var "ey"; P.var "ey" ]));
      (1, fun _ -> P.exists_f "EF" (P.fapp "EF" [ P.var "x" ]));
    ]

let rec pattern_sized r depth =
  if depth <= 0 then
    Srng.freq r
      [
        (3, fun r -> P.var (Srng.pick r vars));
        (2, fun r -> P.const (Srng.pick r consts));
      ]
  else
    Srng.freq r
      [
        (2, fun r -> P.var (Srng.pick r vars));
        (2, fun r -> P.const (Srng.pick r consts));
        (3, fun r -> P.app "g" [ pattern_sized r (depth - 1) ]);
        ( 3,
          fun r ->
            P.app "f"
              [ pattern_sized r (depth - 1); pattern_sized r (depth - 1) ] );
        ( 2,
          fun r ->
            P.alt (pattern_sized r (depth - 1)) (pattern_sized r (depth - 1))
        );
        ( 1,
          fun r -> P.fapp (Srng.pick r fvars) [ pattern_sized r (depth - 1) ]
        );
        ( 1,
          fun r ->
            P.fapp (Srng.pick r fvars)
              [ pattern_sized r (depth - 1); pattern_sized r (depth - 1) ] );
        ( 1,
          fun r ->
            P.Guarded (pattern_sized r (depth - 1), guard r [ "x"; "y" ]) );
        ( 1,
          fun r ->
            P.constr (P.var "x") (pattern_sized r (depth - 1)) "x" );
        (1, binder_pattern);
      ]

let pattern r = pattern_sized r (Srng.range r 1 3)

(* ------------------------------------------------------------------ *)
(* Matching-biased pairs                                               *)
(* ------------------------------------------------------------------ *)

(* Grow a pattern from a term by abstracting positions; variables are
   reused to exercise non-linearity. *)
let rec abstract r t depth =
  if depth <= 0 then P.var (Srng.pick r vars)
  else
    let structural r =
      match Term.args t with
      | [] -> P.const (Term.head t)
      | args ->
          let ps = List.map (fun u -> abstract r u (depth - 1)) args in
          Srng.freq r
            [
              (5, fun _ -> P.app (Term.head t) ps);
              (1, fun r -> P.fapp (Srng.pick r fvars) ps);
            ]
    in
    Srng.freq r
      [
        (2, fun r -> P.var (Srng.pick r vars));
        (5, structural);
        ( 1,
          fun r ->
            let p = structural r and junk = pattern_sized r 1 in
            if Srng.bool r then P.alt p junk else P.alt junk p );
        ( 1,
          fun r ->
            P.Guarded
              ( structural r,
                G.Eq (G.Term_attr (t, "size"), G.Const (Term.size t)) ) );
      ]

let pair r =
  Srng.freq r
    [
      ( 3,
        fun r ->
          let t = term_sized r 3 in
          (abstract r t 4, t) );
      (2, fun r -> (pattern r, term r));
      ( 2,
        fun r ->
          let t = term r and p = binder_pattern r in
          Srng.freq r
            [
              (3, fun _ -> (p, t));
              ( 1,
                fun r ->
                  let u = term_sized r 1 in
                  ( P.app "f" [ p; P.var "cw" ],
                    Term.app "f" [ t; u ] ) );
              (1, fun _ -> (P.app "g" [ p ], Term.app "g" [ t ]));
            ] );
    ]

(* ------------------------------------------------------------------ *)
(* Core programs (for the codec round trip)                            *)
(* ------------------------------------------------------------------ *)

(* Millifloat-exact literal: k / 1000 survives the wire format bit-for-bit. *)
let millifloat r = float_of_int (Srng.range r (-4_000_000) 4_000_000) /. 1000.

let rule_rhs r fvs ffs =
  let rec go d =
    Srng.freq r
      [
        ((if fvs = [] then 0 else 4), fun r -> Rule.Rvar (Srng.pick r fvs));
        (2, fun r -> Rule.Rapp (Srng.pick r consts, []));
        ((if d <= 0 then 0 else 2), fun _ -> Rule.Rapp ("g", [ go (d - 1) ]));
        ( (if d <= 0 then 0 else 1),
          fun _ -> Rule.Rapp ("f", [ go (d - 1); go (d - 1) ]) );
        ( (if d <= 0 then 0 else 1),
          fun r ->
            Rule.Rapp_attrs ("g", [ go (d - 1) ], [ ("k", Srng.int r 8) ]) );
        ( (if ffs = [] || d <= 0 then 0 else 2),
          fun r -> Rule.Rfapp (Srng.pick r ffs, [ go (d - 1) ]) );
        ( (if fvs = [] || d <= 0 then 0 else 1),
          fun r -> Rule.Rcopy_attrs ("g", [ go (d - 1) ], Srng.pick r fvs) );
        (1, fun r -> Rule.Rlit (millifloat r));
      ]
  in
  go 2

let core_program r =
  let psg = declare_core (Signature.create ()) in
  let n = Srng.range r 1 4 in
  let entries =
    List.init n (fun i ->
        let p = pattern r in
        let fvs = Symbol.Set.elements (P.free_vars p) in
        let ffs = Symbol.Set.elements (P.free_fvars p) in
        let pname = Printf.sprintf "P%d" i in
        let rules =
          List.init (Srng.int r 3) (fun j ->
              let g = if Srng.bool r then G.True else guard r fvs in
              Rule.make ~guard:g
                ~name:(Printf.sprintf "%s_r%d" pname j)
                ~pattern:pname (rule_rhs r fvs ffs))
        in
        { Program.pname; pattern = p; rules })
  in
  Program.make ~sg:psg entries

(* ------------------------------------------------------------------ *)
(* Surface ASTs                                                        *)
(* ------------------------------------------------------------------ *)

(* Only lexer-safe literals: non-negative, printed by %g without an
   exponent, so print-then-parse is the identity. *)
let lits = [ 0.; 1.; 2.; 3.; 0.5; 0.125; 10. ]

let classes =
  [
    "generic";
    "unary_pointwise";
    "quoted \"class\"";
    "back\\slash";
    "two\nlines";
  ]

let attr_paths =
  [
    [ "rank" ]; [ "size" ]; [ "depth" ]; [ "dim0" ]; [ "nelems" ];
    [ "shape"; "rank" ];
  ]

let gen_gform r names =
  let atom r =
    match names with
    | [] -> Ast.Gint (Srng.int r 5)
    | ns ->
        Srng.freq r
          [
            (1, fun r -> Ast.Gint (Srng.int r 5));
            ( 3,
              fun r -> Ast.Gattr (Srng.pick r ns, Srng.pick r attr_paths) );
          ]
  in
  let lhs = atom r and rhs = atom r in
  Srng.freq r
    [
      (2, fun _ -> Ast.Gle (Ast.Gint 0, lhs));
      (2, fun _ -> Ast.Geq (lhs, rhs));
      (1, fun _ -> Ast.Gne (lhs, rhs));
      (1, fun _ -> Ast.Glt (Ast.Gadd (lhs, Ast.Gint 1), Ast.Gmul (rhs, Ast.Gint 3)));
      (1, fun _ -> Ast.Gand (Ast.Gle (Ast.Gint 0, lhs), Ast.Gle (Ast.Gint 0, rhs)));
      (1, fun _ -> Ast.Gnot (Ast.Glt (lhs, rhs)));
      (1, fun _ -> Ast.Gtrue);
    ]

(* One pattern definition. [callables] lists earlier groups (name, #params)
   available for inline calls; [self_arity] enables self-recursion. *)
let gen_pattern_def r ~name ~params ~callables ~allow_self =
  let nlocals = Srng.int r 3 in
  let locals = List.init nlocals (Printf.sprintf "l%d") in
  let opvar = Srng.int r 3 = 0 in
  let opvars = if opvar then [ ("V0", 1) ] else [] in
  let leaf _r x = Ast.Evar x in
  (* Wrap one required name so it still occurs exactly once. *)
  let wrap r x =
    Srng.freq r
      [
        (3, fun _ -> leaf r x);
        (1, fun _ -> Ast.Eapp ("O0", [ Ast.Evar x ]));
        ( (if opvar then 1 else 0),
          fun _ -> Ast.Eapp ("V0", [ Ast.Evar x ]) );
      ]
  in
  let filler r =
    Srng.freq r
      [
        (2, fun r -> Ast.Elit (Srng.pick r lits));
        (1, fun _ -> Ast.Eapp ("O2", []));
      ]
  in
  (* Combine every required name into one expression so all params and
     locals are pinned by occurrences. *)
  let rec combine r = function
    | [] -> filler r
    | [ x ] -> wrap r x
    | x :: rest -> Ast.Eapp ("O1", [ wrap r x; combine r rest ])
  in
  let ret = combine r (params @ locals) in
  (* Optional inline call to an earlier pattern. *)
  let ret =
    match callables with
    | (cname, arity) :: _ when Srng.int r 3 = 0 ->
        let args =
          List.init arity (fun i ->
              match List.nth_opt params i with
              | Some p when Srng.bool r -> Ast.Evar p
              | _ -> Ast.Elit (Srng.pick r lits))
        in
        Ast.Eapp ("O1", [ ret; Ast.Eapp (cname, args) ])
    | _ -> ret
  in
  (* Optional self-recursion: an alternate that recurses, after a base. *)
  let ret =
    if allow_self && params <> [] && Srng.int r 4 = 0 then
      let args =
        List.mapi
          (fun i p ->
            if i = 0 then Ast.Eapp ("O0", [ Ast.Evar p ]) else Ast.Evar p)
          params
      in
      Ast.Ealt (ret, Ast.Eapp (name, args))
    else ret
  in
  let ret = if Srng.int r 4 = 0 then Ast.Ealt (ret, filler r) else ret in
  let stmts =
    List.map (fun l -> Ast.Slocal l) locals
    @ List.map (fun (v, a) -> Ast.Sopvar (v, a)) opvars
    @ (if params <> [] && Srng.int r 3 = 0 then
         [ Ast.Salias ("al0", Ast.Eapp ("O0", [ Ast.Evar (List.hd params) ])) ]
       else [])
    @ (match locals with
      | l :: _ when Srng.bool r ->
          [
            Ast.Sconstrain
              ( l,
                match params with
                | p :: _ when Srng.bool r -> Ast.Eapp ("O0", [ Ast.Evar p ])
                | _ -> Ast.Elit (Srng.pick r lits) );
          ]
      | _ -> [])
    @ (if Srng.bool r then
         [ Ast.Sassert (gen_gform r (params @ locals)) ]
       else [])
    @
    if opvar && Srng.bool r then
      [
        Ast.Sassert
          (Ast.Geq
             ( Ast.Gattr ("V0", [ "op_class" ]),
               Ast.Gopclass (Srng.pick r classes) ));
      ]
    else []
  in
  { Ast.pd_name = name; pd_params = params; pd_stmts = stmts; pd_return = ret }

let gen_rule_def r ~name ~for_ ~params =
  let rd_params = params in
  let branch r =
    let ret =
      Srng.freq r
        [
          ( (if rd_params = [] then 0 else 3),
            fun r -> Ast.Eapp ("O0", [ Ast.Evar (Srng.pick r rd_params) ]) );
          ( (if List.length rd_params < 2 then 0 else 1),
            fun _ ->
              Ast.Eapp
                ( "O1",
                  [
                    Ast.Evar (List.nth rd_params 0);
                    Ast.Evar (List.nth rd_params 1);
                  ] ) );
          ((if rd_params = [] then 0 else 2),
           fun r -> Ast.Evar (Srng.pick r rd_params));
          (1, fun r -> Ast.Elit (Srng.pick r lits));
        ]
    in
    let guard =
      if Srng.int r 3 = 0 then Some (gen_gform r rd_params) else None
    in
    { Ast.br_guard = guard; br_return = ret }
  in
  let branches = List.init (Srng.range r 1 2) (fun _ -> branch r) in
  let copying =
    if rd_params <> [] && Srng.int r 4 = 0 then Some (List.hd rd_params)
    else None
  in
  let asserts =
    if Srng.int r 3 = 0 then [ gen_gform r rd_params ] else []
  in
  {
    Ast.rd_name = name;
    rd_for = for_;
    rd_params;
    rd_asserts = asserts;
    rd_branches = branches;
    rd_copy_attrs_from = copying;
  }

let ast_program r =
  let ops =
    [
      { Ast.od_name = "O0"; od_arity = 1; od_output_arity = 1;
        od_class = Srng.pick r classes };
      { Ast.od_name = "O1"; od_arity = 2; od_output_arity = 1;
        od_class = Srng.pick r classes };
      { Ast.od_name = "O2"; od_arity = 0; od_output_arity = 1;
        od_class = Srng.pick r classes };
    ]
    @
    if Srng.bool r then
      [
        { Ast.od_name = "O3"; od_arity = Srng.int r 4;
          od_output_arity = Srng.range r 1 2; od_class = Srng.pick r classes };
      ]
    else []
  in
  let npats = Srng.range r 1 3 in
  let pats, _ =
    List.fold_left
      (fun (acc, callables) i ->
        let name = Printf.sprintf "Q%d" i in
        let params = List.init (Srng.int r 3) (Printf.sprintf "p%d") in
        let def =
          gen_pattern_def r ~name ~params ~callables ~allow_self:true
        in
        (* Alternate with the same name (and the same parameter list). *)
        let defs =
          if Srng.int r 4 = 0 then
            [ def; gen_pattern_def r ~name ~params ~callables ~allow_self:false ]
          else [ def ]
        in
        (acc @ defs, (name, List.length params) :: callables))
      ([], [])
      (List.init npats Fun.id)
  in
  let groups =
    List.fold_left
      (fun acc (pd : Ast.pattern_def) ->
        if List.mem_assoc pd.Ast.pd_name acc then acc
        else acc @ [ (pd.Ast.pd_name, pd.Ast.pd_params) ])
      [] pats
  in
  let rules =
    List.init (Srng.int r 3) (fun i ->
        let for_, params = Srng.pick r groups in
        gen_rule_def r ~name:(Printf.sprintf "R%d" i) ~for_ ~params)
  in
  { Ast.ops; patterns = pats; rules }

(* ------------------------------------------------------------------ *)
(* Strings and hostile sources                                         *)
(* ------------------------------------------------------------------ *)

let string_chars =
  [ 'a'; 'b'; 'z'; 'A'; '0'; '9'; ' '; '"'; '\\'; '\n'; '\t'; '('; ')';
    '{'; '#'; '/'; ';'; '.'; '\xe9'; '\xff' ]

let string_ r =
  String.init (Srng.int r 13) (fun _ -> Srng.pick r string_chars)

let token_soup_pool =
  [
    "pattern"; "rule"; "op"; "include"; "Q0"; "("; ")"; "{"; "}"; ";";
    "return"; "assert"; "when"; "copying"; "for"; "class"; "<="; "==";
    "="; "||"; "&&"; "!"; "->"; "."; ","; "\"unclosed"; "\"s\""; "\"bad \\q\"";
    "12345"; "99999999999999999999999999999"; "0.5"; "1e309"; "var"; "Op";
    "x"; "opclass"; "true"; "// comment"; "# comment"; "%"; "*"; "+"; "-";
  ]

let mutate r src =
  if String.length src = 0 then src
  else
    let i = Srng.int r (String.length src) in
    match Srng.int r 3 with
    | 0 -> String.sub src 0 i ^ String.sub src (i + 1) (String.length src - i - 1)
    | 1 ->
        String.sub src 0 i
        ^ String.make 1 (Srng.pick r string_chars)
        ^ String.sub src i (String.length src - i)
    | _ -> String.sub src 0 i
  [@@ocamlformat "disable"]

let garbage_source r =
  Srng.freq r
    [
      ( 2,
        fun r ->
          String.init (Srng.int r 61) (fun _ -> Srng.pick r string_chars) );
      ( 2,
        fun r ->
          let src =
            Format.asprintf "%a" Ast.pp_program (ast_program r)
          in
          mutate r (mutate r src) );
      ( 2,
        fun r ->
          String.concat " "
            (List.init (Srng.int r 21) (fun _ -> Srng.pick r token_soup_pool))
      );
    ]

(* ------------------------------------------------------------------ *)
(* Tensor-graph recipes                                                *)
(* ------------------------------------------------------------------ *)

type graph_recipe = { gr_seed : int; gr_nodes : int; gr_pats : int }

let graph_recipe r =
  {
    gr_seed = Srng.int r 1_000_000;
    gr_nodes = Srng.range r 8 36;
    gr_pats = Srng.range r 2 8;
  }

let f32 shape = Pypm_tensor.Ty.make Pypm_tensor.Dtype.F32 shape

(* GELU(x) with a random "half" spelling, as the transformer models emit. *)
let gelu_subgraph r g x =
  let half =
    if Srng.bool r then Graph.add g O.div [ x; Graph.constant g 2.0 ]
    else Graph.add g O.mul [ x; Graph.constant g 0.5 ]
  in
  let erf =
    Graph.add g O.erf [ Graph.add g O.div [ x; Graph.constant g O.sqrt2 ] ]
  in
  let inner = Graph.add g O.add [ Graph.constant g 1.0; erf ] in
  Graph.add g O.mul [ half; inner ]

(* The entries a random program draws from. [trans_of_matmul] is excluded:
   together with [matmul_of_trans] it ping-pongs and only the max_rewrites
   backstop stops the pass. *)
let corpus_pool () =
  let module C = Pypm_patterns.Corpus in
  [
    C.gelu_fuse; C.mha_fuse; C.epilog_relu; C.epilog_gelu; C.epilog_bias_relu;
    C.epilog_bias_gelu; C.mmxyt; C.trans_trans; C.mul_one; C.add_zero;
    C.sub_zero; C.div_one; C.mul_zero; C.neg_neg; C.softmax_shift;
    C.relu_chain; C.matmul_of_trans; C.unary_chain; C.matmul_epilog_chain;
  ]

let synthesized_entries sg =
  let lit2 = Graph.declare_lit sg 2.0 in
  [
    {
      Program.pname = "FzReluId";
      pattern = P.app O.relu [ P.var "x" ];
      rules =
        [ Rule.make ~name:"fz_relu_id" ~pattern:"FzReluId" (Rule.Rvar "x") ];
    };
    {
      Program.pname = "FzMulTwo";
      pattern = P.app O.mul [ P.var "x"; P.const lit2 ];
      rules =
        [
          Rule.make ~name:"fz_mul_two" ~pattern:"FzMulTwo"
            (Rule.Rapp (O.add, [ Rule.Rvar "x"; Rule.Rvar "x" ]));
        ];
    };
  ]

let build recipe =
  let r = Srng.create ~seed:recipe.gr_seed in
  let env = O.make () in
  let g = Graph.create ~sg:env.O.sg ~infer:env.O.infer () in
  let b = 2 and s = 8 in
  let h = Srng.pick r [ 4; 8 ] in
  let x0 = Graph.input g ~name:"x" (f32 [ b; s; h ]) in
  (* Every pool node has shape [b; s; h], so any two can be combined. *)
  let pool = ref [ x0 ] in
  let wc = ref 0 in
  let weight () =
    incr wc;
    Graph.input g ~name:(Printf.sprintf "w%d" !wc) (f32 [ h; h ])
  in
  let bias () =
    incr wc;
    Graph.input g ~name:(Printf.sprintf "b%d" !wc) (f32 [ h ])
  in
  let pick_node r = Srng.pick r !pool in
  let push n = pool := n :: !pool in
  let unary_ops =
    [ O.relu; O.gelu; O.tanh_; O.sigmoid; O.exp_; O.neg; O.softmax;
      O.layer_norm ]
  in
  while Graph.node_count g < recipe.gr_nodes do
    Srng.freq r
      [
        ( 3,
          fun r -> push (Graph.add g (Srng.pick r unary_ops) [ pick_node r ])
        );
        ( 2,
          fun r ->
            let x = pick_node r in
            let op = Srng.pick r [ O.add; O.mul; O.sub; O.div ] in
            let y =
              Srng.freq r
                [
                  (2, pick_node);
                  ( 1,
                    fun r -> Graph.constant g (Srng.pick r [ 1.0; 2.0; 0.5 ])
                  );
                ]
            in
            push (Graph.add g op [ x; y ]) );
        (2, fun r -> push (Graph.add g O.matmul [ pick_node r; weight () ]));
        ( 1,
          fun r ->
            push
              (Graph.add g O.matmul
                 [ pick_node r; Graph.add g O.trans [ weight () ] ]) );
        ( 1,
          fun r ->
            let pre =
              Graph.add g O.add
                [ Graph.add g O.matmul [ pick_node r; weight () ]; bias () ]
            in
            push
              (if Srng.bool r then Graph.add g O.relu [ pre ]
               else gelu_subgraph r g pre) );
        ( 1,
          fun r ->
            let x = pick_node r in
            let q = Graph.add g O.matmul [ x; weight () ] in
            let k = Graph.add g O.matmul [ x; weight () ] in
            let v = Graph.add g O.matmul [ x; weight () ] in
            let qk = Graph.add g O.matmul [ q; Graph.add g O.trans [ k ] ] in
            let alpha = Graph.constant g 0.125 in
            let scaled =
              if Srng.bool r then Graph.add g O.div [ qk; alpha ]
              else Graph.add g O.mul [ qk; alpha ]
            in
            let probs = Graph.add g O.softmax [ scaled ] in
            push (Graph.add g O.matmul [ probs; v ]) );
        (1, fun r -> push (gelu_subgraph r g (pick_node r)));
      ]
  done;
  (match !pool with
  | n1 :: n2 :: _ when Srng.bool r -> Graph.set_outputs g [ n1; n2 ]
  | n1 :: _ -> Graph.set_outputs g [ n1 ]
  | [] -> assert false);
  (* Pattern program: a random corpus subset, sometimes preceded by
     synthesized always-firing cleanups. *)
  let entries =
    let avail = ref (corpus_pool ()) in
    let chosen = ref [] in
    for _ = 1 to min recipe.gr_pats (List.length !avail) do
      let i = Srng.int r (List.length !avail) in
      chosen := List.nth !avail i :: !chosen;
      avail := List.filteri (fun j _ -> j <> i) !avail
    done;
    let synth =
      if Srng.bool r then synthesized_entries env.O.sg else []
    in
    synth @ List.rev !chosen
  in
  (env, g, Program.make ~sg:env.O.sg entries)
