(** Seeded, splittable pseudo-random numbers for the fuzzer.

    SplitMix64 with per-stream gammas (the SplittableRandom construction):
    every generator is an independent deterministic stream identified by
    its seed, and {!split} forks a child stream whose outputs are
    statistically independent of the parent's continuation. Nothing here
    touches the global [Random] state, so fuzzing runs are reproducible
    from a seed alone and generators can be handed to sub-generators
    without coupling their consumption patterns. *)

type t

(** [create ~seed] is a fresh stream. Equal seeds give equal streams. *)
val create : seed:int -> t

(** [split t] advances [t] and returns an independent child stream.
    Deterministic: the child depends only on [t]'s state at the call. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next64 : t -> int64

(** [int t n] is uniform in [0, n); [n] must be positive. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [pick t xs] chooses uniformly from a non-empty list. *)
val pick : t -> 'a list -> 'a

(** [freq t choices] picks among weighted thunks: [(3, a); (1, b)] runs
    [a] three times as often as [b]. Weights must be positive and the list
    non-empty. *)
val freq : t -> (int * (t -> 'a)) list -> 'a

(** A full-range int (may be negative; covers [min_int]/[max_int]). *)
val any_int : t -> int
