(* SplitMix64 with per-stream gammas: Steele, Lea and Flood, "Fast
   splittable pseudorandom number generators" (OOPSLA 2014). The state is
   one 64-bit counter advanced by an odd gamma and finalized by a mix
   function; splitting mints a child whose own gamma is derived from the
   parent stream, so parent and child outputs are decorrelated. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount64 x =
  let c = ref 0 in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
  done;
  !c

(* Gammas must be odd; reject candidates whose bit pattern is too regular
   (the paper's mixGamma). *)
let mix_gamma z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 33))
      0xFF51AFD7ED558CCDL
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 33))
      0xC4CEB9FE1A85EC53L
  in
  let z = Int64.logor z 1L in
  let n = popcount64 (Int64.logxor z (Int64.shift_right_logical z 1)) in
  if n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create ~seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let next64 t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

let split t =
  let s1 = next64 t in
  let s2 = next64 t in
  { state = s1; gamma = mix_gamma s2 }

let int t n =
  if n <= 0 then invalid_arg "Srng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int n))

let range t lo hi =
  if hi < lo then invalid_arg "Srng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let pick t xs =
  match xs with
  | [] -> invalid_arg "Srng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let freq t choices =
  let total =
    List.fold_left
      (fun acc (w, _) ->
        if w < 0 then invalid_arg "Srng.freq: negative weight" else acc + w)
      0 choices
  in
  if total <= 0 then invalid_arg "Srng.freq: no positive weight";
  let r = int t total in
  let rec go acc = function
    | [] -> assert false
    | (w, f) :: rest -> if r < acc + w then f t else go (acc + w) rest
  in
  go 0 choices

let any_int t = Int64.to_int (next64 t)
