open Pypm_pattern
module P = Pattern
module G = Guard

(* Three renaming environments, one per binding namespace: term variables
   (Exists, Mu formals), function variables (Exists_f) and recursive
   pattern names (Mu). Each maps a left-side bound name to its right-side
   counterpart. A name absent from its map is free and must match
   literally — but only if it is not shadowed: a left-free name may not
   equal a right-bound one (and vice versa), or renaming would conflate a
   parameter with a local. *)
type env = {
  vars : (string * string) list;
  fvars : (string * string) list;
  pnames : (string * string) list;
}

let empty = { vars = []; fvars = []; pnames = [] }

let eq_name m x y =
  match List.assoc_opt x m with
  | Some y' -> String.equal y y'
  | None -> (not (List.exists (fun (_, r) -> String.equal r y) m)) && String.equal x y

let eq_var env = eq_name env.vars
let eq_fvar env = eq_name env.fvars
let eq_pname env = eq_name env.pnames

let bind m x y = (x, y) :: m

(* Guards mention term variables ([Var_attr]) and function variables
   ([Fvar_attr]); both kinds may be binder-bound, so they go through the
   environment. Closed expression forms compare structurally. *)
let rec eq_expr env (a : G.expr) (b : G.expr) =
  match (a, b) with
  | G.Const m, G.Const n -> m = n
  | G.Var_attr (x, ax), G.Var_attr (y, ay) ->
      eq_var env x y && String.equal ax ay
  | G.Fvar_attr (f, ax), G.Fvar_attr (g, ay) ->
      eq_fvar env f g && String.equal ax ay
  | G.Term_attr (t, ax), G.Term_attr (u, ay) ->
      Pypm_term.Term.equal t u && String.equal ax ay
  | G.Sym_attr (s, ax), G.Sym_attr (r, ay) ->
      String.equal s r && String.equal ax ay
  | G.Add (a1, a2), G.Add (b1, b2)
  | G.Sub (a1, a2), G.Sub (b1, b2)
  | G.Mul (a1, a2), G.Mul (b1, b2)
  | G.Mod (a1, a2), G.Mod (b1, b2) ->
      eq_expr env a1 b1 && eq_expr env a2 b2
  | _ -> false

let rec eq_guard env (a : G.t) (b : G.t) =
  match (a, b) with
  | G.True, G.True | G.False, G.False -> true
  | G.Eq (a1, a2), G.Eq (b1, b2)
  | G.Ne (a1, a2), G.Ne (b1, b2)
  | G.Lt (a1, a2), G.Lt (b1, b2)
  | G.Le (a1, a2), G.Le (b1, b2) ->
      eq_expr env a1 b1 && eq_expr env a2 b2
  | G.And (a1, a2), G.And (b1, b2) | G.Or (a1, a2), G.Or (b1, b2) ->
      eq_guard env a1 b1 && eq_guard env a2 b2
  | G.Not a1, G.Not b1 -> eq_guard env a1 b1
  | _ -> false

let rec eq env (p : P.t) (q : P.t) =
  match (p, q) with
  | P.Var x, P.Var y -> eq_var env x y
  | P.App (f, ps), P.App (g, qs) ->
      String.equal f g
      && List.length ps = List.length qs
      && List.for_all2 (eq env) ps qs
  | P.Fapp (f, ps), P.Fapp (g, qs) ->
      eq_fvar env f g
      && List.length ps = List.length qs
      && List.for_all2 (eq env) ps qs
  | P.Alt (a1, a2), P.Alt (b1, b2) -> eq env a1 b1 && eq env a2 b2
  | P.Guarded (a, ga), P.Guarded (b, gb) -> eq env a b && eq_guard env ga gb
  | P.Exists (x, a), P.Exists (y, b) ->
      eq { env with vars = bind env.vars x y } a b
  | P.Exists_f (f, a), P.Exists_f (g, b) ->
      eq { env with fvars = bind env.fvars f g } a b
  | P.Constr (a1, a2, x), P.Constr (b1, b2, y) ->
      eq_var env x y && eq env a1 b1 && eq env a2 b2
  | P.Mu (m1, ys1), P.Mu (m2, ys2) ->
      List.length m1.P.formals = List.length m2.P.formals
      && List.length ys1 = List.length ys2
      && List.for_all2 (eq_var env) ys1 ys2
      &&
      let env =
        {
          env with
          pnames = bind env.pnames m1.P.pname m2.P.pname;
          vars = List.fold_left2 bind env.vars m1.P.formals m2.P.formals;
        }
      in
      eq env m1.P.body m2.P.body
  | P.Call (pn1, ys1), P.Call (pn2, ys2) ->
      eq_pname env pn1 pn2
      && List.length ys1 = List.length ys2
      && List.for_all2 (eq_var env) ys1 ys2
  | _ -> false

let equal p q = eq empty p q
