(** Differential fuzzing driver.

    Each property draws cases from a seeded {!Srng} stream and cross-checks
    two or more independent implementations of the same semantics:

    - [machine_matcher_faithful] / [machine_matcher_backtrack]: the abstract
      machine and the production backtracking matcher return equal outcomes
      under both stuck-state policies;
    - [oracle_first_witness]: the machine's success witness is the
      enumeration oracle's first witness, and machine failure implies the
      (complete) oracle found no witness;
    - [plan_first_witness]: for skeleton-compilable patterns, the shared
      matching plan's first witness equals the backtracking matcher's;
    - [engines_agree]: the three pass engines (naive, indexed, plan) report
      identical per-pattern match counts, perform the same number of
      rewrites and produce isomorphic graphs on random well-typed
      transformer-style workloads — and the rewritten graph validates;
    - [parallel_pass_agreement]: for every engine, [Pass.run ~domains:k]
      (k in 2, 4) produces the same final-graph fingerprint, rewrite
      count and provenance step sequence as the sequential pass — the
      determinism contract of the sharded matching phase;
    - [egraph_pass_agreement]: [Pass.run ~engine:Egraph] leaves a valid
      graph that is never costlier (under the {!Pypm_kernels.Cost} model)
      than the plan engine's result on the same recipe; when its
      saturation post-phase splices nothing, the graph is isomorphic to
      the plan engine's;
    - [crash_safety]: under any seeded fault-injection schedule
      ({!Pypm_resilience.Resilience.Inject}) the pass neither raises nor
      leaves an invalid graph, on every engine;
    - [rollback_exact]: a schedule failing every instantiation leaves the
      graph's structural fingerprint (and live node count) unchanged —
      every attempted firing rolled back exactly;
    - [lint_soundness]: every committed static-analysis verdict holds
      dynamically — patterns flagged dead never match random probe terms
      (backtracking matcher and enumeration oracle agree), every
      shadowing / subsumption / overlap witness term re-matches the
      patterns its diagnostic names, and [Analysis.subsumes p q = `Yes]
      is extensional on the probe stream (a q-match is a p-match);
    - [codec_roundtrip]: encode / decode / re-encode of random programs is
      byte-identical;
    - [codec_wire]: varint and zigzag primitives round-trip any [int];
    - [codec_graph_roundtrip]: a random well-typed graph survives
      {!Pypm_serialize.Codec.Graphs} encode / decode with its structural
      fingerprint intact, and truncated or bit-flipped buffers decode to
      [Error] — never an exception;
    - [surface_roundtrip]: pretty-printing a random frontend AST, re-parsing
      and re-elaborating yields alpha-equivalent patterns and equal rules;
    - [lex_parse_total]: hostile input never escapes {!Pypm_surface.Surface.parse}
      with an exception — errors are positioned values;
    - [string_roundtrip]: string-literal quoting and lexing are inverse.

    A failing case is minimized by greedy delta debugging over the
    {!Shrink} candidates and reported with the exact command line that
    replays it. *)

(** Verdict of one case. [Discard] marks vacuous cases (e.g. fuel ran out),
    which count toward neither pass nor failure. *)
type verdict = Pass | Discard | Fail of string

type failure = {
  f_prop : string;
  f_case_seed : int;
      (** replay with [pypmc fuzz --prop <name> --seed <case_seed> --budget 1] *)
  f_message : string;
  f_original : string;  (** printed counterexample as generated *)
  f_minimized : string;  (** printed counterexample after shrinking *)
  f_shrink_steps : int;  (** successful shrink steps taken *)
}

type prop_report = {
  p_name : string;
  p_cases : int;  (** cases executed (including the failing one) *)
  p_passed : int;
  p_discarded : int;
  p_failure : failure option;
}

type report = {
  r_seed : int;
  r_budget : int;
  r_props : prop_report list;
}

val all_prop_names : string list

(** Structural fingerprint of the live graph: node ids and input-symbol
    uid suffixes are relabelled in first-appearance order, shared
    subgraphs are emitted once then referenced, so two graphs have equal
    fingerprints iff they are isomorphic as labelled DAGs from their
    outputs. Runs {!Pypm_graph.Graph.gc} first (the fingerprint sees live
    nodes only). *)
val fingerprint : Pypm_graph.Graph.t -> string

(** [run ?props ~seed ~budget ()] executes the selected properties
    ([props = []] or omitted means all), spreading [budget] cases across
    them (expensive properties receive proportionally fewer cases). Case
    [i] of every property uses case seed [seed + i], so a failure replays
    with [--seed <case_seed> --budget 1] restricted to that property. Each
    property stops at its first failure (after minimizing it). Raises
    [Invalid_argument] on an unknown property name. *)
val run : ?props:string list -> seed:int -> budget:int -> unit -> report

(** True when no property failed. *)
val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
