(** Deterministic random generators for every fuzzable object.

    All generators draw exclusively from an {!Srng.t} stream, so a case is
    reproducible from its seed alone. Three families:

    - {b core objects} over a tiny fixed signature (binary [f], unary [g],
      ternary [h], constants [a b c], mirroring the unit-test fixtures):
      terms, patterns covering every constructor including [Alt], [Guarded],
      [Exists]/[Exists_f], [Constr] and [Mu], match-biased (pattern, term)
      pairs, and whole engine programs with rules (for the codec);
    - {b frontend objects}: well-formed surface ASTs exercising aliases,
      [var()] locals, operator variables, asserts, match constraints,
      alternates, pattern calls and self-recursion, plus escape-laden string
      literals — and garbage/mutated source text for totality testing;
    - {b tensor graphs}: recipes for well-typed transformer-style graphs
      over {!Pypm_patterns.Std_ops} together with a pattern program drawn
      from the corpus, rebuildable deterministically so the differential
      engine properties can replay the same workload per engine. *)

open Pypm_term
open Pypm_pattern

(** The shared core test signature (f/2, g/1, h/3, a, b, c). *)
val sg : Signature.t

(** Structural attribute interpretation over {!sg}: [size], [depth],
    [nargs]; symbol [arity]. *)
val interp : Guard.interp

val term : Srng.t -> Term.t
val pattern : Srng.t -> Pattern.t

(** A (pattern, term) pair: mixes pairs abstracted from the term (frequent
    matches), independent draws, and binder/recursion-heavy patterns. *)
val pair : Srng.t -> Pattern.t * Term.t

(** An engine program over a fresh copy of the core signature: 1-4 named
    patterns, each with 0-2 rules whose templates use the pattern's free
    variables. Rule literals are millifloat-exact, so encoding is lossless. *)
val core_program : Srng.t -> Pypm_engine.Program.t

(** A well-formed surface AST. Mostly elaborable; always printable and
    re-parseable. *)
val ast_program : Srng.t -> Pypm_dsl.Ast.program

(** An arbitrary string over a pool that includes quotes, backslashes,
    newlines and other controls (for the string-literal round trip). *)
val string_ : Srng.t -> string

(** Hostile source text: random bytes, token soup, oversized numeric
    literals, or a valid program with point mutations. *)
val garbage_source : Srng.t -> string

(** A rebuildable differential-testing workload: seeds and size knobs only,
    so each engine run can rebuild the identical graph and program. *)
type graph_recipe = {
  gr_seed : int;  (** master seed for graph and program construction *)
  gr_nodes : int;  (** approximate live-node target *)
  gr_pats : int;  (** number of corpus patterns to load *)
}

val graph_recipe : Srng.t -> graph_recipe

(** [build recipe] deterministically rebuilds the environment, the graph
    and the pattern program. Repeated calls with the same recipe produce
    isomorphic graphs and identical programs. *)
val build :
  graph_recipe ->
  Pypm_patterns.Std_ops.env * Pypm_graph.Graph.t * Pypm_engine.Program.t
