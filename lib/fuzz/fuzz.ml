open Pypm_term
open Pypm_pattern
open Pypm_semantics
open Pypm_engine
module P = Pattern
module Graph = Pypm_graph.Graph
module Plan = Pypm_plan.Plan
module Codec = Pypm_serialize.Codec
module Surface = Pypm_surface.Surface
module Lexer = Pypm_surface.Lexer
module Ast = Pypm_dsl.Ast
module Elaborate = Pypm_dsl.Elaborate
module Inject = Pypm_resilience.Resilience.Inject
module Analysis = Pypm_analysis.Analysis
module Std_ops = Pypm_patterns.Std_ops
module Cost = Pypm_kernels.Cost
module Exec = Pypm_kernels.Exec

type verdict = Pass | Discard | Fail of string

type failure = {
  f_prop : string;
  f_case_seed : int;
  f_message : string;
  f_original : string;
  f_minimized : string;
  f_shrink_steps : int;
}

type prop_report = {
  p_name : string;
  p_cases : int;
  p_passed : int;
  p_discarded : int;
  p_failure : failure option;
}

type report = {
  r_seed : int;
  r_budget : int;
  r_props : prop_report list;
}

type 'a case = {
  gen : Srng.t -> 'a;
  shrink : 'a -> 'a list;
  check : 'a -> verdict;
  show : 'a -> string;
}

type prop = Prop : { name : string; doc : string; cost : int; case : 'a case } -> prop

(* A check must never escape with an exception: an uncaught exception IS a
   counterexample (the totality properties exist precisely for those). *)
let protect check x =
  try check x with e -> Fail ("uncaught exception: " ^ Printexc.to_string e)

(* Greedy delta debugging: repeatedly move to the first shrink candidate
   that still fails, within a global evaluation budget so pathological
   shrinkers cannot hang the run. *)
let minimize case x0 msg0 =
  let evals = ref 0 and steps = ref 0 in
  let best = ref x0 and best_msg = ref msg0 in
  let improved = ref true in
  while !improved && !evals < 500 do
    improved := false;
    let candidates = case.shrink !best in
    (try
       List.iter
         (fun c ->
           if !evals >= 500 then raise Exit;
           incr evals;
           match protect case.check c with
           | Fail m ->
               best := c;
               best_msg := m;
               incr steps;
               improved := true;
               raise Exit
           | Pass | Discard -> ())
         candidates
     with Exit -> ())
  done;
  (!best, !best_msg, !steps)

(* ------------------------------------------------------------------ *)
(* Printers                                                            *)
(* ------------------------------------------------------------------ *)

let show_pair (p, t) =
  Printf.sprintf "pattern: %s\nterm:    %s" (P.to_string p) (Term.to_string t)

let show_program prog = Format.asprintf "%a" Program.pp prog
let show_ast ast = Format.asprintf "%a" Ast.pp_program ast
let show_string s = Printf.sprintf "%S" s

let show_recipe (r : Gen.graph_recipe) =
  Printf.sprintf "{ gr_seed = %d; gr_nodes = %d; gr_pats = %d }" r.Gen.gr_seed
    r.Gen.gr_nodes r.Gen.gr_pats

(* ------------------------------------------------------------------ *)
(* Core matching properties                                            *)
(* ------------------------------------------------------------------ *)

let fuel = 60_000
let interp = Gen.interp

let machine_vs_matcher policy (p, t) =
  let a = Machine.run ~interp ~policy ~fuel p t in
  let b = Matcher.matches ~interp ~policy ~fuel p t in
  match (a, b) with
  | Outcome.Out_of_fuel, _ | _, Outcome.Out_of_fuel -> Discard
  | a, b ->
      if Outcome.equal a b then Pass
      else
        Fail
          (Printf.sprintf "machine: %s, matcher: %s" (Outcome.to_string a)
             (Outcome.to_string b))

let oracle_first_witness (p, t) =
  match Machine.run ~interp ~policy:Outcome.Policy.Faithful ~fuel p t with
  | Outcome.Matched (theta, phi) -> (
      let r = Enumerate.all ~interp ~fuel p t in
      match r.Enumerate.witnesses with
      | (theta', phi') :: _ ->
          if Subst.equal theta theta' && Fsubst.equal phi phi' then Pass
          else
            Fail
              (Printf.sprintf
                 "machine witness (%s, %s) is not the oracle's first (%s, %s)"
                 (Subst.to_string theta) (Fsubst.to_string phi)
                 (Subst.to_string theta') (Fsubst.to_string phi'))
      | [] ->
          if r.Enumerate.complete then
            Fail "machine matched but the complete oracle has no witness"
          else Discard)
  | Outcome.No_match ->
      let r = Enumerate.all ~interp ~fuel p t in
      if not r.Enumerate.complete then Discard
      else if r.Enumerate.witnesses = [] then Pass
      else Fail "machine reported no match but the oracle found a witness"
  | Outcome.Stuck | Outcome.Out_of_fuel -> Discard

let plan_first_witness (p, t) =
  match Skeleton.extract p with
  | None -> Discard
  | Some _ -> (
      let plan = Plan.compile [ ("P", p) ] in
      let expected =
        Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel p t
      in
      let got = List.assoc_opt "P" (Plan.match_node plan ~interp t) in
      match (expected, got) with
      | Outcome.Out_of_fuel, _ -> Discard
      | Outcome.Matched (theta, phi), Some (theta', phi') ->
          if Subst.equal theta theta' && Fsubst.equal phi phi' then Pass
          else Fail "plan witness differs from the matcher's first witness"
      | (Outcome.No_match | Outcome.Stuck), None -> Pass
      | Outcome.Matched _, None ->
          Fail "matcher matched but the plan found nothing"
      | (Outcome.No_match | Outcome.Stuck), Some _ ->
          Fail "plan matched but the matcher found nothing")

(* ------------------------------------------------------------------ *)
(* Engine differential properties                                      *)
(* ------------------------------------------------------------------ *)

(* Total order on attribute bindings. Typed on purpose: polymorphic
   [compare] over the pair happens to work while attr values are plain
   ints, but it is a fingerprint hazard — any future attr payload with
   functional or cyclic components would make it raise, and its ordering
   is not a stated part of the representation. The fingerprint must sort
   with a comparator whose order is defined by this module. *)
let compare_attr ((ka : string), (va : int)) (kb, vb) =
  match String.compare ka kb with 0 -> Int.compare va vb | c -> c

(* Structural fingerprint of the live graph, independent of node ids and
   of the global uid counter behind input symbols: uid suffixes are
   relabelled in order of first appearance in a DFS from the outputs, and
   shared subgraphs are emitted once then referenced by visit index (the
   fingerprint sees the DAG, not its exponential tree unfolding). Attrs
   are emitted in [compare_attr] order, so the fingerprint is invariant
   under attribute insertion order. *)
let fingerprint g =
  ignore (Graph.gc g);
  let uids = Hashtbl.create 32 in
  let canon_sym (s : Symbol.t) =
    match String.index_opt s '%' with
    | None -> s
    | Some i ->
        let k =
          match Hashtbl.find_opt uids s with
          | Some k -> k
          | None ->
              let k = Hashtbl.length uids in
              Hashtbl.add uids s k;
              k
        in
        Printf.sprintf "%s#%d" (String.sub s 0 i) k
  in
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 256 in
  let rec go (n : Graph.node) =
    match Hashtbl.find_opt seen n.Graph.id with
    | Some k -> Buffer.add_string buf (Printf.sprintf "@%d" k)
    | None ->
        Hashtbl.add seen n.Graph.id (Hashtbl.length seen);
        Buffer.add_string buf (canon_sym n.Graph.op);
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "{%s=%d}" k v))
          (List.sort compare_attr n.Graph.attrs);
        (match n.Graph.inputs with
        | [] -> ()
        | inputs ->
            Buffer.add_char buf '(';
            List.iteri
              (fun i u ->
                if i > 0 then Buffer.add_char buf ',';
                go u)
              inputs;
            Buffer.add_char buf ')')
  in
  List.iter
    (fun o ->
      go o;
      Buffer.add_char buf ';')
    (Graph.outputs g);
  Buffer.contents buf

let engine_names = [ (Pass.Naive, "naive"); (Pass.Index, "index"); (Pass.Plan, "plan") ]

let engines_agree recipe =
  (* Matching half: identical per-pattern match counts. *)
  let match_counts engine =
    let _env, g, prog = Gen.build recipe in
    let stats = Pass.match_only ~engine prog g in
    if stats.Pass.fuel_exhausted > 0 then None
    else
      Some
        (List.map
           (fun ps -> (ps.Pass.ps_name, ps.Pass.matches))
           stats.Pass.per_pattern)
  in
  let counts = List.map (fun (e, n) -> (n, match_counts e)) engine_names in
  if List.exists (fun (_, c) -> c = None) counts then Discard
  else
    let mismatch =
      match counts with
      | (_, ref_counts) :: rest ->
          List.find_opt (fun (_, c) -> c <> ref_counts) rest
      | [] -> None
    in
    match mismatch with
    | Some (name, _) ->
        Fail
          (Printf.sprintf "per-pattern match counts differ: naive vs %s" name)
    | None -> (
        (* Rewriting half: identical rewrite counts and isomorphic final
           graphs, which must also validate. *)
        let full engine =
          let _env, g, prog = Gen.build recipe in
          let stats = Pass.run ~engine prog g in
          if stats.Pass.fuel_exhausted > 0 then None
          else Some (stats.Pass.total_rewrites, fingerprint g, Graph.validate g)
        in
        let runs = List.map (fun (e, n) -> (n, full e)) engine_names in
        if List.exists (fun (_, r) -> r = None) runs then Discard
        else
          let get n = List.assoc n runs in
          match (get "naive", get "index", get "plan") with
          | Some (rw0, fp0, val0), Some (rw1, fp1, val1), Some (rw2, fp2, val2)
            -> (
              match
                List.find_opt
                  (fun (_, errs) -> errs <> [])
                  [ ("naive", val0); ("index", val1); ("plan", val2) ]
              with
              | Some (name, errs) ->
                  Fail
                    (Printf.sprintf "%s engine left an invalid graph: %s" name
                       (String.concat "; " errs))
              | None ->
                  if rw0 <> rw1 || rw0 <> rw2 then
                    Fail
                      (Printf.sprintf
                         "rewrite counts differ: naive %d, index %d, plan %d"
                         rw0 rw1 rw2)
                  else if fp0 <> fp1 then
                    Fail "final graphs differ: naive vs index"
                  else if fp0 <> fp2 then
                    Fail "final graphs differ: naive vs plan"
                  else Pass)
          | _ -> Discard)

(* The tentpole determinism claim, adversarially: for every engine and
   domain count, the sharded pass must be indistinguishable from the
   sequential one — same final fingerprint, same rewrite count, same
   provenance step sequence. Fuel exhaustion discards the case (the
   sequential scanner strikes at scan time, the arbiter at replay time,
   so a fuel-starved run may quarantine at different points). *)
let parallel_pass_agreement recipe =
  let provenance_digest (stats : Pass.stats) =
    List.map
      (fun (p : Pypm_obs.Obs.Provenance.step) ->
        ( p.Pypm_obs.Obs.Provenance.seq,
          p.Pypm_obs.Obs.Provenance.pattern,
          p.Pypm_obs.Obs.Provenance.rule,
          p.Pypm_obs.Obs.Provenance.matched_root,
          p.Pypm_obs.Obs.Provenance.replacement_root ))
      (Pass.provenance stats)
  in
  let full engine domains =
    let _env, g, prog = Gen.build recipe in
    let stats = Pass.run ~engine ~domains prog g in
    if stats.Pass.fuel_exhausted > 0 then None
    else
      Some
        (stats.Pass.total_rewrites, fingerprint g, provenance_digest stats)
  in
  let rec check_engines = function
    | [] -> Pass
    | (engine, ename) :: rest -> (
        match full engine 1 with
        | None -> Discard
        | Some ((rw1, fp1, _prov1) as seq) ->
            let rec check_domains = function
              | [] -> check_engines rest
              | k :: ks -> (
                  match full engine k with
                  | None -> Discard
                  | Some ((rwk, fpk, provk) as par) ->
                      if par = seq then check_domains ks
                      else if rwk <> rw1 then
                        Fail
                          (Printf.sprintf
                             "%s: rewrites differ at domains=%d: %d vs %d"
                             ename k rw1 rwk)
                      else if fpk <> fp1 then
                        Fail
                          (Printf.sprintf
                             "%s: final graphs differ at domains=%d" ename k)
                      else
                        Fail
                          (Printf.sprintf
                             "%s: provenance differs at domains=%d (%d steps)"
                             ename k (List.length provk)))
            in
            check_domains [ 2; 4 ])
  in
  check_engines engine_names

(* The egraph engine's contract: [~engine:Egraph] is the plan engine plus
   a cost-guided equality-saturation post-phase whose splices come only
   from the program's own rules (rewrite-reachable by construction) and
   commit only on strict whole-graph cost improvement. So on the same
   recipe it must leave a valid graph never costlier than the plan
   engine's result under the kernel cost model — and when the post-phase
   splices nothing, a graph isomorphic to the plan engine's. Both runs
   rebuild the recipe from scratch ([Gen.build] is deterministic), so the
   comparison is on identical inputs. *)
let egraph_pass_agreement recipe =
  let device = Cost.a6000 in
  let run engine =
    let _env, g, prog = Gen.build recipe in
    let stats = Pass.run ~engine prog g in
    if stats.Pass.fuel_exhausted > 0 then None else Some (g, stats)
  in
  match (run Pass.Plan, run Pass.Egraph) with
  | None, _ | _, None -> Discard
  | Some (gp, _), Some (ge, estats) -> (
      match Graph.validate ge with
      | _ :: _ as errs ->
          Fail
            ("egraph engine left an invalid graph: " ^ String.concat "; " errs)
      | [] ->
          let cp = Exec.graph_cost device gp
          and ce = Exec.graph_cost device ge in
          if ce > cp +. (1e-9 *. Float.max 1.0 cp) then
            Fail
              (Printf.sprintf
                 "egraph result costlier than plan: %.9fs vs %.9fs (ran as \
                  %s, stop %S, spliced %d)"
                 ce cp estats.Pass.engine_used estats.Pass.sat_stop
                 estats.Pass.sat_spliced)
          else if
            estats.Pass.sat_spliced = 0 && fingerprint ge <> fingerprint gp
          then Fail "post-phase spliced nothing yet the graphs differ"
          else Pass)

let graph_validate recipe =
  let _env, g, prog = Gen.build recipe in
  match Graph.validate g with
  | _ :: _ as errs ->
      Fail ("generated graph invalid: " ^ String.concat "; " errs)
  | [] -> (
      let stats = Pass.run ~engine:Pass.Plan prog g in
      match Graph.validate g with
      | [] -> if stats.Pass.fuel_exhausted > 0 then Discard else Pass
      | errs ->
          Fail ("graph invalid after rewriting: " ^ String.concat "; " errs))

(* ------------------------------------------------------------------ *)
(* Fault-injection properties                                          *)
(* ------------------------------------------------------------------ *)

(* Crash safety: under ANY seeded fault schedule — failed instantiates,
   raising guards, fuel cuts, forced cycle rejections, poisoned engine
   preparation — the pass neither raises nor leaves the graph invalid, on
   every engine. Rolled-back firings, quarantines, degradations and even a
   fatal [Engine_unavailable] are all acceptable outcomes; a torn graph or
   an escaped exception is not (the latter is caught by [protect]). *)
let crash_safety (r : Gen.graph_recipe) =
  let rate = 0.3 in
  let failure =
    List.fold_left
      (fun acc (engine, ename) ->
        match acc with
        | Some _ -> acc
        | None -> (
            let _env, g, prog = Gen.build r in
            let inject =
              Inject.seeded ~seed:((r.Gen.gr_seed * 7919) + 17) ~rate ()
            in
            let _stats = Pass.run ~engine ~inject ~quarantine_after:3 prog g in
            match Graph.validate g with
            | [] -> None
            | errs ->
                Some
                  (Printf.sprintf "%s engine left an invalid graph: %s" ename
                     (String.concat "; " errs))))
      None engine_names
  in
  match failure with Some msg -> Fail msg | None -> Pass

(* Rollback exactness: a schedule that fails EVERY instantiation must
   leave the graph byte-identical (by structural fingerprint) to its
   pre-pass state — every attempted firing was rolled back, nothing
   leaked, nothing rewired. *)
let rollback_exact (r : Gen.graph_recipe) =
  let _env, g, prog = Gen.build r in
  let before_fp = fingerprint g in
  let before_n = List.length (Graph.live_nodes g) in
  let inject =
    Inject.seeded ~seed:r.Gen.gr_seed ~rate:1.0
      ~points:[ Inject.Instantiate_fail ] ()
  in
  let stats = Pass.run ~engine:Pass.Naive ~inject prog g in
  if stats.Pass.total_rewrites <> 0 then
    Fail
      (Printf.sprintf
         "%d rewrite(s) fired although every instantiate was failed"
         stats.Pass.total_rewrites)
  else if not (String.equal (fingerprint g) before_fp) then
    Fail "rollbacks did not restore the original graph fingerprint"
  else
    let after_n = List.length (Graph.live_nodes g) in
    if after_n <> before_n then
      Fail
        (Printf.sprintf "live node count changed: %d before, %d after"
           before_n after_n)
    else Pass

(* ------------------------------------------------------------------ *)
(* Codec properties                                                    *)
(* ------------------------------------------------------------------ *)

let codec_roundtrip prog =
  match (try Ok (Codec.encode prog) with Codec.Encode_error m -> Error m) with
  | Error m -> Fail ("encode rejected a generated program: " ^ m)
  | Ok bytes1 -> (
      match Codec.decode bytes1 with
      | Error m -> Fail ("decode failed on encoder output: " ^ m)
      | Ok prog2 ->
          if Program.pattern_names prog2 <> Program.pattern_names prog then
            Fail "decoded program has different pattern names"
          else
            let bytes2 = Codec.encode prog2 in
            if String.equal bytes1 bytes2 then Pass
            else
              Fail
                (Printf.sprintf
                   "re-encoding is not byte-identical (%d vs %d bytes)"
                   (String.length bytes1) (String.length bytes2)))

let wire_int r =
  Srng.freq r
    [
      (3, Srng.any_int);
      ( 3,
        fun r ->
          Srng.pick r
            [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int; 0x7FFFFFFF;
              -0x80000000; max_int - 1; min_int + 1 ] );
      (2, fun r -> Srng.int r 1024 - 512);
    ]
  [@@ocamlformat "disable"]

let shrink_int n = if n = 0 then [] else [ 0; n / 2; n - (n / abs n) ]

let codec_wire n =
  let buf = Buffer.create 16 in
  Codec.Wire.put_signed buf n;
  let c = Codec.Wire.cursor (Buffer.contents buf) in
  let n' = Codec.Wire.get_signed c in
  if n' <> n then
    Fail (Printf.sprintf "zigzag roundtrip: put %d, got %d" n n')
  else if Codec.Wire.offset c <> Buffer.length buf then
    Fail "zigzag decode did not consume the whole encoding"
  else if n < 0 then Pass
  else
    let buf = Buffer.create 16 in
    Codec.Wire.put_varint buf n;
    let c = Codec.Wire.cursor (Buffer.contents buf) in
    let n' = Codec.Wire.get_varint c in
    if n' <> n then
      Fail (Printf.sprintf "varint roundtrip: put %d, got %d" n n')
    else Pass

(* Graph codec: a generated well-typed graph survives encode / decode
   with an identical structural fingerprint (node ids and symbol uids are
   not preserved — isomorphism is the contract), and the decoder is total
   on mangled buffers: truncations and bit flips yield [Error], never an
   exception. The decode side mirrors the server: a fresh [Std_ops]
   environment extended by the decls travelling in the wire decl table. *)
let codec_graph_roundtrip (r : Gen.graph_recipe) =
  let _env, g, _prog = Gen.build r in
  let fp = fingerprint g in
  let bytes = Codec.Graphs.encode g in
  let decode bytes =
    let fresh = Std_ops.make () in
    Codec.Graphs.decode_into ~sg:fresh.Std_ops.sg ~infer:fresh.Std_ops.infer
      bytes
  in
  match decode bytes with
  | Error m -> Fail ("decode failed on encoder output: " ^ m)
  | Ok g2 -> (
      let fp2 = fingerprint g2 in
      if not (String.equal fp2 fp) then
        Fail
          (Printf.sprintf
             "decoded graph is not isomorphic to the original\n\
              before: %s\nafter:  %s" fp fp2)
      else if not (String.equal (Codec.Graphs.encode g2) bytes) then
        Fail "re-encoding the decoded graph is not byte-identical"
      else
        (* mangled buffers: decode must answer [Error] without raising
           (an escaped exception is caught by [protect] and fails the
           property with its backtrace) *)
        let n = String.length bytes in
        let rng = Srng.create ~seed:((r.Gen.gr_seed * 31) + 7) in
        let truncations =
          List.filter (fun k -> k < n) [ 0; 1; n / 4; n / 2; n - 1 ]
        in
        let mangled =
          List.map (fun k -> String.sub bytes 0 k) truncations
          @ List.init 8 (fun _ ->
                let i = Srng.int rng n in
                let bit = Srng.int rng 8 in
                let b = Bytes.of_string bytes in
                Bytes.set b i
                  (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
                Bytes.to_string b)
        in
        match
          List.find_map
            (fun bad ->
              if String.equal bad bytes then None
              else match decode bad with Ok _ -> Some bad | Error _ -> None)
            mangled
        with
        | Some bad ->
            Fail
              (Printf.sprintf
                 "a mangled buffer (%d bytes, original %d) decoded \
                  successfully" (String.length bad) n)
        | None -> Pass)

(* ------------------------------------------------------------------ *)
(* Frontend properties                                                 *)
(* ------------------------------------------------------------------ *)

let entries_equivalent (e1 : Program.entry) (e2 : Program.entry) =
  if e1.Program.pname <> e2.Program.pname then
    Some (Printf.sprintf "pattern names differ: %s vs %s" e1.Program.pname e2.Program.pname)
  else if not (Alpha.equal e1.Program.pattern e2.Program.pattern) then
    Some (Printf.sprintf "patterns for %s are not alpha-equivalent" e1.Program.pname)
  else if List.length e1.Program.rules <> List.length e2.Program.rules then
    Some (Printf.sprintf "rule counts for %s differ" e1.Program.pname)
  else
    List.fold_left2
      (fun acc (r1 : Rule.t) (r2 : Rule.t) ->
        match acc with
        | Some _ -> acc
        | None ->
            if r1.Rule.rule_name <> r2.Rule.rule_name then
              Some "rule names differ"
            else if not (Guard.equal r1.Rule.guard r2.Rule.guard) then
              Some (Printf.sprintf "guards of rule %s differ" r1.Rule.rule_name)
            else if r1.Rule.rhs <> r2.Rule.rhs then
              Some (Printf.sprintf "templates of rule %s differ" r1.Rule.rule_name)
            else None)
      None e1.Program.rules e2.Program.rules
  [@@ocamlformat "disable"]

let surface_roundtrip ast =
  let src = Format.asprintf "%a" Ast.pp_program ast in
  match Surface.parse src with
  | Error e ->
      Fail
        (Format.asprintf "printed program does not re-parse: %a"
           Surface.pp_error e)
  | Ok ast2 -> (
      let src2 = Format.asprintf "%a" Ast.pp_program ast2 in
      if not (String.equal src src2) then
        Fail "printing the re-parsed AST gives different text"
      else
        let elab a = Elaborate.program ~sg:(Signature.create ()) a in
        match (elab ast, elab ast2) with
        | Error _, Error _ -> Discard
        | Ok _, Error es ->
            Fail
              (Format.asprintf
                 "original elaborates but the re-parsed AST does not: %a"
                 (Format.pp_print_list Elaborate.pp_error)
                 es)
        | Error _, Ok _ ->
            Fail "re-parsed AST elaborates but the original does not"
        | Ok p1, Ok p2 ->
            if
              List.length p1.Program.entries <> List.length p2.Program.entries
            then Fail "entry counts differ after the round trip"
            else (
              match
                List.fold_left2
                  (fun acc e1 e2 ->
                    match acc with
                    | Some _ -> acc
                    | None -> entries_equivalent e1 e2)
                  None p1.Program.entries p2.Program.entries
              with
              | Some msg -> Fail msg
              | None -> Pass))

let lex_parse_total src =
  match (try Ok (Surface.parse src) with e -> Error (Printexc.to_string e)) with
  | Ok (Ok _) | Ok (Error _) -> Pass
  | Error msg -> Fail ("Surface.parse raised: " ^ msg)

let lex_string_back lit =
  match
    (try Ok (Lexer.tokenize lit) with Lexer.Lex_error (_, m) -> Error m)
  with
  | Error m -> Error ("literal does not lex: " ^ m)
  | Ok toks -> (
      match Array.to_list toks with
      | [ { Lexer.tok = Lexer.STRING s; _ }; { Lexer.tok = Lexer.EOF; _ } ] ->
          Ok s
      | _ -> Error "literal lexes to an unexpected token stream")

let string_roundtrip s =
  match lex_string_back (Lexer.quote_string s) with
  | Error m -> Fail ("quote_string: " ^ m)
  | Ok s' when not (String.equal s s') ->
      Fail (Printf.sprintf "quote_string roundtrip: %S -> %S" s s')
  | Ok _ -> (
      match lex_string_back (Format.asprintf "%a" Ast.pp_string_lit s) with
      | Error m -> Fail ("pp_string_lit: " ^ m)
      | Ok s' when not (String.equal s s') ->
          Fail (Printf.sprintf "pp_string_lit roundtrip: %S -> %S" s s')
      | Ok _ -> Pass)

(* ------------------------------------------------------------------ *)
(* The property table                                                  *)
(* ------------------------------------------------------------------ *)

let pair_case check =
  { gen = Gen.pair; shrink = Shrink.pair; check; show = show_pair }

let recipe_case check =
  {
    gen = Gen.graph_recipe;
    shrink = Shrink.graph_recipe;
    check;
    show = show_recipe;
  }

(* ------------------------------------------------------------------ *)
(* Static-analysis properties                                          *)
(* ------------------------------------------------------------------ *)

(* lint-soundness: every verdict {!Pypm_analysis.Analysis} commits to is
   checked against a dynamic authority on the same program:

   - [Dead_pattern] claims the pattern matches nothing: the backtracking
     matcher must fail on a stream of random probe terms, and the
     (complete) enumeration oracle must find no witness on any of them;
   - every shadowing / subsumption / overlap witness term must actually be
     matched by each pattern the diagnostic names;
   - [Analysis.subsumes p q = `Yes] claims p matches everything q does: on
     the probe stream, a q-match implies a p-match.

   The probe stream is derived deterministically from the program text, so
   a failure replays from the case seed alone. *)
let lint_soundness prog =
  let probe_rng = Srng.create ~seed:(Hashtbl.hash (show_program prog)) in
  let probes = List.init 40 (fun _ -> Gen.term probe_rng) in
  let matched p t = Outcome.is_matched (Matcher.matches ~interp ~fuel p t) in
  match Analysis.lint ~interp prog with
  | exception e -> Fail ("lint raised: " ^ Printexc.to_string e)
  | diags -> (
      let entry_pattern name =
        match Program.entry prog name with
        | Some e -> e.Program.pattern
        | None -> failwith ("diagnostic names unknown pattern " ^ name)
      in
      let check_diag (d : Analysis.diagnostic) =
        match d.Analysis.kind with
        | Analysis.Dead_pattern ->
            (* claimed: no term matches, under any alternate *)
            List.concat_map
              (fun name ->
                let p = entry_pattern name in
                List.filter_map
                  (fun t ->
                    if matched p t then
                      Some
                        (Printf.sprintf "%s flagged dead but matches %s" name
                           (Term.to_string t))
                    else
                      let r = Enumerate.all ~interp ~fuel p t in
                      if r.Enumerate.complete && r.Enumerate.witnesses <> []
                      then
                        Some
                          (Printf.sprintf
                             "%s flagged dead but the oracle matches %s" name
                             (Term.to_string t))
                      else None)
                  probes)
              d.Analysis.patterns
        | Analysis.Shadowed_branch | Analysis.Subsumed_pattern
        | Analysis.Overlapping_patterns -> (
            match d.Analysis.witness with
            | None -> []
            | Some w ->
                List.filter_map
                  (fun name ->
                    if matched (entry_pattern name) w then None
                    else
                      Some
                        (Printf.sprintf
                           "%s witness %s does not match pattern %s"
                           (Analysis.kind_name d.Analysis.kind)
                           (Term.to_string w) name))
                  d.Analysis.patterns)
        (* [Unsat_guard] may sit inside one alternate arm or a [Mu] body;
           it makes that guard dead, not the whole pattern — nothing to
           cross-check dynamically. [Dead_branch] speaks about one arm,
           which the matcher cannot be asked about in isolation. *)
        | Analysis.Dead_branch | Analysis.Unsat_guard
        | Analysis.Vacuous_guard ->
            []
      in
      let witness_failures = List.concat_map check_diag diags in
      (* subsumption spot-check over every ordered pattern pair *)
      let pats =
        List.map (fun (e : Program.entry) -> (e.pname, e.pattern))
          prog.Program.entries
      in
      let subsumption_failures =
        List.concat_map
          (fun (ni, pi) ->
            List.concat_map
              (fun (nj, pj) ->
                if ni == nj || Analysis.subsumes pi pj <> `Yes then []
                else
                  List.filter_map
                    (fun t ->
                      if matched pj t && not (matched pi t) then
                        Some
                          (Printf.sprintf
                             "%s subsumes %s, but %s matches only the \
                              subsumed pattern"
                             ni nj (Term.to_string t))
                      else None)
                    probes)
              pats)
          pats
      in
      match witness_failures @ subsumption_failures with
      | [] -> Pass
      | msgs -> Fail (String.concat "; " msgs))

let props : prop list =
  [
    Prop
      {
        name = "machine-matcher-faithful";
        doc = "abstract machine = backtracking matcher (faithful policy)";
        cost = 1;
        case = pair_case (machine_vs_matcher Outcome.Policy.Faithful);
      };
    Prop
      {
        name = "machine-matcher-backtrack";
        doc = "abstract machine = backtracking matcher (backtrack policy)";
        cost = 1;
        case = pair_case (machine_vs_matcher Outcome.Policy.Backtrack);
      };
    Prop
      {
        name = "oracle-first-witness";
        doc = "machine success/failure agrees with the enumeration oracle";
        cost = 2;
        case = pair_case oracle_first_witness;
      };
    Prop
      {
        name = "plan-first-witness";
        doc = "shared matching plan = matcher on the compilable fragment";
        cost = 1;
        case = pair_case plan_first_witness;
      };
    Prop
      {
        name = "engines-agree";
        doc = "naive/index/plan engines: same matches, rewrites and graphs";
        cost = 100;
        case = recipe_case engines_agree;
      };
    Prop
      {
        name = "parallel-pass-agreement";
        doc = "sharded pass (domains 2/4) = sequential pass: same \
               fingerprint, rewrites and provenance, every engine";
        cost = 150;
        case = recipe_case parallel_pass_agreement;
      };
    Prop
      {
        name = "egraph-pass-agreement";
        doc = "egraph engine: valid graph, never costlier than plan's, \
               isomorphic to it when the post-phase splices nothing";
        cost = 120;
        case = recipe_case egraph_pass_agreement;
      };
    Prop
      {
        name = "graph-validate";
        doc = "rewritten graphs stay structurally valid";
        cost = 50;
        case = recipe_case graph_validate;
      };
    Prop
      {
        name = "crash_safety";
        doc = "any fault schedule: no exception, graph stays valid";
        cost = 50;
        case = recipe_case crash_safety;
      };
    Prop
      {
        name = "rollback_exact";
        doc = "failing every instantiate leaves the graph fingerprint intact";
        cost = 30;
        case = recipe_case rollback_exact;
      };
    Prop
      {
        name = "lint-soundness";
        doc = "static lint verdicts hold dynamically: dead patterns never \
               match (matcher + oracle), witnesses re-match, subsumption \
               is extensional on probe terms";
        cost = 8;
        case =
          {
            gen = Gen.core_program;
            shrink = Shrink.core_program;
            check = lint_soundness;
            show = show_program;
          };
      };
    Prop
      {
        name = "codec-roundtrip";
        doc = "encode / decode / re-encode is byte-identical";
        cost = 2;
        case =
          {
            gen = Gen.core_program;
            shrink = Shrink.core_program;
            check = codec_roundtrip;
            show = show_program;
          };
      };
    Prop
      {
        name = "codec-wire";
        doc = "varint / zigzag primitives round-trip every int";
        cost = 1;
        case =
          {
            gen = wire_int;
            shrink = shrink_int;
            check = codec_wire;
            show = string_of_int;
          };
      };
    Prop
      {
        name = "codec-graph-roundtrip";
        doc = "graph encode / decode preserves the structural fingerprint; \
               mangled buffers decode to errors, never exceptions";
        cost = 40;
        case = recipe_case codec_graph_roundtrip;
      };
    Prop
      {
        name = "surface-roundtrip";
        doc = "print / parse / elaborate returns alpha-equivalent programs";
        cost = 5;
        case =
          {
            gen = Gen.ast_program;
            shrink = Shrink.ast_program;
            check = surface_roundtrip;
            show = show_ast;
          };
      };
    Prop
      {
        name = "lex-parse-total";
        doc = "hostile sources produce errors, never exceptions";
        cost = 2;
        case =
          {
            gen = Gen.garbage_source;
            shrink = Shrink.string_;
            check = lex_parse_total;
            show = show_string;
          };
      };
    Prop
      {
        name = "string-roundtrip";
        doc = "string-literal quoting and lexing are inverse";
        cost = 1;
        case =
          {
            gen = Gen.string_;
            shrink = Shrink.string_;
            check = string_roundtrip;
            show = show_string;
          };
      };
  ]

let all_prop_names = List.map (fun (Prop p) -> p.name) props

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run_case (type a) name ~case_seed (case : a case) =
  let rng = Srng.create ~seed:case_seed in
  match (try Ok (case.gen rng) with e -> Error (Printexc.to_string e)) with
  | Error msg ->
      `Fail
        {
          f_prop = name;
          f_case_seed = case_seed;
          f_message = "generator raised: " ^ msg;
          f_original = "<generator failure>";
          f_minimized = "<generator failure>";
          f_shrink_steps = 0;
        }
  | Ok x -> (
      match protect case.check x with
      | Pass -> `Pass
      | Discard -> `Discard
      | Fail msg ->
          let y, msg', steps = minimize case x msg in
          `Fail
            {
              f_prop = name;
              f_case_seed = case_seed;
              f_message = msg';
              f_original = case.show x;
              f_minimized = case.show y;
              f_shrink_steps = steps;
            })

let run_prop (Prop p) ~seed ~work =
  let cases = max 1 (work / p.cost) in
  let passed = ref 0 and discarded = ref 0 and executed = ref 0 in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < cases do
    incr executed;
    (match run_case p.name ~case_seed:(seed + !i) p.case with
    | `Pass -> incr passed
    | `Discard -> incr discarded
    | `Fail f -> failure := Some f);
    incr i
  done;
  {
    p_name = p.name;
    p_cases = !executed;
    p_passed = !passed;
    p_discarded = !discarded;
    p_failure = !failure;
  }

let select_props names =
  match names with
  | [] -> props
  | names ->
      List.map
        (fun n ->
          match List.find_opt (fun (Prop p) -> String.equal p.name n) props with
          | Some p -> p
          | None ->
              invalid_arg
                (Printf.sprintf "Fuzz.run: unknown property %S (known: %s)" n
                   (String.concat ", " all_prop_names)))
        names

let run ?(props = []) ~seed ~budget () =
  let selected = select_props props in
  let work = max 1 (budget / max 1 (List.length selected)) in
  {
    r_seed = seed;
    r_budget = budget;
    r_props = List.map (fun p -> run_prop p ~seed ~work) selected;
  }

let ok report = List.for_all (fun p -> p.p_failure = None) report.r_props

let pp_report ppf report =
  Format.fprintf ppf "fuzz: seed %d, budget %d@." report.r_seed
    report.r_budget;
  List.iter
    (fun p ->
      match p.p_failure with
      | None ->
          Format.fprintf ppf "  PASS %-26s %d cases (%d passed, %d discarded)@."
            p.p_name p.p_cases p.p_passed p.p_discarded
      | Some f ->
          Format.fprintf ppf "  FAIL %-26s after %d cases@." p.p_name p.p_cases;
          Format.fprintf ppf "       %s@." f.f_message;
          Format.fprintf ppf "       counterexample (as generated):@.";
          Format.fprintf ppf "%s@."
            (String.concat "\n"
               (List.map (fun l -> "         " ^ l)
                  (String.split_on_char '\n' f.f_original)));
          if f.f_shrink_steps > 0 then (
            Format.fprintf ppf "       minimized (%d shrink steps):@."
              f.f_shrink_steps;
            Format.fprintf ppf "%s@."
              (String.concat "\n"
                 (List.map (fun l -> "         " ^ l)
                    (String.split_on_char '\n' f.f_minimized))));
          Format.fprintf ppf
            "       replay: pypmc fuzz --prop %s --seed %d --budget 1@."
            f.f_prop f.f_case_seed)
    report.r_props;
  let failed =
    List.length (List.filter (fun p -> p.p_failure <> None) report.r_props)
  in
  if failed = 0 then
    Format.fprintf ppf "all %d properties passed@."
      (List.length report.r_props)
  else Format.fprintf ppf "%d properties FAILED@." failed
