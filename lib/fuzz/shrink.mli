(** Structural shrinkers for counterexample minimization.

    Each shrinker maps a failing value to a list of strictly smaller
    candidates, tried in order by the greedy delta-debugging loop in
    {!Fuzz}. Producing the empty list ends minimization for that value.

    Graph recipes shrink only their size knobs, never [gr_seed], so every
    candidate stays replayable from the reported recipe. *)

open Pypm_term
open Pypm_pattern

val term : Term.t -> Term.t list
val pattern : Pattern.t -> Pattern.t list
val pair : Pattern.t * Term.t -> (Pattern.t * Term.t) list
val string_ : string -> string list
val core_program : Pypm_engine.Program.t -> Pypm_engine.Program.t list
val ast_program : Pypm_dsl.Ast.program -> Pypm_dsl.Ast.program list
val graph_recipe : Gen.graph_recipe -> Gen.graph_recipe list
