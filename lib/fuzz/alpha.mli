(** Alpha-equivalence of CorePyPM patterns.

    Elaboration mints globally fresh names for [var()] locals, inlined-call
    binders and call-argument variables, so elaborating the same frontend
    definition twice yields patterns that differ only in bound names. The
    surface round-trip property (print, re-parse, re-elaborate, compare)
    therefore needs equality up to consistent renaming of [Exists]- /
    [Exists_f]- / [Mu]-bound variables; free variables (the pattern's
    parameters) must still match exactly. *)

open Pypm_pattern

(** [equal p q] holds when [p] and [q] are equal modulo bound-variable
    names. Guards are compared with bound occurrences mapped through the
    binder correspondence. *)
val equal : Pattern.t -> Pattern.t -> bool
