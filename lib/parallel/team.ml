(* A persistent fork/join team. Tasks for one round are installed under
   the mutex as pre-packed [unit -> unit] closures (the polymorphism of
   [run] lives in the closures' environment, not in the channel), the
   generation counter is bumped, and every worker runs exactly the task
   at its own index — shard [i] is pinned to domain [i] for the team's
   whole lifetime, which lets callers keep per-shard state (compiled
   plans, domain-local rings) where the shard runs. The final mutex
   acquisition of the join publishes every task's writes to the caller. *)

type t = {
  m : Mutex.t;
  work_cv : Condition.t; (* workers: a new generation is ready *)
  done_cv : Condition.t; (* caller: a worker finished its task *)
  mutable gen : int;
  mutable tasks : (unit -> unit) array; (* length shards - 1, worker i runs slot i *)
  mutable completed : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  n_shards : int;
}

let shards t = t.n_shards

let worker t i =
  let rec loop last_gen =
    let next =
      Mutex.protect t.m (fun () ->
          while t.gen = last_gen && not t.stopping do
            Condition.wait t.work_cv t.m
          done;
          if t.stopping then None else Some (t.gen, t.tasks.(i)))
    in
    match next with
    | None -> ()
    | Some (gen, task) ->
        (* Exceptions were already packed into the closure by [run]; a
           raise escaping here would be a bug in this module, and must
           not deadlock the caller's join. *)
        (try task () with _ -> ());
        Mutex.protect t.m (fun () ->
            t.completed <- t.completed + 1;
            Condition.signal t.done_cv);
        loop gen
  in
  loop 0

let create ~shards =
  if shards <= 0 then invalid_arg "Team.create: shards must be > 0";
  let t =
    {
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      gen = 0;
      tasks = [||];
      completed = 0;
      stopping = false;
      domains = [];
      n_shards = shards;
    }
  in
  t.domains <-
    List.init (shards - 1) (fun i -> Domain.spawn (fun () -> worker t i));
  t

let run (type a) t (f : int -> a) : a array =
  let n = t.n_shards in
  if n = 1 then [| f 0 |]
  else begin
    let results : a option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let pack i () =
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e
    in
    Mutex.protect t.m (fun () ->
        if t.stopping then invalid_arg "Team.run: team is shut down";
        t.tasks <- Array.init (n - 1) (fun i -> pack (i + 1));
        t.completed <- 0;
        t.gen <- t.gen + 1;
        Condition.broadcast t.work_cv);
    pack 0 ();
    Mutex.protect t.m (fun () ->
        while t.completed < n - 1 do
          Condition.wait t.done_cv t.m
        done);
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* no result and no exception is impossible *))
      results
  end

let shutdown t =
  let joinable =
    Mutex.protect t.m (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          Condition.broadcast t.work_cv;
          t.domains
        end)
  in
  List.iter Domain.join joinable;
  t.domains <- []
