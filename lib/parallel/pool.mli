(** A fixed pool of worker domains behind a bounded job queue.

    Submission is non-blocking admission control: a queue at its bound
    refuses the job ([`Overloaded]) instead of queueing unbounded work —
    the server surfaces that to the client as an explicit overload
    response rather than silently growing latency. *)

type 'job t

(** [create ~workers ~queue_bound setup] spawns [workers] domains. Each
    domain calls [setup wid] {e on itself} to build its job handler, so
    per-worker state (the prepared engine, domain-local observability)
    is created where the jobs will run. A handler exception is contained
    by the pool (the worker survives); handlers should report their own
    errors. [teardown wid] (default: nothing) runs on the worker domain
    after its loop drains at {!shutdown} — the place to release
    worker-held resources such as a cached {!Team}; its exceptions are
    swallowed. Raises [Invalid_argument] on non-positive sizes. *)
val create :
  ?teardown:(int -> unit) ->
  workers:int ->
  queue_bound:int ->
  (int -> 'job -> unit) ->
  'job t

(** [submit t job] enqueues and wakes a worker, or refuses when the
    queue is at its bound (or the pool is shutting down). *)
val submit : 'job t -> 'job -> [ `Accepted | `Overloaded ]

val queue_length : 'job t -> int

(** Drain the queue, stop the workers, join their domains. Idempotent
    in effect; jobs already queued are still processed. *)
val shutdown : 'job t -> unit
