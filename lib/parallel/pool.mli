(** A supervised pool of worker domains behind a bounded job queue.

    Submission is non-blocking admission control: a queue at its bound
    refuses the job ([`Overloaded]) instead of queueing unbounded work —
    the server surfaces that to the client as an explicit overload
    response rather than silently growing latency.

    Workers are supervised. An exception escaping a job handler kills
    that worker domain (its [teardown] still runs); the supervisor joins
    the dead domain and spawns a replacement — with a fresh [setup], so
    poisoned per-worker state is rebuilt — under a restart budget with
    exponential backoff. The job the worker died on is retried once; a
    job that kills two workers is a {e poison pill}: it is handed to
    [on_crash] (the place to answer the client with a structured
    [Worker_crashed] error) instead of retried forever. Every restart
    emits an {!Pypm_obs.Obs.kind.Worker_restarted} event. *)

type 'job t

(** [create ~workers ~queue_bound setup] spawns [workers] domains. Each
    domain calls [setup wid] {e on itself} to build its job handler, so
    per-worker state (the prepared engine, domain-local observability)
    is created where the jobs will run — and rebuilt from scratch when a
    crashed worker is restarted. [teardown wid] (default: nothing) runs
    on the worker domain after its loop ends, at {!shutdown} or on a
    crash; its exceptions are swallowed.

    A handler exception is a {e crash}: the worker dies and is restarted
    (budgeted by [max_restarts], pool-lifetime, default 10000; delayed by
    [backoff_s k] where [k] counts that slot's crashes, default
    [min 0.05 (0.002 * 2^k)] seconds). [on_crash job exn] (default:
    drop) is called for a poison-pill job — one that crashed two
    workers — and for jobs stranded in the queue when the last worker
    dies with no budget left. Handlers that want to survive an error
    must catch it themselves and report a structured outcome; what
    escapes is treated as state-corrupting.

    Raises [Invalid_argument] on non-positive sizes or a negative
    restart budget. *)
val create :
  ?teardown:(int -> unit) ->
  ?on_crash:('job -> exn -> unit) ->
  ?max_restarts:int ->
  ?backoff_s:(int -> float) ->
  workers:int ->
  queue_bound:int ->
  (int -> 'job -> unit) ->
  'job t

(** [submit t job] enqueues and wakes a worker, or refuses when the
    queue is at its bound, the pool is shutting down, or every worker is
    dead with no restart budget left (accepted work could never run). *)
val submit : 'job t -> 'job -> [ `Accepted | `Overloaded ]

val queue_length : 'job t -> int

(** Workers currently able to take jobs (spawned minus crashed-and-not-
    restarted). *)
val workers_alive : 'job t -> int

(** Pool-lifetime worker restarts performed by the supervisor. *)
val restarts : 'job t -> int

(** Drain the queue, stop the workers and the supervisor, join their
    domains. Idempotent in effect; jobs already queued are still
    processed by the surviving workers. *)
val shutdown : 'job t -> unit
