(* A bounded multi-producer multi-consumer job queue feeding a fixed set
   of worker domains. Submission never blocks: past the bound the job is
   refused ([`Overloaded]) and the caller sheds it — admission control
   belongs to the caller, latency to the queue. *)

type 'job t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'job Queue.t;
  bound : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let worker_loop t handle =
  let rec next () =
    let job =
      Mutex.protect t.mutex (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.nonempty t.mutex
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match job with
    | None -> () (* stopping and drained *)
    | Some job ->
        (* A handler that escapes with an exception must not take the
           worker down — the pool would silently lose capacity. Handlers
           do their own error reporting; this is the backstop. *)
        (try handle job with _ -> ());
        next ()
  in
  next ()

let create ?(teardown = fun _ -> ()) ~workers ~queue_bound setup =
  if workers <= 0 then invalid_arg "Pool.create: workers must be > 0";
  if queue_bound <= 0 then invalid_arg "Pool.create: queue_bound must be > 0";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      bound = queue_bound;
      stopping = false;
      domains = [];
    }
  in
  t.domains <-
    List.init workers (fun wid ->
        Domain.spawn (fun () ->
            (* [setup] runs on the worker domain so domain-local state
               (obs rings, matcher counters) and the worker's engine
               context live where the jobs run; [teardown] runs on the
               same domain after the loop drains, so worker-held
               resources (a cached {!Team}) are released at shutdown *)
            let handle = setup wid in
            Fun.protect
              ~finally:(fun () -> try teardown wid with _ -> ())
              (fun () -> worker_loop t handle)));
  t

let submit t job =
  Mutex.protect t.mutex (fun () ->
      if t.stopping then `Overloaded
      else if Queue.length t.queue >= t.bound then `Overloaded
      else begin
        Queue.push job t.queue;
        Condition.signal t.nonempty;
        `Accepted
      end)

let queue_length t = Mutex.protect t.mutex (fun () -> Queue.length t.queue)

let shutdown t =
  Mutex.protect t.mutex (fun () ->
      t.stopping <- true;
      Condition.broadcast t.nonempty);
  List.iter Domain.join t.domains;
  t.domains <- []
