(* A bounded multi-producer multi-consumer job queue feeding a fixed set
   of worker domains, under a supervisor. Submission never blocks: past
   the bound the job is refused ([`Overloaded]) and the caller sheds it —
   admission control belongs to the caller, latency to the queue.

   Workers are supervised: an exception escaping a job handler is a
   worker {e crash}. The crashed domain ends (running its teardown), the
   supervisor joins it and spawns a replacement — with a fresh [setup],
   so whatever state the crash poisoned is rebuilt — under a restart
   budget and exponential backoff. The job that was running is retried
   once on another worker; a job that kills two workers is a poison pill
   and is handed to [on_crash] instead of retried forever. *)

module Obs = Pypm_obs.Obs

(* A queued job plus how many workers it has killed. *)
type 'job entry = { job : 'job; mutable crashes : int }

(* Per-worker slot. [domain] and [crash_count] are touched only by
   [create] and the supervisor domain — never by workers or callers. *)
type slot = {
  mutable domain : unit Domain.t option;
  mutable crash_count : int;  (* crashes of this slot; drives backoff *)
}

type 'job t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  sup_wake : Condition.t;
  queue : 'job entry Queue.t;
  bound : int;
  mutable stopping : bool;
  setup : int -> 'job -> unit;
  teardown : int -> unit;
  on_crash : 'job -> exn -> unit;
  max_restarts : int;
  backoff_s : int -> float;
  mutable restart_count : int;  (* pool-lifetime worker restarts *)
  mutable alive : int;  (* workers currently able to take jobs *)
  mutable reports : (int * 'job entry option * exn) list;
      (* pending crash reports: worker id, the job it died on ([None] for
         a crash in [setup] itself), and the escaping exception *)
  slots : slot array;
  mutable supervisor : unit Domain.t option;
}

let report_crash t wid entry exn =
  Mutex.protect t.mutex (fun () ->
      t.alive <- t.alive - 1;
      t.reports <- (wid, entry, exn) :: t.reports;
      Condition.signal t.sup_wake)

let worker_loop t wid handle =
  let rec next () =
    let job =
      Mutex.protect t.mutex (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.nonempty t.mutex
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match job with
    | None -> () (* stopping and drained *)
    | Some entry -> (
        (* An exception escaping the handler is a crash, not a blip: the
           handler layer (the server's per-job catch-all) already turned
           every containable error into a structured response, so what
           escapes here is the uncontainable kind — report it and let
           this domain die so the supervisor can rebuild its state. *)
        match handle entry.job with
        | () -> next ()
        | exception exn -> report_crash t wid (Some entry) exn)
  in
  next ()

let spawn_worker t wid =
  Domain.spawn (fun () ->
      (* [setup] runs on the worker domain so domain-local state (obs
         rings, matcher counters) and the worker's engine context live
         where the jobs run; [teardown] runs on the same domain after the
         loop ends — normally or by crash — so worker-held resources (a
         cached {!Team}) are always released. *)
      match t.setup wid with
      | handle ->
          Fun.protect
            ~finally:(fun () -> try t.teardown wid with _ -> ())
            (fun () -> worker_loop t wid handle)
      | exception exn -> report_crash t wid None exn)

(* One crash: join the dead domain (so its teardown has finished before
   any replacement touches shared per-slot state), decide the job's
   fate, then restart the slot if the budget allows. Runs on the
   supervisor domain. *)
let handle_crash t wid entry exn =
  let slot = t.slots.(wid) in
  (match slot.domain with
  | Some d -> ( try Domain.join d with _ -> ())
  | None -> ());
  slot.domain <- None;
  slot.crash_count <- slot.crash_count + 1;
  (match entry with
  | Some e ->
      e.crashes <- e.crashes + 1;
      if e.crashes >= 2 then ((* poison pill: answer, don't retry *)
        try t.on_crash e.job exn with _ -> ())
      else
        Mutex.protect t.mutex (fun () ->
            (* retry once on another worker; the entry was already
               admitted, so it bypasses the bound *)
            Queue.push e t.queue;
            Condition.signal t.nonempty)
  | None -> ());
  let restart =
    Mutex.protect t.mutex (fun () ->
        if t.stopping || t.restart_count >= t.max_restarts then false
        else begin
          t.restart_count <- t.restart_count + 1;
          t.alive <- t.alive + 1;
          true
        end)
  in
  if restart then begin
    let delay = t.backoff_s (slot.crash_count - 1) in
    if delay > 0. then Unix.sleepf delay;
    Obs.emit (Obs.Worker_restarted { worker = wid; restarts = t.restart_count });
    slot.domain <- Some (spawn_worker t wid)
  end
  else
    (* The slot stays dead. If that was the last worker, jobs already
       queued would wait forever — fail them closed instead. *)
    let orphans =
      Mutex.protect t.mutex (fun () ->
          if t.alive > 0 then []
          else begin
            let l = Queue.fold (fun acc e -> e :: acc) [] t.queue in
            Queue.clear t.queue;
            List.rev l
          end)
    in
    List.iter (fun e -> try t.on_crash e.job exn with _ -> ()) orphans

let supervisor_loop t =
  let rec loop () =
    let action =
      Mutex.protect t.mutex (fun () ->
          while t.reports = [] && not t.stopping do
            Condition.wait t.sup_wake t.mutex
          done;
          match t.reports with
          | [] -> `Stop
          | r ->
              t.reports <- [];
              `Handle (List.rev r))
    in
    match action with
    | `Stop -> ()
    | `Handle reports ->
        List.iter (fun (wid, entry, exn) -> handle_crash t wid entry exn) reports;
        loop ()
  in
  loop ()

let default_backoff k = Float.min 0.05 (0.002 *. (2. ** float_of_int k))

let create ?(teardown = fun _ -> ()) ?(on_crash = fun _ _ -> ())
    ?(max_restarts = 10_000) ?(backoff_s = default_backoff) ~workers
    ~queue_bound setup =
  if workers <= 0 then invalid_arg "Pool.create: workers must be > 0";
  if queue_bound <= 0 then invalid_arg "Pool.create: queue_bound must be > 0";
  if max_restarts < 0 then
    invalid_arg "Pool.create: max_restarts must be >= 0";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      sup_wake = Condition.create ();
      queue = Queue.create ();
      bound = queue_bound;
      stopping = false;
      setup;
      teardown;
      on_crash;
      max_restarts;
      backoff_s;
      restart_count = 0;
      alive = workers;
      reports = [];
      slots = Array.init workers (fun _ -> { domain = None; crash_count = 0 });
      supervisor = None;
    }
  in
  Array.iteri (fun wid slot -> slot.domain <- Some (spawn_worker t wid)) t.slots;
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  t

let submit t job =
  Mutex.protect t.mutex (fun () ->
      if t.stopping then `Overloaded
      else if t.alive = 0 && t.restart_count >= t.max_restarts then
        (* every worker is dead and the budget is spent: nothing will
           ever pop the queue again, so shed instead of accepting work
           that cannot complete *)
        `Overloaded
      else if Queue.length t.queue >= t.bound then `Overloaded
      else begin
        Queue.push { job; crashes = 0 } t.queue;
        Condition.signal t.nonempty;
        `Accepted
      end)

let queue_length t = Mutex.protect t.mutex (fun () -> Queue.length t.queue)
let workers_alive t = Mutex.protect t.mutex (fun () -> t.alive)
let restarts t = Mutex.protect t.mutex (fun () -> t.restart_count)

let shutdown t =
  Mutex.protect t.mutex (fun () ->
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Condition.broadcast t.sup_wake);
  (* supervisor first, so no restart races the slot joins below *)
  (match t.supervisor with Some d -> Domain.join d | None -> ());
  t.supervisor <- None;
  Array.iter
    (fun slot ->
      match slot.domain with
      | Some d ->
          (try Domain.join d with _ -> ());
          slot.domain <- None
      | None -> ())
    t.slots
