(** A persistent fork/join team of domains for round-based data
    parallelism.

    Where {!Pool} is a fire-and-forget job queue (requests flow in, results
    flow out through side effects), a team is {e synchronous}: every
    {!run} call splits one unit of work into [shards] tasks, executes them
    concurrently, and joins before returning — the caller sees an array of
    results in shard order, with all memory effects of the tasks visible
    (the join synchronizes through the team's mutex).

    Guarantees the rewrite pass's determinism argument leans on:

    - shard [i] of every round runs on the {e same} domain for the team's
      lifetime (shard 0 on the calling domain), so per-shard state built
      on first use — compiled plans, domain-local observability rings —
      stays where its work runs;
    - {!run} returns results indexed by shard, independent of completion
      order;
    - a task exception does not kill its domain: it is captured and
      re-raised on the caller after every other shard of the round has
      finished. *)

type t

(** [create ~shards] builds a team that executes [shards] tasks per
    round: [shards - 1] worker domains plus the calling domain. Raises
    [Invalid_argument] when [shards <= 0]. [create ~shards:1] spawns
    nothing and {!run} degenerates to a plain call. *)
val create : shards:int -> t

val shards : t -> int

(** [run t f] evaluates [f i] for every shard [i] in [0 .. shards-1]
    concurrently ([f 0] on the calling domain) and returns the results in
    shard order. If any task raised, the first such exception (lowest
    shard index) is re-raised after the round has fully joined. Not
    reentrant: [f] must not call {!run} on the same team. *)
val run : t -> (int -> 'a) -> 'a array

(** Stop and join the worker domains. Idempotent. Subsequent {!run}
    calls raise [Invalid_argument]. *)
val shutdown : t -> unit
