(** Skeleton extraction: the compilable fragment, linearized.

    A pattern in the {e decision fragment} — applications, function-variable
    applications, variables, alternates, guards and existence checks, but no
    [mu]-recursion, free calls or match constraints — denotes a finite,
    ordered set of alternate-free {e branches}: the left-to-right expansion
    of its alternates, exactly the order in which the backtracking matcher
    explores complete structural alternatives. Each branch is alternate-free
    and therefore {e deterministic}: matching it against a term is a single
    left-to-right pass of checks and bindings with no choice points.

    Branches are linearized into instruction strings over subject positions
    (paths from the matched root). The instruction order is the matcher's
    continuation order (preorder over the branch), except that guard checks
    are {e hoisted} to the earliest point at which every variable they
    mention is already bound — never later than their natural slot, so a
    guard whose variables are bound only by a later sibling still fails the
    branch exactly as the matcher's [Backtrack] policy does.

    [Pypm_plan.Plan] compiles the branch strings of a whole pattern library
    into one shared discrimination trie. The first-witness preservation
    argument lives in [doc/plan.md]. *)

open Pypm_term

(** Position in the subject term: the empty path is the matched root,
    [i :: rest] descends into argument [i] (0-based). *)
type path = int list

type instr =
  | Check_head of path * Symbol.t * int
      (** subject at [path] has this head symbol and arity *)
  | Check_arity of path * int
      (** subject at [path] has this arity (function-variable application) *)
  | Bind_var of path * Subst.var
      (** bind the variable to the subject at [path]; a conflicting prior
          binding fails the branch *)
  | Bind_fvar of path * Fsubst.fvar
      (** bind the function variable to the head symbol at [path] *)
  | Check_guard of Guard.t
      (** evaluate the guard; [None] (unbound variable, undefined
          attribute) and [Some false] both fail the branch *)
  | Check_bound of Subst.var  (** [exists x] check: [x] must be bound *)
  | Check_fbound of Fsubst.fvar  (** [existsF F] check *)

type branch = {
  b_index : int;  (** position in the matcher's alternate-exploration order *)
  instrs : instr list;
}

val path_equal : path -> path -> bool
val instr_equal : instr -> instr -> bool

(** [instr_implies a b] holds when every subject/binding state passing [a]
    also passes [b]: equality, plus a head check implying the arity check
    at the same path. *)
val instr_implies : instr -> instr -> bool

(** [branch_subsumes b1 b2]: [b1] succeeds on every subject [b2] succeeds
    on — each of [b1]'s instructions is implied by one of [b2]'s. A branch
    is a conjunction, so instruction order is irrelevant to the outcome.
    Sound, not complete; variable names are compared literally (the
    static-analysis layer canonicalizes them before cross-pattern
    comparisons, the plan compiler compares branches of one pattern where
    names already agree). *)
val branch_subsumes : branch -> branch -> bool

(** [extract ?max_branches p] is the ordered branch list of [p], or [None]
    if [p] falls outside the decision fragment ([mu], [Call], match
    constraints) or its alternate expansion exceeds [max_branches]
    (default 128). Branch [i] succeeding means the matcher's first witness
    comes from the lowest-index succeeding branch. *)
val extract : ?max_branches:int -> Pattern.t -> branch list option

val pp_instr : Format.formatter -> instr -> unit
val pp_branch : Format.formatter -> branch -> unit
