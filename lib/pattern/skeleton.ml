open Pypm_term

type path = int list

type instr =
  | Check_head of path * Symbol.t * int
  | Check_arity of path * int
  | Bind_var of path * Subst.var
  | Bind_fvar of path * Fsubst.fvar
  | Check_guard of Guard.t
  | Check_bound of Subst.var
  | Check_fbound of Fsubst.fvar

type branch = { b_index : int; instrs : instr list }

let path_equal = List.equal Int.equal

let instr_equal a b =
  match (a, b) with
  | Check_head (p, f, n), Check_head (q, g, m) ->
      path_equal p q && Symbol.equal f g && n = m
  | Check_arity (p, n), Check_arity (q, m) -> path_equal p q && n = m
  | Bind_var (p, x), Bind_var (q, y) -> path_equal p q && String.equal x y
  | Bind_fvar (p, x), Bind_fvar (q, y) -> path_equal p q && String.equal x y
  | Check_guard g, Check_guard h -> Guard.equal g h
  | Check_bound x, Check_bound y -> String.equal x y
  | Check_fbound x, Check_fbound y -> String.equal x y
  | _ -> false

(* [instr_implies a b]: every subject/binding state that passes [a] also
   passes [b]. The only non-trivial implication is a head check subsuming
   the arity check at the same position; everything else is implied only
   by itself. *)
let instr_implies a b =
  instr_equal a b
  ||
  match (a, b) with
  | Check_head (p, _, n), Check_arity (q, m) -> path_equal p q && n = m
  | _ -> false

(* [branch_subsumes b1 b2]: [b1] succeeds on every subject [b2] succeeds
   on. A branch is a conjunction — instruction order never affects its
   outcome, only which witness the bindings form — so it suffices that
   every constraint of [b1] is implied by some constraint of [b2].
   Sound but not complete: a genuinely weaker branch spelled with
   different variable names or different guards is not recognized
   (callers canonicalize names first when comparing across patterns). *)
let branch_subsumes b1 b2 =
  List.for_all
    (fun i -> List.exists (fun j -> instr_implies j i) b2.instrs)
    b1.instrs

(* ------------------------------------------------------------------ *)
(* Alternate expansion                                                 *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Option.bind

(* Ordered cartesian product, leftmost factor most significant: the matcher
   establishes the first argument's choice points first, so backtracking
   exhausts later arguments' alternatives before advancing an earlier one. *)
let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) tails) xs

(* Expand a pattern into its ordered list of alternate-free branches; [None]
   if the pattern is outside the decision fragment or too wide. The order is
   the matcher's exploration order of complete structural alternatives:
   [Alt (p, q)] contributes all of [p]'s branches before any of [q]'s. *)
let expand ~max_branches p =
  let guard n l = if n > max_branches then None else Some l in
  let rec go (p : Pattern.t) =
    match p with
    | Var _ -> Some [ p ]
    | App (f, ps) ->
        let* pss = go_list ps in
        let prod = cartesian pss in
        guard (List.length prod)
          (List.map (fun qs -> Pattern.App (f, qs)) prod)
    | Fapp (f, ps) ->
        let* pss = go_list ps in
        let prod = cartesian pss in
        guard (List.length prod)
          (List.map (fun qs -> Pattern.Fapp (f, qs)) prod)
    | Alt (p1, p2) ->
        let* l1 = go p1 in
        let* l2 = go p2 in
        guard (List.length l1 + List.length l2) (l1 @ l2)
    | Guarded (p1, g) ->
        let* l = go p1 in
        Some (List.map (fun q -> Pattern.Guarded (q, g)) l)
    | Exists (x, p1) ->
        let* l = go p1 in
        Some (List.map (fun q -> Pattern.Exists (x, q)) l)
    | Exists_f (f, p1) ->
        let* l = go p1 in
        Some (List.map (fun q -> Pattern.Exists_f (f, q)) l)
    | Constr _ | Mu _ | Call _ -> None
  and go_list = function
    | [] -> Some []
    | p :: ps ->
        let* l = go p in
        let* ls = go_list ps in
        Some (l :: ls)
  in
  go p

(* ------------------------------------------------------------------ *)
(* Linearization                                                       *)
(* ------------------------------------------------------------------ *)

(* Instructions in the matcher's continuation order: preorder over the
   branch, with each pattern node's own check before its children, and
   post-checks (guards, existence) immediately after the subpattern they
   wrap — before any later sibling binds. *)
let rec linearize path (p : Pattern.t) =
  match p with
  | Var x -> [ Bind_var (path, x) ]
  | App (f, ps) ->
      Check_head (path, f, List.length ps)
      :: List.concat (List.mapi (fun i q -> linearize (path @ [ i ]) q) ps)
  | Fapp (f, ps) ->
      Check_arity (path, List.length ps)
      :: Bind_fvar (path, f)
      :: List.concat (List.mapi (fun i q -> linearize (path @ [ i ]) q) ps)
  | Guarded (p1, g) -> linearize path p1 @ [ Check_guard g ]
  | Exists (x, p1) -> linearize path p1 @ [ Check_bound x ]
  | Exists_f (f, p1) -> linearize path p1 @ [ Check_fbound f ]
  | Alt _ | Constr _ | Mu _ | Call _ ->
      invalid_arg "Skeleton.linearize: not alternate-free"

(* ------------------------------------------------------------------ *)
(* Guard hoisting                                                      *)
(* ------------------------------------------------------------------ *)

(* A guard is pure and its evaluation depends only on the bindings of the
   variables it mentions, so it may be moved EARLIER to the first point
   where all of them are already bound: the extra bindings present at its
   natural slot cannot change its value. It must never move LATER: at the
   natural slot an unbound variable makes evaluation undefined and fails
   the branch (Backtrack policy), and a later slot might see the variable
   bound by a subsequent sibling. *)
let hoist_guards instrs =
  let binds_after = function
    | Bind_var (_, x) -> Some (`V x)
    | Bind_fvar (_, f) -> Some (`F f)
    | _ -> None
  in
  (* [out] is in reverse order; [bound] the bindings established by it. *)
  let insert_hoisted out g =
    let needs_v = Guard.vars g and needs_f = Guard.fvars g in
    let satisfied vs fs =
      Symbol.Set.subset needs_v vs && Symbol.Set.subset needs_f fs
    in
    (* Walk the reversed output, peeling instructions while the guard's
       requirements remain satisfied without them; stop at the earliest
       position (equivalently: peel until removing one more instruction
       would unbind something the guard needs). *)
    let full_v, full_f =
      List.fold_left
        (fun (vs, fs) i ->
          match binds_after i with
          | Some (`V x) -> (Symbol.Set.add x vs, fs)
          | Some (`F f) -> (vs, Symbol.Set.add f fs)
          | None -> (vs, fs))
        (Symbol.Set.empty, Symbol.Set.empty)
        out
    in
    if not (satisfied full_v full_f) then Check_guard g :: out
    else
      let rec peel acc vs fs = function
        | i :: rest when satisfied vs fs ->
            let vs', fs' =
              match binds_after i with
              | Some (`V x) -> (Symbol.Set.remove x vs, fs)
              | Some (`F f) -> (vs, Symbol.Set.remove f fs)
              | None -> (vs, fs)
            in
            if satisfied vs' fs' then peel (i :: acc) vs' fs' rest
            else List.rev_append acc (Check_guard g :: i :: rest)
        | rest -> List.rev_append acc (Check_guard g :: rest)
      in
      peel [] full_v full_f out
  in
  let out =
    List.fold_left
      (fun out i ->
        match i with Check_guard g -> insert_hoisted out g | _ -> i :: out)
      [] instrs
  in
  List.rev out

(* Note on hoisting stability: when a guard hoists past other (non-binding)
   instructions it lands just after the binding it still needs; two guards
   hoisted to the same point keep their relative order only if they peel the
   same instructions, but since guards are pure and conjunctive, their
   relative order never affects the branch's outcome. *)

let extract ?(max_branches = 128) p =
  match expand ~max_branches p with
  | None -> None
  | Some alts ->
      Some
        (List.mapi
           (fun i q -> { b_index = i; instrs = hoist_guards (linearize [] q) })
           alts)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_path ppf path =
  if path = [] then Format.pp_print_string ppf "ε"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '.')
      Format.pp_print_int ppf path

let pp_instr ppf = function
  | Check_head (p, f, n) ->
      Format.fprintf ppf "head(%a, %a/%d)" pp_path p Symbol.pp f n
  | Check_arity (p, n) -> Format.fprintf ppf "arity(%a, %d)" pp_path p n
  | Bind_var (p, x) -> Format.fprintf ppf "bind(%a, %s)" pp_path p x
  | Bind_fvar (p, f) -> Format.fprintf ppf "bindF(%a, %s)" pp_path p f
  | Check_guard g -> Format.fprintf ppf "guard(%a)" Guard.pp g
  | Check_bound x -> Format.fprintf ppf "bound(%s)" x
  | Check_fbound f -> Format.fprintf ppf "boundF(%s)" f

let pp_branch ppf b =
  Format.fprintf ppf "@[<hov 2>#%d:@ %a@]" b.b_index
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_instr)
    b.instrs
