(** The serve wire protocol.

    Request/response envelopes for the resident optimization service
    ([pypmc serve]), built on {!Codec.Wire}. Every message is one
    varint-length-prefixed {e frame}; the payload leads with a magic +
    protocol version, then a tagged body. Like the codec formats,
    decoding is total: corrupt bytes yield [Error], never an exception.

    An [Optimize] request carries the program (by registered name, or as
    inline pattern-binary bytes), the full option block, and a
    {!Codec.Graphs}-encoded graph. The server answers with [Result]
    (whose body is an encoded {!outcome} — result graph, stats JSON,
    structured pass errors), [Overloaded] when admission control sheds
    the request, [Bad_request] on undecodable input, or [Server_error].

    The outcome body is encoded separately from the response header so
    the result cache can store cold body bytes verbatim: a warm response
    body is byte-identical to the cold one by construction, while the
    per-service fields ([cached], [service_s]) live in the header. *)

val version : int

(** {1 Pass options} *)

type options = {
  engine : string;  (** ["naive"] | ["index"] | ["plan"] | ["egraph"] *)
  fuel : int;
  max_rewrites : int;
  deadline_s : float option;
  quarantine_after : int;
  check_types : bool;
  strict : bool;  (** run under the [`Fail] error policy *)
  fault_seed : int;  (** fault injection; rate 0 disables *)
  fault_rate : float;
  fault_points : string list;  (** empty = all points armed *)
  domains : int;
      (** matching domains per pass ([Pass.run ~domains]); 1 = sequential.
          Participates in the cache key like every other field — the
          optimized graph is identical either way, but the stats body
          records the domain count. Added in protocol v2. *)
}

val default_options : options

(** The option component of the cache key: the encoded option block.
    Two requests with equal fingerprints are interchangeable to the
    pass. *)
val options_fingerprint : options -> string

(** {1 Envelopes} *)

type program_spec =
  | Named of string  (** a pattern set registered in the server *)
  | Inline of string  (** pattern-binary bytes ({!Codec.encode}) *)

type request =
  | Optimize of {
      id : int;
      program : program_spec;
      options : options;
      graph : string;  (** {!Codec.Graphs.encode} bytes *)
    }
  | Stats of { id : int }
  | Health of { id : int }
      (** liveness/readiness probe; answered inline by the accept loop
          even while the server is draining. Added in protocol v3. *)

(** What one optimization produced; travels as the [Result] body. *)
type outcome = {
  graph : string;  (** the rewritten graph, {!Codec.Graphs.encode} bytes *)
  stats_json : string;  (** [Pass.stats_json] of the run *)
  errors : Pypm_engine.Pass.error list;  (** contained rule errors *)
  fatal : Pypm_engine.Pass.error option;
}

type server_stats = {
  served : int;
  shed : int;
  errors : int;  (** requests answered with [Bad_request]/[Server_error] *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  cache_bytes : int;
  workers : int;
  uptime_s : float;
}

(** The health probe's answer: supervision and drain state at a glance. *)
type health = {
  status : string;  (** ["ok"] or ["draining"] *)
  uptime_s : float;
  workers_alive : int;  (** workers currently able to take jobs *)
  workers_total : int;  (** configured worker count *)
  restarts : int;  (** supervisor worker restarts since boot *)
  poisoned : int;  (** jobs answered [Worker_crashed] since boot *)
  inflight : int;  (** jobs admitted but not yet answered *)
}

type response =
  | Result of {
      id : int;
      cached : bool;  (** answered from the result cache *)
      service_s : float;  (** seconds from dequeue to answer *)
      body : string;  (** encoded {!outcome} *)
    }
  | Stats_report of { id : int; stats : server_stats }
  | Overloaded of { id : int }
      (** admission control shed the request; retry later *)
  | Bad_request of { id : int; reason : string }
  | Server_error of { id : int; reason : string }
  | Deadline_exceeded of { id : int; elapsed_s : float }
      (** the per-job watchdog reaped the request: it spent [elapsed_s]
          seconds from admission without completing. The job's eventual
          result (if any) is discarded. Added in protocol v3. *)
  | Draining of { id : int }
      (** the server is shutting down gracefully and no longer admits
          optimization work; reconnect and retry against its successor.
          Added in protocol v3. *)
  | Worker_crashed of { id : int; reason : string }
      (** the request crashed two worker domains in a row and was
          quarantined as a poison pill. Added in protocol v3. *)
  | Health_report of { id : int; health : health }  (** v3 *)

val response_id : response -> int

(** {1 Message encoding} *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
val encode_outcome : outcome -> string
val decode_outcome : string -> (outcome, string) result

(** {1 Framing} *)

(** [frame payload] is the varint length prefix plus the payload; what
    actually crosses the socket. *)
val frame : string -> string

(** Incremental deframer: feed raw socket bytes, pull complete frames.
    Frames split anywhere — including inside the length varint — resume
    cleanly on the next feed. A frame larger than [max_frame] (default
    64 MiB) is a sticky protocol error, as is a length varint that
    overflows the int range — both are rejected {e before} any
    allocation of the claimed size is attempted. *)
module Reader : sig
  type t

  val create : ?max_frame:int -> unit -> t
  val feed : t -> string -> unit
  val next : t -> [ `Frame of string | `Await | `Error of string ]
end
