open Pypm_term
open Pypm_pattern
open Pypm_engine

let version = 1
let magic = "PYPM"

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                   *)
(* ------------------------------------------------------------------ *)

exception Encode_error of string

let encode_fail fmt = Format.kasprintf (fun m -> raise (Encode_error m)) fmt
let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

(* unsigned LEB128 over the int's 63-bit pattern; [lsr] keeps the loop
   total even when the top (sign) bit is set, which zigzagged min_int /
   max_int need *)
let rec put_ubits buf n =
  if n land lnot 0x7f = 0 then put_u8 buf n
  else (
    put_u8 buf ((n land 0x7f) lor 0x80);
    put_ubits buf (n lsr 7))

let put_varint buf n =
  if n < 0 then invalid_arg "Codec.put_varint: negative";
  put_ubits buf n

(* zigzag for signed: the full [min_int, max_int] range round-trips. The
   zigzag image of a large-magnitude int has the sign bit set, so it must
   travel through the unsigned-bit-pattern writer, not [put_varint]. *)
let put_signed buf n = put_ubits buf ((n lsl 1) lxor (n asr 62))

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_list buf put xs =
  put_varint buf (List.length xs);
  List.iter (put buf) xs

let put_bool buf b = put_u8 buf (if b then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                   *)
(* ------------------------------------------------------------------ *)

exception Corrupt of int * string

type cursor = { bytes : string; mutable off : int }

let fail c fmt =
  Format.kasprintf (fun m -> raise (Corrupt (c.off, m))) fmt

let get_u8 c =
  if c.off >= String.length c.bytes then fail c "unexpected end of input";
  let v = Char.code c.bytes.[c.off] in
  c.off <- c.off + 1;
  v

let get_varint c =
  let rec go shift acc =
    if shift > 62 then fail c "varint too long";
    let b = get_u8 c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_signed c =
  let z = get_varint c in
  (z lsr 1) lxor (-(z land 1))

let get_string c =
  let n = get_varint c in
  if c.off + n > String.length c.bytes then fail c "string runs past the end";
  let s = String.sub c.bytes c.off n in
  c.off <- c.off + n;
  s

let get_list c get =
  let n = get_varint c in
  List.init n (fun _ -> get c)

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> fail c "bad boolean byte %d" v

(* A list length that cannot be satisfied by the remaining input is
   corruption; rejecting it here keeps a bit-flipped length byte from
   turning into a multi-gigabyte [List.init]. Every element costs at
   least one byte, so [remaining] is a sound bound. *)
let get_count c =
  let n = get_varint c in
  if n > String.length c.bytes - c.off then
    fail c "implausible count %d (only %d byte(s) left)" n
      (String.length c.bytes - c.off);
  n

let get_listc c get =
  let n = get_count c in
  List.init n (fun _ -> get c)

(* IEEE-754 bits as 8 raw little-endian bytes: varints live in OCaml's
   63-bit int, which cannot carry all 64 float bits. *)
let put_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    put_u8 buf
      (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL))
  done

let get_f64 c =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (get_u8 c)) (8 * i))
  done;
  Int64.float_of_bits !bits

(* ------------------------------------------------------------------ *)
(* Guard expressions                                                   *)
(* ------------------------------------------------------------------ *)

let rec put_gexp buf (e : Guard.expr) =
  match e with
  | Guard.Const n ->
      put_u8 buf 0;
      put_signed buf n
  | Guard.Var_attr (x, a) ->
      put_u8 buf 1;
      put_string buf x;
      put_string buf a
  | Guard.Term_attr (_, _) ->
      (* closed term attributes never appear in serialized source patterns;
         they arise only during matching *)
      invalid_arg "Codec: cannot serialize a closed term attribute"
  | Guard.Fvar_attr (f, a) ->
      put_u8 buf 2;
      put_string buf f;
      put_string buf a
  | Guard.Sym_attr (s, a) ->
      put_u8 buf 3;
      put_string buf s;
      put_string buf a
  | Guard.Add (a, b) ->
      put_u8 buf 4;
      put_gexp buf a;
      put_gexp buf b
  | Guard.Sub (a, b) ->
      put_u8 buf 5;
      put_gexp buf a;
      put_gexp buf b
  | Guard.Mul (a, b) ->
      put_u8 buf 6;
      put_gexp buf a;
      put_gexp buf b
  | Guard.Mod (a, b) ->
      put_u8 buf 7;
      put_gexp buf a;
      put_gexp buf b

let rec get_gexp c : Guard.expr =
  match get_u8 c with
  | 0 -> Guard.Const (get_signed c)
  | 1 ->
      let x = get_string c in
      let a = get_string c in
      Guard.Var_attr (x, a)
  | 2 ->
      let f = get_string c in
      let a = get_string c in
      Guard.Fvar_attr (f, a)
  | 3 ->
      let s = get_string c in
      let a = get_string c in
      Guard.Sym_attr (s, a)
  | 4 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Add (a, b)
  | 5 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Sub (a, b)
  | 6 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Mul (a, b)
  | 7 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Mod (a, b)
  | t -> fail c "bad guard-expression tag %d" t

let rec put_guard buf (g : Guard.t) =
  match g with
  | Guard.True -> put_u8 buf 0
  | Guard.False -> put_u8 buf 1
  | Guard.Eq (a, b) ->
      put_u8 buf 2;
      put_gexp buf a;
      put_gexp buf b
  | Guard.Ne (a, b) ->
      put_u8 buf 3;
      put_gexp buf a;
      put_gexp buf b
  | Guard.Lt (a, b) ->
      put_u8 buf 4;
      put_gexp buf a;
      put_gexp buf b
  | Guard.Le (a, b) ->
      put_u8 buf 5;
      put_gexp buf a;
      put_gexp buf b
  | Guard.And (a, b) ->
      put_u8 buf 6;
      put_guard buf a;
      put_guard buf b
  | Guard.Or (a, b) ->
      put_u8 buf 7;
      put_guard buf a;
      put_guard buf b
  | Guard.Not a ->
      put_u8 buf 8;
      put_guard buf a

let rec get_guard c : Guard.t =
  match get_u8 c with
  | 0 -> Guard.True
  | 1 -> Guard.False
  | 2 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Eq (a, b)
  | 3 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Ne (a, b)
  | 4 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Lt (a, b)
  | 5 ->
      let a = get_gexp c in
      let b = get_gexp c in
      Guard.Le (a, b)
  | 6 ->
      let a = get_guard c in
      let b = get_guard c in
      Guard.And (a, b)
  | 7 ->
      let a = get_guard c in
      let b = get_guard c in
      Guard.Or (a, b)
  | 8 -> Guard.Not (get_guard c)
  | t -> fail c "bad guard tag %d" t

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let rec put_pattern buf (p : Pattern.t) =
  match p with
  | Pattern.Var x ->
      put_u8 buf 0;
      put_string buf x
  | Pattern.App (f, ps) ->
      put_u8 buf 1;
      put_string buf f;
      put_list buf put_pattern ps
  | Pattern.Fapp (f, ps) ->
      put_u8 buf 2;
      put_string buf f;
      put_list buf put_pattern ps
  | Pattern.Alt (a, b) ->
      put_u8 buf 3;
      put_pattern buf a;
      put_pattern buf b
  | Pattern.Guarded (a, g) ->
      put_u8 buf 4;
      put_pattern buf a;
      put_guard buf g
  | Pattern.Exists (x, a) ->
      put_u8 buf 5;
      put_string buf x;
      put_pattern buf a
  | Pattern.Exists_f (f, a) ->
      put_u8 buf 6;
      put_string buf f;
      put_pattern buf a
  | Pattern.Constr (a, b, x) ->
      put_u8 buf 7;
      put_pattern buf a;
      put_pattern buf b;
      put_string buf x
  | Pattern.Mu (m, ys) ->
      put_u8 buf 8;
      put_string buf m.Pattern.pname;
      put_list buf put_string m.Pattern.formals;
      put_pattern buf m.Pattern.body;
      put_list buf put_string ys
  | Pattern.Call (pn, ys) ->
      put_u8 buf 9;
      put_string buf pn;
      put_list buf put_string ys

let rec get_pattern c : Pattern.t =
  match get_u8 c with
  | 0 -> Pattern.Var (get_string c)
  | 1 ->
      let f = get_string c in
      let ps = get_list c get_pattern in
      Pattern.App (f, ps)
  | 2 ->
      let f = get_string c in
      let ps = get_list c get_pattern in
      Pattern.Fapp (f, ps)
  | 3 ->
      let a = get_pattern c in
      let b = get_pattern c in
      Pattern.Alt (a, b)
  | 4 ->
      let a = get_pattern c in
      let g = get_guard c in
      Pattern.Guarded (a, g)
  | 5 ->
      let x = get_string c in
      let a = get_pattern c in
      Pattern.Exists (x, a)
  | 6 ->
      let f = get_string c in
      let a = get_pattern c in
      Pattern.Exists_f (f, a)
  | 7 ->
      let a = get_pattern c in
      let b = get_pattern c in
      let x = get_string c in
      Pattern.Constr (a, b, x)
  | 8 ->
      let pname = get_string c in
      let formals = get_list c get_string in
      let body = get_pattern c in
      let ys = get_list c get_string in
      if List.length formals <> List.length ys then
        fail c "mu %s: %d formals but %d actuals" pname (List.length formals)
          (List.length ys);
      Pattern.Mu ({ Pattern.pname; formals; body }, ys)
  | 9 ->
      let pn = get_string c in
      let ys = get_list c get_string in
      Pattern.Call (pn, ys)
  | t -> fail c "bad pattern tag %d" t

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let rec put_rhs buf (r : Rule.rhs) =
  match r with
  | Rule.Rvar x ->
      put_u8 buf 0;
      put_string buf x
  | Rule.Rapp (op, rs) ->
      put_u8 buf 1;
      put_string buf op;
      put_list buf put_rhs rs
  | Rule.Rapp_attrs (op, rs, attrs) ->
      put_u8 buf 2;
      put_string buf op;
      put_list buf put_rhs rs;
      put_list buf
        (fun buf (k, v) ->
          put_string buf k;
          put_signed buf v)
        attrs
  | Rule.Rfapp (f, rs) ->
      put_u8 buf 3;
      put_string buf f;
      put_list buf put_rhs rs
  | Rule.Rcopy_attrs (op, rs, x) ->
      put_u8 buf 4;
      put_string buf op;
      put_list buf put_rhs rs;
      put_string buf x
  | Rule.Rlit v ->
      (* millifloat, matching the graph's constant interning. NaN and the
         infinities have no millifloat, and beyond 2^52 the rounded value
         is no longer exactly representable, so [int_of_float] would
         silently corrupt the literal — reject instead of miscoding. *)
      if Float.is_nan v || not (Float.is_finite v) then
        encode_fail "cannot serialize non-finite literal %h" v;
      let m = Float.round (v *. 1000.) in
      if Float.abs m > 0x10000000000000. (* 2^52 *) then
        encode_fail "literal %g is out of millifloat range" v;
      put_u8 buf 5;
      put_signed buf (int_of_float m)

let rec get_rhs c : Rule.rhs =
  match get_u8 c with
  | 0 -> Rule.Rvar (get_string c)
  | 1 ->
      let op = get_string c in
      let rs = get_list c get_rhs in
      Rule.Rapp (op, rs)
  | 2 ->
      let op = get_string c in
      let rs = get_list c get_rhs in
      let attrs =
        get_list c (fun c ->
            let k = get_string c in
            let v = get_signed c in
            (k, v))
      in
      Rule.Rapp_attrs (op, rs, attrs)
  | 3 ->
      let f = get_string c in
      let rs = get_list c get_rhs in
      Rule.Rfapp (f, rs)
  | 4 ->
      let op = get_string c in
      let rs = get_list c get_rhs in
      let x = get_string c in
      Rule.Rcopy_attrs (op, rs, x)
  | 5 -> Rule.Rlit (float_of_int (get_signed c) /. 1000.)
  | t -> fail c "bad rhs tag %d" t

let put_rule buf (r : Rule.t) =
  put_string buf r.Rule.rule_name;
  put_string buf r.Rule.pattern_name;
  put_guard buf r.Rule.guard;
  put_rhs buf r.Rule.rhs

let get_rule c : Rule.t =
  let rule_name = get_string c in
  let pattern_name = get_string c in
  let guard = get_guard c in
  let rhs = get_rhs c in
  { Rule.rule_name; pattern_name; guard; rhs }

(* ------------------------------------------------------------------ *)
(* Operator declarations                                               *)
(* ------------------------------------------------------------------ *)

let put_decl buf (d : Signature.decl) =
  put_string buf d.Signature.name;
  put_varint buf d.Signature.arity;
  put_varint buf d.Signature.output_arity;
  put_string buf d.Signature.op_class;
  put_list buf
    (fun buf (name, kind) ->
      put_string buf name;
      put_bool buf (kind = Signature.Int_attr))
    d.Signature.attrs

let get_decl c =
  let name = get_string c in
  let arity = get_varint c in
  let output_arity = get_varint c in
  let op_class = get_string c in
  let attrs =
    get_list c (fun c ->
        let n = get_string c in
        let is_int = get_bool c in
        (n, if is_int then Signature.Int_attr else Signature.Sym_attr))
  in
  (name, arity, output_arity, op_class, attrs)

(* ------------------------------------------------------------------ *)
(* Checksums                                                           *)
(* ------------------------------------------------------------------ *)

let fnv1a s =
  (* 0xcbf29ce484222325 does not fit OCaml's 63-bit int; fold it in. *)
  let h = ref (0xcbf29ce4 lxor 0x84222325) in
  String.iter
    (fun ch ->
      h := !h lxor Char.code ch;
      h := !h * 0x100000001b3)
    s;
  !h land 0x3FFFFFFFFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

(* Operators referenced by the program: pattern heads, rhs heads, plus
   every symbol the signature knows that appears in the entries. We simply
   ship every declaration of the program's signature; pattern binaries are
   self-contained. *)
let encode (p : Program.t) =
  let payload = Buffer.create 1024 in
  put_list payload put_decl (Signature.decls p.Program.sg);
  put_list payload
    (fun buf (e : Program.entry) ->
      put_string buf e.Program.pname;
      put_pattern buf e.Program.pattern;
      put_list buf put_rule e.Program.rules)
    p.Program.entries;
  let payload = Buffer.contents payload in
  let out = Buffer.create (String.length payload + 24) in
  Buffer.add_string out magic;
  put_varint out version;
  put_varint out (fnv1a payload);
  put_varint out (String.length payload);
  Buffer.add_string out payload;
  Buffer.contents out

let decode_into ~sg bytes =
  let c = { bytes; off = 0 } in
  match
    let m = if String.length bytes >= 4 then String.sub bytes 0 4 else "" in
    if m <> magic then fail c "bad magic (not a PyPM pattern binary)";
    c.off <- 4;
    let v = get_varint c in
    if v <> version then fail c "unsupported format version %d" v;
    let checksum = get_varint c in
    let len = get_varint c in
    if c.off + len <> String.length bytes then
      fail c "payload length mismatch";
    let payload = String.sub bytes c.off len in
    if fnv1a payload <> checksum then fail c "checksum mismatch";
    let decls = get_list c get_decl in
    List.iter
      (fun (name, arity, output_arity, op_class, attrs) ->
        try
          ignore (Signature.declare sg ~output_arity ~op_class ~attrs ~arity name)
        with Invalid_argument msg -> fail c "conflicting declaration: %s" msg)
      decls;
    let entries =
      get_list c (fun c ->
          let pname = get_string c in
          let pattern = get_pattern c in
          let rules = get_list c get_rule in
          { Program.pname; pattern; rules })
    in
    if c.off <> String.length bytes then fail c "trailing bytes";
    Program.make ~sg entries
  with
  | p -> Ok p
  | exception Corrupt (off, msg) ->
      Error (Printf.sprintf "corrupt pattern binary at byte %d: %s" off msg)

let decode bytes = decode_into ~sg:(Signature.create ()) bytes

let to_file path program =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode program))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Computation graphs                                                  *)
(* ------------------------------------------------------------------ *)

module Graphs = struct
  module G = Pypm_graph.Graph
  module Ty = Pypm_tensor.Ty
  module Dtype = Pypm_tensor.Dtype

  let magic = "PYPG"
  let version = 1

  let put_ty buf (ty : Ty.t) =
    put_string buf (Dtype.to_string ty.Ty.dtype);
    put_list buf put_varint ty.Ty.shape

  let get_ty c : Ty.t =
    let ds = get_string c in
    match Dtype.of_string ds with
    | None -> fail c "unknown dtype %S" ds
    | Some dtype ->
        let shape = get_listc c get_varint in
        Ty.make dtype shape

  let put_ty_opt buf = function
    | None -> put_bool buf false
    | Some ty ->
        put_bool buf true;
        put_ty buf ty

  let get_ty_opt c = if get_bool c then Some (get_ty c) else None

  (* A leaf's operator symbol is ["<base>%<uid>"]; only the base survives
     the wire. The decoder mints a fresh symbol from it, so node identity
     is not preserved across a round trip — but the isomorphism-invariant
     fingerprint is, which is what cache keys and the fuzzer compare. *)
  let base_name (op : Pypm_term.Symbol.t) =
    match String.rindex_opt (op :> string) '%' with
    | Some i -> String.sub (op :> string) 0 i
    | None -> (op :> string)

  (* Node tags *)
  let t_input = 0
  and t_opaque = 1
  and t_const = 2
  and t_op = 3

  let encode g =
    let payload = Buffer.create 1024 in
    let live = G.live_nodes g in
    let sg = G.signature g in
    let index : (int, int) Hashtbl.t = Hashtbl.create 64 in
    List.iteri (fun i (n : G.node) -> Hashtbl.replace index n.G.id i) live;
    let classify (n : G.node) =
      let cls = Option.value ~default:"" (Signature.op_class sg n.G.op) in
      if n.G.inputs = [] && (cls = "input" || cls = "opaque") then
        `Leaf (cls = "input")
      else if cls = "const" && G.constant_value n <> None then `Const
      else `Op
    in
    (* operator declarations referenced by operator nodes, shipped once *)
    let seen : (Pypm_term.Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
    let decls =
      List.filter_map
        (fun (n : G.node) ->
          match classify n with
          | `Op when not (Hashtbl.mem seen n.G.op) -> (
              Hashtbl.replace seen n.G.op ();
              match Signature.find sg n.G.op with
              | Some d -> Some d
              | None -> encode_fail "operator %s is not declared" (n.G.op :> string))
          | _ -> None)
        live
    in
    put_list payload put_decl decls;
    put_list payload
      (fun buf (n : G.node) ->
        match classify n with
        | `Leaf is_input ->
            put_u8 buf (if is_input then t_input else t_opaque);
            put_string buf (base_name n.G.op);
            (match n.G.ty with
            | Some ty -> put_ty buf ty
            | None -> encode_fail "leaf %%%d has no type" n.G.id)
        | `Const ->
            put_u8 buf t_const;
            (match n.G.ty with
            | Some ty -> put_string buf (Dtype.to_string ty.Ty.dtype)
            | None -> put_string buf (Dtype.to_string Dtype.F32));
            put_signed buf (List.assoc "value_x1000" n.G.attrs)
        | `Op ->
            put_u8 buf t_op;
            put_string buf (n.G.op :> string);
            put_list buf
              (fun buf (k, v) ->
                put_string buf k;
                put_signed buf v)
              n.G.attrs;
            put_list buf
              (fun buf (i : G.node) ->
                match Hashtbl.find_opt index i.G.id with
                | Some idx -> put_varint buf idx
                | None ->
                    encode_fail "node %%%d reads dead node %%%d" n.G.id i.G.id)
              n.G.inputs;
            put_ty_opt buf n.G.ty)
      live;
    put_list payload
      (fun buf (o : G.node) ->
        match Hashtbl.find_opt index o.G.id with
        | Some idx -> put_varint buf idx
        | None -> encode_fail "output %%%d is not live" o.G.id)
      (G.outputs g);
    let payload = Buffer.contents payload in
    let out = Buffer.create (String.length payload + 24) in
    Buffer.add_string out magic;
    put_varint out version;
    put_varint out (fnv1a payload);
    put_varint out (String.length payload);
    Buffer.add_string out payload;
    Buffer.contents out

  let decode_into ~sg ~infer bytes =
    let c = { bytes; off = 0 } in
    match
      let m = if String.length bytes >= 4 then String.sub bytes 0 4 else "" in
      if m <> magic then fail c "bad magic (not a PyPM graph binary)";
      c.off <- 4;
      let v = get_varint c in
      if v <> version then fail c "unsupported graph format version %d" v;
      let checksum = get_varint c in
      let len = get_varint c in
      if c.off + len <> String.length bytes then fail c "payload length mismatch";
      if fnv1a (String.sub bytes c.off len) <> checksum then
        fail c "checksum mismatch";
      let decls = get_listc c get_decl in
      List.iter
        (fun (name, arity, output_arity, op_class, attrs) ->
          try
            ignore
              (Signature.declare sg ~output_arity ~op_class ~attrs ~arity name)
          with Invalid_argument msg -> fail c "conflicting declaration: %s" msg)
        decls;
      let g = G.create ~sg ~infer () in
      let n_nodes = get_count c in
      let nodes = Array.make (max n_nodes 1) None in
      for i = 0 to n_nodes - 1 do
        let node =
          match get_u8 c with
          | t when t = t_input || t = t_opaque -> (
              let name = get_string c in
              let ty = get_ty c in
              try
                if t = t_input then G.input g ~name ty
                else G.opaque g ~name ty
              with Invalid_argument msg -> fail c "leaf %d: %s" i msg)
          | t when t = t_const -> (
              let ds = get_string c in
              let stored = get_signed c in
              match Dtype.of_string ds with
              | None -> fail c "constant %d: unknown dtype %S" i ds
              | Some dtype -> (
                  try G.constant g ~dtype (float_of_int stored /. 1000.)
                  with Invalid_argument msg -> fail c "constant %d: %s" i msg))
          | t when t = t_op -> (
              let op = get_string c in
              let attrs =
                get_listc c (fun c ->
                    let k = get_string c in
                    let v = get_signed c in
                    (k, v))
              in
              let inputs =
                get_listc c (fun c ->
                    let idx = get_varint c in
                    if idx >= i then
                      fail c "node %d reads forward reference %d" i idx;
                    match nodes.(idx) with
                    | Some n -> n
                    | None -> fail c "node %d reads undecoded slot %d" i idx)
              in
              let ty = get_ty_opt c in
              try
                match ty with
                | Some ty -> G.add_with_ty g op ~attrs ~ty inputs
                | None -> G.add g op ~attrs inputs
              with Invalid_argument msg -> fail c "node %d (%s): %s" i op msg)
          | t -> fail c "bad node tag %d" t
        in
        nodes.(i) <- Some node
      done;
      let outs =
        get_listc c (fun c ->
            let idx = get_varint c in
            if idx >= n_nodes then fail c "output index %d out of range" idx;
            match nodes.(idx) with
            | Some n -> n
            | None -> fail c "output index %d undecoded" idx)
      in
      if c.off <> String.length bytes then fail c "trailing bytes";
      G.set_outputs g outs;
      (match G.validate g with
      | [] -> ()
      | vs -> fail c "decoded graph fails validation: %s" (String.concat "; " vs));
      g
    with
    | g -> Ok g
    | exception Corrupt (off, msg) ->
        Error (Printf.sprintf "corrupt graph binary at byte %d: %s" off msg)

  let decode bytes =
    decode_into ~sg:(Signature.create ())
      ~infer:(Pypm_tensor.Infer.create ())
      bytes
end

module Wire = struct
  type nonrec cursor = cursor

  let cursor bytes = { bytes; off = 0 }
  let offset c = c.off
  let remaining c = String.length c.bytes - c.off
  let put_u8 = put_u8
  let get_u8 = get_u8
  let put_varint = put_varint
  let get_varint = get_varint
  let put_signed = put_signed
  let get_signed = get_signed
  let put_bool = put_bool
  let get_bool = get_bool
  let put_string = put_string
  let get_string = get_string
  let put_f64 = put_f64
  let get_f64 = get_f64
  let put_list = put_list
  let get_list = get_listc
  let get_count = get_count
  let fnv1a = fnv1a
end
