module W = Codec.Wire
module Pass = Pypm_engine.Pass

(* v2 added [options.domains] (intra-pass parallelism). v3 added the
   [Health] probe and the self-healing responses ([Deadline_exceeded],
   [Draining], [Worker_crashed], [Health_report]). Option blocks have no
   per-field framing and response tags must mean the same thing on both
   sides, so each addition is a wire break: old peers get a structured
   "unsupported protocol version" error, not garbage. *)
let version = 3

(* Each message payload leads with a magic+version pair so a client
   talking to the wrong service (or the wrong protocol revision) gets a
   structured decode error, not garbage fields. *)
let magic = "PMRP"

(* ------------------------------------------------------------------ *)
(* Option block                                                        *)
(* ------------------------------------------------------------------ *)

type options = {
  engine : string;  (* "naive" | "index" | "plan" | "egraph" *)
  fuel : int;
  max_rewrites : int;
  deadline_s : float option;
  quarantine_after : int;
  check_types : bool;
  strict : bool;
  fault_seed : int;
  fault_rate : float;
  fault_points : string list;
  domains : int;  (* matching domains per pass; 1 = sequential *)
}

let default_options =
  {
    engine = "plan";
    fuel = 200_000;
    max_rewrites = 10_000;
    deadline_s = None;
    quarantine_after = 5;
    check_types = true;
    strict = false;
    fault_seed = 0;
    fault_rate = 0.;
    fault_points = [];
    domains = 1;
  }

let put_options buf (o : options) =
  W.put_string buf o.engine;
  W.put_varint buf o.fuel;
  W.put_varint buf o.max_rewrites;
  (match o.deadline_s with
  | None -> W.put_bool buf false
  | Some d ->
      W.put_bool buf true;
      W.put_f64 buf d);
  W.put_varint buf o.quarantine_after;
  W.put_bool buf o.check_types;
  W.put_bool buf o.strict;
  W.put_varint buf o.fault_seed;
  W.put_f64 buf o.fault_rate;
  W.put_list buf W.put_string o.fault_points;
  W.put_varint buf o.domains

let get_options c : options =
  let engine = W.get_string c in
  let fuel = W.get_varint c in
  let max_rewrites = W.get_varint c in
  let deadline_s = if W.get_bool c then Some (W.get_f64 c) else None in
  let quarantine_after = W.get_varint c in
  let check_types = W.get_bool c in
  let strict = W.get_bool c in
  let fault_seed = W.get_varint c in
  let fault_rate = W.get_f64 c in
  let fault_points = W.get_list c W.get_string in
  let domains = W.get_varint c in
  {
    engine;
    fuel;
    max_rewrites;
    deadline_s;
    quarantine_after;
    check_types;
    strict;
    fault_seed;
    fault_rate;
    fault_points;
    domains;
  }

(* The cache key's option component: the encoded option block itself.
   Every field above changes what the pass can produce, so every field
   participates; two requests with byte-equal blocks are interchangeable. *)
let options_fingerprint o =
  let buf = Buffer.create 64 in
  put_options buf o;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Structured pass errors on the wire                                  *)
(* ------------------------------------------------------------------ *)

let put_error buf (e : Pass.error) =
  match e with
  | Pass.Rule_failed { pattern; rule; reason } ->
      W.put_u8 buf 0;
      W.put_string buf pattern;
      W.put_string buf rule;
      W.put_string buf reason
  | Pass.Guard_raised { pattern; rule; reason } ->
      W.put_u8 buf 1;
      W.put_string buf pattern;
      W.put_string buf rule;
      W.put_string buf reason
  | Pass.Engine_unavailable { engine; reason } ->
      W.put_u8 buf 2;
      W.put_string buf engine;
      W.put_string buf reason

let get_error c : Pass.error =
  match W.get_u8 c with
  | 0 ->
      let pattern = W.get_string c in
      let rule = W.get_string c in
      let reason = W.get_string c in
      Pass.Rule_failed { pattern; rule; reason }
  | 1 ->
      let pattern = W.get_string c in
      let rule = W.get_string c in
      let reason = W.get_string c in
      Pass.Guard_raised { pattern; rule; reason }
  | 2 ->
      let engine = W.get_string c in
      let reason = W.get_string c in
      Pass.Engine_unavailable { engine; reason }
  | t -> raise (Codec.Corrupt (W.offset c, Printf.sprintf "bad error tag %d" t))

(* ------------------------------------------------------------------ *)
(* Envelopes                                                           *)
(* ------------------------------------------------------------------ *)

type program_spec = Named of string | Inline of string

type request =
  | Optimize of {
      id : int;
      program : program_spec;
      options : options;
      graph : string;
    }
  | Stats of { id : int }
  | Health of { id : int }

type outcome = {
  graph : string;
  stats_json : string;
  errors : Pass.error list;
  fatal : Pass.error option;
}

type server_stats = {
  served : int;
  shed : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  cache_bytes : int;
  workers : int;
  uptime_s : float;
}

type health = {
  status : string;  (* "ok" | "draining" *)
  uptime_s : float;
  workers_alive : int;
  workers_total : int;
  restarts : int;
  poisoned : int;
  inflight : int;
}

type response =
  | Result of { id : int; cached : bool; service_s : float; body : string }
  | Stats_report of { id : int; stats : server_stats }
  | Overloaded of { id : int }
  | Bad_request of { id : int; reason : string }
  | Server_error of { id : int; reason : string }
  | Deadline_exceeded of { id : int; elapsed_s : float }
  | Draining of { id : int }
  | Worker_crashed of { id : int; reason : string }
  | Health_report of { id : int; health : health }

let response_id = function
  | Result { id; _ }
  | Stats_report { id; _ }
  | Overloaded { id }
  | Bad_request { id; _ }
  | Server_error { id; _ }
  | Deadline_exceeded { id; _ }
  | Draining { id }
  | Worker_crashed { id; _ }
  | Health_report { id; _ } ->
      id

(* ------------------------------------------------------------------ *)
(* Outcome bodies                                                      *)
(*                                                                     *)
(* The body is encoded separately from the response header so the      *)
(* result cache can store the cold body bytes verbatim: a warm         *)
(* response is byte-identical to the cold one by construction, while   *)
(* per-service fields (cached flag, service time) live in the header   *)
(* outside the cached bytes.                                           *)
(* ------------------------------------------------------------------ *)

let encode_outcome (o : outcome) =
  let buf = Buffer.create (String.length o.graph + 256) in
  W.put_string buf o.graph;
  W.put_string buf o.stats_json;
  W.put_list buf put_error o.errors;
  (match o.fatal with
  | None -> W.put_bool buf false
  | Some e ->
      W.put_bool buf true;
      put_error buf e);
  Buffer.contents buf

let decode_outcome bytes =
  let c = W.cursor bytes in
  match
    let graph = W.get_string c in
    let stats_json = W.get_string c in
    let errors = W.get_list c get_error in
    let fatal = if W.get_bool c then Some (get_error c) else None in
    if W.remaining c <> 0 then
      raise (Codec.Corrupt (W.offset c, "trailing bytes"));
    { graph; stats_json; errors; fatal }
  with
  | o -> Ok o
  | exception Codec.Corrupt (off, msg) ->
      Error (Printf.sprintf "corrupt outcome at byte %d: %s" off msg)

(* ------------------------------------------------------------------ *)
(* Message encoding                                                    *)
(* ------------------------------------------------------------------ *)

let header buf =
  Buffer.add_string buf magic;
  W.put_varint buf version

let check_header c =
  let m = String.init 4 (fun _ -> Char.chr (W.get_u8 c)) in
  if m <> magic then
    raise (Codec.Corrupt (W.offset c, "bad magic (not a PyPM serve message)"));
  let v = W.get_varint c in
  if v <> version then
    raise
      (Codec.Corrupt
         (W.offset c, Printf.sprintf "unsupported protocol version %d" v))

let encode_request (r : request) =
  let buf = Buffer.create 256 in
  header buf;
  (match r with
  | Optimize { id; program; options; graph } ->
      W.put_u8 buf 0;
      W.put_varint buf id;
      (match program with
      | Named n ->
          W.put_u8 buf 0;
          W.put_string buf n
      | Inline bytes ->
          W.put_u8 buf 1;
          W.put_string buf bytes);
      put_options buf options;
      W.put_string buf graph
  | Stats { id } ->
      W.put_u8 buf 1;
      W.put_varint buf id
  | Health { id } ->
      W.put_u8 buf 2;
      W.put_varint buf id);
  Buffer.contents buf

let decode_request bytes =
  let c = W.cursor bytes in
  match
    check_header c;
    let r =
      match W.get_u8 c with
      | 0 ->
          let id = W.get_varint c in
          let program =
            match W.get_u8 c with
            | 0 -> Named (W.get_string c)
            | 1 -> Inline (W.get_string c)
            | t ->
                raise
                  (Codec.Corrupt
                     (W.offset c, Printf.sprintf "bad program-spec tag %d" t))
          in
          let options = get_options c in
          let graph = W.get_string c in
          Optimize { id; program; options; graph }
      | 1 -> Stats { id = W.get_varint c }
      | 2 -> Health { id = W.get_varint c }
      | t ->
          raise
            (Codec.Corrupt (W.offset c, Printf.sprintf "bad request tag %d" t))
    in
    if W.remaining c <> 0 then
      raise (Codec.Corrupt (W.offset c, "trailing bytes"));
    r
  with
  | r -> Ok r
  | exception Codec.Corrupt (off, msg) ->
      Error (Printf.sprintf "corrupt request at byte %d: %s" off msg)

let encode_response (r : response) =
  let buf = Buffer.create 256 in
  header buf;
  (match r with
  | Result { id; cached; service_s; body } ->
      W.put_u8 buf 0;
      W.put_varint buf id;
      W.put_bool buf cached;
      W.put_f64 buf service_s;
      W.put_string buf body
  | Stats_report { id; stats } ->
      W.put_u8 buf 1;
      W.put_varint buf id;
      W.put_varint buf stats.served;
      W.put_varint buf stats.shed;
      W.put_varint buf stats.errors;
      W.put_varint buf stats.cache_hits;
      W.put_varint buf stats.cache_misses;
      W.put_varint buf stats.cache_evictions;
      W.put_varint buf stats.cache_entries;
      W.put_varint buf stats.cache_bytes;
      W.put_varint buf stats.workers;
      W.put_f64 buf stats.uptime_s
  | Overloaded { id } ->
      W.put_u8 buf 2;
      W.put_varint buf id
  | Bad_request { id; reason } ->
      W.put_u8 buf 3;
      W.put_varint buf id;
      W.put_string buf reason
  | Server_error { id; reason } ->
      W.put_u8 buf 4;
      W.put_varint buf id;
      W.put_string buf reason
  | Deadline_exceeded { id; elapsed_s } ->
      W.put_u8 buf 5;
      W.put_varint buf id;
      W.put_f64 buf elapsed_s
  | Draining { id } ->
      W.put_u8 buf 6;
      W.put_varint buf id
  | Worker_crashed { id; reason } ->
      W.put_u8 buf 7;
      W.put_varint buf id;
      W.put_string buf reason
  | Health_report { id; health } ->
      W.put_u8 buf 8;
      W.put_varint buf id;
      W.put_string buf health.status;
      W.put_f64 buf health.uptime_s;
      W.put_varint buf health.workers_alive;
      W.put_varint buf health.workers_total;
      W.put_varint buf health.restarts;
      W.put_varint buf health.poisoned;
      W.put_varint buf health.inflight);
  Buffer.contents buf

let decode_response bytes =
  let c = W.cursor bytes in
  match
    check_header c;
    let r =
      match W.get_u8 c with
      | 0 ->
          let id = W.get_varint c in
          let cached = W.get_bool c in
          let service_s = W.get_f64 c in
          let body = W.get_string c in
          Result { id; cached; service_s; body }
      | 1 ->
          let id = W.get_varint c in
          let served = W.get_varint c in
          let shed = W.get_varint c in
          let errors = W.get_varint c in
          let cache_hits = W.get_varint c in
          let cache_misses = W.get_varint c in
          let cache_evictions = W.get_varint c in
          let cache_entries = W.get_varint c in
          let cache_bytes = W.get_varint c in
          let workers = W.get_varint c in
          let uptime_s = W.get_f64 c in
          Stats_report
            {
              id;
              stats =
                {
                  served;
                  shed;
                  errors;
                  cache_hits;
                  cache_misses;
                  cache_evictions;
                  cache_entries;
                  cache_bytes;
                  workers;
                  uptime_s;
                };
            }
      | 2 -> Overloaded { id = W.get_varint c }
      | 3 ->
          let id = W.get_varint c in
          let reason = W.get_string c in
          Bad_request { id; reason }
      | 4 ->
          let id = W.get_varint c in
          let reason = W.get_string c in
          Server_error { id; reason }
      | 5 ->
          let id = W.get_varint c in
          let elapsed_s = W.get_f64 c in
          Deadline_exceeded { id; elapsed_s }
      | 6 -> Draining { id = W.get_varint c }
      | 7 ->
          let id = W.get_varint c in
          let reason = W.get_string c in
          Worker_crashed { id; reason }
      | 8 ->
          let id = W.get_varint c in
          let status = W.get_string c in
          let uptime_s = W.get_f64 c in
          let workers_alive = W.get_varint c in
          let workers_total = W.get_varint c in
          let restarts = W.get_varint c in
          let poisoned = W.get_varint c in
          let inflight = W.get_varint c in
          Health_report
            {
              id;
              health =
                {
                  status;
                  uptime_s;
                  workers_alive;
                  workers_total;
                  restarts;
                  poisoned;
                  inflight;
                };
            }
      | t ->
          raise
            (Codec.Corrupt (W.offset c, Printf.sprintf "bad response tag %d" t))
    in
    if W.remaining c <> 0 then
      raise (Codec.Corrupt (W.offset c, "trailing bytes"));
    r
  with
  | r -> Ok r
  | exception Codec.Corrupt (off, msg) ->
      Error (Printf.sprintf "corrupt response at byte %d: %s" off msg)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let buf = Buffer.create (String.length payload + 5) in
  W.put_varint buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

module Reader = struct
  (* An incremental deframer over a byte stream: feed whatever the socket
     produced, pull zero or more complete frames out. The length prefix is
     parsed byte-by-byte so a frame split anywhere — even inside the
     varint — resumes cleanly. *)
  type t = {
    max_frame : int;
    buf : Buffer.t;
    mutable len : int option;  (* parsed length of the pending frame *)
    mutable vacc : int;  (* varint accumulator *)
    mutable vshift : int;
    mutable dead : string option;  (* sticky protocol error *)
  }

  let default_max_frame = 64 * 1024 * 1024

  let create ?(max_frame = default_max_frame) () =
    {
      max_frame;
      buf = Buffer.create 4096;
      len = None;
      vacc = 0;
      vshift = 0;
      dead = None;
    }

  let feed r s = if r.dead = None then Buffer.add_string r.buf s

  (* Shift the buffer left by [n] consumed bytes. Linear in the residue,
     which is fine: frames are small relative to feeds. *)
  let consume r n =
    let rest = Buffer.sub r.buf n (Buffer.length r.buf - n) in
    Buffer.clear r.buf;
    Buffer.add_string r.buf rest

  let rec next r =
    match r.dead with
    | Some msg -> `Error msg
    | None -> (
        match r.len with
        | None ->
            (* resume the length varint *)
            let n = Buffer.length r.buf in
            let rec parse i =
              if i >= n then begin
                consume r i;
                `Await
              end
              else
                let b = Char.code (Buffer.nth r.buf i) in
                if r.vshift > 62 then begin
                  r.dead <- Some "frame length varint too long";
                  `Error "frame length varint too long"
                end
                else begin
                  r.vacc <- r.vacc lor ((b land 0x7f) lsl r.vshift);
                  r.vshift <- r.vshift + 7;
                  if b land 0x80 = 0 then
                    (* [vacc < 0]: the 9th varint byte can shift bits past
                       the sign (0x40 lsl 56 = 2^62 wraps to min_int), and a
                       negative "length" would sail under the max_frame
                       check into Buffer.sub — reject it as the absurd
                       frame it is. *)
                    if r.vacc < 0 || r.vacc > r.max_frame then begin
                      r.dead <-
                        Some
                          (Printf.sprintf "frame of %d bytes exceeds the %d limit"
                             r.vacc r.max_frame);
                      next r
                    end
                    else begin
                      r.len <- Some r.vacc;
                      r.vacc <- 0;
                      r.vshift <- 0;
                      consume r (i + 1);
                      next r
                    end
                  else parse (i + 1)
                end
            in
            parse 0
        | Some len ->
            if Buffer.length r.buf < len then `Await
            else begin
              let payload = Buffer.sub r.buf 0 len in
              consume r len;
              r.len <- None;
              `Frame payload
            end)
end
