(** The portable pattern-binary format.

    PyPM's frontend serializes elaborated patterns and rules to a binary
    format that DLCB loads at startup (paper, section 2.4). This module is
    that format: a versioned, checksummed encoding of an engine program —
    operator declarations, core patterns, and rules.

    Layout: the magic bytes ["PYPM"], a format version, an FNV-1a checksum
    of the payload, then the payload: the operator table followed by the
    pattern entries. Integers are LEB128 varints (with zigzag for the one
    signed case, literal payloads); strings are length-prefixed. Decoding
    is total: corrupt input yields [Error] with a byte offset, never an
    exception. *)

open Pypm_term

(** Current format version. Decoders accept only this version. *)
val version : int

(** Raised by {!encode} on a program the format cannot represent: a
    non-finite rule literal (NaN, infinities) or a literal beyond the
    millifloat range (|v| > 2{^52}/1000). Decoding never raises. *)
exception Encode_error of string

(** [encode program] serializes the program, including the operator
    declarations its patterns mention (looked up in the program's
    signature). Raises {!Encode_error} on unrepresentable rule literals. *)
val encode : Pypm_engine.Program.t -> string

(** [decode bytes] reconstructs a program into a fresh signature.
    The error string includes the byte offset of the failure. *)
val decode : string -> (Pypm_engine.Program.t, string) result

(** [decode_into ~sg bytes] reconstructs against an existing signature
    (declarations are merged; conflicting arities are an error). *)
val decode_into : sg:Signature.t -> string -> (Pypm_engine.Program.t, string) result

(** Write/read helpers. *)
val to_file : string -> Pypm_engine.Program.t -> unit

val of_file : string -> (Pypm_engine.Program.t, string) result

(** The wire-level integer primitives, exposed so differential and
    round-trip tests (the fuzzer's zigzag property, the min_int/max_int
    regression) can exercise them directly. *)
module Wire : sig
  type cursor

  val cursor : string -> cursor
  val offset : cursor -> int

  (** Unsigned LEB128; raises [Invalid_argument] on negative input. *)
  val put_varint : Buffer.t -> int -> unit

  val get_varint : cursor -> int

  (** Zigzag-encoded signed LEB128; total on all of [min_int, max_int]. *)
  val put_signed : Buffer.t -> int -> unit

  val get_signed : cursor -> int
end
