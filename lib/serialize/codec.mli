(** The portable pattern-binary format.

    PyPM's frontend serializes elaborated patterns and rules to a binary
    format that DLCB loads at startup (paper, section 2.4). This module is
    that format: a versioned, checksummed encoding of an engine program —
    operator declarations, core patterns, and rules.

    Layout: the magic bytes ["PYPM"], a format version, an FNV-1a checksum
    of the payload, then the payload: the operator table followed by the
    pattern entries. Integers are LEB128 varints (with zigzag for the one
    signed case, literal payloads); strings are length-prefixed. Decoding
    is total: corrupt input yields [Error] with a byte offset, never an
    exception. *)

open Pypm_term

(** Current format version. Decoders accept only this version. *)
val version : int

(** Raised by {!encode} on a program the format cannot represent: a
    non-finite rule literal (NaN, infinities) or a literal beyond the
    millifloat range (|v| > 2{^52}/1000). Decoding never raises. *)
exception Encode_error of string

(** [encode program] serializes the program, including the operator
    declarations its patterns mention (looked up in the program's
    signature). Raises {!Encode_error} on unrepresentable rule literals. *)
val encode : Pypm_engine.Program.t -> string

(** [decode bytes] reconstructs a program into a fresh signature.
    The error string includes the byte offset of the failure. *)
val decode : string -> (Pypm_engine.Program.t, string) result

(** [decode_into ~sg bytes] reconstructs against an existing signature
    (declarations are merged; conflicting arities are an error). *)
val decode_into : sg:Signature.t -> string -> (Pypm_engine.Program.t, string) result

(** Write/read helpers. *)
val to_file : string -> Pypm_engine.Program.t -> unit

val of_file : string -> (Pypm_engine.Program.t, string) result

(** {1 Computation graphs}

    The graph binary format (magic ["PYPG"]), same envelope as the
    program format: version, FNV-1a checksum, length-prefixed payload.
    The payload ships the operator declarations the graph's operator
    nodes reference, then the live nodes in topological order (inputs
    referenced by index), then the output indices.

    Leaves travel as their {e base name} (the prefix of the operator
    symbol before the uid suffix) plus their type; the decoder mints
    fresh symbols. Node ids and symbol uids are therefore {e not}
    preserved — the isomorphism-invariant fingerprint
    ([Pypm_fuzz.Fuzz.fingerprint]) is, which is what result caching and
    the round-trip fuzz property compare.

    Decoding is total: corrupt input (truncation, bit flips, implausible
    lengths, forward references, validation failures) yields [Error]
    with a byte offset, never an exception. *)
module Graphs : sig
  val version : int

  (** Raises {!Encode_error} on a graph the format cannot represent
      (an undeclared operator, an untyped leaf, a dead output). *)
  val encode : Pypm_graph.Graph.t -> string

  (** [decode_into ~sg ~infer bytes] rebuilds the graph against an
      existing signature and inference registry (the serve worker's
      environment); shipped declarations are merged into [sg]. *)
  val decode_into :
    sg:Signature.t ->
    infer:Pypm_tensor.Infer.t ->
    string ->
    (Pypm_graph.Graph.t, string) result

  (** [decode bytes] rebuilds into a fresh signature and an empty
      inference registry (decoded operator nodes keep their shipped
      types; nothing is re-inferred). *)
  val decode : string -> (Pypm_graph.Graph.t, string) result
end

(** The wire-level primitives, exposed so the serve protocol and the
    differential / round-trip tests (the fuzzer's zigzag property, the
    min_int/max_int regression) can build on them directly. *)
module Wire : sig
  type cursor

  val cursor : string -> cursor
  val offset : cursor -> int

  (** Bytes left after the cursor. *)
  val remaining : cursor -> int

  val put_u8 : Buffer.t -> int -> unit
  val get_u8 : cursor -> int

  (** Unsigned LEB128; raises [Invalid_argument] on negative input. *)
  val put_varint : Buffer.t -> int -> unit

  val get_varint : cursor -> int

  (** Zigzag-encoded signed LEB128; total on all of [min_int, max_int]. *)
  val put_signed : Buffer.t -> int -> unit

  val get_signed : cursor -> int
  val put_bool : Buffer.t -> bool -> unit
  val get_bool : cursor -> bool

  (** Length-prefixed bytes. *)
  val put_string : Buffer.t -> string -> unit

  val get_string : cursor -> string

  (** IEEE-754 bits as 8 raw little-endian bytes (varints cannot carry
      all 64 float bits through OCaml's 63-bit int). *)
  val put_f64 : Buffer.t -> float -> unit

  val get_f64 : cursor -> float
  val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

  (** Counted list read; rejects lengths the remaining input cannot
      satisfy (a bit-flipped length byte must not drive allocation). *)
  val get_list : cursor -> (cursor -> 'a) -> 'a list

  (** A plausibility-checked count (see {!get_list}). *)
  val get_count : cursor -> int

  val fnv1a : string -> int
end

(** Raised internally by decoders on corrupt input and caught before the
    API boundary; exposed so {!Wire}-based decoders (the serve protocol)
    can fail the same way. Carries the byte offset and a message. *)
exception Corrupt of int * string
