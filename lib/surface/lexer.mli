(** Lexer for the textual PyPM surface language.

    The surface language is the repository's stand-alone concrete syntax
    for PyPM programs (the role Python syntax plays in the paper). Line
    comments start with [//] or [#]. *)

type pos = { line : int; col : int }

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | EQ  (** [=] *)
  | EQEQ
  | NEQ
  | LT
  | LE  (** [<=], also the match-constraint arrow *)
  | ANDAND
  | OROR
  | BANG
  | PLUS
  | MINUS
  | STAR
  | PERCENT
  | ARROW  (** [->] *)
  | EOF

type spanned = { tok : token; pos : pos }

exception Lex_error of pos * string

(** [tokenize src] lexes the whole input; the result always ends with
    [EOF]. Raises {!Lex_error} — and nothing else — on malformed input: an
    unexpected character, an out-of-range numeric literal, an unsupported
    escape sequence, or an unterminated string. String literals support
    backslash escapes for the quote, the backslash itself and newline,
    symmetric with {!quote_string} (and with the frontend printer
    {!Pypm_dsl.Ast.pp_string_lit}). *)
val tokenize : string -> spanned array

(** [quote_string s] is the surface-syntax literal denoting [s]: surrounded
    by double quotes, with quotes, backslashes and newlines escaped. For
    every [s], lexing [quote_string s] yields [STRING s]. *)
val quote_string : string -> string

val token_to_string : token -> string
val pp_pos : Format.formatter -> pos -> unit
