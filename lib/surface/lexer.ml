type pos = { line : int; col : int }

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | EQ
  | EQEQ
  | NEQ
  | LT
  | LE
  | ANDAND
  | OROR
  | BANG
  | PLUS
  | MINUS
  | STAR
  | PERCENT
  | ARROW
  | EOF

type spanned = { tok : token; pos : pos }

exception Lex_error of pos * string

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | EQ -> "="
  | EQEQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | PERCENT -> "%"
  | ARROW -> "->"
  | EOF -> "end of input"

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 and bol = ref 0 in
  let pos () = { line = !line; col = !i - !bol + 1 } in
  let emit tok p = toks := { tok; pos = p } :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = '\n' then (
      incr line;
      incr i;
      bol := !i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' || (c = '/' && peek 1 = Some '/') then (
      while !i < n && src.[!i] <> '\n' do
        incr i
      done)
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (IDENT (String.sub src start (!i - start))) p)
    else if is_digit c then (
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then (
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        let lit = String.sub src start (!i - start) in
        match float_of_string_opt lit with
        | Some f -> emit (FLOAT f) p
        | None ->
            raise
              (Lex_error (p, Printf.sprintf "invalid float literal %s" lit)))
      else
        let lit = String.sub src start (!i - start) in
        match int_of_string_opt lit with
        | Some v -> emit (INT v) p
        | None ->
            raise
              (Lex_error
                 (p, Printf.sprintf "integer literal %s out of range" lit)))
    else if c = '"' then (
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '"' then (
          closed := true;
          incr i)
        else if src.[!i] = '\n' then
          raise (Lex_error (p, "unterminated string literal"))
        else if src.[!i] = '\\' then (
          if !i + 1 >= n then
            raise (Lex_error (p, "unterminated string literal"));
          (match src.[!i + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | e ->
              raise
                (Lex_error
                   ( p,
                     Printf.sprintf
                       "unsupported escape sequence \\%c in string literal" e
                   )));
          i := !i + 2)
        else (
          Buffer.add_char buf src.[!i];
          incr i)
      done;
      if not !closed then raise (Lex_error (p, "unterminated string literal"));
      emit (STRING (Buffer.contents buf)) p)
    else
      let two tok =
        emit tok p;
        i := !i + 2
      in
      let one tok =
        emit tok p;
        incr i
      in
      match (c, peek 1) with
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '-', Some '>' -> two ARROW
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | '.', _ -> one DOT
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '!', _ -> one BANG
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '%', _ -> one PERCENT
      | _ ->
          raise (Lex_error (p, Printf.sprintf "unexpected character %C" c))
  done;
  emit EOF (pos ());
  Array.of_list (List.rev !toks)
