open Pypm_term
open Pypm_pattern

(* One trie node. Edges are kept in insertion order, but execution order
   does not matter for correctness: the plan records the lowest branch
   index that succeeds for each pattern, which is the matcher's
   first-witness order regardless of trie traversal order. *)
type trie = {
  mutable edges : (Skeleton.instr * trie) list;
  mutable accepts : (int * int) list;  (** (compiled slot, branch index) *)
}

type entry_kind = Compiled of int | Fallback of Symbol.Set.t option

type t = {
  root : trie;
  slot_names : string array;
  all_kinds : (string * entry_kind) list;
  n_slots : int;
  branch_count : int;
  instr_total : int;
  pruned_counts : (string * int) list;
      (** per compiled pattern: branches dropped by subsumption pruning *)
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let rec insert node instrs accept =
  match instrs with
  | [] -> node.accepts <- node.accepts @ [ accept ]
  | i :: rest ->
      let child =
        match
          List.find_opt (fun (j, _) -> Skeleton.instr_equal i j) node.edges
        with
        | Some (_, c) -> c
        | None ->
            let c = { edges = []; accepts = [] } in
            node.edges <- node.edges @ [ (i, c) ];
            c
      in
      insert child rest accept

(* Drop branches subsumed by an earlier KEPT branch of the same pattern.
   Sound for first-witness semantics: if branch [j < i] succeeds whenever
   branch [i] does, then [i] can never be the lowest-index success, so
   removing it leaves [match_node]'s result (lowest succeeding b_index and
   its bindings) unchanged on every subject. Comparing only against kept
   branches is conservative — a kept subsumer of a pruned branch also
   subsumes whatever that branch would have pruned transitively. *)
let prune_branches branches =
  let kept =
    List.fold_left
      (fun kept (b : Skeleton.branch) ->
        if List.exists (fun k -> Skeleton.branch_subsumes k b) kept then kept
        else b :: kept)
      [] branches
  in
  List.rev kept

let compile ?(max_branches = 128) ?(prune_subsumed = true) entries =
  let root = { edges = []; accepts = [] } in
  let slot = ref 0 in
  let instr_total = ref 0 and branch_count = ref 0 in
  let rev_names = ref [] in
  let rev_pruned = ref [] in
  let all_kinds =
    List.map
      (fun (name, p) ->
        match Skeleton.extract ~max_branches p with
        | Some branches ->
            let kept =
              if prune_subsumed then prune_branches branches else branches
            in
            let dropped = List.length branches - List.length kept in
            if dropped > 0 then rev_pruned := (name, dropped) :: !rev_pruned;
            let s = !slot in
            incr slot;
            rev_names := name :: !rev_names;
            List.iter
              (fun (b : Skeleton.branch) ->
                instr_total := !instr_total + List.length b.instrs;
                incr branch_count;
                insert root b.instrs (s, b.b_index))
              kept;
            (name, Compiled (List.length kept))
        | None -> (name, Fallback (Pattern.root_heads p)))
      entries
  in
  {
    root;
    slot_names = Array.of_list (List.rev !rev_names);
    all_kinds;
    n_slots = !slot;
    branch_count = !branch_count;
    instr_total = !instr_total;
    pruned_counts = List.rev !rev_pruned;
  }

let kinds t = t.all_kinds
let kind t name = List.assoc_opt name t.all_kinds
let pruned t = t.pruned_counts

let compiled_names t =
  List.filter_map
    (function n, Compiled _ -> Some n | _, Fallback _ -> None)
    t.all_kinds

let fallback_names t =
  List.filter_map
    (function n, Fallback _ -> Some n | _, Compiled _ -> None)
    t.all_kinds

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Per-domain, like [Matcher.visits]: the serve worker pool walks plans
   from several domains at once, and each domain's pass reads its own
   step totals. *)
let steps_last_key = Domain.DLS.new_key (fun () -> ref 0)
let steps_cum_key = Domain.DLS.new_key (fun () -> ref 0)
let last_steps () = !(Domain.DLS.get steps_last_key)
let cumulative_steps () = !(Domain.DLS.get steps_cum_key)
let reset_cumulative_steps () = Domain.DLS.get steps_cum_key := 0

let rec sub t = function
  | [] -> Some t
  | i :: rest -> (
      match List.nth_opt (Term.args t) i with
      | Some u -> sub u rest
      | None -> None)

(* Evaluate one instruction. [None] fails the branch — structurally the
   same outcomes as the corresponding matcher steps under the Backtrack
   policy (a guard that cannot be evaluated fails). *)
let eval interp subject theta phi (ins : Skeleton.instr) =
  match ins with
  | Check_head (p, f, n) -> (
      match sub subject p with
      | Some u
        when Symbol.equal (Term.head u) f && List.length (Term.args u) = n ->
          Some (theta, phi)
      | _ -> None)
  | Check_arity (p, n) -> (
      match sub subject p with
      | Some u when List.length (Term.args u) = n -> Some (theta, phi)
      | _ -> None)
  | Bind_var (p, x) -> (
      match sub subject p with
      | None -> None
      | Some u -> (
          match Subst.bind x u theta with
          | Ok theta -> Some (theta, phi)
          | Error (`Conflict _) -> None))
  | Bind_fvar (p, f) -> (
      match sub subject p with
      | None -> None
      | Some u -> (
          match Fsubst.bind f (Term.head u) phi with
          | Ok phi -> Some (theta, phi)
          | Error (`Conflict _) -> None))
  | Check_guard g ->
      if Guard.eval interp theta phi g = Some true then Some (theta, phi)
      else None
  | Check_bound x -> if Subst.mem x theta then Some (theta, phi) else None
  | Check_fbound f -> if Fsubst.mem f phi then Some (theta, phi) else None

let match_node t ~interp subject =
  let t0 = Pypm_obs.Obs.monotonic () in
  let steps_last = Domain.DLS.get steps_last_key in
  steps_last := 0;
  let best_idx = Array.make (max t.n_slots 1) max_int in
  let best_wit = Array.make (max t.n_slots 1) None in
  let rec go node theta phi =
    List.iter
      (fun (slot, bidx) ->
        if bidx < best_idx.(slot) then begin
          best_idx.(slot) <- bidx;
          best_wit.(slot) <- Some (theta, phi)
        end)
      node.accepts;
    List.iter
      (fun (ins, child) ->
        incr steps_last;
        match eval interp subject theta phi ins with
        | Some (theta', phi') -> go child theta' phi'
        | None -> ())
      node.edges
  in
  go t.root Subst.empty Fsubst.empty;
  let steps_cum = Domain.DLS.get steps_cum_key in
  steps_cum := !steps_cum + !steps_last;
  let res = ref [] in
  for slot = t.n_slots - 1 downto 0 do
    match best_wit.(slot) with
    | Some w -> res := (t.slot_names.(slot), w) :: !res
    | None -> ()
  done;
  Pypm_obs.Obs.emit
    ~dur:(Pypm_obs.Obs.monotonic () -. t0)
    (Pypm_obs.Obs.Plan_walk
       { steps = !steps_last; hits = List.length !res });
  !res

(* ------------------------------------------------------------------ *)
(* Shape                                                               *)
(* ------------------------------------------------------------------ *)

let rec count_nodes node =
  List.fold_left (fun acc (_, c) -> acc + count_nodes c) 1 node.edges

let node_count t = count_nodes t.root
let instr_total t = t.instr_total
let branch_count t = t.branch_count

let pp ppf t =
  let nodes = node_count t in
  Format.fprintf ppf
    "@[<v>plan: %d compiled pattern(s) (%d branch(es), %d instr(s), %d trie \
     node(s), %d shared), %d fallback@,"
    t.n_slots t.branch_count t.instr_total nodes
    (t.instr_total - (nodes - 1))
    (List.length (fallback_names t));
  List.iter
    (fun (name, k) ->
      match k with
      | Compiled b -> Format.fprintf ppf "  %-24s compiled (%d branches)@," name b
      | Fallback (Some heads) ->
          Format.fprintf ppf "  %-24s fallback (heads: %s)@," name
            (String.concat ", " (Symbol.Set.elements heads))
      | Fallback None -> Format.fprintf ppf "  %-24s fallback (any head)@," name)
    t.all_kinds;
  Format.fprintf ppf "@]"
