(** The pattern-set compiler: one shared matching plan for a whole library.

    [compile] turns every loaded pattern into left-to-right branch strings
    ({!Pypm_pattern.Skeleton}) and inserts them into a single
    {e discrimination trie} with prefix sharing: two branches — whether of
    the same pattern or of different patterns — that start with the same
    checks share the trie path that performs them. {!match_node} then walks
    the trie once against a subject term, advancing {e every} candidate
    pattern simultaneously, instead of running the backtracking matcher once
    per pattern the way the naive pass does.

    Patterns outside the decision fragment (recursive [mu] patterns, match
    constraints, free calls, or alternate expansions wider than the budget)
    are kept as {e fallback} entries: the plan records their root-head sets
    so the rewrite engine can prefilter them and run the backtracking
    matcher only where the head matches — never more work than the
    root-head-indexed pass.

    First-witness preservation (the property the soundness chain needs):
    for every compiled pattern [p], [match_node] reports a witness for [p]
    iff [Matcher.matches ~policy:Backtrack p t] does, and it is the same
    witness — each branch is deterministic, branches are indexed in the
    matcher's alternate-exploration order, and the plan keeps the
    lowest-index success. Property-checked in [test/test_equiv.ml] and
    [test/test_plan.ml]; argument spelled out in [doc/plan.md]. *)

open Pypm_term
open Pypm_pattern

type t

(** How one pattern was compiled. *)
type entry_kind =
  | Compiled of int  (** number of trie branches *)
  | Fallback of Symbol.Set.t option
      (** run the backtracking matcher; [Some heads] = only at nodes whose
          operator is in [heads], [None] = at every node *)

(** [compile ?max_branches ?prune_subsumed entries] builds the shared plan
    for the named patterns, in order. With [prune_subsumed] (default [true])
    a branch subsumed by an earlier kept branch of the {e same} pattern
    ({!Skeleton.branch_subsumes}) is dropped before insertion: it can never
    be the lowest-index success, so [match_node] results are identical with
    pruning on or off — only the trie is smaller. Per-pattern drop counts
    are reported by {!pruned}. *)
val compile :
  ?max_branches:int -> ?prune_subsumed:bool -> (string * Pattern.t) list -> t

(** The kind each pattern compiled to, in input order. *)
val kinds : t -> (string * entry_kind) list

val kind : t -> string -> entry_kind option
val compiled_names : t -> string list
val fallback_names : t -> string list

(** Patterns that lost branches to subsumption pruning, with the number of
    branches dropped; empty when compiled with [~prune_subsumed:false] or
    when nothing was prunable. *)
val pruned : t -> (string * int) list

(** [match_node plan ~interp t] walks the trie once against [t] and returns,
    for each compiled pattern that matches at the root of [t], its first
    witness — in input-pattern order. Fallback patterns are not consulted. *)
val match_node :
  t -> interp:Guard.interp -> Term.t -> (string * (Subst.t * Fsubst.t)) list

(** {2 Plan shape (for tests, stats and the bench harness)} *)

(** Number of trie nodes, root included. *)
val node_count : t -> int

(** Total instructions across all branch strings before sharing; the
    difference [instr_total - (node_count - 1)] is the number of
    instructions saved by prefix sharing. *)
val instr_total : t -> int

val branch_count : t -> int

(** Instructions evaluated by the most recent {!match_node} call. *)
val last_steps : unit -> int

(** Instructions evaluated by all {!match_node} calls since
    {!reset_cumulative_steps}; the plan-side analogue of
    [Matcher.cumulative_visits]. *)
val cumulative_steps : unit -> int

val reset_cumulative_steps : unit -> unit
val pp : Format.formatter -> t -> unit
