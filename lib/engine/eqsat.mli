(** Equality saturation over the graph IR: the e-graph engine's core.

    The greedy destructive pass is order-dependent — firing one rule can
    destroy the redex a later rule needed (the phase-ordering weakness the
    paper's extended version concedes). This module runs the egg-style
    alternative over a pattern program: lower the graph's outputs through
    {!Pypm_graph.Term_view}, saturate an e-graph under the program's
    convertible rules ({!Pypm_egraph.Saturate} with budgets and an anytime
    deadline), extract the cheapest equivalent of each output under the
    {!Pypm_kernels.Cost} kernel model, and splice winners back
    transactionally via [Graph.Txn] — committing only strict whole-graph
    cost improvements.

    [Pass.run ~engine:Egraph] runs this as a post-phase after the plan
    machinery, so its result is never costlier than the Plan engine's on
    the same graph, by construction.

    Guards are supported: every matched e-class carries a witness term
    from the original graph, and guards are evaluated on witnesses through
    the view's attribute interpretation exactly as the destructive engines
    evaluate them — a guard over a class with no graph witness fails
    closed. Rules whose templates carry attributes ([Rapp_attrs],
    [Rcopy_attrs]) or whose patterns need concrete witnesses ([Mu],
    [Constr], existentials) are skipped and reported, not mistranslated. *)

(** Result of converting a program's rules to saturation rewrites. *)
type conversion = {
  crules : Pypm_egraph.Saturate.rw list;
  cskipped : (string * string) list;
      (** ("pattern/rule", reason) for every unconvertible rule *)
}

(** [rules_of_program ?guards p] converts every rule of [p] it can.
    [guards] (default true) admits guarded rules — callers that will not
    supply guard evaluation (the CLI's [simplify]) pass [~guards:false] to
    skip them instead of letting them fail closed at match time. *)
val rules_of_program : ?guards:bool -> Program.t -> conversion

(** Saturation budgets, all enforced by {!Pypm_egraph.Saturate.run}. *)
type budgets = {
  iter_limit : int;  (** saturation rounds (default 12) *)
  node_limit : int;  (** stop before a round past this many e-nodes *)
  class_limit : int;  (** stop before a round past this many e-classes *)
  match_limit : int;  (** matches per rule per round *)
}

val default_budgets : budgets

type outcome = {
  rules_used : int;
  rules_skipped : int;
  sat : Pypm_egraph.Saturate.stats;
  extracted : int;  (** outputs extraction produced a term for *)
  spliced : int;  (** splices committed (strict cost improvement) *)
  splices_rejected : int;
      (** splices rolled back: cost did not improve, the build failed, or
          rewiring would have closed a cycle *)
  cost_before : float;  (** simulated seconds before the phase *)
  cost_after : float;  (** ... and after; [<= cost_before] always *)
  collected : int;  (** nodes garbage-collected after splicing *)
}

(** [phase program g] runs one saturation phase over [g]'s outputs.
    [Error reason] when the phase cannot run at all (no convertible rules,
    no outputs) — callers treat that as "nothing to do", not failure.
    [deadline] is a polled anytime cutoff: when it fires, saturation stops
    where it is and only already-extracted splices are considered.
    Emits [Sat_iteration] / [Sat_union] / [Sat_extract] obs events. *)
val phase :
  ?device:Pypm_kernels.Cost.device ->
  ?budgets:budgets ->
  ?deadline:(unit -> bool) ->
  Program.t ->
  Pypm_graph.Graph.t ->
  (outcome, string) result
