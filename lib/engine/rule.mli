(** Rewrite rules: the right-hand sides of PyPM optimizations.

    A rule attaches to a named pattern (paper, section 2: [@rule(Pat)]).
    Its body is a template over the pattern's variables, with optional
    additional assertions (the rule-level [assert]s of figure 1). When the
    pattern matches and produces substitutions, the engine runs the
    pattern's rules in definition order and fires the first whose guard
    passes, replacing the root of the match with the instantiated
    template. *)

open Pypm_term
open Pypm_graph
open Pypm_pattern

(** Replacement templates. *)
type rhs =
  | Rvar of Subst.var  (** the subgraph a pattern variable matched *)
  | Rapp of Symbol.t * rhs list  (** a new operator node *)
  | Rapp_attrs of Symbol.t * rhs list * (string * int) list
      (** a new operator node with attributes *)
  | Rfapp of Fsubst.fvar * rhs list
      (** apply the operator a function variable matched *)
  | Rcopy_attrs of Symbol.t * rhs list * Subst.var
      (** a new operator node whose attributes (stride, pad, ...) are copied
          from the node a pattern variable matched; used when fusing an
          attributed operator like a convolution *)
  | Rlit of float  (** a constant node (f32) *)

type t = {
  rule_name : string;
  pattern_name : string;  (** the pattern this rule attaches to *)
  guard : Guard.t;  (** rule-level assertions; [Guard.True] if none *)
  rhs : rhs;
}

val make : ?guard:Guard.t -> name:string -> pattern:string -> rhs -> t

(** Variables (term and function) mentioned by a template. *)
val rhs_vars : rhs -> Symbol.Set.t * Symbol.Set.t

(** [instantiate graph view theta phi rhs] materializes the template as
    graph nodes. [Rvar x] resolves through the view to the node [theta(x)]
    matched; [Rfapp F] applies [phi(F)]. Errors mention the offending
    variable or operator.

    Construction is {e atomic}: it runs inside a graph transaction
    ({!Pypm_graph.Graph.Txn}), so on [Error] — or on an exception escaping
    from node construction — every node materialized so far is rolled
    back; a failed instantiation leaves the graph's node count exactly as
    it found it. *)
val instantiate :
  Graph.t ->
  Term_view.t ->
  Subst.t ->
  Fsubst.t ->
  rhs ->
  (Graph.node, string) result

(** [check_guard view theta phi rule] evaluates the rule's assertions under
    the match's substitutions; [false] when unverifiable (assert on an
    undefined attribute does not pass). *)
val check_guard : Term_view.t -> Subst.t -> Fsubst.t -> t -> bool

val pp_rhs : Format.formatter -> rhs -> unit
val pp : Format.formatter -> t -> unit
