open Pypm_term
open Pypm_pattern

type entry = { pname : string; pattern : Pattern.t; rules : Rule.t list }
type t = { sg : Signature.t; entries : entry list }

(* Pattern names key the per-pattern statistics, the serialized form, and
   the plan's result slots; a duplicate would silently alias all three, so
   reject it at construction. *)
let make ?lint ~sg entries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : entry) ->
      if Hashtbl.mem seen e.pname then
        invalid_arg
          (Printf.sprintf
             "Program.make: duplicate pattern name %S (pattern names must \
              be unique: they identify patterns in stats, binaries and \
              plan results)"
             e.pname);
      Hashtbl.add seen e.pname ())
    entries;
  let t = { sg; entries } in
  (match lint with
  | None -> ()
  | Some linter -> (
      match Wf.errors (linter t) with
      | [] -> ()
      | errs ->
          invalid_arg
            (Printf.sprintf "Program.make: lint rejected the program:\n%s"
               (String.concat "\n"
                  (List.map (fun (d : Wf.diagnostic) -> d.Wf.message) errs)))));
  t

let entry t name =
  List.find_opt (fun e -> String.equal e.pname name) t.entries

let pattern_names t = List.map (fun e -> e.pname) t.entries

let restrict t names =
  { t with entries = List.filter (fun e -> List.mem e.pname names) t.entries }

let check t =
  List.concat_map
    (fun e ->
      let pattern_diags =
        List.map
          (fun (d : Wf.diagnostic) ->
            {
              d with
              Wf.message = Printf.sprintf "pattern %s: %s" e.pname d.Wf.message;
            })
          (Wf.check t.sg e.pattern)
      in
      let pat_vars = Pattern.free_vars e.pattern in
      let pat_fvars = Pattern.free_fvars e.pattern in
      let rule_diags =
        List.concat_map
          (fun (r : Rule.t) ->
            let vars, fvars = Rule.rhs_vars r.Rule.rhs in
            let missing =
              Symbol.Set.diff vars pat_vars |> Symbol.Set.elements
            in
            let missing_f =
              Symbol.Set.diff fvars pat_fvars |> Symbol.Set.elements
            in
            List.map
              (fun x ->
                {
                  Wf.severity = Wf.Error;
                  message =
                    Printf.sprintf
                      "rule %s for %s uses variable %s not bound by the \
                       pattern"
                      r.Rule.rule_name e.pname x;
                })
              (missing @ missing_f))
          e.rules
      in
      pattern_diags @ rule_diags)
    t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "pattern %s = %a@," e.pname Pattern.pp e.pattern;
      List.iter (fun r -> Format.fprintf ppf "  %a@," Rule.pp r) e.rules)
    t.entries;
  Format.fprintf ppf "@]"
