open Pypm_term
open Pypm_graph
open Pypm_pattern

type rhs =
  | Rvar of Subst.var
  | Rapp of Symbol.t * rhs list
  | Rapp_attrs of Symbol.t * rhs list * (string * int) list
  | Rfapp of Fsubst.fvar * rhs list
  | Rcopy_attrs of Symbol.t * rhs list * Subst.var
  | Rlit of float

type t = {
  rule_name : string;
  pattern_name : string;
  guard : Guard.t;
  rhs : rhs;
}

let make ?(guard = Guard.True) ~name ~pattern rhs =
  { rule_name = name; pattern_name = pattern; guard; rhs }

let rhs_vars rhs =
  let vars = ref Symbol.Set.empty and fvars = ref Symbol.Set.empty in
  let rec go = function
    | Rvar x -> vars := Symbol.Set.add x !vars
    | Rapp (_, rs) | Rapp_attrs (_, rs, _) -> List.iter go rs
    | Rcopy_attrs (_, rs, x) ->
        vars := Symbol.Set.add x !vars;
        List.iter go rs
    | Rfapp (f, rs) ->
        fvars := Symbol.Set.add f !fvars;
        List.iter go rs
    | Rlit _ -> ()
  in
  go rhs;
  (!vars, !fvars)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

(* Construction is atomic: the whole template builds inside a graph
   transaction, so an [Error] (unbound variable, nodeless binding) or an
   exception from [Graph.add] (arity/typing rejection) part-way through
   rolls back every node already materialized instead of leaking garbage
   until the next gc. *)
let instantiate g view theta phi rhs =
  let rec go = function
    | Rvar x -> (
        match Subst.find x theta with
        | None -> Error (Printf.sprintf "rule variable %s is unbound" x)
        | Some t -> (
            match Term_view.node_of view t with
            | Some n -> Ok n
            | None ->
                Error
                  (Printf.sprintf
                     "rule variable %s bound to a term with no graph node" x)))
    | Rapp (op, rs) ->
        let* inputs = map_result go rs in
        Ok (Graph.add g op inputs)
    | Rapp_attrs (op, rs, attrs) ->
        let* inputs = map_result go rs in
        Ok (Graph.add g op ~attrs inputs)
    | Rfapp (f, rs) -> (
        match Fsubst.find f phi with
        | None -> Error (Printf.sprintf "rule function variable %s is unbound" f)
        | Some op ->
            let* inputs = map_result go rs in
            Ok (Graph.add g op inputs))
    | Rcopy_attrs (op, rs, x) -> (
        match Subst.find x theta with
        | None -> Error (Printf.sprintf "rule variable %s is unbound" x)
        | Some t -> (
            match Term_view.node_of view t with
            | None ->
                Error
                  (Printf.sprintf
                     "rule variable %s bound to a term with no graph node" x)
            | Some src ->
                let* inputs = map_result go rs in
                Ok (Graph.add g op ~attrs:src.Graph.attrs inputs)))
    | Rlit v -> Ok (Graph.constant g v)
  in
  let sp = Graph.Txn.begin_ g in
  match go rhs with
  | Ok n ->
      Graph.Txn.commit g sp;
      Ok n
  | Error _ as e ->
      ignore (Graph.Txn.rollback g sp);
      e
  | exception exn ->
      ignore (Graph.Txn.rollback g sp);
      raise exn

let check_guard view theta phi rule =
  Guard.eval (Term_view.interp view) theta phi rule.guard = Some true

let rec pp_rhs ppf = function
  | Rvar x -> Format.pp_print_string ppf x
  | Rapp (op, []) -> Format.pp_print_string ppf op
  | Rapp (op, rs) | Rapp_attrs (op, rs, _) | Rcopy_attrs (op, rs, _) ->
      Format.fprintf ppf "%s(%a)" op
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_rhs)
        rs
  | Rfapp (f, rs) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_rhs)
        rs
  | Rlit v -> Format.fprintf ppf "%g" v

let pp ppf r =
  Format.fprintf ppf "rule %s for %s: ... -> %a (when %a)" r.rule_name
    r.pattern_name pp_rhs r.rhs Guard.pp r.guard
