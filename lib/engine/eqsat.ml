open Pypm_term
open Pypm_pattern
open Pypm_graph
open Pypm_tensor
module E = Pypm_egraph.Egraph
module Ematch = Pypm_egraph.Ematch
module Saturate = Pypm_egraph.Saturate
module Cost = Pypm_kernels.Cost
module Exec = Pypm_kernels.Exec
module Obs = Pypm_obs.Obs

(* ------------------------------------------------------------------ *)
(* Rule conversion: Program.t rules -> Saturate rewrites               *)
(* ------------------------------------------------------------------ *)

type conversion = {
  crules : Saturate.rw list;
  cskipped : (string * string) list;
}

let ( let* ) = Result.bind

let rec template_of (rhs : Rule.rhs) : (Saturate.rhs, string) result =
  match rhs with
  | Rule.Rvar x -> Ok (Saturate.Tvar x)
  | Rule.Rapp (op, args) ->
      let* args = templates_of args in
      Ok (Saturate.Tapp (op, args))
  | Rule.Rfapp (fv, args) ->
      let* args = templates_of args in
      Ok (Saturate.Tfapp (fv, args))
  | Rule.Rlit v -> Ok (Saturate.Tapp (Graph.lit_symbol v, []))
  | Rule.Rapp_attrs _ -> Error "attributed template: attrs do not survive terms"
  | Rule.Rcopy_attrs _ ->
      Error "attribute-copying template: attrs do not survive terms"

and templates_of = function
  | [] -> Ok []
  | r :: rs ->
      let* t = template_of r in
      let* ts = templates_of rs in
      Ok (t :: ts)

let rules_of_program ?(guards = true) (p : Program.t) =
  let crules = ref [] and cskipped = ref [] in
  List.iter
    (fun (e : Program.entry) ->
      List.iter
        (fun (r : Rule.t) ->
          let name = e.Program.pname ^ "/" ^ r.Rule.rule_name in
          let converted =
            let* rhs = template_of r.Rule.rhs in
            if guards then Saturate.rw ~name ~guard:r.Rule.guard e.pattern rhs
            else if Guard.equal r.Rule.guard Guard.True then
              Saturate.rw ~name e.pattern rhs
            else Error "guarded rule with guard evaluation disabled"
          in
          match converted with
          | Ok rw -> crules := rw :: !crules
          | Error reason -> cskipped := (name, reason) :: !cskipped)
        e.Program.rules)
    p.Program.entries;
  { crules = List.rev !crules; cskipped = List.rev !cskipped }

(* ------------------------------------------------------------------ *)
(* Budgets and outcome                                                 *)
(* ------------------------------------------------------------------ *)

type budgets = {
  iter_limit : int;
  node_limit : int;
  class_limit : int;
  match_limit : int;
}

let default_budgets =
  { iter_limit = 12; node_limit = 20_000; class_limit = 10_000;
    match_limit = 2_000 }
[@@ocamlformat "disable"]

type outcome = {
  rules_used : int;
  rules_skipped : int;
  sat : Saturate.stats;
  extracted : int;
  spliced : int;
  splices_rejected : int;
  cost_before : float;
  cost_after : float;
  collected : int;
}

(* ------------------------------------------------------------------ *)
(* The saturation phase                                                *)
(* ------------------------------------------------------------------ *)

let phase ?(device = Cost.a6000) ?(budgets = default_budgets)
    ?(deadline = fun () -> false) (program : Program.t) g =
  let conv = rules_of_program ~guards:true program in
  if conv.crules = [] then Error "no egraph-convertible rules in the program"
  else if Graph.outputs g = [] then Error "graph has no outputs"
  else begin
    let view = Term_view.create g in
    let eg = E.create () in
    (* Per-class context carried alongside the e-graph: a witness term
       (for guard evaluation through the view's interp), the tensor type
       and attrs (for the kernel cost model). Keyed by canonical class id;
       re-keyed through [find] at the start of every saturation round,
       since unions move canonical roots. *)
    let witness : (E.id, Term.t) Hashtbl.t = Hashtbl.create 256 in
    let class_ty : (E.id, Ty.t option) Hashtbl.t = Hashtbl.create 256 in
    let class_attrs : (E.id, (string * int) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let cls_of_node : (int, E.id) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (n : Graph.node) ->
        let cs =
          List.map
            (fun (i : Graph.node) -> Hashtbl.find cls_of_node i.Graph.id)
            n.Graph.inputs
        in
        let c = E.add eg n.Graph.op cs in
        Hashtbl.replace cls_of_node n.Graph.id c;
        if not (Hashtbl.mem witness c) then
          Hashtbl.replace witness c (Term_view.term_of view n);
        if not (Hashtbl.mem class_ty c) then begin
          Hashtbl.replace class_ty c n.Graph.ty;
          if n.Graph.attrs <> [] then Hashtbl.replace class_attrs c n.attrs
        end)
      (Graph.live_nodes g);
    let rekey tbl =
      let bs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      Hashtbl.reset tbl;
      (* descending sort, so the binding with the smallest original id wins
         the final [replace] — deterministic, and it prefers the original
         graph's witness over a derived class's when classes merged *)
      List.sort (fun (a, _) (b, _) -> Int.compare b a) bs
      |> List.iter (fun (k, v) -> Hashtbl.replace tbl (E.find eg k) v)
    in
    let interp = Term_view.interp view in
    let guard_eval gd (env : Ematch.env) =
      (* Bind each matched class to its witness term and evaluate the guard
         exactly as the destructive engines would on that witness. A class
         with no witness (derived during saturation, never re-keyed onto a
         graph node) fails closed: the guard cannot be verified. *)
      match
        Symbol.Map.fold
          (fun x c acc ->
            match Hashtbl.find_opt witness (E.find eg c) with
            | Some t -> Subst.add x t acc
            | None -> raise_notrace Exit)
          env.Ematch.classes Subst.empty
      with
      | exception Exit -> false
      | theta ->
          let phi =
            Symbol.Map.fold
              (fun f op acc -> Fsubst.add f op acc)
              env.Ematch.ops Fsubst.empty
          in
          Guard.eval interp theta phi gd = Some true
    in
    let sat =
      Saturate.run eg conv.crules ~iter_limit:budgets.iter_limit
        ~node_limit:budgets.node_limit ~class_limit:budgets.class_limit
        ~match_limit:budgets.match_limit ~deadline ~guard_eval
        ~on_iteration:(fun i ->
          rekey witness;
          rekey class_ty;
          rekey class_attrs;
          Obs.emit
            (Obs.Sat_iteration
               { n = i; classes = E.class_count eg; nodes = E.node_count eg }))
        ~on_union:(fun rule -> Obs.emit (Obs.Sat_union { rule }))
        ()
    in
    rekey witness;
    rekey class_ty;
    rekey class_attrs;
    (* Type the classes saturation derived: a class whose chosen e-node has
       fully-typed children gets the inference registry's verdict, to a
       fixpoint. Classes that stay untyped are charged infinite cost below,
       so extraction only ever chooses terms the cost model understands. *)
    let infer = Graph.inference g in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun cls ->
          if not (Hashtbl.mem class_ty cls) then
            List.iter
              (fun (op, children) ->
                if not (Hashtbl.mem class_ty cls) then
                  let tys =
                    List.map
                      (fun c -> Hashtbl.find_opt class_ty (E.find eg c))
                      children
                  in
                  if
                    List.for_all
                      (function Some (Some _) -> true | _ -> false)
                      tys
                  then
                    let tys =
                      List.map
                        (function Some (Some t) -> t | _ -> assert false)
                        tys
                    in
                    match Infer.infer infer op ~attrs:[] tys with
                    | Ok ty ->
                        Hashtbl.replace class_ty cls (Some ty);
                        changed := true
                    | Error _ -> ())
              (E.nodes_of eg cls))
        (E.classes eg)
    done;
    let cost cls op children =
      match Hashtbl.find_opt class_ty (E.find eg cls) with
      | None -> Float.infinity
      | Some out ->
          let ins =
            List.map
              (fun c ->
                Option.join (Hashtbl.find_opt class_ty (E.find eg c)))
              children
          in
          let attrs =
            Option.value ~default:[]
              (Hashtbl.find_opt class_attrs (E.find eg cls))
          in
          Cost.op_cost device g op ~ins ~out ~attrs
    in
    let cost_before = Exec.graph_cost device g in
    let extracted = ref 0 and spliced = ref 0 and rejected = ref 0 in
    (* Canonical class -> its (smallest-id) original graph node, for node
       reuse while splicing. Built once, after saturation settled the
       union-find. *)
    let node_of_cls : (E.id, Graph.node) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (n : Graph.node) ->
        match Hashtbl.find_opt cls_of_node n.Graph.id with
        | None -> ()
        | Some c -> (
            let c = E.find eg c in
            match Hashtbl.find_opt node_of_cls c with
            | Some (m : Graph.node) when m.Graph.id <= n.Graph.id -> ()
            | _ -> Hashtbl.replace node_of_cls c n))
      (Graph.live_nodes g);
    (* Materialize the chosen representative of a class as graph nodes,
       straight off the choice table — never through [Term.t], whose tree
       unfolding is exponential on shared DAGs. A class whose choice is
       exactly its original node (same operator, every child built back
       to that node's own input) reuses the node, so unchanged regions
       splice to themselves. Memoized per canonical class; runs inside
       the caller's transaction, [Graph.add] typing rejections surface as
       [Error]. *)
    let build_choice best c0 =
      let memo : (E.id, Graph.node) Hashtbl.t = Hashtbl.create 64 in
      let rec go c =
        let c = E.find eg c in
        match Hashtbl.find_opt memo c with
        | Some n -> n
        | None ->
            let op, children =
              match Hashtbl.find_opt best c with
              | Some (_, choice) -> choice
              | None ->
                  (* unreachable: the fixpoint only chooses costed
                     children *)
                  invalid_arg "eqsat: chosen class has no extraction"
            in
            let args = List.map go children in
            let n =
              match Hashtbl.find_opt node_of_cls c with
              | Some (orig : Graph.node)
                when Symbol.equal orig.Graph.op op
                     && List.compare_lengths orig.Graph.inputs args = 0
                     && List.for_all2
                          (fun (i : Graph.node) b -> i == b)
                          orig.Graph.inputs args ->
                  orig
              | _ -> Graph.add g op args
            in
            Hashtbl.replace memo c n;
            n
      in
      match go c0 with
      | n -> Ok n
      | exception Invalid_argument msg -> Error msg
    in
    (* Splice per output, transactionally, committing only strict
       whole-graph cost improvements: the phase never worsens the graph it
       was handed, so [engine:Egraph] is never costlier than the greedy
       result it post-processes. *)
    List.iter
      (fun (out_node : Graph.node) ->
        if not (deadline ()) then
          match Hashtbl.find_opt cls_of_node out_node.Graph.id with
          | None -> ()
          | Some c0 -> (
              let c0 = E.find eg c0 in
              match E.extract_dag eg ~cost c0 with
              | None -> ()
              | Some best -> (
                  incr extracted;
                  let before = Exec.graph_cost device g in
                  let sp = Graph.Txn.begin_ g in
                  let reject () =
                    ignore (Graph.Txn.rollback g sp);
                    incr rejected
                  in
                  match build_choice best c0 with
                  | Error _ -> reject ()
                  | Ok new_root when new_root == out_node ->
                      (* extraction chose the graph as it stands *)
                      ignore (Graph.Txn.rollback g sp)
                  | Ok new_root -> (
                      match
                        Graph.try_replace g ~old_root:out_node ~new_root
                      with
                      | Error `Cycle -> reject ()
                      | Ok () ->
                          let after = Exec.graph_cost device g in
                          let accepted = after < before in
                          Obs.emit
                            (Obs.Sat_extract
                               {
                                 output = out_node.Graph.id;
                                 before_cost = before;
                                 after_cost = after;
                                 accepted;
                               });
                          if accepted then begin
                            Graph.Txn.commit g sp;
                            incr spliced
                          end
                          else reject ()))))
      (Graph.outputs g);
    let collected = if !spliced > 0 then Graph.gc g else 0 in
    Ok
      {
        rules_used = List.length conv.crules;
        rules_skipped = List.length conv.cskipped;
        sat;
        extracted = !extracted;
        spliced = !spliced;
        splices_rejected = !rejected;
        cost_before;
        cost_after = Exec.graph_cost device g;
        collected;
      }
  end
