open Pypm_graph
open Pypm_semantics
module Plan = Pypm_plan.Plan
module Obs = Pypm_obs.Obs

type engine = Naive | Index | Plan

let engine_name = function Naive -> "naive" | Index -> "index" | Plan -> "plan"

type pattern_stats = {
  ps_name : string;
  mutable attempts : int;
  mutable skipped : int;
  mutable plan_pruned : int;
  mutable matches : int;
  mutable rewrites : int;
  mutable fuel_exhausted : int;
  mutable guard_rejections : int;
  mutable match_time : float;
}

type stats = {
  mutable iterations : int;
  mutable nodes_visited : int;
  mutable total_rewrites : int;
  mutable type_rejections : int;
  mutable fuel_exhausted : int;
  mutable collected : int;
  mutable wall_time : float;
  mutable plan_time : float;
  mutable reached_fixpoint : bool;
  mutable provenance : Obs.Provenance.step list;
  per_pattern : pattern_stats list;
}

let fresh_stats (program : Program.t) =
  {
    iterations = 0;
    nodes_visited = 0;
    total_rewrites = 0;
    type_rejections = 0;
    fuel_exhausted = 0;
    collected = 0;
    wall_time = 0.;
    plan_time = 0.;
    reached_fixpoint = false;
    provenance = [];
    per_pattern =
      List.map
        (fun (e : Program.entry) ->
          {
            ps_name = e.Program.pname;
            attempts = 0;
            skipped = 0;
            plan_pruned = 0;
            matches = 0;
            rewrites = 0;
            fuel_exhausted = 0;
            guard_rejections = 0;
            match_time = 0.;
          })
        program.Program.entries;
  }

(* Program.make rejects duplicate names, so the name → stats lookup is
   unambiguous; the hot paths below never use it, they carry per-entry
   records instead. *)
let find_pattern_stats stats name =
  List.find_opt (fun ps -> String.equal ps.ps_name name) stats.per_pattern

let log_src = Logs.Src.create "pypm.pass" ~doc:"PyPM rewrite pass"

module Log = (val Logs.src_log log_src)

let now = Obs.now

(* ------------------------------------------------------------------ *)
(* Per-entry matching context: each pattern carries its own optional    *)
(* root-head prefilter. No name-keyed lookup happens per node.          *)
(* ------------------------------------------------------------------ *)

type ectx = {
  entry : Program.entry;
  heads : Pypm_term.Symbol.Set.t option;
      (* operators the root can have; None = no prefilter *)
}

let contexts ~indexed (program : Program.t) =
  List.map
    (fun (e : Program.entry) ->
      {
        entry = e;
        heads =
          (if indexed then Pypm_pattern.Pattern.root_heads e.Program.pattern
           else None);
      })
    program.Program.entries

(* Try to match one pattern at one node with the backtracking matcher.
   Every attempt, prune, and fuel exhaustion emits an obs event; the
   per-pattern statistics are aggregated from those events. *)
let try_match ~fuel view (c : ectx) (node : Graph.node) =
  let pname = c.entry.Program.pname in
  match c.heads with
  | Some heads when not (Pypm_term.Symbol.Set.mem node.Graph.op heads) ->
      Obs.emit ~node:node.Graph.id
        (Obs.Pruned { pattern = pname; via = Obs.Head_index });
      None
  | _ -> (
      let t = Term_view.term_of view node in
      let interp = Term_view.interp view in
      let t0 = now () in
      let outcome =
        Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
          c.entry.Program.pattern t
      in
      let dur = now () -. t0 in
      let obs_outcome =
        match outcome with
        | Outcome.Matched _ -> Obs.Matched
        | Outcome.No_match -> Obs.No_match
        | Outcome.Stuck -> Obs.Stuck
        | Outcome.Out_of_fuel -> Obs.Out_of_fuel
      in
      Obs.emit ~node:node.Graph.id ~dur
        (Obs.Match_attempt
           {
             pattern = pname;
             outcome = obs_outcome;
             visits = Matcher.last_visits ();
           });
      match outcome with
      | Outcome.Matched (theta, phi) -> Some (theta, phi)
      | Outcome.Out_of_fuel ->
          (* NOT a clean no-match: the matcher was stopped mid-search, so a
             witness may exist that we never saw. Surface it loudly. *)
          Log.warn (fun m ->
              m
                "pattern %s at node %%%d ran OUT OF FUEL after %d visits — \
                 counted as fuel_exhausted, not as a no-match; raise ~fuel \
                 if this keeps happening"
                pname node.Graph.id fuel);
          Obs.emit ~node:node.Graph.id
            (Obs.Fuel_exhausted { pattern = pname; fuel });
          None
      | Outcome.No_match | Outcome.Stuck -> None)

(* A replacement must present the same tensor type to the rest of the
   graph; opaque (untyped) nodes are accepted on either side. *)
let types_compatible (old_root : Graph.node) (new_root : Graph.node) =
  match (old_root.Graph.ty, new_root.Graph.ty) with
  | Some a, Some b -> Pypm_tensor.Ty.equal a b
  | _ -> true

let symbol_strings syms = List.map (fun (s : Pypm_term.Symbol.t) -> (s :> string)) syms

(* Fire the first rule whose guard passes. Returns the replacement root if
   a rewrite happened; records provenance on [stats]. *)
let fire ~check_types stats g view (c : ectx) node theta phi =
  let pname = c.entry.Program.pname in
  let rec try_rules = function
    | [] -> None
    | (r : Rule.t) :: rest ->
        if Rule.check_guard view theta phi r then (
          match Rule.instantiate g view theta phi r.Rule.rhs with
          | Ok new_root ->
              if new_root.Graph.id = node.Graph.id then
                (* identity rewrite: firing it forever would spin *)
                try_rules rest
              else if check_types && not (types_compatible node new_root)
              then (
                stats.type_rejections <- stats.type_rejections + 1;
                Obs.emit ~node:node.Graph.id
                  (Obs.Type_reject { pattern = pname; rule = r.Rule.rule_name });
                Log.warn (fun m ->
                    m
                      "rule %s at node %%%d rejected: replacement type \
                       differs from the matched root"
                      r.Rule.rule_name node.Graph.id);
                try_rules rest)
              else (
                Log.debug (fun m ->
                    m "fired %s (pattern %s) at node %%%d -> %%%d (%s)"
                      r.Rule.rule_name pname node.Graph.id new_root.Graph.id
                      new_root.Graph.op);
                Graph.replace g ~old_root:node ~new_root;
                stats.provenance <-
                  {
                    Obs.Provenance.seq = stats.total_rewrites;
                    pattern = pname;
                    rule = r.Rule.rule_name;
                    matched_root = node.Graph.id;
                    matched_op = (node.Graph.op :> string);
                    replacement_root = new_root.Graph.id;
                    replacement_op = (new_root.Graph.op :> string);
                    theta_dom = symbol_strings (Pypm_term.Subst.domain theta);
                    phi_dom = symbol_strings (Pypm_term.Fsubst.domain phi);
                  }
                  :: stats.provenance;
                stats.total_rewrites <- stats.total_rewrites + 1;
                Obs.emit ~node:node.Graph.id
                  (Obs.Rule_fired
                     {
                       pattern = pname;
                       rule = r.Rule.rule_name;
                       replacement = new_root.Graph.id;
                     });
                Some new_root)
          | Error msg ->
              invalid_arg
                (Printf.sprintf "rule %s for %s failed to instantiate: %s"
                   r.Rule.rule_name pname msg))
        else (
          Obs.emit ~node:node.Graph.id
            (Obs.Guard_reject { pattern = pname; rule = r.Rule.rule_name });
          try_rules rest)
  in
  try_rules c.entry.Program.rules

let resolve_engine engine indexed =
  match engine with Some e -> e | None -> if indexed then Index else Naive

(* ------------------------------------------------------------------ *)
(* Full-traversal engines (Naive, Index)                               *)
(* ------------------------------------------------------------------ *)

let run_scan ~indexed ~check_types ~fuel ~max_rewrites (program : Program.t) g
    stats =
  let ctxs = contexts ~indexed program in
  let rec traverse () =
    stats.iterations <- stats.iterations + 1;
    Obs.emit (Obs.Iteration { n = stats.iterations });
    let view = Term_view.create g in
    let rewrote =
      List.exists
        (fun node ->
          stats.nodes_visited <- stats.nodes_visited + 1;
          List.exists
            (fun c ->
              match try_match ~fuel view c node with
              | Some (theta, phi) ->
                  Option.is_some
                    (fire ~check_types stats g view c node theta phi)
              | None -> false)
            ctxs)
        (Graph.live_nodes g)
    in
    if rewrote then (
      stats.collected <- stats.collected + Graph.gc g;
      if stats.total_rewrites < max_rewrites then traverse ())
    else stats.reached_fixpoint <- true
  in
  traverse ()

(* ------------------------------------------------------------------ *)
(* Plan engine: shared trie + incremental re-matching                  *)
(* ------------------------------------------------------------------ *)

let compile_plan (program : Program.t) =
  Plan.compile
    (List.map
       (fun (e : Program.entry) -> (e.Program.pname, e.Program.pattern))
       program.Program.entries)

(* Per-entry plan context, fixed at compile time: compiled entries read
   their witness out of the shared trie walk, fallback entries run the
   backtracking matcher behind their root-head prefilter. Positional, not
   name-keyed: [Plan.kinds] preserves input order. *)
type plan_entry = Trie of Program.entry | Backtrack of ectx

let plan_contexts plan (program : Program.t) =
  List.map2
    (fun (e : Program.entry) ((kname, k) : string * Plan.entry_kind) ->
      assert (String.equal kname e.Program.pname);
      match k with
      | Plan.Compiled _ -> Trie e
      | Plan.Fallback heads -> Backtrack { entry = e; heads })
    program.Program.entries (Plan.kinds plan)

(* Match every entry at one node through the shared plan: one trie walk
   covers all compiled patterns; fallback patterns run the backtracking
   matcher behind their root-head prefilter. Calls [on_match] on entries in
   program order until it returns [Some _]. *)
let plan_match_at ~plan ~pctxs ~fuel stats view node ~on_match =
  stats.nodes_visited <- stats.nodes_visited + 1;
  let t = Term_view.term_of view node in
  let interp = Term_view.interp view in
  let t0 = now () in
  let results = Plan.match_node plan ~interp t in
  stats.plan_time <- stats.plan_time +. (now () -. t0);
  let rec go = function
    | [] -> None
    | pe :: rest -> (
        let entry, witness =
          match pe with
          | Trie (e : Program.entry) -> (
              match List.assoc_opt e.Program.pname results with
              | Some (theta, phi) ->
                  Obs.emit ~node:node.Graph.id
                    (Obs.Plan_match { pattern = e.Program.pname });
                  (e, Some (theta, phi))
              | None ->
                  Obs.emit ~node:node.Graph.id
                    (Obs.Pruned
                       { pattern = e.Program.pname; via = Obs.Plan_trie });
                  (e, None))
          | Backtrack c -> (c.entry, try_match ~fuel view c node)
        in
        match witness with
        | Some w -> (
            match on_match entry w with Some r -> Some r | None -> go rest)
        | None -> go rest)
  in
  go pctxs

let last_node_id g =
  List.fold_left (fun acc (n : Graph.node) -> max acc n.Graph.id) (-1)
    (Graph.nodes g)

(* After a rewrite, only nodes whose term view changed can newly match: the
   nodes the rewrite created, plus the transitive consumers of the
   replacement root. Mark exactly those dirty. *)
let mark_dirty_region g dirty ~before_last_id (new_root : Graph.node) =
  let users : (int, Graph.node list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Graph.node) ->
          Hashtbl.replace users i.Graph.id
            (n :: Option.value ~default:[] (Hashtbl.find_opt users i.Graph.id)))
        n.Graph.inputs;
      if n.Graph.id > before_last_id then Hashtbl.replace dirty n.Graph.id ())
    (Graph.live_nodes g);
  let seen = Hashtbl.create 64 in
  let rec up (n : Graph.node) =
    if not (Hashtbl.mem seen n.Graph.id) then begin
      Hashtbl.replace seen n.Graph.id ();
      Hashtbl.replace dirty n.Graph.id ();
      List.iter up
        (Option.value ~default:[] (Hashtbl.find_opt users n.Graph.id))
    end
  in
  up new_root

let run_plan ~check_types ~fuel ~max_rewrites (program : Program.t) g stats =
  let plan = compile_plan program in
  let pctxs = plan_contexts plan program in
  (* The work-queue: ids of nodes whose term view may have changed since
     they were last scanned without firing. Scanning follows the live
     topological order restricted to this set, so the rewrite sequence is
     the full traversal's (clean nodes cannot newly match: their term view
     is unchanged and matching depends on nothing else). *)
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun (n : Graph.node) -> Hashtbl.replace dirty n.Graph.id ())
    (Graph.live_nodes g);
  let rec traverse () =
    stats.iterations <- stats.iterations + 1;
    Obs.emit (Obs.Iteration { n = stats.iterations });
    let view = Term_view.create g in
    let rewrote =
      List.exists
        (fun (node : Graph.node) ->
          if not (Hashtbl.mem dirty node.Graph.id) then false
          else
            let fired =
              plan_match_at ~plan ~pctxs ~fuel stats view node
                ~on_match:(fun entry (theta, phi) ->
                  let before_last_id = last_node_id g in
                  let c = { entry; heads = None } in
                  match
                    fire ~check_types stats g view c node theta phi
                  with
                  | Some new_root ->
                      mark_dirty_region g dirty ~before_last_id new_root;
                      Some new_root
                  | None -> None)
            in
            match fired with
            | Some _ -> true
            | None ->
                Hashtbl.remove dirty node.Graph.id;
                false)
        (Graph.live_nodes g)
    in
    if rewrote then (
      stats.collected <- stats.collected + Graph.gc g;
      if stats.total_rewrites < max_rewrites then traverse ())
    else stats.reached_fixpoint <- true
  in
  traverse ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Pull the per-pattern numbers out of the event aggregator: the events
   are the single source of truth, the mutable records are the snapshot
   handed to the caller. *)
let finalize (program : Program.t) agg stats =
  List.iter2
    (fun (e : Program.entry) ps ->
      match Obs.Agg.find agg e.Program.pname with
      | None -> ()
      | Some (a : Obs.Agg.pat) ->
          ps.attempts <- a.Obs.Agg.attempts;
          ps.skipped <- a.Obs.Agg.pruned_head;
          ps.plan_pruned <- a.Obs.Agg.pruned_plan;
          ps.matches <- a.Obs.Agg.matches;
          ps.rewrites <- a.Obs.Agg.rewrites;
          ps.fuel_exhausted <- a.Obs.Agg.fuel_exhausted;
          ps.guard_rejections <- a.Obs.Agg.guard_rejects;
          ps.match_time <- a.Obs.Agg.match_time)
    program.Program.entries stats.per_pattern;
  stats.fuel_exhausted <-
    List.fold_left
      (fun acc (ps : pattern_stats) -> acc + ps.fuel_exhausted)
      0 stats.per_pattern;
  stats.provenance <- List.rev stats.provenance

let run ?engine ?(indexed = false) ?(check_types = true) ?(fuel = 200_000)
    ?(max_rewrites = 10_000) (program : Program.t) g =
  let stats = fresh_stats program in
  let agg = Obs.Agg.create () in
  let e = resolve_engine engine indexed in
  Obs.emit
    (Obs.Pass_begin
       {
         engine = engine_name e;
         patterns = List.length program.Program.entries;
       });
  let t_start = now () in
  Obs.with_sink (Obs.Agg.sink agg) (fun () ->
      match e with
      | Plan -> run_plan ~check_types ~fuel ~max_rewrites program g stats
      | (Naive | Index) as e ->
          run_scan ~indexed:(e = Index) ~check_types ~fuel ~max_rewrites
            program g stats);
  stats.wall_time <- now () -. t_start;
  finalize program agg stats;
  Obs.emit
    (Obs.Pass_end
       { rewrites = stats.total_rewrites; iterations = stats.iterations });
  stats

let provenance stats = stats.provenance

let match_only ?engine ?(indexed = false) ?(fuel = 200_000)
    (program : Program.t) g =
  let stats = fresh_stats program in
  let agg = Obs.Agg.create () in
  let t_start = now () in
  stats.iterations <- 1;
  let view = Term_view.create g in
  Obs.with_sink (Obs.Agg.sink agg) (fun () ->
      match resolve_engine engine indexed with
      | Plan ->
          let plan = compile_plan program in
          let pctxs = plan_contexts plan program in
          List.iter
            (fun node ->
              ignore
                (plan_match_at ~plan ~pctxs ~fuel stats view node
                   ~on_match:(fun _ _ -> None)))
            (Graph.live_nodes g)
      | (Naive | Index) as e ->
          let ctxs = contexts ~indexed:(e = Index) program in
          List.iter
            (fun node ->
              stats.nodes_visited <- stats.nodes_visited + 1;
              List.iter
                (fun c -> ignore (try_match ~fuel view c node))
                ctxs)
            (Graph.live_nodes g));
  stats.reached_fixpoint <- true;
  stats.wall_time <- now () -. t_start;
  finalize program agg stats;
  stats

let matches_of ?(fuel = 200_000) (program : Program.t) g =
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  List.map
    (fun (entry : Program.entry) ->
      let hits =
        List.filter_map
          (fun node ->
            let t = Term_view.term_of view node in
            match
              Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
                entry.Program.pattern t
            with
            | Outcome.Matched (theta, phi) ->
                Some (node.Graph.id, theta, phi)
            | _ -> None)
          (Graph.live_nodes g)
      in
      (entry.Program.pname, hits))
    program.Program.entries

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>pass: %d iteration(s), %d nodes visited, %d rewrites, %d collected, \
     %.3f s%s%s@,"
    s.iterations s.nodes_visited s.total_rewrites s.collected s.wall_time
    (if s.plan_time > 0. then
       Printf.sprintf " (%.4f s in the shared plan)" s.plan_time
     else "")
    (if s.reached_fixpoint then "" else " (max rewrites hit)");
  if s.fuel_exhausted > 0 then
    Format.fprintf ppf
      "  WARNING: %d match attempt(s) ran out of fuel — these are not \
       no-matches; the pass may have missed rewrites (raise ~fuel)@,"
      s.fuel_exhausted;
  List.iter
    (fun ps ->
      Format.fprintf ppf
        "  %-24s attempts %-6d skipped %-6d pruned %-6d matches %-5d \
         rewrites %-5d %.4f s%s@,"
        ps.ps_name ps.attempts ps.skipped ps.plan_pruned ps.matches
        ps.rewrites ps.match_time
        (if ps.fuel_exhausted > 0 then
           Printf.sprintf " fuel-exhausted %d" ps.fuel_exhausted
         else ""))
    s.per_pattern;
  Format.fprintf ppf "@]"
