open Pypm_graph
open Pypm_semantics
module Plan = Pypm_plan.Plan

type engine = Naive | Index | Plan

type pattern_stats = {
  ps_name : string;
  mutable attempts : int;
  mutable skipped : int;
  mutable plan_pruned : int;
  mutable matches : int;
  mutable rewrites : int;
  mutable match_time : float;
}

type stats = {
  mutable iterations : int;
  mutable nodes_visited : int;
  mutable total_rewrites : int;
  mutable type_rejections : int;
  mutable collected : int;
  mutable wall_time : float;
  mutable plan_time : float;
  mutable reached_fixpoint : bool;
  per_pattern : pattern_stats list;
}

let fresh_stats (program : Program.t) =
  {
    iterations = 0;
    nodes_visited = 0;
    total_rewrites = 0;
    type_rejections = 0;
    collected = 0;
    wall_time = 0.;
    plan_time = 0.;
    reached_fixpoint = false;
    per_pattern =
      List.map
        (fun (e : Program.entry) ->
          {
            ps_name = e.Program.pname;
            attempts = 0;
            skipped = 0;
            plan_pruned = 0;
            matches = 0;
            rewrites = 0;
            match_time = 0.;
          })
        program.Program.entries;
  }

let find_pattern_stats stats name =
  List.find_opt (fun ps -> String.equal ps.ps_name name) stats.per_pattern

let log_src = Logs.Src.create "pypm.pass" ~doc:"PyPM rewrite pass"

module Log = (val Logs.src_log log_src)

let now = Unix.gettimeofday

(* Root-head index: for each entry, the set of operator symbols its
   pattern's root can have (None = anything). Computed once per pass. *)
let head_index ~indexed (program : Program.t) =
  if not indexed then fun _ _ -> false
  else
    let table =
      List.map
        (fun (e : Program.entry) ->
          (e.Program.pname, Pypm_pattern.Pattern.root_heads e.Program.pattern))
        program.Program.entries
    in
    fun (entry : Program.entry) (node : Graph.node) ->
      match List.assoc entry.Program.pname table with
      | Some heads -> not (Pypm_term.Symbol.Set.mem node.Graph.op heads)
      | None -> false

(* Try to match one pattern at one node with the backtracking matcher;
   updates stats, returns witness. *)
let try_match ~skip ~fuel stats view (entry : Program.entry) node =
  let ps = Option.get (find_pattern_stats stats entry.Program.pname) in
  if skip entry node then (
    ps.skipped <- ps.skipped + 1;
    None)
  else begin
  ps.attempts <- ps.attempts + 1;
  let t = Term_view.term_of view node in
  let interp = Term_view.interp view in
  let t0 = now () in
  let outcome =
    Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
      entry.Program.pattern t
  in
  ps.match_time <- ps.match_time +. (now () -. t0);
  match outcome with
  | Outcome.Matched (theta, phi) ->
      ps.matches <- ps.matches + 1;
      Some (theta, phi)
  | _ -> None
  end

(* A replacement must present the same tensor type to the rest of the
   graph; opaque (untyped) nodes are accepted on either side. *)
let types_compatible (old_root : Graph.node) (new_root : Graph.node) =
  match (old_root.Graph.ty, new_root.Graph.ty) with
  | Some a, Some b -> Pypm_tensor.Ty.equal a b
  | _ -> true

(* Fire the first rule whose guard passes. Returns the replacement root if
   a rewrite happened. *)
let fire ~check_types stats g view (entry : Program.entry) node theta phi =
  let ps = Option.get (find_pattern_stats stats entry.Program.pname) in
  let rec try_rules = function
    | [] -> None
    | (r : Rule.t) :: rest ->
        if Rule.check_guard view theta phi r then (
          match Rule.instantiate g view theta phi r.Rule.rhs with
          | Ok new_root ->
              if new_root.Graph.id = node.Graph.id then
                (* identity rewrite: firing it forever would spin *)
                try_rules rest
              else if check_types && not (types_compatible node new_root)
              then (
                stats.type_rejections <- stats.type_rejections + 1;
                Log.warn (fun m ->
                    m
                      "rule %s at node %%%d rejected: replacement type \
                       differs from the matched root"
                      r.Rule.rule_name node.Graph.id);
                try_rules rest)
              else (
                Log.debug (fun m ->
                    m "fired %s (pattern %s) at node %%%d -> %%%d (%s)"
                      r.Rule.rule_name entry.Program.pname node.Graph.id
                      new_root.Graph.id new_root.Graph.op);
                Graph.replace g ~old_root:node ~new_root;
                ps.rewrites <- ps.rewrites + 1;
                stats.total_rewrites <- stats.total_rewrites + 1;
                Some new_root)
          | Error msg ->
              invalid_arg
                (Printf.sprintf "rule %s for %s failed to instantiate: %s"
                   r.Rule.rule_name entry.Program.pname msg))
        else try_rules rest
  in
  try_rules entry.Program.rules

let resolve_engine engine indexed =
  match engine with Some e -> e | None -> if indexed then Index else Naive

(* ------------------------------------------------------------------ *)
(* Full-traversal engines (Naive, Index)                               *)
(* ------------------------------------------------------------------ *)

let run_scan ~indexed ~check_types ~fuel ~max_rewrites (program : Program.t) g
    stats =
  let skip = head_index ~indexed program in
  let rec traverse () =
    stats.iterations <- stats.iterations + 1;
    let view = Term_view.create g in
    let rewrote =
      List.exists
        (fun node ->
          stats.nodes_visited <- stats.nodes_visited + 1;
          List.exists
            (fun entry ->
              match try_match ~skip ~fuel stats view entry node with
              | Some (theta, phi) ->
                  Option.is_some
                    (fire ~check_types stats g view entry node theta phi)
              | None -> false)
            program.Program.entries)
        (Graph.live_nodes g)
    in
    if rewrote then (
      stats.collected <- stats.collected + Graph.gc g;
      if stats.total_rewrites < max_rewrites then traverse ())
    else stats.reached_fixpoint <- true
  in
  traverse ()

(* ------------------------------------------------------------------ *)
(* Plan engine: shared trie + incremental re-matching                  *)
(* ------------------------------------------------------------------ *)

let compile_plan (program : Program.t) =
  Plan.compile
    (List.map
       (fun (e : Program.entry) -> (e.Program.pname, e.Program.pattern))
       program.Program.entries)

(* Match every entry at one node through the shared plan: one trie walk
   covers all compiled patterns; fallback patterns run the backtracking
   matcher behind their root-head prefilter. Calls [on_match] on entries in
   program order until it returns [Some _]. *)
let plan_match_at ~plan ~fallback_skip ~fuel stats view interp
    (program : Program.t) node ~on_match =
  stats.nodes_visited <- stats.nodes_visited + 1;
  let t = Term_view.term_of view node in
  let t0 = now () in
  let results = Plan.match_node plan ~interp t in
  stats.plan_time <- stats.plan_time +. (now () -. t0);
  let rec go = function
    | [] -> None
    | (entry : Program.entry) :: rest -> (
        let witness =
          match Plan.kind plan entry.Program.pname with
          | Some (Plan.Compiled _) -> (
              let ps =
                Option.get (find_pattern_stats stats entry.Program.pname)
              in
              match List.assoc_opt entry.Program.pname results with
              | Some (theta, phi) ->
                  ps.matches <- ps.matches + 1;
                  Some (theta, phi)
              | None ->
                  ps.plan_pruned <- ps.plan_pruned + 1;
                  None)
          | Some (Plan.Fallback _) | None ->
              try_match ~skip:fallback_skip ~fuel stats view entry node
        in
        match witness with
        | Some w -> (
            match on_match entry w with Some r -> Some r | None -> go rest)
        | None -> go rest)
  in
  go program.Program.entries

let last_node_id g =
  List.fold_left (fun acc (n : Graph.node) -> max acc n.Graph.id) (-1)
    (Graph.nodes g)

(* After a rewrite, only nodes whose term view changed can newly match: the
   nodes the rewrite created, plus the transitive consumers of the
   replacement root. Mark exactly those dirty. *)
let mark_dirty_region g dirty ~before_last_id (new_root : Graph.node) =
  let users : (int, Graph.node list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Graph.node) ->
          Hashtbl.replace users i.Graph.id
            (n :: Option.value ~default:[] (Hashtbl.find_opt users i.Graph.id)))
        n.Graph.inputs;
      if n.Graph.id > before_last_id then Hashtbl.replace dirty n.Graph.id ())
    (Graph.live_nodes g);
  let seen = Hashtbl.create 64 in
  let rec up (n : Graph.node) =
    if not (Hashtbl.mem seen n.Graph.id) then begin
      Hashtbl.replace seen n.Graph.id ();
      Hashtbl.replace dirty n.Graph.id ();
      List.iter up
        (Option.value ~default:[] (Hashtbl.find_opt users n.Graph.id))
    end
  in
  up new_root

let run_plan ~check_types ~fuel ~max_rewrites (program : Program.t) g stats =
  let plan = compile_plan program in
  let fallback_skip (entry : Program.entry) (node : Graph.node) =
    match Plan.kind plan entry.Program.pname with
    | Some (Plan.Fallback (Some heads)) ->
        not (Pypm_term.Symbol.Set.mem node.Graph.op heads)
    | _ -> false
  in
  (* The work-queue: ids of nodes whose term view may have changed since
     they were last scanned without firing. Scanning follows the live
     topological order restricted to this set, so the rewrite sequence is
     the full traversal's (clean nodes cannot newly match: their term view
     is unchanged and matching depends on nothing else). *)
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun (n : Graph.node) -> Hashtbl.replace dirty n.Graph.id ())
    (Graph.live_nodes g);
  let rec traverse () =
    stats.iterations <- stats.iterations + 1;
    let view = Term_view.create g in
    let interp = Term_view.interp view in
    let rewrote =
      List.exists
        (fun (node : Graph.node) ->
          if not (Hashtbl.mem dirty node.Graph.id) then false
          else
            let fired =
              plan_match_at ~plan ~fallback_skip ~fuel stats view interp
                program node ~on_match:(fun entry (theta, phi) ->
                  let before_last_id = last_node_id g in
                  match
                    fire ~check_types stats g view entry node theta phi
                  with
                  | Some new_root ->
                      mark_dirty_region g dirty ~before_last_id new_root;
                      Some new_root
                  | None -> None)
            in
            match fired with
            | Some _ -> true
            | None ->
                Hashtbl.remove dirty node.Graph.id;
                false)
        (Graph.live_nodes g)
    in
    if rewrote then (
      stats.collected <- stats.collected + Graph.gc g;
      if stats.total_rewrites < max_rewrites then traverse ())
    else stats.reached_fixpoint <- true
  in
  traverse ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run ?engine ?(indexed = false) ?(check_types = true) ?(fuel = 200_000)
    ?(max_rewrites = 10_000) (program : Program.t) g =
  let stats = fresh_stats program in
  let t_start = now () in
  (match resolve_engine engine indexed with
  | Plan -> run_plan ~check_types ~fuel ~max_rewrites program g stats
  | (Naive | Index) as e ->
      run_scan ~indexed:(e = Index) ~check_types ~fuel ~max_rewrites program g
        stats);
  stats.wall_time <- now () -. t_start;
  stats

let match_only ?engine ?(indexed = false) ?(fuel = 200_000)
    (program : Program.t) g =
  let stats = fresh_stats program in
  let t_start = now () in
  stats.iterations <- 1;
  let view = Term_view.create g in
  (match resolve_engine engine indexed with
  | Plan ->
      let plan = compile_plan program in
      let fallback_skip (entry : Program.entry) (node : Graph.node) =
        match Plan.kind plan entry.Program.pname with
        | Some (Plan.Fallback (Some heads)) ->
            not (Pypm_term.Symbol.Set.mem node.Graph.op heads)
        | _ -> false
      in
      let interp = Term_view.interp view in
      List.iter
        (fun node ->
          ignore
            (plan_match_at ~plan ~fallback_skip ~fuel stats view interp
               program node ~on_match:(fun _ _ -> None)))
        (Graph.live_nodes g)
  | (Naive | Index) as e ->
      let skip = head_index ~indexed:(e = Index) program in
      List.iter
        (fun node ->
          stats.nodes_visited <- stats.nodes_visited + 1;
          List.iter
            (fun entry -> ignore (try_match ~skip ~fuel stats view entry node))
            program.Program.entries)
        (Graph.live_nodes g));
  stats.reached_fixpoint <- true;
  stats.wall_time <- now () -. t_start;
  stats

let matches_of ?(fuel = 200_000) (program : Program.t) g =
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  List.map
    (fun (entry : Program.entry) ->
      let hits =
        List.filter_map
          (fun node ->
            let t = Term_view.term_of view node in
            match
              Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
                entry.Program.pattern t
            with
            | Outcome.Matched (theta, phi) ->
                Some (node.Graph.id, theta, phi)
            | _ -> None)
          (Graph.live_nodes g)
      in
      (entry.Program.pname, hits))
    program.Program.entries

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>pass: %d iteration(s), %d nodes visited, %d rewrites, %d collected, \
     %.3f s%s%s@,"
    s.iterations s.nodes_visited s.total_rewrites s.collected s.wall_time
    (if s.plan_time > 0. then
       Printf.sprintf " (%.4f s in the shared plan)" s.plan_time
     else "")
    (if s.reached_fixpoint then "" else " (max rewrites hit)");
  List.iter
    (fun ps ->
      Format.fprintf ppf
        "  %-24s attempts %-6d skipped %-6d pruned %-6d matches %-5d \
         rewrites %-5d %.4f s@,"
        ps.ps_name ps.attempts ps.skipped ps.plan_pruned ps.matches
        ps.rewrites ps.match_time)
    s.per_pattern;
  Format.fprintf ppf "@]"
