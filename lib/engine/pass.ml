open Pypm_graph
open Pypm_semantics
module Plan = Pypm_plan.Plan
module Obs = Pypm_obs.Obs
module Breaker = Pypm_resilience.Resilience.Breaker
module Inject = Pypm_resilience.Resilience.Inject
module Team = Pypm_parallel.Team

type engine = Naive | Index | Plan | Egraph

let engine_name = function
  | Naive -> "naive"
  | Index -> "index"
  | Plan -> "plan"
  | Egraph -> "egraph"

(* ------------------------------------------------------------------ *)
(* Run configuration                                                   *)
(* ------------------------------------------------------------------ *)

(* One record for the knobs every entry point of the [run] family used to
   copy as eleven optional arguments. The labelled entry points survive as
   thin shims over the [*_cfg] forms; callers outside lib/engine build a
   [Config.t] (usually [{ Config.default with ... }]) and pass that one
   value around instead of re-threading each field. *)
module Config = struct
  type t = {
    engine : engine option;
        (** [None]: fall back to [indexed]'s Naive/Index choice *)
    indexed : bool;
    check_types : bool;
    fuel : int;
    max_rewrites : int;
    deadline_s : float option;
    quarantine_after : int;
    inject : Inject.schedule;
    on_error : [ `Quarantine | `Fail ];
    domains : int;
    team : Team.t option;
  }

  let default =
    {
      engine = None;
      indexed = false;
      check_types = true;
      fuel = 200_000;
      max_rewrites = 10_000;
      deadline_s = None;
      quarantine_after = 5;
      inject = Inject.none;
      on_error = `Quarantine;
      domains = 1;
      team = None;
    }

  (* Fold a shim's optional arguments over a base configuration; an
     omitted argument keeps the base's value. *)
  let override ?engine ?indexed ?check_types ?fuel ?max_rewrites ?deadline_s
      ?quarantine_after ?inject ?on_error ?domains ?team base =
    let v opt dflt = Option.value opt ~default:dflt in
    {
      engine = (match engine with Some _ as e -> e | None -> base.engine);
      indexed = v indexed base.indexed;
      check_types = v check_types base.check_types;
      fuel = v fuel base.fuel;
      max_rewrites = v max_rewrites base.max_rewrites;
      deadline_s =
        (match deadline_s with Some _ as d -> d | None -> base.deadline_s);
      quarantine_after = v quarantine_after base.quarantine_after;
      inject = v inject base.inject;
      on_error = v on_error base.on_error;
      domains = v domains base.domains;
      team = (match team with Some _ as t -> t | None -> base.team);
    }
end

(* ------------------------------------------------------------------ *)
(* Structured pass errors                                              *)
(* ------------------------------------------------------------------ *)

type error =
  | Rule_failed of { pattern : string; rule : string; reason : string }
  | Guard_raised of { pattern : string; rule : string; reason : string }
  | Engine_unavailable of { engine : string; reason : string }

let pp_error ppf = function
  | Rule_failed { pattern; rule; reason } ->
      Format.fprintf ppf "rule %s (pattern %s) failed to instantiate: %s" rule
        pattern reason
  | Guard_raised { pattern; rule; reason } ->
      Format.fprintf ppf "guard of rule %s (pattern %s) raised: %s" rule
        pattern reason
  | Engine_unavailable { engine; reason } ->
      Format.fprintf ppf
        "no matching engine available (last tried %s): %s" engine reason

let error_message e = Format.asprintf "%a" pp_error e

type pattern_stats = {
  ps_name : string;
  mutable attempts : int;
  mutable skipped : int;
  mutable plan_pruned : int;
  mutable matches : int;
  mutable rewrites : int;
  mutable fuel_exhausted : int;
  mutable guard_rejections : int;
  mutable rolled_back : int;
  mutable quarantined : bool;
  mutable match_time : float;
}

type stats = {
  mutable iterations : int;
  mutable nodes_visited : int;
  mutable total_rewrites : int;
  mutable type_rejections : int;
  mutable fuel_exhausted : int;
  mutable cycle_rejections : int;
  mutable rolled_back : int;
  mutable quarantined : int;
  mutable collected : int;
  mutable wall_time : float;
  mutable plan_time : float;
  mutable reached_fixpoint : bool;
  mutable deadline_hit : bool;
  mutable engine_used : string;
  mutable domains_used : int;
  mutable engine_requested : string;
  mutable cfg_check_types : bool;
  mutable cfg_fuel : int;
  mutable cfg_max_rewrites : int;
  mutable errors : error list;
  mutable fatal : error option;
  mutable provenance : Obs.Provenance.step list;
  (* Equality-saturation post-phase counters; all zero / "" unless the
     [Egraph] engine ran its phase. *)
  mutable sat_iterations : int;
  mutable sat_unions : int;
  mutable sat_skipped_rules : int;
  mutable sat_classes : int;
  mutable sat_nodes : int;
  mutable sat_extracted : int;
  mutable sat_spliced : int;
  mutable sat_rejected : int;
  mutable sat_stop : string;
  mutable sat_cost_before : float;
  mutable sat_cost_after : float;
  per_pattern : pattern_stats list;
}

let fresh_stats (program : Program.t) =
  {
    iterations = 0;
    nodes_visited = 0;
    total_rewrites = 0;
    type_rejections = 0;
    fuel_exhausted = 0;
    cycle_rejections = 0;
    rolled_back = 0;
    quarantined = 0;
    collected = 0;
    wall_time = 0.;
    plan_time = 0.;
    reached_fixpoint = false;
    deadline_hit = false;
    engine_used = "";
    domains_used = 1;
    engine_requested = "";
    cfg_check_types = true;
    cfg_fuel = 0;
    cfg_max_rewrites = 0;
    errors = [];
    fatal = None;
    provenance = [];
    sat_iterations = 0;
    sat_unions = 0;
    sat_skipped_rules = 0;
    sat_classes = 0;
    sat_nodes = 0;
    sat_extracted = 0;
    sat_spliced = 0;
    sat_rejected = 0;
    sat_stop = "";
    sat_cost_before = 0.;
    sat_cost_after = 0.;
    per_pattern =
      List.map
        (fun (e : Program.entry) ->
          {
            ps_name = e.Program.pname;
            attempts = 0;
            skipped = 0;
            plan_pruned = 0;
            matches = 0;
            rewrites = 0;
            fuel_exhausted = 0;
            guard_rejections = 0;
            rolled_back = 0;
            quarantined = false;
            match_time = 0.;
          })
        program.Program.entries;
  }

(* Program.make rejects duplicate names, so the name → stats lookup is
   unambiguous; the hot paths below never use it, they carry per-entry
   records instead. *)
let find_pattern_stats stats name =
  List.find_opt (fun ps -> String.equal ps.ps_name name) stats.per_pattern

let log_src = Logs.Src.create "pypm.pass" ~doc:"PyPM rewrite pass"

module Log = (val Logs.src_log log_src)

(* Durations and deadlines use the monotonic clock: wall time (Obs.now,
   which stamps event timestamps) can jump under NTP slew and once
   produced a negative match_time. The two clocks are not comparable. *)
let now = Obs.monotonic

(* ------------------------------------------------------------------ *)
(* Run context: configuration plus the abort channel                   *)
(* ------------------------------------------------------------------ *)

(* Raised to unwind out of the traversal when the pass cannot or must not
   continue (wall-clock deadline, fatal error under [`Fail], no engine
   left on the ladder). The relevant stats fields are always set before
   raising; [run] catches it and returns the partial stats. *)
exception Aborted

type rctx = {
  rstats : stats;
  rinject : Inject.schedule;
  ron_error : [ `Quarantine | `Fail ];
  rdeadline : float option; (* absolute, seconds *)
  rdeadline_budget : float; (* as requested, for the event *)
  rcheck_types : bool;
  rfuel : int;
}

let check_deadline rc =
  match rc.rdeadline with
  | Some d when (not rc.rstats.deadline_hit) && now () > d ->
      rc.rstats.deadline_hit <- true;
      Obs.emit (Obs.Deadline_hit { budget_s = rc.rdeadline_budget });
      Log.warn (fun m ->
          m
            "pass stopped at its %.3fs wall-clock deadline after %d \
             rewrite(s) — returning partial stats (reached_fixpoint=false)"
            rc.rdeadline_budget rc.rstats.total_rewrites);
      raise Aborted
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-entry matching context: each pattern carries its own optional    *)
(* root-head prefilter, its circuit breaker, and its stats record.      *)
(* ------------------------------------------------------------------ *)

type ectx = {
  entry : Program.entry;
  heads : Pypm_term.Symbol.Set.t option;
      (* operators the root can have; None = no prefilter *)
  breaker : Breaker.t;
  epstats : pattern_stats;
}

(* One (breaker, stats-record) slot per program entry, shared by every
   engine the ladder tries: strikes survive a mid-pass degradation. *)
let entry_slots ~quarantine_after (program : Program.t) stats =
  List.map2
    (fun (e : Program.entry) ps ->
      ignore e;
      (Breaker.create ~threshold:quarantine_after, ps))
    program.Program.entries stats.per_pattern

let contexts ~indexed (program : Program.t) slots =
  List.map2
    (fun (e : Program.entry) (breaker, ps) ->
      {
        entry = e;
        heads =
          (if indexed then Pypm_pattern.Pattern.root_heads e.Program.pattern
           else None);
        breaker;
        epstats = ps;
      })
    program.Program.entries slots

(* The per-pattern circuit breaker: fuel exhaustions, rule errors and
   cycle rejections all strike; at the threshold the pattern is
   quarantined — skipped without matching — for the rest of the pass. *)
let strike rc (c : ectx) =
  if Breaker.strike c.breaker then begin
    c.epstats.quarantined <- true;
    rc.rstats.quarantined <- rc.rstats.quarantined + 1;
    Obs.emit
      (Obs.Quarantined
         {
           pattern = c.entry.Program.pname;
           strikes = Breaker.strikes c.breaker;
         });
    Log.warn (fun m ->
        m
          "pattern %s QUARANTINED after %d strike(s) (fuel exhaustions or \
           rule errors) — skipped for the remainder of this pass"
          c.entry.Program.pname (Breaker.strikes c.breaker))
  end

(* Record a contained rule error; under [`Fail] it becomes fatal and
   aborts the pass (the graph has already been rolled back). *)
let rule_error rc (c : ectx) err =
  rc.rstats.errors <- err :: rc.rstats.errors;
  strike rc c;
  if rc.ron_error = `Fail then begin
    rc.rstats.fatal <- Some err;
    raise Aborted
  end

(* Try to match one pattern at one node with the backtracking matcher.
   Every attempt, prune, and fuel exhaustion emits an obs event; the
   per-pattern statistics are aggregated from those events. Quarantined
   patterns are skipped outright. *)
let try_match rc view (c : ectx) (node : Graph.node) =
  let pname = c.entry.Program.pname in
  if Breaker.tripped c.breaker then None
  else
    match c.heads with
    | Some heads when not (Pypm_term.Symbol.Set.mem node.Graph.op heads) ->
        Obs.emit ~node:node.Graph.id
          (Obs.Pruned { pattern = pname; via = Obs.Head_index });
        None
    | _ -> (
        let fuel =
          if Inject.fires rc.rinject Inject.Fuel_cut then 1 else rc.rfuel
        in
        let t = Term_view.term_of view node in
        let interp = Term_view.interp view in
        let t0 = now () in
        let outcome =
          Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
            c.entry.Program.pattern t
        in
        let dur = now () -. t0 in
        let obs_outcome =
          match outcome with
          | Outcome.Matched _ -> Obs.Matched
          | Outcome.No_match -> Obs.No_match
          | Outcome.Stuck -> Obs.Stuck
          | Outcome.Out_of_fuel -> Obs.Out_of_fuel
        in
        Obs.emit ~node:node.Graph.id ~dur
          (Obs.Match_attempt
             {
               pattern = pname;
               outcome = obs_outcome;
               visits = Matcher.last_visits ();
             });
        match outcome with
        | Outcome.Matched (theta, phi) -> Some (theta, phi)
        | Outcome.Out_of_fuel ->
            (* NOT a clean no-match: the matcher was stopped mid-search, so a
               witness may exist that we never saw. Surface it loudly, and
               strike the breaker: a pattern that keeps exhausting fuel
               starves the rest of the library and gets quarantined. *)
            Log.warn (fun m ->
                m
                  "pattern %s at node %%%d ran OUT OF FUEL after %d visits — \
                   counted as fuel_exhausted, not as a no-match; raise ~fuel \
                   if this keeps happening"
                  pname node.Graph.id fuel);
            Obs.emit ~node:node.Graph.id
              (Obs.Fuel_exhausted { pattern = pname; fuel });
            strike rc c;
            None
        | Outcome.No_match | Outcome.Stuck -> None)

(* A replacement must present the same tensor type to the rest of the
   graph; opaque (untyped) nodes are accepted on either side. *)
let types_compatible (old_root : Graph.node) (new_root : Graph.node) =
  match (old_root.Graph.ty, new_root.Graph.ty) with
  | Some a, Some b -> Pypm_tensor.Ty.equal a b
  | _ -> true

let symbol_strings syms = List.map (fun (s : Pypm_term.Symbol.t) -> (s :> string)) syms

(* Fire the first rule whose guard passes. Returns the replacement root if
   a rewrite happened; records provenance on the stats.

   Every firing attempt is a transaction: the guard check happens before
   anything is allocated, and from instantiation to the final rewiring the
   graph mutations sit in the journal. A failed instantiate, a type or
   cycle rejection after construction, or an injected fault rolls the
   graph back to its pre-attempt state — no orphan nodes, no partial
   rewiring — and the next rule (or pattern) is tried. *)
let fire rc g view (c : ectx) node theta phi =
  let stats = rc.rstats in
  let pname = c.entry.Program.pname in
  let rec try_rules = function
    | [] -> None
    | (r : Rule.t) :: rest -> (
        let guard_verdict =
          if Inject.fires rc.rinject Inject.Guard_raise then
            Error "injected fault: guard raised"
          else
            match Rule.check_guard view theta phi r with
            | ok -> Ok ok
            | exception e -> Error (Printexc.to_string e)
        in
        match guard_verdict with
        | Error reason ->
            (* Nothing allocated yet; no rollback needed. *)
            Log.warn (fun m ->
                m "guard of rule %s at node %%%d raised: %s" r.Rule.rule_name
                  node.Graph.id reason);
            rule_error rc c
              (Guard_raised { pattern = pname; rule = r.Rule.rule_name; reason });
            try_rules rest
        | Ok false ->
            Obs.emit ~node:node.Graph.id
              (Obs.Guard_reject { pattern = pname; rule = r.Rule.rule_name });
            try_rules rest
        | Ok true -> (
            let sp = Graph.Txn.begin_ g in
            let rollback reason =
              let undone = Graph.Txn.rollback g sp in
              stats.rolled_back <- stats.rolled_back + 1;
              Obs.emit ~node:node.Graph.id
                (Obs.Rolled_back
                   { pattern = pname; rule = r.Rule.rule_name; reason; undone })
            in
            let instantiated =
              if Inject.fires rc.rinject Inject.Instantiate_fail then
                Error "injected fault: instantiate failed"
              else
                match Rule.instantiate g view theta phi r.Rule.rhs with
                | result -> result
                | exception e ->
                    Error ("construction raised: " ^ Printexc.to_string e)
            in
            match instantiated with
            | Error reason ->
                rollback ("instantiate: " ^ reason);
                Log.warn (fun m ->
                    m "rule %s for %s failed to instantiate at node %%%d: %s"
                      r.Rule.rule_name pname node.Graph.id reason);
                rule_error rc c
                  (Rule_failed
                     { pattern = pname; rule = r.Rule.rule_name; reason });
                try_rules rest
            | Ok new_root ->
                if new_root.Graph.id = node.Graph.id then (
                  (* identity rewrite: firing it forever would spin *)
                  Graph.Txn.commit g sp;
                  try_rules rest)
                else if rc.rcheck_types && not (types_compatible node new_root)
                then (
                  stats.type_rejections <- stats.type_rejections + 1;
                  Obs.emit ~node:node.Graph.id
                    (Obs.Type_reject { pattern = pname; rule = r.Rule.rule_name });
                  Log.warn (fun m ->
                      m
                        "rule %s at node %%%d rejected: replacement type \
                         differs from the matched root"
                        r.Rule.rule_name node.Graph.id);
                  rollback "replacement type differs from the matched root";
                  try_rules rest)
                else
                  let replaced =
                    if Inject.fires rc.rinject Inject.Replace_cycle then
                      Error `Cycle
                    else Graph.try_replace g ~old_root:node ~new_root
                  in
                  match replaced with
                  | Error `Cycle ->
                      stats.cycle_rejections <- stats.cycle_rejections + 1;
                      Obs.emit ~node:node.Graph.id
                        (Obs.Cycle_rejected
                           { pattern = pname; rule = r.Rule.rule_name });
                      Log.warn (fun m ->
                          m
                            "rule %s at node %%%d rejected: rewiring would \
                             create a cycle (firing rolled back)"
                            r.Rule.rule_name node.Graph.id);
                      rollback "rewiring would create a cycle";
                      strike rc c;
                      try_rules rest
                  | Ok () ->
                      Graph.Txn.commit g sp;
                      Log.debug (fun m ->
                          m "fired %s (pattern %s) at node %%%d -> %%%d (%s)"
                            r.Rule.rule_name pname node.Graph.id
                            new_root.Graph.id new_root.Graph.op);
                      stats.provenance <-
                        {
                          Obs.Provenance.seq = stats.total_rewrites;
                          pattern = pname;
                          rule = r.Rule.rule_name;
                          matched_root = node.Graph.id;
                          matched_op = (node.Graph.op :> string);
                          replacement_root = new_root.Graph.id;
                          replacement_op = (new_root.Graph.op :> string);
                          theta_dom =
                            symbol_strings (Pypm_term.Subst.domain theta);
                          phi_dom =
                            symbol_strings (Pypm_term.Fsubst.domain phi);
                        }
                        :: stats.provenance;
                      stats.total_rewrites <- stats.total_rewrites + 1;
                      Obs.emit ~node:node.Graph.id
                        (Obs.Rule_fired
                           {
                             pattern = pname;
                             rule = r.Rule.rule_name;
                             replacement = new_root.Graph.id;
                           });
                      Some new_root))
  in
  try_rules c.entry.Program.rules

let resolve_engine engine indexed =
  match engine with Some e -> e | None -> if indexed then Index else Naive

(* ------------------------------------------------------------------ *)
(* Full-traversal engines (Naive, Index)                               *)
(* ------------------------------------------------------------------ *)

let run_scan rc ~max_rewrites ctxs g =
  let stats = rc.rstats in
  let rec traverse () =
    stats.iterations <- stats.iterations + 1;
    Obs.emit (Obs.Iteration { n = stats.iterations });
    let view = Term_view.create g in
    let rewrote =
      List.exists
        (fun node ->
          check_deadline rc;
          stats.nodes_visited <- stats.nodes_visited + 1;
          List.exists
            (fun c ->
              match try_match rc view c node with
              | Some (theta, phi) ->
                  Option.is_some (fire rc g view c node theta phi)
              | None -> false)
            ctxs)
        (Graph.live_nodes g)
    in
    if rewrote then (
      stats.collected <- stats.collected + Graph.gc g;
      if stats.total_rewrites < max_rewrites then traverse ())
    else stats.reached_fixpoint <- true
  in
  traverse ()

(* ------------------------------------------------------------------ *)
(* Plan engine: shared trie + incremental re-matching                  *)
(* ------------------------------------------------------------------ *)

let compile_plan (program : Program.t) =
  Plan.compile
    (List.map
       (fun (e : Program.entry) -> (e.Program.pname, e.Program.pattern))
       program.Program.entries)

(* Per-entry plan context, fixed at compile time: compiled entries read
   their witness out of the shared trie walk, fallback entries run the
   backtracking matcher behind their root-head prefilter. Positional, not
   name-keyed: [Plan.kinds] preserves input order. *)
type plan_entry = Trie of ectx | Backtrack of ectx

let plan_contexts plan (program : Program.t) slots =
  List.map2
    (fun ((e : Program.entry), (breaker, ps))
         ((kname, k) : string * Plan.entry_kind) ->
      assert (String.equal kname e.Program.pname);
      match k with
      | Plan.Compiled _ ->
          Trie { entry = e; heads = None; breaker; epstats = ps }
      | Plan.Fallback heads -> Backtrack { entry = e; heads; breaker; epstats = ps })
    (List.combine program.Program.entries slots)
    (Plan.kinds plan)

(* Match every entry at one node through the shared plan: one trie walk
   covers all compiled patterns; fallback patterns run the backtracking
   matcher behind their root-head prefilter. Calls [on_match] on entries in
   program order until it returns [Some _]. Quarantined entries are
   skipped in both tiers. *)
let plan_match_at rc ~plan ~pctxs view node ~on_match =
  let stats = rc.rstats in
  stats.nodes_visited <- stats.nodes_visited + 1;
  let t = Term_view.term_of view node in
  let interp = Term_view.interp view in
  let t0 = now () in
  let results = Plan.match_node plan ~interp t in
  stats.plan_time <- stats.plan_time +. (now () -. t0);
  let rec go = function
    | [] -> None
    | pe :: rest -> (
        let c, witness =
          match pe with
          | Trie c ->
              if Breaker.tripped c.breaker then (c, None)
              else (
                match List.assoc_opt c.entry.Program.pname results with
                | Some (theta, phi) ->
                    Obs.emit ~node:node.Graph.id
                      (Obs.Plan_match { pattern = c.entry.Program.pname });
                    (c, Some (theta, phi))
                | None ->
                    Obs.emit ~node:node.Graph.id
                      (Obs.Pruned
                         {
                           pattern = c.entry.Program.pname;
                           via = Obs.Plan_trie;
                         });
                    (c, None))
          | Backtrack c -> (c, try_match rc view c node)
        in
        match witness with
        | Some w -> (
            match on_match c w with Some r -> Some r | None -> go rest)
        | None -> go rest)
  in
  go pctxs

let last_node_id g =
  List.fold_left (fun acc (n : Graph.node) -> max acc n.Graph.id) (-1)
    (Graph.nodes g)

(* After a rewrite, only nodes whose term view changed can newly match: the
   nodes the rewrite created, plus the transitive consumers of the
   replacement root. Mark exactly those dirty. *)
let mark_dirty_region g dirty ~before_last_id (new_root : Graph.node) =
  let users : (int, Graph.node list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Graph.node) ->
          Hashtbl.replace users i.Graph.id
            (n :: Option.value ~default:[] (Hashtbl.find_opt users i.Graph.id)))
        n.Graph.inputs;
      if n.Graph.id > before_last_id then Hashtbl.replace dirty n.Graph.id ())
    (Graph.live_nodes g);
  let seen = Hashtbl.create 64 in
  let rec up (n : Graph.node) =
    if not (Hashtbl.mem seen n.Graph.id) then begin
      Hashtbl.replace seen n.Graph.id ();
      Hashtbl.replace dirty n.Graph.id ();
      List.iter up
        (Option.value ~default:[] (Hashtbl.find_opt users n.Graph.id))
    end
  in
  up new_root

let run_plan rc ~max_rewrites plan pctxs g =
  let stats = rc.rstats in
  (* The work-queue: ids of nodes whose term view may have changed since
     they were last scanned without firing. Scanning follows the live
     topological order restricted to this set, so the rewrite sequence is
     the full traversal's (clean nodes cannot newly match: their term view
     is unchanged and matching depends on nothing else). *)
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun (n : Graph.node) -> Hashtbl.replace dirty n.Graph.id ())
    (Graph.live_nodes g);
  let rec traverse () =
    stats.iterations <- stats.iterations + 1;
    Obs.emit (Obs.Iteration { n = stats.iterations });
    let view = Term_view.create g in
    let rewrote =
      List.exists
        (fun (node : Graph.node) ->
          if not (Hashtbl.mem dirty node.Graph.id) then false
          else begin
            check_deadline rc;
            let fired =
              plan_match_at rc ~plan ~pctxs view node
                ~on_match:(fun c (theta, phi) ->
                  let before_last_id = last_node_id g in
                  match fire rc g view c node theta phi with
                  | Some new_root ->
                      mark_dirty_region g dirty ~before_last_id new_root;
                      Some new_root
                  | None -> None)
            in
            match fired with
            | Some _ -> true
            | None ->
                Hashtbl.remove dirty node.Graph.id;
                false
          end)
        (Graph.live_nodes g)
    in
    if rewrote then (
      stats.collected <- stats.collected + Graph.gc g;
      if stats.total_rewrites < max_rewrites then traverse ())
    else stats.reached_fixpoint <- true
  in
  traverse ()

(* ------------------------------------------------------------------ *)
(* Prepared engines                                                    *)
(* ------------------------------------------------------------------ *)

(* The reusable, run-independent part of an engine: the program, the
   requested engine, and — for [Plan] — the compiled shared trie (or the
   compilation failure, replayed to the ladder on every run). Everything
   per-run (breakers, stats, fault schedules) stays out of this record,
   so one [prepared] serves any number of concurrent-free sequential runs
   — the serve worker pool holds one per (program, engine) and skips plan
   compilation on every request after the first. *)
type prepared = {
  p_program : Program.t;
  p_engine : engine;
  p_plan : (Plan.t, string) result option;
      (* [Some] iff engine is [Plan] or [Egraph] (which runs the plan
         machinery for its greedy phase) *)
}

let prepare ?engine ?(indexed = false) (program : Program.t) =
  let e = resolve_engine engine indexed in
  let p_plan =
    match e with
    | Plan | Egraph ->
        Some
          (match compile_plan program with
          | plan -> Ok plan
          | exception exn -> Error (Printexc.to_string exn))
    | Index | Naive -> None
  in
  { p_program = program; p_engine = e; p_plan }

let prepared_engine p = p.p_engine
let prepared_program p = p.p_program

(* ------------------------------------------------------------------ *)
(* Engine degradation ladder                                           *)
(* ------------------------------------------------------------------ *)

type runnable = Scan of ectx list | Planned of Plan.t * plan_entry list

let next_down = function
  | Egraph -> Some Plan
  | Plan -> Some Index
  | Index -> Some Naive
  | Naive -> None

(* Instantiate the prepared engine for one run, degrading Plan → Index →
   Naive on a preparation failure (a plan-compilation exception recorded
   at prepare time, or an injected fault) with a warn event instead of
   dying. The injection check runs per-run even when the plan itself is
   cached: fault schedules describe runs, not programs. If even Naive
   cannot be prepared (injection only), the pass has no engine: fatal. *)
let prepare_engine rc (p : prepared) slots =
  let program = p.p_program in
  let prep e =
    if Inject.fires rc.rinject Inject.Plan_compile then
      Error "injected fault: engine preparation failed"
    else
      let planned () =
        let compiled =
          match p.p_plan with
          | Some r -> r
          | None -> (
              (* prepared for a simpler engine but degraded upward never
                 happens; this arm only serves direct requests *)
              match compile_plan program with
              | plan -> Ok plan
              | exception exn -> Error (Printexc.to_string exn))
        in
        match compiled with
        | Ok plan -> Ok (Planned (plan, plan_contexts plan program slots))
        | Error reason -> Error reason
      in
      match e with
      | Egraph ->
          (* The e-graph engine is the plan machinery plus a saturation
             post-phase; without a single convertible rule the phase would
             be a no-op, so degrade to Plan and say why. *)
          if (Eqsat.rules_of_program program).Eqsat.crules = [] then
            Error "no egraph-convertible rules in the program"
          else planned ()
      | Plan -> planned ()
      | Index -> Ok (Scan (contexts ~indexed:true program slots))
      | Naive -> Ok (Scan (contexts ~indexed:false program slots))
  in
  let rec ladder e =
    match prep e with
    | Ok k ->
        rc.rstats.engine_used <- engine_name e;
        k
    | Error reason -> (
        match next_down e with
        | Some e' ->
            Log.warn (fun m ->
                m
                  "engine %s unavailable (%s) — degrading to %s; the pass \
                   continues with the simpler engine"
                  (engine_name e) reason (engine_name e'));
            Obs.emit
              (Obs.Engine_degraded
                 { from_ = engine_name e; to_ = engine_name e'; reason });
            ladder e'
        | None ->
            rc.rstats.fatal <-
              Some (Engine_unavailable { engine = engine_name e; reason });
            raise Aborted)
  in
  ladder p.p_engine

(* ------------------------------------------------------------------ *)
(* Sharded matching: intra-pass parallelism                            *)
(*                                                                     *)
(* The sequential pass is "match everywhere, fire the first witness,   *)
(* restart": within one iteration the graph is immutable until exactly *)
(* one rule fires. That makes the matching half embarrassingly         *)
(* parallel — per (node, entry) it is a pure function of the node's    *)
(* term view — as long as the *decisions* (which witness fires, which  *)
(* breaker strikes) are replayed in the sequential order. So:          *)
(*                                                                     *)
(*   1. the candidate worklist (live-topo order; dirty-filtered under  *)
(*      Plan) is cut into contiguous blocks;                           *)
(*   2. each block is split into one contiguous slice per domain;      *)
(*      workers match their slice read-only against a per-domain term  *)
(*      view and a start-of-block snapshot of the breaker state,       *)
(*      reporting speculative outcomes (witness / fuel-out) per entry  *)
(*      in entry order, plus their domain-local obs events;            *)
(*   3. the arbiter (calling domain) replays outcomes in node order —  *)
(*      skipping entries whose breaker is tripped at consumption time, *)
(*      striking on fuel-outs, firing witnesses with the sequential    *)
(*      [fire] — and ends the iteration at the first successful fire.  *)
(*                                                                     *)
(* Quarantine filtering at consumption time is what makes this exact:  *)
(* breaker strikes are monotone within a pass, so an entry the arbiter *)
(* skips is precisely an entry the sequential scanner would have       *)
(* skipped at that point, and matching one speculatively changed       *)
(* nothing the fire decision can observe. Firing order, provenance and *)
(* the final graph are therefore byte-identical to the sequential      *)
(* pass; only speculative match *counts* (per-pattern attempts beyond  *)
(* the fire point) may exceed the sequential ones. Fault-injection     *)
(* schedules are consumed in query order, so an active schedule forces *)
(* the sequential path (see [run_prepared]).                           *)
(* ------------------------------------------------------------------ *)

(* Speculative per-entry outcome computed by a shard worker. *)
type spec =
  | Sw_witness of Pypm_term.Subst.t * Pypm_term.Fsubst.t
  | Sw_fuel_out

type shard_report = {
  sr_events : Obs.event list; (* worker-domain events, emission order *)
  sr_specs : (int * spec) list array; (* per slice node, entry order *)
  sr_walk : float; (* seconds inside the shared plan's trie walk *)
  sr_elapsed : float; (* monotonic seconds spent in the slice *)
}

(* Worker-side mirror of [try_match]: same prefilter, same matcher call,
   same events — but the outcome is reported, not acted on. Strikes,
   quarantine and firing belong to the arbiter. [tripped] is the
   start-of-block breaker snapshot: a tripped entry is skipped exactly
   like the sequential scanner skips it (silently). *)
let spec_match ~fuel ~tripped view ei (c : ectx) (node : Graph.node) =
  let pname = c.entry.Program.pname in
  if tripped.(ei) then None
  else
    match c.heads with
    | Some heads when not (Pypm_term.Symbol.Set.mem node.Graph.op heads) ->
        Obs.emit ~node:node.Graph.id
          (Obs.Pruned { pattern = pname; via = Obs.Head_index });
        None
    | _ -> (
        let t = Term_view.term_of view node in
        let interp = Term_view.interp view in
        let t0 = now () in
        let outcome =
          Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
            c.entry.Program.pattern t
        in
        let dur = now () -. t0 in
        let obs_outcome =
          match outcome with
          | Outcome.Matched _ -> Obs.Matched
          | Outcome.No_match -> Obs.No_match
          | Outcome.Stuck -> Obs.Stuck
          | Outcome.Out_of_fuel -> Obs.Out_of_fuel
        in
        Obs.emit ~node:node.Graph.id ~dur
          (Obs.Match_attempt
             {
               pattern = pname;
               outcome = obs_outcome;
               visits = Matcher.last_visits ();
             });
        match outcome with
        | Outcome.Matched (theta, phi) -> Some (Sw_witness (theta, phi))
        | Outcome.Out_of_fuel ->
            Obs.emit ~node:node.Graph.id
              (Obs.Fuel_exhausted { pattern = pname; fuel });
            Some Sw_fuel_out
        | Outcome.No_match | Outcome.Stuck -> None)

(* All entries at one node, scan style (Naive/Index), in entry order. *)
let spec_scan_node ~fuel ~tripped ~ectxs view node =
  let acc = ref [] in
  Array.iteri
    (fun ei c ->
      match spec_match ~fuel ~tripped view ei c node with
      | Some s -> acc := (ei, s) :: !acc
      | None -> ())
    ectxs;
  List.rev !acc

(* All entries at one node through the shared plan, mirroring
   [plan_match_at]: one trie walk covers the compiled patterns, fallback
   entries run the backtracking matcher behind their prefilter. *)
let spec_plan_node ~fuel ~tripped ~walk ~plan ~pctxs view (node : Graph.node) =
  let t = Term_view.term_of view node in
  let interp = Term_view.interp view in
  let t0 = now () in
  let results = Plan.match_node plan ~interp t in
  walk := !walk +. (now () -. t0);
  let acc = ref [] in
  Array.iteri
    (fun ei pe ->
      match pe with
      | Trie c ->
          if not tripped.(ei) then begin
            let pname = c.entry.Program.pname in
            match List.assoc_opt pname results with
            | Some (theta, phi) ->
                Obs.emit ~node:node.Graph.id (Obs.Plan_match { pattern = pname });
                acc := (ei, Sw_witness (theta, phi)) :: !acc
            | None ->
                Obs.emit ~node:node.Graph.id
                  (Obs.Pruned { pattern = pname; via = Obs.Plan_trie })
          end
      | Backtrack c -> (
          match spec_match ~fuel ~tripped view ei c node with
          | Some s -> acc := (ei, s) :: !acc
          | None -> ()))
    pctxs;
  List.rev !acc

(* One shard's slice of a block. Shard 0 runs on the calling domain,
   whose sinks (the pass's aggregator) are already attached, so it emits
   directly and returns no events; workers capture their domain-local
   stream into a collector for the arbiter to [Obs.replay]. *)
let shard_slice ~shard specs_at (nodes : Graph.node array) lo hi =
  let t0 = now () in
  let walk = ref 0. in
  let work () = Array.init (hi - lo) (fun k -> specs_at ~walk nodes.(lo + k)) in
  if shard = 0 then
    let sp = work () in
    { sr_events = []; sr_specs = sp; sr_walk = !walk; sr_elapsed = now () -. t0 }
  else
    let coll = Obs.Collector.create () in
    let sp = Obs.with_sink (Obs.Collector.sink coll) work in
    {
      sr_events = Obs.Collector.events coll;
      sr_specs = sp;
      sr_walk = !walk;
      sr_elapsed = now () -. t0;
    }

let spec_witnesses (r : shard_report) =
  Array.fold_left
    (fun a specs ->
      a
      + List.length
          (List.filter (function _, Sw_witness _ -> true | _ -> false) specs))
    0 r.sr_specs

(* Cut [b0, b1) into one contiguous slice per shard. *)
let shard_bounds ~shards b0 b1 =
  let len = b1 - b0 in
  let chunk = (len + shards - 1) / shards in
  Array.init shards (fun i ->
      let lo = b0 + (i * chunk) in
      if lo >= b1 then (b1, b1) else (lo, min b1 (lo + chunk)))

let run_sharded rc ~team ~max_rewrites runnable g =
  let stats = rc.rstats in
  let domains = Team.shards team in
  let ectxs, plan_parts =
    match runnable with
    | Scan ctxs -> (Array.of_list ctxs, None)
    | Planned (plan, pctxs) ->
        let pa = Array.of_list pctxs in
        (Array.map (function Trie c | Backtrack c -> c) pa, Some (plan, pa))
  in
  let n_entries = Array.length ectxs in
  let tripped = Array.make (max n_entries 1) false in
  let refresh_tripped () =
    Array.iteri
      (fun ei (c : ectx) -> tripped.(ei) <- Breaker.tripped c.breaker)
      ectxs
  in
  (* Same work-queue as [run_plan]: under Plan only dirty nodes are
     candidates; the full-traversal engines rescan everything. *)
  let dirty =
    match plan_parts with
    | None -> None
    | Some _ ->
        let d : (int, unit) Hashtbl.t = Hashtbl.create 512 in
        List.iter
          (fun (n : Graph.node) -> Hashtbl.replace d n.Graph.id ())
          (Graph.live_nodes g);
        Some d
  in
  let fuel = rc.rfuel in
  (* Mirror the sequential scanner's view memoization. When the graph
     holds structurally equal duplicate nodes, [Term_view.node_of]
     resolves a witness term to whichever duplicate was registered
     first — so which node a rule variable rewires to depends on the
     [term_of] call ORDER, not just the set of calls. The sequential
     scan registers every node where at least one live entry survives
     the head prefilter (plan candidates always walk the trie), in
     worklist order; the arbiter must do exactly the same as it
     consumes, or a firing can splice in the wrong duplicate and break
     byte-identity. *)
  let register_like_sequential view (node : Graph.node) =
    let attempted =
      match plan_parts with
      | Some _ -> true
      | None ->
          Array.exists
            (fun (c : ectx) ->
              (not (Breaker.tripped c.breaker))
              &&
              match c.heads with
              | Some heads -> Pypm_term.Symbol.Set.mem node.Graph.op heads
              | None -> true)
            ectxs
    in
    if attempted then
      ignore (Term_view.term_of view node : Pypm_term.Term.t)
  in
  (* Replay one block's outcomes in node order; returns the replacement
     root if a fire ended the iteration. [views.(0)] is the arbiter's
     own view; witnesses are fired out of it, never out of a worker's. *)
  let consume_block (views : Term_view.t array) (nodes : Graph.node array)
      bounds reports =
    let main_view = views.(0) in
    (* A witness substitution binds the worker view's term copies. Both
       views resolve term -> node through a table whose [equal] leads
       with physical equality; firing with foreign copies would push
       every guard/instantiation lookup onto the structural path, which
       unfolds the shared DAG — exponential on transformer-shaped
       graphs. Rebinding through the worker's [node_of] (a physical
       hit) and the arbiter's memoized [term_of] keeps every downstream
       lookup on the fast path, exactly like the sequential scan firing
       out of its own view — and lets structural duplicates resolve by
       the arbiter view's registration order, as sequential would. *)
    let localize worker_view theta =
      Pypm_term.Subst.of_list
        (List.map
           (fun (x, t) ->
             match Term_view.node_of worker_view t with
             | Some n -> (x, Term_view.term_of main_view n)
             | None -> (x, t))
           (Pypm_term.Subst.bindings theta))
    in
    let fired = ref None in
    let replayed = ref 0 and discarded = ref 0 in
    let fired_n = ref 0 in
    let emit_merged () =
      Obs.emit
        (Obs.Shard_merged
           { fired = !fired_n; replayed = !replayed; discarded = !discarded })
    in
    (try
       Array.iteri
         (fun i (r : shard_report) ->
           let lo, _ = bounds.(i) in
           Array.iteri
             (fun k specs ->
               let node = nodes.(lo + k) in
               if !fired <> None then
                 discarded := !discarded + List.length specs
               else begin
                 check_deadline rc;
                 stats.nodes_visited <- stats.nodes_visited + 1;
                 register_like_sequential main_view node;
                 let node_root = ref None in
                 List.iter
                   (fun (ei, s) ->
                     if !node_root <> None then incr discarded
                     else begin
                       incr replayed;
                       let c = ectxs.(ei) in
                       if Breaker.tripped c.breaker then incr discarded
                       else
                         match s with
                         | Sw_fuel_out -> strike rc c
                         | Sw_witness (theta, phi) -> (
                             let theta = localize views.(i) theta in
                             let before_last_id =
                               match dirty with
                               | Some _ -> last_node_id g
                               | None -> -1
                             in
                             match fire rc g main_view c node theta phi with
                             | Some new_root ->
                                 node_root := Some new_root;
                                 incr fired_n;
                                 Option.iter
                                   (fun d ->
                                     mark_dirty_region g d ~before_last_id
                                       new_root)
                                   dirty
                             | None -> ())
                     end)
                   specs;
                 match !node_root with
                 | Some nr -> fired := Some nr
                 | None ->
                     Option.iter
                       (fun d -> Hashtbl.remove d node.Graph.id)
                       dirty
               end)
             r.sr_specs)
         reports
     with Aborted ->
       emit_merged ();
       raise Aborted);
    emit_merged ();
    !fired
  in
  let rec iterate () =
    stats.iterations <- stats.iterations + 1;
    Obs.emit (Obs.Iteration { n = stats.iterations });
    (* Per-domain views: term-view memo tables are not thread-safe, and
       the team pins shard i to one domain, so views.(i) is only ever
       touched by that domain within this iteration. *)
    let views = Array.init domains (fun _ -> Term_view.create g) in
    let specs_at i ~walk node =
      match plan_parts with
      | None -> spec_scan_node ~fuel ~tripped ~ectxs views.(i) node
      | Some (plan, pctxs) ->
          spec_plan_node ~fuel ~tripped ~walk ~plan ~pctxs views.(i) node
    in
    let nodes =
      let live = Graph.live_nodes g in
      Array.of_list
        (match dirty with
        | None -> live
        | Some d ->
            List.filter (fun (n : Graph.node) -> Hashtbl.mem d n.Graph.id) live)
    in
    let total = Array.length nodes in
    (* Blocks bound the speculation wasted past a fire: at most one block
       of matching is thrown away per iteration. *)
    let block = max (8 * domains) 32 in
    let fired = ref None in
    let b0 = ref 0 in
    while !fired = None && !b0 < total do
      let b1 = min total (!b0 + block) in
      let bounds = shard_bounds ~shards:domains !b0 b1 in
      refresh_tripped ();
      Obs.emit (Obs.Shard_dispatch { domains; candidates = b1 - !b0 });
      let reports =
        Team.run team (fun i ->
            let lo, hi = bounds.(i) in
            shard_slice ~shard:i (specs_at i) nodes lo hi)
      in
      Array.iteri
        (fun i (r : shard_report) ->
          if i > 0 then Obs.replay r.sr_events;
          stats.plan_time <- stats.plan_time +. r.sr_walk;
          let lo, hi = bounds.(i) in
          Obs.emit ~dur:r.sr_elapsed
            (Obs.Shard_matched
               { domain = i; nodes = hi - lo; witnesses = spec_witnesses r }))
        reports;
      fired := consume_block views nodes bounds reports;
      b0 := b1
    done;
    match !fired with
    | Some _ ->
        stats.collected <- stats.collected + Graph.gc g;
        if stats.total_rewrites < max_rewrites then iterate ()
    | None -> stats.reached_fixpoint <- true
  in
  iterate ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Pull the per-pattern numbers out of the event aggregator: the events
   are the single source of truth, the mutable records are the snapshot
   handed to the caller. ([quarantined] is set directly by the breaker,
   not derived from events.) *)
let finalize (program : Program.t) agg stats =
  List.iter2
    (fun (e : Program.entry) ps ->
      match Obs.Agg.find agg e.Program.pname with
      | None -> ()
      | Some (a : Obs.Agg.pat) ->
          ps.attempts <- a.Obs.Agg.attempts;
          ps.skipped <- a.Obs.Agg.pruned_head;
          ps.plan_pruned <- a.Obs.Agg.pruned_plan;
          ps.matches <- a.Obs.Agg.matches;
          ps.rewrites <- a.Obs.Agg.rewrites;
          ps.fuel_exhausted <- a.Obs.Agg.fuel_exhausted;
          ps.guard_rejections <- a.Obs.Agg.guard_rejects;
          ps.rolled_back <- a.Obs.Agg.rolled_back;
          ps.match_time <- a.Obs.Agg.match_time)
    program.Program.entries stats.per_pattern;
  stats.fuel_exhausted <-
    List.fold_left
      (fun acc (ps : pattern_stats) -> acc + ps.fuel_exhausted)
      0 stats.per_pattern;
  stats.errors <- List.rev stats.errors;
  stats.provenance <- List.rev stats.provenance

let run_prepared_cfg ?(config = Config.default) (p : prepared) g =
  let { Config.check_types; fuel; max_rewrites; deadline_s; quarantine_after;
        inject; on_error; domains; team; _ } = config in
  let program = p.p_program in
  let stats = fresh_stats program in
  let agg = Obs.Agg.create () in
  (* A fault schedule is a seeded stream consumed in query order; sharded
     matching would permute the queries, so an active schedule pins the
     pass to the sequential path. A borrowed [team] sets the domain count
     (spawning a team costs milliseconds — callers running many passes
     should reuse one); it too is bypassed under active injection. *)
  let domains =
    if Inject.is_active inject then 1
    else
      match team with Some t -> Team.shards t | None -> max 1 domains
  in
  stats.domains_used <- domains;
  stats.engine_used <- engine_name p.p_engine;
  stats.engine_requested <- engine_name p.p_engine;
  stats.cfg_check_types <- check_types;
  stats.cfg_fuel <- fuel;
  stats.cfg_max_rewrites <- max_rewrites;
  Obs.emit
    (Obs.Pass_begin
       {
         engine = engine_name p.p_engine;
         patterns = List.length program.Program.entries;
       });
  let t_start = now () in
  let rc =
    {
      rstats = stats;
      rinject = inject;
      ron_error = on_error;
      rdeadline = Option.map (fun d -> t_start +. d) deadline_s;
      rdeadline_budget = Option.value ~default:0. deadline_s;
      rcheck_types = check_types;
      rfuel = fuel;
    }
  in
  let slots = entry_slots ~quarantine_after program stats in
  let used_plan = ref None in
  Obs.with_sink (Obs.Agg.sink agg) (fun () ->
      (try
         let runnable = prepare_engine rc p slots in
         (match runnable with
         | Planned (plan, _) -> used_plan := Some plan
         | Scan _ -> ());
         if domains = 1 then
           match runnable with
           | Scan ctxs -> run_scan rc ~max_rewrites ctxs g
           | Planned (plan, pctxs) -> run_plan rc ~max_rewrites plan pctxs g
         else
           match team with
           | Some team -> run_sharded rc ~team ~max_rewrites runnable g
           | None ->
               let team = Team.create ~shards:domains in
               Fun.protect
                 ~finally:(fun () -> Team.shutdown team)
                 (fun () -> run_sharded rc ~team ~max_rewrites runnable g)
       with Aborted -> ());
      (* The e-graph engine's saturation post-phase: runs after the greedy
         pass (never instead of it) and commits only strict whole-graph
         cost improvements, so the result is never costlier than the Plan
         engine's on the same input. Skipped when the pass already aborted
         (deadline, fatal) or the ladder degraded below Egraph. The
         remaining wall-clock budget becomes the phase's polled anytime
         deadline: it never raises, it stops saturating. *)
      if
        stats.fatal = None
        && (not stats.deadline_hit)
        && String.equal stats.engine_used (engine_name Egraph)
      then begin
        let deadline () =
          match rc.rdeadline with Some d -> now () > d | None -> false
        in
        match Eqsat.phase ~deadline program g with
        | Error _ -> ()
        | Ok (o : Eqsat.outcome) ->
            stats.sat_iterations <- o.sat.Pypm_egraph.Saturate.iterations;
            stats.sat_unions <- o.sat.applications;
            stats.sat_skipped_rules <- o.rules_skipped;
            stats.sat_classes <- o.sat.final_classes;
            stats.sat_nodes <- o.sat.final_nodes;
            stats.sat_extracted <- o.extracted;
            stats.sat_spliced <- o.spliced;
            stats.sat_rejected <- o.splices_rejected;
            stats.sat_stop <-
              Pypm_egraph.Saturate.stop_reason_name o.sat.stop_reason;
            stats.sat_cost_before <- o.cost_before;
            stats.sat_cost_after <- o.cost_after;
            stats.total_rewrites <- stats.total_rewrites + o.spliced;
            stats.collected <- stats.collected + o.collected
      end);
  stats.wall_time <- now () -. t_start;
  finalize program agg stats;
  (* Static subsumption pruning: branches the plan compiler dropped
     because an earlier branch of the same pattern subsumes them. They
     join the dynamic per-pattern [plan_pruned] counter AFTER [finalize]
     (which overwrites the record from the event aggregator). *)
  (match !used_plan with
  | Some plan ->
      List.iter
        (fun (name, n) ->
          match find_pattern_stats stats name with
          | Some ps -> ps.plan_pruned <- ps.plan_pruned + n
          | None -> ())
        (Plan.pruned plan)
  | None -> ());
  Obs.emit
    (Obs.Pass_end
       { rewrites = stats.total_rewrites; iterations = stats.iterations });
  stats

(* The labelled entry points survive as thin shims: no call site breaks,
   new callers pass one [Config.t]. *)
let run_prepared ?check_types ?fuel ?max_rewrites ?deadline_s
    ?quarantine_after ?inject ?on_error ?domains ?team p g =
  run_prepared_cfg
    ~config:
      (Config.override ?check_types ?fuel ?max_rewrites ?deadline_s
         ?quarantine_after ?inject ?on_error ?domains ?team Config.default)
    p g

let prepare_cfg ?(config = Config.default) program =
  prepare ?engine:config.Config.engine ~indexed:config.Config.indexed program

let run_cfg ?(config = Config.default) (program : Program.t) g =
  run_prepared_cfg ~config (prepare_cfg ~config program) g

let run ?engine ?indexed ?check_types ?fuel ?max_rewrites ?deadline_s
    ?quarantine_after ?inject ?on_error ?domains ?team (program : Program.t) g
    =
  run_cfg
    ~config:
      (Config.override ?engine ?indexed ?check_types ?fuel ?max_rewrites
         ?deadline_s ?quarantine_after ?inject ?on_error ?domains ?team
         Config.default)
    program g

let run_result_cfg ?(config = Config.default) program g =
  let stats =
    run_cfg ~config:{ config with Config.on_error = `Fail } program g
  in
  match stats.fatal with Some e -> Error (e, stats) | None -> Ok stats

(* [run] with the strict error policy, surfacing the fatal error as a
   [result] for callers (the CLI) that must report it structurally. *)
let run_result ?engine ?indexed ?check_types ?fuel ?max_rewrites ?deadline_s
    ?quarantine_after ?inject ?domains ?team program g =
  run_result_cfg
    ~config:
      (Config.override ?engine ?indexed ?check_types ?fuel ?max_rewrites
         ?deadline_s ?quarantine_after ?inject ?domains ?team Config.default)
    program g

let provenance stats = stats.provenance

let match_only_cfg ?(config = Config.default) (program : Program.t) g =
  let { Config.engine; indexed; fuel; domains; team; _ } = config in
  let stats = fresh_stats program in
  let agg = Obs.Agg.create () in
  let t_start = now () in
  stats.iterations <- 1;
  let e = resolve_engine engine indexed in
  let domains =
    match team with Some t -> Team.shards t | None -> max 1 domains
  in
  stats.engine_used <- engine_name e;
  stats.domains_used <- domains;
  stats.engine_requested <- engine_name e;
  stats.cfg_check_types <- true;
  stats.cfg_fuel <- fuel;
  stats.cfg_max_rewrites <- 0;
  let used_plan = ref None in
  let rc =
    {
      rstats = stats;
      rinject = Inject.none;
      ron_error = `Quarantine;
      rdeadline = None;
      rdeadline_budget = 0.;
      rcheck_types = true;
      rfuel = fuel;
    }
  in
  let slots =
    entry_slots ~quarantine_after:max_int
      program stats
  in
  Obs.with_sink (Obs.Agg.sink agg) (fun () ->
      if domains = 1 then
        let view = Term_view.create g in
        match e with
        | Plan | Egraph ->
            (* matching is phase-free: the e-graph engine matches exactly
               as Plan does *)
            let plan = compile_plan program in
            used_plan := Some plan;
            let pctxs = plan_contexts plan program slots in
            List.iter
              (fun node ->
                ignore
                  (plan_match_at rc ~plan ~pctxs view node
                     ~on_match:(fun _ _ -> None)))
              (Graph.live_nodes g)
        | (Naive | Index) as e ->
            let ctxs = contexts ~indexed:(e = Index) program slots in
            List.iter
              (fun node ->
                stats.nodes_visited <- stats.nodes_visited + 1;
                List.iter
                  (fun c -> ignore (try_match rc view c node))
                  ctxs)
              (Graph.live_nodes g)
      else begin
        (* Sharded matching without firing: one round over all live
           nodes. The sequential match_only has no short-circuit — every
           entry is matched at every node — so the parallel split does
           identical work and yields identical per-pattern totals. *)
        let tripped =
          (* quarantine_after is max_int here: no breaker ever trips *)
          Array.make (max (List.length program.Program.entries) 1) false
        in
        let specs_at =
          match e with
          | Plan | Egraph ->
              let plan = compile_plan program in
              used_plan := Some plan;
              let pctxs = Array.of_list (plan_contexts plan program slots) in
              fun view ~walk node ->
                spec_plan_node ~fuel ~tripped ~walk ~plan ~pctxs view node
          | (Naive | Index) as e ->
              let ectxs =
                Array.of_list (contexts ~indexed:(e = Index) program slots)
              in
              fun view ~walk node ->
                ignore walk;
                spec_scan_node ~fuel ~tripped ~ectxs view node
        in
        let nodes = Array.of_list (Graph.live_nodes g) in
        let total = Array.length nodes in
        let bounds = shard_bounds ~shards:domains 0 total in
        let views = Array.init domains (fun _ -> Term_view.create g) in
        Obs.emit (Obs.Shard_dispatch { domains; candidates = total });
        let round team =
          Team.run team (fun i ->
              let lo, hi = bounds.(i) in
              shard_slice ~shard:i (specs_at views.(i)) nodes lo hi)
        in
        let reports =
          match team with
          | Some team -> round team
          | None ->
              let team = Team.create ~shards:domains in
              Fun.protect
                ~finally:(fun () -> Team.shutdown team)
                (fun () -> round team)
        in
        Array.iteri
          (fun i (r : shard_report) ->
            if i > 0 then Obs.replay r.sr_events;
            stats.plan_time <- stats.plan_time +. r.sr_walk;
            let lo, hi = bounds.(i) in
            Obs.emit ~dur:r.sr_elapsed
              (Obs.Shard_matched
                 { domain = i; nodes = hi - lo; witnesses = spec_witnesses r }))
          reports;
        stats.nodes_visited <- total
      end);
  stats.reached_fixpoint <- true;
  stats.wall_time <- now () -. t_start;
  finalize program agg stats;
  (match !used_plan with
  | Some plan ->
      List.iter
        (fun (name, n) ->
          match find_pattern_stats stats name with
          | Some ps -> ps.plan_pruned <- ps.plan_pruned + n
          | None -> ())
        (Plan.pruned plan)
  | None -> ());
  stats

let match_only ?engine ?indexed ?fuel ?domains ?team (program : Program.t) g =
  match_only_cfg
    ~config:
      (Config.override ?engine ?indexed ?fuel ?domains ?team Config.default)
    program g

let matches_of ?(fuel = 200_000) (program : Program.t) g =
  let view = Term_view.create g in
  let interp = Term_view.interp view in
  List.map
    (fun (entry : Program.entry) ->
      let hits =
        List.filter_map
          (fun node ->
            let t = Term_view.term_of view node in
            match
              Matcher.matches ~interp ~policy:Outcome.Policy.Backtrack ~fuel
                entry.Program.pattern t
            with
            | Outcome.Matched (theta, phi) ->
                Some (node.Graph.id, theta, phi)
            | _ -> None)
          (Graph.live_nodes g)
      in
      (entry.Program.pname, hits))
    program.Program.entries

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>pass: %d iteration(s), %d nodes visited, %d rewrites, %d collected, \
     %.3f s (%s engine%s)%s%s%s@,"
    s.iterations s.nodes_visited s.total_rewrites s.collected s.wall_time
    s.engine_used
    (if s.domains_used > 1 then
       Printf.sprintf ", %d domains" s.domains_used
     else "")
    (if s.plan_time > 0. then
       Printf.sprintf " (%.4f s in the shared plan)" s.plan_time
     else "")
    (if s.reached_fixpoint then ""
     else if s.deadline_hit then " (deadline hit)"
     else " (max rewrites hit)")
    (if s.rolled_back > 0 || s.cycle_rejections > 0 then
       Printf.sprintf " [%d rolled back, %d cycle-rejected]" s.rolled_back
         s.cycle_rejections
     else "");
  if s.fuel_exhausted > 0 then
    Format.fprintf ppf
      "  WARNING: %d match attempt(s) ran out of fuel — these are not \
       no-matches; the pass may have missed rewrites (raise ~fuel)@,"
      s.fuel_exhausted;
  if s.sat_stop <> "" then
    Format.fprintf ppf
      "  egraph: %d round(s), %d union(s), %d/%d/%d \
       extracted/spliced/rejected, %d classes / %d nodes, stop=%s, cost \
       %.3e -> %.3e s%s@,"
      s.sat_iterations s.sat_unions s.sat_extracted s.sat_spliced
      s.sat_rejected s.sat_classes s.sat_nodes s.sat_stop s.sat_cost_before
      s.sat_cost_after
      (if s.sat_skipped_rules > 0 then
         Printf.sprintf " (%d rule(s) not convertible)" s.sat_skipped_rules
       else "");
  (match s.fatal with
  | Some e -> Format.fprintf ppf "  FATAL: %a@," pp_error e
  | None -> ());
  List.iter
    (fun e -> Format.fprintf ppf "  error: %a@," pp_error e)
    s.errors;
  List.iter
    (fun ps ->
      Format.fprintf ppf
        "  %-24s attempts %-6d skipped %-6d pruned %-6d matches %-5d \
         rewrites %-5d %.4f s%s%s@,"
        ps.ps_name ps.attempts ps.skipped ps.plan_pruned ps.matches
        ps.rewrites ps.match_time
        (if ps.fuel_exhausted > 0 then
           Printf.sprintf " fuel-exhausted %d" ps.fuel_exhausted
         else "")
        (if ps.quarantined then " QUARANTINED" else ""))
    s.per_pattern;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let stats_json (s : stats) =
  let buf = Buffer.create 1024 in
  let str v = "\"" ^ Obs.json_escape v ^ "\"" in
  let fld k v = Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v) in
  let sep () = Buffer.add_char buf ',' in
  Buffer.add_char buf '{';
  fld "engine" (str s.engine_used);
  sep ();
  fld "domains" (string_of_int s.domains_used);
  sep ();
  (* the run's configuration, so archived stats (BENCH_*.json, serve
     responses) are self-describing: what was asked for vs what ran *)
  Buffer.add_string buf
    (Printf.sprintf
       "\"config\":{\"engine_requested\":%s,\"engine_used\":%s,\"fuel\":%d,\"max_rewrites\":%d,\"check_types\":%b,\"domains\":%d}"
       (str s.engine_requested) (str s.engine_used) s.cfg_fuel
       s.cfg_max_rewrites s.cfg_check_types s.domains_used);
  sep ();
  fld "iterations" (string_of_int s.iterations);
  sep ();
  fld "nodes_visited" (string_of_int s.nodes_visited);
  sep ();
  fld "total_rewrites" (string_of_int s.total_rewrites);
  sep ();
  fld "type_rejections" (string_of_int s.type_rejections);
  sep ();
  fld "fuel_exhausted" (string_of_int s.fuel_exhausted);
  sep ();
  fld "cycle_rejections" (string_of_int s.cycle_rejections);
  sep ();
  fld "rolled_back" (string_of_int s.rolled_back);
  sep ();
  fld "quarantined" (string_of_int s.quarantined);
  sep ();
  fld "collected" (string_of_int s.collected);
  sep ();
  fld "wall_time_s" (Printf.sprintf "%.6f" s.wall_time);
  sep ();
  fld "plan_time_s" (Printf.sprintf "%.6f" s.plan_time);
  sep ();
  fld "reached_fixpoint" (string_of_bool s.reached_fixpoint);
  sep ();
  fld "deadline_hit" (string_of_bool s.deadline_hit);
  sep ();
  fld "errors"
    ("["
    ^ String.concat "," (List.map (fun e -> str (error_message e)) s.errors)
    ^ "]");
  sep ();
  fld "fatal"
    (match s.fatal with None -> "null" | Some e -> str (error_message e));
  sep ();
  fld "rewrites_applied" (string_of_int (List.length s.provenance));
  (* The egraph object appears only when the saturation post-phase ran;
     non-egraph responses keep their pre-egraph shape (and size — the serve
     result cache charges by encoded bytes). *)
  if s.sat_stop <> "" then begin
    sep ();
    Buffer.add_string buf
      (Printf.sprintf
         "\"egraph\":{\"iterations\":%d,\"unions\":%d,\"skipped_rules\":%d,\"classes\":%d,\"nodes\":%d,\"extracted\":%d,\"spliced\":%d,\"rejected\":%d,\"stop\":%s,\"cost_before_s\":%.9f,\"cost_after_s\":%.9f}"
         s.sat_iterations s.sat_unions s.sat_skipped_rules s.sat_classes
         s.sat_nodes s.sat_extracted s.sat_spliced s.sat_rejected
         (str s.sat_stop) s.sat_cost_before s.sat_cost_after)
  end;
  sep ();
  Buffer.add_string buf "\"per_pattern\":[";
  List.iteri
    (fun i (ps : pattern_stats) ->
      if i > 0 then sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"attempts\":%d,\"skipped\":%d,\"plan_pruned\":%d,\"matches\":%d,\"rewrites\":%d,\"fuel_exhausted\":%d,\"guard_rejections\":%d,\"rolled_back\":%d,\"quarantined\":%b,\"match_time_s\":%.6f}"
           (str ps.ps_name) ps.attempts ps.skipped ps.plan_pruned ps.matches
           ps.rewrites ps.fuel_exhausted ps.guard_rejections ps.rolled_back
           ps.quarantined ps.match_time))
    s.per_pattern;
  Buffer.add_string buf "]}";
  Buffer.contents buf
