(** The greedy rewrite pass.

    The paper's description (section 2.4): the compiler repeatedly traverses
    the graph; at each node it tries to match the subtree rooted there
    against each loaded pattern in order; on a match, the pattern's rules
    run in order and the first whose assertions pass fires, destructively
    replacing the root of the match; this repeats until no matches remain.

    [run] implements exactly that, with instrumentation: per-pattern match
    attempts, matches, rewrites, and matcher wall-clock time — the data
    behind figures 12 and 13 — and a choice of four {e matching engines}:

    - {!Naive}: the paper's implementation — every pattern is tried at
      every node with the backtracking matcher.
    - {!Index}: the root-head index — a pattern whose
      {!Pypm_pattern.Pattern.root_heads} excludes the node's operator is
      skipped without running the matcher.
    - {!Plan}: the pattern-set compiler ({!Pypm_plan.Plan}) — the whole
      library is compiled into one shared discrimination trie and each node
      is matched against every compiled pattern in a single trie walk;
      patterns outside the compilable fragment fall back to the
      backtracking matcher behind a root-head prefilter. The pass is also
      {e incremental}: after a rewrite fires, only the dirty region (the
      nodes the rewrite created plus the transitive consumers of the
      replacement root) is re-matched; everything else keeps its
      last-scanned no-match status, which is sound because a node's match
      outcome depends only on its term view. The rewrite sequence — and
      hence the final graph — is identical to the full-traversal engines'
      (checked in [test/test_plan.ml]).
    - {!Egraph}: the Plan machinery followed by one cost-guided
      equality-saturation post-phase ({!Eqsat.phase}): the program's
      convertible rules saturate an e-graph over the greedy result under
      node/class/iteration budgets, each output's cheapest equivalent
      under the {!Pypm_kernels.Cost} model is extracted, and splices are
      committed transactionally only on strict whole-graph cost
      improvement — so the result is never costlier than {!Plan}'s on the
      same graph, by construction. The phase recovers rewrites the greedy
      order destroyed (the paper's phase-ordering weakness). Counters
      land in the [sat_*] stats fields; [?deadline_s] bounds the phase
      like the rest of the pass.

    {2 Resilience}

    The pass is built to survive misbehaving rules, patterns and engines
    without corrupting the graph or aborting the process:

    - {e transactional firing} — from instantiation to the final rewiring,
      every firing attempt runs inside a graph transaction
      ({!Pypm_graph.Graph.Txn}); a failed instantiate, a type or cycle
      rejection after partial construction, or an injected fault rolls the
      graph back to its exact pre-attempt state ([rolled_back],
      [cycle_rejections]);
    - {e structured errors} — a rule that fails to instantiate or whose
      guard raises becomes an {!error} value in [stats.errors] (policy
      [`Quarantine], the default) or the pass's [stats.fatal] (policy
      [`Fail]), never an exception escaping [run];
    - {e quarantine} — a pattern that keeps striking (fuel exhaustion,
      rule errors, cycle rejections) trips its circuit breaker after
      [?quarantine_after] strikes and is skipped for the rest of the pass;
    - {e degradation ladder} — if the requested engine cannot be prepared
      (plan compilation fails, or no rule converts to a saturation
      rewrite), the pass degrades Egraph → Plan → Index → Naive with a
      warn event instead of dying;
    - {e deadline} — [?deadline_s] bounds the pass's wall-clock time;
      on expiry the pass stops where it is and returns partial stats with
      [reached_fixpoint = false] and [deadline_hit = true];
    - {e fault injection} — [?inject] threads a seeded
      {!Pypm_resilience.Resilience.Inject.schedule} through every failure
      point, for the fuzzer's crash-safety properties and for replaying
      fault schedules from the CLI. *)

open Pypm_term
open Pypm_graph

type engine = Naive | Index | Plan | Egraph

val engine_name : engine -> string

(** One value for the knobs the [run] family used to take as eleven
    loose optional arguments. Build with a record update over
    {!Config.default} and hand the same value to [prepare_cfg] /
    [run_cfg] / [run_prepared_cfg] / [match_only_cfg]; the labelled
    entry points below remain as thin shims over these. *)
module Config : sig
  type t = {
    engine : engine option;
        (** [None]: fall back to [indexed]'s Naive/Index choice, exactly
            like omitting [?engine] *)
    indexed : bool;
    check_types : bool;
    fuel : int;  (** per-match visit budget (default 200_000) *)
    max_rewrites : int;  (** divergence backstop (default 10_000) *)
    deadline_s : float option;  (** anytime wall-clock budget *)
    quarantine_after : int;  (** breaker strikes (default 5) *)
    inject : Pypm_resilience.Resilience.Inject.schedule;
    on_error : [ `Quarantine | `Fail ];
    domains : int;  (** matching-phase shards (default 1) *)
    team : Pypm_parallel.Team.t option;
        (** borrowed team; its shard count overrides [domains] *)
  }

  (** The defaults every labelled entry point has always used. *)
  val default : t

  (** [override ?engine ... base] is [base] with the given arguments
      replaced — the bridge the labelled shims use. *)
  val override :
    ?engine:engine ->
    ?indexed:bool ->
    ?check_types:bool ->
    ?fuel:int ->
    ?max_rewrites:int ->
    ?deadline_s:float ->
    ?quarantine_after:int ->
    ?inject:Pypm_resilience.Resilience.Inject.schedule ->
    ?on_error:[ `Quarantine | `Fail ] ->
    ?domains:int ->
    ?team:Pypm_parallel.Team.t ->
    t ->
    t
end

(** Structured pass errors. A rule that misbehaves produces one of these
    instead of an exception; under the default [`Quarantine] policy they
    accumulate in [stats.errors] while the pass continues, under [`Fail]
    the first one becomes [stats.fatal] and stops the pass. In both cases
    the graph has already been rolled back to its pre-attempt state. *)
type error =
  | Rule_failed of { pattern : string; rule : string; reason : string }
      (** [Rule.instantiate] returned [Error] after the pattern matched
          (e.g. a template variable unbound by the pattern). *)
  | Guard_raised of { pattern : string; rule : string; reason : string }
      (** Guard evaluation raised an exception (distinct from a guard
          cleanly evaluating to false, which is a normal rejection). *)
  | Engine_unavailable of { engine : string; reason : string }
      (** No rung of the degradation ladder could be prepared. Always
          fatal. *)

val pp_error : Format.formatter -> error -> unit

(** [error_message e] is [pp_error] rendered to a string — the CLI's
    structured exit message. *)
val error_message : error -> string

type pattern_stats = {
  ps_name : string;
  mutable attempts : int;
      (** nodes the backtracking matcher ran against (plan-compiled
          patterns never run it, so their attempts stay 0 under [Plan]) *)
  mutable skipped : int;
      (** nodes skipped by a root-head check without running the matcher:
          the root-head index under [Index], the fallback prefilter under
          [Plan]; always 0 under [Naive] *)
  mutable plan_pruned : int;
      (** pruning credited to the shared plan: nodes where the trie walk
          rejected this (compiled) pattern without running the
          backtracking matcher, plus the pattern's branches the compiler
          dropped statically because an earlier branch subsumes them
          ([Plan.pruned]); always 0 under [Naive] and [Index] *)
  mutable matches : int;  (** successful matches (rules may still not fire) *)
  mutable rewrites : int;  (** rules fired *)
  mutable fuel_exhausted : int;
      (** match attempts the matcher abandoned when [~fuel] ran out — {b
          not} clean no-matches: a witness may exist that was never found *)
  mutable guard_rejections : int;
      (** rules whose guard evaluated to false on a witness *)
  mutable rolled_back : int;
      (** firing attempts of this pattern's rules that were rolled back *)
  mutable quarantined : bool;
      (** the pattern's circuit breaker tripped: it was skipped from that
          point to the end of the pass *)
  mutable match_time : float;  (** seconds inside the backtracking matcher *)
}

type stats = {
  mutable iterations : int;  (** full traversals *)
  mutable nodes_visited : int;
      (** nodes actually scanned; under [Plan] clean nodes are skipped, so
          this is the work-queue length, not live-count × iterations *)
  mutable total_rewrites : int;
  mutable type_rejections : int;
      (** rules whose replacement would have changed the matched node's
          tensor type, rejected under [~check_types:true] *)
  mutable fuel_exhausted : int;
      (** total fuel-exhausted attempts across all patterns; a nonzero
          value means the "fixpoint" may be short of the true one *)
  mutable cycle_rejections : int;
      (** firings rejected because the rewiring would have closed a cycle;
          the attempt was rolled back and the pass continued *)
  mutable rolled_back : int;
      (** total firing attempts undone by the transaction journal (failed
          instantiates, type and cycle rejections, injected faults) *)
  mutable quarantined : int;  (** patterns quarantined during the pass *)
  mutable collected : int;  (** garbage nodes removed *)
  mutable wall_time : float;  (** whole pass, seconds *)
  mutable plan_time : float;
      (** seconds inside the shared plan's trie walk (0 unless [Plan]) *)
  mutable reached_fixpoint : bool;
  mutable deadline_hit : bool;
      (** the pass stopped at [?deadline_s]; implies
          [reached_fixpoint = false] unless the fixpoint was reached
          first *)
  mutable engine_used : string;
      (** the engine that actually ran — differs from the requested one
          when the degradation ladder stepped down *)
  mutable domains_used : int;
      (** domains the matching phase ran on (1 = the sequential path; an
          active fault-injection schedule forces 1) *)
  mutable engine_requested : string;
      (** the engine the configuration asked for, before any degradation
          — compare with [engine_used] *)
  mutable cfg_check_types : bool;  (** the run's [check_types] setting *)
  mutable cfg_fuel : int;  (** the run's per-match fuel budget *)
  mutable cfg_max_rewrites : int;
      (** the run's rewrite backstop (0 for [match_only]) *)
  mutable errors : error list;
      (** contained rule errors, in occurrence order (policy
          [`Quarantine]) *)
  mutable fatal : error option;
      (** the error that stopped the pass (policy [`Fail], or
          [Engine_unavailable]); the stats up to that point are valid *)
  mutable provenance : Pypm_obs.Obs.Provenance.step list;
      (** the rewrite provenance log: one step per fired rule, in firing
          order — what [pypmc trace] replays *)
  mutable sat_iterations : int;
      (** saturation rounds the {!Egraph} post-phase executed; all
          [sat_*] fields stay zero / [""] unless that phase ran *)
  mutable sat_unions : int;  (** equalities added by saturation rewrites *)
  mutable sat_skipped_rules : int;
      (** program rules that could not be converted to saturation
          rewrites (attributed templates, witness-needing patterns) *)
  mutable sat_classes : int;  (** e-classes when saturation stopped *)
  mutable sat_nodes : int;  (** e-nodes when saturation stopped *)
  mutable sat_extracted : int;
      (** graph outputs extraction produced a candidate term for *)
  mutable sat_spliced : int;
      (** splices committed (strict whole-graph cost improvement) *)
  mutable sat_rejected : int;
      (** splices rolled back (no improvement, build failure, or cycle) *)
  mutable sat_stop : string;
      (** why saturation stopped ({!Pypm_egraph.Saturate.stop_reason_name}:
          "saturated", "iter_limit", "node_limit", "class_limit",
          "deadline"); [""] when the phase did not run *)
  mutable sat_cost_before : float;
      (** simulated whole-graph seconds before the post-phase *)
  mutable sat_cost_after : float;  (** ... and after; never greater *)
  per_pattern : pattern_stats list;
}

(** Name-keyed lookup into [per_pattern]. Unambiguous because
    {!Program.make} rejects duplicate pattern names; the pass itself uses
    per-entry records, never this. *)
val find_pattern_stats : stats -> string -> pattern_stats option

(** [provenance stats] is [stats.provenance]. *)
val provenance : stats -> Pypm_obs.Obs.Provenance.step list

(** The pass's log source ("pypm.pass"): [debug] on each rule firing,
    [warn] on type-check rejections, rollbacks, quarantines, engine
    degradations and deadline hits. Enable with
    [Logs.Src.set_level Pass.log_src (Some Logs.Debug)]. *)
val log_src : Logs.src

(** [run ?engine ?indexed ?fuel ?max_rewrites program graph] rewrites
    [graph] to fixpoint (or until [max_rewrites], default 10_000, as a
    divergence backstop). [fuel] bounds each individual match (default
    200_000 visits). [engine] selects the matching engine (see above);
    when omitted, [indexed] (default false) selects between [Naive] and
    [Index] for compatibility with older callers. [check_types] (default
    true) refuses to fire a rule whose replacement node's tensor type
    differs from the matched root's — a rewrite must preserve what the
    rest of the graph observes; rejected firings are rolled back, counted
    in [type_rejections], and the next rule is tried. Replacements typed
    [None] (opaque) are always allowed.

    Resilience knobs:

    - [deadline_s]: wall-clock budget in seconds; on expiry the pass
      returns partial stats with [deadline_hit = true].
    - [quarantine_after] (default 5): strikes before a pattern's circuit
      breaker trips and the pattern is skipped for the rest of the pass.
    - [inject] (default {!Pypm_resilience.Resilience.Inject.none}): the
      fault-injection schedule threaded through the pass's failure
      points.
    - [on_error] (default [`Quarantine]): what a structured rule error
      does — [`Quarantine] records it in [stats.errors], strikes the
      pattern's breaker and continues; [`Fail] sets [stats.fatal] and
      stops the pass at the first error.

    [run] does not raise on rule or engine failures; every failure mode
    is a stats field.

    {2 Intra-pass parallelism}

    [domains] (default 1) shards the matching phase of every iteration
    across that many OCaml domains (see [doc/parallel.md]). Workers match
    their contiguous slice of the candidate worklist read-only against
    per-domain term views; a deterministic arbiter on the calling domain
    replays the speculative outcomes in node order — skipping quarantined
    entries at consumption time, striking on fuel exhaustion, firing the
    first surviving witness — so firing order, rewrite provenance and the
    final graph are {e byte-identical} to the sequential pass (the
    [parallel-pass-agreement] fuzz property checks this). Speculative
    per-pattern counters (attempts/matches past the fire point) may
    exceed the sequential ones, and [plan_time] aggregates walk time
    across domains (CPU seconds, not wall). An active [?inject] schedule
    forces [domains = 1]: its fault stream is consumed in query order.

    [team] lends an existing {!Pypm_parallel.Team} instead of spawning
    one per call; its shard count overrides [domains]. Spawning and
    joining domains costs milliseconds — callers running many passes
    (benchmarks, serve workers) should create one team and reuse it. The
    pass never shuts a borrowed team down. *)

(** {1 Prepared engines}

    A {!prepared} value is the run-independent half of an engine: the
    program, the engine choice, and — for {!Plan} — the compiled shared
    trie (or its compilation failure, replayed to the degradation ladder
    on every run). Preparing once and calling {!run_prepared} many times
    amortizes plan compilation across runs; the serve worker pool holds
    one prepared engine per (program, engine) pair so the trie is built
    once per worker, not once per request.

    A [prepared] value is immutable and safe to reuse across sequential
    runs on the same domain. Breakers, stats and fault schedules are
    created fresh inside every {!run_prepared} call. *)

type prepared

(** [prepare ?engine ?indexed program] resolves the engine exactly like
    {!run} and compiles the plan eagerly when the engine is {!Plan}. A
    plan-compilation failure is {e not} raised here; it is stored and
    drives the degradation ladder on each subsequent run. *)
val prepare : ?engine:engine -> ?indexed:bool -> Program.t -> prepared

(** [prepare] driven by a configuration's [engine]/[indexed] fields. *)
val prepare_cfg : ?config:Config.t -> Program.t -> prepared

(** The engine that was requested at prepare time (the ladder may still
    step down during a run; see [stats.engine_used]). *)
val prepared_engine : prepared -> engine

val prepared_program : prepared -> Program.t

(** The configuration-first entry points. [?config] defaults to
    {!Config.default}; a [Config.t] with [engine]/[indexed] set is only
    consulted by [run_cfg]/[prepare_cfg] ([run_prepared_cfg] runs whatever
    engine [p] was prepared for). *)
val run_prepared_cfg : ?config:Config.t -> prepared -> Graph.t -> stats

val run_cfg : ?config:Config.t -> Program.t -> Graph.t -> stats

val run_result_cfg :
  ?config:Config.t -> Program.t -> Graph.t -> (stats, error * stats) result

val match_only_cfg : ?config:Config.t -> Program.t -> Graph.t -> stats

(** [run_prepared ... p g] is {!run} with the engine-preparation work
    (plan compilation) reused from [p]. Per-run state — circuit breakers,
    stats records, the fault-injection schedule — is fresh on every call,
    and the [?inject] [Plan_compile] point is still consulted per run. *)
val run_prepared :
  ?check_types:bool ->
  ?fuel:int ->
  ?max_rewrites:int ->
  ?deadline_s:float ->
  ?quarantine_after:int ->
  ?inject:Pypm_resilience.Resilience.Inject.schedule ->
  ?on_error:[ `Quarantine | `Fail ] ->
  ?domains:int ->
  ?team:Pypm_parallel.Team.t ->
  prepared ->
  Graph.t ->
  stats

val run :
  ?engine:engine ->
  ?indexed:bool ->
  ?check_types:bool ->
  ?fuel:int ->
  ?max_rewrites:int ->
  ?deadline_s:float ->
  ?quarantine_after:int ->
  ?inject:Pypm_resilience.Resilience.Inject.schedule ->
  ?on_error:[ `Quarantine | `Fail ] ->
  ?domains:int ->
  ?team:Pypm_parallel.Team.t ->
  Program.t ->
  Graph.t ->
  stats

(** [run_result] is {!run} under the [`Fail] policy, with the fatal error
    (if any) surfaced as the [Error] case alongside the partial stats —
    the strict-mode entry point for callers that must report the first
    failure structurally (the CLI's [--strict]). *)
val run_result :
  ?engine:engine ->
  ?indexed:bool ->
  ?check_types:bool ->
  ?fuel:int ->
  ?max_rewrites:int ->
  ?deadline_s:float ->
  ?quarantine_after:int ->
  ?inject:Pypm_resilience.Resilience.Inject.schedule ->
  ?domains:int ->
  ?team:Pypm_parallel.Team.t ->
  Program.t ->
  Graph.t ->
  (stats, error * stats) result

(** [match_only ?engine ?indexed ?fuel ?domains program graph] runs the
    matching half only: counts matches of every pattern at every node
    without firing any rule. Returns the stats (rewrites stay 0). This is
    the figure 12/13 measurement: the cost of running the matcher over a
    model. [domains] shards the node list across that many domains in one
    round; since [match_only] has no firing short-circuit, the parallel
    split does identical matching work and produces identical per-pattern
    totals. *)
val match_only :
  ?engine:engine ->
  ?indexed:bool ->
  ?fuel:int ->
  ?domains:int ->
  ?team:Pypm_parallel.Team.t ->
  Program.t ->
  Graph.t ->
  stats

(** [matches_of ?fuel program graph] lists, per pattern, the node ids whose
    subtree matched, with the witness substitutions. No rewriting. *)
val matches_of :
  ?fuel:int ->
  Program.t ->
  Graph.t ->
  (string * (int * Subst.t * Fsubst.t) list) list

val pp_stats : Format.formatter -> stats -> unit

(** [stats_json s] renders the full stats record — totals, resilience
    counters, structured errors, per-pattern breakdown — as one JSON
    object. This is what [pypmc optimize --stats-json] emits and what the
    serve protocol carries in every response body. *)
val stats_json : stats -> string
