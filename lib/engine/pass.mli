(** The greedy rewrite pass.

    The paper's description (section 2.4): the compiler repeatedly traverses
    the graph; at each node it tries to match the subtree rooted there
    against each loaded pattern in order; on a match, the pattern's rules
    run in order and the first whose assertions pass fires, destructively
    replacing the root of the match; this repeats until no matches remain.

    [run] implements exactly that, with instrumentation: per-pattern match
    attempts, matches, rewrites, and matcher wall-clock time — the data
    behind figures 12 and 13 — and a choice of three {e matching engines}:

    - {!Naive}: the paper's implementation — every pattern is tried at
      every node with the backtracking matcher.
    - {!Index}: the root-head index — a pattern whose
      {!Pypm_pattern.Pattern.root_heads} excludes the node's operator is
      skipped without running the matcher.
    - {!Plan}: the pattern-set compiler ({!Pypm_plan.Plan}) — the whole
      library is compiled into one shared discrimination trie and each node
      is matched against every compiled pattern in a single trie walk;
      patterns outside the compilable fragment fall back to the
      backtracking matcher behind a root-head prefilter. The pass is also
      {e incremental}: after a rewrite fires, only the dirty region (the
      nodes the rewrite created plus the transitive consumers of the
      replacement root) is re-matched; everything else keeps its
      last-scanned no-match status, which is sound because a node's match
      outcome depends only on its term view. The rewrite sequence — and
      hence the final graph — is identical to the full-traversal engines'
      (checked in [test/test_plan.ml]). *)

open Pypm_term
open Pypm_graph

type engine = Naive | Index | Plan

val engine_name : engine -> string

type pattern_stats = {
  ps_name : string;
  mutable attempts : int;
      (** nodes the backtracking matcher ran against (plan-compiled
          patterns never run it, so their attempts stay 0 under [Plan]) *)
  mutable skipped : int;
      (** nodes skipped by a root-head check without running the matcher:
          the root-head index under [Index], the fallback prefilter under
          [Plan]; always 0 under [Naive] *)
  mutable plan_pruned : int;
      (** nodes where the shared plan rejected this (compiled) pattern
          without running the backtracking matcher; always 0 under [Naive]
          and [Index] *)
  mutable matches : int;  (** successful matches (rules may still not fire) *)
  mutable rewrites : int;  (** rules fired *)
  mutable fuel_exhausted : int;
      (** match attempts the matcher abandoned when [~fuel] ran out — {b
          not} clean no-matches: a witness may exist that was never found *)
  mutable guard_rejections : int;
      (** rules whose guard evaluated to false on a witness *)
  mutable match_time : float;  (** seconds inside the backtracking matcher *)
}

type stats = {
  mutable iterations : int;  (** full traversals *)
  mutable nodes_visited : int;
      (** nodes actually scanned; under [Plan] clean nodes are skipped, so
          this is the work-queue length, not live-count × iterations *)
  mutable total_rewrites : int;
  mutable type_rejections : int;
      (** rules whose replacement would have changed the matched node's
          tensor type, rejected under [~check_types:true] *)
  mutable fuel_exhausted : int;
      (** total fuel-exhausted attempts across all patterns; a nonzero
          value means the "fixpoint" may be short of the true one *)
  mutable collected : int;  (** garbage nodes removed *)
  mutable wall_time : float;  (** whole pass, seconds *)
  mutable plan_time : float;
      (** seconds inside the shared plan's trie walk (0 unless [Plan]) *)
  mutable reached_fixpoint : bool;
  mutable provenance : Pypm_obs.Obs.Provenance.step list;
      (** the rewrite provenance log: one step per fired rule, in firing
          order — what [pypmc trace] replays *)
  per_pattern : pattern_stats list;
}

(** Name-keyed lookup into [per_pattern]. Unambiguous because
    {!Program.make} rejects duplicate pattern names; the pass itself uses
    per-entry records, never this. *)
val find_pattern_stats : stats -> string -> pattern_stats option

(** [provenance stats] is [stats.provenance]. *)
val provenance : stats -> Pypm_obs.Obs.Provenance.step list

(** The pass's log source ("pypm.pass"): [debug] on each rule firing,
    [warn] on type-check rejections. Enable with
    [Logs.Src.set_level Pass.log_src (Some Logs.Debug)]. *)
val log_src : Logs.src

(** [run ?engine ?indexed ?fuel ?max_rewrites program graph] rewrites
    [graph] to fixpoint (or until [max_rewrites], default 10_000, as a
    divergence backstop). [fuel] bounds each individual match (default
    200_000 visits). [engine] selects the matching engine (see above);
    when omitted, [indexed] (default false) selects between [Naive] and
    [Index] for compatibility with older callers. [check_types] (default
    true) refuses to fire a rule whose replacement node's tensor type
    differs from the matched root's — a rewrite must preserve what the
    rest of the graph observes; rejected firings are counted in
    [type_rejections] and the next rule is tried. Replacements typed
    [None] (opaque) are always allowed. *)
val run :
  ?engine:engine ->
  ?indexed:bool ->
  ?check_types:bool ->
  ?fuel:int ->
  ?max_rewrites:int ->
  Program.t ->
  Graph.t ->
  stats

(** [match_only ?engine ?indexed ?fuel program graph] runs the matching
    half only: counts matches of every pattern at every node without firing
    any rule. Returns the stats (rewrites stay 0). This is the figure 12/13
    measurement: the cost of running the matcher over a model. *)
val match_only :
  ?engine:engine -> ?indexed:bool -> ?fuel:int -> Program.t -> Graph.t -> stats

(** [matches_of ?fuel program graph] lists, per pattern, the node ids whose
    subtree matched, with the witness substitutions. No rewriting. *)
val matches_of :
  ?fuel:int ->
  Program.t ->
  Graph.t ->
  (string * (int * Subst.t * Fsubst.t) list) list

val pp_stats : Format.formatter -> stats -> unit
