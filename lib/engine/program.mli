(** Pattern programs: the unit DLCB loads and runs.

    A program is an ordered list of named patterns, each with its ordered
    list of rules — the in-memory form of a serialized PyPM pattern binary.
    Order matters twice: the pass tries patterns in their order of
    appearance "in the original python file", and within a pattern, rules
    fire first-guard-passes-wins (paper, sections 2 and 2.4). *)

open Pypm_term
open Pypm_pattern

type entry = {
  pname : string;
  pattern : Pattern.t;
      (** elaborated: alternates folded into [Alt], recursion into [Mu] *)
  rules : Rule.t list;
}

type t = { sg : Signature.t; entries : entry list }

(** Builds a program. Raises [Invalid_argument] if two entries share a
    [pname]: names key per-pattern statistics, head-index entries and plan
    result slots, so a duplicate would silently alias them.

    [?lint] is an opt-in admission check: the built program is handed to
    it, and any [Wf.Error]-severity diagnostic it returns raises
    [Invalid_argument] with the rendered messages (warnings are
    tolerated). Pass [Pypm_analysis.Analysis.wf_lint] to reject programs
    with dead patterns or unsatisfiable guards at construction time
    instead of paying for them on every pass. ([Program] cannot depend on
    the analysis library — it is downstream — hence the function
    parameter rather than a baked-in call.) *)
val make :
  ?lint:(t -> Pypm_pattern.Wf.diagnostic list) ->
  sg:Signature.t ->
  entry list ->
  t

val entry : t -> string -> entry option
val pattern_names : t -> string list

(** [restrict t names] keeps only the listed patterns (in program order);
    used to benchmark optimizations separately (FMHA only / Epilog only). *)
val restrict : t -> string list -> t

(** Well-formedness of every pattern, plus rule-level checks: each rule's
    template variables must be free variables of its pattern. *)
val check : t -> Pypm_pattern.Wf.diagnostic list

val pp : Format.formatter -> t -> unit
